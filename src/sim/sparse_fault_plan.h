// Lazily-evaluated fault traces for virtualized populations.
//
// `FaultPlan` materializes the full O(intervals × workers) availability
// schedule up front — exactly what a million-worker run cannot afford, and
// wasted work when only the sampled cohort is ever queried.
// `SparseFaultPlan` answers the same queries through the
// `fl::AvailabilityOracle` interface by REPLAYING the identical per-entity
// forked RNG streams on demand:
//
//   * construction precomputes only the O(n)-bit straggler-role bitmap
//     (FaultPlan draws it from one fleet-level stream in worker order, so
//     it cannot be derived per worker);
//   * the first query for worker w derives its stream statelessly with
//     Rng::fork_nth — FaultPlan takes worker w's stream as fork 2 + w of
//     the plan root (fork 1 is the straggler-assignment stream) and edge
//     e's as fork 2 + n + e — and replays interval rows until it reaches
//     the asked interval, caching a per-entity cursor;
//   * later queries advance the cursor forward, or rewind by replaying
//     from the stream head (queries going backward are rare: the engine
//     asks in nondecreasing interval order).
//
// The per-interval draw pattern mirrors FaultPlan::FaultPlan line for line
// (same conditional draws in the same order), so for every (interval,
// entity) the answer is bit-identical to the dense plan built from the same
// config — asserted by tests/pop_test.cpp over the full model zoo. Queries
// are serial-only, per the AvailabilityOracle contract.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/fl/availability.h"
#include "src/sim/fault_plan.h"

namespace hfl::sim {

class SparseFaultPlan final : public fl::AvailabilityOracle {
 public:
  SparseFaultPlan(std::size_t num_workers, std::size_t num_edges,
                  FaultConfig cfg);

  bool worker_available(std::size_t k, std::size_t worker) const override;
  bool edge_available(std::size_t k, std::size_t edge) const override;
  fl::AbsentPolicy absent_policy() const override {
    return cfg_.absent_policy;
  }
  Scalar absent_decay() const override { return cfg_.absent_decay; }

  const FaultConfig& config() const { return cfg_; }

 private:
  struct WorkerCursor {
    Rng rng{0};
    std::size_t k = 0;    // last replayed interval (0 = before interval 1)
    bool online = true;   // Markov churn state after interval k
    bool up = true;       // availability at interval k
  };
  struct EdgeCursor {
    Rng rng{0};
    std::size_t k = 0;
    bool up = true;
  };

  WorkerCursor fresh_worker_cursor(std::size_t worker) const;
  void advance_worker(std::size_t worker, WorkerCursor& c) const;

  FaultConfig cfg_;
  std::size_t num_workers_ = 0;
  std::size_t num_edges_ = 0;
  Rng root_;
  std::vector<std::uint8_t> is_straggler_;
  // Lazy per-entity replay cursors (mutable: queries are logically const
  // and, per the oracle contract, serial).
  mutable std::unordered_map<std::size_t, WorkerCursor> worker_cursors_;
  mutable std::unordered_map<std::size_t, EdgeCursor> edge_cursors_;
};

}  // namespace hfl::sim
