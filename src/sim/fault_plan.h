// Deterministic fault & availability models for multi-tier FL runs.
//
// The paper's experiments assume every worker survives every edge interval
// and every barrier completes; the multi-tier networks HierAdMo targets are
// exactly where workers drop out, straggle and links flake. This module
// turns seeded fault models into a `fl::ParticipationSchedule` the engine
// replays:
//
//   * dropout    — i.i.d. Bernoulli: each worker independently misses each
//                  edge interval with probability `prob`;
//   * churn      — Markov on/off: an online worker fails with `p_fail` per
//                  interval, an offline one recovers with `p_recover`
//                  (models sessions/outages with temporal correlation);
//   * straggler  — a fixed fraction of workers run slow by a mean `slowdown`
//                  factor with per-interval jitter; a deadline policy drops
//                  any worker whose interval slowdown exceeds the time
//                  budget (expressed as a slowdown multiple);
//   * link       — transient upload failures: each attempt fails with
//                  `loss_prob`, up to `max_retries` attempts per sync; a
//                  worker that exhausts its retries misses the sync (the
//                  retry count feeds the time simulator's backoff model);
//   * edge_outage — whole edge nodes go dark for an interval, taking their
//                  subtree out of both the edge and the cloud barrier.
//
// Determinism contract: the plan is a pure function of
// (config.seed, topology shape, schedule horizon). Every worker and edge
// draws from its own forked RNG stream, so the trace is independent of the
// algorithm, of thread scheduling, and of every other stream in the engine —
// the same discipline as the engine's batch streams. Two plans built from
// identical inputs are bit-identical, so every algorithm in a sweep replays
// the identical fault trace.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/fl/availability.h"
#include "src/fl/config.h"
#include "src/fl/topology.h"

namespace hfl::sim {

namespace detail {
// Fork tags of the per-entity fault streams, shared by FaultPlan (eager
// materialization) and SparseFaultPlan (lazy replay) so both derive
// bit-identical traces from the same FaultConfig.
inline constexpr std::uint64_t kWorkerStreamBase = 0x5EED0000;
inline constexpr std::uint64_t kEdgeStreamBase = 0xED6E0000;
inline constexpr std::uint64_t kStragglerAssign = 0x57A60001;
}  // namespace detail

// One availability flip extracted from a schedule: entity `id` (worker, or
// edge when `is_edge`) changes to state `up` at the start of edge interval
// `interval` (1-based). The event-driven engine replays these as
// fault-transition events; interval 1 entries describe entities that start
// the run offline.
struct FaultTransition {
  std::size_t interval = 0;
  bool is_edge = false;
  std::size_t id = 0;
  bool up = false;
};

// All transitions of `schedule` in deterministic order: by interval, workers
// before edges, ascending id. Entities are assumed up before interval 1.
std::vector<FaultTransition> fault_transitions(
    const fl::ParticipationSchedule& schedule);

struct DropoutModel {
  Scalar prob = 0.0;  // P(worker misses an interval), i.i.d. per interval
};

struct ChurnModel {
  Scalar p_fail = 0.0;     // P(online → offline) per interval
  Scalar p_recover = 1.0;  // P(offline → online) per interval
  Scalar p_start_down = 0.0;  // P(worker starts interval 1 offline)
};

struct StragglerModel {
  Scalar fraction = 0.0;  // fraction of the fleet that straggles
  Scalar slowdown = 1.0;  // mean compute stretch of a straggler (≥ 1)
  Scalar jitter = 0.0;    // per-interval multiplicative jitter (std of a
                          // truncated normal around the mean factor)
  // Deadline policy: > 0 drops any worker whose interval slowdown factor
  // exceeds this budget (it would blow the barrier's time budget). 0 = off.
  Scalar deadline_slowdown = 0.0;
};

struct LinkFaultModel {
  Scalar loss_prob = 0.0;      // P(one upload attempt fails)
  std::size_t max_retries = 3; // attempts allowed per sync (≥ 1)
};

struct EdgeOutageModel {
  Scalar prob = 0.0;  // P(edge node dark for an interval), i.i.d.
};

struct FaultConfig {
  std::uint64_t seed = 42;

  DropoutModel dropout;
  ChurnModel churn;
  StragglerModel straggler;
  LinkFaultModel link;
  EdgeOutageModel edge_outage;

  // What happens to an absent worker's momentum/accumulator state.
  fl::AbsentPolicy absent_policy = fl::AbsentPolicy::kHold;
  Scalar absent_decay = 0.5;

  // True when no fault model is switched on — the resulting schedule is a
  // no-op and the engine takes the exact fault-free code path.
  bool is_noop() const;

  // Throws hfl::Error on out-of-range probabilities/factors.
  void validate() const;
};

// A materialized fault trace for one (topology, run) pair.
class FaultPlan {
 public:
  FaultPlan(const fl::Topology& topo, const fl::RunConfig& run,
            FaultConfig cfg);

  const fl::ParticipationSchedule& schedule() const { return schedule_; }
  const FaultConfig& config() const { return cfg_; }
  std::size_t num_intervals() const { return schedule_.num_intervals; }

  // Upload attempts worker `w` needed at interval k (1-based): 1 = clean,
  // >1 = retries after transient link failures. Meaningful only when the
  // worker is available at k; feeds net::TimeSimulator's backoff model.
  std::size_t upload_attempts(std::size_t k, std::size_t w) const {
    return attempts_[(k - 1) * schedule_.num_workers + w];
  }

  bool worker_available(std::size_t k, std::size_t w) const {
    return schedule_.worker_available(k, w);
  }
  Scalar worker_slowdown(std::size_t k, std::size_t w) const {
    return schedule_.worker_slowdown(k, w);
  }
  bool edge_available(std::size_t k, std::size_t e) const {
    return schedule_.edge_available(k, e);
  }

  // Fraction of (interval, worker) slots that are up — a cheap diagnostic
  // of how harsh the configured models are.
  Scalar planned_participation() const;

 private:
  FaultConfig cfg_;
  fl::ParticipationSchedule schedule_;
  std::vector<std::size_t> attempts_;  // [k-1][worker]
};

}  // namespace hfl::sim
