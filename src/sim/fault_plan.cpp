#include "src/sim/fault_plan.h"

#include <algorithm>

#include "src/common/errors.h"

namespace hfl::sim {

using detail::kEdgeStreamBase;
using detail::kStragglerAssign;
using detail::kWorkerStreamBase;

namespace {

bool in_unit(Scalar p) { return p >= 0.0 && p <= 1.0; }

}  // namespace

bool FaultConfig::is_noop() const {
  return dropout.prob == 0.0 && churn.p_fail == 0.0 &&
         churn.p_start_down == 0.0 && straggler.fraction == 0.0 &&
         link.loss_prob == 0.0 && edge_outage.prob == 0.0;
}

void FaultConfig::validate() const {
  HFL_CHECK(in_unit(dropout.prob), "dropout.prob must be in [0, 1]");
  HFL_CHECK(in_unit(churn.p_fail) && in_unit(churn.p_recover) &&
                in_unit(churn.p_start_down),
            "churn probabilities must be in [0, 1]");
  HFL_CHECK(churn.p_fail == 0.0 || churn.p_recover > 0.0,
            "churn.p_recover must be positive when churn.p_fail is set "
            "(otherwise workers fail permanently and never return)");
  HFL_CHECK(in_unit(straggler.fraction), "straggler.fraction must be in [0, 1]");
  HFL_CHECK(straggler.slowdown >= 1.0, "straggler.slowdown must be >= 1");
  HFL_CHECK(straggler.jitter >= 0.0, "straggler.jitter must be >= 0");
  HFL_CHECK(straggler.deadline_slowdown == 0.0 ||
                straggler.deadline_slowdown >= 1.0,
            "straggler.deadline_slowdown must be 0 (off) or >= 1");
  HFL_CHECK(in_unit(link.loss_prob) && link.loss_prob < 1.0,
            "link.loss_prob must be in [0, 1)");
  HFL_CHECK(link.max_retries >= 1, "link.max_retries must be >= 1");
  HFL_CHECK(in_unit(edge_outage.prob) && edge_outage.prob < 1.0,
            "edge_outage.prob must be in [0, 1)");
  HFL_CHECK(absent_decay >= 0.0 && absent_decay <= 1.0,
            "absent_decay must be in [0, 1]");
}

FaultPlan::FaultPlan(const fl::Topology& topo, const fl::RunConfig& run,
                     FaultConfig cfg)
    : cfg_(cfg) {
  run.validate();
  cfg_.validate();

  const std::size_t n = topo.num_workers();
  const std::size_t l = topo.num_edges();
  const std::size_t intervals = run.total_iterations / run.tau;

  schedule_.num_intervals = intervals;
  schedule_.num_workers = n;
  schedule_.num_edges = l;
  schedule_.worker_up.assign(intervals * n, 1);
  schedule_.slowdown.assign(intervals * n, 1.0);
  schedule_.edge_up.assign(intervals * l, 1);
  schedule_.absent_policy = cfg_.absent_policy;
  schedule_.absent_decay = cfg_.absent_decay;
  attempts_.assign(intervals * n, 1);

  Rng root(cfg_.seed);

  // Straggler roles are a fleet-level draw (one stream, worker order): the
  // configured fraction picks which workers are persistently slow.
  std::vector<std::uint8_t> is_straggler(n, 0);
  {
    Rng assign = root.fork(kStragglerAssign);
    for (std::size_t w = 0; w < n; ++w) {
      is_straggler[w] = assign.uniform() < cfg_.straggler.fraction ? 1 : 0;
    }
  }

  // Per-worker streams: every availability/slowdown/link draw for worker w
  // comes from fork(kWorkerStreamBase + w), so the trace for one worker is
  // independent of the fleet size ordering of the loops below.
  for (std::size_t w = 0; w < n; ++w) {
    Rng wrng = root.fork(kWorkerStreamBase + w);
    bool online = wrng.uniform() >= cfg_.churn.p_start_down;
    for (std::size_t k = 1; k <= intervals; ++k) {
      const std::size_t idx = (k - 1) * n + w;

      // Markov churn state for this interval.
      if (cfg_.churn.p_fail > 0.0 || cfg_.churn.p_start_down > 0.0) {
        if (k > 1) {
          const Scalar flip = wrng.uniform();
          online = online ? flip >= cfg_.churn.p_fail
                          : flip < cfg_.churn.p_recover;
        }
      } else {
        online = true;
      }

      bool up = online;

      // i.i.d. dropout on top of churn.
      if (cfg_.dropout.prob > 0.0 && wrng.uniform() < cfg_.dropout.prob) {
        up = false;
      }

      // Straggler slowdown (drawn even for absent workers to keep the
      // stream aligned across configs that only differ in other models).
      Scalar factor = 1.0;
      if (is_straggler[w]) {
        factor = cfg_.straggler.slowdown;
        if (cfg_.straggler.jitter > 0.0) {
          factor *= std::max(Scalar{0.2},
                             wrng.normal(1.0, cfg_.straggler.jitter));
        }
        factor = std::max(Scalar{1.0}, factor);
      }
      schedule_.slowdown[idx] = factor;

      // Deadline policy: a straggler over the time budget is dropped at the
      // barrier.
      if (cfg_.straggler.deadline_slowdown > 0.0 &&
          factor > cfg_.straggler.deadline_slowdown) {
        up = false;
      }

      // Transient link faults: geometric retry count, capped by the retry
      // budget; exhausting the budget means the upload never lands.
      if (up && cfg_.link.loss_prob > 0.0) {
        std::size_t attempt = 1;
        while (wrng.uniform() < cfg_.link.loss_prob) {
          if (attempt == cfg_.link.max_retries) {
            up = false;
            break;
          }
          ++attempt;
        }
        attempts_[idx] = attempt;
      }

      schedule_.worker_up[idx] = up ? 1 : 0;
    }
  }

  // Per-edge outage streams.
  if (cfg_.edge_outage.prob > 0.0) {
    for (std::size_t e = 0; e < l; ++e) {
      Rng erng = root.fork(kEdgeStreamBase + e);
      for (std::size_t k = 1; k <= intervals; ++k) {
        if (erng.uniform() < cfg_.edge_outage.prob) {
          schedule_.edge_up[(k - 1) * l + e] = 0;
        }
      }
    }
  }
}

std::vector<FaultTransition> fault_transitions(
    const fl::ParticipationSchedule& schedule) {
  std::vector<FaultTransition> out;
  const std::size_t n = schedule.num_workers;
  const std::size_t l = schedule.num_edges;
  for (std::size_t k = 1; k <= schedule.num_intervals; ++k) {
    for (std::size_t w = 0; w < n; ++w) {
      const bool up = schedule.worker_available(k, w);
      const bool prev = k == 1 ? true : schedule.worker_available(k - 1, w);
      if (up != prev) out.push_back({k, /*is_edge=*/false, w, up});
    }
    for (std::size_t e = 0; e < l; ++e) {
      const bool up = schedule.edge_available(k, e);
      const bool prev = k == 1 ? true : schedule.edge_available(k - 1, e);
      if (up != prev) out.push_back({k, /*is_edge=*/true, e, up});
    }
  }
  return out;
}

Scalar FaultPlan::planned_participation() const {
  if (schedule_.worker_up.empty()) return 1.0;
  std::size_t up = 0;
  for (const std::uint8_t u : schedule_.worker_up) up += u;
  return static_cast<Scalar>(up) /
         static_cast<Scalar>(schedule_.worker_up.size());
}

}  // namespace hfl::sim
