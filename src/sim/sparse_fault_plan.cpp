#include "src/sim/sparse_fault_plan.h"

#include <algorithm>

#include "src/common/errors.h"

namespace hfl::sim {

SparseFaultPlan::SparseFaultPlan(std::size_t num_workers,
                                 std::size_t num_edges, FaultConfig cfg)
    : cfg_(cfg),
      num_workers_(num_workers),
      num_edges_(num_edges),
      root_(cfg.seed) {
  cfg_.validate();
  HFL_CHECK(num_workers_ > 0 && num_edges_ > 0,
            "fault plan needs at least one worker and one edge");
  // The straggler-role bitmap is the one fleet-level draw (FaultPlan takes
  // it from the root's first fork, in worker order) — O(n) bits, paid once.
  if (cfg_.straggler.fraction > 0.0) {
    Rng assign = root_.fork_nth(detail::kStragglerAssign, 1);
    is_straggler_.resize(num_workers_);
    for (std::size_t w = 0; w < num_workers_; ++w) {
      is_straggler_[w] = assign.uniform() < cfg_.straggler.fraction ? 1 : 0;
    }
  }
}

SparseFaultPlan::WorkerCursor SparseFaultPlan::fresh_worker_cursor(
    std::size_t worker) const {
  WorkerCursor c;
  // FaultPlan's fork sequence: fork 1 = straggler assignment, fork 2 + w =
  // worker w's stream, fork 2 + n + e = edge e's stream.
  c.rng = root_.fork_nth(detail::kWorkerStreamBase + worker, 2 + worker);
  c.online = c.rng.uniform() >= cfg_.churn.p_start_down;
  return c;
}

// One interval row of FaultPlan's per-worker loop, draw for draw.
void SparseFaultPlan::advance_worker(std::size_t worker,
                                     WorkerCursor& c) const {
  const std::size_t k = c.k + 1;

  if (cfg_.churn.p_fail > 0.0 || cfg_.churn.p_start_down > 0.0) {
    if (k > 1) {
      const Scalar flip = c.rng.uniform();
      c.online = c.online ? flip >= cfg_.churn.p_fail
                          : flip < cfg_.churn.p_recover;
    }
  } else {
    c.online = true;
  }

  bool up = c.online;

  if (cfg_.dropout.prob > 0.0 && c.rng.uniform() < cfg_.dropout.prob) {
    up = false;
  }

  Scalar factor = 1.0;
  if (!is_straggler_.empty() && is_straggler_[worker]) {
    factor = cfg_.straggler.slowdown;
    if (cfg_.straggler.jitter > 0.0) {
      factor *= std::max(Scalar{0.2},
                         c.rng.normal(1.0, cfg_.straggler.jitter));
    }
    factor = std::max(Scalar{1.0}, factor);
  }
  if (cfg_.straggler.deadline_slowdown > 0.0 &&
      factor > cfg_.straggler.deadline_slowdown) {
    up = false;
  }

  if (up && cfg_.link.loss_prob > 0.0) {
    std::size_t attempt = 1;
    while (c.rng.uniform() < cfg_.link.loss_prob) {
      if (attempt == cfg_.link.max_retries) {
        up = false;
        break;
      }
      ++attempt;
    }
  }

  c.k = k;
  c.up = up;
}

bool SparseFaultPlan::worker_available(std::size_t k,
                                       std::size_t worker) const {
  HFL_CHECK(k >= 1 && worker < num_workers_,
            "fault-plan query out of range");
  auto [it, inserted] = worker_cursors_.try_emplace(worker);
  WorkerCursor& c = it->second;
  if (inserted || k < c.k) c = fresh_worker_cursor(worker);
  while (c.k < k) advance_worker(worker, c);
  return c.up;
}

bool SparseFaultPlan::edge_available(std::size_t k, std::size_t edge) const {
  HFL_CHECK(k >= 1 && edge < num_edges_, "fault-plan query out of range");
  if (cfg_.edge_outage.prob <= 0.0) return true;
  auto [it, inserted] = edge_cursors_.try_emplace(edge);
  EdgeCursor& c = it->second;
  if (inserted || k < c.k) {
    c.rng = root_.fork_nth(detail::kEdgeStreamBase + edge,
                           2 + num_workers_ + edge);
    c.k = 0;
    c.up = true;
  }
  while (c.k < k) {
    c.up = !(c.rng.uniform() < cfg_.edge_outage.prob);
    ++c.k;
  }
  return c.up;
}

}  // namespace hfl::sim
