#include "src/evt/event_queue.h"

#include <algorithm>
#include <string>

#include "src/common/errors.h"
#include "src/obs/registry.h"

namespace hfl::evt {

const char* to_string(EventType type) {
  switch (type) {
    case EventType::kWorkerReady:
      return "worker_ready";
    case EventType::kWorkerUpload:
      return "worker_upload";
    case EventType::kWorkerDownload:
      return "worker_download";
    case EventType::kEdgeSync:
      return "edge_sync";
    case EventType::kCloudSync:
      return "cloud_sync";
    case EventType::kFault:
      return "fault";
    case EventType::kEval:
      return "eval";
  }
  return "unknown";
}

namespace {

// std::*_heap comparator: a sorts AFTER b (lower priority) when its
// (time, seq) key is larger.
bool later(const Event& a, const Event& b) {
  if (a.time != b.time) return a.time > b.time;
  return a.seq > b.seq;
}

}  // namespace

EventQueue::EventQueue() {
  if (obs::enabled()) {
    depth_gauge_ = &obs::Registry::global().gauge("evt.queue.depth_max");
  }
}

void EventQueue::push(Event e) {
  HFL_CHECK(e.time >= now_,
            "event scheduled in the past (time " + std::to_string(e.time) +
                " < now " + std::to_string(now_) + ")");
  e.seq = next_seq_++;
  heap_.push_back(e);
  std::push_heap(heap_.begin(), heap_.end(), later);
  if (depth_gauge_ != nullptr) {
    depth_gauge_->set_max(static_cast<double>(heap_.size()));
  }
}

Event EventQueue::pop() {
  HFL_CHECK(!heap_.empty(), "pop from an empty event queue");
  std::pop_heap(heap_.begin(), heap_.end(), later);
  const Event e = heap_.back();
  heap_.pop_back();
  now_ = e.time;
  return e;
}

}  // namespace hfl::evt
