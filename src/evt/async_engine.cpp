#include "src/evt/async_engine.h"

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/errors.h"
#include "src/common/rng.h"
#include "src/common/vec_ops.h"
#include "src/evt/event_queue.h"
#include "src/fl/state.h"
#include "src/net/profiles.h"
#include "src/obs/comm.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/sim/fault_plan.h"

namespace hfl::evt {

namespace {

// The embedded fl::Engine always carries the sync policy: the requested
// config is validated FIRST, so policy-specific errors (semi_async without a
// deadline, async + batched cohort) surface against the user's actual
// settings, and only then sanitized down to what fl::Engine accepts.
// Everything the event-driven paths read through Context::cfg (τ, π, the
// staleness knobs, seeds) is preserved.
fl::RunConfig toolbox_config(fl::RunConfig cfg) {
  cfg.validate();
  cfg.policy = fl::ExecPolicy::kSync;
  cfg.semi_async_deadline_s = 0.0;
  return cfg;
}

// v ← (1−α)·pre + α·v — the damped fold of an asynchronous aggregation: the
// aggregator only moves by the admitted cohort's effective (staleness-scaled)
// mass. A full fresh cohort has α = 1 and keeps the plain aggregation; a
// lone stale straggler barely moves the tier. Vectors the aggregation
// resized (algorithm-specific scratch appearing mid-run) are kept as-is.
void damp(Vec& v, const Vec& pre, Scalar alpha) {
  if (alpha >= 1.0 || v.size() != pre.size()) return;
  vec::axpby(1.0 - alpha, pre, alpha, v);  // fused (1−α)·pre + α·v
}

// s(τ) = staleness_decay^τ.
Scalar staleness_weight(Scalar decay, std::size_t tau) {
  Scalar s = 1.0;
  for (std::size_t i = 0; i < tau; ++i) s *= decay;
  return s;
}

// Bucket bounds of the evt.staleness histogram (aggregator versions).
const std::vector<double>& staleness_bounds() {
  static const std::vector<double> bounds{0, 1, 2, 4, 8, 16};
  return bounds;
}

}  // namespace

// Mutable state of one event-driven run. The fl::RunState inside must not
// move after prepare_run (Context holds pointers into it), so EvtRun lives
// on run_event_driven's stack and is only ever passed by reference.
struct EvtRun {
  fl::RunState rs;
  EventQueue q;
  std::unique_ptr<fl::Participation> mpart;  // manual-roster view
  const sim::FaultPlan* plan = nullptr;
  const fl::ParticipationSchedule* schedule = nullptr;  // null = fault-free
  bool three_tier = true;
  std::size_t K = 0;            // edge intervals per worker (T/τ)
  Scalar last_time = 0;         // latest modeled instant touched
  std::size_t steps_total = 0;  // local steps executed across all workers
  std::string policy_label;     // obs label, e.g. "policy=semi_async"

  // Per-entity latency streams forked off TimeSimConfig::seed: arrival ORDER
  // depends on the sampled delays, but each entity's delay SEQUENCE depends
  // only on the seed — no handler ordering can perturb another stream.
  std::vector<Rng> wrng, erng;
  Rng crng{0};

  // Worker progress: completed intervals (quota K), aggregator version at
  // the last download (the staleness base), last observed availability.
  std::vector<std::size_t> w_interval, w_version;
  std::vector<std::uint8_t> w_up;

  // Edge aggregator state: version (aggregation count), fault-schedule round
  // counter, edge intervals since the last cloud push, cloud version at the
  // last cloud interaction, semi-async inbox + armed-deadline flag.
  std::vector<std::size_t> e_version, e_round, e_since_cloud, e_cloud_base;
  std::vector<std::vector<std::size_t>> e_inbox;
  std::vector<std::uint8_t> e_deadline_armed, e_up;

  std::size_t cloud_version = 0;
  std::vector<std::size_t> c_inbox;  // two-tier semi-async
  bool c_deadline_armed = false;

  // Staleness accounting (RunResult + obs).
  std::size_t admitted = 0, stale = 0, dropped = 0, max_tau = 0;
  Scalar tau_sum = 0;

  // Roster scratch reused across aggregations.
  std::vector<std::uint8_t> roster_w, roster_e;
  std::vector<Scalar> scale;
};

AsyncEngine::AsyncEngine(nn::ModelFactory factory, const data::TrainTest& data,
                         data::Partition partition, fl::Topology topo,
                         fl::RunConfig cfg, net::TimeSimConfig sim)
    : cfg_(cfg),
      sim_(std::move(sim)),
      engine_(std::move(factory), data, std::move(partition), std::move(topo),
              toolbox_config(cfg)) {
  if (sim_.model_params == 0) {
    sim_.model_params = engine_.factory_()->num_params();
  }
  if (sim_.worker_devices.empty()) {
    sim_.worker_devices = net::default_worker_roster(engine_.topo_.num_workers());
  }
  sim_.fault_plan = nullptr;  // plans are per-run; see run()
  model_ = std::make_unique<net::LatencyModel>(engine_.topo_, sim_);
}

fl::RunResult AsyncEngine::run(fl::Algorithm& alg, const sim::FaultPlan* plan) {
  if (cfg_.policy == fl::ExecPolicy::kSync) return run_sync(alg, plan);
  return run_event_driven(alg, plan);
}

// ---------------------------------------------------------------------------
// Sync policy: the barrier schedule replayed as events.
//
// The whole timetable is known up front (logical time = iteration index), so
// every event is pushed before the first pop and the (time, seq) order of the
// queue reproduces fl::Engine::run's statement order exactly: local steps,
// edge barrier, cloud round, evaluation, interval tail. Each handler calls
// the corresponding private piece of fl::Engine on the shared RunState, which
// is what makes this policy bit-identical to fl::Engine by construction —
// same calls, same order, same state. Modeled time is stamped afterwards from
// a net::TimeSimulator barrier replay (additive: iteration/loss/accuracy and
// all engine.* counters are untouched).
// ---------------------------------------------------------------------------
fl::RunResult AsyncEngine::run_sync(fl::Algorithm& alg,
                                    const sim::FaultPlan* plan) {
  const obs::Span run_span("run:" + alg.name(), "evt");
  const fl::ParticipationSchedule* schedule =
      plan != nullptr ? &plan->schedule() : nullptr;

  // Virtualized populations ride through the same pieces fl::Engine uses:
  // replay the dense schedule through the oracle adapter and mirror
  // begin_virtual_interval at each interval head.
  const bool virt = engine_.provider_ != nullptr;
  std::unique_ptr<fl::ScheduleOracle> oracle_storage;
  const fl::AvailabilityOracle* oracle = nullptr;
  if (virt && schedule != nullptr && !schedule->is_noop()) {
    schedule->validate(engine_.topo_, engine_.cfg_);
    oracle_storage = std::make_unique<fl::ScheduleOracle>(*schedule);
    oracle = oracle_storage.get();
  }

  fl::RunState rs;
  engine_.prepare_run(alg, virt ? nullptr : schedule, oracle, rs);
  engine_.record_point(rs, 0, rs.cloud.x);

  const fl::RunConfig& cfg = engine_.cfg_;
  const std::size_t global_period = cfg.tau * cfg.pi;

  // Availability flips, grouped by the interval they take effect in.
  std::vector<std::vector<sim::FaultTransition>> flips;
  if (schedule != nullptr && !schedule->is_noop()) {
    flips.resize(cfg.total_iterations / cfg.tau + 1);
    for (const sim::FaultTransition& tr : sim::fault_transitions(*schedule)) {
      if (tr.interval < flips.size()) flips[tr.interval].push_back(tr);
    }
  }

  EventQueue q;
  for (std::size_t t = 1; t <= cfg.total_iterations; ++t) {
    const Scalar time = static_cast<Scalar>(t);
    const bool sync_point = t % cfg.tau == 0;
    const bool cloud_point = t % global_period == 0;
    if ((t - 1) % cfg.tau == 0) {
      // Interval k's availability flips land just before its first local
      // step (the push order IS the tie-break).
      const std::size_t k = (t - 1) / cfg.tau + 1;
      if (k < flips.size()) {
        for (const sim::FaultTransition& tr : flips[k]) {
          q.push({time, 0, EventType::kFault, tr.id, tr.interval, tr.up,
                  tr.is_edge});
        }
      }
    }
    // The barrier collapses the fleet's worker-ready events into one per
    // iteration: under sync semantics every worker steps at the same instant
    // and the engine's (deterministically parallel) dispatch IS that event.
    q.push({time, 0, EventType::kWorkerReady, 0, t, false, false});
    if (alg.three_tier() && sync_point) {
      q.push({time, 0, EventType::kEdgeSync, 0, t / cfg.tau, false, false});
    }
    if (cloud_point) {
      q.push({time, 0, EventType::kCloudSync, 0, t / global_period, false,
              false});
    }
    if (sync_point || cloud_point ||
        (cfg.eval_every != 0 && t % cfg.eval_every == 0)) {
      q.push({time, 0, EventType::kEval, 0, t, false, false});
    }
  }

  obs::Registry& reg = obs::Registry::global();
  while (!q.empty()) {
    const Event ev = q.pop();
    const std::size_t t = ev.round;
    switch (ev.type) {
      case EventType::kFault:
        if (obs::enabled()) reg.counter("evt.fault.transitions").add();
        break;
      case EventType::kWorkerReady:
        rs.ctx.t = t;
        if ((t - 1) % cfg.tau == 0) {
          const std::size_t k = (t - 1) / cfg.tau + 1;
          if (virt) {
            if (k > 1) {
              engine_.begin_virtual_interval(alg, rs, k, oracle, false);
            }
          } else if (rs.part) {
            rs.part->begin_interval(k);
          }
        }
        engine_.run_local_steps(alg, rs);
        break;
      case EventType::kEdgeSync:
        engine_.run_edge_syncs(alg, rs, t);
        if (obs::enabled()) reg.counter("evt.edge_syncs", "policy=sync").add();
        break;
      case EventType::kCloudSync:
        engine_.run_cloud_sync(alg, rs, t);
        if (obs::enabled()) reg.counter("evt.cloud_syncs", "policy=sync").add();
        break;
      case EventType::kEval:
        if (t % global_period == 0) {
          engine_.record_point(rs, t, rs.cloud.x);
        } else if (cfg.eval_every != 0 && t % cfg.eval_every == 0) {
          fl::aggregate_global(rs.workers, fl::worker_x, rs.avg_scratch,
                               nullptr, engine_.pool_.get());
          engine_.record_point(rs, t, rs.avg_scratch);
        }
        if (t % cfg.tau == 0) engine_.finish_interval(alg, rs, t / cfg.tau);
        break;
    }
  }

  engine_.finalize_run(alg, rs);

  // Stamp modeled wall-clock time from the barrier replay of this exact run.
  net::TimeSimConfig tsim = sim_;
  tsim.fault_plan = plan;
  const net::TimeSimulator ts(engine_.topo_, cfg, tsim);
  for (fl::MetricPoint& p : rs.result.curve) {
    p.sim_time = ts.time_at_iteration(p.iteration);
  }
  rs.result.sim_seconds = ts.total_time();
  return rs.result;
}

// ---------------------------------------------------------------------------
// Event-driven policies (semi_async / async).
// ---------------------------------------------------------------------------

// Schedule worker w's next interval: sample its compute + upload delay from
// the worker's own latency stream and push the arrival. Availability and
// straggler factors come from the fault schedule, resolved against the
// worker's OWN interval counter (capped at the schedule horizon) — in an
// asynchronous run workers drift apart, so "interval k" is per-worker
// progress, not global time.
void AsyncEngine::dispatch_worker(fl::Algorithm& alg, EvtRun& er,
                                  std::size_t w, Scalar base) {
  (void)alg;
  const std::size_t kw = er.w_interval[w] + 1;
  if (kw > er.K) return;  // quota exhausted — worker is done
  bool up = true;
  Scalar slowdown = 1.0;
  std::size_t attempts = 1;
  if (er.schedule != nullptr) {
    const std::size_t kc = std::min(kw, er.schedule->num_intervals);
    up = er.schedule->worker_available(kc, w);
    if (up) {
      slowdown = er.schedule->worker_slowdown(kc, w);
      attempts = er.plan->upload_attempts(kc, w);
    }
  }
  note_availability(er, /*is_edge=*/false, w, up, base);
  if (!up) {
    // Offline interval: nothing is computed or uploaded; the worker re-checks
    // after a nominal (unstretched) interval of compute time so the outage
    // still occupies modeled time.
    const Scalar dt = model_->worker_compute(er.wrng[w], w, engine_.cfg_.tau);
    er.q.push({base + dt, 0, EventType::kWorkerReady, w, kw, /*absent=*/true,
               false});
    return;
  }
  const Scalar compute =
      model_->worker_compute(er.wrng[w], w, engine_.cfg_.tau) * slowdown;
  const Scalar upload = model_->worker_upload(er.wrng[w], w, attempts);
  er.q.push({base + compute + upload, 0, EventType::kWorkerReady, w, kw, false,
             false});
}

// Record an availability flip as a fault event the first time it is observed
// (rosters themselves are resolved at dispatch/admission points).
void AsyncEngine::note_availability(EvtRun& er, bool is_edge, std::size_t id,
                                    bool up, Scalar time) {
  std::uint8_t& cur = is_edge ? er.e_up[id] : er.w_up[id];
  if ((cur != 0) == up) return;
  cur = up ? 1 : 0;
  er.q.push({time, 0, EventType::kFault, id, 0, up, is_edge});
}

// A worker misses interval consumption without contributing an update (its
// own outage, or its aggregator refused it): apply the absent-momentum
// policy, consume the interval and schedule the next one.
void AsyncEngine::miss_interval(fl::Algorithm& alg, EvtRun& er, std::size_t w,
                                Scalar tev) {
  fl::RunState& rs = er.rs;
  ++er.w_interval[w];
  rs.ctx.part = er.mpart.get();
  alg.absent_sync(rs.ctx, rs.workers[w], er.w_interval[w]);
  rs.ctx.part = nullptr;
  if (!rs.result.worker_miss_counts.empty()) {
    ++rs.result.worker_miss_counts[w];
  }
  dispatch_worker(alg, er, w, tev);
}

// A worker's interval lands: run its τ local steps lazily (so it trains on
// exactly the model it last downloaded) and route the update to its
// aggregator per the policy.
void AsyncEngine::worker_arrival(fl::Algorithm& alg, EvtRun& er,
                                 const Event& ev) {
  fl::RunState& rs = er.rs;
  const std::size_t w = ev.entity;
  if (ev.flag) {  // offline interval (scheduled by dispatch_worker)
    miss_interval(alg, er, w, ev.time);
    return;
  }

  fl::WorkerState& ws = rs.workers[w];
  {
    const obs::Span span("local_steps", "worker");
    for (std::size_t s = 0; s < engine_.cfg_.tau; ++s) {
      rs.ctx.t = ++er.steps_total;
      alg.local_step(rs.ctx, ws);
    }
  }

  if (er.three_tier) {
    const std::size_t e = ws.edge;
    if (cfg_.policy == fl::ExecPolicy::kSemiAsync) {
      // Admission happens when the edge's deadline fires; arm it on the
      // round's first arrival.
      er.e_inbox[e].push_back(w);
      if (!er.e_deadline_armed[e]) {
        er.e_deadline_armed[e] = 1;
        er.q.push({ev.time + cfg_.semi_async_deadline_s, 0,
                   EventType::kEdgeSync, e, 0, false, false});
      }
      return;
    }
    // Fully async: the arrival IS the aggregation trigger.
    bool eup = true;
    if (er.schedule != nullptr) {
      const std::size_t kc =
          std::min(er.e_round[e] + 1, er.schedule->num_intervals);
      eup = er.schedule->edge_available(kc, e);
    }
    note_availability(er, /*is_edge=*/true, e, eup, ev.time);
    if (!eup) {
      // Refused at a dark edge: the update is lost and the refusal consumes
      // one edge schedule round — a long outage burns through its scheduled
      // rounds instead of freezing the subtree forever.
      ++er.dropped;
      ++er.e_round[e];
      miss_interval(alg, er, w, ev.time);
      return;
    }
    edge_cohort_sync(alg, er, e, {w}, ev.time);
    return;
  }

  // Two-tier: workers talk straight to the cloud.
  if (cfg_.policy == fl::ExecPolicy::kSemiAsync) {
    er.c_inbox.push_back(w);
    if (!er.c_deadline_armed) {
      er.c_deadline_armed = true;
      er.q.push({ev.time + cfg_.semi_async_deadline_s, 0,
                 EventType::kCloudSync, 0, 0, /*deadline=*/true, false});
    }
    return;
  }
  cloud_cohort_sync(alg, er, {w}, ev.time);
}

// Edge aggregation over an arrived cohort. Splits the cohort by the
// staleness bound, runs Algorithm::edge_sync against the manual roster with
// staleness-scaled weights, folds the result in with the damped α-mix, then
// downloads the refreshed model and redispatches everyone.
void AsyncEngine::edge_cohort_sync(fl::Algorithm& alg, EvtRun& er,
                                   std::size_t e,
                                   std::vector<std::size_t> cohort,
                                   Scalar tev) {
  fl::RunState& rs = er.rs;
  fl::EdgeState& es = rs.edges[e];
  std::sort(cohort.begin(), cohort.end());  // canonical roster order

  std::vector<std::size_t> admitted, discarded;
  for (const std::size_t w : cohort) {
    const std::size_t tau = er.e_version[e] - er.w_version[w];
    if (static_cast<std::int64_t>(tau) > cfg_.max_staleness) {
      discarded.push_back(w);
    } else {
      admitted.push_back(w);
    }
  }

  const Scalar agg = model_->edge_aggregate(er.erng[e]);
  const Scalar down = model_->edge_broadcast(er.erng[e], e);
  obs::Registry& reg = obs::Registry::global();

  if (!admitted.empty()) {
    const std::size_t k_agg = ++er.e_version[e];
    ++er.e_round[e];

    // Roster + staleness weights (s multiplies the data-size mass before the
    // per-edge renormalization inside Participation).
    er.roster_w.assign(rs.workers.size(), 0);
    er.roster_e.assign(rs.edges.size(), 0);
    er.roster_e[e] = 1;
    er.scale.assign(rs.workers.size(), 1.0);
    Scalar alpha = 0;
    for (const std::size_t w : admitted) {
      const std::size_t tau = k_agg - 1 - er.w_version[w];
      const Scalar s = staleness_weight(cfg_.staleness_decay, tau);
      er.roster_w[w] = 1;
      er.scale[w] = s;
      alpha += rs.workers[w].weight_in_edge * s;
      ++er.admitted;
      er.tau_sum += static_cast<Scalar>(tau);
      er.max_tau = std::max(er.max_tau, tau);
      if (obs::enabled()) {
        reg.histogram("evt.staleness", er.policy_label, staleness_bounds())
            .observe(static_cast<double>(tau));
      }
    }
    er.mpart->set_roster(er.roster_w, er.roster_e, &er.scale);
    rs.ctx.part = er.mpart.get();

    // Staleness hook before the aggregation reads worker state.
    for (const std::size_t w : admitted) {
      const std::size_t tau = k_agg - 1 - er.w_version[w];
      if (tau > 0) {
        ++er.stale;
        alg.stale_sync(rs.ctx, rs.workers[w], tau);
      }
    }

    // Aggregate against the cohort, then α-damp every edge vector back
    // toward its pre-sync value.
    const Vec pre_x = es.x_plus;
    const Vec pre_yp = es.y_plus;
    const Vec pre_ym = es.y_minus;
    const std::map<std::string, Vec> pre_extra = es.extra;
    {
      const fl::EdgeSyncGuard guard(engine_.edge_sync_entries_,
                                    alg.edge_sync_reentrant());
      alg.edge_sync(rs.ctx, es, k_agg);
    }
    damp(es.x_plus, pre_x, alpha);
    damp(es.y_plus, pre_yp, alpha);
    damp(es.y_minus, pre_ym, alpha);
    for (auto& [name, v] : es.extra) {
      const auto it = pre_extra.find(name);
      if (it != pre_extra.end()) damp(v, it->second, alpha);
    }
    rs.ctx.part = nullptr;

    if (obs::enabled()) {
      reg.counter("evt.edge_syncs", er.policy_label).add();
    }
  }

  // Comm accounting + downloads + redispatch (cohort order = ascending ids).
  // Every cohort member uploaded; everyone receives the refreshed model —
  // discarded updates are replaced by a forced refresh (their interval work
  // is lost, accumulators cleared, momentum per the hold default).
  if (obs::enabled()) {
    obs::CommAccountant& comm = obs::CommAccountant::global();
    for (const std::size_t w : cohort) {
      (void)w;
      comm.record(obs::Link::kWorkerToEdge, e, rs.worker_up_bytes);
      comm.record(obs::Link::kEdgeToWorker, e, rs.worker_down_bytes);
    }
  }
  for (const std::size_t w : discarded) {
    ++er.dropped;
    rs.workers[w].reset_interval_accumulators();
  }
  for (const std::size_t w : cohort) {
    fl::WorkerState& ws = rs.workers[w];
    ws.x = es.x_plus;
    er.w_version[w] = er.e_version[e];
    ++er.w_interval[w];
    dispatch_worker(alg, er, w, tev + agg + down);
  }
  er.last_time = std::max(er.last_time, tev + agg + down);

  // Every π-th edge aggregation ships the edge state up to the cloud.
  if (!admitted.empty() && ++er.e_since_cloud[e] >= engine_.cfg_.pi) {
    er.e_since_cloud[e] = 0;
    const Scalar up = model_->edge_upload(er.erng[e]);
    er.q.push({tev + agg + up, 0, EventType::kCloudSync, e, er.e_cloud_base[e],
               false, false});
  }
}

// An edge's update lands at the cloud (three-tier). Staleness is measured in
// cloud versions since the edge's last cloud interaction (`base_version`,
// carried by the event). The refreshed cloud model is pushed down to the
// edge and its whole worker subtree — retroactively for in-flight workers,
// whose lazily-executed steps will simply train on the refreshed model.
void AsyncEngine::cloud_edge_arrival(fl::Algorithm& alg, EvtRun& er,
                                     std::size_t e, std::size_t base_version,
                                     Scalar tev) {
  fl::RunState& rs = er.rs;
  fl::EdgeState& es = rs.edges[e];
  const std::size_t tau_e = er.cloud_version - base_version;
  obs::Registry& reg = obs::Registry::global();

  if (static_cast<std::int64_t>(tau_e) > cfg_.max_staleness) {
    // Too far behind: the edge update is discarded and the edge re-anchored
    // on the current cloud model.
    ++er.dropped;
    es.x_plus = rs.cloud.x;
    er.e_cloud_base[e] = er.cloud_version;
    er.last_time = std::max(er.last_time, tev);
    return;
  }

  const std::size_t p = ++er.cloud_version;
  ++er.admitted;
  er.tau_sum += static_cast<Scalar>(tau_e);
  er.max_tau = std::max(er.max_tau, tau_e);
  if (tau_e > 0) ++er.stale;
  if (obs::enabled()) {
    reg.histogram("evt.staleness", er.policy_label, staleness_bounds())
        .observe(static_cast<double>(tau_e));
  }

  // Roster: this edge plus its whole subtree (cloud_sync pushes down to the
  // participating workers).
  er.roster_w.assign(rs.workers.size(), 0);
  er.roster_e.assign(rs.edges.size(), 0);
  er.roster_e[e] = 1;
  for (const std::size_t w : engine_.topo_.workers_of_edge(e)) {
    er.roster_w[w] = 1;
  }
  er.mpart->set_roster(er.roster_w, er.roster_e, nullptr);
  rs.ctx.part = er.mpart.get();

  const Scalar alpha =
      es.weight_global * staleness_weight(cfg_.staleness_decay, tau_e);
  const Vec pre_cx = rs.cloud.x;
  const Vec pre_cy = rs.cloud.y;
  const std::map<std::string, Vec> pre_cextra = rs.cloud.extra;
  const Vec pre_x = es.x_plus;
  const Vec pre_yp = es.y_plus;
  const Vec pre_ym = es.y_minus;
  const std::map<std::string, Vec> pre_extra = es.extra;

  alg.cloud_sync(rs.ctx, p);

  damp(rs.cloud.x, pre_cx, alpha);
  damp(rs.cloud.y, pre_cy, alpha);
  for (auto& [name, v] : rs.cloud.extra) {
    const auto it = pre_cextra.find(name);
    if (it != pre_cextra.end()) damp(v, it->second, alpha);
  }
  damp(es.x_plus, pre_x, alpha);
  damp(es.y_plus, pre_yp, alpha);
  damp(es.y_minus, pre_ym, alpha);
  for (auto& [name, v] : es.extra) {
    const auto it = pre_extra.find(name);
    if (it != pre_extra.end()) damp(v, it->second, alpha);
  }
  rs.ctx.part = nullptr;

  // Push-down: the subtree re-anchors on the damped cloud model (worker
  // momentum stays as the algorithm's own push-down left it).
  for (const std::size_t w : engine_.topo_.workers_of_edge(e)) {
    rs.workers[w].x = rs.cloud.x;
  }
  er.e_cloud_base[e] = p;

  if (obs::enabled()) {
    obs::CommAccountant& comm = obs::CommAccountant::global();
    comm.record(obs::Link::kEdgeToCloud, e, rs.edge_up_bytes);
    comm.record(obs::Link::kCloudToEdge, e, rs.edge_down_bytes);
    reg.counter("evt.cloud_syncs", er.policy_label).add();
  }

  const Scalar done = tev + model_->cloud_aggregate(er.crng) +
                      model_->cloud_broadcast(er.crng);
  er.last_time = std::max(er.last_time, done);
  engine_.record_point(rs, er.steps_total / rs.workers.size(), rs.cloud.x,
                       done);
}

// Two-tier cloud aggregation over a worker cohort — the cloud-level analog
// of edge_cohort_sync (single aggregator, α over global weights).
void AsyncEngine::cloud_cohort_sync(fl::Algorithm& alg, EvtRun& er,
                                    std::vector<std::size_t> cohort,
                                    Scalar tev) {
  fl::RunState& rs = er.rs;
  std::sort(cohort.begin(), cohort.end());

  std::vector<std::size_t> admitted, discarded;
  for (const std::size_t w : cohort) {
    const std::size_t tau = er.cloud_version - er.w_version[w];
    if (static_cast<std::int64_t>(tau) > cfg_.max_staleness) {
      discarded.push_back(w);
    } else {
      admitted.push_back(w);
    }
  }

  const Scalar agg = model_->cloud_aggregate(er.crng);
  const Scalar down = model_->cloud_broadcast(er.crng);
  obs::Registry& reg = obs::Registry::global();

  if (!admitted.empty()) {
    const std::size_t p = ++er.cloud_version;

    er.roster_w.assign(rs.workers.size(), 0);
    er.roster_e.assign(rs.edges.size(), 1);
    er.scale.assign(rs.workers.size(), 1.0);
    Scalar alpha = 0;
    for (const std::size_t w : admitted) {
      const std::size_t tau = p - 1 - er.w_version[w];
      const Scalar s = staleness_weight(cfg_.staleness_decay, tau);
      er.roster_w[w] = 1;
      er.scale[w] = s;
      alpha += rs.workers[w].weight_global * s;
      ++er.admitted;
      er.tau_sum += static_cast<Scalar>(tau);
      er.max_tau = std::max(er.max_tau, tau);
      if (obs::enabled()) {
        reg.histogram("evt.staleness", er.policy_label, staleness_bounds())
            .observe(static_cast<double>(tau));
      }
    }
    er.mpart->set_roster(er.roster_w, er.roster_e, &er.scale);
    rs.ctx.part = er.mpart.get();

    for (const std::size_t w : admitted) {
      const std::size_t tau = p - 1 - er.w_version[w];
      if (tau > 0) {
        ++er.stale;
        alg.stale_sync(rs.ctx, rs.workers[w], tau);
      }
    }

    const Vec pre_cx = rs.cloud.x;
    const Vec pre_cy = rs.cloud.y;
    const std::map<std::string, Vec> pre_cextra = rs.cloud.extra;

    alg.cloud_sync(rs.ctx, p);

    damp(rs.cloud.x, pre_cx, alpha);
    damp(rs.cloud.y, pre_cy, alpha);
    for (auto& [name, v] : rs.cloud.extra) {
      const auto it = pre_cextra.find(name);
      if (it != pre_cextra.end()) damp(v, it->second, alpha);
    }
    rs.ctx.part = nullptr;

    if (obs::enabled()) {
      reg.counter("evt.cloud_syncs", er.policy_label).add();
    }
    engine_.record_point(rs, er.steps_total / rs.workers.size(), rs.cloud.x,
                         tev + agg + down);
  }

  if (obs::enabled()) {
    obs::CommAccountant& comm = obs::CommAccountant::global();
    for (const std::size_t w : cohort) {
      comm.record(obs::Link::kWorkerToCloud, w, rs.worker_up_bytes);
      comm.record(obs::Link::kCloudToWorker, w, rs.worker_down_bytes);
    }
  }
  for (const std::size_t w : discarded) {
    ++er.dropped;
    rs.workers[w].reset_interval_accumulators();
  }
  for (const std::size_t w : cohort) {
    fl::WorkerState& ws = rs.workers[w];
    ws.x = rs.cloud.x;
    er.w_version[w] = er.cloud_version;
    ++er.w_interval[w];
    dispatch_worker(alg, er, w, tev + agg + down);
  }
  er.last_time = std::max(er.last_time, tev + agg + down);
}

fl::RunResult AsyncEngine::run_event_driven(fl::Algorithm& alg,
                                            const sim::FaultPlan* plan) {
  const obs::Span run_span("run:" + alg.name(), "evt");
  HFL_CHECK(engine_.provider_ == nullptr,
            "virtualized populations support only the sync policy: "
            "semi-async/async aggregation mutates arbitrary workers between "
            "cohort boundaries");

  EvtRun er;
  er.plan = plan;
  if (plan != nullptr && !plan->schedule().is_noop()) {
    plan->schedule().validate(engine_.topo_, engine_.cfg_);
    er.schedule = &plan->schedule();
  }
  er.three_tier = alg.three_tier();
  er.K = engine_.cfg_.total_iterations / engine_.cfg_.tau;
  er.policy_label = std::string("policy=") + fl::to_string(cfg_.policy);

  fl::RunState& rs = er.rs;
  // Training state exactly as the barrier engine would build it (same seed →
  // same initial point, same batch streams); ctx.part stays null outside
  // aggregation/absence windows, where the manual roster is swapped in.
  engine_.prepare_run(alg, nullptr, nullptr, rs);

  const std::size_t W = engine_.topo_.num_workers();
  const std::size_t E = engine_.topo_.num_edges();
  er.mpart = std::make_unique<fl::Participation>(engine_.topo_, rs.workers,
                                                 er.three_tier);
  if (er.schedule != nullptr) {
    er.mpart->set_absent_policy(er.schedule->absent_policy,
                                er.schedule->absent_decay);
    rs.result.worker_miss_counts.assign(W, 0);
  }

  // Per-entity latency streams.
  Rng lroot(sim_.seed);
  er.wrng.reserve(W);
  for (std::size_t w = 0; w < W; ++w) {
    er.wrng.push_back(lroot.fork(0xA5A50000u + w));
  }
  er.erng.reserve(E);
  for (std::size_t e = 0; e < E; ++e) {
    er.erng.push_back(lroot.fork(0xE5E50000u + e));
  }
  er.crng = lroot.fork(0xC10D);

  er.w_interval.assign(W, 0);
  er.w_version.assign(W, 0);
  er.w_up.assign(W, 1);
  er.e_version.assign(E, 0);
  er.e_round.assign(E, 0);
  er.e_since_cloud.assign(E, 0);
  er.e_cloud_base.assign(E, 0);
  er.e_inbox.resize(E);
  er.e_deadline_armed.assign(E, 0);
  er.e_up.assign(E, 1);

  engine_.record_point(rs, 0, rs.cloud.x, 0.0);
  for (std::size_t w = 0; w < W; ++w) dispatch_worker(alg, er, w, 0.0);

  obs::Registry& reg = obs::Registry::global();
  while (!er.q.empty()) {
    const Event ev = er.q.pop();
    er.last_time = std::max(er.last_time, ev.time);
    switch (ev.type) {
      case EventType::kWorkerReady:
        worker_arrival(alg, er, ev);
        break;
      case EventType::kEdgeSync: {
        // Semi-async deadline at edge `entity`.
        const std::size_t e = ev.entity;
        er.e_deadline_armed[e] = 0;
        std::vector<std::size_t> cohort = std::move(er.e_inbox[e]);
        er.e_inbox[e].clear();
        if (cohort.empty()) break;  // flushed elsewhere — nothing to do
        bool eup = true;
        if (er.schedule != nullptr) {
          const std::size_t kc =
              std::min(er.e_round[e] + 1, er.schedule->num_intervals);
          eup = er.schedule->edge_available(kc, e);
        }
        note_availability(er, /*is_edge=*/true, e, eup, ev.time);
        if (!eup) {
          // The whole round misses: the outage consumes one schedule round
          // and every cohort member an interval.
          ++er.e_round[e];
          for (const std::size_t w : cohort) {
            ++er.dropped;
            miss_interval(alg, er, w, ev.time);
          }
          break;
        }
        edge_cohort_sync(alg, er, e, std::move(cohort), ev.time);
        break;
      }
      case EventType::kCloudSync:
        if (er.three_tier) {
          cloud_edge_arrival(alg, er, ev.entity, ev.round, ev.time);
        } else {
          // Two-tier semi-async deadline.
          er.c_deadline_armed = false;
          std::vector<std::size_t> cohort = std::move(er.c_inbox);
          er.c_inbox.clear();
          if (!cohort.empty()) {
            cloud_cohort_sync(alg, er, std::move(cohort), ev.time);
          }
        }
        break;
      case EventType::kFault:
        if (obs::enabled()) reg.counter("evt.fault.transitions").add();
        break;
      case EventType::kEval:
        break;  // unused by the event-driven policies
    }
  }

  // Terminal flush: edges still holding un-pushed aggregations (a partial π
  // window) hand them to the cloud in ascending edge order.
  if (er.three_tier) {
    for (std::size_t e = 0; e < E; ++e) {
      if (er.e_since_cloud[e] > 0 && er.e_version[e] > 0) {
        er.e_since_cloud[e] = 0;
        const Scalar up = model_->edge_upload(er.erng[e]);
        cloud_edge_arrival(alg, er, e, er.e_cloud_base[e], er.last_time + up);
      }
    }
  }

  // Final curve point at the final cloud model.
  const std::size_t final_iter = er.steps_total / W;
  if (rs.result.curve.back().iteration != final_iter ||
      rs.result.curve.size() == 1) {
    engine_.record_point(rs, final_iter, rs.cloud.x, er.last_time);
  }

  rs.result.sim_seconds = er.last_time;
  rs.result.admitted_updates = er.admitted;
  rs.result.stale_updates = er.stale;
  rs.result.dropped_updates = er.dropped;
  rs.result.max_staleness_seen = er.max_tau;
  rs.result.mean_staleness =
      er.admitted > 0 ? er.tau_sum / static_cast<Scalar>(er.admitted) : 0.0;

  if (obs::enabled()) {
    reg.counter("evt.updates.admitted", er.policy_label).add(er.admitted);
    reg.counter("evt.updates.stale", er.policy_label).add(er.stale);
    reg.counter("evt.updates.dropped", er.policy_label).add(er.dropped);
  }

  engine_.finalize_run(alg, rs);
  return rs.result;
}

}  // namespace hfl::evt
