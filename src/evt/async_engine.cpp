#include "src/evt/async_engine.h"

#include <algorithm>
#include <deque>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/errors.h"
#include "src/common/rng.h"
#include "src/common/vec_ops.h"
#include "src/evt/event_queue.h"
#include "src/fl/state.h"
#include "src/net/profiles.h"
#include "src/obs/comm.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/sim/fault_plan.h"

namespace hfl::evt {

namespace {

// The embedded fl::Engine always carries the sync policy: the requested
// config is validated FIRST, so policy-specific errors (semi_async without a
// deadline, async + batched cohort) surface against the user's actual
// settings, and only then sanitized down to what fl::Engine accepts.
// Everything the event-driven paths read through Context::cfg (τ, π, the
// staleness knobs, seeds) is preserved.
fl::RunConfig toolbox_config(fl::RunConfig cfg) {
  cfg.validate();
  cfg.policy = fl::ExecPolicy::kSync;
  cfg.semi_async_deadline_s = 0.0;
  cfg.adaptive_deadline = false;
  return cfg;
}

// v ← (1−α)·pre + α·v — the damped fold of an asynchronous aggregation: the
// aggregator only moves by the admitted cohort's effective (staleness-scaled)
// mass. A full fresh cohort has α = 1 and keeps the plain aggregation; a
// lone stale straggler barely moves the tier. Vectors the aggregation
// resized (algorithm-specific scratch appearing mid-run) are kept as-is.
void damp(Vec& v, const Vec& pre, Scalar alpha) {
  if (alpha >= 1.0 || v.size() != pre.size()) return;
  vec::axpby(1.0 - alpha, pre, alpha, v);  // fused (1−α)·pre + α·v
}

// s(τ) = staleness_decay^τ.
Scalar staleness_weight(Scalar decay, std::size_t tau) {
  Scalar s = 1.0;
  for (std::size_t i = 0; i < tau; ++i) s *= decay;
  return s;
}

// Bucket bounds of the evt.staleness histogram (aggregator versions).
const std::vector<double>& staleness_bounds() {
  static const std::vector<double> bounds{0, 1, 2, 4, 8, 16};
  return bounds;
}

}  // namespace

// The aggregation-visible slice of a worker's state, frozen at upload time
// and stamped with the aggregator version of the model the interval was
// trained on. While the snapshot is in flight the live worker keeps training
// (communication overlaps computation); the aggregation later folds the
// snapshot, never the live state.
struct UploadSnapshot {
  std::size_t download_version = 0;
  Vec x, y, v, grad;
  Scalar last_loss = 0;
  Vec sum_grad, sum_y, sum_v;
  std::map<std::string, Vec> extra;
};

// One arrived upload, as the cohort-sync helpers consume it.
struct Arrival {
  std::size_t w = 0;
  UploadSnapshot snap;
};

// A refresh in flight toward one worker: the version stamp plus exactly the
// fields the aggregation's push-down changed (x is always present — every
// aggregation re-anchors its cohort on the damped tier model). Applied at
// the worker's next interval boundary; an older message never overwrites a
// newer one, so download_version is monotone per worker.
struct DownloadMsg {
  std::size_t version = 0;
  bool has_y = false, has_v = false, has_grad = false;
  bool has_sum_grad = false, has_sum_y = false, has_sum_v = false;
  Vec x, y, v, grad, sum_grad, sum_y, sum_v;
  std::map<std::string, Vec> extra;  // changed entries only
};

namespace {

// Freeze the aggregation-visible fields; the live worker keeps its model and
// momentum (it continues training from where it stands) but hands its
// interval accumulators to the snapshot (they describe the uploaded
// interval, not the next one).
UploadSnapshot snapshot_worker(fl::WorkerState& ws, std::size_t version) {
  UploadSnapshot s;
  s.download_version = version;
  s.x = ws.x;
  s.y = ws.y;
  s.v = ws.v;
  s.grad = ws.grad;
  s.last_loss = ws.last_loss;
  s.sum_grad = ws.sum_grad;
  s.sum_y = ws.sum_y;
  s.sum_v = ws.sum_v;
  s.extra = ws.extra;
  ws.reset_interval_accumulators();
  return s;
}

// Swap the aggregation-visible fields between the live worker and a
// snapshot. Aggregations run against the snapshot state swapped in (so
// Algorithm hooks read/write plain WorkerState), then swap back — the live
// in-progress state is never touched by a sync. Model/batcher handles and
// the static weights stay with the live state.
void swap_snapshot(fl::WorkerState& ws, UploadSnapshot& s) {
  std::swap(ws.x, s.x);
  std::swap(ws.y, s.y);
  std::swap(ws.v, s.v);
  std::swap(ws.grad, s.grad);
  std::swap(ws.last_loss, s.last_loss);
  std::swap(ws.sum_grad, s.sum_grad);
  std::swap(ws.sum_y, s.sum_y);
  std::swap(ws.sum_v, s.sum_v);
  std::swap(ws.extra, s.extra);
}

// Copy of the push-down-visible fields taken right before Algorithm sync
// hooks run, to diff what the push-down actually changed.
struct PushBase {
  Vec y, v, grad, sum_grad, sum_y, sum_v;
  std::map<std::string, Vec> extra;
};

PushBase push_baseline(const fl::WorkerState& ws) {
  return PushBase{ws.y,     ws.v,     ws.grad, ws.sum_grad,
                  ws.sum_y, ws.sum_v, ws.extra};
}

// Compose the download for one admitted worker: the damped tier model plus
// whatever else the algorithm's push-down wrote (diffed against the
// pre-sync baseline, so e.g. HierAdMo's momentum hand-off w.y = e.y_minus
// travels while untouched scratch does not).
DownloadMsg diff_pushdown(const fl::WorkerState& ws, const PushBase& base,
                          std::size_t version, const Vec& anchor) {
  DownloadMsg m;
  m.version = version;
  m.x = anchor;
  if (ws.y != base.y) {
    m.has_y = true;
    m.y = ws.y;
  }
  if (ws.v != base.v) {
    m.has_v = true;
    m.v = ws.v;
  }
  if (ws.grad != base.grad) {
    m.has_grad = true;
    m.grad = ws.grad;
  }
  if (ws.sum_grad != base.sum_grad) {
    m.has_sum_grad = true;
    m.sum_grad = ws.sum_grad;
  }
  if (ws.sum_y != base.sum_y) {
    m.has_sum_y = true;
    m.sum_y = ws.sum_y;
  }
  if (ws.sum_v != base.sum_v) {
    m.has_sum_v = true;
    m.sum_v = ws.sum_v;
  }
  for (const auto& [name, vv] : ws.extra) {
    const auto it = base.extra.find(name);
    if (it == base.extra.end() || it->second != vv) m.extra.emplace(name, vv);
  }
  return m;
}

}  // namespace

// Mutable state of one event-driven run. The fl::RunState inside must not
// move after prepare_run (Context holds pointers into it), so EvtRun lives
// on run_event_driven's stack and is only ever passed by reference.
struct EvtRun {
  fl::RunState rs;
  EventQueue q;
  std::unique_ptr<fl::Participation> mpart;  // manual-roster view
  const sim::FaultPlan* plan = nullptr;
  const fl::ParticipationSchedule* schedule = nullptr;  // null = fault-free
  bool three_tier = true;
  std::size_t K = 0;            // edge intervals per worker (T/τ)
  Scalar last_time = 0;         // latest modeled instant touched
  std::size_t steps_total = 0;  // local steps executed across all workers
  std::string policy_label;     // obs label, e.g. "policy=semi_async"

  // Per-entity latency streams forked off TimeSimConfig::seed: arrival ORDER
  // depends on the sampled delays, but each entity's delay SEQUENCE depends
  // only on the seed — no handler ordering can perturb another stream.
  // wrng feeds each worker's compute + upload draws (in that alternating
  // order per interval), wdrng its download-leg draws, so splitting the
  // monolithic worker event did not reorder any existing stream.
  std::vector<Rng> wrng, wdrng, erng;
  Rng crng{0};

  // Worker progress: completed intervals (quota K), aggregator version of
  // the model the worker currently trains on (the staleness base of its next
  // upload), last observed availability.
  std::vector<std::size_t> w_interval, w_version;
  std::vector<std::uint8_t> w_up;

  // In-flight communication state per worker: FIFO of snapshots racing up
  // the uplink (the uplink serializes, so arrivals are FIFO too), the
  // instant the uplink frees up, and the latest received-but-unapplied
  // refresh (newer versions supersede older ones in this slot).
  std::vector<std::deque<UploadSnapshot>> w_upq;
  std::vector<Scalar> uplink_free;
  std::vector<DownloadMsg> w_pending;
  std::vector<std::uint8_t> w_has_pending;
  // In-flight download payloads, indexed by Event::round of kWorkerDownload.
  std::vector<DownloadMsg> dmsgs;

  // Edge aggregator state: version (bumped per aggregation and per
  // cloud-driven model refresh), fault-schedule round counter, edge
  // intervals since the last cloud push, cloud version at the last cloud
  // interaction, semi-async inbox + armed-deadline flag.
  std::vector<std::size_t> e_version, e_round, e_since_cloud, e_cloud_base;
  std::vector<std::vector<Arrival>> e_inbox;
  std::vector<std::uint8_t> e_deadline_armed, e_up;

  std::size_t cloud_version = 0;
  std::vector<Arrival> c_inbox;  // two-tier semi-async
  bool c_deadline_armed = false;

  // Adaptive semi-async deadlines: per-aggregator EWMA of the observed
  // arrival spread (last − first arrival of each fired round) and the
  // current round's spread trackers. Seeded so the first armed deadline is
  // exactly semi_async_deadline_s.
  std::vector<Scalar> e_deadline_ewma, e_first_arrival, e_last_arrival;
  Scalar c_deadline_ewma = 0, c_first_arrival = 0, c_last_arrival = 0;

  // Staleness accounting (RunResult + obs).
  std::size_t admitted = 0, stale = 0, dropped = 0, max_tau = 0;
  Scalar tau_sum = 0;

  // Communication-event accounting.
  std::size_t uploads_arrived = 0, uploads_coalesced = 0;
  std::size_t downloads_scheduled = 0, downloads_applied = 0;
  std::size_t downloads_superseded = 0;
  Scalar overlap_s = 0;

  // Roster scratch reused across aggregations.
  std::vector<std::uint8_t> roster_w, roster_e;
  std::vector<Scalar> scale;
};

AsyncEngine::AsyncEngine(nn::ModelFactory factory, const data::TrainTest& data,
                         data::Partition partition, fl::Topology topo,
                         fl::RunConfig cfg, net::TimeSimConfig sim)
    : cfg_(cfg),
      sim_(std::move(sim)),
      engine_(std::move(factory), data, std::move(partition), std::move(topo),
              toolbox_config(cfg)) {
  if (sim_.model_params == 0) {
    sim_.model_params = engine_.factory_()->num_params();
  }
  if (sim_.worker_devices.empty()) {
    sim_.worker_devices = net::default_worker_roster(engine_.topo_.num_workers());
  }
  sim_.fault_plan = nullptr;  // plans are per-run; see run()
  model_ = std::make_unique<net::LatencyModel>(engine_.topo_, sim_);
}

fl::RunResult AsyncEngine::run(fl::Algorithm& alg, const sim::FaultPlan* plan) {
  if (cfg_.policy == fl::ExecPolicy::kSync) return run_sync(alg, plan);
  return run_event_driven(alg, plan);
}

// ---------------------------------------------------------------------------
// Sync policy: the barrier schedule replayed as events.
//
// The whole timetable is known up front (logical time = iteration index), so
// every event is pushed before the first pop and the (time, seq) order of the
// queue reproduces fl::Engine::run's statement order exactly: local steps,
// edge barrier, cloud round, evaluation, interval tail. Each handler calls
// the corresponding private piece of fl::Engine on the shared RunState, which
// is what makes this policy bit-identical to fl::Engine by construction —
// same calls, same order, same state. Modeled time is stamped afterwards from
// a net::TimeSimulator barrier replay (additive: iteration/loss/accuracy and
// all engine.* counters are untouched).
// ---------------------------------------------------------------------------
fl::RunResult AsyncEngine::run_sync(fl::Algorithm& alg,
                                    const sim::FaultPlan* plan) {
  const obs::Span run_span("run:" + alg.name(), "evt");
  const fl::ParticipationSchedule* schedule =
      plan != nullptr ? &plan->schedule() : nullptr;

  // Virtualized populations ride through the same pieces fl::Engine uses:
  // replay the dense schedule through the oracle adapter and mirror
  // begin_virtual_interval at each interval head.
  const bool virt = engine_.provider_ != nullptr;
  std::unique_ptr<fl::ScheduleOracle> oracle_storage;
  const fl::AvailabilityOracle* oracle = nullptr;
  if (virt && schedule != nullptr && !schedule->is_noop()) {
    schedule->validate(engine_.topo_, engine_.cfg_);
    oracle_storage = std::make_unique<fl::ScheduleOracle>(*schedule);
    oracle = oracle_storage.get();
  }

  fl::RunState rs;
  engine_.prepare_run(alg, virt ? nullptr : schedule, oracle, rs);
  engine_.record_point(rs, 0, rs.cloud.x);

  const fl::RunConfig& cfg = engine_.cfg_;
  const std::size_t global_period = cfg.tau * cfg.pi;

  // Availability flips, grouped by the interval they take effect in.
  std::vector<std::vector<sim::FaultTransition>> flips;
  if (schedule != nullptr && !schedule->is_noop()) {
    flips.resize(cfg.total_iterations / cfg.tau + 1);
    for (const sim::FaultTransition& tr : sim::fault_transitions(*schedule)) {
      if (tr.interval < flips.size()) flips[tr.interval].push_back(tr);
    }
  }

  EventQueue q;
  for (std::size_t t = 1; t <= cfg.total_iterations; ++t) {
    const Scalar time = static_cast<Scalar>(t);
    const bool sync_point = t % cfg.tau == 0;
    const bool cloud_point = t % global_period == 0;
    if ((t - 1) % cfg.tau == 0) {
      // Interval k's availability flips land just before its first local
      // step (the push order IS the tie-break).
      const std::size_t k = (t - 1) / cfg.tau + 1;
      if (k < flips.size()) {
        for (const sim::FaultTransition& tr : flips[k]) {
          q.push({time, 0, EventType::kFault, tr.id, tr.interval, tr.up,
                  tr.is_edge});
        }
      }
    }
    // The barrier collapses the fleet's worker-ready events into one per
    // iteration: under sync semantics every worker steps at the same instant
    // and the engine's (deterministically parallel) dispatch IS that event.
    q.push({time, 0, EventType::kWorkerReady, 0, t, false, false});
    if (alg.three_tier() && sync_point) {
      q.push({time, 0, EventType::kEdgeSync, 0, t / cfg.tau, false, false});
    }
    if (cloud_point) {
      q.push({time, 0, EventType::kCloudSync, 0, t / global_period, false,
              false});
    }
    if (sync_point || cloud_point ||
        (cfg.eval_every != 0 && t % cfg.eval_every == 0)) {
      q.push({time, 0, EventType::kEval, 0, t, false, false});
    }
  }

  obs::Registry& reg = obs::Registry::global();
  while (!q.empty()) {
    const Event ev = q.pop();
    const std::size_t t = ev.round;
    switch (ev.type) {
      case EventType::kFault:
        if (obs::enabled()) reg.counter("evt.fault.transitions").add();
        break;
      case EventType::kWorkerReady:
        rs.ctx.t = t;
        if ((t - 1) % cfg.tau == 0) {
          const std::size_t k = (t - 1) / cfg.tau + 1;
          if (virt) {
            if (k > 1) {
              engine_.begin_virtual_interval(alg, rs, k, oracle, false);
            }
          } else if (rs.part) {
            rs.part->begin_interval(k);
          }
        }
        engine_.run_local_steps(alg, rs);
        break;
      case EventType::kEdgeSync:
        engine_.run_edge_syncs(alg, rs, t);
        if (obs::enabled()) reg.counter("evt.edge_syncs", "policy=sync").add();
        break;
      case EventType::kCloudSync:
        engine_.run_cloud_sync(alg, rs, t);
        if (obs::enabled()) reg.counter("evt.cloud_syncs", "policy=sync").add();
        break;
      case EventType::kEval:
        if (t % global_period == 0) {
          engine_.record_point(rs, t, rs.cloud.x);
        } else if (cfg.eval_every != 0 && t % cfg.eval_every == 0) {
          fl::aggregate_global(rs.workers, fl::worker_x, rs.avg_scratch,
                               nullptr, engine_.pool_.get());
          engine_.record_point(rs, t, rs.avg_scratch);
        }
        if (t % cfg.tau == 0) engine_.finish_interval(alg, rs, t / cfg.tau);
        break;
      case EventType::kWorkerUpload:
      case EventType::kWorkerDownload:
        break;  // event-driven policies only
    }
  }

  engine_.finalize_run(alg, rs);

  // Stamp modeled wall-clock time from the barrier replay of this exact run.
  net::TimeSimConfig tsim = sim_;
  tsim.fault_plan = plan;
  const net::TimeSimulator ts(engine_.topo_, cfg, tsim);
  for (fl::MetricPoint& p : rs.result.curve) {
    p.sim_time = ts.time_at_iteration(p.iteration);
  }
  rs.result.sim_seconds = ts.total_time();
  return rs.result;
}

// ---------------------------------------------------------------------------
// Event-driven policies (semi_async / async).
// ---------------------------------------------------------------------------

// Schedule worker w's next interval of local compute: sample its duration
// from the worker's own latency stream and push the compute-done event.
// Availability and straggler factors come from the fault schedule, resolved
// against the worker's OWN interval counter (capped at the schedule horizon)
// — in an asynchronous run workers drift apart, so "interval k" is
// per-worker progress, not global time. Returns the sampled duration (0 when
// the quota is exhausted or the interval is an offline re-check), which the
// caller uses for the comm/compute overlap accounting.
Scalar AsyncEngine::dispatch_compute(fl::Algorithm& alg, EvtRun& er,
                                     std::size_t w, Scalar base) {
  (void)alg;
  const std::size_t kw = er.w_interval[w] + 1;
  if (kw > er.K) return 0;  // quota exhausted — worker is done
  bool up = true;
  Scalar slowdown = 1.0;
  if (er.schedule != nullptr) {
    const std::size_t kc = std::min(kw, er.schedule->num_intervals);
    up = er.schedule->worker_available(kc, w);
    if (up) slowdown = er.schedule->worker_slowdown(kc, w);
  }
  note_availability(er, /*is_edge=*/false, w, up, base);
  if (!up) {
    // Offline interval: nothing is computed or uploaded; the worker
    // re-checks after a nominal (unstretched) interval of compute time so
    // the outage still occupies modeled time.
    const Scalar dt = model_->worker_compute(er.wrng[w], w, engine_.cfg_.tau);
    er.q.push({base + dt, 0, EventType::kWorkerReady, w, kw, /*absent=*/true,
               false});
    return 0;
  }
  const Scalar compute =
      model_->worker_compute(er.wrng[w], w, engine_.cfg_.tau) * slowdown;
  er.q.push({base + compute, 0, EventType::kWorkerReady, w, kw, false, false});
  return compute;
}

// Record an availability flip as a fault event the first time it is observed
// (rosters themselves are resolved at dispatch/admission points).
void AsyncEngine::note_availability(EvtRun& er, bool is_edge, std::size_t id,
                                    bool up, Scalar time) {
  std::uint8_t& cur = is_edge ? er.e_up[id] : er.w_up[id];
  if ((cur != 0) == up) return;
  cur = up ? 1 : 0;
  er.q.push({time, 0, EventType::kFault, id, 0, up, is_edge});
}

// A worker misses interval consumption without contributing an update (its
// own outage): apply the absent-momentum policy, consume the interval and
// schedule the next one.
void AsyncEngine::miss_interval(fl::Algorithm& alg, EvtRun& er, std::size_t w,
                                Scalar tev) {
  fl::RunState& rs = er.rs;
  ++er.w_interval[w];
  rs.ctx.part = er.mpart.get();
  alg.absent_sync(rs.ctx, rs.workers[w], er.w_interval[w]);
  rs.ctx.part = nullptr;
  if (!rs.result.worker_miss_counts.empty()) {
    ++rs.result.worker_miss_counts[w];
  }
  dispatch_compute(alg, er, w, tev);
}

// A worker's already-uploaded update was refused by a dark aggregator: its
// interval is already consumed and its next compute already dispatched, so
// only the sync-miss bookkeeping runs (absent-momentum hook on the live
// state + the miss count).
void AsyncEngine::miss_sync(fl::Algorithm& alg, EvtRun& er, std::size_t w) {
  fl::RunState& rs = er.rs;
  rs.ctx.part = er.mpart.get();
  alg.absent_sync(rs.ctx, rs.workers[w], er.w_interval[w]);
  rs.ctx.part = nullptr;
  if (!rs.result.worker_miss_counts.empty()) {
    ++rs.result.worker_miss_counts[w];
  }
}

// Apply the latest received refresh, if any, at an interval boundary. Only a
// strictly newer version overwrites the worker (monotone download_version);
// a refresh the worker outran — it already holds a newer version — is
// counted superseded and discarded.
void AsyncEngine::apply_pending_download(EvtRun& er, std::size_t w) {
  if (!er.w_has_pending[w]) return;
  er.w_has_pending[w] = 0;
  DownloadMsg& m = er.w_pending[w];
  if (m.version <= er.w_version[w]) {
    ++er.downloads_superseded;
    return;
  }
  fl::WorkerState& ws = er.rs.workers[w];
  ws.x = std::move(m.x);
  if (m.has_y) ws.y = std::move(m.y);
  if (m.has_v) ws.v = std::move(m.v);
  if (m.has_grad) ws.grad = std::move(m.grad);
  if (m.has_sum_grad) ws.sum_grad = std::move(m.sum_grad);
  if (m.has_sum_y) ws.sum_y = std::move(m.sum_y);
  if (m.has_sum_v) ws.sum_v = std::move(m.sum_v);
  for (auto& [name, vv] : m.extra) ws.extra[name] = std::move(vv);
  er.w_version[w] = m.version;
  ++er.downloads_applied;
  er.w_pending[w] = DownloadMsg{};
}

// Put one refresh on the wire: sample the worker's own download leg, charge
// the bytes, and push the arrival event (round = payload index).
void AsyncEngine::schedule_download(EvtRun& er, std::size_t w, DownloadMsg msg,
                                    Scalar base) {
  const Scalar dt = model_->worker_download(er.wdrng[w], w);
  const std::size_t idx = er.dmsgs.size();
  er.dmsgs.push_back(std::move(msg));
  er.q.push({base + dt, 0, EventType::kWorkerDownload, w, idx, false, false});
  ++er.downloads_scheduled;
  er.last_time = std::max(er.last_time, base + dt);
  if (obs::enabled()) {
    obs::CommAccountant::global().record(
        er.three_tier ? obs::Link::kEdgeToWorker : obs::Link::kCloudToWorker,
        er.three_tier ? er.rs.workers[w].edge : w, er.rs.worker_down_bytes);
  }
}

// A refresh lands at worker w: stash it as the pending download unless a
// newer version is already pending or applied.
void AsyncEngine::download_arrival(EvtRun& er, const Event& ev) {
  const std::size_t w = ev.entity;
  DownloadMsg m = std::move(er.dmsgs[ev.round]);
  if (m.version <= er.w_version[w] ||
      (er.w_has_pending[w] && er.w_pending[w].version >= m.version)) {
    ++er.downloads_superseded;
    return;
  }
  if (er.w_has_pending[w]) ++er.downloads_superseded;
  er.w_pending[w] = std::move(m);
  er.w_has_pending[w] = 1;
}

// A worker finishes one interval of local compute: run its τ local steps
// lazily (so it trains on exactly the model it last downloaded), snapshot
// the result onto the uplink, apply any refresh that arrived while it was
// computing, and immediately start the next interval — the upload's flight
// time overlaps the next compute.
void AsyncEngine::worker_arrival(fl::Algorithm& alg, EvtRun& er,
                                 const Event& ev) {
  fl::RunState& rs = er.rs;
  const std::size_t w = ev.entity;
  if (ev.flag) {  // offline interval (scheduled by dispatch_compute)
    miss_interval(alg, er, w, ev.time);
    return;
  }

  fl::WorkerState& ws = rs.workers[w];
  {
    const obs::Span span("local_steps", "worker");
    for (std::size_t s = 0; s < engine_.cfg_.tau; ++s) {
      rs.ctx.t = ++er.steps_total;
      alg.local_step(rs.ctx, ws);
    }
  }
  const std::size_t kw = ++er.w_interval[w];

  // Snapshot the finished interval onto the uplink (FIFO: the link
  // serializes, so a pipelined upload waits for the previous one to clear).
  er.w_upq[w].push_back(snapshot_worker(ws, er.w_version[w]));
  std::size_t attempts = 1;
  if (er.schedule != nullptr && er.plan != nullptr) {
    attempts =
        er.plan->upload_attempts(std::min(kw, er.schedule->num_intervals), w);
  }
  const Scalar up_start = std::max(ev.time, er.uplink_free[w]);
  const Scalar upload = model_->worker_upload(er.wrng[w], w, attempts);
  const Scalar arrive = up_start + upload;
  er.uplink_free[w] = arrive;
  er.q.push({arrive, 0, EventType::kWorkerUpload, w, kw, false, false});
  er.last_time = std::max(er.last_time, arrive);

  // Interval boundary: fold in the freshest refresh received in flight, then
  // start the next interval's compute while the upload travels.
  apply_pending_download(er, w);
  const Scalar next_compute = dispatch_compute(alg, er, w, ev.time);
  if (next_compute > 0) {
    const Scalar overlap =
        std::min(arrive, ev.time + next_compute) - up_start;
    if (overlap > 0) er.overlap_s += overlap;
  }
}

// A worker's upload lands at its aggregator: charge the uplink bytes (the
// transfer happened whatever its fate) and route per policy.
void AsyncEngine::upload_arrival(fl::Algorithm& alg, EvtRun& er,
                                 const Event& ev) {
  fl::RunState& rs = er.rs;
  const std::size_t w = ev.entity;
  HFL_CHECK(!er.w_upq[w].empty(), "upload arrival without an in-flight snapshot");
  Arrival arr{w, std::move(er.w_upq[w].front())};
  er.w_upq[w].pop_front();
  ++er.uploads_arrived;
  if (obs::enabled()) {
    // Every arrival is charged exactly once, here — including updates later
    // discarded for staleness or refused by a dark aggregator, whose bytes
    // were spent all the same.
    obs::CommAccountant::global().record(
        er.three_tier ? obs::Link::kWorkerToEdge : obs::Link::kWorkerToCloud,
        er.three_tier ? rs.workers[w].edge : w, rs.worker_up_bytes);
  }

  if (er.three_tier) {
    const std::size_t e = rs.workers[w].edge;
    if (cfg_.policy == fl::ExecPolicy::kSemiAsync) {
      // Admission happens when the edge's deadline fires; arm it on the
      // round's first arrival. A worker that laps the deadline (its next
      // upload arrives before the round fires) coalesces: the newer
      // snapshot subsumes the older one — uploads are cumulative states,
      // so no work is lost.
      auto& inbox = er.e_inbox[e];
      bool coalesced = false;
      for (Arrival& prev : inbox) {
        if (prev.w == w) {
          prev.snap = std::move(arr.snap);
          ++er.uploads_coalesced;
          coalesced = true;
          break;
        }
      }
      if (!coalesced) inbox.push_back(std::move(arr));
      er.e_last_arrival[e] = ev.time;
      if (!er.e_deadline_armed[e]) {
        er.e_deadline_armed[e] = 1;
        er.e_first_arrival[e] = ev.time;
        er.q.push({ev.time + aggregator_deadline(er, /*edge_tier=*/true, e), 0,
                   EventType::kEdgeSync, e, 0, false, false});
      }
      return;
    }
    // Fully async: the arrival IS the aggregation trigger.
    bool eup = true;
    if (er.schedule != nullptr) {
      const std::size_t kc =
          std::min(er.e_round[e] + 1, er.schedule->num_intervals);
      eup = er.schedule->edge_available(kc, e);
    }
    note_availability(er, /*is_edge=*/true, e, eup, ev.time);
    if (!eup) {
      // Refused at a dark edge: the update is lost and the refusal consumes
      // one edge schedule round — a long outage burns through its scheduled
      // rounds instead of freezing the subtree forever.
      ++er.dropped;
      ++er.e_round[e];
      miss_sync(alg, er, w);
      return;
    }
    std::vector<Arrival> cohort;
    cohort.push_back(std::move(arr));
    edge_cohort_sync(alg, er, e, std::move(cohort), ev.time);
    return;
  }

  // Two-tier: workers talk straight to the cloud.
  if (cfg_.policy == fl::ExecPolicy::kSemiAsync) {
    auto& inbox = er.c_inbox;
    bool coalesced = false;
    for (Arrival& prev : inbox) {
      if (prev.w == w) {
        prev.snap = std::move(arr.snap);
        ++er.uploads_coalesced;
        coalesced = true;
        break;
      }
    }
    if (!coalesced) inbox.push_back(std::move(arr));
    er.c_last_arrival = ev.time;
    if (!er.c_deadline_armed) {
      er.c_deadline_armed = true;
      er.c_first_arrival = ev.time;
      er.q.push({ev.time + aggregator_deadline(er, /*edge_tier=*/false, 0), 0,
                 EventType::kCloudSync, 0, 0, /*deadline=*/true, false});
    }
    return;
  }
  std::vector<Arrival> cohort;
  cohort.push_back(std::move(arr));
  cloud_cohort_sync(alg, er, std::move(cohort), ev.time);
}

// Current admission deadline of an aggregator. Fixed at
// semi_async_deadline_s unless adaptive_deadline tunes it per round:
// deadline = deadline_margin × EWMA(arrival spread), clamped to
// [0.25, 4] × the configured base so a degenerate round (single arrival,
// spread 0) cannot collapse the deadline to zero.
Scalar AsyncEngine::aggregator_deadline(const EvtRun& er, bool edge_tier,
                                        std::size_t e) const {
  const Scalar base = cfg_.semi_async_deadline_s;
  if (!cfg_.adaptive_deadline) return base;
  const Scalar ewma = edge_tier ? er.e_deadline_ewma[e] : er.c_deadline_ewma;
  return std::min(4.0 * base,
                  std::max(0.25 * base, cfg_.deadline_margin * ewma));
}

// Fold a fired round's observed arrival spread into the aggregator's EWMA.
void AsyncEngine::note_round_spread(EvtRun& er, bool edge_tier,
                                    std::size_t e) {
  if (!cfg_.adaptive_deadline) return;
  Scalar& ewma = edge_tier ? er.e_deadline_ewma[e] : er.c_deadline_ewma;
  const Scalar spread = edge_tier
                            ? er.e_last_arrival[e] - er.e_first_arrival[e]
                            : er.c_last_arrival - er.c_first_arrival;
  ewma = 0.5 * (ewma + spread);
}

// Cloud-driven edge model refresh: the edge's model changed without an edge
// aggregation, so bump the edge version and broadcast the new anchor to the
// whole subtree as ordinary versioned downloads — in-flight workers keep
// their causal view and pick the refresh up at their next boundary.
// Momentum travels with the edge's next aggregation push-down, not here
// (the cloud re-anchor is model-only).
void AsyncEngine::broadcast_edge_refresh(EvtRun& er, std::size_t e,
                                         Scalar base) {
  const std::size_t version = ++er.e_version[e];
  const fl::EdgeState& es = er.rs.edges[e];
  for (const std::size_t w : engine_.topo_.workers_of_edge(e)) {
    DownloadMsg m;
    m.version = version;
    m.x = es.x_plus;
    schedule_download(er, w, std::move(m), base);
  }
}

// Edge aggregation over an arrived cohort of upload snapshots. Splits the
// cohort by the staleness bound (τ measured against each snapshot's
// download_version), swaps the admitted snapshots in as the worker states
// Algorithm::edge_sync reads, folds the result with the damped α-mix, then
// swaps the live states back and ships each cohort member a versioned
// download (admitted: the damped model + the push-down's changes; discarded:
// a forced model refresh). The live workers are never touched — they are
// mid-flight in their next interval.
void AsyncEngine::edge_cohort_sync(fl::Algorithm& alg, EvtRun& er,
                                   std::size_t e, std::vector<Arrival> cohort,
                                   Scalar tev) {
  fl::RunState& rs = er.rs;
  fl::EdgeState& es = rs.edges[e];
  std::sort(cohort.begin(), cohort.end(),
            [](const Arrival& a, const Arrival& b) { return a.w < b.w; });

  obs::Registry& reg = obs::Registry::global();
  std::vector<std::size_t> admitted, discarded;  // indices into cohort
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    const std::size_t dv = cohort[i].snap.download_version;
    HFL_CHECK(dv <= er.e_version[e],
              "upload stamped with a future edge version — download "
              "versioning broke monotonicity");
    const std::size_t tau = er.e_version[e] - dv;
    // The histogram profiles every update the aggregator saw, dropped ones
    // included; RunResult's mean/max stay admitted-only.
    if (obs::enabled()) {
      reg.histogram("evt.staleness", er.policy_label, staleness_bounds())
          .observe(static_cast<double>(tau));
    }
    if (static_cast<std::int64_t>(tau) > cfg_.max_staleness) {
      discarded.push_back(i);
    } else {
      admitted.push_back(i);
    }
  }

  const Scalar agg = model_->edge_aggregate(er.erng[e]);
  std::size_t refresh_version = er.e_version[e];

  if (!admitted.empty()) {
    const std::size_t k_agg = ++er.e_version[e];
    ++er.e_round[e];
    refresh_version = k_agg;

    // Roster + staleness weights (s multiplies the data-size mass before the
    // per-edge renormalization inside Participation).
    er.roster_w.assign(rs.workers.size(), 0);
    er.roster_e.assign(rs.edges.size(), 0);
    er.roster_e[e] = 1;
    er.scale.assign(rs.workers.size(), 1.0);
    Scalar alpha = 0;
    for (const std::size_t i : admitted) {
      const std::size_t w = cohort[i].w;
      const std::size_t tau = k_agg - 1 - cohort[i].snap.download_version;
      const Scalar s = staleness_weight(cfg_.staleness_decay, tau);
      er.roster_w[w] = 1;
      er.scale[w] = s;
      alpha += rs.workers[w].weight_in_edge * s;
      ++er.admitted;
      er.tau_sum += static_cast<Scalar>(tau);
      er.max_tau = std::max(er.max_tau, tau);
    }
    er.mpart->set_roster(er.roster_w, er.roster_e, &er.scale);
    rs.ctx.part = er.mpart.get();

    // The aggregation reads the uploaded snapshots, not the live in-flight
    // states: swap them in, run the staleness hook, remember the push-down
    // baseline.
    std::vector<PushBase> bases(admitted.size());
    for (std::size_t j = 0; j < admitted.size(); ++j) {
      Arrival& a = cohort[admitted[j]];
      swap_snapshot(rs.workers[a.w], a.snap);
      const std::size_t tau = k_agg - 1 - a.snap.download_version;
      if (tau > 0) {
        ++er.stale;
        alg.stale_sync(rs.ctx, rs.workers[a.w], tau);
      }
      bases[j] = push_baseline(rs.workers[a.w]);
    }

    // Aggregate against the cohort, then α-damp every edge vector back
    // toward its pre-sync value.
    const Vec pre_x = es.x_plus;
    const Vec pre_yp = es.y_plus;
    const Vec pre_ym = es.y_minus;
    const std::map<std::string, Vec> pre_extra = es.extra;
    {
      const fl::EdgeSyncGuard guard(engine_.edge_sync_entries_,
                                    alg.edge_sync_reentrant());
      alg.edge_sync(rs.ctx, es, k_agg);
    }
    damp(es.x_plus, pre_x, alpha);
    damp(es.y_plus, pre_yp, alpha);
    damp(es.y_minus, pre_ym, alpha);
    for (auto& [name, v] : es.extra) {
      const auto it = pre_extra.find(name);
      if (it != pre_extra.end()) damp(v, it->second, alpha);
    }
    rs.ctx.part = nullptr;

    // Compose each admitted member's download off the post-sync snapshot
    // state (anchored on the damped model), then hand the live state back.
    for (std::size_t j = 0; j < admitted.size(); ++j) {
      Arrival& a = cohort[admitted[j]];
      DownloadMsg msg =
          diff_pushdown(rs.workers[a.w], bases[j], k_agg, es.x_plus);
      swap_snapshot(rs.workers[a.w], a.snap);
      schedule_download(er, a.w, std::move(msg), tev + agg);
    }

    if (obs::enabled()) {
      reg.counter("evt.edge_syncs", er.policy_label).add();
    }
  }

  // Discarded updates: the uploaded interval is lost; the worker is forced
  // back onto the edge's current model (its next upload will be fresh).
  for (const std::size_t i : discarded) {
    ++er.dropped;
    DownloadMsg msg;
    msg.version = refresh_version;
    msg.x = es.x_plus;
    schedule_download(er, cohort[i].w, std::move(msg), tev + agg);
  }
  er.last_time = std::max(er.last_time, tev + agg);

  // Every π-th edge aggregation ships the edge state up to the cloud.
  if (!admitted.empty() && ++er.e_since_cloud[e] >= engine_.cfg_.pi) {
    er.e_since_cloud[e] = 0;
    const Scalar up = model_->edge_upload(er.erng[e]);
    er.q.push({tev + agg + up, 0, EventType::kCloudSync, e, er.e_cloud_base[e],
               false, false});
  }
}

// An edge's update lands at the cloud (three-tier). Staleness is measured in
// cloud versions since the edge's last cloud interaction (`base_version`,
// carried by the event). The cloud folds the edge's state through an
// edge-only roster — no worker is written: if the fold changes the edge
// model, the subtree hears about it through broadcast_edge_refresh's
// versioned downloads (never retroactively). `broadcast` is false only for
// the post-loop terminal flush, where no event would ever be processed.
void AsyncEngine::cloud_edge_arrival(fl::Algorithm& alg, EvtRun& er,
                                     std::size_t e, std::size_t base_version,
                                     Scalar tev, bool broadcast) {
  fl::RunState& rs = er.rs;
  fl::EdgeState& es = rs.edges[e];
  const std::size_t tau_e = er.cloud_version - base_version;
  obs::Registry& reg = obs::Registry::global();
  if (obs::enabled()) {
    // The upload's bytes were spent whatever its fate (see below for the
    // admit/discard split); the histogram likewise profiles every arrival.
    obs::CommAccountant::global().record(obs::Link::kEdgeToCloud, e,
                                         rs.edge_up_bytes);
    reg.histogram("evt.staleness", er.policy_label, staleness_bounds())
        .observe(static_cast<double>(tau_e));
  }

  if (static_cast<std::int64_t>(tau_e) > cfg_.max_staleness) {
    // Too far behind: the edge update is discarded and the edge re-anchored
    // on the current cloud model, which flows to its workers as an ordinary
    // versioned refresh.
    ++er.dropped;
    es.x_plus = rs.cloud.x;
    er.e_cloud_base[e] = er.cloud_version;
    if (obs::enabled()) {
      obs::CommAccountant::global().record(obs::Link::kCloudToEdge, e,
                                           rs.edge_down_bytes);
    }
    const Scalar done = tev + model_->cloud_broadcast(er.crng);
    er.last_time = std::max(er.last_time, done);
    if (broadcast) broadcast_edge_refresh(er, e, done);
    return;
  }

  const std::size_t p = ++er.cloud_version;
  ++er.admitted;
  er.tau_sum += static_cast<Scalar>(tau_e);
  er.max_tau = std::max(er.max_tau, tau_e);
  if (tau_e > 0) ++er.stale;

  // Roster: the edge alone. cloud_sync's worker push-down loops see an
  // all-absent worker roster and skip — in-flight workers are refreshed
  // through versioned downloads, not retroactive writes.
  er.roster_e.assign(rs.edges.size(), 0);
  er.roster_e[e] = 1;
  er.mpart->set_edge_roster(er.roster_e);
  rs.ctx.part = er.mpart.get();

  const Scalar alpha =
      es.weight_global * staleness_weight(cfg_.staleness_decay, tau_e);
  const Vec pre_cx = rs.cloud.x;
  const Vec pre_cy = rs.cloud.y;
  const std::map<std::string, Vec> pre_cextra = rs.cloud.extra;
  const Vec pre_x = es.x_plus;
  const Vec pre_yp = es.y_plus;
  const Vec pre_ym = es.y_minus;
  const std::map<std::string, Vec> pre_extra = es.extra;

  alg.cloud_sync(rs.ctx, p);

  damp(rs.cloud.x, pre_cx, alpha);
  damp(rs.cloud.y, pre_cy, alpha);
  for (auto& [name, v] : rs.cloud.extra) {
    const auto it = pre_cextra.find(name);
    if (it != pre_cextra.end()) damp(v, it->second, alpha);
  }
  damp(es.x_plus, pre_x, alpha);
  damp(es.y_plus, pre_yp, alpha);
  damp(es.y_minus, pre_ym, alpha);
  for (auto& [name, v] : es.extra) {
    const auto it = pre_extra.find(name);
    if (it != pre_extra.end()) damp(v, it->second, alpha);
  }
  rs.ctx.part = nullptr;
  er.e_cloud_base[e] = p;

  if (obs::enabled()) {
    obs::CommAccountant::global().record(obs::Link::kCloudToEdge, e,
                                         rs.edge_down_bytes);
    reg.counter("evt.cloud_syncs", er.policy_label).add();
  }

  const Scalar done = tev + model_->cloud_aggregate(er.crng) +
                      model_->cloud_broadcast(er.crng);
  er.last_time = std::max(er.last_time, done);
  // The fold moved the edge's model: version it and broadcast, so the
  // subtree converges on the cloud view causally.
  if (broadcast && es.x_plus != pre_x) {
    broadcast_edge_refresh(er, e, done);
  }
  engine_.record_point(rs, er.steps_total / rs.workers.size(), rs.cloud.x,
                       done);
}

// Two-tier cloud aggregation over a worker cohort — the cloud-level analog
// of edge_cohort_sync (single aggregator, α over global weights).
void AsyncEngine::cloud_cohort_sync(fl::Algorithm& alg, EvtRun& er,
                                    std::vector<Arrival> cohort, Scalar tev) {
  fl::RunState& rs = er.rs;
  std::sort(cohort.begin(), cohort.end(),
            [](const Arrival& a, const Arrival& b) { return a.w < b.w; });

  obs::Registry& reg = obs::Registry::global();
  std::vector<std::size_t> admitted, discarded;  // indices into cohort
  for (std::size_t i = 0; i < cohort.size(); ++i) {
    const std::size_t dv = cohort[i].snap.download_version;
    HFL_CHECK(dv <= er.cloud_version,
              "upload stamped with a future cloud version — download "
              "versioning broke monotonicity");
    const std::size_t tau = er.cloud_version - dv;
    if (obs::enabled()) {
      reg.histogram("evt.staleness", er.policy_label, staleness_bounds())
          .observe(static_cast<double>(tau));
    }
    if (static_cast<std::int64_t>(tau) > cfg_.max_staleness) {
      discarded.push_back(i);
    } else {
      admitted.push_back(i);
    }
  }

  const Scalar agg = model_->cloud_aggregate(er.crng);
  std::size_t refresh_version = er.cloud_version;

  if (!admitted.empty()) {
    const std::size_t p = ++er.cloud_version;
    refresh_version = p;

    er.roster_w.assign(rs.workers.size(), 0);
    er.roster_e.assign(rs.edges.size(), 1);
    er.scale.assign(rs.workers.size(), 1.0);
    Scalar alpha = 0;
    for (const std::size_t i : admitted) {
      const std::size_t w = cohort[i].w;
      const std::size_t tau = p - 1 - cohort[i].snap.download_version;
      const Scalar s = staleness_weight(cfg_.staleness_decay, tau);
      er.roster_w[w] = 1;
      er.scale[w] = s;
      alpha += rs.workers[w].weight_global * s;
      ++er.admitted;
      er.tau_sum += static_cast<Scalar>(tau);
      er.max_tau = std::max(er.max_tau, tau);
    }
    er.mpart->set_roster(er.roster_w, er.roster_e, &er.scale);
    rs.ctx.part = er.mpart.get();

    std::vector<PushBase> bases(admitted.size());
    for (std::size_t j = 0; j < admitted.size(); ++j) {
      Arrival& a = cohort[admitted[j]];
      swap_snapshot(rs.workers[a.w], a.snap);
      const std::size_t tau = p - 1 - a.snap.download_version;
      if (tau > 0) {
        ++er.stale;
        alg.stale_sync(rs.ctx, rs.workers[a.w], tau);
      }
      bases[j] = push_baseline(rs.workers[a.w]);
    }

    const Vec pre_cx = rs.cloud.x;
    const Vec pre_cy = rs.cloud.y;
    const std::map<std::string, Vec> pre_cextra = rs.cloud.extra;

    alg.cloud_sync(rs.ctx, p);

    damp(rs.cloud.x, pre_cx, alpha);
    damp(rs.cloud.y, pre_cy, alpha);
    for (auto& [name, v] : rs.cloud.extra) {
      const auto it = pre_cextra.find(name);
      if (it != pre_cextra.end()) damp(v, it->second, alpha);
    }
    rs.ctx.part = nullptr;

    for (std::size_t j = 0; j < admitted.size(); ++j) {
      Arrival& a = cohort[admitted[j]];
      DownloadMsg msg =
          diff_pushdown(rs.workers[a.w], bases[j], p, rs.cloud.x);
      swap_snapshot(rs.workers[a.w], a.snap);
      schedule_download(er, a.w, std::move(msg), tev + agg);
    }

    if (obs::enabled()) {
      reg.counter("evt.cloud_syncs", er.policy_label).add();
    }
    engine_.record_point(rs, er.steps_total / rs.workers.size(), rs.cloud.x,
                         tev + agg);
  }

  for (const std::size_t i : discarded) {
    ++er.dropped;
    DownloadMsg msg;
    msg.version = refresh_version;
    msg.x = rs.cloud.x;
    schedule_download(er, cohort[i].w, std::move(msg), tev + agg);
  }
  er.last_time = std::max(er.last_time, tev + agg);
}

fl::RunResult AsyncEngine::run_event_driven(fl::Algorithm& alg,
                                            const sim::FaultPlan* plan) {
  const obs::Span run_span("run:" + alg.name(), "evt");
  HFL_CHECK(engine_.provider_ == nullptr,
            "virtualized populations support only the sync policy: "
            "semi-async/async aggregation mutates arbitrary workers between "
            "cohort boundaries");

  EvtRun er;
  er.plan = plan;
  if (plan != nullptr && !plan->schedule().is_noop()) {
    plan->schedule().validate(engine_.topo_, engine_.cfg_);
    er.schedule = &plan->schedule();
  }
  er.three_tier = alg.three_tier();
  er.K = engine_.cfg_.total_iterations / engine_.cfg_.tau;
  er.policy_label = std::string("policy=") + fl::to_string(cfg_.policy);

  fl::RunState& rs = er.rs;
  // Training state exactly as the barrier engine would build it (same seed →
  // same initial point, same batch streams); ctx.part stays null outside
  // aggregation/absence windows, where the manual roster is swapped in.
  engine_.prepare_run(alg, nullptr, nullptr, rs);

  const std::size_t W = engine_.topo_.num_workers();
  const std::size_t E = engine_.topo_.num_edges();
  er.mpart = std::make_unique<fl::Participation>(engine_.topo_, rs.workers,
                                                 er.three_tier);
  if (er.schedule != nullptr) {
    er.mpart->set_absent_policy(er.schedule->absent_policy,
                                er.schedule->absent_decay);
    rs.result.worker_miss_counts.assign(W, 0);
  }

  // Per-entity latency streams. The download streams are separate forks so
  // the split compute/upload/download events leave each worker's historical
  // compute+upload sequence untouched.
  Rng lroot(sim_.seed);
  er.wrng.reserve(W);
  er.wdrng.reserve(W);
  for (std::size_t w = 0; w < W; ++w) {
    er.wrng.push_back(lroot.fork(0xA5A50000u + w));
  }
  for (std::size_t w = 0; w < W; ++w) {
    er.wdrng.push_back(lroot.fork(0xD0DD0000u + w));
  }
  er.erng.reserve(E);
  for (std::size_t e = 0; e < E; ++e) {
    er.erng.push_back(lroot.fork(0xE5E50000u + e));
  }
  er.crng = lroot.fork(0xC10D);

  er.w_interval.assign(W, 0);
  er.w_version.assign(W, 0);
  er.w_up.assign(W, 1);
  er.w_upq.resize(W);
  er.uplink_free.assign(W, 0.0);
  er.w_pending.resize(W);
  er.w_has_pending.assign(W, 0);
  er.e_version.assign(E, 0);
  er.e_round.assign(E, 0);
  er.e_since_cloud.assign(E, 0);
  er.e_cloud_base.assign(E, 0);
  er.e_inbox.resize(E);
  er.e_deadline_armed.assign(E, 0);
  er.e_up.assign(E, 1);
  // First adaptive deadline = margin × ewma = the configured base.
  const Scalar ewma0 = cfg_.deadline_margin > 0
                           ? cfg_.semi_async_deadline_s / cfg_.deadline_margin
                           : 0.0;
  er.e_deadline_ewma.assign(E, ewma0);
  er.e_first_arrival.assign(E, 0.0);
  er.e_last_arrival.assign(E, 0.0);
  er.c_deadline_ewma = ewma0;

  engine_.record_point(rs, 0, rs.cloud.x, 0.0);
  for (std::size_t w = 0; w < W; ++w) dispatch_compute(alg, er, w, 0.0);

  obs::Registry& reg = obs::Registry::global();
  while (!er.q.empty()) {
    const Event ev = er.q.pop();
    er.last_time = std::max(er.last_time, ev.time);
    switch (ev.type) {
      case EventType::kWorkerReady:
        worker_arrival(alg, er, ev);
        break;
      case EventType::kWorkerUpload:
        upload_arrival(alg, er, ev);
        break;
      case EventType::kWorkerDownload:
        download_arrival(er, ev);
        break;
      case EventType::kEdgeSync: {
        // Semi-async deadline at edge `entity`.
        const std::size_t e = ev.entity;
        er.e_deadline_armed[e] = 0;
        std::vector<Arrival> cohort = std::move(er.e_inbox[e]);
        er.e_inbox[e].clear();
        if (cohort.empty()) break;  // flushed elsewhere — nothing to do
        note_round_spread(er, /*edge_tier=*/true, e);
        bool eup = true;
        if (er.schedule != nullptr) {
          const std::size_t kc =
              std::min(er.e_round[e] + 1, er.schedule->num_intervals);
          eup = er.schedule->edge_available(kc, e);
        }
        note_availability(er, /*is_edge=*/true, e, eup, ev.time);
        if (!eup) {
          // The whole round misses: the outage consumes one schedule round
          // and every member's uploaded interval is lost (their own
          // progress continues — compute was already redispatched).
          ++er.e_round[e];
          for (const Arrival& a : cohort) {
            ++er.dropped;
            miss_sync(alg, er, a.w);
          }
          break;
        }
        edge_cohort_sync(alg, er, e, std::move(cohort), ev.time);
        break;
      }
      case EventType::kCloudSync:
        if (er.three_tier) {
          cloud_edge_arrival(alg, er, ev.entity, ev.round, ev.time,
                             /*broadcast=*/true);
        } else {
          // Two-tier semi-async deadline.
          er.c_deadline_armed = false;
          std::vector<Arrival> cohort = std::move(er.c_inbox);
          er.c_inbox.clear();
          if (!cohort.empty()) {
            note_round_spread(er, /*edge_tier=*/false, 0);
            cloud_cohort_sync(alg, er, std::move(cohort), ev.time);
          }
        }
        break;
      case EventType::kFault:
        if (obs::enabled()) reg.counter("evt.fault.transitions").add();
        break;
      case EventType::kEval:
        break;  // unused by the event-driven policies
    }
  }

  // Terminal flush: edges still holding un-pushed aggregations (a partial π
  // window) hand them to the cloud in ascending edge order. No broadcast —
  // the queue is drained, so a download event would never be processed.
  if (er.three_tier) {
    for (std::size_t e = 0; e < E; ++e) {
      if (er.e_since_cloud[e] > 0 && er.e_version[e] > 0) {
        er.e_since_cloud[e] = 0;
        const Scalar up = model_->edge_upload(er.erng[e]);
        cloud_edge_arrival(alg, er, e, er.e_cloud_base[e], er.last_time + up,
                           /*broadcast=*/false);
      }
    }
  }

  // Final curve point at the final cloud model.
  const std::size_t final_iter = er.steps_total / W;
  if (rs.result.curve.back().iteration != final_iter ||
      rs.result.curve.size() == 1) {
    engine_.record_point(rs, final_iter, rs.cloud.x, er.last_time);
  }

  rs.result.sim_seconds = er.last_time;
  rs.result.admitted_updates = er.admitted;
  rs.result.stale_updates = er.stale;
  rs.result.dropped_updates = er.dropped;
  rs.result.max_staleness_seen = er.max_tau;
  rs.result.mean_staleness =
      er.admitted > 0 ? er.tau_sum / static_cast<Scalar>(er.admitted) : 0.0;
  rs.result.overlap_seconds = er.overlap_s;
  rs.result.downloads_applied = er.downloads_applied;
  rs.result.downloads_superseded = er.downloads_superseded;

  if (obs::enabled()) {
    reg.counter("evt.updates.admitted", er.policy_label).add(er.admitted);
    reg.counter("evt.updates.stale", er.policy_label).add(er.stale);
    reg.counter("evt.updates.dropped", er.policy_label).add(er.dropped);
    reg.counter("evt.uploads.arrived", er.policy_label)
        .add(er.uploads_arrived);
    reg.counter("evt.uploads.coalesced", er.policy_label)
        .add(er.uploads_coalesced);
    reg.counter("evt.downloads.scheduled", er.policy_label)
        .add(er.downloads_scheduled);
    reg.counter("evt.downloads.applied", er.policy_label)
        .add(er.downloads_applied);
    reg.counter("evt.downloads.superseded", er.policy_label)
        .add(er.downloads_superseded);
    reg.counter("evt.overlap_modeled_ms", er.policy_label)
        .add(static_cast<std::uint64_t>(er.overlap_s * 1e3));
    if (cfg_.adaptive_deadline) {
      Scalar mean_ewma = er.c_deadline_ewma;
      if (er.three_tier && E > 0) {
        mean_ewma = 0;
        for (std::size_t e = 0; e < E; ++e) mean_ewma += er.e_deadline_ewma[e];
        mean_ewma /= static_cast<Scalar>(E);
      }
      reg.gauge("evt.deadline.ewma_ms", er.policy_label)
          .set(static_cast<double>(mean_ewma * 1e3));
    }
  }

  engine_.finalize_run(alg, rs);
  return rs.result;
}

}  // namespace hfl::evt
