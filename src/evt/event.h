// Event vocabulary of the discrete-event engine (DESIGN.md §12).
//
// Simulated time is the execution order: every state mutation of an
// event-driven run happens inside the handler of one of these events, and
// the deterministic queue (event_queue.h) fixes the handler order as a pure
// function of the seeds. `time` is modeled seconds; `seq` is the queue's
// push-order stamp that breaks time ties, so two events at the same instant
// always replay in the order they were scheduled.
#pragma once

#include <cstdint>

#include "src/common/types.h"

namespace hfl::evt {

enum class EventType : std::uint8_t {
  // A worker finishes one interval of local work. Sync policy: the
  // interval's upload rides along (monolithic barrier step). Event-driven
  // policies: compute only — the τ local steps execute lazily inside this
  // handler on exactly the model the worker last downloaded, the upload is
  // snapshotted here and travels as a separate kWorkerUpload event so the
  // next interval's compute overlaps the transfer.
  kWorkerReady,
  // A worker's in-flight upload (snapshotted at its kWorkerReady) lands at
  // its aggregator — the edge in three-tier runs, the cloud in two-tier
  // runs. entity = worker id, round = the worker interval that produced it.
  kWorkerUpload,
  // A refreshed model (stamped with the aggregator version that produced
  // it) lands at a worker. entity = worker id, round = the engine's index
  // of the in-flight message payload. Applied at the worker's next interval
  // boundary; an older message never overwrites a newer one, so each
  // worker's download_version is monotone.
  kWorkerDownload,
  // An edge aggregation point: the barrier instant (sync policy) or a
  // semi-async admission deadline expiring at one edge.
  kEdgeSync,
  // A cloud aggregation point: the barrier instant, an edge's update
  // arriving at the cloud (three-tier), or a two-tier admission deadline.
  kCloudSync,
  // An availability transition (worker or edge going up/down) becoming
  // visible to the engine. Bookkeeping: rosters are resolved against the
  // fault schedule at dispatch points, this event records the flip in the
  // trace and the obs counters.
  kFault,
  // Bookkeeping for the sync policy: curve recording and per-interval
  // accounting, scheduled after the same-instant synchronization events.
  kEval,
};

const char* to_string(EventType type);

struct Event {
  Scalar time = 0;        // modeled seconds
  std::uint64_t seq = 0;  // queue-assigned push order; breaks time ties
  EventType type = EventType::kWorkerReady;
  std::size_t entity = 0;  // worker id / edge id (type-dependent)
  std::size_t round = 0;   // iteration t, interval k, or round index
  bool flag = false;   // kWorkerReady: worker absent; kFault: entity came up
  bool is_edge = false;  // kFault: entity is an edge node
};

}  // namespace hfl::evt
