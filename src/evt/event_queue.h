// Deterministic discrete-event queue.
//
// A binary min-heap ordered lexicographically on (time, seq): `seq` is the
// monotone push-order stamp, so events scheduled for the same instant pop in
// the order they were pushed. That stable tie-break is the whole determinism
// story — given identical push sequences, the pop sequence is identical,
// independent of heap internals, thread count, or platform.
//
// Time only moves forward: pushing an event earlier than the last pop is a
// logic error and throws. The queue reports its high-water depth to the obs
// registry (gauge `evt.queue.depth_max`) when telemetry is enabled.
#pragma once

#include <vector>

#include "src/evt/event.h"

namespace hfl::obs {
class Gauge;  // src/obs/registry.h
}

namespace hfl::evt {

class EventQueue {
 public:
  EventQueue();

  // Schedules `e` (its `seq` is overwritten with the push-order stamp).
  // Throws hfl::Error if e.time precedes the current simulation time.
  void push(Event e);

  // Removes and returns the earliest event, advancing now(). Throws
  // hfl::Error when empty.
  Event pop();

  bool empty() const { return heap_.empty(); }
  std::size_t size() const { return heap_.size(); }

  // Time of the last popped event (0 before the first pop).
  Scalar now() const { return now_; }

  // Total events pushed over the queue's lifetime.
  std::uint64_t total_pushed() const { return next_seq_; }

 private:
  std::vector<Event> heap_;
  std::uint64_t next_seq_ = 0;
  Scalar now_ = 0;
  obs::Gauge* depth_gauge_ = nullptr;  // null when telemetry is disabled
};

}  // namespace hfl::evt
