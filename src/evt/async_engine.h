// Event-driven engine: drives an Algorithm through a deterministic
// discrete-event queue, so simulated time is the actual execution order
// (DESIGN.md §12).
//
// Three execution policies, selected by RunConfig::policy:
//
//   * sync — the paper's barrier schedule reproduced as events. Built from
//     the same per-step pieces as fl::Engine (friend access to its helpers),
//     so curves, final parameters and engine obs counters are bit-identical
//     to fl::Engine for every registry algorithm at any thread count — the
//     degenerate correctness anchor, asserted by tests/async_engine_test.cpp.
//     On top, every curve point is stamped with the modeled wall-clock time
//     of the barrier replay (net::TimeSimulator over the same TimeSimConfig).
//
//   * semi_async — deadline-based cohort admission per aggregator: each edge
//     (each round of the cloud, for two-tier algorithms) waits
//     `semi_async_deadline_s` modeled seconds, then aggregates whatever
//     updates arrived, weighting each by staleness (see below). Stragglers
//     simply land in a later round instead of stalling everyone.
//
//   * async — fully event-ordered: every update arrival triggers its
//     aggregator immediately with a single-member cohort.
//
// Staleness contract (semi_async and async): an update dispatched when its
// aggregator was at version v and admitted at version v' has staleness
// τ = v' − v. Admitted updates are weighted by s(τ) = staleness_decay^τ
// (renormalized inside the cohort) and folded into the aggregator state by a
// damped mixing step: state ← (1−α)·state + α·cohort_result with
// α = Σ_admitted full-roster-weight·s(τ) — a full fresh cohort reproduces the
// plain aggregation (α = 1), a lone stale straggler barely moves the tier.
// Updates with τ > max_staleness are dropped and the sender force-refreshed.
// Algorithm::stale_sync runs for every admitted stale update before the
// aggregation. All of this happens at the engine level through the manual
// roster mode of fl::Participation, so every registry algorithm participates
// without async-specific code.
//
// Determinism: the event loop is serial; all latency draws come from
// per-entity RNG streams forked off TimeSimConfig::seed, all training draws
// from the worker-owned streams seeded by RunConfig::seed, and parallelism
// is confined to the deterministic reductions and batch-eval paths of
// src/fl — identical seeds give identical event traces, curves and counters
// at any thread count (tests/async_engine_test.cpp mirrors
// tests/parallel_sync_test.cpp).
#pragma once

#include <memory>

#include "src/evt/event.h"
#include "src/fl/engine.h"
#include "src/net/latency_model.h"
#include "src/net/time_simulator.h"

namespace hfl::sim {
class FaultPlan;  // src/sim/fault_plan.h
}

namespace hfl::evt {

struct EvtRun;  // internal per-run state (async_engine.cpp)

class AsyncEngine {
 public:
  // Same contract as fl::Engine plus the deployment model the event clock
  // samples delays from. `sim.model_params` (0 = auto-filled from the
  // factory) and `sim.worker_devices` (empty = default roster) are
  // completed here; `sim.fault_plan` is ignored — pass the plan to run().
  AsyncEngine(nn::ModelFactory factory, const data::TrainTest& data,
              data::Partition partition, fl::Topology topo, fl::RunConfig cfg,
              net::TimeSimConfig sim);

  fl::RunResult run(fl::Algorithm& alg) { return run(alg, nullptr); }

  // Fault-aware run: the plan (which must outlive the call and match the
  // topology/run) supplies availability, straggler and retry behaviour. In
  // the event-driven policies schedule intervals are resolved against each
  // entity's own round counter (capped at the schedule horizon).
  fl::RunResult run(fl::Algorithm& alg, const sim::FaultPlan* plan);

  const fl::Topology& topology() const { return engine_.topology(); }
  // The policy actually executed (the embedded fl::Engine always reports
  // sync — it only serves as the shared toolbox).
  const fl::RunConfig& config() const { return cfg_; }

 private:
  fl::RunResult run_sync(fl::Algorithm& alg, const sim::FaultPlan* plan);
  fl::RunResult run_event_driven(fl::Algorithm& alg,
                                 const sim::FaultPlan* plan);

  // Event-mode helpers (see async_engine.cpp).
  void dispatch_worker(fl::Algorithm& alg, EvtRun& er, std::size_t w,
                       Scalar base);
  void worker_arrival(fl::Algorithm& alg, EvtRun& er, const Event& ev);
  void edge_cohort_sync(fl::Algorithm& alg, EvtRun& er, std::size_t e,
                        std::vector<std::size_t> cohort, Scalar tev);
  void cloud_cohort_sync(fl::Algorithm& alg, EvtRun& er,
                         std::vector<std::size_t> cohort, Scalar tev);
  void cloud_edge_arrival(fl::Algorithm& alg, EvtRun& er, std::size_t e,
                          std::size_t base_version, Scalar tev);
  void miss_interval(fl::Algorithm& alg, EvtRun& er, std::size_t w, Scalar tev);
  void note_availability(EvtRun& er, bool is_edge, std::size_t id, bool up,
                         Scalar time);

  fl::RunConfig cfg_;       // the requested (validated) configuration
  net::TimeSimConfig sim_;  // completed deployment model
  fl::Engine engine_;       // shared toolbox; runs with a sanitized config
  std::unique_ptr<net::LatencyModel> model_;
};

}  // namespace hfl::evt
