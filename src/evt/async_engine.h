// Event-driven engine: drives an Algorithm through a deterministic
// discrete-event queue, so simulated time is the actual execution order
// (DESIGN.md §12).
//
// Three execution policies, selected by RunConfig::policy:
//
//   * sync — the paper's barrier schedule reproduced as events. Built from
//     the same per-step pieces as fl::Engine (friend access to its helpers),
//     so curves, final parameters and engine obs counters are bit-identical
//     to fl::Engine for every registry algorithm at any thread count — the
//     degenerate correctness anchor, asserted by tests/async_engine_test.cpp.
//     On top, every curve point is stamped with the modeled wall-clock time
//     of the barrier replay (net::TimeSimulator over the same TimeSimConfig).
//
//   * semi_async — deadline-based cohort admission per aggregator: each edge
//     (each round of the cloud, for two-tier algorithms) waits
//     `semi_async_deadline_s` modeled seconds, then aggregates whatever
//     updates arrived, weighting each by staleness (see below). Stragglers
//     simply land in a later round instead of stalling everyone.
//
//   * async — fully event-ordered: every update arrival triggers its
//     aggregator immediately with a single-member cohort.
//
// Staleness contract (semi_async and async): an update trained on the model
// a worker downloaded at aggregator version v and admitted at version v' has
// staleness τ = v' − v ≥ 0. Admitted updates are weighted by
// s(τ) = staleness_decay^τ (renormalized inside the cohort) and folded into
// the aggregator state by a damped mixing step: state ← (1−α)·state +
// α·cohort_result with α = Σ_admitted full-roster-weight·s(τ) — a full fresh
// cohort reproduces the plain aggregation (α = 1), a lone stale straggler
// barely moves the tier. Updates with τ > max_staleness are dropped and the
// sender force-refreshed. Algorithm::stale_sync runs for every admitted
// stale update before the aggregation. All of this happens at the engine
// level through the manual roster mode of fl::Participation, so every
// registry algorithm participates without async-specific code.
//
// Causal model propagation (semi_async and async): communication is explicit
// and versioned in both directions. A worker's finished interval is
// snapshotted into an upload that travels as its own event while the worker
// immediately starts its next local steps (communication overlaps
// computation); τ is measured against the version stamped on the snapshot.
// Aggregations never write through to workers — each cohort member is sent a
// versioned download event carrying exactly what the aggregation's push-down
// changed, applied at the worker's next interval boundary, superseded if a
// newer version arrives first. A cloud round folds an edge's upload through
// an edge-only roster (fl::Participation::set_edge_roster), so in-flight
// workers are never retroactively refreshed: they learn of the new model
// through the edge's next versioned broadcast, and each worker's
// download_version is monotone by construction.
//
// Determinism: the event loop is serial; all latency draws come from
// per-entity RNG streams forked off TimeSimConfig::seed, all training draws
// from the worker-owned streams seeded by RunConfig::seed, and parallelism
// is confined to the deterministic reductions and batch-eval paths of
// src/fl — identical seeds give identical event traces, curves and counters
// at any thread count (tests/async_engine_test.cpp mirrors
// tests/parallel_sync_test.cpp).
#pragma once

#include <memory>

#include "src/evt/event.h"
#include "src/fl/engine.h"
#include "src/net/latency_model.h"
#include "src/net/time_simulator.h"

namespace hfl::sim {
class FaultPlan;  // src/sim/fault_plan.h
}

namespace hfl::evt {

struct EvtRun;       // internal per-run state (async_engine.cpp)
struct Arrival;      // one arrived upload: worker id + state snapshot
struct DownloadMsg;  // one in-flight versioned refresh toward a worker

class AsyncEngine {
 public:
  // Same contract as fl::Engine plus the deployment model the event clock
  // samples delays from. `sim.model_params` (0 = auto-filled from the
  // factory) and `sim.worker_devices` (empty = default roster) are
  // completed here; `sim.fault_plan` is ignored — pass the plan to run().
  AsyncEngine(nn::ModelFactory factory, const data::TrainTest& data,
              data::Partition partition, fl::Topology topo, fl::RunConfig cfg,
              net::TimeSimConfig sim);

  fl::RunResult run(fl::Algorithm& alg) { return run(alg, nullptr); }

  // Fault-aware run: the plan (which must outlive the call and match the
  // topology/run) supplies availability, straggler and retry behaviour. In
  // the event-driven policies schedule intervals are resolved against each
  // entity's own round counter (capped at the schedule horizon).
  fl::RunResult run(fl::Algorithm& alg, const sim::FaultPlan* plan);

  const fl::Topology& topology() const { return engine_.topology(); }
  // The policy actually executed (the embedded fl::Engine always reports
  // sync — it only serves as the shared toolbox).
  const fl::RunConfig& config() const { return cfg_; }

 private:
  fl::RunResult run_sync(fl::Algorithm& alg, const sim::FaultPlan* plan);
  fl::RunResult run_event_driven(fl::Algorithm& alg,
                                 const sim::FaultPlan* plan);

  // Event-mode helpers (see async_engine.cpp).
  Scalar dispatch_compute(fl::Algorithm& alg, EvtRun& er, std::size_t w,
                          Scalar base);
  void worker_arrival(fl::Algorithm& alg, EvtRun& er, const Event& ev);
  void upload_arrival(fl::Algorithm& alg, EvtRun& er, const Event& ev);
  void download_arrival(EvtRun& er, const Event& ev);
  void apply_pending_download(EvtRun& er, std::size_t w);
  void schedule_download(EvtRun& er, std::size_t w, DownloadMsg msg,
                         Scalar base);
  void broadcast_edge_refresh(EvtRun& er, std::size_t e, Scalar base);
  void edge_cohort_sync(fl::Algorithm& alg, EvtRun& er, std::size_t e,
                        std::vector<Arrival> cohort, Scalar tev);
  void cloud_cohort_sync(fl::Algorithm& alg, EvtRun& er,
                         std::vector<Arrival> cohort, Scalar tev);
  void cloud_edge_arrival(fl::Algorithm& alg, EvtRun& er, std::size_t e,
                          std::size_t base_version, Scalar tev,
                          bool broadcast);
  void miss_interval(fl::Algorithm& alg, EvtRun& er, std::size_t w, Scalar tev);
  void miss_sync(fl::Algorithm& alg, EvtRun& er, std::size_t w);
  void note_availability(EvtRun& er, bool is_edge, std::size_t id, bool up,
                         Scalar time);
  Scalar aggregator_deadline(const EvtRun& er, bool edge_tier,
                             std::size_t e) const;
  void note_round_spread(EvtRun& er, bool edge_tier, std::size_t e);

  fl::RunConfig cfg_;       // the requested (validated) configuration
  net::TimeSimConfig sim_;  // completed deployment model
  fl::Engine engine_;       // shared toolbox; runs with a sanitized config
  std::unique_ptr<net::LatencyModel> model_;
};

}  // namespace hfl::evt
