#include "src/net/latency_model.h"

#include <string>

#include "src/common/errors.h"
#include "src/net/time_simulator.h"
#include "src/obs/registry.h"

namespace hfl::net {

LatencyModel::LatencyModel(const fl::Topology& topo, const TimeSimConfig& sim)
    : topo_(&topo), sim_(&sim) {
  sim.validate();
  HFL_CHECK(sim.worker_devices.size() == topo.num_workers(),
            "one device profile per worker required (" +
                std::to_string(sim.worker_devices.size()) + " profiles for " +
                std::to_string(topo.num_workers()) + " workers)");
  payload_ = static_cast<Scalar>(sim.model_params) * sim.bytes_per_param;
}

Scalar LatencyModel::worker_compute(Rng& rng, std::size_t w,
                                    std::size_t steps) const {
  Scalar total = 0;
  for (std::size_t i = 0; i < steps; ++i) {
    total += sim_->worker_devices[w].sample(rng);
  }
  return total;
}

Scalar LatencyModel::worker_upload(Rng& rng, std::size_t w,
                                   std::size_t attempts) const {
  if (sim_->three_tier) {
    return upload_with_retries(
        rng, sim_->worker_edge_link, payload_ * sim_->worker_upload_vectors,
        topo_->workers_in_edge(topo_->edge_of_worker(w)), attempts);
  }
  return upload_with_retries(rng, sim_->worker_cloud_link,
                             payload_ * sim_->worker_upload_vectors,
                             topo_->num_workers(), attempts);
}

Scalar LatencyModel::edge_aggregate(Rng& rng) const {
  return sim_->edge_device.sample(rng);
}

Scalar LatencyModel::edge_broadcast(Rng& rng, std::size_t e) const {
  return sim_->worker_edge_link.sample(
      rng, payload_ * sim_->worker_download_vectors, topo_->workers_in_edge(e));
}

Scalar LatencyModel::worker_download(Rng& rng, std::size_t w) const {
  if (sim_->three_tier) {
    return sim_->worker_edge_link.sample(
        rng, payload_ * sim_->worker_download_vectors,
        topo_->workers_in_edge(topo_->edge_of_worker(w)));
  }
  return sim_->worker_cloud_link.sample(
      rng, payload_ * sim_->worker_download_vectors, topo_->num_workers());
}

Scalar LatencyModel::edge_upload(Rng& rng) const {
  return sim_->edge_cloud_link.sample(
      rng, payload_ * sim_->edge_upload_vectors, topo_->num_edges());
}

Scalar LatencyModel::cloud_aggregate(Rng& rng) const {
  return sim_->cloud_device.sample(rng);
}

Scalar LatencyModel::cloud_broadcast(Rng& rng) const {
  if (sim_->three_tier) {
    return sim_->edge_cloud_link.sample(
        rng, payload_ * sim_->edge_download_vectors, topo_->num_edges());
  }
  return sim_->worker_cloud_link.sample(
      rng, payload_ * sim_->worker_download_vectors, topo_->num_workers());
}

Scalar LatencyModel::upload_with_retries(Rng& rng, const LinkProfile& link,
                                         Scalar payload,
                                         std::size_t concurrent,
                                         std::size_t attempts) const {
  Scalar total = 0;
  Scalar backoff = sim_->retry_backoff_s;
  Scalar backoff_total = 0;
  for (std::size_t a = 1; a <= attempts; ++a) {
    total += link.sample(rng, payload, concurrent);
    if (a < attempts) {
      total += backoff;
      backoff_total += backoff;
      backoff *= sim_->retry_backoff_mult;
    }
  }
  if (attempts > 1 && obs::enabled()) {
    static obs::Counter& retries =
        obs::Registry::global().counter("timesim.upload_retries");
    static obs::Counter& backoff_ms =
        obs::Registry::global().counter("timesim.backoff_modeled_ms");
    retries.add(attempts - 1);
    backoff_ms.add(static_cast<std::uint64_t>(backoff_total * 1e3));
  }
  return total;
}

}  // namespace hfl::net
