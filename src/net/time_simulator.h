// Trace-driven wall-clock simulation (paper Section V-D, Fig. 2(h),(l)).
//
// Training is simulated iteration-exactly by fl::Engine; this module replays
// the resulting iteration trace against sampled computation/communication
// delays to obtain the wall-clock time each iteration would have completed
// at in a real deployment. Synchronization is barrier-style:
//
//   three-tier: per edge interval, every worker computes τ iterations then
//   uploads; the edge waits for its slowest worker, aggregates, and pushes
//   back down. Every π edge intervals the edges additionally traverse the
//   public Internet to the cloud and back.
//
//   two-tier: per global round, every worker computes τ iterations then
//   uploads straight to the cloud over the public Internet.
//
// Payload size per message = model parameters × 4 bytes (float32 on the
// wire) × the algorithm's vector multiplicity (HierAdMo uploads model,
// momentum and the two interval accumulators; FedNAG-style algorithms model
// + momentum; plain-averaging algorithms just the model).
#pragma once

#include <memory>

#include "src/fl/config.h"
#include "src/fl/metrics.h"
#include "src/fl/topology.h"
#include "src/net/latency_model.h"
#include "src/net/profiles.h"

namespace hfl::sim {
class FaultPlan;  // src/sim/fault_plan.h
}

namespace hfl::net {

struct TimeSimConfig {
  bool three_tier = true;
  std::size_t model_params = 0;  // scalar parameter count
  Scalar bytes_per_param = 4.0;  // float32 on the wire

  // Vector multiplicity of each message (see header comment).
  Scalar worker_upload_vectors = 1.0;
  Scalar worker_download_vectors = 1.0;
  Scalar edge_upload_vectors = 1.0;    // three-tier only
  Scalar edge_download_vectors = 1.0;  // three-tier only

  std::vector<DeviceProfile> worker_devices;  // size = num workers
  DeviceProfile edge_device = edge_macbook();
  DeviceProfile cloud_device = cloud_gpu_server();

  LinkProfile worker_edge_link = wifi_5ghz();       // three-tier
  LinkProfile edge_cloud_link = public_internet();  // three-tier
  LinkProfile worker_cloud_link = public_internet();  // two-tier

  std::uint64_t seed = 7;

  // ---- Fault-aware replay (optional) ----
  //
  // When `fault_plan` is set (it must outlive the simulator and match the
  // same topology/run), the timeline reflects the plan: absent workers
  // contribute nothing to their barrier, stragglers' compute is stretched
  // by their slowdown factor, and each failed upload attempt costs one
  // timed-out transfer plus an exponential backoff before the retry
  // (backoff_base_s · backoff_mult^(attempt−1)). A null plan reproduces the
  // fault-free timeline bit for bit.
  const sim::FaultPlan* fault_plan = nullptr;
  Scalar retry_backoff_s = 0.5;    // backoff after the first failed attempt
  Scalar retry_backoff_mult = 2.0; // growth per further failure
  // Deadline-based barriers: > 0 caps how long an aggregator waits for its
  // slowest uploader (stragglers past the budget are dropped at the
  // barrier, which the fault plan's deadline policy mirrors). 0 = wait for
  // the slowest, the paper's pure barrier.
  Scalar barrier_deadline_s = 0.0;

  // Throws hfl::Error on inconsistent settings (called by TimeSimulator,
  // which additionally checks the per-worker roster size and, when a fault
  // plan is attached, its shape against the run).
  void validate() const;
};

// Per-algorithm message multiplicities for the algorithms in the registry.
// Unknown names get the conservative default (1 vector each way).
TimeSimConfig make_time_sim_config(const std::string& algorithm,
                                   bool three_tier, std::size_t model_params,
                                   std::size_t num_workers);

class TimeSimulator {
 public:
  TimeSimulator(const fl::Topology& topo, const fl::RunConfig& cfg,
                TimeSimConfig sim);

  // Cumulative wall-clock seconds at which iteration t completes (including
  // any synchronization ending exactly at t). t may be 0 (returns 0).
  Scalar time_at_iteration(std::size_t t) const;

  // Total simulated time for the full run.
  Scalar total_time() const { return time_at_iteration(cfg_.total_iterations); }

  // Sentinel returned by time_to_accuracy when the curve never reaches the
  // target (0 is a legitimate answer: the initial model may already qualify).
  // Alias of the shared hfl::kNeverTime (src/common/types.h).
  static constexpr Scalar kNeverReached = kNeverTime;

  // The sampling model this simulator replays against (shared with the
  // event-driven engine, which drives it with per-entity RNG streams).
  const LatencyModel& latency_model() const { return *model_; }

  // Wall-clock seconds at which the run (whose accuracy curve is `result`)
  // first reaches `target` accuracy; kNeverReached if it never does.
  Scalar time_to_accuracy(const fl::RunResult& result, Scalar target) const;

 private:
  void build_timeline();

  fl::Topology topo_;
  fl::RunConfig cfg_;
  TimeSimConfig sim_;
  // Sampling model over (topo_, sim_); delay draws happen through it so the
  // barrier replay below and the event-driven engine share one distribution.
  std::unique_ptr<LatencyModel> model_;
  // cumulative_[t] = completion time of iteration t (index 0 = 0.0).
  std::vector<Scalar> cumulative_;
};

}  // namespace hfl::net
