// Device and link profiles for the trace-driven time simulation.
//
// The paper (Section V-D) samples computation delays on real devices (an
// Intel i3 laptop and three Android phones as workers, a MacBook Pro as the
// edge node, a GPU tower server as the cloud) and communication delays on
// real links (5 GHz WiFi worker↔edge, 1 Gbps Ethernet edge↔router, public
// Internet edge↔cloud and worker↔cloud). Those devices are not available
// here, so this module provides parameterized delay distributions calibrated
// to that hardware class (DESIGN.md §3). Delays are sampled once per event
// from truncated normals — the same replay methodology as the paper.
#pragma once

#include <string>
#include <vector>

#include "src/common/rng.h"

namespace hfl::net {

// Per-iteration computation delay (seconds), N(mean, std) truncated at
// `floor` so a lucky sample can never be non-positive.
struct DeviceProfile {
  std::string name;
  Scalar mean_s = 0.1;
  Scalar std_s = 0.01;
  Scalar floor_s = 1e-4;

  Scalar sample(Rng& rng) const;
};

// Link delay = latency + payload / (bandwidth / concurrent), with
// multiplicative jitter ~ N(1, jitter) truncated at 0.2.
//
// `concurrent` models bandwidth contention on a shared access link: when k
// senders traverse the same bottleneck simultaneously (all workers of a
// two-tier system uploading to the cloud; all workers of one edge sharing
// its WiFi), each gets 1/k of the bandwidth. This is exactly the paper's
// Fig. 1 scalability argument — the two-tier architecture pushes N
// end-to-end connections through the public Internet where the three-tier
// architecture pushes only L.
struct LinkProfile {
  std::string name;
  Scalar latency_s = 0.002;
  Scalar bandwidth_bytes_per_s = 1e7;
  Scalar jitter = 0.1;

  Scalar sample(Rng& rng, Scalar payload_bytes,
                std::size_t concurrent = 1) const;
};

// The paper's testbed, as profile presets.
DeviceProfile laptop_i3();            // Intel Core i3 M380 worker
DeviceProfile phone_snapdragon835();  // Nubia z17s worker
DeviceProfile phone_dimensity1200();  // Realme GT Neo worker
DeviceProfile phone_dimensity1000();  // Redmi K30 Ultra worker
DeviceProfile edge_macbook();         // MacBook Pro 2018 edge node
DeviceProfile cloud_gpu_server();     // 4× RTX 2080Ti tower server

LinkProfile wifi_5ghz();        // worker ↔ edge (HUAWEI router, 5 GHz)
LinkProfile ethernet_1gbps();   // edge ↔ router
LinkProfile public_internet();  // edge/worker ↔ cloud (two ISPs)

// The default four-worker roster used by the paper's trace experiment
// (laptop + three phones), cycled when more workers are requested.
std::vector<DeviceProfile> default_worker_roster(std::size_t num_workers);

}  // namespace hfl::net
