// Latency/fault sampling model shared by the barrier replayer and the
// event-driven engine.
//
// `TimeSimConfig` (time_simulator.h) describes a deployment: device compute
// profiles, link profiles, per-message payload multiplicities, retry costs.
// `LatencyModel` turns that description into the individual delay samples a
// timeline is made of — one method per modeled action, each consuming the
// caller's RNG stream. Callers own the streams, which is what makes both
// consumers deterministic:
//
//   * `net::TimeSimulator` replays a finished run's iteration trace against
//     the model with a single sequential stream (bit-identical to the
//     pre-extraction implementation — asserted by the hand-computed
//     expectations in tests/time_sim_test.cpp);
//   * `evt::AsyncEngine` drives one forked stream per worker/edge/cloud
//     entity, so event *arrival order* can depend on the sampled delays
//     while each entity's delay sequence depends only on the seed.
//
// Which link a worker uses (WiFi to its edge vs. public Internet straight to
// the cloud) and how many transfers contend for it follow from the config's
// `three_tier` flag and the topology, exactly as in the barrier replayer.
#pragma once

#include "src/fl/topology.h"
#include "src/net/profiles.h"

namespace hfl::net {

struct TimeSimConfig;  // src/net/time_simulator.h

class LatencyModel {
 public:
  // `topo` and `sim` must outlive the model. Validates `sim` and the
  // per-worker device roster against the topology.
  LatencyModel(const fl::Topology& topo, const TimeSimConfig& sim);

  // Compute time of `steps` local iterations on worker w (one device sample
  // per step; the caller applies any straggler slowdown factor).
  Scalar worker_compute(Rng& rng, std::size_t w, std::size_t steps) const;

  // Worker w's model upload — WiFi to its edge (three-tier, contending with
  // its edge siblings) or public Internet to the cloud (two-tier, contending
  // with every worker). `attempts` > 1 burns failed transfers + exponential
  // backoff (see upload_with_retries).
  Scalar worker_upload(Rng& rng, std::size_t w, std::size_t attempts) const;

  // Aggregation compute at an edge node / broadcast of the refreshed model
  // down to edge e's workers (one transfer, shared medium).
  Scalar edge_aggregate(Rng& rng) const;
  Scalar edge_broadcast(Rng& rng, std::size_t e) const;

  // Worker w's model download as an individual transfer — the per-entity
  // leg of the event-driven engine's versioned download events, where each
  // worker's refresh arrives on its own sampled delay (three-tier: the edge
  // WiFi shared with its siblings; two-tier: the public Internet shared
  // with every worker). The barrier replayer keeps using edge_broadcast
  // (one shared-medium draw per sync).
  Scalar worker_download(Rng& rng, std::size_t w) const;

  // Edge-to-cloud upload over the public Internet (three-tier only).
  Scalar edge_upload(Rng& rng) const;

  // Aggregation compute at the cloud / push-back down the tree (to edges in
  // three-tier mode, straight to workers in two-tier mode).
  Scalar cloud_aggregate(Rng& rng) const;
  Scalar cloud_broadcast(Rng& rng) const;

  // Cost of `attempts` tries of one upload whose clean duration is sampled
  // per try: failed attempts burn a full (timed-out) transfer plus
  // exponential backoff before the retry.
  Scalar upload_with_retries(Rng& rng, const LinkProfile& link, Scalar payload,
                             std::size_t concurrent,
                             std::size_t attempts) const;

  // Payload bytes of one model copy (params × bytes_per_param).
  Scalar payload_bytes() const { return payload_; }
  const TimeSimConfig& config() const { return *sim_; }

 private:
  const fl::Topology* topo_;
  const TimeSimConfig* sim_;
  Scalar payload_ = 0;
};

}  // namespace hfl::net
