#include "src/net/profiles.h"

#include <algorithm>

namespace hfl::net {

Scalar DeviceProfile::sample(Rng& rng) const {
  return std::max(floor_s, rng.normal(mean_s, std_s));
}

Scalar LinkProfile::sample(Rng& rng, Scalar payload_bytes,
                           std::size_t concurrent) const {
  const Scalar k = static_cast<Scalar>(concurrent < 1 ? 1 : concurrent);
  const Scalar base =
      latency_s + payload_bytes * k / bandwidth_bytes_per_s;
  const Scalar j = std::max(Scalar{0.2}, rng.normal(1.0, jitter));
  return base * j;
}

DeviceProfile laptop_i3() { return {"laptop-i3-M380", 0.42, 0.05, 1e-4}; }
DeviceProfile phone_snapdragon835() {
  return {"nubia-z17s-sd835", 0.30, 0.04, 1e-4};
}
DeviceProfile phone_dimensity1200() {
  return {"realme-gt-neo-d1200", 0.14, 0.02, 1e-4};
}
DeviceProfile phone_dimensity1000() {
  return {"redmi-k30u-d1000plus", 0.17, 0.02, 1e-4};
}
DeviceProfile edge_macbook() { return {"macbook-pro-2018", 0.02, 0.004, 1e-5}; }
DeviceProfile cloud_gpu_server() {
  return {"gpu-tower-4x2080ti", 0.004, 0.001, 1e-6};
}

LinkProfile wifi_5ghz() {
  // ~300 Mbit/s effective, small LAN latency.
  return {"wifi-5ghz", 0.003, 300e6 / 8, 0.15};
}

LinkProfile ethernet_1gbps() { return {"ethernet-1gbps", 0.0005, 1e9 / 8, 0.05}; }

LinkProfile public_internet() {
  // ~50 Mbit/s cross-ISP path with 25 ms latency and heavy jitter.
  return {"public-internet", 0.025, 50e6 / 8, 0.30};
}

std::vector<DeviceProfile> default_worker_roster(std::size_t num_workers) {
  const std::vector<DeviceProfile> base = {
      laptop_i3(), phone_snapdragon835(), phone_dimensity1200(),
      phone_dimensity1000()};
  std::vector<DeviceProfile> out;
  out.reserve(num_workers);
  for (std::size_t i = 0; i < num_workers; ++i) {
    out.push_back(base[i % base.size()]);
  }
  return out;
}

}  // namespace hfl::net
