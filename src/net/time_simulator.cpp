#include "src/net/time_simulator.h"

#include <algorithm>
#include <chrono>
#include <string>

#include "src/common/errors.h"
#include "src/fl/comm_model.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/sim/fault_plan.h"

namespace hfl::net {

TimeSimConfig make_time_sim_config(const std::string& algorithm,
                                   bool three_tier, std::size_t model_params,
                                   std::size_t num_workers) {
  TimeSimConfig sim;
  sim.three_tier = three_tier;
  sim.model_params = model_params;
  sim.worker_devices = default_worker_roster(num_workers);

  // Message contents per synchronization: the shared per-algorithm payload
  // table (fl/comm_model.h), also used by the engine's byte accounting.
  const fl::CommProfile profile = fl::comm_profile_for(algorithm);
  sim.worker_upload_vectors = profile.worker_upload_vectors;
  sim.worker_download_vectors = profile.worker_download_vectors;
  sim.edge_upload_vectors = profile.edge_upload_vectors;
  sim.edge_download_vectors = profile.edge_download_vectors;
  return sim;
}

void TimeSimConfig::validate() const {
  HFL_CHECK(model_params > 0, "time simulation needs the model size");
  HFL_CHECK(bytes_per_param > 0, "bytes_per_param must be positive");
  HFL_CHECK(worker_upload_vectors >= 0 && worker_download_vectors >= 0 &&
                edge_upload_vectors >= 0 && edge_download_vectors >= 0,
            "message vector multiplicities must be non-negative");
  HFL_CHECK(retry_backoff_s >= 0, "retry_backoff_s must be non-negative");
  HFL_CHECK(retry_backoff_mult >= 1.0, "retry_backoff_mult must be >= 1");
  HFL_CHECK(barrier_deadline_s >= 0,
            "barrier_deadline_s must be non-negative (0 disables)");
}

TimeSimulator::TimeSimulator(const fl::Topology& topo,
                             const fl::RunConfig& cfg, TimeSimConfig sim)
    : topo_(topo), cfg_(cfg), sim_(std::move(sim)) {
  cfg_.validate();
  // Validates sim_ and the device roster against the topology.
  model_ = std::make_unique<LatencyModel>(topo_, sim_);
  if (sim_.fault_plan != nullptr) {
    const fl::ParticipationSchedule& s = sim_.fault_plan->schedule();
    HFL_CHECK(s.num_workers == topo_.num_workers() &&
                  s.num_edges == topo_.num_edges(),
              "fault plan was built for a different topology");
    HFL_CHECK(s.num_intervals >= cfg_.total_iterations / cfg_.tau,
              "fault plan covers fewer edge intervals than the run");
  }
  build_timeline();
}

void TimeSimulator::build_timeline() {
  // Host cost of constructing the timeline vs. the modeled seconds it
  // spans — the gap the simulator buys over wall-clock replay. Recorded
  // from the host clock only; the modeled timeline itself is untouched.
  const obs::Span span("build_timeline", "timesim");
  const auto host_start = std::chrono::steady_clock::now();

  Rng rng(sim_.seed);
  const sim::FaultPlan* plan = sim_.fault_plan;
  const std::size_t T = cfg_.total_iterations;
  cumulative_.assign(T + 1, 0.0);

  // All delay draws go through the shared LatencyModel with this single
  // sequential stream — the exact sampling order of the pre-extraction
  // implementation (asserted by the hand-computed expectations in
  // tests/time_sim_test.cpp).
  if (sim_.three_tier) {
    // Per-edge running clock; the cloud barrier re-aligns them every π
    // intervals. Between barriers, edges progress independently.
    std::vector<Scalar> edge_clock(topo_.num_edges(), 0.0);
    const std::size_t K = T / cfg_.tau;
    for (std::size_t k = 1; k <= K; ++k) {
      for (std::size_t e = 0; e < topo_.num_edges(); ++e) {
        // A dark edge node runs no barrier this interval: its subtree's
        // clock simply does not advance.
        if (plan != nullptr && !plan->edge_available(k, e)) continue;
        // Workers compute τ iterations in parallel; the edge waits for the
        // slowest (compute + upload over WiFi).
        Scalar slowest = 0;
        bool any_upload = plan == nullptr;
        for (const std::size_t w : topo_.workers_of_edge(e)) {
          if (plan != nullptr && !plan->worker_available(k, w)) continue;
          Scalar compute = model_->worker_compute(rng, w, cfg_.tau);
          if (plan != nullptr) compute *= plan->worker_slowdown(k, w);
          // All workers of this edge share the WiFi uplink.
          const Scalar up = model_->worker_upload(
              rng, w, plan == nullptr ? 1 : plan->upload_attempts(k, w));
          slowest = std::max(slowest, compute + up);
          any_upload = true;
        }
        if (!any_upload) continue;  // whole membership absent: no barrier
        if (sim_.barrier_deadline_s > 0 && slowest > sim_.barrier_deadline_s) {
          slowest = sim_.barrier_deadline_s;
          if (obs::enabled()) {
            obs::Registry::global().counter("timesim.deadline_caps").add();
          }
        }
        const Scalar agg = model_->edge_aggregate(rng);
        const Scalar down = model_->edge_broadcast(rng, e);
        edge_clock[e] += slowest + agg + down;
      }

      const bool cloud_round = (k % cfg_.pi) == 0;
      Scalar now;
      if (cloud_round) {
        // Cloud barrier: every reachable edge uploads over the public
        // Internet; the cloud waits for the slowest, aggregates, and pushes
        // back.
        Scalar slowest_edge = 0;
        bool any_edge = false;
        // L edge nodes share the cloud's access link (Fig. 1: only L
        // connections traverse the public Internet).
        for (std::size_t e = 0; e < topo_.num_edges(); ++e) {
          if (plan != nullptr) {
            // Same rule as the engine: an edge joins the cloud barrier only
            // if it is reachable and has at least one surviving worker.
            if (!plan->edge_available(k, e)) continue;
            bool survivor = false;
            for (const std::size_t w : topo_.workers_of_edge(e)) {
              if (plan->worker_available(k, w)) {
                survivor = true;
                break;
              }
            }
            if (!survivor) continue;
          }
          const Scalar up = model_->edge_upload(rng);
          slowest_edge = std::max(slowest_edge, edge_clock[e] + up);
          any_edge = true;
        }
        if (any_edge) {
          const Scalar agg = model_->cloud_aggregate(rng);
          const Scalar down = model_->cloud_broadcast(rng);
          now = slowest_edge + agg + down;
          // Every edge re-aligns at the barrier (dark edges rejoin here).
          std::fill(edge_clock.begin(), edge_clock.end(), now);
        } else {
          now = *std::max_element(edge_clock.begin(), edge_clock.end());
        }
      } else {
        now = *std::max_element(edge_clock.begin(), edge_clock.end());
      }

      // Fill the interval ((k−1)τ, kτ] by linear interpolation from the
      // previous barrier's time to `now`.
      const std::size_t lo = (k - 1) * cfg_.tau;
      const Scalar t0 = cumulative_[lo];
      for (std::size_t i = 1; i <= cfg_.tau; ++i) {
        cumulative_[lo + i] =
            t0 + (now - t0) * static_cast<Scalar>(i) /
                     static_cast<Scalar>(cfg_.tau);
      }
    }
  } else {
    // Two-tier: global barrier every τ iterations over the public Internet.
    const std::size_t rounds = T / cfg_.tau;
    Scalar clock = 0;
    for (std::size_t r = 1; r <= rounds; ++r) {
      Scalar slowest = 0;
      bool any_upload = plan == nullptr;
      for (std::size_t w = 0; w < topo_.num_workers(); ++w) {
        if (plan != nullptr && !plan->worker_available(r, w)) continue;
        Scalar compute = model_->worker_compute(rng, w, cfg_.tau);
        if (plan != nullptr) compute *= plan->worker_slowdown(r, w);
        // Every worker's end-to-end connection traverses the public
        // Internet and contends for the cloud's access bandwidth (Fig. 1:
        // N connections instead of L).
        const Scalar up = model_->worker_upload(
            rng, w, plan == nullptr ? 1 : plan->upload_attempts(r, w));
        slowest = std::max(slowest, compute + up);
        any_upload = true;
      }
      Scalar now = clock;
      if (any_upload) {
        if (sim_.barrier_deadline_s > 0 && slowest > sim_.barrier_deadline_s) {
          slowest = sim_.barrier_deadline_s;
          if (obs::enabled()) {
            obs::Registry::global().counter("timesim.deadline_caps").add();
          }
        }
        const Scalar agg = model_->cloud_aggregate(rng);
        const Scalar down = model_->cloud_broadcast(rng);
        now = clock + slowest + agg + down;
      }

      const std::size_t lo = (r - 1) * cfg_.tau;
      for (std::size_t i = 1; i <= cfg_.tau; ++i) {
        cumulative_[lo + i] =
            clock + (now - clock) * static_cast<Scalar>(i) /
                        static_cast<Scalar>(cfg_.tau);
      }
      clock = now;
    }
  }

  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.gauge("timesim.modeled_total_s").set(cumulative_[T]);
    reg.gauge("timesim.build_host_s")
        .set(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           host_start)
                 .count());
  }
}

Scalar TimeSimulator::time_at_iteration(std::size_t t) const {
  HFL_CHECK(t < cumulative_.size(), "iteration beyond simulated horizon");
  return cumulative_[t];
}

Scalar TimeSimulator::time_to_accuracy(const fl::RunResult& result,
                                       Scalar target) const {
  const std::size_t t = result.iterations_to_accuracy(target);
  if (t == fl::RunResult::npos) return kNeverReached;
  return time_at_iteration(std::min(t, cumulative_.size() - 1));
}

}  // namespace hfl::net
