// SlowMo [20] (Wang et al., ICLR 2020: "SlowMo: Improving
// communication-efficient distributed SGD with slow momentum").
//
// Two-tier aggregator-momentum baseline: workers run plain local SGD; the
// server keeps a slow momentum buffer over the round-level pseudo-gradient
// Δ_p = x_{p−1} − x̄_p:
//     m_p = β m_{p−1} + Δ_p
//     x_p = x_{p−1} − α m_p
// with β = cfg.gamma_edge and slow learning rate α = 1 (the SlowMo default).
#pragma once

#include "src/fl/algorithm.h"

namespace hfl::algs {

class SlowMo final : public fl::Algorithm {
 public:
  explicit SlowMo(Scalar slow_lr = 1.0) : slow_lr_(slow_lr) {}

  std::string name() const override { return "SlowMo"; }
  bool three_tier() const override { return false; }
  void init(fl::Context& ctx) override;
  bool local_gradient_prefetchable() const override { return true; }
  void local_step(fl::Context& ctx, fl::WorkerState& w) override;
  void cloud_sync(fl::Context& ctx, std::size_t p) override;

 private:
  Scalar slow_lr_;
  Vec x_scratch_;
};

}  // namespace hfl::algs
