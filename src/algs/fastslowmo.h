// FastSlowMo [23] (Yang et al., IEEE TAI 2022: "FastSlowMo: Federated
// learning with combined worker and aggregator momenta").
//
// Two-tier combination-momentum baseline: workers run NAG (fast momentum);
// the server additionally applies SlowMo-style slow momentum on the round
// pseudo-gradient and re-distributes both the updated model and the
// aggregated worker momentum parameter:
//     x̄_p = Σ w_i x_i,   ȳ_p = Σ w_i y_i
//     m_p = β m_{p−1} + (x_{p−1} − x̄_p)
//     x_p = x_{p−1} − m_p;   worker state ← (x_p, ȳ_p)
#pragma once

#include "src/fl/algorithm.h"

namespace hfl::algs {

class FastSlowMo final : public fl::Algorithm {
 public:
  std::string name() const override { return "FastSlowMo"; }
  bool three_tier() const override { return false; }
  void init(fl::Context& ctx) override;
  bool local_gradient_prefetchable() const override { return true; }
  void local_step(fl::Context& ctx, fl::WorkerState& w) override;
  void cloud_sync(fl::Context& ctx, std::size_t p) override;

 private:
  Vec x_scratch_;
};

}  // namespace hfl::algs
