// Name-based algorithm registry used by benches, examples and tests.
//
// Covers the paper's full benchmark set (Table II): HierAdMo, HierAdMo-R,
// HierFAVG, CFL, FastSlowMo, FedADC, FedMom, SlowMo, FedNAG, Mime, FedAvg.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/fl/algorithm.h"

namespace hfl::algs {

// Throws hfl::Error for unknown names. Accepted names are the paper's
// spellings (case-sensitive): "HierAdMo", "HierAdMo-R", "HierFAVG", "CFL",
// "FastSlowMo", "FedADC", "FedMom", "SlowMo", "FedNAG", "Mime", "MimeLite",
// "FedAvg".
std::unique_ptr<fl::Algorithm> make_algorithm(const std::string& name);

// The eleven algorithms of Table II, in the paper's row order.
std::vector<std::string> table2_algorithms();

}  // namespace hfl::algs
