#include "src/algs/cfl.h"

#include "src/core/nag.h"

namespace hfl::algs {

Cfl::Cfl(Scalar participation) : participation_(participation) {
  HFL_CHECK(participation_ > 0 && participation_ <= 1,
            "participation rate must be in (0, 1]");
}

void Cfl::init(fl::Context& ctx) { seed_ = ctx.cfg->seed ^ 0xCF1CF1CF1ULL; }

void Cfl::local_step(fl::Context& ctx, fl::WorkerState& w) {
  core::sgd_local_step(w, ctx.cfg->eta);
}

void Cfl::edge_sync(fl::Context& ctx, fl::EdgeState& e, std::size_t k) {
  // CFL's own client sampling composes with the fault schedule: it draws
  // from the workers that survived the interval.
  const auto& ids = fl::active_workers(ctx.part, *ctx.topo, e.id);

  // Independent stream per (edge round, edge): the draws do not depend on
  // the order in which the engine's parallel barrier visits the edges.
  Rng rng(seed_ +
          0x9E3779B97F4A7C15ULL *
              (static_cast<std::uint64_t>(k) * ctx.topo->num_edges() + e.id));

  // Bernoulli participation, forcing at least one participant per round.
  std::vector<std::size_t> participants;
  for (const std::size_t id : ids) {
    if (rng.uniform() < participation_) participants.push_back(id);
  }
  if (participants.empty()) {
    participants.push_back(ids[rng.uniform_index(ids.size())]);
  }

  // Aggregate participants with renormalized data weights via the fused
  // multi-source sum (one pass over the participant set instead of an axpy
  // sweep per participant), directly into the edge state.
  Scalar total_weight = 0;
  for (const std::size_t id : participants) {
    total_weight += (*ctx.workers)[id].weight_in_edge;
  }
  // thread_local, not members: edge_syncs run concurrently.
  thread_local std::vector<const Vec*> agg_vecs;
  thread_local std::vector<Scalar> agg_weights;
  agg_vecs.clear();
  agg_weights.clear();
  for (const std::size_t id : participants) {
    const fl::WorkerState& w = (*ctx.workers)[id];
    agg_vecs.push_back(&w.x);
    agg_weights.push_back(w.weight_in_edge / total_weight);
  }
  vec::weighted_sum(
      std::span<const Vec* const>(agg_vecs.data(), agg_vecs.size()),
      agg_weights, e.x_plus);

  // Only participants receive the fresh edge model; stragglers keep training
  // on their local models until the cloud round.
  for (const std::size_t id : participants) {
    (*ctx.workers)[id].x = e.x_plus;
  }
}

void Cfl::cloud_sync(fl::Context& ctx, std::size_t) {
  Vec& x = ctx.cloud->x;
  fl::aggregate_edges(*ctx.edges, fl::edge_x_plus, x, ctx.part, ctx.pool);
  for (fl::EdgeState& e : *ctx.edges) {
    if (fl::is_edge_active(ctx.part, e.id)) e.x_plus = x;
  }
  for (fl::WorkerState& w : *ctx.workers) {
    if (fl::is_active(ctx.part, w.id)) w.x = x;
  }
}

}  // namespace hfl::algs
