// CFL [18] (Wang et al., INFOCOM 2021: "Resource-efficient federated
// learning with hierarchical aggregation in edge computing").
//
// Three-tier baseline without momentum. CFL's distinguishing feature is its
// resource-efficient aggregation schedule: at each edge round only a subset
// of workers synchronizes with the edge (saving uplink bandwidth), while the
// remaining workers continue purely local training until the next round or
// the cloud synchronization pulls everyone together. We reproduce that
// schedule with a Bernoulli participation rate per edge round (the paper's
// knapsack-based rate optimization is out of scope — DESIGN.md §2); the
// cloud round aggregates and re-distributes to all workers.
#pragma once

#include <cstdint>

#include "src/common/rng.h"
#include "src/fl/algorithm.h"

namespace hfl::algs {

class Cfl final : public fl::Algorithm {
 public:
  explicit Cfl(Scalar participation = 0.75);

  std::string name() const override { return "CFL"; }
  bool three_tier() const override { return true; }
  void init(fl::Context& ctx) override;
  bool local_gradient_prefetchable() const override { return true; }
  void local_step(fl::Context& ctx, fl::WorkerState& w) override;
  void edge_sync(fl::Context& ctx, fl::EdgeState& e, std::size_t k) override;
  void cloud_sync(fl::Context& ctx, std::size_t p) override;

 private:
  Scalar participation_;
  // Base seed captured at init; edge_sync derives an independent stream per
  // (edge round, edge), so the sampling is identical whether the engine runs
  // the edge barrier serially or in parallel. A single sequential member Rng
  // would make the draws depend on edge execution order.
  std::uint64_t seed_ = 0;
};

}  // namespace hfl::algs
