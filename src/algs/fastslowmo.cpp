#include "src/algs/fastslowmo.h"

#include "src/core/nag.h"

namespace hfl::algs {

void FastSlowMo::init(fl::Context& ctx) {
  ctx.cloud->extra["slow_m"] = Vec(ctx.cloud->x.size(), 0.0);
}

void FastSlowMo::local_step(fl::Context& ctx, fl::WorkerState& w) {
  core::nag_local_step(w, ctx.cfg->eta, ctx.cfg->gamma, /*accumulate=*/false);
}

void FastSlowMo::cloud_sync(fl::Context& ctx, std::size_t) {
  fl::aggregate_global(*ctx.workers, fl::worker_x, x_scratch_, ctx.part,
                       ctx.pool);
  // ȳ_p lands directly in the cloud state (no aliasing with worker vectors).
  fl::aggregate_global(*ctx.workers, fl::worker_y, ctx.cloud->y, ctx.part,
                       ctx.pool);
  Vec& m = ctx.cloud->extra.at("slow_m");
  Vec& x = ctx.cloud->x;
  // m = β m + (x_{p−1} − x̄_p); x −= m (SlowMo fold at α = 1), one pass.
  vec::slowmo_step(x, x_scratch_, m, ctx.cfg->gamma_edge, /*lr=*/1.0);
  for (fl::WorkerState& w : *ctx.workers) {
    if (!fl::is_active(ctx.part, w.id)) continue;
    w.x = x;
    w.y = ctx.cloud->y;
  }
}

}  // namespace hfl::algs
