#include "src/algs/fastslowmo.h"

#include "src/core/nag.h"

namespace hfl::algs {

void FastSlowMo::init(fl::Context& ctx) {
  ctx.cloud->extra["slow_m"] = Vec(ctx.cloud->x.size(), 0.0);
}

void FastSlowMo::local_step(fl::Context& ctx, fl::WorkerState& w) {
  core::nag_local_step(w, ctx.cfg->eta, ctx.cfg->gamma, /*accumulate=*/false);
}

void FastSlowMo::cloud_sync(fl::Context& ctx, std::size_t) {
  fl::aggregate_global(*ctx.workers, fl::worker_x, x_scratch_, ctx.part,
                       ctx.pool);
  fl::aggregate_global(*ctx.workers, fl::worker_y, y_scratch_, ctx.part,
                       ctx.pool);
  Vec& m = ctx.cloud->extra.at("slow_m");
  Vec& x = ctx.cloud->x;
  const Scalar beta = ctx.cfg->gamma_edge;
  for (std::size_t i = 0; i < x.size(); ++i) {
    m[i] = beta * m[i] + (x[i] - x_scratch_[i]);
    x[i] -= m[i];
  }
  ctx.cloud->y = y_scratch_;
  for (fl::WorkerState& w : *ctx.workers) {
    if (!fl::is_active(ctx.part, w.id)) continue;
    w.x = x;
    w.y = y_scratch_;
  }
}

}  // namespace hfl::algs
