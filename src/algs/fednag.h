// FedNAG [21] (Yang et al., TPDS 2022: "Federated learning with Nesterov
// accelerated gradient").
//
// Two-tier worker-momentum baseline: every worker runs NAG locally; at each
// global synchronization the cloud aggregates BOTH the model x and the
// momentum parameter y (data-weighted) and re-distributes them, so local
// momenta continue from the aggregated state.
#pragma once

#include "src/fl/algorithm.h"

namespace hfl::algs {

class FedNag final : public fl::Algorithm {
 public:
  std::string name() const override { return "FedNAG"; }
  bool three_tier() const override { return false; }
  bool local_gradient_prefetchable() const override { return true; }
  void local_step(fl::Context& ctx, fl::WorkerState& w) override;
  void cloud_sync(fl::Context& ctx, std::size_t p) override;
};

}  // namespace hfl::algs
