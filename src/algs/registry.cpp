#include "src/algs/registry.h"

#include "src/algs/cfl.h"
#include "src/algs/fastslowmo.h"
#include "src/algs/fedadc.h"
#include "src/algs/fedavg.h"
#include "src/algs/fedmom.h"
#include "src/algs/fednag.h"
#include "src/algs/hierfavg.h"
#include "src/algs/mime.h"
#include "src/algs/slowmo.h"
#include "src/common/errors.h"
#include "src/core/hieradmo.h"

namespace hfl::algs {

std::unique_ptr<fl::Algorithm> make_algorithm(const std::string& name) {
  if (name == "HierAdMo") return core::make_hieradmo();
  if (name == "HierAdMo-R") return core::make_hieradmo_r();
  if (name == "HierFAVG") return std::make_unique<HierFavg>();
  if (name == "CFL") return std::make_unique<Cfl>();
  if (name == "FastSlowMo") return std::make_unique<FastSlowMo>();
  if (name == "FedADC") return std::make_unique<FedAdc>();
  if (name == "FedMom") return std::make_unique<FedMom>();
  if (name == "SlowMo") return std::make_unique<SlowMo>();
  if (name == "FedNAG") return std::make_unique<FedNag>();
  if (name == "Mime") return std::make_unique<Mime>(true);
  if (name == "MimeLite") return std::make_unique<Mime>(false);
  if (name == "FedAvg") return std::make_unique<FedAvg>();
  throw Error("unknown algorithm: " + name);
}

std::vector<std::string> table2_algorithms() {
  return {"HierAdMo", "HierAdMo-R", "HierFAVG", "CFL",
          "FastSlowMo", "FedADC",   "FedMom",   "SlowMo",
          "FedNAG",   "Mime",       "FedAvg"};
}

}  // namespace hfl::algs
