#include "src/algs/fedadc.h"

namespace hfl::algs {

void FedAdc::init(fl::Context& ctx) {
  ctx.cloud->extra["drift_u"] = Vec(ctx.cloud->x.size(), 0.0);
}

void FedAdc::local_step(fl::Context& ctx, fl::WorkerState& w) {
  w.compute_gradient(w.x);
  const Vec& u = ctx.cloud->extra.at("drift_u");  // read-only across workers
  // x ← x − η (∇F + β u), fused drift-corrected descent.
  vec::descent_drift(w.x, w.grad, u, ctx.cfg->eta, ctx.cfg->gamma);
}

void FedAdc::cloud_sync(fl::Context& ctx, std::size_t) {
  fl::aggregate_global(*ctx.workers, fl::worker_x, x_scratch_, ctx.part,
                       ctx.pool);
  Vec& u = ctx.cloud->extra.at("drift_u");
  Vec& x = ctx.cloud->x;
  const Scalar inv_step =
      1.0 / (static_cast<Scalar>(ctx.cfg->tau) * ctx.cfg->eta);
  // u ← β u + (1−β)(x − x̄)/(τη); x ← x̄, one fused pass.
  vec::adc_server_update(x, x_scratch_, u, ctx.cfg->gamma_edge, inv_step);
  for (fl::WorkerState& w : *ctx.workers) {
    if (fl::is_active(ctx.part, w.id)) w.x = x;
  }
}

}  // namespace hfl::algs
