#include "src/algs/fedadc.h"

namespace hfl::algs {

void FedAdc::init(fl::Context& ctx) {
  ctx.cloud->extra["drift_u"] = Vec(ctx.cloud->x.size(), 0.0);
}

void FedAdc::local_step(fl::Context& ctx, fl::WorkerState& w) {
  w.compute_gradient(w.x);
  const Vec& u = ctx.cloud->extra.at("drift_u");  // read-only across workers
  const Scalar eta = ctx.cfg->eta;
  const Scalar beta = ctx.cfg->gamma;
  for (std::size_t i = 0; i < w.x.size(); ++i) {
    w.x[i] -= eta * (w.grad[i] + beta * u[i]);
  }
}

void FedAdc::cloud_sync(fl::Context& ctx, std::size_t) {
  fl::aggregate_global(*ctx.workers, fl::worker_x, x_scratch_, ctx.part,
                       ctx.pool);
  Vec& u = ctx.cloud->extra.at("drift_u");
  Vec& x = ctx.cloud->x;
  const Scalar beta = ctx.cfg->gamma_edge;
  const Scalar inv_step =
      1.0 / (static_cast<Scalar>(ctx.cfg->tau) * ctx.cfg->eta);
  for (std::size_t i = 0; i < x.size(); ++i) {
    const Scalar pseudo_grad = (x[i] - x_scratch_[i]) * inv_step;
    u[i] = beta * u[i] + (1.0 - beta) * pseudo_grad;
    x[i] = x_scratch_[i];
  }
  for (fl::WorkerState& w : *ctx.workers) {
    if (fl::is_active(ctx.part, w.id)) w.x = x;
  }
}

}  // namespace hfl::algs
