#include "src/algs/fedmom.h"

#include "src/core/nag.h"

namespace hfl::algs {

void FedMom::init(fl::Context& ctx) {
  ctx.cloud->extra["server_y"] = ctx.cloud->x;  // y_0 = x_0
}

void FedMom::local_step(fl::Context& ctx, fl::WorkerState& w) {
  core::sgd_local_step(w, ctx.cfg->eta);
}

void FedMom::cloud_sync(fl::Context& ctx, std::size_t) {
  fl::aggregate_global(*ctx.workers, fl::worker_x, x_scratch_, ctx.part,
                       ctx.pool);
  Vec& y_prev = ctx.cloud->extra.at("server_y");
  const Scalar gs = ctx.cfg->gamma_edge;

  Vec& x = ctx.cloud->x;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const Scalar y_new = x_scratch_[i];
    x[i] = y_new + gs * (y_new - y_prev[i]);
    y_prev[i] = y_new;
  }
  for (fl::WorkerState& w : *ctx.workers) {
    if (fl::is_active(ctx.part, w.id)) w.x = x;
  }
}

}  // namespace hfl::algs
