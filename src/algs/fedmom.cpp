#include "src/algs/fedmom.h"

#include "src/core/nag.h"

namespace hfl::algs {

void FedMom::init(fl::Context& ctx) {
  ctx.cloud->extra["server_y"] = ctx.cloud->x;  // y_0 = x_0
}

void FedMom::local_step(fl::Context& ctx, fl::WorkerState& w) {
  core::sgd_local_step(w, ctx.cfg->eta);
}

void FedMom::cloud_sync(fl::Context& ctx, std::size_t) {
  fl::aggregate_global(*ctx.workers, fl::worker_x, x_scratch_, ctx.part,
                       ctx.pool);
  Vec& y_prev = ctx.cloud->extra.at("server_y");
  // y_p = x̄_p; x_p = y_p + γs (y_p − y_{p−1}); y_{p−1} ← y_p — one fused
  // pass over the three vectors.
  Vec& x = ctx.cloud->x;
  vec::extrapolate_update(x_scratch_, y_prev, ctx.cfg->gamma_edge, x);
  for (fl::WorkerState& w : *ctx.workers) {
    if (fl::is_active(ctx.part, w.id)) w.x = x;
  }
}

}  // namespace hfl::algs
