// FedADC [24] (Ozfatura et al., ISIT 2021: "FedADC: Accelerated federated
// learning with drift control").
//
// Two-tier combination-momentum baseline. The server momentum doubles as a
// drift-control signal: it is re-distributed to the workers, whose local
// steps descend along the drift-corrected direction
//     d = ∇F_i(x) + β u          (u: server momentum, read-only locally)
//     x ← x − η d.
// At each synchronization the server updates u with the normalized round
// pseudo-gradient and adopts the average model:
//     u ← β u + (1−β) (x_{p−1} − x̄_p)/(τ η),   x_p = x̄_p.
#pragma once

#include "src/fl/algorithm.h"

namespace hfl::algs {

class FedAdc final : public fl::Algorithm {
 public:
  std::string name() const override { return "FedADC"; }
  bool three_tier() const override { return false; }
  void init(fl::Context& ctx) override;
  bool local_gradient_prefetchable() const override { return true; }
  void local_step(fl::Context& ctx, fl::WorkerState& w) override;
  void cloud_sync(fl::Context& ctx, std::size_t p) override;

 private:
  Vec x_scratch_;
};

}  // namespace hfl::algs
