#include "src/algs/hierfavg.h"

#include "src/core/nag.h"

namespace hfl::algs {

void HierFavg::local_step(fl::Context& ctx, fl::WorkerState& w) {
  core::sgd_local_step(w, ctx.cfg->eta);
}

void HierFavg::edge_sync(fl::Context& ctx, fl::EdgeState& e, std::size_t) {
  // thread_local, not a member: edge_sync runs concurrently across edges.
  thread_local Vec scratch;
  fl::aggregate_edge(*ctx.topo, e.id, *ctx.workers, fl::worker_x, scratch,
                     ctx.part);
  e.x_plus = scratch;
  for (const std::size_t id : fl::active_workers(ctx.part, *ctx.topo, e.id)) {
    (*ctx.workers)[id].x = e.x_plus;
  }
}

void HierFavg::cloud_sync(fl::Context& ctx, std::size_t) {
  Vec& x = ctx.cloud->x;
  fl::aggregate_edges(*ctx.edges, fl::edge_x_plus, x, ctx.part, ctx.pool);
  for (fl::EdgeState& e : *ctx.edges) {
    if (fl::is_edge_active(ctx.part, e.id)) e.x_plus = x;
  }
  for (fl::WorkerState& w : *ctx.workers) {
    if (fl::is_active(ctx.part, w.id)) w.x = x;
  }
}

}  // namespace hfl::algs
