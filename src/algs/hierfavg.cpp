#include "src/algs/hierfavg.h"

#include "src/core/nag.h"

namespace hfl::algs {

void HierFavg::local_step(fl::Context& ctx, fl::WorkerState& w) {
  core::sgd_local_step(w, ctx.cfg->eta);
}

void HierFavg::edge_sync(fl::Context& ctx, fl::EdgeState& e, std::size_t) {
  fl::aggregate_edge(*ctx.topo, e.id, *ctx.workers, fl::worker_x, scratch_,
                     ctx.part);
  e.x_plus = scratch_;
  for (const std::size_t id : fl::active_workers(ctx.part, *ctx.topo, e.id)) {
    (*ctx.workers)[id].x = e.x_plus;
  }
}

void HierFavg::cloud_sync(fl::Context& ctx, std::size_t) {
  Vec& x = ctx.cloud->x;
  x.assign(x.size(), 0.0);
  for (const fl::EdgeState& e : *ctx.edges) {
    if (!fl::is_edge_active(ctx.part, e.id)) continue;
    vec::axpy(fl::active_edge_weight(ctx.part, e), e.x_plus, x);
  }
  for (fl::EdgeState& e : *ctx.edges) {
    if (fl::is_edge_active(ctx.part, e.id)) e.x_plus = x;
  }
  for (fl::WorkerState& w : *ctx.workers) {
    if (fl::is_active(ctx.part, w.id)) w.x = x;
  }
}

}  // namespace hfl::algs
