#include "src/algs/hierfavg.h"

#include "src/core/nag.h"

namespace hfl::algs {

void HierFavg::local_step(fl::Context& ctx, fl::WorkerState& w) {
  core::sgd_local_step(w, ctx.cfg->eta);
}

void HierFavg::edge_sync(fl::Context& ctx, fl::EdgeState& e, std::size_t) {
  // The edge average lands directly in the edge state — worker x vectors are
  // distinct storage, so the reduction output never aliases an input, and
  // the former scratch round-trip cost a full extra parameter-vector copy.
  fl::aggregate_edge(*ctx.topo, e.id, *ctx.workers, fl::worker_x, e.x_plus,
                     ctx.part);
  for (const std::size_t id : fl::active_workers(ctx.part, *ctx.topo, e.id)) {
    (*ctx.workers)[id].x = e.x_plus;
  }
}

void HierFavg::cloud_sync(fl::Context& ctx, std::size_t) {
  Vec& x = ctx.cloud->x;
  fl::aggregate_edges(*ctx.edges, fl::edge_x_plus, x, ctx.part, ctx.pool);
  for (fl::EdgeState& e : *ctx.edges) {
    if (fl::is_edge_active(ctx.part, e.id)) e.x_plus = x;
  }
  for (fl::WorkerState& w : *ctx.workers) {
    if (fl::is_active(ctx.part, w.id)) w.x = x;
  }
}

}  // namespace hfl::algs
