#include "src/algs/hierfavg.h"

#include "src/core/nag.h"

namespace hfl::algs {

void HierFavg::local_step(fl::Context& ctx, fl::WorkerState& w) {
  core::sgd_local_step(w, ctx.cfg->eta);
}

void HierFavg::edge_sync(fl::Context& ctx, fl::EdgeState& e, std::size_t) {
  fl::aggregate_edge(*ctx.topo, e.id, *ctx.workers, fl::worker_x, scratch_);
  e.x_plus = scratch_;
  for (const std::size_t id : ctx.topo->workers_of_edge(e.id)) {
    (*ctx.workers)[id].x = e.x_plus;
  }
}

void HierFavg::cloud_sync(fl::Context& ctx, std::size_t) {
  Vec& x = ctx.cloud->x;
  x.assign(x.size(), 0.0);
  for (const fl::EdgeState& e : *ctx.edges) {
    vec::axpy(e.weight_global, e.x_plus, x);
  }
  for (fl::EdgeState& e : *ctx.edges) e.x_plus = x;
  for (fl::WorkerState& w : *ctx.workers) w.x = x;
}

}  // namespace hfl::algs
