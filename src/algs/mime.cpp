#include "src/algs/mime.h"

namespace hfl::algs {

void Mime::init(fl::Context& ctx) {
  const std::size_t n = ctx.cloud->x.size();
  ctx.cloud->extra["mime_m"] = Vec(n, 0.0);
  ctx.cloud->extra["mime_g"] = Vec(n, 0.0);
  refresh_server_stats(ctx);
}

void Mime::init_worker(fl::Context& ctx, fl::WorkerState& w) {
  // Per-worker anchor-gradient scratch, created at materialization time so
  // the lazily-virtualized path sets up exactly the same state (it consumes
  // no RNG, so the init-time probe sequence above is unaffected).
  w.extra["mime_anchor_grad"] = Vec(ctx.cloud->x.size(), 0.0);
}

void Mime::refresh_server_stats(fl::Context& ctx) {
  // ĝ — the server gradient estimate at the (new) server point, from a few
  // probe batches per reachable worker (absent workers cannot serve probes).
  constexpr std::size_t kProbeBatches = 4;
  Vec& g_hat = ctx.cloud->extra.at("mime_g");
  g_hat.assign(g_hat.size(), 0.0);
  // Cohort-estimated mode (cfg.mime_cohort_stats): the reachable workers may
  // be a strict sub-population (cohort sampling), so their global weights sum
  // below 1 — renormalize over the probe set to keep ĝ an unbiased convex
  // combination. Off (the default), total stays exactly 1.0 and the update
  // below is bit-identical to the unnormalized probe.
  Scalar total = 1.0;
  if (ctx.cfg->mime_cohort_stats) {
    Scalar mass = 0;
    for (fl::WorkerState& w : *ctx.workers) {
      if (fl::is_active(ctx.part, w.id)) {
        mass += fl::active_weight_global(ctx.part, w);
      }
    }
    if (mass > 0) total = mass;
  }
  Vec probe;
  for (fl::WorkerState& w : *ctx.workers) {
    if (!fl::is_active(ctx.part, w.id)) continue;
    const Scalar weight = fl::active_weight_global(ctx.part, w) / total;
    for (std::size_t b = 0; b < kProbeBatches; ++b) {
      w.probe_gradient(ctx.cloud->x, probe);
      vec::axpy(weight / kProbeBatches, probe, g_hat);
    }
  }
  // m ← (1−β) ĝ + β m.
  Vec& m = ctx.cloud->extra.at("mime_m");
  const Scalar beta = ctx.cfg->gamma;
  vec::axpby(1.0 - beta, g_hat, beta, m);
}

void Mime::local_step(fl::Context& ctx, fl::WorkerState& w) {
  const Vec& m = ctx.cloud->extra.at("mime_m");    // frozen during the round
  const Vec& g_hat = ctx.cloud->extra.at("mime_g");
  const Scalar beta = ctx.cfg->gamma;
  const Scalar eta = ctx.cfg->eta * lr_scale_;

  if (svrg_correction_) {
    // Paired SVRG evaluation: ∇F_B(x) and ∇F_B(x_server) on the SAME batch,
    // so their difference carries only the drift x − x_server, not sampling
    // noise. g̃ = ∇F_B(x) − ∇F_B(x_server) + ĝ, folded into the descent in
    // one fused pass (no corrected-gradient temporary).
    Vec& anchor_grad = w.extra.at("mime_anchor_grad");
    w.compute_gradient_pair(w.x, ctx.cloud->x, anchor_grad);
    vec::descent_svrg(w.x, w.grad, anchor_grad, g_hat, m, eta, beta);
  } else {
    w.compute_gradient(w.x);
    vec::descent_blend(w.x, w.grad, m, eta, beta);
  }
}

void Mime::cloud_sync(fl::Context& ctx, std::size_t) {
  // Aggregate straight into the cloud model (no aliasing with worker x's).
  fl::aggregate_global(*ctx.workers, fl::worker_x, ctx.cloud->x, ctx.part,
                       ctx.pool);
  for (fl::WorkerState& w : *ctx.workers) {
    if (fl::is_active(ctx.part, w.id)) w.x = ctx.cloud->x;
  }
  refresh_server_stats(ctx);
}

}  // namespace hfl::algs
