#include "src/algs/fednag.h"

#include "src/core/nag.h"

namespace hfl::algs {

void FedNag::local_step(fl::Context& ctx, fl::WorkerState& w) {
  core::nag_local_step(w, ctx.cfg->eta, ctx.cfg->gamma, /*accumulate=*/false);
}

void FedNag::cloud_sync(fl::Context& ctx, std::size_t) {
  fl::aggregate_global(*ctx.workers, fl::worker_x, x_scratch_, ctx.part,
                       ctx.pool);
  fl::aggregate_global(*ctx.workers, fl::worker_y, y_scratch_, ctx.part,
                       ctx.pool);
  ctx.cloud->x = x_scratch_;
  ctx.cloud->y = y_scratch_;
  for (fl::WorkerState& w : *ctx.workers) {
    if (!fl::is_active(ctx.part, w.id)) continue;
    w.x = x_scratch_;
    w.y = y_scratch_;
  }
}

}  // namespace hfl::algs
