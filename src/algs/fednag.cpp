#include "src/algs/fednag.h"

#include "src/core/nag.h"

namespace hfl::algs {

void FedNag::local_step(fl::Context& ctx, fl::WorkerState& w) {
  core::nag_local_step(w, ctx.cfg->eta, ctx.cfg->gamma, /*accumulate=*/false);
}

void FedNag::cloud_sync(fl::Context& ctx, std::size_t) {
  // Both reductions land directly in the cloud state (no aliasing: worker
  // vectors are distinct storage), skipping the member-scratch copies.
  fl::aggregate_global(*ctx.workers, fl::worker_x, ctx.cloud->x, ctx.part,
                       ctx.pool);
  fl::aggregate_global(*ctx.workers, fl::worker_y, ctx.cloud->y, ctx.part,
                       ctx.pool);
  for (fl::WorkerState& w : *ctx.workers) {
    if (!fl::is_active(ctx.part, w.id)) continue;
    w.x = ctx.cloud->x;
    w.y = ctx.cloud->y;
  }
}

}  // namespace hfl::algs
