// HierFAVG [17] (Liu et al., ICC 2020: "Client-edge-cloud hierarchical
// federated learning").
//
// Three-tier baseline without momentum: workers run plain local SGD; every τ
// iterations each edge replaces its workers' models by the edge-weighted
// average; every τπ iterations the cloud averages the edge models and pushes
// the result back down.
#pragma once

#include "src/fl/algorithm.h"

namespace hfl::algs {

class HierFavg final : public fl::Algorithm {
 public:
  std::string name() const override { return "HierFAVG"; }
  bool three_tier() const override { return true; }
  bool local_gradient_prefetchable() const override { return true; }
  void local_step(fl::Context& ctx, fl::WorkerState& w) override;
  void edge_sync(fl::Context& ctx, fl::EdgeState& e, std::size_t k) override;
  void cloud_sync(fl::Context& ctx, std::size_t p) override;
};

}  // namespace hfl::algs
