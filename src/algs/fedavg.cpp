#include "src/algs/fedavg.h"

#include "src/core/nag.h"

namespace hfl::algs {

void FedAvg::local_step(fl::Context& ctx, fl::WorkerState& w) {
  core::sgd_local_step(w, ctx.cfg->eta);
}

void FedAvg::cloud_sync(fl::Context& ctx, std::size_t) {
  // Aggregate straight into the cloud model (workers' x vectors are distinct
  // storage, so the reduction output never aliases an input) — the former
  // member-scratch round-trip was a full extra parameter-vector copy.
  fl::aggregate_global(*ctx.workers, fl::worker_x, ctx.cloud->x, ctx.part,
                       ctx.pool);
  for (fl::WorkerState& w : *ctx.workers) {
    if (fl::is_active(ctx.part, w.id)) w.x = ctx.cloud->x;
  }
}

}  // namespace hfl::algs
