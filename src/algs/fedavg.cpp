#include "src/algs/fedavg.h"

#include "src/core/nag.h"

namespace hfl::algs {

void FedAvg::local_step(fl::Context& ctx, fl::WorkerState& w) {
  core::sgd_local_step(w, ctx.cfg->eta);
}

void FedAvg::cloud_sync(fl::Context& ctx, std::size_t) {
  fl::aggregate_global(*ctx.workers, fl::worker_x, scratch_, ctx.part,
                       ctx.pool);
  ctx.cloud->x = scratch_;
  for (fl::WorkerState& w : *ctx.workers) {
    if (fl::is_active(ctx.part, w.id)) w.x = scratch_;
  }
}

}  // namespace hfl::algs
