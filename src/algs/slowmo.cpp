#include "src/algs/slowmo.h"

#include "src/core/nag.h"

namespace hfl::algs {

void SlowMo::init(fl::Context& ctx) {
  ctx.cloud->extra["slow_m"] = Vec(ctx.cloud->x.size(), 0.0);
}

void SlowMo::local_step(fl::Context& ctx, fl::WorkerState& w) {
  core::sgd_local_step(w, ctx.cfg->eta);
}

void SlowMo::cloud_sync(fl::Context& ctx, std::size_t) {
  fl::aggregate_global(*ctx.workers, fl::worker_x, x_scratch_, ctx.part,
                       ctx.pool);
  Vec& m = ctx.cloud->extra.at("slow_m");
  Vec& x = ctx.cloud->x;
  const Scalar beta = ctx.cfg->gamma_edge;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const Scalar delta = x[i] - x_scratch_[i];
    m[i] = beta * m[i] + delta;
    x[i] -= slow_lr_ * m[i];
  }
  for (fl::WorkerState& w : *ctx.workers) {
    if (fl::is_active(ctx.part, w.id)) w.x = x;
  }
}

}  // namespace hfl::algs
