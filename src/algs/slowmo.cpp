#include "src/algs/slowmo.h"

#include "src/core/nag.h"

namespace hfl::algs {

void SlowMo::init(fl::Context& ctx) {
  ctx.cloud->extra["slow_m"] = Vec(ctx.cloud->x.size(), 0.0);
}

void SlowMo::local_step(fl::Context& ctx, fl::WorkerState& w) {
  core::sgd_local_step(w, ctx.cfg->eta);
}

void SlowMo::cloud_sync(fl::Context& ctx, std::size_t) {
  fl::aggregate_global(*ctx.workers, fl::worker_x, x_scratch_, ctx.part,
                       ctx.pool);
  Vec& m = ctx.cloud->extra.at("slow_m");
  Vec& x = ctx.cloud->x;
  // m = β m + (x_{p−1} − x̄_p); x −= α m, fused into one pass.
  vec::slowmo_step(x, x_scratch_, m, ctx.cfg->gamma_edge, slow_lr_);
  for (fl::WorkerState& w : *ctx.workers) {
    if (fl::is_active(ctx.part, w.id)) w.x = x;
  }
}

}  // namespace hfl::algs
