// Mime [22] (Karimireddy et al., 2020: "Mime: Mimicking centralized
// stochastic algorithms in federated learning"), momentum instantiation.
//
// Two-tier worker-momentum baseline that mimics centralized SGD-with-momentum
// at every local step. Server state: momentum m and the server gradient
// estimate ĝ = Σ w_i ∇F_i(x_server) (probed per round), both frozen during
// local steps. The SVRG correction is evaluated PAIRED — both gradients on
// the same mini-batch B, so the sampling noise cancels in the difference:
//     g̃ = ∇F_B(x) − ∇F_B(x_server) + ĝ
//     x ← x − η ((1−β) g̃ + β m)
// At synchronization: x ← Σ w_i x_i, then ĝ is re-probed and
// m ← (1−β) ĝ + β m. β = cfg.gamma. `svrg_correction=false` yields MimeLite
// (plain ∇F_B(x) in place of g̃).
#pragma once

#include "src/fl/algorithm.h"

namespace hfl::algs {

class Mime final : public fl::Algorithm {
 public:
  // `lr_scale` multiplies cfg.eta for Mime's local steps. Mime's stale
  // per-round statistics (ĝ, m frozen for the whole aggregation period) make
  // every worker push coherently along one direction; at the shared η the
  // method overshoots on non-convex models. The Mime paper tunes the client
  // learning rate separately per algorithm — this is that knob, with a
  // conservative default.
  explicit Mime(bool svrg_correction = true, Scalar lr_scale = 0.3)
      : svrg_correction_(svrg_correction), lr_scale_(lr_scale) {}

  std::string name() const override {
    return svrg_correction_ ? "Mime" : "MimeLite";
  }
  bool three_tier() const override { return false; }
  // Full Mime evaluates a PAIRED gradient (compute_gradient_pair) as its
  // first evaluation, which the cohort prefetch cannot serve; MimeLite's
  // first evaluation is the plain ∇F_B(x) and prefetches fine.
  bool local_gradient_prefetchable() const override {
    return !svrg_correction_;
  }
  // The ĝ probe walks every active worker; under cohort sampling the engine
  // requires RunConfig::mime_cohort_stats (cohort-renormalized estimate).
  bool probes_population() const override { return true; }
  void init(fl::Context& ctx) override;
  void init_worker(fl::Context& ctx, fl::WorkerState& w) override;
  void local_step(fl::Context& ctx, fl::WorkerState& w) override;
  void cloud_sync(fl::Context& ctx, std::size_t p) override;

 private:
  // Probes every worker's gradient at the server point, refreshing ĝ and
  // folding it into the momentum buffer.
  void refresh_server_stats(fl::Context& ctx);

  bool svrg_correction_;
  Scalar lr_scale_;
};

}  // namespace hfl::algs
