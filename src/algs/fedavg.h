// FedAvg [4] (McMahan et al., AISTATS 2017).
//
// Two-tier baseline without momentum: every worker runs plain local SGD; at
// each global synchronization (period τ, with π = 1) the cloud replaces every
// worker's model by the data-weighted average Σ (D_i/D) x_i.
#pragma once

#include "src/fl/algorithm.h"

namespace hfl::algs {

class FedAvg final : public fl::Algorithm {
 public:
  std::string name() const override { return "FedAvg"; }
  bool three_tier() const override { return false; }
  bool local_gradient_prefetchable() const override { return true; }
  void local_step(fl::Context& ctx, fl::WorkerState& w) override;
  void cloud_sync(fl::Context& ctx, std::size_t p) override;
};

}  // namespace hfl::algs
