// FedMom [19] (Huo et al., 2020: "Faster on-device training using new
// federated momentum algorithm").
//
// Two-tier aggregator-momentum baseline: workers run plain local SGD; the
// server applies a Nesterov step over rounds:
//     y_{p}  = x̄_p                      (the fresh worker average)
//     x_{p}  = y_p + γs (y_p − y_{p−1})
// with y_0 = x_0 and γs = cfg.gamma_edge.
#pragma once

#include "src/fl/algorithm.h"

namespace hfl::algs {

class FedMom final : public fl::Algorithm {
 public:
  std::string name() const override { return "FedMom"; }
  bool three_tier() const override { return false; }
  void init(fl::Context& ctx) override;
  bool local_gradient_prefetchable() const override { return true; }
  void local_step(fl::Context& ctx, fl::WorkerState& w) override;
  void cloud_sync(fl::Context& ctx, std::size_t p) override;

 private:
  Vec x_scratch_;
};

}  // namespace hfl::algs
