#include "src/nn/conv2d.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/obs/registry.h"
#include "src/tensor/gemm_batched.h"
#include "src/tensor/gemm_mixed.h"

namespace hfl::nn {
namespace {

// Scratch for the im2col/col2im lowering, shared by every Conv2d on the
// thread and reused across calls. Simulation workers run on dedicated pool
// threads, so this bounds scratch memory by threads × chunk size instead of
// per-layer members that multiply with the fleet size.
thread_local Vec tl_col;   // im2col chunk, kk × chunk_cols
thread_local Vec tl_dcol;  // gradient w.r.t. the chunk's im2col block

// Upper bound on the im2col chunk so it stays cache-resident between being
// written (im2col) and consumed (GEMM). A whole-minibatch col matrix of a
// realistic conv layer is several MB — materializing it in one piece turns
// the lowering memory-bound; chunked, the col block never leaves L2.
constexpr std::size_t kColChunkBytes = 1 << 20;

std::size_t samples_per_chunk(const Conv2d::Spec& s, std::size_t cols) {
  const std::size_t per_sample = s.kk() * cols * sizeof(Scalar);
  return std::max<std::size_t>(1, kColChunkBytes / std::max<std::size_t>(
                                                       1, per_sample));
}

// im2col over the sample chunk [b0, b0+bn): col(r, c) with r indexing
// (ic, kh, kw) and c indexing (b − b0, oh, ow). Feeding the GEMM a
// multi-sample chunk is what lets the blocked kernel run at panel width
// instead of B separate OH·OW-wide products; chunking (rather than the whole
// minibatch) keeps the expansion cache-resident. Every element is written —
// padding gaps are zeroed explicitly — so no full-buffer clear is needed.
void im2col(const Conv2d::Spec& s, const Tensor& x, std::size_t b0,
            std::size_t bn, std::size_t oh_count, std::size_t ow_count,
            Vec& col) {
  const std::size_t h = x.dim(2), w = x.dim(3);
  const std::size_t cols = oh_count * ow_count;
  const std::size_t total = bn * cols;
  col.resize(s.kk() * total);
  // Loop order is (r, b), not (b, r): for a fixed col row r the per-sample
  // blocks are adjacent, so the destination streams sequentially through the
  // whole buffer instead of striding by `total` between 1 KB writes, and the
  // clip geometry below — which depends only on (kh, kw) — is computed once
  // per row instead of once per (row, sample).
  std::size_t r = 0;
  for (std::size_t ic = 0; ic < s.in_ch; ++ic) {
    for (std::size_t kh = 0; kh < s.k; ++kh) {
      for (std::size_t kw = 0; kw < s.k; ++kw, ++r) {
        // In-range output ranges: iw = ow + kw − pad ∈ [0, w) and
        // ih = oh + kh − pad ∈ [0, h). Out-of-range rows/edges are zero
        // blocks, filled up front so the copy loop below is branch-free.
        const std::ptrdiff_t shift = static_cast<std::ptrdiff_t>(kw) -
                                     static_cast<std::ptrdiff_t>(s.pad);
        const std::size_t ow_lo =
            shift < 0 ? static_cast<std::size_t>(-shift) : 0;
        const std::size_t ow_hi =
            std::min(ow_count, static_cast<std::size_t>(
                                   static_cast<std::ptrdiff_t>(w) - shift));
        const std::size_t oh_lo =
            std::min(oh_count, kh < s.pad ? s.pad - kh : 0);
        // max(oh_lo, …): for kh ≥ h + pad every row is out of range and
        // the two zero fills below must cover the whole block.
        const std::size_t oh_hi =
            std::max(oh_lo, h + s.pad > kh
                                ? std::min(oh_count, h + s.pad - kh)
                                : std::size_t{0});
        for (std::size_t b = 0; b < bn; ++b) {
          const Scalar* xplane =
              x.raw() + ((b0 + b) * s.in_ch + ic) * h * w;
          Scalar* crow = col.data() + r * total + b * cols;
          std::fill(crow, crow + oh_lo * ow_count, 0.0);
          std::fill(crow + oh_hi * ow_count, crow + oh_count * ow_count, 0.0);
          if (ow_count == w) {
            // Same-width conv (OW == W): dst and src row strides match, so
            // the whole in-range block is one contiguous copy shifted by
            // `shift`, clipped where the shift runs off the plane; the few
            // horizontal-pad columns are re-zeroed afterwards. This is the
            // layout of every stride-1 "same" conv in the models here, and
            // it replaces OH short row copies with one memcpy per (ic, kh,
            // kw, b).
            if (oh_hi > oh_lo) {
              Scalar* dblock = crow + oh_lo * ow_count;
              const std::size_t rows = oh_hi - oh_lo;
              const std::ptrdiff_t src0 =
                  static_cast<std::ptrdiff_t>((oh_lo + kh - s.pad) * w) +
                  shift;
              const std::ptrdiff_t src1 =
                  src0 + static_cast<std::ptrdiff_t>(rows * w);
              const std::ptrdiff_t lo_clip = std::max<std::ptrdiff_t>(src0, 0);
              const std::ptrdiff_t hi_clip = std::min<std::ptrdiff_t>(
                  src1, static_cast<std::ptrdiff_t>(h * w));
              Scalar* d0 = dblock + (lo_clip - src0);
              Scalar* d1 = dblock + (hi_clip - src0);
              for (Scalar* p = dblock; p < d0; ++p) *p = 0.0;
              std::memcpy(d0, xplane + lo_clip,
                          static_cast<std::size_t>(hi_clip - lo_clip) *
                              sizeof(Scalar));
              for (Scalar* p = d1; p < dblock + rows * ow_count; ++p) *p = 0.0;
              if (ow_lo > 0 || ow_hi < ow_count) {
                for (std::size_t oh = oh_lo; oh < oh_hi; ++oh) {
                  Scalar* cdst = crow + oh * ow_count;
                  for (std::size_t ow = 0; ow < ow_lo; ++ow) cdst[ow] = 0.0;
                  for (std::size_t ow = ow_hi; ow < ow_count; ++ow) {
                    cdst[ow] = 0.0;
                  }
                }
              }
            }
            continue;
          }
          for (std::size_t oh = oh_lo; oh < oh_hi; ++oh) {
            const std::size_t ih = oh + kh - s.pad;
            Scalar* cdst = crow + oh * ow_count;
            const Scalar* xrow = xplane + ih * w;
            for (std::size_t ow = 0; ow < ow_lo; ++ow) cdst[ow] = 0.0;
            for (std::size_t ow = ow_lo; ow < ow_hi; ++ow) {
              cdst[ow] = xrow[static_cast<std::ptrdiff_t>(ow) + shift];
            }
            for (std::size_t ow = ow_hi; ow < ow_count; ++ow) cdst[ow] = 0.0;
          }
        }
      }
    }
  }
}

}  // namespace

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t padding)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      k_(kernel),
      pad_(padding),
      weight_({out_ch_, in_ch_, k_, k_}),
      bias_({out_ch_}),
      grad_weight_({out_ch_, in_ch_, k_, k_}),
      grad_bias_({out_ch_}) {
  HFL_CHECK(in_ch_ > 0 && out_ch_ > 0 && k_ > 0, "conv2d dims must be positive");
}

void Conv2d::init_params(Rng& rng) {
  const Scalar fan_in = static_cast<Scalar>(in_ch_ * k_ * k_);
  const Scalar stddev = std::sqrt(2.0 / fan_in);
  for (auto& v : weight_.data()) v = rng.normal(0.0, stddev);
  bias_.fill(0.0);
}

void Conv2d::forward_span(const Spec& s, const Scalar* weight,
                          const Scalar* bias, const Tensor& x, std::size_t b0,
                          std::size_t bn, Scalar* out0, bool mixed) {
  const std::size_t H = x.dim(2), W = x.dim(3);
  const std::size_t OH = H + 2 * s.pad - s.k + 1;
  const std::size_t OW = W + 2 * s.pad - s.k + 1;
  const std::size_t cols = OH * OW;
  const std::size_t kk = s.kk();
  const std::size_t chunk = samples_per_chunk(s, cols);
  const auto gemmb = mixed ? ops::gemm_batched_mixed : ops::gemm_batched;

  for (std::size_t c0 = b0; c0 < b0 + bn; c0 += chunk) {
    const std::size_t cn = std::min(chunk, b0 + bn - c0);
    const std::size_t total = cn * cols;
    im2col(s, x, c0, cn, OH, OW, tl_col);

    // Each sample's output plane already has the GEMM's (oc, oh·ow) layout,
    // so the products land directly in the output tensor: pre-fill with the
    // channel bias and accumulate (beta = 1). The whole chunk is one batched
    // product — sample b's col block is the column slice at b·cols (row
    // stride `total`), and the weight operand is declared shared
    // (stride_a = 0) so its panels pack once per cache tile, not per sample.
    for (std::size_t b = 0; b < cn; ++b) {
      Scalar* oplane = out0 + (c0 - b0 + b) * s.out_ch * cols;
      for (std::size_t oc = 0; oc < s.out_ch; ++oc) {
        std::fill(oplane + oc * cols, oplane + (oc + 1) * cols, bias[oc]);
      }
    }
    gemmb(false, false, s.out_ch, cols, kk, cn, weight, kk, 0, tl_col.data(),
          total, cols, 1.0, out0 + (c0 - b0) * s.out_ch * cols, cols,
          s.out_ch * cols);
  }
}

void Conv2d::backward_span(const Spec& s, const Scalar* weight,
                           const Tensor& x, std::size_t b0, std::size_t bn,
                           const Scalar* gout0, Scalar* grad_weight,
                           Scalar* grad_bias, Scalar* grad_in0, bool mixed) {
  const std::size_t H = x.dim(2), W = x.dim(3);
  const std::size_t OH = H + 2 * s.pad - s.k + 1;
  const std::size_t OW = W + 2 * s.pad - s.k + 1;
  const std::size_t cols = OH * OW;
  const std::size_t kk = s.kk();
  const std::size_t chunk = samples_per_chunk(s, cols);
  const auto gemmb = mixed ? ops::gemm_batched_mixed : ops::gemm_batched;

  for (std::size_t c0 = b0; c0 < b0 + bn; c0 += chunk) {
    const std::size_t cn = std::min(chunk, b0 + bn - c0);
    const std::size_t total = cn * cols;

    // Rebuild the im2col chunk from the input (cheaper than keeping the
    // expansion live across the whole forward pass of a deep model).
    im2col(s, x, c0, cn, OH, OW, tl_col);

    const Scalar* gchunk = gout0 + (c0 - b0) * s.out_ch * cols;

    // db += per-plane sums, walked in (sample, channel) order.
    for (std::size_t b = 0; b < cn; ++b) {
      const Scalar* g = gchunk + b * s.out_ch * cols;
      for (std::size_t oc = 0; oc < s.out_ch; ++oc) {
        Scalar gb = 0;
        const Scalar* src = g + oc * cols;
        for (std::size_t c = 0; c < cols; ++c) gb += src[c];
        grad_bias[oc] += gb;
      }
    }

    // dW(oc, r) += Σ_c G(oc, c) col(r, c) — G · colᵀ per sample, accumulated
    // across samples/chunks/calls. stride_c = 0 declares the shared
    // accumulator: items apply in sample-index order, matching the former
    // per-sample beta=1 loop bit for bit.
    gemmb(false, true, s.out_ch, kk, cols, cn, gchunk, cols, s.out_ch * cols,
          tl_col.data(), total, cols, 1.0, grad_weight, kk, 0);

    if (grad_in0 == nullptr) continue;  // dX has no consumer

    // dCol(r, c) = Σ_oc W(oc, r) G(oc, c) — Wᵀ · G per sample, with the
    // (transposed) weight operand shared across the chunk.
    tl_dcol.resize(kk * cn * cols);
    gemmb(true, false, kk, cols, s.out_ch, cn, weight, kk, 0, gchunk, cols,
          s.out_ch * cols, 0.0, tl_dcol.data(), cols, kk * cols);

    // col2im: scatter-add dCol back onto the padded input geometry.
    for (std::size_t b = 0; b < cn; ++b) {
      const Scalar* dsample = tl_dcol.data() + b * kk * cols;
      Scalar* gisample = grad_in0 + (c0 - b0 + b) * s.in_ch * H * W;
      std::size_t r = 0;
      for (std::size_t ic = 0; ic < s.in_ch; ++ic) {
        Scalar* giplane = gisample + ic * H * W;
        for (std::size_t kh = 0; kh < s.k; ++kh) {
          for (std::size_t kw = 0; kw < s.k; ++kw, ++r) {
            const Scalar* drow = dsample + r * cols;
            const std::ptrdiff_t shift = static_cast<std::ptrdiff_t>(kw) -
                                         static_cast<std::ptrdiff_t>(s.pad);
            const std::size_t ow_lo =
                shift < 0 ? static_cast<std::size_t>(-shift) : 0;
            const std::size_t ow_hi = std::min(
                OW, static_cast<std::size_t>(
                        static_cast<std::ptrdiff_t>(W) - shift));
            for (std::size_t oh = 0; oh < OH; ++oh) {
              const std::ptrdiff_t ih = static_cast<std::ptrdiff_t>(oh + kh) -
                                        static_cast<std::ptrdiff_t>(s.pad);
              if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(H)) continue;
              Scalar* xrow = giplane + ih * static_cast<std::ptrdiff_t>(W);
              const Scalar* dsrc = drow + oh * OW;
              for (std::size_t ow = ow_lo; ow < ow_hi; ++ow) {
                xrow[static_cast<std::ptrdiff_t>(ow) + shift] += dsrc[ow];
              }
            }
          }
        }
      }
    }
  }
}

Tensor Conv2d::forward(const Tensor& x, bool /*train*/) {
  HFL_CHECK(x.rank() == 4 && x.dim(1) == in_ch_,
            "conv2d forward expects NCHW with C=" + std::to_string(in_ch_) +
                ", got " + x.shape_string());
  input_ = x;
  const std::size_t B = x.dim(0), H = x.dim(2), W = x.dim(3);
  HFL_CHECK(H + 2 * pad_ >= k_ && W + 2 * pad_ >= k_,
            "conv2d kernel larger than padded input");
  const std::size_t OH = H + 2 * pad_ - k_ + 1;
  const std::size_t OW = W + 2 * pad_ - k_ + 1;

  if (obs::enabled()) {
    static obs::Counter& calls =
        obs::Registry::global().counter("conv.fwd_calls");
    static obs::Counter& bytes =
        obs::Registry::global().counter("conv.im2col_bytes");
    calls.add();
    // One im2col expansion per forward: kk rows × B·cols columns written.
    bytes.add(static_cast<std::uint64_t>(in_ch_ * k_ * k_ * B * OH * OW) *
              sizeof(Scalar));
  }

  Tensor out({B, out_ch_, OH, OW});
  forward_span(spec(), weight_.raw(), bias_.raw(), x, 0, B, out.raw(),
               /*mixed=*/false);
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const std::size_t B = input_.dim(0), H = input_.dim(2), W = input_.dim(3);
  const std::size_t OH = H + 2 * pad_ - k_ + 1;
  const std::size_t OW = W + 2 * pad_ - k_ + 1;
  HFL_CHECK(grad_out.rank() == 4 && grad_out.dim(0) == B &&
                grad_out.dim(1) == out_ch_ && grad_out.dim(2) == OH &&
                grad_out.dim(3) == OW,
            "conv2d backward shape mismatch");

  if (obs::enabled()) {
    static obs::Counter& calls =
        obs::Registry::global().counter("conv.bwd_calls");
    static obs::Counter& bytes =
        obs::Registry::global().counter("conv.im2col_bytes");
    calls.add();
    // The backward pass rebuilds the im2col chunk and writes dCol of the
    // same volume: 2 × kk × B·cols scalars.
    bytes.add(static_cast<std::uint64_t>(2 * in_ch_ * k_ * k_ * B * OH * OW) *
              sizeof(Scalar));
  }

  Tensor grad_in(input_.shape());
  backward_span(spec(), weight_.raw(), input_, 0, B, grad_out.raw(),
                grad_weight_.raw(), grad_bias_.raw(), grad_in.raw(),
                /*mixed=*/false);
  return grad_in;
}

}  // namespace hfl::nn
