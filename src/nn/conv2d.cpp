#include "src/nn/conv2d.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/obs/registry.h"
#include "src/tensor/gemm.h"

namespace hfl::nn {
namespace {

// Scratch for the im2col/col2im lowering, shared by every Conv2d on the
// thread and reused across calls. Simulation workers run on dedicated pool
// threads, so this bounds scratch memory by threads × chunk size instead of
// per-layer members that multiply with the fleet size.
thread_local Vec tl_col;   // im2col chunk, kk × chunk_cols
thread_local Vec tl_dcol;  // gradient w.r.t. one sample's im2col block

// Upper bound on the im2col chunk so it stays cache-resident between being
// written (im2col) and consumed (GEMM). A whole-minibatch col matrix of a
// realistic conv layer is several MB — materializing it in one piece turns
// the lowering memory-bound; chunked, the col block never leaves L2.
constexpr std::size_t kColChunkBytes = 1 << 20;

}  // namespace

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t padding)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      k_(kernel),
      pad_(padding),
      weight_({out_ch_, in_ch_, k_, k_}),
      bias_({out_ch_}),
      grad_weight_({out_ch_, in_ch_, k_, k_}),
      grad_bias_({out_ch_}) {
  HFL_CHECK(in_ch_ > 0 && out_ch_ > 0 && k_ > 0, "conv2d dims must be positive");
}

void Conv2d::init_params(Rng& rng) {
  const Scalar fan_in = static_cast<Scalar>(in_ch_ * k_ * k_);
  const Scalar stddev = std::sqrt(2.0 / fan_in);
  for (auto& v : weight_.data()) v = rng.normal(0.0, stddev);
  bias_.fill(0.0);
}

// im2col over the sample chunk [b0, b0+bn): col(r, c) with r indexing
// (ic, kh, kw) and c indexing (b − b0, oh, ow). Feeding the GEMM a
// multi-sample chunk is what lets the blocked kernel run at panel width
// instead of B separate OH·OW-wide products; chunking (rather than the whole
// minibatch) keeps the expansion cache-resident. Every element is written —
// padding gaps are zeroed explicitly — so no full-buffer clear is needed.
void Conv2d::im2col(const Tensor& x, std::size_t b0, std::size_t bn,
                    std::size_t oh_count, std::size_t ow_count,
                    Vec& col) const {
  const std::size_t h = x.dim(2), w = x.dim(3);
  const std::size_t cols = oh_count * ow_count;
  const std::size_t total = bn * cols;
  col.resize(in_ch_ * k_ * k_ * total);
  // Loop order is (r, b), not (b, r): for a fixed col row r the per-sample
  // blocks are adjacent, so the destination streams sequentially through the
  // whole buffer instead of striding by `total` between 1 KB writes, and the
  // clip geometry below — which depends only on (kh, kw) — is computed once
  // per row instead of once per (row, sample).
  std::size_t r = 0;
  for (std::size_t ic = 0; ic < in_ch_; ++ic) {
    for (std::size_t kh = 0; kh < k_; ++kh) {
      for (std::size_t kw = 0; kw < k_; ++kw, ++r) {
        // In-range output ranges: iw = ow + kw − pad ∈ [0, w) and
        // ih = oh + kh − pad ∈ [0, h). Out-of-range rows/edges are zero
        // blocks, filled up front so the copy loop below is branch-free.
        const std::ptrdiff_t shift = static_cast<std::ptrdiff_t>(kw) -
                                     static_cast<std::ptrdiff_t>(pad_);
        const std::size_t ow_lo =
            shift < 0 ? static_cast<std::size_t>(-shift) : 0;
        const std::size_t ow_hi =
            std::min(ow_count, static_cast<std::size_t>(
                                   static_cast<std::ptrdiff_t>(w) - shift));
        const std::size_t oh_lo = std::min(oh_count, kh < pad_ ? pad_ - kh : 0);
        // max(oh_lo, …): for kh ≥ h + pad every row is out of range and
        // the two zero fills below must cover the whole block.
        const std::size_t oh_hi =
            std::max(oh_lo, h + pad_ > kh ? std::min(oh_count, h + pad_ - kh)
                                          : std::size_t{0});
        for (std::size_t b = 0; b < bn; ++b) {
          const Scalar* xplane =
              x.raw() + ((b0 + b) * in_ch_ + ic) * h * w;
          Scalar* crow = col.data() + r * total + b * cols;
          std::fill(crow, crow + oh_lo * ow_count, 0.0);
          std::fill(crow + oh_hi * ow_count, crow + oh_count * ow_count, 0.0);
          if (ow_count == w) {
            // Same-width conv (OW == W): dst and src row strides match, so
            // the whole in-range block is one contiguous copy shifted by
            // `shift`, clipped where the shift runs off the plane; the few
            // horizontal-pad columns are re-zeroed afterwards. This is the
            // layout of every stride-1 "same" conv in the models here, and
            // it replaces OH short row copies with one memcpy per (ic, kh,
            // kw, b).
            if (oh_hi > oh_lo) {
              Scalar* dblock = crow + oh_lo * ow_count;
              const std::size_t rows = oh_hi - oh_lo;
              const std::ptrdiff_t src0 =
                  static_cast<std::ptrdiff_t>((oh_lo + kh - pad_) * w) + shift;
              const std::ptrdiff_t src1 =
                  src0 + static_cast<std::ptrdiff_t>(rows * w);
              const std::ptrdiff_t lo_clip = std::max<std::ptrdiff_t>(src0, 0);
              const std::ptrdiff_t hi_clip = std::min<std::ptrdiff_t>(
                  src1, static_cast<std::ptrdiff_t>(h * w));
              Scalar* d0 = dblock + (lo_clip - src0);
              Scalar* d1 = dblock + (hi_clip - src0);
              for (Scalar* p = dblock; p < d0; ++p) *p = 0.0;
              std::memcpy(d0, xplane + lo_clip,
                          static_cast<std::size_t>(hi_clip - lo_clip) *
                              sizeof(Scalar));
              for (Scalar* p = d1; p < dblock + rows * ow_count; ++p) *p = 0.0;
              if (ow_lo > 0 || ow_hi < ow_count) {
                for (std::size_t oh = oh_lo; oh < oh_hi; ++oh) {
                  Scalar* cdst = crow + oh * ow_count;
                  for (std::size_t ow = 0; ow < ow_lo; ++ow) cdst[ow] = 0.0;
                  for (std::size_t ow = ow_hi; ow < ow_count; ++ow) {
                    cdst[ow] = 0.0;
                  }
                }
              }
            }
            continue;
          }
          for (std::size_t oh = oh_lo; oh < oh_hi; ++oh) {
            const std::size_t ih = oh + kh - pad_;
            Scalar* cdst = crow + oh * ow_count;
            const Scalar* xrow = xplane + ih * w;
            for (std::size_t ow = 0; ow < ow_lo; ++ow) cdst[ow] = 0.0;
            for (std::size_t ow = ow_lo; ow < ow_hi; ++ow) {
              cdst[ow] = xrow[static_cast<std::ptrdiff_t>(ow) + shift];
            }
            for (std::size_t ow = ow_hi; ow < ow_count; ++ow) cdst[ow] = 0.0;
          }
        }
      }
    }
  }
}

std::size_t Conv2d::samples_per_chunk(std::size_t cols) const {
  const std::size_t kk = in_ch_ * k_ * k_;
  const std::size_t per_sample = kk * cols * sizeof(Scalar);
  return std::max<std::size_t>(1, kColChunkBytes / std::max<std::size_t>(
                                                       1, per_sample));
}

Tensor Conv2d::forward(const Tensor& x, bool /*train*/) {
  HFL_CHECK(x.rank() == 4 && x.dim(1) == in_ch_,
            "conv2d forward expects NCHW with C=" + std::to_string(in_ch_) +
                ", got " + x.shape_string());
  input_ = x;
  const std::size_t B = x.dim(0), H = x.dim(2), W = x.dim(3);
  HFL_CHECK(H + 2 * pad_ >= k_ && W + 2 * pad_ >= k_,
            "conv2d kernel larger than padded input");
  const std::size_t OH = H + 2 * pad_ - k_ + 1;
  const std::size_t OW = W + 2 * pad_ - k_ + 1;
  const std::size_t cols = OH * OW;
  const std::size_t kk = in_ch_ * k_ * k_;
  const std::size_t chunk = samples_per_chunk(cols);

  if (obs::enabled()) {
    static obs::Counter& calls =
        obs::Registry::global().counter("conv.fwd_calls");
    static obs::Counter& bytes =
        obs::Registry::global().counter("conv.im2col_bytes");
    calls.add();
    // One im2col expansion per forward: kk rows × B·cols columns written.
    bytes.add(static_cast<std::uint64_t>(kk * B * cols) * sizeof(Scalar));
  }

  Tensor out({B, out_ch_, OH, OW});
  for (std::size_t b0 = 0; b0 < B; b0 += chunk) {
    const std::size_t bn = std::min(chunk, B - b0);
    const std::size_t total = bn * cols;
    im2col(x, b0, bn, OH, OW, tl_col);

    // Each sample's output plane already has the GEMM's (oc, oh·ow) layout,
    // so the product lands directly in the output tensor: pre-fill with the
    // channel bias and accumulate (beta = 1). No intermediate matrix, no
    // regroup pass. The sample's col block is the column slice at b·cols
    // (row stride stays `total`).
    for (std::size_t b = 0; b < bn; ++b) {
      Scalar* oplane = out.raw() + (b0 + b) * out_ch_ * cols;
      for (std::size_t oc = 0; oc < out_ch_; ++oc) {
        std::fill(oplane + oc * cols, oplane + (oc + 1) * cols, bias_[oc]);
      }
      ops::gemm(false, false, out_ch_, cols, kk, weight_.raw(), kk,
                tl_col.data() + b * cols, total, 1.0, oplane, cols);
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const std::size_t B = input_.dim(0), H = input_.dim(2), W = input_.dim(3);
  const std::size_t OH = H + 2 * pad_ - k_ + 1;
  const std::size_t OW = W + 2 * pad_ - k_ + 1;
  HFL_CHECK(grad_out.rank() == 4 && grad_out.dim(0) == B &&
                grad_out.dim(1) == out_ch_ && grad_out.dim(2) == OH &&
                grad_out.dim(3) == OW,
            "conv2d backward shape mismatch");
  const std::size_t cols = OH * OW;
  const std::size_t kk = in_ch_ * k_ * k_;
  const std::size_t chunk = samples_per_chunk(cols);

  if (obs::enabled()) {
    static obs::Counter& calls =
        obs::Registry::global().counter("conv.bwd_calls");
    static obs::Counter& bytes =
        obs::Registry::global().counter("conv.im2col_bytes");
    calls.add();
    // The backward pass rebuilds the im2col chunk and writes dCol of the
    // same volume: 2 × kk × B·cols scalars.
    bytes.add(static_cast<std::uint64_t>(2 * kk * B * cols) * sizeof(Scalar));
  }

  Tensor grad_in(input_.shape());
  for (std::size_t b0 = 0; b0 < B; b0 += chunk) {
    const std::size_t bn = std::min(chunk, B - b0);
    const std::size_t total = bn * cols;

    // Rebuild the im2col chunk from the cached input (cheaper than keeping
    // the expansion live across the whole forward pass of a deep model).
    im2col(input_, b0, bn, OH, OW, tl_col);

    for (std::size_t b = 0; b < bn; ++b) {
      // Each sample's grad_out plane is already the out_ch × OH·OW matrix the
      // GEMMs below need — no regroup copy. Its col block is the column
      // slice at b·cols (row stride `total`).
      const Scalar* g = grad_out.raw() + (b0 + b) * out_ch_ * cols;
      const Scalar* col = tl_col.data() + b * cols;

      for (std::size_t oc = 0; oc < out_ch_; ++oc) {
        Scalar gb = 0;
        const Scalar* src = g + oc * cols;
        for (std::size_t c = 0; c < cols; ++c) gb += src[c];
        grad_bias_[oc] += gb;
      }

      // dW(oc, r) += Σ_c G(oc, c) col(r, c) — G · colᵀ, accumulated (beta=1)
      // across samples and across backward calls.
      ops::gemm(false, true, out_ch_, kk, cols, g, cols, col, total, 1.0,
                grad_weight_.raw(), kk);

      // dCol(r, c) = Σ_oc W(oc, r) G(oc, c) — Wᵀ · G.
      tl_dcol.resize(kk * cols);
      ops::gemm(true, false, kk, cols, out_ch_, weight_.raw(), kk, g, cols,
                0.0, tl_dcol.data(), cols);

      // col2im: scatter-add dCol back onto the padded input geometry.
      Scalar* gisample = grad_in.raw() + (b0 + b) * in_ch_ * H * W;
      std::size_t r = 0;
      for (std::size_t ic = 0; ic < in_ch_; ++ic) {
        Scalar* giplane = gisample + ic * H * W;
        for (std::size_t kh = 0; kh < k_; ++kh) {
          for (std::size_t kw = 0; kw < k_; ++kw, ++r) {
            const Scalar* drow = tl_dcol.data() + r * cols;
            const std::ptrdiff_t shift = static_cast<std::ptrdiff_t>(kw) -
                                         static_cast<std::ptrdiff_t>(pad_);
            const std::size_t ow_lo =
                shift < 0 ? static_cast<std::size_t>(-shift) : 0;
            const std::size_t ow_hi = std::min(
                OW, static_cast<std::size_t>(
                        static_cast<std::ptrdiff_t>(W) - shift));
            for (std::size_t oh = 0; oh < OH; ++oh) {
              const std::ptrdiff_t ih = static_cast<std::ptrdiff_t>(oh + kh) -
                                        static_cast<std::ptrdiff_t>(pad_);
              if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(H)) continue;
              Scalar* xrow = giplane + ih * static_cast<std::ptrdiff_t>(W);
              const Scalar* dsrc = drow + oh * OW;
              for (std::size_t ow = ow_lo; ow < ow_hi; ++ow) {
                xrow[static_cast<std::ptrdiff_t>(ow) + shift] += dsrc[ow];
              }
            }
          }
        }
      }
    }
  }
  return grad_in;
}

}  // namespace hfl::nn
