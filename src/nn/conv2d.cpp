#include "src/nn/conv2d.h"

#include <cmath>

namespace hfl::nn {

Conv2d::Conv2d(std::size_t in_channels, std::size_t out_channels,
               std::size_t kernel, std::size_t padding)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      k_(kernel),
      pad_(padding),
      weight_({out_ch_, in_ch_, k_, k_}),
      bias_({out_ch_}),
      grad_weight_({out_ch_, in_ch_, k_, k_}),
      grad_bias_({out_ch_}) {
  HFL_CHECK(in_ch_ > 0 && out_ch_ > 0 && k_ > 0, "conv2d dims must be positive");
}

void Conv2d::init_params(Rng& rng) {
  const Scalar fan_in = static_cast<Scalar>(in_ch_ * k_ * k_);
  const Scalar stddev = std::sqrt(2.0 / fan_in);
  for (auto& v : weight_.data()) v = rng.normal(0.0, stddev);
  bias_.fill(0.0);
}

// The convolution is evaluated sample-by-sample as a GEMM over an im2col
// buffer: col(r, c) with r indexing (ic, kh, kw) and c indexing (oh, ow).
// Per-sample buffers keep peak memory at OH·OW·Cin·k² scalars per layer even
// for large simulated fleets.
void Conv2d::im2col(const Scalar* xplane_base, std::size_t h, std::size_t w,
                    std::size_t oh_count, std::size_t ow_count) {
  const std::size_t cols = oh_count * ow_count;
  col_.assign(in_ch_ * k_ * k_ * cols, 0.0);
  std::size_t r = 0;
  for (std::size_t ic = 0; ic < in_ch_; ++ic) {
    const Scalar* xplane = xplane_base + ic * h * w;
    for (std::size_t kh = 0; kh < k_; ++kh) {
      for (std::size_t kw = 0; kw < k_; ++kw, ++r) {
        Scalar* crow = col_.data() + r * cols;
        for (std::size_t oh = 0; oh < oh_count; ++oh) {
          const std::ptrdiff_t ih = static_cast<std::ptrdiff_t>(oh + kh) -
                                    static_cast<std::ptrdiff_t>(pad_);
          if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(h)) continue;
          const Scalar* xrow = xplane + ih * static_cast<std::ptrdiff_t>(w);
          Scalar* cdst = crow + oh * ow_count;
          // iw = ow + kw − pad must lie in [0, w).
          const std::ptrdiff_t shift = static_cast<std::ptrdiff_t>(kw) -
                                       static_cast<std::ptrdiff_t>(pad_);
          const std::size_t ow_lo =
              shift < 0 ? static_cast<std::size_t>(-shift) : 0;
          const std::size_t ow_hi =
              std::min(ow_count, static_cast<std::size_t>(
                                     static_cast<std::ptrdiff_t>(w) - shift));
          for (std::size_t ow = ow_lo; ow < ow_hi; ++ow) {
            cdst[ow] = xrow[static_cast<std::ptrdiff_t>(ow) + shift];
          }
        }
      }
    }
  }
}

Tensor Conv2d::forward(const Tensor& x, bool /*train*/) {
  HFL_CHECK(x.rank() == 4 && x.dim(1) == in_ch_,
            "conv2d forward expects NCHW with C=" + std::to_string(in_ch_) +
                ", got " + x.shape_string());
  input_ = x;
  const std::size_t B = x.dim(0), H = x.dim(2), W = x.dim(3);
  HFL_CHECK(H + 2 * pad_ >= k_ && W + 2 * pad_ >= k_,
            "conv2d kernel larger than padded input");
  const std::size_t OH = H + 2 * pad_ - k_ + 1;
  const std::size_t OW = W + 2 * pad_ - k_ + 1;
  const std::size_t cols = OH * OW;
  const std::size_t kk = in_ch_ * k_ * k_;
  Tensor out({B, out_ch_, OH, OW});

  const Scalar* pw = weight_.raw();
  for (std::size_t b = 0; b < B; ++b) {
    im2col(x.raw() + b * in_ch_ * H * W, H, W, OH, OW);
    Scalar* oplane = out.raw() + b * out_ch_ * cols;
    // out(oc, :) = Σ_r W(oc, r) · col(r, :) + bias(oc)
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      Scalar* orow = oplane + oc * cols;
      const Scalar bias = bias_[oc];
      for (std::size_t c = 0; c < cols; ++c) orow[c] = bias;
      const Scalar* wrow = pw + oc * kk;
      for (std::size_t r = 0; r < kk; ++r) {
        const Scalar wv = wrow[r];
        if (wv == 0.0) continue;
        const Scalar* crow = col_.data() + r * cols;
        for (std::size_t c = 0; c < cols; ++c) orow[c] += wv * crow[c];
      }
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const std::size_t B = input_.dim(0), H = input_.dim(2), W = input_.dim(3);
  const std::size_t OH = H + 2 * pad_ - k_ + 1;
  const std::size_t OW = W + 2 * pad_ - k_ + 1;
  HFL_CHECK(grad_out.rank() == 4 && grad_out.dim(0) == B &&
                grad_out.dim(1) == out_ch_ && grad_out.dim(2) == OH &&
                grad_out.dim(3) == OW,
            "conv2d backward shape mismatch");
  const std::size_t cols = OH * OW;
  const std::size_t kk = in_ch_ * k_ * k_;

  Tensor grad_in(input_.shape());
  const Scalar* pw = weight_.raw();
  Scalar* pgw = grad_weight_.raw();

  for (std::size_t b = 0; b < B; ++b) {
    // Rebuild the im2col buffer for this sample (cheaper than caching one
    // buffer per batch element).
    im2col(input_.raw() + b * in_ch_ * H * W, H, W, OH, OW);
    const Scalar* gplane = grad_out.raw() + b * out_ch_ * cols;

    // Bias: row sums. Weights: dW(oc, r) += Σ_c G(oc, c) col(r, c).
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      const Scalar* grow = gplane + oc * cols;
      Scalar gb = 0;
      for (std::size_t c = 0; c < cols; ++c) gb += grow[c];
      grad_bias_[oc] += gb;
      Scalar* gwrow = pgw + oc * kk;
      for (std::size_t r = 0; r < kk; ++r) {
        const Scalar* crow = col_.data() + r * cols;
        Scalar acc = 0;
        for (std::size_t c = 0; c < cols; ++c) acc += grow[c] * crow[c];
        gwrow[r] += acc;
      }
    }

    // dCol(r, :) = Σ_oc W(oc, r) G(oc, :), then scatter (col2im).
    dcol_.assign(kk * cols, 0.0);
    for (std::size_t oc = 0; oc < out_ch_; ++oc) {
      const Scalar* grow = gplane + oc * cols;
      const Scalar* wrow = pw + oc * kk;
      for (std::size_t r = 0; r < kk; ++r) {
        const Scalar wv = wrow[r];
        if (wv == 0.0) continue;
        Scalar* drow = dcol_.data() + r * cols;
        for (std::size_t c = 0; c < cols; ++c) drow[c] += wv * grow[c];
      }
    }

    Scalar* giplane_base = grad_in.raw() + b * in_ch_ * H * W;
    std::size_t r = 0;
    for (std::size_t ic = 0; ic < in_ch_; ++ic) {
      Scalar* giplane = giplane_base + ic * H * W;
      for (std::size_t kh = 0; kh < k_; ++kh) {
        for (std::size_t kw = 0; kw < k_; ++kw, ++r) {
          const Scalar* drow = dcol_.data() + r * cols;
          for (std::size_t oh = 0; oh < OH; ++oh) {
            const std::ptrdiff_t ih = static_cast<std::ptrdiff_t>(oh + kh) -
                                      static_cast<std::ptrdiff_t>(pad_);
            if (ih < 0 || ih >= static_cast<std::ptrdiff_t>(H)) continue;
            Scalar* xrow = giplane + ih * static_cast<std::ptrdiff_t>(W);
            const Scalar* dsrc = drow + oh * OW;
            const std::ptrdiff_t shift = static_cast<std::ptrdiff_t>(kw) -
                                         static_cast<std::ptrdiff_t>(pad_);
            const std::size_t ow_lo =
                shift < 0 ? static_cast<std::size_t>(-shift) : 0;
            const std::size_t ow_hi = std::min(
                OW, static_cast<std::size_t>(
                        static_cast<std::ptrdiff_t>(W) - shift));
            for (std::size_t ow = ow_lo; ow < ow_hi; ++ow) {
              xrow[static_cast<std::ptrdiff_t>(ow) + shift] += dsrc[ow];
            }
          }
        }
      }
    }
  }
  return grad_in;
}

}  // namespace hfl::nn
