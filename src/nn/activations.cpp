#include "src/nn/activations.h"

#include <cmath>

namespace hfl::nn {

Tensor ReLU::forward(const Tensor& x, bool /*train*/) {
  input_ = x;
  Tensor out = x;
  for (auto& v : out.data()) {
    if (v < 0) v = 0;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  HFL_CHECK(grad_out.same_shape(input_), "ReLU backward shape mismatch");
  Tensor grad_in = grad_out;
  for (std::size_t i = 0; i < grad_in.size(); ++i) {
    if (input_[i] <= 0) grad_in[i] = 0;
  }
  return grad_in;
}

Tensor Tanh::forward(const Tensor& x, bool /*train*/) {
  Tensor out = x;
  for (auto& v : out.data()) v = std::tanh(v);
  output_ = out;
  return out;
}

Tensor Tanh::backward(const Tensor& grad_out) {
  HFL_CHECK(grad_out.same_shape(output_), "Tanh backward shape mismatch");
  Tensor grad_in = grad_out;
  for (std::size_t i = 0; i < grad_in.size(); ++i) {
    grad_in[i] *= 1.0 - output_[i] * output_[i];
  }
  return grad_in;
}

Tensor Sigmoid::forward(const Tensor& x, bool /*train*/) {
  Tensor out = x;
  for (auto& v : out.data()) v = 1.0 / (1.0 + std::exp(-v));
  output_ = out;
  return out;
}

Tensor Sigmoid::backward(const Tensor& grad_out) {
  HFL_CHECK(grad_out.same_shape(output_), "Sigmoid backward shape mismatch");
  Tensor grad_in = grad_out;
  for (std::size_t i = 0; i < grad_in.size(); ++i) {
    grad_in[i] *= output_[i] * (1.0 - output_[i]);
  }
  return grad_in;
}

}  // namespace hfl::nn
