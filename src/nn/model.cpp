#include "src/nn/model.h"

#include "src/tensor/tensor_ops.h"

namespace hfl::nn {

Model::Model(std::unique_ptr<Sequential> net, LossPtr loss,
             std::vector<std::size_t> sample_shape)
    : net_(std::move(net)),
      loss_(std::move(loss)),
      sample_shape_(std::move(sample_shape)) {
  HFL_CHECK(net_ != nullptr, "model network must not be null");
  HFL_CHECK(loss_ != nullptr, "model loss must not be null");
  param_tensors_ = net_->params();
  grad_tensors_ = net_->grads();
  HFL_CHECK(param_tensors_.size() == grad_tensors_.size(),
            "param/grad tensor lists must align");
  for (const Tensor* p : param_tensors_) total_params_ += p->size();
}

void Model::init_params(Rng& rng) { net_->init_params(rng); }

void Model::get_params(Vec& out) const {
  out.resize(total_params_);
  std::size_t off = 0;
  for (const Tensor* p : param_tensors_) {
    std::copy(p->data().begin(), p->data().end(), out.begin() + off);
    off += p->size();
  }
}

Vec Model::get_params() const {
  Vec out;
  get_params(out);
  return out;
}

void Model::set_params(std::span<const Scalar> params) {
  HFL_CHECK(params.size() == total_params_,
            "set_params size mismatch: expected " +
                std::to_string(total_params_) + ", got " +
                std::to_string(params.size()));
  std::size_t off = 0;
  for (Tensor* p : param_tensors_) {
    std::copy(params.begin() + off, params.begin() + off + p->size(),
              p->data().begin());
    off += p->size();
  }
}

void Model::zero_grads() {
  for (Tensor* g : grad_tensors_) g->fill(0.0);
}

void Model::get_grads(Vec& out) const {
  out.resize(total_params_);
  std::size_t off = 0;
  for (const Tensor* g : grad_tensors_) {
    std::copy(g->data().begin(), g->data().end(), out.begin() + off);
    off += g->size();
  }
}

Scalar Model::forward_backward(const Tensor& x,
                               const std::vector<std::size_t>& labels) {
  Tensor pred = net_->forward(x, /*train=*/true);
  const Scalar loss = loss_->forward(pred, labels);
  net_->backward(loss_->backward());
  return loss;
}

Scalar Model::loss_and_gradient(std::span<const Scalar> params,
                                const Tensor& x,
                                const std::vector<std::size_t>& labels,
                                Vec& grad) {
  set_params(params);
  zero_grads();
  const Scalar loss = forward_backward(x, labels);
  get_grads(grad);
  return loss;
}

Tensor Model::predict(const Tensor& x) {
  return net_->forward(x, /*train=*/false);
}

EvalResult Model::evaluate(const Tensor& x,
                           const std::vector<std::size_t>& labels) {
  Tensor pred = predict(x);
  EvalResult result;
  result.loss = loss_->forward(pred, labels);
  std::vector<std::size_t> argmax;
  ops::argmax_rows(pred, argmax);
  std::size_t correct = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (argmax[i] == labels[i]) ++correct;
  }
  result.accuracy =
      labels.empty() ? 0.0
                     : static_cast<Scalar>(correct) /
                           static_cast<Scalar>(labels.size());
  return result;
}

}  // namespace hfl::nn
