#include "src/nn/residual.h"

#include "src/tensor/tensor_ops.h"

namespace hfl::nn {

Residual::Residual(LayerPtr inner) : inner_(std::move(inner)) {
  HFL_CHECK(inner_ != nullptr, "residual inner branch must not be null");
}

Residual::Residual(LayerPtr inner, LayerPtr shortcut)
    : inner_(std::move(inner)), shortcut_(std::move(shortcut)) {
  HFL_CHECK(inner_ != nullptr, "residual inner branch must not be null");
}

Tensor Residual::forward(const Tensor& x, bool train) {
  Tensor branch = inner_->forward(x, train);
  Tensor skip = shortcut_ ? shortcut_->forward(x, train) : x;
  HFL_CHECK(branch.same_shape(skip),
            "residual branch/shortcut shape mismatch: " +
                branch.shape_string() + " vs " + skip.shape_string());
  Tensor out;
  ops::add(branch, skip, out);
  return out;
}

Tensor Residual::backward(const Tensor& grad_out) {
  Tensor grad_branch = inner_->backward(grad_out);
  Tensor grad_skip = shortcut_ ? shortcut_->backward(grad_out) : grad_out;
  Tensor grad_in;
  ops::add(grad_branch, grad_skip, grad_in);
  return grad_in;
}

std::vector<Tensor*> Residual::params() {
  std::vector<Tensor*> out = inner_->params();
  if (shortcut_) {
    for (Tensor* p : shortcut_->params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Residual::grads() {
  std::vector<Tensor*> out = inner_->grads();
  if (shortcut_) {
    for (Tensor* g : shortcut_->grads()) out.push_back(g);
  }
  return out;
}

void Residual::init_params(Rng& rng) {
  inner_->init_params(rng);
  if (shortcut_) shortcut_->init_params(rng);
}

}  // namespace hfl::nn
