// Model checkpointing.
//
// Binary format: magic "HFLCKPT1", little-endian u64 parameter count, then
// the raw IEEE-754 doubles. Load validates the magic and that the size
// matches the receiving model, so checkpoints cannot be silently applied to
// a different architecture (only equal parameter counts are checkable — the
// format deliberately stays architecture-agnostic so flat parameter vectors
// produced by the FL engine can be stored too).
#pragma once

#include <string>

#include "src/nn/model.h"

namespace hfl::nn {

// Raw flat-vector checkpoints.
void save_params(const Vec& params, const std::string& path);
Vec load_params(const std::string& path);

// Model convenience wrappers.
void save_model(const Model& model, const std::string& path);
void load_model(Model& model, const std::string& path);

}  // namespace hfl::nn
