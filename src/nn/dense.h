// Fully-connected layer: y = x W^T + b.
//
// x is (B, in), W is (out, in), b is (out). He/Xavier initialization is
// selected at construction (He for layers followed by ReLU, Xavier
// otherwise).
#pragma once

#include "src/nn/layer.h"

namespace hfl::nn {

enum class InitScheme {
  kHe,      // N(0, sqrt(2/fan_in)) — layers followed by ReLU
  kXavier,  // N(0, sqrt(1/fan_in)) — output/linear layers in deep nets
  kZero,    // all-zero — convex single-layer models (linear/logistic), where
            // zero init is the convention and keeps the early momentum
            // signal of eq. (6) free of random-init bias
};

class Dense final : public Layer {
 public:
  Dense(std::size_t in_features, std::size_t out_features,
        InitScheme init = InitScheme::kHe);

  std::string kind() const override { return "dense"; }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&grad_weight_, &grad_bias_}; }
  void init_params(Rng& rng) override;

  std::size_t in_features() const { return in_; }
  std::size_t out_features() const { return out_; }

 private:
  std::size_t in_, out_;
  InitScheme init_;
  Tensor weight_, bias_;
  Tensor grad_weight_, grad_bias_;
  Tensor input_;         // cached forward input
  Tensor scratch_bias_;  // reused in backward
};

}  // namespace hfl::nn
