// Elementwise activation layers: ReLU, Tanh, Sigmoid.
//
// Stateless apart from the forward cache needed by backward.
#pragma once

#include "src/nn/layer.h"

namespace hfl::nn {

class ReLU final : public Layer {
 public:
  std::string kind() const override { return "relu"; }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor input_;
};

class Tanh final : public Layer {
 public:
  std::string kind() const override { return "tanh"; }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor output_;
};

class Sigmoid final : public Layer {
 public:
  std::string kind() const override { return "sigmoid"; }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  Tensor output_;
};

}  // namespace hfl::nn
