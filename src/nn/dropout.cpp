#include "src/nn/dropout.h"

namespace hfl::nn {

Dropout::Dropout(Scalar rate) : rate_(rate) {
  HFL_CHECK(rate_ >= 0.0 && rate_ < 1.0, "dropout rate must be in [0, 1)");
}

void Dropout::init_params(Rng& rng) { rng_ = rng.fork(0xD60); }

Tensor Dropout::forward(const Tensor& x, bool train) {
  last_train_ = train && rate_ > 0.0;
  if (!last_train_) return x;
  HFL_CHECK(rng_.has_value(), "dropout used before init_params");
  const Scalar keep = 1.0 - rate_;
  const Scalar scale = 1.0 / keep;
  mask_.resize(x.size());
  Tensor out = x;
  for (std::size_t i = 0; i < x.size(); ++i) {
    mask_[i] = rng_->uniform() < keep ? scale : 0.0;
    out[i] *= mask_[i];
  }
  return out;
}

Tensor Dropout::backward(const Tensor& grad_out) {
  if (!last_train_) return grad_out;
  HFL_CHECK(grad_out.size() == mask_.size(), "dropout backward shape mismatch");
  Tensor grad_in = grad_out;
  for (std::size_t i = 0; i < grad_in.size(); ++i) grad_in[i] *= mask_[i];
  return grad_in;
}

}  // namespace hfl::nn
