// Numerical gradient checking.
//
// Verifies a Model's analytic gradient against central finite differences.
// Used by the test suite on every layer type; kept in the library (not the
// tests) so downstream users can validate custom layers the same way.
#pragma once

#include "src/nn/model.h"

namespace hfl::nn {

struct GradCheckResult {
  Scalar max_abs_error = 0;    // max_i |analytic_i - numeric_i|
  Scalar max_rel_error = 0;    // relative to max(|a|, |n|, eps)
  std::size_t checked = 0;     // number of coordinates compared
};

// Compares analytic and numeric gradients at `params` on the given batch.
// `max_coords` bounds how many (deterministically strided) coordinates are
// probed, keeping checks on conv models fast.
GradCheckResult check_gradients(Model& model, const Vec& params,
                                const Tensor& x,
                                const std::vector<std::size_t>& labels,
                                Scalar step = 1e-5,
                                std::size_t max_coords = 200);

}  // namespace hfl::nn
