// Model: a network plus a loss, exposing the flat-parameter interface the
// federated-learning algorithms need.
//
// FL algorithms (src/core, src/algs) only ever see models through
//   * num_params / get_params / set_params — flat `Vec` round-trips,
//   * loss_and_gradient — gradient of the mean batch loss at given params,
//   * evaluate — accuracy/loss on held-out data.
// Each simulated worker owns its own Model instance (built by a
// ModelFactory), so parallel local updates need no locking.
#pragma once

#include <functional>
#include <span>

#include "src/nn/loss.h"
#include "src/nn/sequential.h"

namespace hfl::nn {

struct EvalResult {
  Scalar loss = 0;
  Scalar accuracy = 0;
};

class Model {
 public:
  // `sample_shape` is the shape of one input sample (without the batch
  // dimension), e.g. {1, 28, 28} for MNIST-like images.
  Model(std::unique_ptr<Sequential> net, LossPtr loss,
        std::vector<std::size_t> sample_shape);

  void init_params(Rng& rng);

  std::size_t num_params() const { return total_params_; }
  const std::vector<std::size_t>& sample_shape() const {
    return sample_shape_;
  }

  void get_params(Vec& out) const;
  Vec get_params() const;
  void set_params(std::span<const Scalar> params);

  void zero_grads();
  void get_grads(Vec& out) const;

  // Forward + backward on a batch, accumulating into the parameter grads.
  // Returns the mean batch loss.
  Scalar forward_backward(const Tensor& x,
                          const std::vector<std::size_t>& labels);

  // One-shot: set params, zero grads, forward/backward, extract the gradient.
  // This is the worker-update primitive (∇F_i(x) in the paper's notation).
  Scalar loss_and_gradient(std::span<const Scalar> params, const Tensor& x,
                           const std::vector<std::size_t>& labels, Vec& grad);

  // Evaluation-mode forward pass.
  Tensor predict(const Tensor& x);

  // Mean loss and top-1 accuracy over the given batch.
  EvalResult evaluate(const Tensor& x, const std::vector<std::size_t>& labels);

  // Structural access for the cohort executor (src/nn/cohort.cpp), which
  // walks the layer chain once to compile its fused execution plan.
  Sequential& net() { return *net_; }
  const Loss& loss_fn() const { return *loss_; }

 private:
  std::unique_ptr<Sequential> net_;
  LossPtr loss_;
  std::vector<std::size_t> sample_shape_;
  std::vector<Tensor*> param_tensors_;
  std::vector<Tensor*> grad_tensors_;
  std::size_t total_params_ = 0;
};

// Builds a fresh, independently-owned model instance (identical architecture,
// parameters initialized by the caller). Factories live in models.h.
using ModelFactory = std::function<std::unique_ptr<Model>()>;

}  // namespace hfl::nn
