// Sequential container: a chain of layers applied in order.
//
// Also a Layer itself, so residual blocks can nest a Sequential as their
// inner branch.
#pragma once

#include "src/nn/layer.h"

namespace hfl::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;

  // Chaining-friendly: seq.add<Dense>(10, 5).add<ReLU>() is not supported to
  // keep ownership obvious; use repeated add() calls instead.
  void add(LayerPtr layer);

  template <typename L, typename... Args>
  L& emplace(Args&&... args) {
    auto layer = std::make_unique<L>(std::forward<Args>(args)...);
    L& ref = *layer;
    add(std::move(layer));
    return ref;
  }

  std::size_t num_layers() const { return layers_.size(); }
  Layer& layer(std::size_t i);

  std::string kind() const override { return "sequential"; }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Tensor*> params() override;
  std::vector<Tensor*> grads() override;
  void init_params(Rng& rng) override;

 private:
  std::vector<LayerPtr> layers_;
};

}  // namespace hfl::nn
