#include "src/nn/flatten.h"

namespace hfl::nn {

Tensor Flatten::forward(const Tensor& x, bool /*train*/) {
  HFL_CHECK(x.rank() >= 2, "flatten expects rank >= 2");
  in_shape_ = x.shape();
  Tensor out = x;
  out.reshape({x.dim(0), x.size() / x.dim(0)});
  return out;
}

Tensor Flatten::backward(const Tensor& grad_out) {
  HFL_CHECK(!in_shape_.empty(), "flatten backward before forward");
  Tensor grad_in = grad_out;
  grad_in.reshape(in_shape_);
  return grad_in;
}

}  // namespace hfl::nn
