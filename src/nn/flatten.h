// Flatten: (B, d1, d2, ...) -> (B, d1*d2*...). Backward restores the shape.
#pragma once

#include "src/nn/layer.h"

namespace hfl::nn {

class Flatten final : public Layer {
 public:
  std::string kind() const override { return "flatten"; }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  std::vector<std::size_t> in_shape_;
};

}  // namespace hfl::nn
