#include "src/nn/pool2d.h"

namespace hfl::nn {

namespace {
void check_poolable(const Tensor& x, std::size_t window) {
  HFL_CHECK(x.rank() == 4, "pool2d expects NCHW input, got " +
                               x.shape_string());
  HFL_CHECK(x.dim(2) % window == 0 && x.dim(3) % window == 0,
            "pool2d input spatial dims must be divisible by window");
}
}  // namespace

MaxPool2d::MaxPool2d(std::size_t window) : window_(window) {
  HFL_CHECK(window_ > 0, "pool window must be positive");
}

Tensor MaxPool2d::forward(const Tensor& x, bool /*train*/) {
  check_poolable(x, window_);
  const std::size_t B = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
  const std::size_t OH = H / window_, OW = W / window_;
  Tensor out({B, C, OH, OW});
  in_shape_ = x.shape();
  argmax_.resize(out.size());

  const Scalar* px = x.raw();
  Scalar* po = out.raw();
  std::size_t o = 0;
  for (std::size_t bc = 0; bc < B * C; ++bc) {
    const Scalar* plane = px + bc * H * W;
    for (std::size_t oh = 0; oh < OH; ++oh) {
      for (std::size_t ow = 0; ow < OW; ++ow, ++o) {
        std::size_t best_idx = (oh * window_) * W + ow * window_;
        Scalar best = plane[best_idx];
        for (std::size_t kh = 0; kh < window_; ++kh) {
          for (std::size_t kw = 0; kw < window_; ++kw) {
            const std::size_t idx = (oh * window_ + kh) * W + ow * window_ + kw;
            if (plane[idx] > best) {
              best = plane[idx];
              best_idx = idx;
            }
          }
        }
        po[o] = best;
        argmax_[o] = bc * H * W + best_idx;
      }
    }
  }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  HFL_CHECK(grad_out.size() == argmax_.size(),
            "maxpool backward called without matching forward");
  Tensor grad_in(in_shape_);
  Scalar* pgi = grad_in.raw();
  const Scalar* pg = grad_out.raw();
  for (std::size_t o = 0; o < argmax_.size(); ++o) pgi[argmax_[o]] += pg[o];
  return grad_in;
}

AvgPool2d::AvgPool2d(std::size_t window) : window_(window) {
  HFL_CHECK(window_ > 0, "pool window must be positive");
}

Tensor AvgPool2d::forward(const Tensor& x, bool /*train*/) {
  check_poolable(x, window_);
  const std::size_t B = x.dim(0), C = x.dim(1), H = x.dim(2), W = x.dim(3);
  const std::size_t OH = H / window_, OW = W / window_;
  in_shape_ = x.shape();
  Tensor out({B, C, OH, OW});
  const Scalar inv = 1.0 / static_cast<Scalar>(window_ * window_);

  const Scalar* px = x.raw();
  Scalar* po = out.raw();
  std::size_t o = 0;
  for (std::size_t bc = 0; bc < B * C; ++bc) {
    const Scalar* plane = px + bc * H * W;
    for (std::size_t oh = 0; oh < OH; ++oh) {
      for (std::size_t ow = 0; ow < OW; ++ow, ++o) {
        Scalar acc = 0;
        for (std::size_t kh = 0; kh < window_; ++kh) {
          for (std::size_t kw = 0; kw < window_; ++kw) {
            acc += plane[(oh * window_ + kh) * W + ow * window_ + kw];
          }
        }
        po[o] = acc * inv;
      }
    }
  }
  return out;
}

Tensor AvgPool2d::backward(const Tensor& grad_out) {
  HFL_CHECK(in_shape_.size() == 4, "avgpool backward before forward");
  const std::size_t H = in_shape_[2], W = in_shape_[3];
  const std::size_t OH = H / window_, OW = W / window_;
  HFL_CHECK(grad_out.rank() == 4 && grad_out.dim(2) == OH &&
                grad_out.dim(3) == OW,
            "avgpool backward shape mismatch");
  Tensor grad_in(in_shape_);
  const Scalar inv = 1.0 / static_cast<Scalar>(window_ * window_);
  Scalar* pgi = grad_in.raw();
  const Scalar* pg = grad_out.raw();
  const std::size_t BC = in_shape_[0] * in_shape_[1];
  std::size_t o = 0;
  for (std::size_t bc = 0; bc < BC; ++bc) {
    Scalar* plane = pgi + bc * H * W;
    for (std::size_t oh = 0; oh < OH; ++oh) {
      for (std::size_t ow = 0; ow < OW; ++ow, ++o) {
        const Scalar g = pg[o] * inv;
        for (std::size_t kh = 0; kh < window_; ++kh) {
          for (std::size_t kw = 0; kw < window_; ++kw) {
            plane[(oh * window_ + kh) * W + ow * window_ + kw] += g;
          }
        }
      }
    }
  }
  return grad_in;
}

}  // namespace hfl::nn
