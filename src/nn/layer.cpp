#include "src/nn/layer.h"

namespace hfl::nn {

void Layer::zero_grads() {
  for (Tensor* g : grads()) g->fill(0.0);
}

std::size_t Layer::num_params() {
  std::size_t n = 0;
  for (Tensor* p : params()) n += p->size();
  return n;
}

}  // namespace hfl::nn
