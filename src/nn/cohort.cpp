#include "src/nn/cohort.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/errors.h"
#include "src/common/thread_pool.h"
#include "src/nn/conv2d.h"
#include "src/nn/dense.h"
#include "src/tensor/gemm.h"
#include "src/tensor/gemm_mixed.h"

namespace hfl::nn {
namespace {

// Tile activation budget: the largest concatenated activation of a tile stays
// within ~2 MB of Scalar so a tile's full forward+backward working set is
// cache-resident. Purely a performance knob — per-item results do not depend
// on tiling (see cohort.h).
constexpr std::size_t kTileElems = std::size_t{1} << 18;

void ensure_matrix(Tensor& t, std::size_t rows, std::size_t cols) {
  if (t.rank() == 2 && t.dim(0) == rows && t.dim(1) == cols) return;
  t = Tensor({rows, cols});
}

}  // namespace

struct CohortModel::Stage {
  enum class Kind { kDense, kConv, kPass };
  Kind kind = Kind::kPass;
  std::size_t layer = 0;        // index into the Sequential (Kind::kPass)
  std::size_t in = 0, out = 0;  // dense geometry
  Conv2d::Spec conv;            // conv geometry
  std::size_t w_off = 0, b_off = 0;  // offsets into the flat param/grad vecs
};

CohortModel::CohortModel(std::unique_ptr<Model> probe)
    : probe_(std::move(probe)) {}

CohortModel::~CohortModel() = default;

std::size_t CohortModel::num_params() const { return probe_->num_params(); }

bool CohortModel::supports_row_gather() const {
  return direct_input_ && first_param_ < stages_.size() &&
         stages_[first_param_].kind == Stage::Kind::kDense;
}

std::unique_ptr<CohortModel> CohortModel::create(const ModelFactory& factory) {
  auto probe = factory();
  Sequential& net = probe->net();
  std::vector<Stage> stages;
  std::size_t off = 0;
  for (std::size_t i = 0; i < net.num_layers(); ++i) {
    Layer& layer = net.layer(i);
    Stage st;
    if (auto* d = dynamic_cast<Dense*>(&layer)) {
      st.kind = Stage::Kind::kDense;
      st.in = d->in_features();
      st.out = d->out_features();
      st.w_off = off;
      st.b_off = off + st.out * st.in;
      off = st.b_off + st.out;
    } else if (auto* c = dynamic_cast<Conv2d*>(&layer)) {
      st.kind = Stage::Kind::kConv;
      st.conv = {c->in_channels(), c->out_channels(), c->kernel(),
                 c->padding()};
      st.w_off = off;
      st.b_off = off + st.conv.out_ch * st.conv.kk();
      off = st.b_off + st.conv.out_ch;
    } else {
      // Stateless layers run directly on the concatenated tile tensor: their
      // forward/backward treat batch rows (or NCHW planes) independently, so
      // per-worker row segments come out bit-identical to per-worker calls.
      const std::string kind = layer.kind();
      const bool stateless = kind == "relu" || kind == "tanh" ||
                             kind == "sigmoid" || kind == "maxpool2d" ||
                             kind == "avgpool2d" || kind == "flatten";
      if (!stateless) return nullptr;  // Residual, nested Sequential, ...
      st.kind = Stage::Kind::kPass;
      st.layer = i;
    }
    stages.push_back(st);
  }
  if (off != probe->num_params()) return nullptr;  // unexpected param layout

  const std::string loss_kind = probe->loss_fn().kind();
  bool softmax = false;
  if (loss_kind == "softmax_ce") {
    softmax = true;
  } else if (loss_kind == "mse_onehot") {
    softmax = false;
  } else {
    return nullptr;
  }

  // First parametric stage: its input gradient has no consumer (the stages
  // before it are parameter-free), so the backward pass stops there. When
  // additionally every stage before it is a Flatten — a pure reshape — the
  // executor reads each item's mini-batch tensor in place and never
  // materializes the concatenated input at all.
  std::size_t first_param = stages.size();
  bool direct_input = true;
  for (std::size_t i = 0; i < stages.size(); ++i) {
    if (stages[i].kind != Stage::Kind::kPass) {
      first_param = i;
      break;
    }
    if (net.layer(stages[i].layer).kind() != "flatten") direct_input = false;
  }
  std::size_t sample_elems = 1;
  for (const std::size_t d : probe->sample_shape()) sample_elems *= d;
  if (first_param < stages.size() &&
      stages[first_param].kind == Stage::Kind::kDense &&
      stages[first_param].in != sample_elems) {
    direct_input = false;  // flatten-prefix shape surprise: stay generic
  }
  if (first_param >= stages.size()) direct_input = false;

  // Dry 1-sample forward to size the widest activation — the tile budget
  // divides by this to pick how many rows fit in cache.
  std::size_t max_row_elems = 1;
  {
    std::vector<std::size_t> shape{1};
    const auto& ss = probe->sample_shape();
    shape.insert(shape.end(), ss.begin(), ss.end());
    Tensor t(std::move(shape));
    max_row_elems = t.size();
    for (std::size_t i = 0; i < net.num_layers(); ++i) {
      t = net.layer(i).forward(t, /*train=*/false);
      max_row_elems = std::max(max_row_elems, t.size());
    }
  }

  auto cohort = std::unique_ptr<CohortModel>(new CohortModel(std::move(probe)));
  cohort->factory_ = factory;
  cohort->stages_ = std::move(stages);
  cohort->softmax_loss_ = softmax;
  cohort->first_param_ = first_param;
  cohort->direct_input_ = direct_input;
  cohort->sample_elems_ = sample_elems;
  cohort->max_row_elems_ = max_row_elems;
  return cohort;
}

// Dense forward: per item, y_seg = x_seg · W_iᵀ + b_i — the exact
// matmul_transpose_b + add_row_bias sequence of Dense::forward, evaluated on
// the item's row segment. Cross-worker dense products share NOTHING (every
// worker has its own weights and inputs), so there is no panel to amortize:
// the products run per item, reading each worker's parameters in place —
// the fused win for dense layers is the eliminated set_params / zero_grads /
// get_grads staging, not GEMM fusion. (Conv stages are different: within one
// worker the weight operand is shared across samples, and the conv spans
// batch those products — see conv2d.h.)
//
// `in == nullptr` selects direct-input mode: the A operand is the item's own
// mini-batch tensor (bit-identical to reading the flattened concat, which
// would hold the same values in the same row order).
void CohortModel::dense_forward(const Stage& st, const Tensor* in, Tensor& out,
                                std::span<CohortItem> items, std::size_t ilo,
                                std::size_t ihi, bool mixed) {
  const std::size_t nin = st.in, nout = st.out;
  HFL_CHECK(in == nullptr || (in->rank() == 2 && in->dim(1) == nin),
            "cohort dense input width mismatch");
  const std::size_t base = row_off_[ilo];
  ensure_matrix(out, row_off_[ihi] - base, nout);

  const auto gemm1 = mixed ? ops::gemm_mixed : ops::gemm;
  for (std::size_t i = ilo; i < ihi; ++i) {
    const std::size_t row = row_off_[i] - base;
    if (in == nullptr && items[i].x_rows != nullptr) {
      // Row-gather mode: the A operand is read row-by-row straight from the
      // dataset — bit-identical to the gathered-tensor product below.
      ops::gemm_rows_a(batch_of(i), nout, nin, items[i].x_rows,
                       /*trans_b=*/true, items[i].params + st.w_off, nin, 0.0,
                       out.raw() + row * nout, nout);
    } else {
      const Scalar* a =
          in != nullptr ? in->raw() + row * nin : items[i].x->raw();
      gemm1(false, true, batch_of(i), nout, nin, a, nin,
            items[i].params + st.w_off, nin, 0.0, out.raw() + row * nout,
            nout);
    }
    // Bias rows, replicating ops::add_row_bias on the segment.
    const Scalar* pb = items[i].params + st.b_off;
    Scalar* py = out.raw() + row * nout;
    for (std::size_t r = 0; r < batch_of(i); ++r) {
      for (std::size_t j = 0; j < nout; ++j) py[r * nout + j] += pb[j];
    }
  }
}

// Dense backward, replicating Dense::backward per item: dW into scratch then
// added into the (zeroed) flat grad — the scratch-then-add order is part of
// the bit-identity contract (the final += through 0.0 normalizes signed
// zeros exactly like the per-worker path) — db via the sum_rows loop, and
// grad_in = g_seg · W_i. `gin == nullptr` skips the grad_in product (first
// parametric stage: dX is dead); `in == nullptr` is direct-input mode as in
// dense_forward.
void CohortModel::dense_backward(const Stage& st, const Tensor* in,
                                 const Tensor& gout, Tensor* gin,
                                 std::span<CohortItem> items, std::size_t ilo,
                                 std::size_t ihi, bool mixed) {
  const std::size_t nin = st.in, nout = st.out;
  const std::size_t base = row_off_[ilo];
  if (gin != nullptr) ensure_matrix(*gin, row_off_[ihi] - base, nin);

  const auto gemm1 = mixed ? ops::gemm_mixed : ops::gemm;
  thread_local Vec dw;
  dw.resize(nout * nin);
  thread_local Vec db;
  for (std::size_t i = ilo; i < ihi; ++i) {
    const std::size_t row = row_off_[i] - base;
    // dW_i = g_segᵀ · x_seg (matmul_transpose_a shape conventions) into
    // scratch, then += into the zeroed flat grad. In row-gather mode the B
    // operand (the mini-batch) is read row-by-row from the dataset —
    // bit-identical to the gathered-tensor product.
    if (in == nullptr && items[i].x_rows != nullptr) {
      ops::gemm_rows_b(/*trans_a=*/true, nout, nin, batch_of(i),
                       gout.raw() + row * nout, nout, items[i].x_rows, 0.0,
                       dw.data(), nin);
    } else {
      const Scalar* a =
          in != nullptr ? in->raw() + row * nin : items[i].x->raw();
      gemm1(true, false, nout, nin, batch_of(i), gout.raw() + row * nout,
            nout, a, nin, 0.0, dw.data(), nin);
    }
    Scalar* gw = items[i].grad + st.w_off;
    for (std::size_t e = 0; e < nout * nin; ++e) gw[e] += dw[e];

    // db: sum_rows into scratch, then += — same loops, same order.
    db.assign(nout, 0.0);
    const Scalar* pg = gout.raw() + row * nout;
    for (std::size_t r = 0; r < batch_of(i); ++r) {
      for (std::size_t j = 0; j < nout; ++j) db[j] += pg[r * nout + j];
    }
    Scalar* gb = items[i].grad + st.b_off;
    for (std::size_t j = 0; j < nout; ++j) gb[j] += db[j];

    // grad_in = g_seg · W_i, reading the worker's weights in place.
    if (gin != nullptr) {
      gemm1(false, false, batch_of(i), nin, nout, gout.raw() + row * nout,
            nout, items[i].params + st.w_off, nin, 0.0,
            gin->raw() + row * nin, nin);
    }
  }
}

// `in == nullptr`: direct-input mode, each item's mini-batch tensor is the
// conv input (first parametric stage of a conv-first model).
void CohortModel::conv_forward(const Stage& st, const Tensor* in, Tensor& out,
                               std::span<CohortItem> items, std::size_t ilo,
                               std::size_t ihi, bool mixed) {
  const Conv2d::Spec& s = st.conv;
  const Tensor& shape_src = in != nullptr ? *in : *items[ilo].x;
  HFL_CHECK(shape_src.rank() == 4 && shape_src.dim(1) == s.in_ch,
            "cohort conv input expects NCHW with C=" +
                std::to_string(s.in_ch) + ", got " +
                shape_src.shape_string());
  const std::size_t H = shape_src.dim(2), W = shape_src.dim(3);
  HFL_CHECK(H + 2 * s.pad >= s.k && W + 2 * s.pad >= s.k,
            "conv2d kernel larger than padded input");
  const std::size_t OH = H + 2 * s.pad - s.k + 1;
  const std::size_t OW = W + 2 * s.pad - s.k + 1;
  const std::size_t base = row_off_[ilo];
  const std::vector<std::size_t> shape{row_off_[ihi] - base, s.out_ch, OH, OW};
  if (out.shape() != shape) out = Tensor(shape);

  for (std::size_t i = ilo; i < ihi; ++i) {
    Scalar* out0 = out.raw() + (row_off_[i] - base) * s.out_ch * OH * OW;
    if (in != nullptr) {
      Conv2d::forward_span(s, items[i].params + st.w_off,
                           items[i].params + st.b_off, *in,
                           row_off_[i] - base, batch_of(i), out0, mixed);
    } else {
      Conv2d::forward_span(s, items[i].params + st.w_off,
                           items[i].params + st.b_off, *items[i].x, 0,
                           batch_of(i), out0, mixed);
    }
  }
}

// `gin == nullptr` skips dX (first parametric stage); `in == nullptr` is
// direct-input mode.
void CohortModel::conv_backward(const Stage& st, const Tensor* in,
                                const Tensor& gout, Tensor* gin,
                                std::span<CohortItem> items, std::size_t ilo,
                                std::size_t ihi, bool mixed) {
  const Conv2d::Spec& s = st.conv;
  const Tensor& shape_src = in != nullptr ? *in : *items[ilo].x;
  const std::size_t H = shape_src.dim(2), W = shape_src.dim(3);
  const std::size_t OH = H + 2 * s.pad - s.k + 1;
  const std::size_t OW = W + 2 * s.pad - s.k + 1;
  const std::size_t base = row_off_[ilo];
  if (gin != nullptr) {
    // Zero-initialized: col2im scatter-adds into it.
    *gin = Tensor({row_off_[ihi] - base, s.in_ch, H, W});
  }
  for (std::size_t i = ilo; i < ihi; ++i) {
    const std::size_t row = row_off_[i] - base;
    const Scalar* gout0 = gout.raw() + row * s.out_ch * OH * OW;
    Scalar* gin0 =
        gin != nullptr ? gin->raw() + row * s.in_ch * H * W : nullptr;
    if (in != nullptr) {
      Conv2d::backward_span(s, items[i].params + st.w_off, *in, row,
                            batch_of(i), gout0, items[i].grad + st.w_off,
                            items[i].grad + st.b_off, gin0, mixed);
    } else {
      Conv2d::backward_span(s, items[i].params + st.w_off, *items[i].x, 0,
                            batch_of(i), gout0, items[i].grad + st.w_off,
                            items[i].grad + st.b_off, gin0, mixed);
    }
  }
}

// Loss forward + backward fused per item, replicating loss.cpp on each row
// segment with the item's own batch size in the 1/B mean.
void CohortModel::loss_stage(const Tensor& pred, Tensor& grad,
                             std::span<CohortItem> items, std::size_t ilo,
                             std::size_t ihi) {
  HFL_CHECK(pred.rank() == 2, "loss expects (B, K) predictions");
  const std::size_t K = pred.dim(1);
  grad = pred;  // transformed in place below
  const bool softmax = softmax_loss_;
  const std::size_t base = row_off_[ilo];

  for (std::size_t i = ilo; i < ihi; ++i) {
    const std::size_t b = batch_of(i);
    const std::vector<std::size_t>& labels = *items[i].y;
    for (const std::size_t y : labels) {
      HFL_CHECK(y < K, "label out of class range");
    }
    Scalar* pp = grad.raw() + (row_off_[i] - base) * K;
    Scalar total = 0;
    if (softmax) {
      for (std::size_t r = 0; r < b; ++r) {
        Scalar* row = pp + r * K;
        Scalar mx = row[0];
        for (std::size_t j = 1; j < K; ++j) mx = std::max(mx, row[j]);
        Scalar denom = 0;
        for (std::size_t j = 0; j < K; ++j) {
          row[j] = std::exp(row[j] - mx);
          denom += row[j];
        }
        const Scalar inv = 1.0 / denom;
        for (std::size_t j = 0; j < K; ++j) row[j] *= inv;
        // Clamp to avoid -inf when a probability underflows to zero.
        total += -std::log(std::max(row[labels[r]], Scalar{1e-300}));
      }
    } else {
      for (std::size_t r = 0; r < b; ++r) {
        for (std::size_t j = 0; j < K; ++j) {
          const Scalar target = (j == labels[r]) ? 1.0 : 0.0;
          const Scalar d = pp[r * K + j] - target;
          total += 0.5 * d * d;
        }
      }
    }
    items[i].loss = total / static_cast<Scalar>(b);

    // Backward: grad rows are the (softmax probs | predictions) with 1
    // subtracted at the label, scaled by the item's 1/B.
    const Scalar inv_b = 1.0 / static_cast<Scalar>(b);
    for (std::size_t r = 0; r < b; ++r) {
      pp[r * K + labels[r]] -= 1.0;
      for (std::size_t j = 0; j < K; ++j) pp[r * K + j] *= inv_b;
    }
  }
}

void CohortModel::run_tile(std::size_t t, std::size_t ilo, std::size_t ihi,
                           std::span<CohortItem> items, bool mixed) {
  const std::size_t num_params = probe_->num_params();
  const std::size_t base = row_off_[ilo];
  const std::size_t rows = row_off_[ihi] - base;
  Sequential& net = tile_probes_[t]->net();
  std::vector<Tensor>& acts = tile_acts_[t];
  acts.resize(stages_.size() + 1);

  for (std::size_t i = ilo; i < ihi; ++i) {
    std::fill(items[i].grad, items[i].grad + num_params, 0.0);
  }

  // Tile input: concatenate the tile's mini-batches — skipped entirely in
  // direct-input mode, where the first parametric stage reads each item's
  // tensor in place (any leading Flatten is a pure reshape).
  const std::size_t fwd_start = direct_input_ ? first_param_ : 0;
  if (!direct_input_) {
    const auto& ss = probe_->sample_shape();
    std::vector<std::size_t> shape;
    shape.reserve(ss.size() + 1);
    shape.push_back(rows);
    shape.insert(shape.end(), ss.begin(), ss.end());
    if (acts[0].shape() != shape) acts[0] = Tensor(std::move(shape));
    for (std::size_t i = ilo; i < ihi; ++i) {
      std::memcpy(acts[0].raw() + (row_off_[i] - base) * sample_elems_,
                  items[i].x->raw(),
                  batch_of(i) * sample_elems_ * sizeof(Scalar));
    }
  }

  for (std::size_t s = fwd_start; s < stages_.size(); ++s) {
    const Stage& st = stages_[s];
    const Tensor* in =
        direct_input_ && s == first_param_ ? nullptr : &acts[s];
    switch (st.kind) {
      case Stage::Kind::kPass:
        acts[s + 1] = net.layer(st.layer).forward(acts[s], /*train=*/true);
        break;
      case Stage::Kind::kDense:
        dense_forward(st, in, acts[s + 1], items, ilo, ihi, mixed);
        break;
      case Stage::Kind::kConv:
        conv_forward(st, in, acts[s + 1], items, ilo, ihi, mixed);
        break;
    }
  }

  Tensor g;
  loss_stage(acts[stages_.size()], g, items, ilo, ihi);

  // Backward stops at the first parametric stage: everything before it is
  // parameter-free, so its input gradient is dead work (the generic
  // per-worker layer chain cannot know this and computes it anyway).
  for (std::size_t s = stages_.size(); s-- > first_param_;) {
    const Stage& st = stages_[s];
    const bool last = s == first_param_;
    const Tensor* in = direct_input_ && last ? nullptr : &acts[s];
    switch (st.kind) {
      case Stage::Kind::kPass:
        g = net.layer(st.layer).backward(g);
        break;
      case Stage::Kind::kDense: {
        Tensor gin;
        dense_backward(st, in, g, last ? nullptr : &gin, items, ilo, ihi,
                       mixed);
        g = std::move(gin);
        break;
      }
      case Stage::Kind::kConv: {
        Tensor gin;
        conv_backward(st, in, g, last ? nullptr : &gin, items, ilo, ihi,
                      mixed);
        g = std::move(gin);
        break;
      }
    }
  }
}

void CohortModel::run(std::span<CohortItem> items, ThreadPool* pool,
                      bool mixed) {
  if (items.empty()) return;

  row_off_.assign(items.size() + 1, 0);
  const bool rows_ok = supports_row_gather() && !mixed;
  for (std::size_t i = 0; i < items.size(); ++i) {
    HFL_CHECK(items[i].y != nullptr && items[i].params != nullptr &&
                  items[i].grad != nullptr,
              "cohort item not fully wired");
    std::size_t b = 0;
    if (items[i].x_rows != nullptr) {
      HFL_CHECK(rows_ok,
                "row-gather cohort items require a dense-first direct-input "
                "plan and full precision");
      b = items[i].y->size();
      HFL_CHECK(b > 0, "cohort item with empty batch");
    } else {
      HFL_CHECK(items[i].x != nullptr, "cohort item not fully wired");
      b = items[i].x->dim(0);
      HFL_CHECK(b > 0, "cohort item with empty batch");
      HFL_CHECK(items[i].y->size() == b, "label count must match batch size");
      HFL_CHECK(items[i].x->size() == b * sample_elems_,
                "cohort item batch shape mismatch: " +
                    items[i].x->shape_string());
    }
    row_off_[i + 1] = row_off_[i] + b;
  }

  // Tile boundaries: greedily group consecutive items until the tile's
  // widest activation would exceed the cache budget — additionally capped so
  // there are at least as many tiles as pool threads (small models would
  // otherwise collapse into one tile and run serial). FP results are
  // independent of tiling: every loss/gradient is per-item exact.
  const std::size_t threads = pool != nullptr ? pool->size() : 1;
  const std::size_t rows_total = row_off_.back();
  const std::size_t rows_per_tile = std::max<std::size_t>(
      1, std::min(kTileElems / std::max<std::size_t>(1, max_row_elems_),
                  (rows_total + threads - 1) / threads));
  std::vector<std::pair<std::size_t, std::size_t>> tiles;
  std::size_t lo = 0;
  for (std::size_t i = 1; i <= items.size(); ++i) {
    if (i == items.size() ||
        row_off_[i + 1] - row_off_[lo] > rows_per_tile) {
      tiles.emplace_back(lo, i);
      lo = i;
    }
  }

  while (tile_probes_.size() < tiles.size()) tile_probes_.push_back(factory_());
  tile_acts_.resize(tiles.size());

  if (pool == nullptr || pool->size() <= 1 || tiles.size() <= 1) {
    for (std::size_t t = 0; t < tiles.size(); ++t) {
      run_tile(t, tiles[t].first, tiles[t].second, items, mixed);
    }
  } else {
    pool->parallel_for(tiles.size(), [&](std::size_t t) {
      run_tile(t, tiles[t].first, tiles[t].second, items, mixed);
    });
  }
}

}  // namespace hfl::nn
