#include "src/nn/loss.h"

#include <cmath>

namespace hfl::nn {

namespace {
void check_pred(const Tensor& pred, const std::vector<std::size_t>& labels) {
  HFL_CHECK(pred.rank() == 2, "loss expects (B, K) predictions");
  HFL_CHECK(pred.dim(0) == labels.size(), "label count must match batch size");
  for (const std::size_t y : labels) {
    HFL_CHECK(y < pred.dim(1), "label out of class range");
  }
}
}  // namespace

Scalar SoftmaxCrossEntropy::forward(const Tensor& pred,
                                    const std::vector<std::size_t>& labels) {
  check_pred(pred, labels);
  const std::size_t B = pred.dim(0), K = pred.dim(1);
  probs_ = pred;
  labels_ = labels;
  Scalar total = 0;
  Scalar* pp = probs_.raw();
  for (std::size_t i = 0; i < B; ++i) {
    Scalar* row = pp + i * K;
    Scalar mx = row[0];
    for (std::size_t j = 1; j < K; ++j) mx = std::max(mx, row[j]);
    Scalar denom = 0;
    for (std::size_t j = 0; j < K; ++j) {
      row[j] = std::exp(row[j] - mx);
      denom += row[j];
    }
    const Scalar inv = 1.0 / denom;
    for (std::size_t j = 0; j < K; ++j) row[j] *= inv;
    // Clamp to avoid -inf when a probability underflows to zero.
    total += -std::log(std::max(row[labels[i]], Scalar{1e-300}));
  }
  return total / static_cast<Scalar>(B);
}

Tensor SoftmaxCrossEntropy::backward() {
  HFL_CHECK(!labels_.empty(), "loss backward before forward");
  const std::size_t B = probs_.dim(0), K = probs_.dim(1);
  Tensor grad = probs_;
  const Scalar inv_b = 1.0 / static_cast<Scalar>(B);
  Scalar* pg = grad.raw();
  for (std::size_t i = 0; i < B; ++i) {
    pg[i * K + labels_[i]] -= 1.0;
    for (std::size_t j = 0; j < K; ++j) pg[i * K + j] *= inv_b;
  }
  return grad;
}

Scalar MseOnOneHot::forward(const Tensor& pred,
                            const std::vector<std::size_t>& labels) {
  check_pred(pred, labels);
  pred_ = pred;
  labels_ = labels;
  const std::size_t B = pred.dim(0), K = pred.dim(1);
  Scalar total = 0;
  const Scalar* pp = pred.raw();
  for (std::size_t i = 0; i < B; ++i) {
    for (std::size_t j = 0; j < K; ++j) {
      const Scalar target = (j == labels[i]) ? 1.0 : 0.0;
      const Scalar d = pp[i * K + j] - target;
      total += 0.5 * d * d;
    }
  }
  return total / static_cast<Scalar>(B);
}

Tensor MseOnOneHot::backward() {
  HFL_CHECK(!labels_.empty(), "loss backward before forward");
  const std::size_t B = pred_.dim(0), K = pred_.dim(1);
  Tensor grad = pred_;
  const Scalar inv_b = 1.0 / static_cast<Scalar>(B);
  Scalar* pg = grad.raw();
  for (std::size_t i = 0; i < B; ++i) {
    pg[i * K + labels_[i]] -= 1.0;
    for (std::size_t j = 0; j < K; ++j) pg[i * K + j] *= inv_b;
  }
  return grad;
}

}  // namespace hfl::nn
