// Inverted dropout.
//
// During training each activation is zeroed with probability `rate` and the
// survivors are scaled by 1/(1-rate); at evaluation time it is the identity.
// The mask RNG is owned by the layer (seeded via init_params' rng fork) so
// per-worker model instances draw independent, reproducible masks.
#pragma once

#include <optional>

#include "src/nn/layer.h"

namespace hfl::nn {

class Dropout final : public Layer {
 public:
  explicit Dropout(Scalar rate);

  std::string kind() const override { return "dropout"; }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void init_params(Rng& rng) override;

 private:
  Scalar rate_;
  std::optional<Rng> rng_;
  std::vector<Scalar> mask_;
  bool last_train_ = false;
};

}  // namespace hfl::nn
