// Loss functions.
//
// Both losses consume a (B, K) prediction tensor and integer class labels and
// report the mean per-sample loss; `backward` returns d(mean loss)/d(pred).
//
// * SoftmaxCrossEntropy — used by logistic regression, CNN, MiniVGG and
//   MiniResNet (the paper's classification models).
// * MseOnOneHot — mean squared error against the one-hot label encoding,
//   matching the paper's "linear regression" configuration (MSE loss, accuracy
//   read off via row argmax).
#pragma once

#include <memory>
#include <vector>

#include "src/tensor/tensor.h"

namespace hfl::nn {

class Loss {
 public:
  virtual ~Loss() = default;
  virtual std::string kind() const = 0;
  // Mean loss over the batch. Caches what backward needs.
  virtual Scalar forward(const Tensor& pred,
                         const std::vector<std::size_t>& labels) = 0;
  // Gradient of the mean loss with respect to `pred`.
  virtual Tensor backward() = 0;
};

using LossPtr = std::unique_ptr<Loss>;

class SoftmaxCrossEntropy final : public Loss {
 public:
  std::string kind() const override { return "softmax_ce"; }
  Scalar forward(const Tensor& pred,
                 const std::vector<std::size_t>& labels) override;
  Tensor backward() override;

 private:
  Tensor probs_;
  std::vector<std::size_t> labels_;
};

class MseOnOneHot final : public Loss {
 public:
  std::string kind() const override { return "mse_onehot"; }
  Scalar forward(const Tensor& pred,
                 const std::vector<std::size_t>& labels) override;
  Tensor backward() override;

 private:
  Tensor pred_;
  std::vector<std::size_t> labels_;
};

}  // namespace hfl::nn
