// Residual block: y = inner(x) + shortcut(x).
//
// The shortcut is the identity when the inner branch preserves the shape, or
// a caller-supplied projection layer (e.g. 1×1 convolution) when it does not.
// This is the structural core of the MiniResNet model standing in for the
// paper's ResNet18.
#pragma once

#include "src/nn/sequential.h"

namespace hfl::nn {

class Residual final : public Layer {
 public:
  // Identity shortcut.
  explicit Residual(LayerPtr inner);
  // Projection shortcut.
  Residual(LayerPtr inner, LayerPtr shortcut);

  std::string kind() const override { return "residual"; }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Tensor*> params() override;
  std::vector<Tensor*> grads() override;
  void init_params(Rng& rng) override;

 private:
  LayerPtr inner_;
  LayerPtr shortcut_;  // nullptr => identity
};

}  // namespace hfl::nn
