#include "src/nn/dense.h"

#include <cmath>

#include "src/tensor/tensor_ops.h"

namespace hfl::nn {

Dense::Dense(std::size_t in_features, std::size_t out_features,
             InitScheme init)
    : in_(in_features),
      out_(out_features),
      init_(init),
      weight_({out_, in_}),
      bias_({out_}),
      grad_weight_({out_, in_}),
      grad_bias_({out_}) {
  HFL_CHECK(in_ > 0 && out_ > 0, "dense layer dims must be positive");
}

void Dense::init_params(Rng& rng) {
  if (init_ == InitScheme::kZero) {
    weight_.fill(0.0);
    bias_.fill(0.0);
    return;
  }
  const Scalar stddev = init_ == InitScheme::kHe
                            ? std::sqrt(2.0 / static_cast<Scalar>(in_))
                            : std::sqrt(1.0 / static_cast<Scalar>(in_));
  for (auto& v : weight_.data()) v = rng.normal(0.0, stddev);
  bias_.fill(0.0);
}

Tensor Dense::forward(const Tensor& x, bool /*train*/) {
  HFL_CHECK(x.rank() == 2 && x.dim(1) == in_,
            "dense forward expects (B, " + std::to_string(in_) + "), got " +
                x.shape_string());
  input_ = x;
  Tensor out;
  ops::matmul_transpose_b(x, weight_, out);  // (B,in) * (out,in)^T -> (B,out)
  ops::add_row_bias(out, bias_);
  return out;
}

Tensor Dense::backward(const Tensor& grad_out) {
  HFL_CHECK(grad_out.rank() == 2 && grad_out.dim(1) == out_,
            "dense backward shape mismatch");
  // dW += grad_out^T * x : (out,B)*(B,in) -> (out,in)
  Tensor dw;
  ops::matmul_transpose_a(grad_out, input_, dw);
  for (std::size_t i = 0; i < dw.size(); ++i) grad_weight_[i] += dw[i];
  // db += column sums of grad_out
  ops::sum_rows(grad_out, scratch_bias_);
  for (std::size_t i = 0; i < out_; ++i) grad_bias_[i] += scratch_bias_[i];
  // dx = grad_out * W : (B,out)*(out,in) -> (B,in)
  Tensor grad_in;
  ops::matmul(grad_out, weight_, grad_in);
  return grad_in;
}

}  // namespace hfl::nn
