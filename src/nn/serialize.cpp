#include "src/nn/serialize.h"

#include <cstring>
#include <fstream>

namespace hfl::nn {

namespace {
constexpr char kMagic[8] = {'H', 'F', 'L', 'C', 'K', 'P', 'T', '1'};
}  // namespace

void save_params(const Vec& params, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  HFL_CHECK(out.good(), "cannot open checkpoint for writing: " + path);
  out.write(kMagic, sizeof(kMagic));
  const std::uint64_t n = params.size();
  out.write(reinterpret_cast<const char*>(&n), sizeof(n));
  out.write(reinterpret_cast<const char*>(params.data()),
            static_cast<std::streamsize>(n * sizeof(Scalar)));
  HFL_CHECK(out.good(), "checkpoint write failed: " + path);
}

Vec load_params(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  HFL_CHECK(in.good(), "cannot open checkpoint: " + path);
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  HFL_CHECK(in.good() && std::memcmp(magic, kMagic, sizeof(kMagic)) == 0,
            "not a HierAdMo checkpoint: " + path);
  std::uint64_t n = 0;
  in.read(reinterpret_cast<char*>(&n), sizeof(n));
  HFL_CHECK(in.good(), "truncated checkpoint header: " + path);
  Vec params(n);
  in.read(reinterpret_cast<char*>(params.data()),
          static_cast<std::streamsize>(n * sizeof(Scalar)));
  HFL_CHECK(in.good(), "truncated checkpoint payload: " + path);
  return params;
}

void save_model(const Model& model, const std::string& path) {
  save_params(model.get_params(), path);
}

void load_model(Model& model, const std::string& path) {
  const Vec params = load_params(path);
  HFL_CHECK(params.size() == model.num_params(),
            "checkpoint size does not match model: " + path);
  model.set_params(params);
}

}  // namespace hfl::nn
