// Cohort executor: one fused forward/backward pass for a whole cohort of
// workers.
//
// The per-worker path evaluates each worker's mini-batch gradient through its
// own Model instance: set_params copies the flat vector into layer tensors,
// zero_grads clears them, forward/backward run B-row products, get_grads
// copies the result back out. A cohort of N workers pays that staging N times
// and runs N slim GEMM sequences.
//
// CohortModel runs the same computation over concatenated activation
// tensors: worker i's mini-batch occupies the contiguous row segment
// [row_off[i], row_off[i+1]) of every activation, dense/conv products read
// parameters straight from each worker's flat vector (no set_params) and
// accumulate straight into its flat gradient (no get_grads). Conv stages run
// their per-sample im2col products as strided-batch GEMMs with the worker's
// weights as a shared packed operand (src/tensor/gemm_batched.h); dense
// stages run one product per worker in place — cross-worker dense products
// share no operand, so for them the fused win is the eliminated staging, not
// GEMM fusion.
//
// Execution is TILED: the cohort is split into fixed item groups whose
// concatenated activations fit in cache (~2 MB), and each tile runs the full
// forward+backward before the next tile starts. Running stage-by-stage over
// the whole cohort instead would stream every activation tensor (tens of MB
// at 32 workers) through the cache once per stage and lose 20-30% on conv
// nets. Tiles are the parallel unit — one pool task per tile, no intra-stage
// barriers. Tiling is invisible in the FP results: each loss/gradient is
// computed purely from that item's own rows, so any grouping (and any thread
// count) produces bit-identical outputs.
//
// The plan also exploits two facts the generic per-worker layer chain
// cannot see:
//   * Dead input gradients — the backward pass stops at the model's FIRST
//     parametric stage: every stage before it is parameter-free, so that
//     stage's dX has no consumer. For a logistic/MLP front layer this removes
//     the widest backward GEMM outright; for a conv front layer it removes
//     the dCol product and the col2im scatter.
//   * Direct input — when everything before the first parametric stage is a
//     Flatten (a pure reshape), the executor never materializes the
//     concatenated input tensor: dense/conv products read each item's own
//     mini-batch tensor in place, skipping the concat memcpy and the leading
//     flatten forward/backward. Values and row order are identical either
//     way, so this, too, is invisible in the FP results.
//
// FP contract: with `mixed == false`, every item's loss and gradient are
// bit-identical to Model::loss_and_gradient on the same (params, batch), for
// any thread count — work is partitioned by item, and items are mutually
// independent (asserted by tests/batched_parity_test.cpp).
// `mixed == true` switches dense/conv products to the FP32-compute /
// FP64-accumulate kernels (src/tensor/gemm_mixed.h): ≤1e-6 relative error,
// NOT bit-identical, opt-in via RunConfig::mixed_precision.
//
// `create` returns nullptr for architectures or losses the executor does not
// support (Residual blocks, nested Sequentials, unknown layer kinds); the
// engine then keeps the per-worker path for the whole run.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "src/nn/model.h"

namespace hfl {

class ThreadPool;  // src/common/thread_pool.h

}  // namespace hfl

namespace hfl::nn {

// One worker's slot in a cohort pass. `params` and `grad` are flat vectors of
// the model's num_params(); `grad` is overwritten (not accumulated). `x`/`y`
// are the worker's drawn mini-batch; batch sizes may differ between items.
struct CohortItem {
  const Scalar* params = nullptr;
  const Tensor* x = nullptr;
  const std::vector<std::size_t>* y = nullptr;
  Scalar* grad = nullptr;
  Scalar loss = 0;  // out: mean batch loss
  // Zero-copy alternative to `x`: y->size() row pointers of sample_elems
  // scalars each (dataset rows drawn by Batcher::next_rows). Only valid when
  // the model reports supports_row_gather() and `mixed` is off; the dense
  // products then read the rows in place through the row-gathered GEMM entry
  // points — bit-identical to the gathered tensor (cohort.cpp).
  const Scalar* const* x_rows = nullptr;
};

class CohortModel {
 public:
  // Compiles an execution plan for the factory's architecture, or returns
  // nullptr if any layer/loss is unsupported (caller falls back per worker).
  static std::unique_ptr<CohortModel> create(const ModelFactory& factory);

  ~CohortModel();

  std::size_t num_params() const;

  // True when items may carry `x_rows` instead of a gathered `x`: the plan
  // is direct-input (flatten-only prefix) and its first parametric stage is
  // dense, so every read of the input consumes flat sample rows.
  bool supports_row_gather() const;

  // Computes loss + flat gradient for every item. `pool` may be null
  // (serial). See the FP contract above.
  void run(std::span<CohortItem> items, ThreadPool* pool, bool mixed);

 private:
  struct Stage;
  explicit CohortModel(std::unique_ptr<Model> probe);

  // Full forward+backward for items [ilo, ihi) using tile slot `t`'s probe
  // model (for stateless layers, which cache forward state) and activation
  // scratch. Runs on exactly one thread.
  void run_tile(std::size_t t, std::size_t ilo, std::size_t ihi,
                std::span<CohortItem> items, bool mixed);

  // Stage helpers. `in == nullptr` selects direct-input mode (read each
  // item's own mini-batch tensor in place); `gin == nullptr` skips the dead
  // input-gradient computation at the first parametric stage.
  void dense_forward(const Stage& st, const Tensor* in, Tensor& out,
                     std::span<CohortItem> items, std::size_t ilo,
                     std::size_t ihi, bool mixed);
  void dense_backward(const Stage& st, const Tensor* in, const Tensor& gout,
                      Tensor* gin, std::span<CohortItem> items,
                      std::size_t ilo, std::size_t ihi, bool mixed);
  void conv_forward(const Stage& st, const Tensor* in, Tensor& out,
                    std::span<CohortItem> items, std::size_t ilo,
                    std::size_t ihi, bool mixed);
  void conv_backward(const Stage& st, const Tensor* in, const Tensor& gout,
                     Tensor* gin, std::span<CohortItem> items, std::size_t ilo,
                     std::size_t ihi, bool mixed);
  void loss_stage(const Tensor& pred, Tensor& grad,
                  std::span<CohortItem> items, std::size_t ilo,
                  std::size_t ihi);

  std::size_t batch_of(std::size_t i) const {
    return row_off_[i + 1] - row_off_[i];
  }

  // The probe model anchors the plan (geometry, param offsets, loss kind);
  // tile slots get their own probe clones because stateless layers cache
  // forward state for backward.
  std::unique_ptr<Model> probe_;
  ModelFactory factory_;
  std::vector<Stage> stages_;
  bool softmax_loss_ = false;
  std::size_t first_param_ = 0;    // backward stops here (dead dX above)
  bool direct_input_ = false;      // read items' tensors in place
  std::size_t sample_elems_ = 1;   // elements per sample (flattened)
  std::size_t max_row_elems_ = 1;  // widest activation, elems per sample row

  // Per-run state. row_off_ holds global prefix sums of item batch sizes;
  // tile slots (probe + activation scratch) are reused across runs.
  std::vector<std::size_t> row_off_;
  std::vector<std::unique_ptr<Model>> tile_probes_;
  std::vector<std::vector<Tensor>> tile_acts_;
};

}  // namespace hfl::nn
