// 2-D convolution over NCHW tensors.
//
// Direct (non-im2col) convolution with stride 1 and symmetric zero padding;
// the simulated models are small enough that a cache-friendly direct loop is
// fast and keeps the backward pass transparent. Weight layout is
// (out_ch, in_ch, kh, kw), one bias per output channel.
#pragma once

#include "src/nn/layer.h"

namespace hfl::nn {

class Conv2d final : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t padding);

  std::string kind() const override { return "conv2d"; }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&grad_weight_, &grad_bias_}; }
  void init_params(Rng& rng) override;

 private:
  // Fills col_ with the im2col expansion of one input sample.
  void im2col(const Scalar* xplane_base, std::size_t h, std::size_t w,
              std::size_t oh_count, std::size_t ow_count);

  std::size_t in_ch_, out_ch_, k_, pad_;
  Tensor weight_, bias_;
  Tensor grad_weight_, grad_bias_;
  Tensor input_;
  Vec col_, dcol_;  // per-sample im2col scratch
};

}  // namespace hfl::nn
