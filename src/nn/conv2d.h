// 2-D convolution over NCHW tensors.
//
// Stride-1 convolution with symmetric zero padding, lowered to GEMM: the
// minibatch is expanded into an im2col matrix col(r, c) with r = (ic, kh, kw)
// and c = (b, oh, ow), and forward/backward become wide matrix products
// against the (out_ch × in_ch·k²) weight matrix. The expansion is processed
// in cache-sized multi-sample chunks so the col block is consumed by the GEMM
// while still resident, and each chunk's per-sample products run as ONE
// strided-batch GEMM (src/tensor/gemm_batched.h) with the weight operand
// declared shared — its panels are packed once per cache tile instead of once
// per sample. Weight layout is (out_ch, in_ch, kh, kw), one bias per output
// channel.
//
// The heavy lifting lives in static `forward_span` / `backward_span` helpers
// that take raw parameter/gradient pointers and a sample range, so the cohort
// executor (src/nn/cohort.cpp) can run many workers' convolutions over one
// concatenated activation tensor without staging parameters through layer
// tensors. The layer methods call the same spans — one code path, one FP
// behaviour. FP64 span results are bit-identical to the pre-batched
// per-sample ops::gemm loops (the gemm_batched contract); `mixed` switches
// the products to the FP32-compute/FP64-accumulate kernels.
//
// The im2col/dcol scratch is thread-local and shared by every Conv2d
// instance on a thread, so peak scratch memory scales with the thread count
// and the chunk size, not with the simulated fleet size.
#pragma once

#include "src/nn/layer.h"

namespace hfl::nn {

class Conv2d final : public Layer {
 public:
  // Geometry bundle for the static span helpers.
  struct Spec {
    std::size_t in_ch = 0, out_ch = 0, k = 0, pad = 0;
    std::size_t kk() const { return in_ch * k * k; }
  };

  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t padding);

  std::string kind() const override { return "conv2d"; }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&grad_weight_, &grad_bias_}; }
  void init_params(Rng& rng) override;

  std::size_t in_channels() const { return in_ch_; }
  std::size_t out_channels() const { return out_ch_; }
  std::size_t kernel() const { return k_; }
  std::size_t padding() const { return pad_; }

  // Forward for samples [b0, b0+bn) of `x` (NCHW tensor). `out0` points at
  // the (out_ch, OH·OW) output plane of sample b0; consecutive samples'
  // planes follow contiguously (the cohort executor passes an offset into a
  // concatenated tensor whose batch indexing differs from x's). `weight` is
  // (out_ch, in_ch·k²) row-major, `bias` is (out_ch).
  static void forward_span(const Spec& s, const Scalar* weight,
                           const Scalar* bias, const Tensor& x, std::size_t b0,
                           std::size_t bn, Scalar* out0, bool mixed);

  // Backward for samples [b0, b0+bn): accumulates into grad_weight /
  // grad_bias (in sample-index order — callers pass zeroed or partially
  // accumulated buffers) and scatter-adds dX into `grad_in0`, which points at
  // sample b0's pre-zeroed (in_ch, H·W) input-gradient plane. `gout0` points
  // at sample b0's upstream-gradient plane. Pass grad_in0 == nullptr to skip
  // the dX computation entirely (dCol product + col2im) — the cohort
  // executor does this for the model's first parametric layer, whose input
  // gradient has no consumer.
  static void backward_span(const Spec& s, const Scalar* weight,
                            const Tensor& x, std::size_t b0, std::size_t bn,
                            const Scalar* gout0, Scalar* grad_weight,
                            Scalar* grad_bias, Scalar* grad_in0, bool mixed);

 private:
  Spec spec() const { return {in_ch_, out_ch_, k_, pad_}; }

  std::size_t in_ch_, out_ch_, k_, pad_;
  Tensor weight_, bias_;
  Tensor grad_weight_, grad_bias_;
  Tensor input_;
};

}  // namespace hfl::nn
