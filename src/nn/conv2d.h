// 2-D convolution over NCHW tensors.
//
// Stride-1 convolution with symmetric zero padding, lowered to GEMM: the
// minibatch is expanded into an im2col matrix col(r, c) with r = (ic, kh, kw)
// and c = (b, oh, ow), and forward/backward become wide matrix products
// against the (out_ch × in_ch·k²) weight matrix instead of B skinny
// per-sample ones. The expansion is processed in cache-sized multi-sample
// chunks so the col block is consumed by the GEMM while still resident —
// a whole-minibatch buffer would be re-read from DRAM. Weight layout is
// (out_ch, in_ch, kh, kw), one bias per output channel.
//
// The im2col/dcol scratch is thread-local and shared by every Conv2d
// instance on a thread, so peak scratch memory scales with the thread count
// and the chunk size, not with the simulated fleet size.
#pragma once

#include "src/nn/layer.h"

namespace hfl::nn {

class Conv2d final : public Layer {
 public:
  Conv2d(std::size_t in_channels, std::size_t out_channels,
         std::size_t kernel, std::size_t padding);

  std::string kind() const override { return "conv2d"; }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Tensor*> params() override { return {&weight_, &bias_}; }
  std::vector<Tensor*> grads() override { return {&grad_weight_, &grad_bias_}; }
  void init_params(Rng& rng) override;

 private:
  // Fills `col` (shape in_ch·k² × bn·OH·OW) with the im2col expansion of
  // samples [b0, b0+bn) of `x`.
  void im2col(const Tensor& x, std::size_t b0, std::size_t bn,
              std::size_t oh_count, std::size_t ow_count, Vec& col) const;

  // How many samples fit the cache-resident im2col chunk budget.
  std::size_t samples_per_chunk(std::size_t cols) const;

  std::size_t in_ch_, out_ch_, k_, pad_;
  Tensor weight_, bias_;
  Tensor grad_weight_, grad_bias_;
  Tensor input_;
};

}  // namespace hfl::nn
