#include "src/nn/models.h"

#include <numeric>

#include "src/nn/activations.h"
#include "src/nn/conv2d.h"
#include "src/nn/dense.h"
#include "src/nn/flatten.h"
#include "src/nn/pool2d.h"
#include "src/nn/residual.h"

namespace hfl::nn {

namespace {

std::size_t flat_size(const std::vector<std::size_t>& shape) {
  return std::accumulate(shape.begin(), shape.end(), std::size_t{1},
                         std::multiplies<>());
}

struct ImageDims {
  std::size_t c, h, w;
};

ImageDims image_dims(const std::vector<std::size_t>& sample_shape,
                     const char* model) {
  HFL_CHECK(sample_shape.size() == 3,
            std::string(model) + " expects a {C, H, W} sample shape");
  return {sample_shape[0], sample_shape[1], sample_shape[2]};
}

}  // namespace

std::string to_string(ModelKind kind) {
  switch (kind) {
    case ModelKind::kLinearRegression: return "linear";
    case ModelKind::kLogisticRegression: return "logistic";
    case ModelKind::kMlp: return "mlp";
    case ModelKind::kCnn: return "cnn";
    case ModelKind::kMiniVgg: return "minivgg";
    case ModelKind::kMiniResNet: return "miniresnet";
  }
  return "?";
}

ModelFactory linear_regression(std::vector<std::size_t> sample_shape,
                               std::size_t num_classes) {
  const std::size_t in = flat_size(sample_shape);
  return [sample_shape, in, num_classes] {
    auto net = std::make_unique<Sequential>();
    net->emplace<Flatten>();
    net->emplace<Dense>(in, num_classes, InitScheme::kZero);
    return std::make_unique<Model>(std::move(net),
                                   std::make_unique<MseOnOneHot>(),
                                   sample_shape);
  };
}

ModelFactory logistic_regression(std::vector<std::size_t> sample_shape,
                                 std::size_t num_classes) {
  const std::size_t in = flat_size(sample_shape);
  return [sample_shape, in, num_classes] {
    auto net = std::make_unique<Sequential>();
    net->emplace<Flatten>();
    net->emplace<Dense>(in, num_classes, InitScheme::kZero);
    return std::make_unique<Model>(std::move(net),
                                   std::make_unique<SoftmaxCrossEntropy>(),
                                   sample_shape);
  };
}

ModelFactory mlp(std::vector<std::size_t> sample_shape, std::size_t hidden,
                 std::size_t num_classes) {
  const std::size_t in = flat_size(sample_shape);
  return [sample_shape, in, hidden, num_classes] {
    auto net = std::make_unique<Sequential>();
    net->emplace<Flatten>();
    net->emplace<Dense>(in, hidden, InitScheme::kHe);
    net->emplace<ReLU>();
    net->emplace<Dense>(hidden, num_classes, InitScheme::kXavier);
    return std::make_unique<Model>(std::move(net),
                                   std::make_unique<SoftmaxCrossEntropy>(),
                                   sample_shape);
  };
}

ModelFactory cnn(std::vector<std::size_t> sample_shape,
                 std::size_t num_classes) {
  const ImageDims d = image_dims(sample_shape, "cnn");
  HFL_CHECK(d.h % 4 == 0 && d.w % 4 == 0,
            "cnn needs H and W divisible by 4");
  return [sample_shape, d, num_classes] {
    auto net = std::make_unique<Sequential>();
    net->emplace<Conv2d>(d.c, 8, 5, 2);
    net->emplace<ReLU>();
    net->emplace<MaxPool2d>(2);
    net->emplace<Conv2d>(8, 16, 5, 2);
    net->emplace<ReLU>();
    net->emplace<MaxPool2d>(2);
    net->emplace<Flatten>();
    net->emplace<Dense>(16 * (d.h / 4) * (d.w / 4), num_classes,
                        InitScheme::kXavier);
    return std::make_unique<Model>(std::move(net),
                                   std::make_unique<SoftmaxCrossEntropy>(),
                                   sample_shape);
  };
}

ModelFactory mini_vgg(std::vector<std::size_t> sample_shape,
                      std::size_t num_classes) {
  const ImageDims d = image_dims(sample_shape, "mini_vgg");
  HFL_CHECK(d.h % 8 == 0 && d.w % 8 == 0,
            "mini_vgg needs H and W divisible by 8");
  return [sample_shape, d, num_classes] {
    auto net = std::make_unique<Sequential>();
    // Block 1 (channel widths scaled for single-core simulation; DESIGN.md §3)
    net->emplace<Conv2d>(d.c, 8, 3, 1);
    net->emplace<ReLU>();
    net->emplace<Conv2d>(8, 8, 3, 1);
    net->emplace<ReLU>();
    net->emplace<MaxPool2d>(2);
    // Block 2
    net->emplace<Conv2d>(8, 16, 3, 1);
    net->emplace<ReLU>();
    net->emplace<Conv2d>(16, 16, 3, 1);
    net->emplace<ReLU>();
    net->emplace<MaxPool2d>(2);
    // Block 3
    net->emplace<Conv2d>(16, 32, 3, 1);
    net->emplace<ReLU>();
    net->emplace<MaxPool2d>(2);
    // Classifier
    net->emplace<Flatten>();
    net->emplace<Dense>(32 * (d.h / 8) * (d.w / 8), 64, InitScheme::kHe);
    net->emplace<ReLU>();
    net->emplace<Dense>(64, num_classes, InitScheme::kXavier);
    return std::make_unique<Model>(std::move(net),
                                   std::make_unique<SoftmaxCrossEntropy>(),
                                   sample_shape);
  };
}

ModelFactory mini_resnet(std::vector<std::size_t> sample_shape,
                         std::size_t num_classes) {
  const ImageDims d = image_dims(sample_shape, "mini_resnet");
  HFL_CHECK(d.h == d.w, "mini_resnet needs a square input");
  HFL_CHECK(d.h % 4 == 0, "mini_resnet needs H divisible by 4");
  return [sample_shape, d, num_classes] {
    auto net = std::make_unique<Sequential>();
    // Stem (channel widths scaled for single-core simulation; DESIGN.md §3)
    net->emplace<Conv2d>(d.c, 8, 3, 1);
    net->emplace<ReLU>();
    // Stage 1: identity residual at 8 channels.
    {
      auto inner = std::make_unique<Sequential>();
      inner->emplace<Conv2d>(8, 8, 3, 1);
      inner->emplace<ReLU>();
      inner->emplace<Conv2d>(8, 8, 3, 1);
      net->add(std::make_unique<Residual>(std::move(inner)));
    }
    net->emplace<ReLU>();
    net->emplace<MaxPool2d>(2);
    // Stage 2: projection residual 8 -> 16 channels.
    {
      auto inner = std::make_unique<Sequential>();
      inner->emplace<Conv2d>(8, 16, 3, 1);
      inner->emplace<ReLU>();
      inner->emplace<Conv2d>(16, 16, 3, 1);
      auto shortcut = std::make_unique<Conv2d>(8, 16, 1, 0);
      net->add(std::make_unique<Residual>(std::move(inner),
                                          std::move(shortcut)));
    }
    net->emplace<ReLU>();
    net->emplace<MaxPool2d>(2);
    // Global average pool + classifier.
    net->emplace<AvgPool2d>(d.h / 4);
    net->emplace<Flatten>();
    net->emplace<Dense>(16, num_classes, InitScheme::kXavier);
    return std::make_unique<Model>(std::move(net),
                                   std::make_unique<SoftmaxCrossEntropy>(),
                                   sample_shape);
  };
}

ModelFactory make_model_factory(ModelKind kind,
                                std::vector<std::size_t> sample_shape,
                                std::size_t num_classes) {
  switch (kind) {
    case ModelKind::kLinearRegression:
      return linear_regression(std::move(sample_shape), num_classes);
    case ModelKind::kLogisticRegression:
      return logistic_regression(std::move(sample_shape), num_classes);
    case ModelKind::kMlp:
      return mlp(std::move(sample_shape), 64, num_classes);
    case ModelKind::kCnn:
      return cnn(std::move(sample_shape), num_classes);
    case ModelKind::kMiniVgg:
      return mini_vgg(std::move(sample_shape), num_classes);
    case ModelKind::kMiniResNet:
      return mini_resnet(std::move(sample_shape), num_classes);
  }
  throw Error("unknown model kind");
}

}  // namespace hfl::nn
