#include "src/nn/gradcheck.h"

#include <algorithm>
#include <cmath>

namespace hfl::nn {

GradCheckResult check_gradients(Model& model, const Vec& params,
                                const Tensor& x,
                                const std::vector<std::size_t>& labels,
                                Scalar step, std::size_t max_coords) {
  Vec analytic;
  model.loss_and_gradient(params, x, labels, analytic);

  const std::size_t n = params.size();
  const std::size_t stride = std::max<std::size_t>(1, n / max_coords);

  GradCheckResult result;
  Vec perturbed = params;
  for (std::size_t i = 0; i < n; i += stride) {
    // Numeric probes use eval-mode forwards; models under grad-check must be
    // free of train-only stochastic layers (dropout), which the tests honour.
    perturbed[i] = params[i] + step;
    model.set_params(perturbed);
    const Scalar loss_plus = model.evaluate(x, labels).loss;

    perturbed[i] = params[i] - step;
    model.set_params(perturbed);
    const Scalar loss_minus = model.evaluate(x, labels).loss;
    perturbed[i] = params[i];

    const Scalar numeric = (loss_plus - loss_minus) / (2 * step);
    const Scalar abs_err = std::abs(numeric - analytic[i]);
    const Scalar denom =
        std::max({std::abs(numeric), std::abs(analytic[i]), Scalar{1e-8}});
    result.max_abs_error = std::max(result.max_abs_error, abs_err);
    result.max_rel_error = std::max(result.max_rel_error, abs_err / denom);
    ++result.checked;
  }
  return result;
}

}  // namespace hfl::nn
