#include "src/nn/sequential.h"

namespace hfl::nn {

void Sequential::add(LayerPtr layer) {
  HFL_CHECK(layer != nullptr, "cannot add null layer");
  layers_.push_back(std::move(layer));
}

Layer& Sequential::layer(std::size_t i) {
  HFL_CHECK(i < layers_.size(), "layer index out of range");
  return *layers_[i];
}

Tensor Sequential::forward(const Tensor& x, bool train) {
  Tensor cur = x;
  for (auto& l : layers_) cur = l->forward(cur, train);
  return cur;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor cur = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    cur = (*it)->backward(cur);
  }
  return cur;
}

std::vector<Tensor*> Sequential::params() {
  std::vector<Tensor*> out;
  for (auto& l : layers_) {
    for (Tensor* p : l->params()) out.push_back(p);
  }
  return out;
}

std::vector<Tensor*> Sequential::grads() {
  std::vector<Tensor*> out;
  for (auto& l : layers_) {
    for (Tensor* g : l->grads()) out.push_back(g);
  }
  return out;
}

void Sequential::init_params(Rng& rng) {
  for (auto& l : layers_) l->init_params(rng);
}

}  // namespace hfl::nn
