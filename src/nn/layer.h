// Layer interface for the manual-backprop neural-network substrate.
//
// Each layer is a stateful node: `forward` caches whatever it needs for the
// matching `backward` call, and `backward` both returns the gradient with
// respect to the layer input and accumulates gradients into the layer's
// parameter-gradient tensors. Layers expose their parameters and gradients as
// parallel lists of tensors so `Model` can flatten them into the single `Vec`
// that the federated-learning algorithms operate on.
//
// Thread-safety: a layer instance is owned by exactly one simulated worker;
// no cross-thread sharing.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/tensor/tensor.h"

namespace hfl::nn {

class Layer {
 public:
  virtual ~Layer() = default;

  // Human-readable layer kind ("dense", "conv2d", ...), for diagnostics.
  virtual std::string kind() const = 0;

  // Forward pass. `train` enables training-only behaviour (dropout masks).
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  // Backward pass for the most recent forward. Accumulates parameter
  // gradients and returns d(loss)/d(input).
  virtual Tensor backward(const Tensor& grad_out) = 0;

  // Parameter tensors (empty for stateless layers). The grads list is
  // index-aligned with params.
  virtual std::vector<Tensor*> params() { return {}; }
  virtual std::vector<Tensor*> grads() { return {}; }

  // (Re-)initialize parameters. Stateless layers ignore this.
  virtual void init_params(Rng& rng) { (void)rng; }

  // Set all parameter gradients to zero.
  void zero_grads();

  // Total number of scalar parameters.
  std::size_t num_params();
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace hfl::nn
