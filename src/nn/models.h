// Model zoo: the five model families of the paper's evaluation (Table II).
//
//  * linear regression  — Flatten + Dense, MSE-on-one-hot loss (convex)
//  * logistic regression — Flatten + Dense, softmax cross-entropy (convex)
//  * CNN — the classic two-conv/two-pool structure of [29]
//  * MiniVGG — VGG-topology conv blocks standing in for VGG16 (see DESIGN.md
//    §3 on scaling)
//  * MiniResNet — identity/projection residual blocks standing in for
//    ResNet18
//  * MLP — an extra small non-convex model used by tests and examples
//
// Every builder returns a `ModelFactory` so each simulated worker can own an
// independent instance of the architecture.
#pragma once

#include <string>

#include "src/nn/model.h"

namespace hfl::nn {

enum class ModelKind {
  kLinearRegression,
  kLogisticRegression,
  kMlp,
  kCnn,
  kMiniVgg,
  kMiniResNet,
};

std::string to_string(ModelKind kind);

// sample_shape excludes the batch dimension: {C, H, W} for images, {F} for
// flat feature vectors. Constraints: kCnn needs H and W divisible by 4;
// kMiniVgg by 8; kMiniResNet needs a square input divisible by 4.
ModelFactory make_model_factory(ModelKind kind,
                                std::vector<std::size_t> sample_shape,
                                std::size_t num_classes);

// Individual builders (same contracts as above).
ModelFactory linear_regression(std::vector<std::size_t> sample_shape,
                               std::size_t num_classes);
ModelFactory logistic_regression(std::vector<std::size_t> sample_shape,
                                 std::size_t num_classes);
ModelFactory mlp(std::vector<std::size_t> sample_shape, std::size_t hidden,
                 std::size_t num_classes);
ModelFactory cnn(std::vector<std::size_t> sample_shape,
                 std::size_t num_classes);
ModelFactory mini_vgg(std::vector<std::size_t> sample_shape,
                      std::size_t num_classes);
ModelFactory mini_resnet(std::vector<std::size_t> sample_shape,
                         std::size_t num_classes);

}  // namespace hfl::nn
