// 2-D pooling layers over NCHW tensors (kernel == stride, no padding).
//
// MaxPool2d remembers the winning index per window for the backward pass;
// AvgPool2d (used by the MiniResNet head as global average pooling when the
// window covers the whole plane) spreads the gradient uniformly.
#pragma once

#include "src/nn/layer.h"

namespace hfl::nn {

class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::size_t window);

  std::string kind() const override { return "maxpool2d"; }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  std::size_t window_;
  std::vector<std::size_t> argmax_;  // flat input index per output element
  std::vector<std::size_t> in_shape_;
};

class AvgPool2d final : public Layer {
 public:
  explicit AvgPool2d(std::size_t window);

  std::string kind() const override { return "avgpool2d"; }
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;

 private:
  std::size_t window_;
  std::vector<std::size_t> in_shape_;
};

}  // namespace hfl::nn
