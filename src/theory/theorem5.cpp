#include "src/theory/theorem5.h"

namespace hfl::theory {

Scalar clamp_gamma_edge(Scalar cos_theta, Scalar clamp_max) {
  if (cos_theta <= 0) return 0;
  if (cos_theta >= clamp_max) return clamp_max;
  return cos_theta;
}

Moments adaptive_gamma_moments() {
  // γℓ = max(0, cosθ), cosθ ~ U(−1, 1):
  //   E = ∫₀¹ c/2 dc = 1/4;  E[γ²] = ∫₀¹ c²/2 dc = 1/6;
  //   D = 1/6 − 1/16 = 5/48.
  return {0.25, 5.0 / 48.0};
}

Moments fixed_gamma_moments() { return {0.5, 1.0 / 12.0}; }

Moments simulate_adaptive_gamma(Rng& rng, std::size_t samples,
                                Scalar clamp_max) {
  Scalar sum = 0, sum_sq = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const Scalar g = clamp_gamma_edge(rng.uniform(-1.0, 1.0), clamp_max);
    sum += g;
    sum_sq += g * g;
  }
  const Scalar mean = sum / static_cast<Scalar>(samples);
  return {mean, sum_sq / static_cast<Scalar>(samples) - mean * mean};
}

Theorem5Comparison compare_expected_s(const BoundParams& params,
                                      std::size_t tau) {
  // s(τ) = γℓ · τηρ(γμ + γ + 1) is linear in γℓ, so E[s] = E[γℓ] · s(τ)/γℓ.
  BoundParams unit = params;
  unit.gamma_edge = 1.0 - 1e-12;  // s at γℓ = 1
  const Scalar s_unit = s_gap(unit, tau);
  Theorem5Comparison out;
  out.s_adaptive = adaptive_gamma_moments().mean * s_unit;
  out.s_fixed = fixed_gamma_moments().mean * s_unit;
  out.adaptive_tighter = out.s_adaptive < out.s_fixed;
  return out;
}

}  // namespace hfl::theory
