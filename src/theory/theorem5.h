// Theorem 5 (Appendix E): expected tightness of the adaptive bound.
//
// Under cosθ_{k,ℓ} ~ U(−1, 1), the adapted factor γℓ = clamp(cosθ) of
// eq. (7) has E[γℓ] = 1/4 and D[γℓ] = 5/48, whereas a fixed factor drawn
// uniformly from (0, 1) has E = 1/2 and D = 1/12. Since s(τ) (Theorem 2) is
// linear in γℓ, the adaptive variant's expected bound is tighter. This
// module provides the analytic moments, the clamp itself, and a Monte-Carlo
// verification harness used by tests and bench_theory_bounds.
#pragma once

#include <cstddef>

#include "src/common/rng.h"
#include "src/theory/bounds.h"

namespace hfl::theory {

// Eq. (7) clamp. `clamp_max` defaults to the paper's 0.99.
Scalar clamp_gamma_edge(Scalar cos_theta, Scalar clamp_max = 0.99);

// Analytic moments of γℓ under cosθ ~ U(−1, 1) with the idealized clamp
// (clamp_max → 1, as used in the paper's Appendix E): E = 1/4, D = 5/48.
struct Moments {
  Scalar mean = 0;
  Scalar variance = 0;
};
Moments adaptive_gamma_moments();          // E = 1/4, D = 5/48
Moments fixed_gamma_moments();             // E = 1/2, D = 1/12 (γ̃ ~ U(0,1))

// Monte-Carlo estimate of the γℓ moments under cosθ ~ U(−1, 1) including
// the real 0.99 clamp.
Moments simulate_adaptive_gamma(Rng& rng, std::size_t samples,
                                Scalar clamp_max = 0.99);

// Expected s(τ) (Theorem 2) under adaptive vs fixed γℓ; the adaptive value
// is strictly smaller, which is the mechanism behind Theorem 5.
struct Theorem5Comparison {
  Scalar s_adaptive = 0;  // E[s(τ)] with γℓ adapted
  Scalar s_fixed = 0;     // E[s(τ)] with γ̃ℓ ~ U(0,1)
  bool adaptive_tighter = false;
};
Theorem5Comparison compare_expected_s(const BoundParams& params,
                                      std::size_t tau);

}  // namespace hfl::theory
