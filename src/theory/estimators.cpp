#include "src/theory/estimators.h"

#include <algorithm>

#include "src/common/vec_ops.h"

namespace hfl::theory {

namespace {

// Batch gradient of worker w's local loss at `params`, using (up to)
// batch_size deterministic samples from its partition.
Scalar worker_gradient(nn::Model& model, const data::Dataset& train,
                       const std::vector<std::size_t>& part,
                       std::size_t batch_size, const Vec& params, Vec& grad) {
  const std::size_t n = std::min(batch_size, part.size());
  std::vector<std::size_t> idx(part.begin(), part.begin() + n);
  Tensor x;
  std::vector<std::size_t> y;
  train.gather(idx, x, y);
  return model.loss_and_gradient(params, x, y, grad);
}

}  // namespace

AssumptionEstimates estimate_assumptions(const nn::ModelFactory& factory,
                                         const data::Dataset& train,
                                         const data::Partition& partition,
                                         const fl::Topology& topo,
                                         const EstimatorOptions& options) {
  HFL_CHECK(partition.size() == topo.num_workers(),
            "partition/topology mismatch");
  HFL_CHECK(options.probe_points >= 2, "need at least two probe points");

  Rng rng(options.seed);
  auto model = factory();
  model->init_params(rng);
  const Vec x0 = model->get_params();
  const std::size_t dim = x0.size();

  // Data weights.
  std::size_t total = 0;
  std::vector<std::size_t> edge_total(topo.num_edges(), 0);
  for (std::size_t w = 0; w < partition.size(); ++w) {
    total += partition[w].size();
    edge_total[topo.edge_of_worker(w)] += partition[w].size();
  }

  AssumptionEstimates est;
  est.delta_edges.assign(topo.num_edges(), 0.0);
  est.edge_weights.resize(topo.num_edges());
  for (std::size_t e = 0; e < topo.num_edges(); ++e) {
    est.edge_weights[e] = static_cast<Scalar>(edge_total[e]) /
                          static_cast<Scalar>(total);
  }

  // Probe points: x0 plus random perturbations.
  std::vector<Vec> points(options.probe_points, x0);
  for (std::size_t p = 1; p < points.size(); ++p) {
    for (auto& v : points[p]) v += rng.normal(0.0, options.point_spread);
  }

  std::vector<Vec> worker_grads(topo.num_workers(), Vec(dim, 0.0));
  std::vector<Vec> global_grads(points.size());  // per probe point
  Vec edge_grad(dim, 0.0), diff(dim, 0.0);

  for (std::size_t p = 0; p < points.size(); ++p) {
    // Per-worker gradients at the shared point.
    for (std::size_t w = 0; w < topo.num_workers(); ++w) {
      worker_gradient(*model, train, partition[w], options.batch_size,
                      points[p], worker_grads[w]);
      est.rho = std::max(est.rho, vec::norm(worker_grads[w]));
    }
    // Edge-level diversity δℓ = Σ_i (D_i/Dℓ) ||g_i − gℓ||.
    global_grads[p].assign(dim, 0.0);
    for (std::size_t e = 0; e < topo.num_edges(); ++e) {
      edge_grad.assign(dim, 0.0);
      for (const std::size_t w : topo.workers_of_edge(e)) {
        const Scalar wgt = static_cast<Scalar>(partition[w].size()) /
                           static_cast<Scalar>(edge_total[e]);
        vec::axpy(wgt, worker_grads[w], edge_grad);
      }
      Scalar d_edge = 0;
      for (const std::size_t w : topo.workers_of_edge(e)) {
        const Scalar wgt = static_cast<Scalar>(partition[w].size()) /
                           static_cast<Scalar>(edge_total[e]);
        vec::linear_combination(1.0, worker_grads[w], -1.0, edge_grad, diff);
        d_edge += wgt * vec::norm(diff);
      }
      est.delta_edges[e] = std::max(est.delta_edges[e], d_edge);
      vec::axpy(est.edge_weights[e], edge_grad, global_grads[p]);
    }
  }

  // δ — weighted average of the per-edge levels.
  for (std::size_t e = 0; e < topo.num_edges(); ++e) {
    est.delta_global += est.edge_weights[e] * est.delta_edges[e];
  }

  // β — max gradient-difference ratio over probe-point pairs, using the
  // global gradient (F is β-smooth whenever every F_{i,ℓ} is).
  for (std::size_t a = 0; a < points.size(); ++a) {
    for (std::size_t b = a + 1; b < points.size(); ++b) {
      const Scalar dx = vec::distance(points[a], points[b]);
      if (dx < 1e-12) continue;
      vec::linear_combination(1.0, global_grads[a], -1.0, global_grads[b],
                              diff);
      est.beta = std::max(est.beta, vec::norm(diff) / dx);
    }
  }
  return est;
}

}  // namespace hfl::theory
