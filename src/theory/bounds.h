// Convergence-bound machinery (Section IV and Appendices A–D of the paper).
//
// Implements the constants A, B, I, J, U, V (Appendix A-B), the gap
// functions
//   h(x, δ)        — Theorem 1: worker-vs-edge virtual update gap,
//   s(τ)           — Theorem 2: edge momentum update gap,
//   j(τ, π, δℓ, δ) — Theorem 4 eq. (23): the combined per-cloud-interval gap,
// the α constant of eq. (37), and the Theorem 4 bound
//   F(x_T) − F(x*) ≤ 1 / (T (ωασ² − ρ j /(τπε²))).
// All functions are pure; parameters mirror the paper's symbols.
#pragma once

#include <cstddef>
#include <vector>

#include "src/common/types.h"

namespace hfl::theory {

// Problem/algorithm parameters the bound depends on.
struct BoundParams {
  Scalar eta = 0.01;   // η — learning rate
  Scalar beta = 1.0;   // β — smoothness (Assumption 2)
  Scalar rho = 1.0;    // ρ — Lipschitz constant (Assumption 1)
  Scalar gamma = 0.5;  // γ — worker momentum factor, in (0, 1)
  Scalar gamma_edge = 0.5;  // γℓ — edge momentum factor, in (0, 1)
  Scalar mu = 1.0;     // μ — momentum/gradient norm ratio bound, eq. (30)
};

// Appendix A constants. Requires 0 < gamma < 1 and eta, beta > 0.
struct MomentumConstants {
  Scalar A = 0, B = 0, I = 0, J = 0, U = 0, V = 0;
};
MomentumConstants momentum_constants(const BoundParams& p);

// Theorem 1 gap h(x, δ) (eq. (17)); x is the iteration offset inside the
// edge interval, δ the relevant gradient-diversity level. h(0, δ) = 0 and h
// is non-decreasing in x (eq. (39)).
Scalar h_gap(const BoundParams& p, std::size_t x, Scalar delta);

// Theorem 2 gap s(τ) = γℓ τ η ρ (γμ + γ + 1) (eq. (20)).
Scalar s_gap(const BoundParams& p, std::size_t tau);

// Theorem 3/4 combined gap j(τ, π, δℓ, δ) (eq. (23)); delta_edges are the
// per-edge δℓ with matching data weights Dℓ/D.
Scalar j_gap(const BoundParams& p, std::size_t tau, std::size_t pi,
             const std::vector<Scalar>& delta_edges,
             const std::vector<Scalar>& edge_weights, Scalar delta_global);

// Eq. (37): the descent coefficient α. Positive α is required by Theorem 4.
Scalar alpha(const BoundParams& p);

// Theorem 4 right-hand side and feasibility check.
struct Theorem4Inputs {
  BoundParams params;
  std::size_t tau = 10, pi = 2;
  std::size_t total_iterations = 1000;  // T
  Scalar omega = 1.0;    // ω — eq. (36)
  Scalar sigma = 1.0;    // σ — eq. (36)
  Scalar epsilon = 0.1;  // ε — Condition (2)
  std::vector<Scalar> delta_edges;
  std::vector<Scalar> edge_weights;
  Scalar delta_global = 0;
};

struct Theorem4Result {
  bool feasible = false;  // Condition (2.1): ωασ² − ρj/(τπε²) > 0
  Scalar denominator = 0; // ωασ² − ρj/(τπε²)
  Scalar bound = 0;       // 1 / (T · denominator), valid when feasible
  Scalar j_value = 0;
  Scalar alpha_value = 0;
};
Theorem4Result theorem4_bound(const Theorem4Inputs& in);

}  // namespace hfl::theory
