#include "src/theory/bounds.h"

#include <cmath>

#include "src/common/errors.h"

namespace hfl::theory {

namespace {
void check_params(const BoundParams& p) {
  HFL_CHECK(p.eta > 0 && p.beta > 0 && p.rho > 0, "eta/beta/rho must be > 0");
  HFL_CHECK(p.gamma > 0 && p.gamma < 1, "gamma must be in (0, 1)");
  HFL_CHECK(p.gamma_edge > 0 && p.gamma_edge < 1,
            "gamma_edge must be in (0, 1)");
  HFL_CHECK(p.mu >= 0, "mu must be non-negative");
}
}  // namespace

MomentumConstants momentum_constants(const BoundParams& p) {
  check_params(p);
  MomentumConstants c;
  const Scalar eb = 1 + p.eta * p.beta;
  const Scalar g = p.gamma;
  const Scalar disc = eb * eb * (1 + g) * (1 + g) - 4 * g * eb;
  HFL_CHECK(disc >= 0, "negative discriminant in momentum constants");
  const Scalar root = std::sqrt(disc);
  c.A = (eb * (1 + g) + root) / (2 * g);
  c.B = (eb * (1 + g) - root) / (2 * g);
  HFL_CHECK(std::abs(c.A - c.B) > 1e-15, "A == B degenerate case");
  c.I = (g * c.A + c.A - 1) / ((c.A - c.B) * (g * c.A - 1));
  c.J = (g * c.B + c.B - 1) / ((c.A - c.B) * (1 - g * c.B));
  c.U = (c.A - 1) / (c.A - c.B);
  c.V = (1 - c.B) / (c.A - c.B);
  return c;
}

Scalar h_gap(const BoundParams& p, std::size_t x, Scalar delta) {
  check_params(p);
  HFL_CHECK(delta >= 0, "delta must be non-negative");
  if (x == 0) return 0;
  const MomentumConstants c = momentum_constants(p);
  const Scalar g = p.gamma;
  const Scalar xf = static_cast<Scalar>(x);
  // Eq. (17) with the U/V root-weight constants (U + V = 1, which yields the
  // paper's h(0, δ) = 0 exactly, and h(1, δ) = 0 — the divergence needs one
  // step of position drift before it compounds):
  //   h = ηδ [ (U(γA)^x + V(γB)^x − 1)/(ηβ)
  //            − (γ²(γ^x − 1) − (γ−1)x) / (γ−1)² ]
  const Scalar term1 =
      (c.U * std::pow(g * c.A, xf) + c.V * std::pow(g * c.B, xf) - 1) /
      (p.eta * p.beta);
  const Scalar term2 =
      (g * g * (std::pow(g, xf) - 1) - (g - 1) * xf) / ((g - 1) * (g - 1));
  return p.eta * delta * (term1 - term2);
}

Scalar s_gap(const BoundParams& p, std::size_t tau) {
  check_params(p);
  return p.gamma_edge * static_cast<Scalar>(tau) * p.eta * p.rho *
         (p.gamma * p.mu + p.gamma + 1);
}

Scalar j_gap(const BoundParams& p, std::size_t tau, std::size_t pi,
             const std::vector<Scalar>& delta_edges,
             const std::vector<Scalar>& edge_weights, Scalar delta_global) {
  HFL_CHECK(delta_edges.size() == edge_weights.size(),
            "delta/weight count mismatch");
  HFL_CHECK(!delta_edges.empty(), "need at least one edge");
  // Eq. (23): j = h(τπ, δ) + (π+1) Σ_ℓ (Dℓ/D)(h(τ, δℓ) + s(τ)).
  Scalar edge_sum = 0;
  for (std::size_t l = 0; l < delta_edges.size(); ++l) {
    edge_sum += edge_weights[l] * (h_gap(p, tau, delta_edges[l]) +
                                   s_gap(p, tau));
  }
  return h_gap(p, tau * pi, delta_global) +
         static_cast<Scalar>(pi + 1) * edge_sum;
}

Scalar alpha(const BoundParams& p) {
  check_params(p);
  // Eq. (37).
  const Scalar e = p.eta, b = p.beta, g = p.gamma, m = p.mu;
  return e * (g + 1) * (1 - b * e * (g + 1) / 2) -
         b * e * e * g * g * m * m / 2 - e * g * m * (1 - b * e * (g + 1));
}

Theorem4Result theorem4_bound(const Theorem4Inputs& in) {
  HFL_CHECK(in.tau > 0 && in.pi > 0, "tau and pi must be positive");
  HFL_CHECK(in.total_iterations % (in.tau * in.pi) == 0,
            "T must be a multiple of tau*pi");
  HFL_CHECK(in.epsilon > 0, "epsilon must be positive");
  Theorem4Result r;
  r.alpha_value = alpha(in.params);
  r.j_value = j_gap(in.params, in.tau, in.pi, in.delta_edges, in.edge_weights,
                    in.delta_global);
  r.denominator =
      in.omega * r.alpha_value * in.sigma * in.sigma -
      in.params.rho * r.j_value /
          (static_cast<Scalar>(in.tau * in.pi) * in.epsilon * in.epsilon);
  r.feasible = r.denominator > 0;
  r.bound = r.feasible
                ? 1.0 / (static_cast<Scalar>(in.total_iterations) *
                         r.denominator)
                : 0.0;
  return r;
}

}  // namespace hfl::theory
