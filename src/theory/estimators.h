// Empirical estimators for the paper's assumption constants.
//
// Theorem 4's bound is stated in terms of ρ (Lipschitz, Assumption 1),
// β (smoothness, Assumption 2), the gradient-diversity levels δ_{i,ℓ}, δℓ, δ
// (Assumption 3), and μ (eq. (30)). These cannot be computed exactly for
// neural models, but they can be probed: we sample random parameter points
// near the initialization, evaluate per-worker mini-batch gradients at the
// SAME point for all workers, and take empirical maxima/weighted averages.
// The estimates feed the theory benches so the bound can be evaluated on the
// actual workloads rather than with made-up constants.
#pragma once

#include "src/data/partitioner.h"
#include "src/fl/topology.h"
#include "src/nn/model.h"

namespace hfl::theory {

struct AssumptionEstimates {
  Scalar rho = 0;    // max observed gradient norm
  Scalar beta = 0;   // max observed ||∇F(x1)−∇F(x2)|| / ||x1−x2||
  Scalar delta_global = 0;            // δ — weighted average of δℓ
  std::vector<Scalar> delta_edges;    // δℓ per edge
  std::vector<Scalar> edge_weights;   // Dℓ/D, aligned with delta_edges
};

struct EstimatorOptions {
  std::size_t probe_points = 4;   // random parameter points probed
  std::size_t batch_size = 64;    // per-worker samples per gradient estimate
  Scalar point_spread = 0.05;     // stddev of the probe-point perturbation
  std::uint64_t seed = 99;
};

AssumptionEstimates estimate_assumptions(const nn::ModelFactory& factory,
                                         const data::Dataset& train,
                                         const data::Partition& partition,
                                         const fl::Topology& topo,
                                         const EstimatorOptions& options = {});

}  // namespace hfl::theory
