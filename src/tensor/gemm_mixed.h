// Mixed-precision GEMM: FP32 compute, FP64 accumulate.
//
// Operands are converted to float during panel packing, the register-tile
// micro-kernel runs 8-wide float FMAs (twice the lane width of the FP64
// kernel), and every finished tile is widened back to double and added into
// the FP64 C. The float accumulation length is capped per k-panel (kKCf in
// gemm_mixed.cpp): a panel's partial products accumulate in float for at
// most kKCf steps, then land in the double accumulator, which bounds the
// relative error at ~√kKCf·ε_f32 ≈ 1e-6 regardless of k.
//
// Accuracy contract: NOT bit-identical to ops::gemm — max elementwise error
// ≤ 1e-6 relative to the FP64 result's magnitude on the library's operand
// distributions (asserted on randomized shapes, including masked-tail sizes,
// by tests/gemm_batched_test.cpp). Only the opt-in mixed-precision cohort
// path (RunConfig::mixed_precision / HFL_MIXED_PRECISION) calls this;
// everything else in the library stays on the FP64 kernels.
#pragma once

#include <cstddef>

#include "src/common/types.h"

namespace hfl::ops {

// C = beta·C + op(A)·op(B), computed in FP32 with FP64 accumulation.
// Argument conventions are identical to ops::gemm (beta handling included).
void gemm_mixed(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                std::size_t k, const Scalar* a, std::size_t lda,
                const Scalar* b, std::size_t ldb, Scalar beta, Scalar* c,
                std::size_t ldc);

// Strided-batch variant with the ops::gemm_batched calling convention
// (stride 0 = shared operand on A/B, in-index-order shared accumulator on C).
// Sharing is a semantic declaration here, not a pack-amortization: each item
// runs the full mixed nest (the FP32 kernel's speedup dwarfs the pack cost).
void gemm_batched_mixed(bool trans_a, bool trans_b, std::size_t m,
                        std::size_t n, std::size_t k, std::size_t items,
                        const Scalar* a, std::size_t lda, std::size_t stride_a,
                        const Scalar* b, std::size_t ldb, std::size_t stride_b,
                        Scalar beta, Scalar* c, std::size_t ldc,
                        std::size_t stride_c);

}  // namespace hfl::ops
