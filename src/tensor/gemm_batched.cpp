#include "src/tensor/gemm_batched.h"

#include <vector>

#include "src/obs/registry.h"
#include "src/tensor/gemm_detail.h"

namespace hfl::ops {
namespace {

using namespace detail;

// Shared-A packing is only worth caching while the whole packed k-panel of
// op(A) (every MC block of one KC slice) fits comfortably in scratch; beyond
// this the driver just repacks per item, which is always correct. Weight
// operands — the shared case that matters — are far below the cap.
constexpr std::size_t kSharedAMaxElems = 1 << 20;  // 8 MB of doubles

void log_batched(std::size_t m, std::size_t n, std::size_t k,
                 std::size_t items) {
  if (!obs::enabled()) return;
  static obs::Counter& calls =
      obs::Registry::global().counter("gemm.batched_calls");
  static obs::Counter& flops =
      obs::Registry::global().counter("gemm.batched_flops");
  static obs::Counter& bytes =
      obs::Registry::global().counter("gemm.batched_bytes");
  static obs::Histogram& batch = obs::Registry::global().histogram(
      "gemm.batched_items", "", {1, 2, 4, 8, 16, 32, 64, 128});
  calls.add();
  flops.add(static_cast<std::uint64_t>(2) * m * n * k * items);
  bytes.add(static_cast<std::uint64_t>(m * k + k * n + 2 * m * n) * items *
            sizeof(Scalar));
  batch.observe(static_cast<double>(items));
}

}  // namespace

void gemm_batched(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                  std::size_t k, std::size_t items, const Scalar* a,
                  std::size_t lda, std::size_t stride_a, const Scalar* b,
                  std::size_t ldb, std::size_t stride_b, Scalar beta, Scalar* c,
                  std::size_t ldc, std::size_t stride_c) {
  if (items == 0 || m == 0 || n == 0) return;
  log_batched(m, n, k, items);

  if (stride_c == 0) {
    // Shared accumulator: items apply in index order, exactly like the
    // caller's own beta=1 loop would. Nothing can be amortized across items
    // here (each item's panels must fully accumulate before the next), so
    // run the plain single-product nest per item.
    for (std::size_t it = 0; it < items; ++it) {
      gemm_single(trans_a, trans_b, m, n, k, a + it * stride_a, lda,
                  b + it * stride_b, ldb, it == 0 ? beta : Scalar{1}, c, ldc);
    }
    return;
  }

  const bool direct_b = !trans_b && m <= kDirectBMaxM;

  if (stride_b != 0 && k != 0) {
    // Per-item B: the panel loop has nothing to amortize across items except
    // the shared-A pack, so run items OUTERMOST — each item's C block stays
    // hot across its k-panels exactly as in the caller's own per-item loop,
    // instead of being evicted and re-read once per panel. The shared-A
    // amortization survives by packing every (pc, ic) block of A up front.
    // Bit-identity is untouched: the per-item (jc, pc, ic) partition and
    // kernel dispatch are exactly gemm_single's, and items are independent.
    std::size_t full_a_elems = 0;
    if (stride_a == 0) {
      for (std::size_t pc = 0; pc < k; pc += kKC) {
        const std::size_t kc = std::min(kKC, k - pc);
        for (std::size_t ic = 0; ic < m; ic += kMC) {
          full_a_elems += packed_a_size(std::min(kMC, m - ic), kc);
        }
      }
    }
    const bool share_a = stride_a == 0 && full_a_elems <= kSharedAMaxElems;

    thread_local std::vector<Scalar> a_scratch;
    thread_local std::vector<Scalar> b_scratch;
    a_scratch.resize(share_a ? full_a_elems
                             : ((kMC + kMR - 1) / kMR) * kMR * kKC);
    if (!direct_b) b_scratch.resize(kKC * kNC);
    if (share_a) {
      std::size_t off = 0;
      for (std::size_t pc = 0; pc < k; pc += kKC) {
        const std::size_t kc = std::min(kKC, k - pc);
        for (std::size_t ic = 0; ic < m; ic += kMC) {
          const std::size_t mc = std::min(kMC, m - ic);
          pack_a(a, lda, trans_a, ic, pc, mc, kc, a_scratch.data() + off);
          off += packed_a_size(mc, kc);
        }
      }
    }

    for (std::size_t it = 0; it < items; ++it) {
      const Scalar* ai = a + it * stride_a;
      const Scalar* bi = b + it * stride_b;
      Scalar* ci = c + it * stride_c;
      fold_beta(beta, m, n, ci, ldc);
      for (std::size_t jc = 0; jc < n; jc += kNC) {
        const std::size_t nc = std::min(kNC, n - jc);
        std::size_t a_off = 0;
        for (std::size_t pc = 0; pc < k; pc += kKC) {
          const std::size_t kc = std::min(kKC, k - pc);
          if (!direct_b) {
            pack_b(bi, ldb, trans_b, pc, jc, kc, nc, b_scratch.data());
          }
          for (std::size_t ic = 0; ic < m; ic += kMC) {
            const std::size_t mc = std::min(kMC, m - ic);
            const Scalar* ap_block;
            if (share_a) {
              ap_block = a_scratch.data() + a_off;
              a_off += packed_a_size(mc, kc);
            } else {
              pack_a(ai, lda, trans_a, ic, pc, mc, kc, a_scratch.data());
              ap_block = a_scratch.data();
            }
            macro_kernel(kc, nc, mc, ap_block, b_scratch.data(), direct_b,
                         bi + pc * ldb + jc, ldb, ci + ic * ldc + jc, ldc);
          }
        }
      }
    }
    return;
  }

  for (std::size_t it = 0; it < items; ++it) {
    fold_beta(beta, m, n, c + it * stride_c, ldc);
  }
  if (k == 0) return;

  const bool share_b = stride_b == 0 && !direct_b;
  // Shared A keeps every MC block of the current k-panel packed at once so
  // items beyond the first skip the pack entirely.
  std::size_t shared_a_elems = 0;
  if (stride_a == 0) {
    for (std::size_t ic = 0; ic < m; ic += kMC) {
      shared_a_elems += packed_a_size(std::min(kMC, m - ic), kKC);
    }
  }
  const bool share_a = stride_a == 0 && shared_a_elems <= kSharedAMaxElems;

  thread_local std::vector<Scalar> a_item;    // per-item pack, one MC block
  thread_local std::vector<Scalar> a_shared;  // all MC blocks of one k-panel
  thread_local std::vector<Scalar> b_packed;
  a_item.resize(((kMC + kMR - 1) / kMR) * kMR * kKC);
  if (share_a) a_shared.resize(shared_a_elems);
  if (!direct_b) b_packed.resize(kKC * kNC);

  for (std::size_t jc = 0; jc < n; jc += kNC) {
    const std::size_t nc = std::min(kNC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKC) {
      const std::size_t kc = std::min(kKC, k - pc);
      if (share_b) pack_b(b, ldb, trans_b, pc, jc, kc, nc, b_packed.data());
      bool shared_a_ready = false;
      for (std::size_t it = 0; it < items; ++it) {
        const Scalar* ai = a + it * stride_a;
        const Scalar* bi = b + it * stride_b;
        Scalar* ci = c + it * stride_c;
        if (!share_b && !direct_b) {
          pack_b(bi, ldb, trans_b, pc, jc, kc, nc, b_packed.data());
        }
        // Same MC blocking as gemm_single: the strip partition of op(A)
        // (where narrow strips fall) is part of the FP contract.
        std::size_t ablock_off = 0;
        for (std::size_t ic = 0; ic < m; ic += kMC) {
          const std::size_t mc = std::min(kMC, m - ic);
          const Scalar* ap_block;
          if (share_a) {
            Scalar* slot = a_shared.data() + ablock_off;
            if (!shared_a_ready) pack_a(a, lda, trans_a, ic, pc, mc, kc, slot);
            ap_block = slot;
            ablock_off += packed_a_size(mc, kc);
          } else {
            pack_a(ai, lda, trans_a, ic, pc, mc, kc, a_item.data());
            ap_block = a_item.data();
          }
          macro_kernel(kc, nc, mc, ap_block, b_packed.data(), direct_b,
                       bi + pc * ldb + jc, ldb, ci + ic * ldc + jc, ldc);
        }
        shared_a_ready = share_a;
      }
    }
  }
}

}  // namespace hfl::ops
