#include "src/tensor/tensor_ops.h"

#include "src/tensor/gemm.h"

namespace hfl::ops {

namespace {
void check_rank2(const Tensor& t, const char* what) {
  HFL_CHECK(t.rank() == 2, std::string(what) + " must be rank-2, got " +
                               t.shape_string());
}

void ensure_shape(Tensor& t, std::size_t rows, std::size_t cols) {
  if (t.rank() == 2 && t.dim(0) == rows && t.dim(1) == cols) return;
  t = Tensor({rows, cols});
}
}  // namespace

// All three variants lower onto the blocked GEMM in gemm.cpp; the transpose
// cases are absorbed by its panel packing, so none of them materializes a
// transposed copy of the input.

void matmul(const Tensor& a, const Tensor& b, Tensor& c) {
  check_rank2(a, "matmul a");
  check_rank2(b, "matmul b");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(1);
  HFL_CHECK(b.dim(0) == k, "matmul inner dimensions mismatch");
  ensure_shape(c, m, n);
  gemm(false, false, m, n, k, a.raw(), k, b.raw(), n, 0.0, c.raw(), n);
}

void matmul_transpose_b(const Tensor& a, const Tensor& b, Tensor& c) {
  check_rank2(a, "matmul_transpose_b a");
  check_rank2(b, "matmul_transpose_b b");
  const std::size_t m = a.dim(0), k = a.dim(1), n = b.dim(0);
  HFL_CHECK(b.dim(1) == k, "matmul_transpose_b inner dimensions mismatch");
  ensure_shape(c, m, n);
  gemm(false, true, m, n, k, a.raw(), k, b.raw(), k, 0.0, c.raw(), n);
}

void matmul_transpose_a(const Tensor& a, const Tensor& b, Tensor& c) {
  check_rank2(a, "matmul_transpose_a a");
  check_rank2(b, "matmul_transpose_a b");
  const std::size_t k = a.dim(0), m = a.dim(1), n = b.dim(1);
  HFL_CHECK(b.dim(0) == k, "matmul_transpose_a inner dimensions mismatch");
  ensure_shape(c, m, n);
  gemm(true, false, m, n, k, a.raw(), m, b.raw(), n, 0.0, c.raw(), n);
}

void add_row_bias(Tensor& x, const Tensor& bias) {
  check_rank2(x, "add_row_bias x");
  const std::size_t m = x.dim(0), n = x.dim(1);
  HFL_CHECK(bias.size() == n, "bias length must match column count");
  Scalar* px = x.raw();
  const Scalar* pb = bias.raw();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) px[i * n + j] += pb[j];
  }
}

void sum_rows(const Tensor& x, Tensor& out) {
  check_rank2(x, "sum_rows x");
  const std::size_t m = x.dim(0), n = x.dim(1);
  if (out.size() != n) out = Tensor({n});
  out.fill(0.0);
  const Scalar* px = x.raw();
  Scalar* po = out.raw();
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) po[j] += px[i * n + j];
  }
}

void argmax_rows(const Tensor& x, std::vector<std::size_t>& out) {
  check_rank2(x, "argmax_rows x");
  const std::size_t m = x.dim(0), n = x.dim(1);
  HFL_CHECK(n > 0, "argmax_rows needs at least one column");
  out.resize(m);
  const Scalar* px = x.raw();
  for (std::size_t i = 0; i < m; ++i) {
    std::size_t best = 0;
    Scalar best_v = px[i * n];
    for (std::size_t j = 1; j < n; ++j) {
      if (px[i * n + j] > best_v) {
        best_v = px[i * n + j];
        best = j;
      }
    }
    out[i] = best;
  }
}

namespace {
void elementwise_check(const Tensor& a, const Tensor& b, Tensor& out) {
  HFL_CHECK(a.same_shape(b), "elementwise shape mismatch");
  if (!out.same_shape(a)) out = Tensor(a.shape());
}
}  // namespace

void add(const Tensor& a, const Tensor& b, Tensor& out) {
  elementwise_check(a, b, out);
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
}

void sub(const Tensor& a, const Tensor& b, Tensor& out) {
  elementwise_check(a, b, out);
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
}

void mul(const Tensor& a, const Tensor& b, Tensor& out) {
  elementwise_check(a, b, out);
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
}

}  // namespace hfl::ops
