#include "src/tensor/gemm.h"

#include "src/obs/registry.h"
#include "src/tensor/gemm_detail.h"

namespace hfl::ops {

void gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
          std::size_t k, const Scalar* a, std::size_t lda, const Scalar* b,
          std::size_t ldb, Scalar beta, Scalar* c, std::size_t ldc) {
  if (m == 0 || n == 0) return;

  if (obs::enabled()) {
    // Logical op accounting (hot path: gated behind the single enabled()
    // load; the handles are resolved once per process).
    static obs::Counter& calls = obs::Registry::global().counter("gemm.calls");
    static obs::Counter& flops = obs::Registry::global().counter("gemm.flops");
    static obs::Counter& bytes = obs::Registry::global().counter("gemm.bytes");
    calls.add();
    flops.add(static_cast<std::uint64_t>(2) * m * n * k);
    bytes.add(static_cast<std::uint64_t>(m * k + k * n + 2 * m * n) *
              sizeof(Scalar));
  }

  detail::gemm_single(trans_a, trans_b, m, n, k, a, lda, b, ldb, beta, c, ldc);
}

namespace {

// Shared telemetry for the row-gathered entry points; same logical-op
// accounting as gemm() (a gathered operand moves the same bytes).
void record_gemm(std::size_t m, std::size_t n, std::size_t k) {
  if (!obs::enabled()) return;
  static obs::Counter& calls = obs::Registry::global().counter("gemm.calls");
  static obs::Counter& flops = obs::Registry::global().counter("gemm.flops");
  static obs::Counter& bytes = obs::Registry::global().counter("gemm.bytes");
  calls.add();
  flops.add(static_cast<std::uint64_t>(2) * m * n * k);
  bytes.add(static_cast<std::uint64_t>(m * k + k * n + 2 * m * n) *
            sizeof(Scalar));
}

}  // namespace

void gemm_rows_a(std::size_t m, std::size_t n, std::size_t k,
                 const Scalar* const* a_rows, bool trans_b, const Scalar* b,
                 std::size_t ldb, Scalar beta, Scalar* c, std::size_t ldc) {
  if (m == 0 || n == 0) return;
  record_gemm(m, n, k);
  detail::gemm_gather(/*trans_a=*/false, trans_b, m, n, k, nullptr, a_rows, 0,
                      b, nullptr, ldb, beta, c, ldc);
}

void gemm_rows_b(bool trans_a, std::size_t m, std::size_t n, std::size_t k,
                 const Scalar* a, std::size_t lda,
                 const Scalar* const* b_rows, Scalar beta, Scalar* c,
                 std::size_t ldc) {
  if (m == 0 || n == 0) return;
  record_gemm(m, n, k);
  detail::gemm_gather(trans_a, /*trans_b=*/false, m, n, k, a, nullptr, lda,
                      nullptr, b_rows, 0, beta, c, ldc);
}

}  // namespace hfl::ops
