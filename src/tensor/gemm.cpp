#include "src/tensor/gemm.h"

#include "src/obs/registry.h"
#include "src/tensor/gemm_detail.h"

namespace hfl::ops {

void gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
          std::size_t k, const Scalar* a, std::size_t lda, const Scalar* b,
          std::size_t ldb, Scalar beta, Scalar* c, std::size_t ldc) {
  if (m == 0 || n == 0) return;

  if (obs::enabled()) {
    // Logical op accounting (hot path: gated behind the single enabled()
    // load; the handles are resolved once per process).
    static obs::Counter& calls = obs::Registry::global().counter("gemm.calls");
    static obs::Counter& flops = obs::Registry::global().counter("gemm.flops");
    static obs::Counter& bytes = obs::Registry::global().counter("gemm.bytes");
    calls.add();
    flops.add(static_cast<std::uint64_t>(2) * m * n * k);
    bytes.add(static_cast<std::uint64_t>(m * k + k * n + 2 * m * n) *
              sizeof(Scalar));
  }

  detail::gemm_single(trans_a, trans_b, m, n, k, a, lda, b, ldb, beta, c, ldc);
}

}  // namespace hfl::ops
