#include "src/tensor/gemm_mixed.h"

#include <algorithm>
#include <vector>

#include "src/obs/registry.h"
#include "src/tensor/gemm_detail.h"

namespace hfl::ops {
namespace {

// Float register tile. With AVX2/FMA: 6 rows × 16 columns — 12 ymm float
// accumulators + 2 B vectors + 1 broadcast, the same register budget as the
// FP64 6×8 tile at twice the lane width. Portable fallback: 4×16.
#ifdef HFL_GEMM_AVX2
constexpr std::size_t kMRf = 6;
#else
constexpr std::size_t kMRf = 4;
#endif
constexpr std::size_t kNRf = 16;

// Cache tiles. kKCf is the float accumulation cap, chosen for accuracy
// before locality: a float dot of 96 terms keeps the panel's rounding error
// near √96·ε_f32 ≈ 1.2e-6 worst-case (~1e-7 on random signs), and panel
// results accumulate in FP64. The smaller k-panel also halves the packed
// footprint, so locality does not suffer.
constexpr std::size_t kMCf = 66;
constexpr std::size_t kKCf = 96;
constexpr std::size_t kNCf = 1024;

inline std::size_t strip_width_f(std::size_t mr) {
  return (kMRf == 6 && mr <= 4) ? 4 : kMRf;
}

// Packs the mc×kc block of op(A) into kMRf-row float strips (narrow final
// strip stored 4 wide, as in the FP64 pack), converting double→float once
// per element.
void pack_a_f32(const Scalar* a, std::size_t lda, bool trans, std::size_t i0,
                std::size_t p0, std::size_t mc, std::size_t kc, float* dst) {
  for (std::size_t s = 0; s < mc; s += kMRf) {
    const std::size_t mr = std::min(kMRf, mc - s);
    const std::size_t width = strip_width_f(mr);
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t i = 0; i < mr; ++i) {
        *dst++ = static_cast<float>(
            detail::elem(a, lda, trans, i0 + s + i, p0 + p));
      }
      for (std::size_t i = mr; i < width; ++i) *dst++ = 0.0f;
    }
  }
}

// Packs the kc×nc block of op(B) into kNRf-column float strips. The mixed
// path always packs B (the conversion pass is needed anyway, so there is no
// direct-B shortcut and no masked tail kernel — ragged edges are zero-padded
// here and bounds-checked at the store).
void pack_b_f32(const Scalar* b, std::size_t ldb, bool trans, std::size_t p0,
                std::size_t j0, std::size_t kc, std::size_t nc, float* dst) {
  for (std::size_t t = 0; t < nc; t += kNRf) {
    const std::size_t nr = std::min(kNRf, nc - t);
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t j = 0; j < nr; ++j) {
        *dst++ = static_cast<float>(
            detail::elem(b, ldb, trans, p0 + p, j0 + t + j));
      }
      for (std::size_t j = nr; j < kNRf; ++j) *dst++ = 0.0f;
    }
  }
}

// Widens a finished float tile into the FP64 accumulator:
// c[i][j] += (double)tile[i][j], bounds-checked against (mr, nr).
inline void add_tile_f32(const float* tile, std::size_t tile_ld, Scalar* c,
                         std::size_t ldc, std::size_t mr, std::size_t nr) {
#ifdef HFL_GEMM_AVX2
  if (nr == kNRf) {
    for (std::size_t i = 0; i < mr; ++i) {
      Scalar* crow = c + i * ldc;
      const float* trow = tile + i * tile_ld;
      for (std::size_t j = 0; j < kNRf; j += 4) {
        const __m256d cv = _mm256_loadu_pd(crow + j);
        const __m256d tv = _mm256_cvtps_pd(_mm_load_ps(trow + j));
        _mm256_storeu_pd(crow + j, _mm256_add_pd(cv, tv));
      }
    }
    return;
  }
#endif
  for (std::size_t i = 0; i < mr; ++i) {
    Scalar* crow = c + i * ldc;
    const float* trow = tile + i * tile_ld;
    for (std::size_t j = 0; j < nr; ++j) {
      crow[j] += static_cast<Scalar>(trow[j]);
    }
  }
}

#ifdef HFL_GEMM_AVX2

// 6×16 float tile over kc steps of packed strips, widened into FP64 C.
void micro_kernel_f32(std::size_t kc, const float* ap, const float* bp,
                      Scalar* c, std::size_t ldc, std::size_t mr,
                      std::size_t nr) {
  __m256 acc00 = _mm256_setzero_ps(), acc01 = _mm256_setzero_ps();
  __m256 acc10 = _mm256_setzero_ps(), acc11 = _mm256_setzero_ps();
  __m256 acc20 = _mm256_setzero_ps(), acc21 = _mm256_setzero_ps();
  __m256 acc30 = _mm256_setzero_ps(), acc31 = _mm256_setzero_ps();
  __m256 acc40 = _mm256_setzero_ps(), acc41 = _mm256_setzero_ps();
  __m256 acc50 = _mm256_setzero_ps(), acc51 = _mm256_setzero_ps();
  for (std::size_t p = 0; p < kc; ++p) {
    // loadu: the packed-B vector's base is only malloc-aligned (16B), so a
    // 32-byte-aligned load faults on every other allocation.
    const __m256 b0 = _mm256_loadu_ps(bp + p * kNRf);
    const __m256 b1 = _mm256_loadu_ps(bp + p * kNRf + 8);
    const float* arow = ap + p * kMRf;
    __m256 av;
    av = _mm256_broadcast_ss(arow + 0);
    acc00 = _mm256_fmadd_ps(av, b0, acc00);
    acc01 = _mm256_fmadd_ps(av, b1, acc01);
    av = _mm256_broadcast_ss(arow + 1);
    acc10 = _mm256_fmadd_ps(av, b0, acc10);
    acc11 = _mm256_fmadd_ps(av, b1, acc11);
    av = _mm256_broadcast_ss(arow + 2);
    acc20 = _mm256_fmadd_ps(av, b0, acc20);
    acc21 = _mm256_fmadd_ps(av, b1, acc21);
    av = _mm256_broadcast_ss(arow + 3);
    acc30 = _mm256_fmadd_ps(av, b0, acc30);
    acc31 = _mm256_fmadd_ps(av, b1, acc31);
    av = _mm256_broadcast_ss(arow + 4);
    acc40 = _mm256_fmadd_ps(av, b0, acc40);
    acc41 = _mm256_fmadd_ps(av, b1, acc41);
    av = _mm256_broadcast_ss(arow + 5);
    acc50 = _mm256_fmadd_ps(av, b0, acc50);
    acc51 = _mm256_fmadd_ps(av, b1, acc51);
  }
  alignas(32) float tile[kMRf * kNRf];
  _mm256_store_ps(tile + 0 * kNRf, acc00);
  _mm256_store_ps(tile + 0 * kNRf + 8, acc01);
  _mm256_store_ps(tile + 1 * kNRf, acc10);
  _mm256_store_ps(tile + 1 * kNRf + 8, acc11);
  _mm256_store_ps(tile + 2 * kNRf, acc20);
  _mm256_store_ps(tile + 2 * kNRf + 8, acc21);
  _mm256_store_ps(tile + 3 * kNRf, acc30);
  _mm256_store_ps(tile + 3 * kNRf + 8, acc31);
  _mm256_store_ps(tile + 4 * kNRf, acc40);
  _mm256_store_ps(tile + 4 * kNRf + 8, acc41);
  _mm256_store_ps(tile + 5 * kNRf, acc50);
  _mm256_store_ps(tile + 5 * kNRf + 8, acc51);
  add_tile_f32(tile, kNRf, c, ldc, mr, nr);
}

// 4-row variant for a narrow final A strip (packed 4 wide).
void micro_kernel_f32_4(std::size_t kc, const float* ap, const float* bp,
                        Scalar* c, std::size_t ldc, std::size_t mr,
                        std::size_t nr) {
  __m256 acc00 = _mm256_setzero_ps(), acc01 = _mm256_setzero_ps();
  __m256 acc10 = _mm256_setzero_ps(), acc11 = _mm256_setzero_ps();
  __m256 acc20 = _mm256_setzero_ps(), acc21 = _mm256_setzero_ps();
  __m256 acc30 = _mm256_setzero_ps(), acc31 = _mm256_setzero_ps();
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256 b0 = _mm256_loadu_ps(bp + p * kNRf);
    const __m256 b1 = _mm256_loadu_ps(bp + p * kNRf + 8);
    const float* arow = ap + p * 4;
    __m256 av;
    av = _mm256_broadcast_ss(arow + 0);
    acc00 = _mm256_fmadd_ps(av, b0, acc00);
    acc01 = _mm256_fmadd_ps(av, b1, acc01);
    av = _mm256_broadcast_ss(arow + 1);
    acc10 = _mm256_fmadd_ps(av, b0, acc10);
    acc11 = _mm256_fmadd_ps(av, b1, acc11);
    av = _mm256_broadcast_ss(arow + 2);
    acc20 = _mm256_fmadd_ps(av, b0, acc20);
    acc21 = _mm256_fmadd_ps(av, b1, acc21);
    av = _mm256_broadcast_ss(arow + 3);
    acc30 = _mm256_fmadd_ps(av, b0, acc30);
    acc31 = _mm256_fmadd_ps(av, b1, acc31);
  }
  alignas(32) float tile[4 * kNRf];
  _mm256_store_ps(tile + 0 * kNRf, acc00);
  _mm256_store_ps(tile + 0 * kNRf + 8, acc01);
  _mm256_store_ps(tile + 1 * kNRf, acc10);
  _mm256_store_ps(tile + 1 * kNRf + 8, acc11);
  _mm256_store_ps(tile + 2 * kNRf, acc20);
  _mm256_store_ps(tile + 2 * kNRf + 8, acc21);
  _mm256_store_ps(tile + 3 * kNRf, acc30);
  _mm256_store_ps(tile + 3 * kNRf + 8, acc31);
  add_tile_f32(tile, kNRf, c, ldc, mr, nr);
}

#else  // portable fallback

void micro_kernel_f32(std::size_t kc, const float* ap, const float* bp,
                      Scalar* c, std::size_t ldc, std::size_t mr,
                      std::size_t nr) {
  float acc[kMRf * kNRf] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const float* arow = ap + p * kMRf;
    const float* brow = bp + p * kNRf;
    for (std::size_t i = 0; i < kMRf; ++i) {
      const float av = arow[i];
      float* crow = acc + i * kNRf;
      for (std::size_t j = 0; j < kNRf; ++j) crow[j] += av * brow[j];
    }
  }
  add_tile_f32(acc, kNRf, c, ldc, mr, nr);
}

// Never reached when kMRf == 4 (strip_width_f is the identity); exists so
// the dispatch compiles unconditionally.
void micro_kernel_f32_4(std::size_t kc, const float* ap, const float* bp,
                        Scalar* c, std::size_t ldc, std::size_t mr,
                        std::size_t nr) {
  micro_kernel_f32(kc, ap, bp, c, ldc, mr, nr);
}

#endif  // HFL_GEMM_AVX2

// The mixed single-product nest: gemm_single's structure with float panels,
// the float micro-kernel, and FP64 tile accumulation. No direct-B path (B is
// packed for the conversion) and no bit-identity contract to preserve.
void gemm_mixed_single(bool trans_a, bool trans_b, std::size_t m,
                       std::size_t n, std::size_t k, const Scalar* a,
                       std::size_t lda, const Scalar* b, std::size_t ldb,
                       Scalar beta, Scalar* c, std::size_t ldc) {
  if (m == 0 || n == 0) return;
  detail::fold_beta(beta, m, n, c, ldc);
  if (k == 0) return;

  thread_local std::vector<float> a_packed;
  thread_local std::vector<float> b_packed;
  a_packed.resize(((kMCf + kMRf - 1) / kMRf) * kMRf * kKCf);
  b_packed.resize(kKCf * kNCf);

  for (std::size_t jc = 0; jc < n; jc += kNCf) {
    const std::size_t nc = std::min(kNCf, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKCf) {
      const std::size_t kc = std::min(kKCf, k - pc);
      pack_b_f32(b, ldb, trans_b, pc, jc, kc, nc, b_packed.data());
      for (std::size_t ic = 0; ic < m; ic += kMCf) {
        const std::size_t mc = std::min(kMCf, m - ic);
        pack_a_f32(a, lda, trans_a, ic, pc, mc, kc, a_packed.data());
        for (std::size_t jr = 0; jr < nc; jr += kNRf) {
          const std::size_t nr = std::min(kNRf, nc - jr);
          const float* bp = b_packed.data() + (jr / kNRf) * kc * kNRf;
          for (std::size_t ir = 0; ir < mc; ir += kMRf) {
            const std::size_t mr = std::min(kMRf, mc - ir);
            const std::size_t width = strip_width_f(mr);
            const float* ap = a_packed.data() + (ir / kMRf) * kc * kMRf;
            Scalar* ctile = c + (ic + ir) * ldc + (jc + jr);
            if (width == kMRf) {
              micro_kernel_f32(kc, ap, bp, ctile, ldc, mr, nr);
            } else {
              micro_kernel_f32_4(kc, ap, bp, ctile, ldc, mr, nr);
            }
          }
        }
      }
    }
  }
}

void log_mixed(std::size_t m, std::size_t n, std::size_t k, std::size_t items,
               bool batched) {
  if (!obs::enabled()) return;
  static obs::Counter& calls =
      obs::Registry::global().counter("gemm.mixed_calls");
  static obs::Counter& flops =
      obs::Registry::global().counter("gemm.mixed_flops");
  static obs::Counter& bytes =
      obs::Registry::global().counter("gemm.mixed_bytes");
  calls.add();
  flops.add(static_cast<std::uint64_t>(2) * m * n * k * items);
  bytes.add(static_cast<std::uint64_t>(m * k + k * n + 2 * m * n) * items *
            sizeof(Scalar));
  if (batched) {
    static obs::Histogram& batch = obs::Registry::global().histogram(
        "gemm.batched_items", "mode=mixed", {1, 2, 4, 8, 16, 32, 64, 128});
    batch.observe(static_cast<double>(items));
  }
}

}  // namespace

void gemm_mixed(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                std::size_t k, const Scalar* a, std::size_t lda,
                const Scalar* b, std::size_t ldb, Scalar beta, Scalar* c,
                std::size_t ldc) {
  if (m == 0 || n == 0) return;
  log_mixed(m, n, k, 1, /*batched=*/false);
  gemm_mixed_single(trans_a, trans_b, m, n, k, a, lda, b, ldb, beta, c, ldc);
}

void gemm_batched_mixed(bool trans_a, bool trans_b, std::size_t m,
                        std::size_t n, std::size_t k, std::size_t items,
                        const Scalar* a, std::size_t lda, std::size_t stride_a,
                        const Scalar* b, std::size_t ldb, std::size_t stride_b,
                        Scalar beta, Scalar* c, std::size_t ldc,
                        std::size_t stride_c) {
  if (items == 0 || m == 0 || n == 0) return;
  log_mixed(m, n, k, items, /*batched=*/true);
  if (stride_c == 0) {
    for (std::size_t it = 0; it < items; ++it) {
      gemm_mixed_single(trans_a, trans_b, m, n, k, a + it * stride_a, lda,
                        b + it * stride_b, ldb, it == 0 ? beta : Scalar{1}, c,
                        ldc);
    }
    return;
  }
  for (std::size_t it = 0; it < items; ++it) {
    gemm_mixed_single(trans_a, trans_b, m, n, k, a + it * stride_a, lda,
                      b + it * stride_b, ldb, beta, c + it * stride_c, ldc);
  }
}

}  // namespace hfl::ops
