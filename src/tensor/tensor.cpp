#include "src/tensor/tensor.h"

#include <sstream>

namespace hfl {

Tensor::Tensor(std::vector<std::size_t> shape)
    : shape_(std::move(shape)), data_(shape_size(shape_), 0.0) {}

Tensor::Tensor(std::vector<std::size_t> shape, Vec data)
    : shape_(std::move(shape)), data_(std::move(data)) {
  HFL_CHECK(data_.size() == shape_size(shape_),
            "tensor data size does not match shape " + shape_string());
}

Tensor Tensor::full(std::vector<std::size_t> shape, Scalar value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<std::size_t> shape, Rng& rng, Scalar stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.normal(0.0, stddev);
  return t;
}

std::size_t Tensor::dim(std::size_t axis) const {
  HFL_CHECK(axis < shape_.size(), "tensor axis out of range");
  return shape_[axis];
}

std::size_t Tensor::flat_index(std::initializer_list<std::size_t> idx) const {
  HFL_CHECK(idx.size() == shape_.size(), "tensor index rank mismatch");
  std::size_t flat = 0;
  std::size_t axis = 0;
  for (const std::size_t i : idx) {
    HFL_CHECK(i < shape_[axis], "tensor index out of bounds");
    flat = flat * shape_[axis] + i;
    ++axis;
  }
  return flat;
}

Scalar& Tensor::at(std::initializer_list<std::size_t> idx) {
  return data_[flat_index(idx)];
}

Scalar Tensor::at(std::initializer_list<std::size_t> idx) const {
  return data_[flat_index(idx)];
}

void Tensor::reshape(std::vector<std::size_t> new_shape) {
  HFL_CHECK(shape_size(new_shape) == data_.size(),
            "reshape must preserve element count");
  shape_ = std::move(new_shape);
}

void Tensor::fill(Scalar value) {
  std::fill(data_.begin(), data_.end(), value);
}

std::string Tensor::shape_string() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i > 0) os << ", ";
    os << shape_[i];
  }
  os << ')';
  return os.str();
}

}  // namespace hfl
