// Dense row-major tensor.
//
// The neural-network substrate operates on small dense tensors (activations,
// weights, images). `Tensor` is a value type: shape plus a contiguous buffer
// of `Scalar`. Views/strides are deliberately out of scope — every layer in
// src/nn works on contiguous data, which keeps the backprop code auditable.
//
// Indexing convention: shape {d0, d1, ..., dk} with d0 the slowest-varying
// dimension. Batched image tensors use NCHW.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <numeric>
#include <string>
#include <vector>

#include "src/common/errors.h"
#include "src/common/rng.h"
#include "src/common/types.h"

namespace hfl {

class Tensor {
 public:
  Tensor() = default;

  // Zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<std::size_t> shape);

  // Tensor with the given shape adopting `data` (size must match).
  Tensor(std::vector<std::size_t> shape, Vec data);

  static Tensor zeros(std::vector<std::size_t> shape) {
    return Tensor(std::move(shape));
  }
  static Tensor full(std::vector<std::size_t> shape, Scalar value);
  // I.i.d. normal entries: mean 0, the given stddev.
  static Tensor randn(std::vector<std::size_t> shape, Rng& rng,
                      Scalar stddev = 1.0);

  const std::vector<std::size_t>& shape() const { return shape_; }
  std::size_t rank() const { return shape_.size(); }
  std::size_t dim(std::size_t axis) const;
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  Vec& data() { return data_; }
  const Vec& data() const { return data_; }

  Scalar* raw() { return data_.data(); }
  const Scalar* raw() const { return data_.data(); }

  // Flat access.
  Scalar& operator[](std::size_t i) { return data_[i]; }
  Scalar operator[](std::size_t i) const { return data_[i]; }

  // Multi-dimensional access (rank-checked in debug-friendly HFL_CHECK form).
  Scalar& at(std::initializer_list<std::size_t> idx);
  Scalar at(std::initializer_list<std::size_t> idx) const;

  // Reshape in place; total size must be preserved.
  void reshape(std::vector<std::size_t> new_shape);

  // Set every element to `value`.
  void fill(Scalar value);

  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }

  std::string shape_string() const;

  static std::size_t shape_size(const std::vector<std::size_t>& shape) {
    return std::accumulate(shape.begin(), shape.end(), std::size_t{1},
                           std::multiplies<>());
  }

 private:
  std::size_t flat_index(std::initializer_list<std::size_t> idx) const;

  std::vector<std::size_t> shape_;
  Vec data_;
};

}  // namespace hfl
