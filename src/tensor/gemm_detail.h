// Internal building blocks of the blocked GEMM (gemm.cpp), shared with the
// strided-batch driver (gemm_batched.cpp).
//
// Everything here — tile constants, packing routines, micro-kernels, and the
// un-instrumented single-product driver — is the PR-1 implementation moved
// verbatim out of gemm.cpp so the batched path can reuse the exact kernels.
// That verbatim reuse is load-bearing: the batched FP64 path promises
// bit-identical results to per-call ops::gemm, which holds only because both
// run the same packing, the same tiling order, and the same micro-kernels.
// Do not "improve" one caller's copy of the loop nest without the other.
//
// Not part of the public tensor API; include only from src/tensor/*.cpp and
// matching tests.
#pragma once

#include <algorithm>
#include <cstddef>
#include <vector>

#include "src/common/types.h"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define HFL_GEMM_AVX2 1
#endif

namespace hfl::ops::detail {

// Register tile (micro-kernel footprint). With AVX2/FMA the classic 6×8
// double tile is used: 12 ymm accumulators + 2 B vectors + 1 broadcast fit
// the 16 architectural ymm registers. The portable fallback uses 4×8, which
// auto-vectorizes acceptably.
#ifdef HFL_GEMM_AVX2
constexpr std::size_t kMR = 6;
#else
constexpr std::size_t kMR = 4;
#endif
constexpr std::size_t kNR = 8;

// Cache tiles: an MC×KC packed A panel (~132 KB) targets L2, each KC×NR
// packed B strip (~16 KB) stays L1-resident across a full sweep of A strips,
// and the KC×NC packed B panel (~2 MB) targets L3.
constexpr std::size_t kMC = 66;
constexpr std::size_t kKC = 256;
constexpr std::size_t kNC = 1024;

// Largest m for which untransposed B is streamed directly instead of packed:
// below this the packed panel would be reused too few times (m/kMR A-strip
// sweeps) to pay for the packing pass. Conv-lowered products (m = out_ch on
// the forward path) take this route.
constexpr std::size_t kDirectBMaxM = 32;

inline Scalar elem(const Scalar* x, std::size_t ld, bool trans, std::size_t row,
                   std::size_t col) {
  return trans ? x[col * ld + row] : x[row * ld + col];
}

// Packs the mc×kc block of op(A) at (i0, p0) into strips of kMR rows,
// column-major within each strip, so the micro-kernel reads kMR contiguous
// values per k-step. Ragged strips are zero-padded: the micro-kernel then
// always computes a full kMR×kNR tile and only the store is bounds-checked.
// A short final strip (≤ 4 live rows when kMR is 6) is stored 4 wide and
// computed by the narrower 4-row kernel, instead of padding to 6 and wasting
// a third of the strip's FLOPs — this matters for conv-lowered products
// where m = out_ch is 8/16/32.
inline std::size_t strip_width(std::size_t mr) {
  return (kMR == 6 && mr <= 4) ? 4 : kMR;
}

inline void pack_a(const Scalar* a, std::size_t lda, bool trans, std::size_t i0,
                   std::size_t p0, std::size_t mc, std::size_t kc, Scalar* dst) {
  for (std::size_t s = 0; s < mc; s += kMR) {
    const std::size_t mr = std::min(kMR, mc - s);
    const std::size_t width = strip_width(mr);
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t i = 0; i < mr; ++i) {
        *dst++ = elem(a, lda, trans, i0 + s + i, p0 + p);
      }
      for (std::size_t i = mr; i < width; ++i) *dst++ = 0.0;
    }
  }
}

// Number of scalars pack_a emits for an mc×kc block (narrow final strips
// included). The batched driver uses this to lay consecutive MC blocks of a
// shared A panel into one buffer.
inline std::size_t packed_a_size(std::size_t mc, std::size_t kc) {
  std::size_t total = 0;
  for (std::size_t s = 0; s < mc; s += kMR) {
    total += strip_width(std::min(kMR, mc - s)) * kc;
  }
  return total;
}

// pack_a over a row-gathered matrix: row i of the (untransposed) m×k operand
// lives at rows[i], k contiguous scalars, with no relation between rows. The
// strip layout and zero padding are exactly pack_a's, so the packed panel is
// byte-identical to packing a contiguous copy of the same rows — row gather
// is invisible to everything downstream of packing.
inline void pack_a_rows(const Scalar* const* rows, std::size_t i0,
                        std::size_t p0, std::size_t mc, std::size_t kc,
                        Scalar* dst) {
  for (std::size_t s = 0; s < mc; s += kMR) {
    const std::size_t mr = std::min(kMR, mc - s);
    const std::size_t width = strip_width(mr);
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t i = 0; i < mr; ++i) {
        *dst++ = rows[i0 + s + i][p0 + p];
      }
      for (std::size_t i = mr; i < width; ++i) *dst++ = 0.0;
    }
  }
}

// Packs the kc×nc block of op(B) at (p0, j0) into strips of kNR columns,
// row-major within each strip (kNR contiguous values per k-step).
inline void pack_b(const Scalar* b, std::size_t ldb, bool trans, std::size_t p0,
                   std::size_t j0, std::size_t kc, std::size_t nc, Scalar* dst) {
  for (std::size_t t = 0; t < nc; t += kNR) {
    const std::size_t nr = std::min(kNR, nc - t);
    for (std::size_t p = 0; p < kc; ++p) {
      for (std::size_t j = 0; j < nr; ++j) {
        *dst++ = elem(b, ldb, trans, p0 + p, j0 + t + j);
      }
      for (std::size_t j = nr; j < kNR; ++j) *dst++ = 0.0;
    }
  }
}

// pack_b over a row-gathered matrix: row p of the (untransposed) k×n operand
// lives at rows[p]. Same strip layout and padding as pack_b.
inline void pack_b_rows(const Scalar* const* rows, std::size_t p0,
                        std::size_t j0, std::size_t kc, std::size_t nc,
                        Scalar* dst) {
  for (std::size_t t = 0; t < nc; t += kNR) {
    const std::size_t nr = std::min(kNR, nc - t);
    for (std::size_t p = 0; p < kc; ++p) {
      const Scalar* row = rows[p0 + p] + j0 + t;
      for (std::size_t j = 0; j < nr; ++j) *dst++ = row[j];
      for (std::size_t j = nr; j < kNR; ++j) *dst++ = 0.0;
    }
  }
}

#ifdef HFL_GEMM_AVX2

// C[0..mr)×[0..nr) += Aᵖ·B over kc steps. `b` is either a packed strip
// (stride kNR) or a direct view into the source matrix (stride ldb): packed
// strips and untransposed row-major B both present kNR contiguous values per
// k-step, so one kernel serves both.
inline void micro_kernel(std::size_t kc, const Scalar* ap, const Scalar* b,
                         std::size_t bstride, Scalar* c, std::size_t ldc,
                         std::size_t mr, std::size_t nr) {
  __m256d acc00 = _mm256_setzero_pd(), acc01 = _mm256_setzero_pd();
  __m256d acc10 = _mm256_setzero_pd(), acc11 = _mm256_setzero_pd();
  __m256d acc20 = _mm256_setzero_pd(), acc21 = _mm256_setzero_pd();
  __m256d acc30 = _mm256_setzero_pd(), acc31 = _mm256_setzero_pd();
  __m256d acc40 = _mm256_setzero_pd(), acc41 = _mm256_setzero_pd();
  __m256d acc50 = _mm256_setzero_pd(), acc51 = _mm256_setzero_pd();
  // Two k-steps per iteration: at conv-sized kc (100–250) the loop-carried
  // overhead is a measurable slice of the kernel, and the second step's B
  // loads issue while the first step's FMA chain drains.
  auto step = [&](std::size_t p) {
    // Pull the B row a few k-steps ahead into L1: on the direct-B path the
    // rows are ldb apart (a strided stream the hardware prefetcher loses at
    // page boundaries); on the packed path this just runs ahead in the strip.
    _mm_prefetch(reinterpret_cast<const char*>(b + (p + 8) * bstride),
                 _MM_HINT_T0);
    const __m256d b0 = _mm256_loadu_pd(b + p * bstride);
    const __m256d b1 = _mm256_loadu_pd(b + p * bstride + 4);
    const Scalar* arow = ap + p * kMR;
    __m256d av;
    av = _mm256_broadcast_sd(arow + 0);
    acc00 = _mm256_fmadd_pd(av, b0, acc00);
    acc01 = _mm256_fmadd_pd(av, b1, acc01);
    av = _mm256_broadcast_sd(arow + 1);
    acc10 = _mm256_fmadd_pd(av, b0, acc10);
    acc11 = _mm256_fmadd_pd(av, b1, acc11);
    av = _mm256_broadcast_sd(arow + 2);
    acc20 = _mm256_fmadd_pd(av, b0, acc20);
    acc21 = _mm256_fmadd_pd(av, b1, acc21);
    av = _mm256_broadcast_sd(arow + 3);
    acc30 = _mm256_fmadd_pd(av, b0, acc30);
    acc31 = _mm256_fmadd_pd(av, b1, acc31);
    av = _mm256_broadcast_sd(arow + 4);
    acc40 = _mm256_fmadd_pd(av, b0, acc40);
    acc41 = _mm256_fmadd_pd(av, b1, acc41);
    av = _mm256_broadcast_sd(arow + 5);
    acc50 = _mm256_fmadd_pd(av, b0, acc50);
    acc51 = _mm256_fmadd_pd(av, b1, acc51);
  };
  std::size_t p = 0;
  for (; p + 2 <= kc; p += 2) {
    step(p);
    step(p + 1);
  }
  if (p < kc) step(p);
  alignas(32) Scalar tile[kMR * kNR];
  _mm256_store_pd(tile + 0 * kNR, acc00);
  _mm256_store_pd(tile + 0 * kNR + 4, acc01);
  _mm256_store_pd(tile + 1 * kNR, acc10);
  _mm256_store_pd(tile + 1 * kNR + 4, acc11);
  _mm256_store_pd(tile + 2 * kNR, acc20);
  _mm256_store_pd(tile + 2 * kNR + 4, acc21);
  _mm256_store_pd(tile + 3 * kNR, acc30);
  _mm256_store_pd(tile + 3 * kNR + 4, acc31);
  _mm256_store_pd(tile + 4 * kNR, acc40);
  _mm256_store_pd(tile + 4 * kNR + 4, acc41);
  _mm256_store_pd(tile + 5 * kNR, acc50);
  _mm256_store_pd(tile + 5 * kNR + 4, acc51);
  if (mr == kMR && nr == kNR) {
    for (std::size_t i = 0; i < kMR; ++i) {
      Scalar* crow = c + i * ldc;
      const __m256d c0 = _mm256_loadu_pd(crow);
      const __m256d c1 = _mm256_loadu_pd(crow + 4);
      _mm256_storeu_pd(crow, _mm256_add_pd(c0, _mm256_load_pd(tile + i * kNR)));
      _mm256_storeu_pd(
          crow + 4, _mm256_add_pd(c1, _mm256_load_pd(tile + i * kNR + 4)));
    }
  } else {
    for (std::size_t i = 0; i < mr; ++i) {
      Scalar* crow = c + i * ldc;
      for (std::size_t j = 0; j < nr; ++j) crow[j] += tile[i * kNR + j];
    }
  }
}

// 4-row variant for a short final A strip (packed 4 wide): 8 accumulators,
// same B streaming.
inline void micro_kernel4(std::size_t kc, const Scalar* ap, const Scalar* b,
                          std::size_t bstride, Scalar* c, std::size_t ldc,
                          std::size_t mr, std::size_t nr) {
  __m256d acc00 = _mm256_setzero_pd(), acc01 = _mm256_setzero_pd();
  __m256d acc10 = _mm256_setzero_pd(), acc11 = _mm256_setzero_pd();
  __m256d acc20 = _mm256_setzero_pd(), acc21 = _mm256_setzero_pd();
  __m256d acc30 = _mm256_setzero_pd(), acc31 = _mm256_setzero_pd();
  for (std::size_t p = 0; p < kc; ++p) {
    _mm_prefetch(reinterpret_cast<const char*>(b + (p + 8) * bstride),
                 _MM_HINT_T0);
    const __m256d b0 = _mm256_loadu_pd(b + p * bstride);
    const __m256d b1 = _mm256_loadu_pd(b + p * bstride + 4);
    const Scalar* arow = ap + p * 4;
    __m256d av;
    av = _mm256_broadcast_sd(arow + 0);
    acc00 = _mm256_fmadd_pd(av, b0, acc00);
    acc01 = _mm256_fmadd_pd(av, b1, acc01);
    av = _mm256_broadcast_sd(arow + 1);
    acc10 = _mm256_fmadd_pd(av, b0, acc10);
    acc11 = _mm256_fmadd_pd(av, b1, acc11);
    av = _mm256_broadcast_sd(arow + 2);
    acc20 = _mm256_fmadd_pd(av, b0, acc20);
    acc21 = _mm256_fmadd_pd(av, b1, acc21);
    av = _mm256_broadcast_sd(arow + 3);
    acc30 = _mm256_fmadd_pd(av, b0, acc30);
    acc31 = _mm256_fmadd_pd(av, b1, acc31);
  }
  alignas(32) Scalar tile[4 * kNR];
  _mm256_store_pd(tile + 0 * kNR, acc00);
  _mm256_store_pd(tile + 0 * kNR + 4, acc01);
  _mm256_store_pd(tile + 1 * kNR, acc10);
  _mm256_store_pd(tile + 1 * kNR + 4, acc11);
  _mm256_store_pd(tile + 2 * kNR, acc20);
  _mm256_store_pd(tile + 2 * kNR + 4, acc21);
  _mm256_store_pd(tile + 3 * kNR, acc30);
  _mm256_store_pd(tile + 3 * kNR + 4, acc31);
  for (std::size_t i = 0; i < mr; ++i) {
    Scalar* crow = c + i * ldc;
    for (std::size_t j = 0; j < nr; ++j) crow[j] += tile[i * kNR + j];
  }
}

// Ragged-right direct-B tile (nr < kNR): a plain 8-wide load from the source
// matrix could run past the allocation, so B is read with maskload (lanes
// ≥ nr are never touched in memory). One such strip per GEMM at most, but on
// conv-lowered shapes (OH·OW rarely a multiple of 8) it runs once per
// sample, so it is worth keeping vectorized.
template <int Rows>
inline void micro_kernel_tail_impl(std::size_t kc, const Scalar* ap,
                                   const Scalar* b, std::size_t bstride,
                                   Scalar* c, std::size_t ldc, std::size_t mr,
                                   std::size_t nr) {
  alignas(32) long long mbits[kNR];
  for (std::size_t j = 0; j < kNR; ++j) mbits[j] = j < nr ? -1LL : 0;
  const __m256i mask0 =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(mbits));
  const __m256i mask1 =
      _mm256_load_si256(reinterpret_cast<const __m256i*>(mbits + 4));
  __m256d acc0[Rows], acc1[Rows];
  for (int i = 0; i < Rows; ++i) {
    acc0[i] = _mm256_setzero_pd();
    acc1[i] = _mm256_setzero_pd();
  }
  for (std::size_t p = 0; p < kc; ++p) {
    const __m256d b0 = _mm256_maskload_pd(b + p * bstride, mask0);
    const __m256d b1 = _mm256_maskload_pd(b + p * bstride + 4, mask1);
    const Scalar* arow = ap + p * Rows;
    for (int i = 0; i < Rows; ++i) {
      const __m256d av = _mm256_broadcast_sd(arow + i);
      acc0[i] = _mm256_fmadd_pd(av, b0, acc0[i]);
      acc1[i] = _mm256_fmadd_pd(av, b1, acc1[i]);
    }
  }
  alignas(32) Scalar tile[Rows * kNR];
  for (int i = 0; i < Rows; ++i) {
    _mm256_store_pd(tile + i * kNR, acc0[i]);
    _mm256_store_pd(tile + i * kNR + 4, acc1[i]);
  }
  for (std::size_t i = 0; i < mr; ++i) {
    Scalar* crow = c + i * ldc;
    for (std::size_t j = 0; j < nr; ++j) crow[j] += tile[i * kNR + j];
  }
}

inline void micro_kernel_tail(std::size_t kc, const Scalar* ap,
                              std::size_t astride, const Scalar* b,
                              std::size_t bstride, Scalar* c, std::size_t ldc,
                              std::size_t mr, std::size_t nr) {
  if (astride == 4) {
    micro_kernel_tail_impl<4>(kc, ap, b, bstride, c, ldc, mr, nr);
  } else {
    micro_kernel_tail_impl<kMR>(kc, ap, b, bstride, c, ldc, mr, nr);
  }
}

#else  // portable fallback

inline void micro_kernel(std::size_t kc, const Scalar* ap, const Scalar* b,
                         std::size_t bstride, Scalar* c, std::size_t ldc,
                         std::size_t mr, std::size_t nr) {
  Scalar acc[kMR * kNR] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const Scalar* arow = ap + p * kMR;
    const Scalar* brow = b + p * bstride;
    for (std::size_t i = 0; i < kMR; ++i) {
      const Scalar av = arow[i];
      Scalar* crow = acc + i * kNR;
      for (std::size_t j = 0; j < kNR; ++j) crow[j] += av * brow[j];
    }
  }
  for (std::size_t i = 0; i < mr; ++i) {
    Scalar* crow = c + i * ldc;
    for (std::size_t j = 0; j < nr; ++j) crow[j] += acc[i * kNR + j];
  }
}

// Never reached (strip_width is the identity when kMR == 4); exists so the
// dispatch below compiles unconditionally.
inline void micro_kernel4(std::size_t kc, const Scalar* ap, const Scalar* b,
                          std::size_t bstride, Scalar* c, std::size_t ldc,
                          std::size_t mr, std::size_t nr) {
  micro_kernel(kc, ap, b, bstride, c, ldc, mr, nr);
}

inline void micro_kernel_tail(std::size_t kc, const Scalar* ap,
                              std::size_t astride, const Scalar* b,
                              std::size_t bstride, Scalar* c, std::size_t ldc,
                              std::size_t mr, std::size_t nr) {
  Scalar acc[kMR * kNR] = {};
  for (std::size_t p = 0; p < kc; ++p) {
    const Scalar* arow = ap + p * astride;
    const Scalar* brow = b + p * bstride;
    for (std::size_t i = 0; i < astride; ++i) {
      const Scalar av = arow[i];
      Scalar* crow = acc + i * kNR;
      for (std::size_t j = 0; j < nr; ++j) crow[j] += av * brow[j];
    }
  }
  for (std::size_t i = 0; i < mr; ++i) {
    Scalar* crow = c + i * ldc;
    for (std::size_t j = 0; j < nr; ++j) crow[j] += acc[i * kNR + j];
  }
}

#endif  // HFL_GEMM_AVX2

// Runs the macro-kernel over one packed A block: every KC×NR strip of B (or
// the corresponding direct-B slice) sweeps the block's A strips. Shared by
// gemm_single below and the batched driver — the (jr, ir) order and the
// kernel dispatch here define the FP contract both must honor.
inline void macro_kernel(std::size_t kc, std::size_t nc, std::size_t mc,
                         const Scalar* ap_block, const Scalar* b_packed,
                         bool direct_b, const Scalar* bdir_base,
                         std::size_t ldb, Scalar* c_block, std::size_t ldc) {
  for (std::size_t jr = 0; jr < nc; jr += kNR) {
    const std::size_t nr = std::min(kNR, nc - jr);
    for (std::size_t ir = 0; ir < mc; ir += kMR) {
      const std::size_t mr = std::min(kMR, mc - ir);
      // Only the final strip can be narrow, so the full-width offset formula
      // still locates it.
      const std::size_t width = strip_width(mr);
      const Scalar* ap = ap_block + (ir / kMR) * kc * kMR;
      Scalar* ctile = c_block + ir * ldc + jr;
      if (direct_b) {
        const Scalar* bdir = bdir_base + jr;
        if (nr < kNR) {
          micro_kernel_tail(kc, ap, width, bdir, ldb, ctile, ldc, mr, nr);
        } else if (width == kMR) {
          micro_kernel(kc, ap, bdir, ldb, ctile, ldc, mr, nr);
        } else {
          micro_kernel4(kc, ap, bdir, ldb, ctile, ldc, mr, nr);
        }
      } else {
        const Scalar* bp = b_packed + (jr / kNR) * kc * kNR;
        if (width == kMR) {
          micro_kernel(kc, ap, bp, kNR, ctile, ldc, mr, nr);
        } else {
          micro_kernel4(kc, ap, bp, kNR, ctile, ldc, mr, nr);
        }
      }
    }
  }
}

// Scales C by beta (beta == 0 overwrites, so C may be uninitialized).
inline void fold_beta(Scalar beta, std::size_t m, std::size_t n, Scalar* c,
                      std::size_t ldc) {
  if (beta == 0.0) {
    for (std::size_t i = 0; i < m; ++i) {
      std::fill(c + i * ldc, c + i * ldc + n, 0.0);
    }
  } else if (beta != 1.0) {
    for (std::size_t i = 0; i < m; ++i) {
      Scalar* crow = c + i * ldc;
      for (std::size_t j = 0; j < n; ++j) crow[j] *= beta;
    }
  }
}

// One full product, no telemetry: the exact loop nest ops::gemm runs. The
// batched driver calls this per item when it cannot amortize anything
// (shared-C accumulation), keeping its results bit-identical by definition.
inline void gemm_single(bool trans_a, bool trans_b, std::size_t m,
                        std::size_t n, std::size_t k, const Scalar* a,
                        std::size_t lda, const Scalar* b, std::size_t ldb,
                        Scalar beta, Scalar* c, std::size_t ldc) {
  if (m == 0 || n == 0) return;

  // Fold beta in up front; every panel pass below accumulates into C.
  fold_beta(beta, m, n, c, ldc);
  if (k == 0) return;

  // Packed-panel scratch, reused across calls (and across the layers of a
  // model — each simulation worker thread owns one pair).
  thread_local std::vector<Scalar> a_packed;
  thread_local std::vector<Scalar> b_packed;
  const bool direct_b = !trans_b && m <= kDirectBMaxM;
  // pack_a zero-pads the final strip to full width, so when kMC is not a
  // multiple of kMR the panel holds one extra partial strip's padding —
  // size by whole strips, not rows.
  a_packed.resize(((kMC + kMR - 1) / kMR) * kMR * kKC);
  if (!direct_b) b_packed.resize(kKC * kNC);

  for (std::size_t jc = 0; jc < n; jc += kNC) {
    const std::size_t nc = std::min(kNC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKC) {
      const std::size_t kc = std::min(kKC, k - pc);
      if (!direct_b) pack_b(b, ldb, trans_b, pc, jc, kc, nc, b_packed.data());
      for (std::size_t ic = 0; ic < m; ic += kMC) {
        const std::size_t mc = std::min(kMC, m - ic);
        pack_a(a, lda, trans_a, ic, pc, mc, kc, a_packed.data());
        // Macro-kernel: each KC×NR B strip stays hot while every A strip of
        // the panel streams past it.
        macro_kernel(kc, nc, mc, a_packed.data(), b_packed.data(), direct_b,
                     b + pc * ldb + jc, ldb, c + ic * ldc + jc, ldc);
      }
    }
  }
}

// gemm_single with either operand optionally row-gathered: when a_rows is
// non-null, op(A) is untransposed and row i lives at a_rows[i] (k contiguous
// scalars); when b_rows is non-null, op(B) is untransposed and row p lives at
// b_rows[p]. Bit-identity with gemm_single on a contiguous copy of the same
// rows holds by construction: pack_a_rows/pack_b_rows emit byte-identical
// panels, and the loop nest, kernel dispatch, and (jr, ir) order below are
// the same code. The only divergence is that a gathered B disables the
// direct-B shortcut (there is no single base pointer to stream from) — also
// results-invariant, because the packed and direct paths feed the same
// per-lane FMA sequence and differ only in how B reaches the registers.
inline void gemm_gather(bool trans_a, bool trans_b, std::size_t m,
                        std::size_t n, std::size_t k, const Scalar* a,
                        const Scalar* const* a_rows, std::size_t lda,
                        const Scalar* b, const Scalar* const* b_rows,
                        std::size_t ldb, Scalar beta, Scalar* c,
                        std::size_t ldc) {
  if (m == 0 || n == 0) return;

  fold_beta(beta, m, n, c, ldc);
  if (k == 0) return;

  thread_local std::vector<Scalar> a_packed;
  thread_local std::vector<Scalar> b_packed;
  const bool direct_b = !trans_b && m <= kDirectBMaxM && b_rows == nullptr;
  a_packed.resize(((kMC + kMR - 1) / kMR) * kMR * kKC);
  if (!direct_b) b_packed.resize(kKC * kNC);

  for (std::size_t jc = 0; jc < n; jc += kNC) {
    const std::size_t nc = std::min(kNC, n - jc);
    for (std::size_t pc = 0; pc < k; pc += kKC) {
      const std::size_t kc = std::min(kKC, k - pc);
      if (!direct_b) {
        if (b_rows != nullptr) {
          pack_b_rows(b_rows, pc, jc, kc, nc, b_packed.data());
        } else {
          pack_b(b, ldb, trans_b, pc, jc, kc, nc, b_packed.data());
        }
      }
      for (std::size_t ic = 0; ic < m; ic += kMC) {
        const std::size_t mc = std::min(kMC, m - ic);
        if (a_rows != nullptr) {
          pack_a_rows(a_rows, ic, pc, mc, kc, a_packed.data());
        } else {
          pack_a(a, lda, trans_a, ic, pc, mc, kc, a_packed.data());
        }
        macro_kernel(kc, nc, mc, a_packed.data(), b_packed.data(), direct_b,
                     direct_b ? b + pc * ldb + jc : nullptr, ldb,
                     c + ic * ldc + jc, ldc);
      }
    }
  }
}

}  // namespace hfl::ops::detail
