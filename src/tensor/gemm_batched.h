// Strided-batch GEMM: one call computes `items` independent products that
// share their shape (and possibly operands), amortizing panel packing and
// per-call overhead across the batch.
//
// This is the compute primitive behind the cohort-fused simulation path: a
// conv layer lowers every sample of a worker's mini-batch to the same
// (out_ch × kk) · (kk × OH·OW) product with a shared weight operand, and the
// batched driver packs that operand once per cache panel instead of once per
// sample.
//
// FP contract: in FP64 each item's result is bit-identical to a separate
// ops::gemm call with the same arguments — the driver reuses the exact
// packing, tiling, and micro-kernels (src/tensor/gemm_detail.h), and operand
// sharing only changes *when* a panel is packed, never the packed values or
// the accumulation order. Asserted by tests/gemm_batched_test.cpp.
#pragma once

#include <cstddef>

#include "src/common/types.h"

namespace hfl::ops {

// For each item i in [0, items):
//   C_i = beta·C_i + op(A_i)·op(B_i)
// where X_i = x + i·stride_x and op/lda/ldb/ldc follow ops::gemm.
//
// A stride of 0 on A or B declares the operand shared across items; the
// driver then packs its panels once per cache tile instead of once per item.
// stride_c == 0 declares a shared accumulator: items are applied IN INDEX
// ORDER (C = beta·C + Σ_i op(A_i)·op(B_i), serialized), matching a caller's
// beta=1 loop bit for bit — used for conv weight gradients.
void gemm_batched(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                  std::size_t k, std::size_t items, const Scalar* a,
                  std::size_t lda, std::size_t stride_a, const Scalar* b,
                  std::size_t ldb, std::size_t stride_b, Scalar beta, Scalar* c,
                  std::size_t ldc, std::size_t stride_c);

}  // namespace hfl::ops
