// Tensor operations used by the neural-network layers.
//
// Only what the NN substrate needs: 2-D GEMM variants (with the transposes
// required by dense-layer backprop), bias broadcast, elementwise helpers, and
// an argmax over the class axis for accuracy computation. All functions check
// shapes and write into caller-provided outputs so hot loops don't allocate.
#pragma once

#include "src/tensor/tensor.h"

namespace hfl::ops {

// c = a(m×k) * b(k×n). c is resized/reshaped to (m×n).
void matmul(const Tensor& a, const Tensor& b, Tensor& c);

// c = a(m×k) * b^T where b is (n×k). c becomes (m×n).
void matmul_transpose_b(const Tensor& a, const Tensor& b, Tensor& c);

// c = a^T * b where a is (k×m), b is (k×n). c becomes (m×n).
void matmul_transpose_a(const Tensor& a, const Tensor& b, Tensor& c);

// Adds bias (length n) to every row of x (m×n).
void add_row_bias(Tensor& x, const Tensor& bias);

// Sums the rows of x (m×n) into out (length n). Used for bias gradients.
void sum_rows(const Tensor& x, Tensor& out);

// out[i] = argmax_j x(i, j) for a (m×n) tensor.
void argmax_rows(const Tensor& x, std::vector<std::size_t>& out);

// Elementwise: out = a + b, out = a - b (out may alias inputs).
void add(const Tensor& a, const Tensor& b, Tensor& out);
void sub(const Tensor& a, const Tensor& b, Tensor& out);

// Elementwise product (Hadamard).
void mul(const Tensor& a, const Tensor& b, Tensor& out);

}  // namespace hfl::ops
