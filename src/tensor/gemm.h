// Cache-tiled, register-blocked double-precision GEMM.
//
// Single entry point for every dense matrix product in the library:
// C(m×n) = beta·C + op(A)·op(B), row-major, with explicit leading dimensions
// so callers can multiply sub-blocks of larger buffers. op(X) is X or Xᵀ.
//
// The implementation follows the classic Goto/BLIS decomposition: the k and m
// dimensions are partitioned into KC×MC panels that are packed into
// contiguous buffers sized for the L1/L2 caches, and an MR×NR register-tile
// micro-kernel runs over the packed panels. Packing also absorbs the
// transpose cases, so op(A)/op(B) cost nothing in the inner loop. The packed
// buffers are thread-local and reused across calls — a GEMM issued from a
// simulation worker thread allocates only on its first call.
#pragma once

#include <cstddef>

#include "src/common/types.h"

namespace hfl::ops {

// C = beta*C + op(A)*op(B).
//
//   op(A) is m×k: A stored m×k with leading dimension lda >= k, or, when
//   trans_a, stored k×m with lda >= m. op(B) is k×n, analogously with
//   trans_b. C is m×n with ldc >= n. beta == 0 overwrites C (it is never
//   read, so it may be uninitialized); beta == 1 accumulates.
void gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
          std::size_t k, const Scalar* a, std::size_t lda, const Scalar* b,
          std::size_t ldb, Scalar beta, Scalar* c, std::size_t ldc);

// Row-gathered variants: one operand is given as m (resp. k) row pointers
// instead of a contiguous matrix, so callers multiplying a batch of
// scattered samples (e.g. dataset rows drawn by a batcher) skip the gather
// copy — the pack routines read the rows in place. Results are bit-identical
// to gemm() on a contiguous copy of the same rows: the packed panels are
// byte-identical and the kernel schedule is shared.

// C = beta*C + A_rows·op(B), where row i of the m×k A is a_rows[i]
// (k contiguous scalars). The gathered operand is never transposed.
void gemm_rows_a(std::size_t m, std::size_t n, std::size_t k,
                 const Scalar* const* a_rows, bool trans_b, const Scalar* b,
                 std::size_t ldb, Scalar beta, Scalar* c, std::size_t ldc);

// C = beta*C + op(A)·B_rows, where row p of the k×n B is b_rows[p]
// (n contiguous scalars). The gathered operand is never transposed.
void gemm_rows_b(bool trans_a, std::size_t m, std::size_t n, std::size_t k,
                 const Scalar* a, std::size_t lda,
                 const Scalar* const* b_rows, Scalar beta, Scalar* c,
                 std::size_t ldc);

}  // namespace hfl::ops
