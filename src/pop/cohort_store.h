// Lazy cohort materialization over a virtualized worker population.
//
// `CohortStore` is the pop-side implementation of `fl::CohortProvider`: the
// engine keeps addressing workers by global id through an `fl::WorkerSet`,
// but only the current cohort is backed by real `fl::WorkerState`s. Three
// lifecycle paths, all bit-identical to the dense engine:
//
//   * first materialization — rebuilds exactly the state dense
//     Engine::build_states would have given the worker: same descriptor
//     weights (src/pop/population.h), same x0, and the same RNG stream
//     derivation. The dense loop takes worker i's stream as the (2+i)-th
//     fork of the run root (fork 1 is the init-model stream), so the lazy
//     path derives it statelessly with Rng::fork_nth(1000 + i, 2 + i) —
//     keep in lockstep with src/fl/engine.cpp.
//   * spill — a worker leaving the cohort serializes every mutable field
//     (x, y, v, grad, accumulators, `extra`, both batch-stream
//     checkpoints) into the slab; the scratch model is dropped (it holds
//     no cross-batch state) and rebuilt from the factory on restore.
//   * restore — byte-exact resurrection: the worker resumes mid-run as if
//     it had stayed materialized the whole time (asserted by
//     tests/pop_test.cpp round-trip and tests/pop_parity_test.cpp).
//
// Cohort selection: exact weighted sampling by data mass D_i —
// without-replacement via the Fenwick sampler, or with-replacement via the
// alias table, in which case a worker drawn m times carries multiplicity m
// into the engine's roster scale. Every round forks its own child stream
// from the run seed (fork_nth keyed on the round), so cohorts are
// deterministic at any thread count.
//
// Telemetry (obs gauges/counters): pop.population, pop.cohort_size,
// pop.materialized_workers, pop.materialized_peak, pop.spills, pop.restores,
// pop.spill_bytes, pop.restore_bytes, pop.slab.bytes, pop.slab.peak_bytes.
#pragma once

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/data/partitioner.h"
#include "src/fl/engine.h"
#include "src/pop/population.h"
#include "src/pop/sampler.h"
#include "src/pop/slab.h"

namespace hfl::pop {

struct VirtConfig {
  // Workers per cohort. 0 = materialize the full population (virtualized
  // bookkeeping, dense coverage — the parity-test configuration).
  std::size_t cohort_size = 0;
  // With-replacement (alias-table) draws instead of the default exact
  // without-replacement sampling.
  bool with_replacement = false;
  SlabConfig slab;
};

class CohortStore final : public fl::CohortProvider {
 public:
  // `data` and `partition` must outlive the store (pass the same objects
  // the engine was built from — the store replays their batch streams).
  CohortStore(nn::ModelFactory factory, const data::TrainTest& data,
              const data::Partition& partition, const fl::Topology& topo,
              const fl::RunConfig& run, VirtConfig cfg);

  // fl::CohortProvider ------------------------------------------------------
  std::size_t population() const override { return pop_.num_workers(); }
  bool sampling() const override {
    return cfg_.cohort_size > 0 && cfg_.cohort_size < pop_.num_workers();
  }
  std::vector<Scalar> base_weights() const override {
    return pop_.base_weights();
  }
  void begin_run(const Vec& x0) override;
  void sample_cohort(std::size_t k, std::vector<fl::WorkerId>& ids,
                     std::vector<Scalar>& multiplicity) override;
  std::vector<fl::WorkerId> set_cohort(
      const std::vector<fl::WorkerId>& ids) override;
  fl::WorkerSet& workers() override { return view_; }
  // Cohort-turnover parallelism: spill serialization and restore/fresh
  // state construction fan out per worker on the host pool; slab access,
  // model-factory calls, and telemetry stay serial. Bit-identical at any
  // thread count (no cross-worker reductions).
  void attach_pool(ThreadPool* pool) override { host_pool_ = pool; }
  void begin_interval(std::size_t k) override { clock_ = k; }
  // Lazy absent-momentum replay: every spill records the interval clock;
  // a restore at clock m replays the policy (m − stamp) times — the exact
  // per-interval sequence a materialized absent worker would have received
  // from Algorithm::absent_sync, so kReset/kDecay oracles compose with
  // sampled cohorts without materializing anyone.
  void set_absent_replay(fl::AbsentPolicy policy, Scalar decay) override {
    replay_policy_ = policy;
    replay_decay_ = decay;
  }

  // Introspection (tests, bench) -------------------------------------------
  const Population& descriptors() const { return pop_; }
  const VirtConfig& config() const { return cfg_; }
  std::size_t num_materialized() const { return pool_.size(); }
  std::size_t peak_materialized() const { return peak_materialized_; }
  const Slab& slab() const { return slab_; }

 private:
  void materialize_fresh(fl::WorkerState& w, fl::WorkerId id,
                         std::unique_ptr<nn::Model> model);
  void serialize(const fl::WorkerState& w, std::vector<char>& blob) const;
  void deserialize(fl::WorkerState& w, fl::WorkerId id,
                   const std::vector<char>& blob,
                   std::unique_ptr<nn::Model> model) const;
  // Run fn(i) for i in [0, n) on the host pool when one is attached, else
  // inline. Tasks must be per-index independent.
  void run_tasks(std::size_t n,
                 const std::function<void(std::size_t)>& fn) const;
  void publish_gauges();

  nn::ModelFactory factory_;
  const data::TrainTest* data_;
  const data::Partition* partition_;
  const fl::Topology* topo_;
  fl::RunConfig run_;
  VirtConfig cfg_;
  Population pop_;

  Rng root_;       // Rng(run.seed): fork_nth source for worker streams
  Vec x0_;         // shared initial point of the current run
  Slab slab_;
  AliasSampler alias_;
  FenwickSampler fenwick_;

  std::vector<fl::WorkerState> pool_;       // cohort states, ascending id
  std::vector<std::uint32_t> slot_of_id_;   // population-sized id → slot
  fl::WorkerSet view_;
  std::size_t peak_materialized_ = 0;

  ThreadPool* host_pool_ = nullptr;         // engine-attached, may be null
  std::size_t clock_ = 0;                   // current interval (0 = no clock)
  fl::AbsentPolicy replay_policy_ = fl::AbsentPolicy::kHold;
  Scalar replay_decay_ = 1.0;
  // Per-worker (de)serialization buffers, reused across intervals so steady
  // state cohort turnover allocates nothing.
  std::vector<std::vector<char>> spill_bufs_;
  std::vector<std::vector<char>> restore_bufs_;
};

}  // namespace hfl::pop
