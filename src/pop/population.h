// Compact worker descriptors for virtualized populations.
//
// The dense engine materializes one `fl::WorkerState` per worker — model
// instance, momentum vectors, batch streams — which caps a single box at a
// few thousand workers. A `Population` keeps only what cohort selection and
// weight renormalization actually need, in flat arrays indexed by the
// 32-bit worker id: the per-worker sample count D_{i,ℓ} (the paper's data
// mass), the edge assignment, and the per-edge/total sample sums the
// aggregation weights are derived from. Everything heavier lives in
// `CohortStore`, which materializes full states only for the round's
// sampled cohort.
//
// Weight derivations reproduce the dense engine's arithmetic exactly
// (integer sample counts cast to Scalar, divided in the same order), so a
// worker materialized through this path carries bit-identical
// weight_in_edge / weight_global to its dense twin — one of the invariants
// behind tests/pop_parity_test.cpp.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/types.h"
#include "src/data/partitioner.h"
#include "src/fl/topology.h"

namespace hfl::pop {

class Population {
 public:
  // Descriptors for `topo`'s workers with per-worker sample counts read off
  // `partition` (partition[i].size() = worker i's D_{i,ℓ}).
  Population(const fl::Topology& topo, const data::Partition& partition);

  std::size_t num_workers() const { return num_samples_.size(); }
  std::size_t num_edges() const { return edge_samples_.size(); }

  std::uint32_t edge_of(std::size_t worker) const {
    return edge_of_worker_[worker];
  }
  std::size_t num_samples(std::size_t worker) const {
    return num_samples_[worker];
  }

  // The dense engine's weight formulas, value for value.
  Scalar weight_in_edge(std::size_t worker) const {
    return static_cast<Scalar>(num_samples_[worker]) /
           static_cast<Scalar>(edge_samples_[edge_of_worker_[worker]]);
  }
  Scalar weight_global(std::size_t worker) const {
    return static_cast<Scalar>(num_samples_[worker]) /
           static_cast<Scalar>(total_samples_);
  }

  std::uint64_t total_samples() const { return total_samples_; }
  std::uint64_t edge_samples(std::size_t edge) const {
    return edge_samples_[edge];
  }

  // Per-worker data masses D_i as Scalars — the sampler weights, and the
  // base weights `fl::Participation` renormalizes (bit-identical to the
  // dense path's num_samples reads).
  std::vector<Scalar> base_weights() const;

 private:
  std::vector<std::uint32_t> num_samples_;     // D_{i,ℓ} per worker
  std::vector<std::uint32_t> edge_of_worker_;  // edge assignment per worker
  std::vector<std::uint64_t> edge_samples_;    // D_ℓ per edge
  std::uint64_t total_samples_ = 0;            // D
};

}  // namespace hfl::pop
