// Spill storage for evicted worker states.
//
// When a sampled cohort rotates, the workers leaving the cohort serialize
// their mutable state (momentum vectors, interval accumulators, algorithm
// extras, batch-stream checkpoints) into the slab; a worker re-entering a
// later cohort restores the exact bytes and resumes bit-identically. Two
// backends:
//
//   * kMemory — an id-keyed blob map. Fast; bounded by the number of
//     DISTINCT workers ever sampled (not the population — never-sampled
//     workers cost nothing).
//   * kFile   — append-only spill file with an in-memory (id → offset,
//     length) index. A revisited worker's new spill appends and the index
//     moves on, so the file grows monotonically; peak_bytes reports the
//     high-water mark for the memory/telemetry study (EXPERIMENTS.md E18).
//
// The slab is a dumb byte store: serialization lives in cohort_store.cpp,
// telemetry (pop.slab.* gauges) is updated by the owner from the byte
// counters here.
#pragma once

#include <cstdint>
#include <fstream>
#include <string>
#include <unordered_map>
#include <vector>

namespace hfl::pop {

struct SlabConfig {
  enum class Backend { kMemory, kFile };
  Backend backend = Backend::kMemory;
  // kFile only: spill-file path (created/truncated on first use).
  std::string path = "hfl_pop_slab.bin";
};

class Slab {
 public:
  explicit Slab(SlabConfig cfg);

  // Drop every blob (a new run starts with an empty slab). Byte counters
  // reset; the file backend truncates.
  void clear();

  bool contains(std::uint32_t id) const {
    return index_.find(id) != index_.end();
  }

  // Store `blob` for `id`, replacing any previous spill of the same worker.
  void put(std::uint32_t id, const std::vector<char>& blob);

  // Fetch `id`'s blob into `out`. The id must be present.
  void get(std::uint32_t id, std::vector<char>& out);

  std::size_t num_entries() const { return index_.size(); }
  std::uint64_t bytes_written() const { return bytes_written_; }
  std::uint64_t bytes_read() const { return bytes_read_; }
  // Current live footprint: blob bytes (memory) or file size (file).
  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t peak_bytes() const { return peak_bytes_; }

 private:
  struct Extent {
    std::uint64_t offset = 0;  // kFile only
    std::uint64_t length = 0;
  };

  void open_file();

  SlabConfig cfg_;
  std::unordered_map<std::uint32_t, Extent> index_;
  // kMemory: one owned blob per spilled worker (replacement frees the old
  // bytes, so `bytes()` is the live footprint).
  std::unordered_map<std::uint32_t, std::vector<char>> blobs_;
  std::fstream file_;  // kFile
  std::uint64_t file_end_ = 0;
  std::uint64_t bytes_ = 0;
  std::uint64_t peak_bytes_ = 0;
  std::uint64_t bytes_written_ = 0;
  std::uint64_t bytes_read_ = 0;
};

}  // namespace hfl::pop
