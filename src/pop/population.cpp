#include "src/pop/population.h"

#include "src/common/errors.h"

namespace hfl::pop {

Population::Population(const fl::Topology& topo,
                       const data::Partition& partition) {
  const std::size_t n = topo.num_workers();
  HFL_CHECK(partition.size() == n,
            "partition size must equal the topology's worker count");
  num_samples_.resize(n);
  edge_of_worker_.resize(n);
  edge_samples_.assign(topo.num_edges(), 0);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t samples = partition[i].size();
    HFL_CHECK(samples > 0, "every worker needs at least one sample");
    HFL_CHECK(samples < 0xFFFFFFFFull, "per-worker sample counts are 32-bit");
    num_samples_[i] = static_cast<std::uint32_t>(samples);
    edge_of_worker_[i] = static_cast<std::uint32_t>(topo.edge_of_worker(i));
    edge_samples_[edge_of_worker_[i]] += samples;
    total_samples_ += samples;
  }
}

std::vector<Scalar> Population::base_weights() const {
  std::vector<Scalar> base(num_samples_.size());
  for (std::size_t i = 0; i < base.size(); ++i) {
    base[i] = static_cast<Scalar>(num_samples_[i]);
  }
  return base;
}

}  // namespace hfl::pop
