#include "src/pop/cohort_store.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "src/common/errors.h"
#include "src/obs/registry.h"

namespace hfl::pop {

namespace {

// Per-round sampling streams: child = root.fork_nth(kCohortSampleTag, k).
// The tag keeps cohort draws disjoint from the worker streams
// (fork_nth(1000 + i, 2 + i)) and the init stream (fork(0x1217)).
constexpr std::uint64_t kCohortSampleTag = 0xC0480A17ull;

// ---- spill blob encoding (little-endian host layout, memcpy'd) ----------

void put_bytes(std::vector<char>& b, const void* p, std::size_t n) {
  const char* c = static_cast<const char*>(p);
  b.insert(b.end(), c, c + n);
}

void put_u64(std::vector<char>& b, std::uint64_t v) {
  put_bytes(b, &v, sizeof v);
}

void put_scalar(std::vector<char>& b, Scalar v) {
  put_bytes(b, &v, sizeof v);
}

void put_vec(std::vector<char>& b, const Vec& v) {
  put_u64(b, v.size());
  if (!v.empty()) put_bytes(b, v.data(), v.size() * sizeof(Scalar));
}

void put_rng(std::vector<char>& b, const RngState& s) {
  for (const std::uint64_t word : s.s) put_u64(b, word);
  put_u64(b, s.fork_counter);
}

void put_batcher(std::vector<char>& b, const data::BatcherState& s) {
  put_u64(b, s.cursor);
  put_rng(b, s.rng);
  put_u64(b, s.indices.size());
  for (const std::size_t i : s.indices) {
    put_u64(b, static_cast<std::uint64_t>(i));
  }
}

struct Reader {
  const char* p;
  const char* end;

  void take(void* out, std::size_t n) {
    HFL_CHECK(n <= static_cast<std::size_t>(end - p),
              "truncated worker spill blob");
    std::memcpy(out, p, n);
    p += n;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    take(&v, sizeof v);
    return v;
  }
  Scalar scalar() {
    Scalar v;
    take(&v, sizeof v);
    return v;
  }
  void vec(Vec& v) {
    v.resize(u64());
    if (!v.empty()) take(v.data(), v.size() * sizeof(Scalar));
  }
  RngState rng() {
    RngState s;
    for (std::uint64_t& word : s.s) word = u64();
    s.fork_counter = u64();
    return s;
  }
  data::BatcherState batcher() {
    data::BatcherState s;
    s.cursor = u64();
    s.rng = rng();
    s.indices.resize(u64());
    for (std::size_t& i : s.indices) i = u64();
    return s;
  }
};

}  // namespace

CohortStore::CohortStore(nn::ModelFactory factory, const data::TrainTest& data,
                         const data::Partition& partition,
                         const fl::Topology& topo, const fl::RunConfig& run,
                         VirtConfig cfg)
    : factory_(std::move(factory)),
      data_(&data),
      partition_(&partition),
      topo_(&topo),
      run_(run),
      cfg_(std::move(cfg)),
      pop_(topo, partition),
      root_(run.seed),
      slab_(cfg_.slab),
      alias_(pop_.base_weights()),
      fenwick_(pop_.base_weights()),
      view_(&pool_, pop_.num_workers(), &slot_of_id_) {
  HFL_CHECK(cfg_.cohort_size <= pop_.num_workers(),
            "cohort size exceeds the population");
  slot_of_id_.assign(pop_.num_workers(), fl::WorkerSet::kNoSlot);
}

void CohortStore::begin_run(const Vec& x0) {
  x0_ = x0;
  pool_.clear();
  slot_of_id_.assign(pop_.num_workers(), fl::WorkerSet::kNoSlot);
  slab_.clear();
  peak_materialized_ = 0;
  clock_ = 0;
  replay_policy_ = fl::AbsentPolicy::kHold;  // until set_absent_replay
  replay_decay_ = 1.0;
  publish_gauges();
}

void CohortStore::run_tasks(
    std::size_t n, const std::function<void(std::size_t)>& fn) const {
  if (host_pool_ != nullptr && n > 1) {
    host_pool_->parallel_for(n, fn);
  } else {
    for (std::size_t i = 0; i < n; ++i) fn(i);
  }
}

void CohortStore::sample_cohort(std::size_t k, std::vector<fl::WorkerId>& ids,
                                std::vector<Scalar>& multiplicity) {
  HFL_CHECK(sampling(), "sample_cohort on a full-population store");
  Rng round = root_.fork_nth(kCohortSampleTag, k);
  ids.clear();
  multiplicity.clear();
  if (cfg_.with_replacement) {
    // m_i draws of worker i contribute mass m_i · D_i to the round's
    // aggregation (the roster scale), keeping the estimator unbiased.
    std::vector<fl::WorkerId> draws(cfg_.cohort_size);
    for (fl::WorkerId& d : draws) {
      d = static_cast<fl::WorkerId>(alias_.draw(round));
    }
    std::sort(draws.begin(), draws.end());
    for (std::size_t i = 0; i < draws.size();) {
      std::size_t j = i;
      while (j < draws.size() && draws[j] == draws[i]) ++j;
      ids.push_back(draws[i]);
      multiplicity.push_back(static_cast<Scalar>(j - i));
      i = j;
    }
  } else {
    std::vector<std::uint32_t> draws = fenwick_.sample(cfg_.cohort_size, round);
    std::sort(draws.begin(), draws.end());
    ids.assign(draws.begin(), draws.end());
    multiplicity.assign(ids.size(), 1.0);
  }
}

std::vector<fl::WorkerId> CohortStore::set_cohort(
    const std::vector<fl::WorkerId>& ids) {
  for (std::size_t i = 0; i < ids.size(); ++i) {
    HFL_CHECK(ids[i] < pop_.num_workers(), "cohort id out of range");
    HFL_CHECK(i == 0 || ids[i - 1] < ids[i],
              "cohort ids must be ascending and unique");
  }

  // Spill every current worker that is not in the new cohort (both lists
  // are ascending, so one merge pass finds the departures). Serialization
  // fans out per departure — each task reads one worker and writes one
  // private buffer — while the slab (not thread-safe: shared index, file
  // cursor, byte counters) ingests the blobs serially in ascending-id
  // order afterwards.
  std::vector<const fl::WorkerState*> departing;
  std::size_t j = 0;
  for (const fl::WorkerState& w : pool_) {
    while (j < ids.size() && ids[j] < w.id) ++j;
    if (j == ids.size() || ids[j] != w.id) departing.push_back(&w);
  }
  if (spill_bufs_.size() < departing.size()) {
    spill_bufs_.resize(departing.size());
  }
  run_tasks(departing.size(),
            [&](std::size_t i) { serialize(*departing[i], spill_bufs_[i]); });
  std::uint64_t spill_bytes = 0;
  for (std::size_t i = 0; i < departing.size(); ++i) {
    slab_.put(departing[i]->id, spill_bufs_[i]);
    spill_bytes += spill_bufs_[i].size();
  }

  // Assemble the new cohort: keep stayers (move), restore returnees,
  // create first-timers. Phase 1 (serial) classifies each slot, drains the
  // slab into per-worker buffers, and builds the scratch models (the
  // factory is caller-supplied and not required to be thread-safe);
  // phase 2 fans the heavy work out per worker — blob decode, vector
  // copies, batch-stream reconstruction, absent-policy replay — into
  // disjoint slots. fork_nth is const (stateless child derivation), so
  // concurrent fresh materializations off the shared root are safe.
  enum : std::uint8_t { kKeep, kRestore, kFresh };
  std::vector<std::uint8_t> kind(ids.size());
  std::vector<std::uint32_t> keep_slot(ids.size(), fl::WorkerSet::kNoSlot);
  std::vector<std::unique_ptr<nn::Model>> models(ids.size());
  if (restore_bufs_.size() < ids.size()) restore_bufs_.resize(ids.size());
  std::vector<fl::WorkerId> fresh;
  std::size_t num_restored = 0;
  std::uint64_t restore_bytes = 0;
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const fl::WorkerId id = ids[i];
    const std::uint32_t slot = slot_of_id_[id];
    if (slot != fl::WorkerSet::kNoSlot) {
      kind[i] = kKeep;
      keep_slot[i] = slot;
    } else if (slab_.contains(id)) {
      kind[i] = kRestore;
      slab_.get(id, restore_bufs_[i]);
      restore_bytes += restore_bufs_[i].size();
      ++num_restored;
      models[i] = factory_();
    } else {
      kind[i] = kFresh;
      fresh.push_back(id);
      models[i] = factory_();
    }
  }

  std::vector<fl::WorkerState> next(ids.size());
  run_tasks(ids.size(), [&](std::size_t i) {
    switch (kind[i]) {
      case kKeep:
        next[i] = std::move(pool_[keep_slot[i]]);
        break;
      case kRestore:
        deserialize(next[i], ids[i], restore_bufs_[i], std::move(models[i]));
        break;
      case kFresh:
        materialize_fresh(next[i], ids[i], std::move(models[i]));
        break;
    }
  });

  for (const fl::WorkerState& w : pool_) {
    slot_of_id_[w.id] = fl::WorkerSet::kNoSlot;
  }
  pool_ = std::move(next);
  for (std::size_t s = 0; s < pool_.size(); ++s) {
    slot_of_id_[pool_[s].id] = static_cast<std::uint32_t>(s);
  }
  peak_materialized_ = std::max(peak_materialized_, pool_.size());
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    if (!departing.empty()) {
      reg.counter("pop.spills").add(departing.size());
      reg.counter("pop.spill_bytes").add(spill_bytes);
    }
    if (num_restored > 0) {
      reg.counter("pop.restores").add(num_restored);
      reg.counter("pop.restore_bytes").add(restore_bytes);
    }
    if (!fresh.empty()) {
      reg.counter("pop.materializations").add(fresh.size());
    }
  }
  publish_gauges();
  return fresh;
}

void CohortStore::materialize_fresh(fl::WorkerState& w, fl::WorkerId id,
                                    std::unique_ptr<nn::Model> model) {
  HFL_CHECK(!x0_.empty(), "set_cohort before begin_run");
  const std::size_t n = x0_.size();
  const std::size_t i = id;
  w.id = id;
  w.edge = pop_.edge_of(i);
  w.num_samples = pop_.num_samples(i);
  w.weight_in_edge = pop_.weight_in_edge(i);
  w.weight_global = pop_.weight_global(i);
  w.x = x0_;
  w.y = x0_;
  w.v.assign(n, 0.0);
  w.grad.assign(n, 0.0);
  w.sum_grad.assign(n, 0.0);
  w.sum_y.assign(n, 0.0);
  w.sum_v.assign(n, 0.0);
  w.model = std::move(model);
  // Stream lockstep with the dense engine: worker i's stream is the
  // (2 + i)-th fork of the run root (fork 1 is the init-model stream) —
  // see Engine::build_states.
  Rng wrng = root_.fork_nth(1000 + i, 2 + i);
  w.batcher = std::make_unique<data::Batcher>(
      data_->train, (*partition_)[i], run_.batch_size, wrng.fork(1));
  w.aux_batcher = std::make_unique<data::Batcher>(
      data_->train, (*partition_)[i], run_.batch_size, wrng.fork(2));
}

void CohortStore::serialize(const fl::WorkerState& w,
                            std::vector<char>& blob) const {
  blob.clear();
  put_vec(blob, w.x);
  put_vec(blob, w.y);
  put_vec(blob, w.v);
  put_vec(blob, w.grad);
  put_scalar(blob, w.last_loss);
  put_vec(blob, w.sum_grad);
  put_vec(blob, w.sum_y);
  put_vec(blob, w.sum_v);
  put_u64(blob, w.extra.size());
  for (const auto& [name, vec] : w.extra) {  // std::map: sorted, stable
    put_u64(blob, name.size());
    put_bytes(blob, name.data(), name.size());
    put_vec(blob, vec);
  }
  put_batcher(blob, w.batcher->save_state());
  put_batcher(blob, w.aux_batcher->save_state());
  // Interval stamp: the worker has observed every synchronization finish
  // up to (not including) the interval whose set_cohort spilled it.
  put_u64(blob, clock_);
}

void CohortStore::deserialize(fl::WorkerState& w, fl::WorkerId id,
                              const std::vector<char>& blob,
                              std::unique_ptr<nn::Model> model) const {
  // Descriptor fields and the scratch model are rebuilt (the model holds no
  // cross-batch state); everything mutable comes back byte for byte.
  const std::size_t i = id;
  w.id = id;
  w.edge = pop_.edge_of(i);
  w.num_samples = pop_.num_samples(i);
  w.weight_in_edge = pop_.weight_in_edge(i);
  w.weight_global = pop_.weight_global(i);
  w.model = std::move(model);

  Reader r{blob.data(), blob.data() + blob.size()};
  r.vec(w.x);
  r.vec(w.y);
  r.vec(w.v);
  r.vec(w.grad);
  w.last_loss = r.scalar();
  r.vec(w.sum_grad);
  r.vec(w.sum_y);
  r.vec(w.sum_v);
  const std::uint64_t extras = r.u64();
  w.extra.clear();
  for (std::uint64_t e = 0; e < extras; ++e) {
    std::string name(r.u64(), '\0');
    r.take(name.data(), name.size());
    r.vec(w.extra[name]);
  }
  w.batcher = std::make_unique<data::Batcher>(data_->train, r.batcher(),
                                              run_.batch_size);
  w.aux_batcher = std::make_unique<data::Batcher>(data_->train, r.batcher(),
                                                  run_.batch_size);
  const std::uint64_t stamp = r.u64();
  HFL_CHECK(r.p == r.end, "worker spill blob has trailing bytes");

  // Absent-policy replay: the worker missed every interval from its spill
  // stamp up to (not including) the current one. A dense run applies the
  // policy once at the end of each missed interval, and nothing else
  // touches an absent worker's state in between, so replaying the exact
  // per-interval sequence here is bit-identical (kDecay's repeated
  // y ← x + d(y − x) does NOT fold into a single d^m application in
  // floating point — the loop is the contract). kReset is idempotent and
  // applied once; kHold holds, which spilled state already does.
  HFL_CHECK(stamp <= clock_, "worker spill stamp is from the future");
  const std::uint64_t missed = clock_ - stamp;
  if (missed > 0) {
    switch (replay_policy_) {
      case fl::AbsentPolicy::kHold:
        break;
      case fl::AbsentPolicy::kReset:
        fl::apply_absent_policy(w, replay_policy_, replay_decay_);
        break;
      case fl::AbsentPolicy::kDecay:
        for (std::uint64_t m = 0; m < missed; ++m) {
          fl::apply_absent_policy(w, replay_policy_, replay_decay_);
        }
        break;
    }
  }
}

void CohortStore::publish_gauges() {
  if (!obs::enabled()) return;
  obs::Registry& reg = obs::Registry::global();
  reg.gauge("pop.population").set(static_cast<double>(pop_.num_workers()));
  reg.gauge("pop.cohort_size").set(static_cast<double>(cfg_.cohort_size));
  reg.gauge("pop.materialized_workers")
      .set(static_cast<double>(pool_.size()));
  reg.gauge("pop.materialized_peak")
      .set_max(static_cast<double>(peak_materialized_));
  reg.gauge("pop.slab.bytes").set(static_cast<double>(slab_.bytes()));
  reg.gauge("pop.slab.peak_bytes")
      .set_max(static_cast<double>(slab_.peak_bytes()));
}

}  // namespace hfl::pop
