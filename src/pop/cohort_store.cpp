#include "src/pop/cohort_store.h"

#include <algorithm>
#include <cstring>
#include <numeric>

#include "src/common/errors.h"
#include "src/obs/registry.h"

namespace hfl::pop {

namespace {

// Per-round sampling streams: child = root.fork_nth(kCohortSampleTag, k).
// The tag keeps cohort draws disjoint from the worker streams
// (fork_nth(1000 + i, 2 + i)) and the init stream (fork(0x1217)).
constexpr std::uint64_t kCohortSampleTag = 0xC0480A17ull;

// ---- spill blob encoding (little-endian host layout, memcpy'd) ----------

void put_bytes(std::vector<char>& b, const void* p, std::size_t n) {
  const char* c = static_cast<const char*>(p);
  b.insert(b.end(), c, c + n);
}

void put_u64(std::vector<char>& b, std::uint64_t v) {
  put_bytes(b, &v, sizeof v);
}

void put_scalar(std::vector<char>& b, Scalar v) {
  put_bytes(b, &v, sizeof v);
}

void put_vec(std::vector<char>& b, const Vec& v) {
  put_u64(b, v.size());
  if (!v.empty()) put_bytes(b, v.data(), v.size() * sizeof(Scalar));
}

void put_rng(std::vector<char>& b, const RngState& s) {
  for (const std::uint64_t word : s.s) put_u64(b, word);
  put_u64(b, s.fork_counter);
}

void put_batcher(std::vector<char>& b, const data::BatcherState& s) {
  put_u64(b, s.cursor);
  put_rng(b, s.rng);
  put_u64(b, s.indices.size());
  for (const std::size_t i : s.indices) {
    put_u64(b, static_cast<std::uint64_t>(i));
  }
}

struct Reader {
  const char* p;
  const char* end;

  void take(void* out, std::size_t n) {
    HFL_CHECK(n <= static_cast<std::size_t>(end - p),
              "truncated worker spill blob");
    std::memcpy(out, p, n);
    p += n;
  }
  std::uint64_t u64() {
    std::uint64_t v;
    take(&v, sizeof v);
    return v;
  }
  Scalar scalar() {
    Scalar v;
    take(&v, sizeof v);
    return v;
  }
  void vec(Vec& v) {
    v.resize(u64());
    if (!v.empty()) take(v.data(), v.size() * sizeof(Scalar));
  }
  RngState rng() {
    RngState s;
    for (std::uint64_t& word : s.s) word = u64();
    s.fork_counter = u64();
    return s;
  }
  data::BatcherState batcher() {
    data::BatcherState s;
    s.cursor = u64();
    s.rng = rng();
    s.indices.resize(u64());
    for (std::size_t& i : s.indices) i = u64();
    return s;
  }
};

}  // namespace

CohortStore::CohortStore(nn::ModelFactory factory, const data::TrainTest& data,
                         const data::Partition& partition,
                         const fl::Topology& topo, const fl::RunConfig& run,
                         VirtConfig cfg)
    : factory_(std::move(factory)),
      data_(&data),
      partition_(&partition),
      topo_(&topo),
      run_(run),
      cfg_(std::move(cfg)),
      pop_(topo, partition),
      root_(run.seed),
      slab_(cfg_.slab),
      alias_(pop_.base_weights()),
      fenwick_(pop_.base_weights()),
      view_(&pool_, pop_.num_workers(), &slot_of_id_) {
  HFL_CHECK(cfg_.cohort_size <= pop_.num_workers(),
            "cohort size exceeds the population");
  slot_of_id_.assign(pop_.num_workers(), fl::WorkerSet::kNoSlot);
}

void CohortStore::begin_run(const Vec& x0) {
  x0_ = x0;
  pool_.clear();
  slot_of_id_.assign(pop_.num_workers(), fl::WorkerSet::kNoSlot);
  slab_.clear();
  peak_materialized_ = 0;
  publish_gauges();
}

void CohortStore::sample_cohort(std::size_t k, std::vector<fl::WorkerId>& ids,
                                std::vector<Scalar>& multiplicity) {
  HFL_CHECK(sampling(), "sample_cohort on a full-population store");
  Rng round = root_.fork_nth(kCohortSampleTag, k);
  ids.clear();
  multiplicity.clear();
  if (cfg_.with_replacement) {
    // m_i draws of worker i contribute mass m_i · D_i to the round's
    // aggregation (the roster scale), keeping the estimator unbiased.
    std::vector<fl::WorkerId> draws(cfg_.cohort_size);
    for (fl::WorkerId& d : draws) {
      d = static_cast<fl::WorkerId>(alias_.draw(round));
    }
    std::sort(draws.begin(), draws.end());
    for (std::size_t i = 0; i < draws.size();) {
      std::size_t j = i;
      while (j < draws.size() && draws[j] == draws[i]) ++j;
      ids.push_back(draws[i]);
      multiplicity.push_back(static_cast<Scalar>(j - i));
      i = j;
    }
  } else {
    std::vector<std::uint32_t> draws = fenwick_.sample(cfg_.cohort_size, round);
    std::sort(draws.begin(), draws.end());
    ids.assign(draws.begin(), draws.end());
    multiplicity.assign(ids.size(), 1.0);
  }
}

std::vector<fl::WorkerId> CohortStore::set_cohort(
    const std::vector<fl::WorkerId>& ids) {
  for (std::size_t i = 0; i < ids.size(); ++i) {
    HFL_CHECK(ids[i] < pop_.num_workers(), "cohort id out of range");
    HFL_CHECK(i == 0 || ids[i - 1] < ids[i],
              "cohort ids must be ascending and unique");
  }

  // Spill every current worker that is not in the new cohort (both lists
  // are ascending, so one merge pass finds the departures).
  std::size_t j = 0;
  for (const fl::WorkerState& w : pool_) {
    while (j < ids.size() && ids[j] < w.id) ++j;
    if (j == ids.size() || ids[j] != w.id) spill(w);
  }

  // Assemble the new cohort: keep stayers (move), restore returnees,
  // create first-timers.
  std::vector<fl::WorkerState> next;
  next.reserve(ids.size());
  std::vector<fl::WorkerId> fresh;
  for (const fl::WorkerId id : ids) {
    const std::uint32_t slot = slot_of_id_[id];
    if (slot != fl::WorkerSet::kNoSlot) {
      next.push_back(std::move(pool_[slot]));
      continue;
    }
    fl::WorkerState w;
    if (slab_.contains(id)) {
      restore(w, id);
    } else {
      materialize_fresh(w, id);
      fresh.push_back(id);
    }
    next.push_back(std::move(w));
  }

  for (const fl::WorkerState& w : pool_) {
    slot_of_id_[w.id] = fl::WorkerSet::kNoSlot;
  }
  pool_ = std::move(next);
  for (std::size_t s = 0; s < pool_.size(); ++s) {
    slot_of_id_[pool_[s].id] = static_cast<std::uint32_t>(s);
  }
  peak_materialized_ = std::max(peak_materialized_, pool_.size());
  publish_gauges();
  return fresh;
}

void CohortStore::materialize_fresh(fl::WorkerState& w, fl::WorkerId id) {
  HFL_CHECK(!x0_.empty(), "set_cohort before begin_run");
  const std::size_t n = x0_.size();
  const std::size_t i = id;
  w.id = id;
  w.edge = pop_.edge_of(i);
  w.num_samples = pop_.num_samples(i);
  w.weight_in_edge = pop_.weight_in_edge(i);
  w.weight_global = pop_.weight_global(i);
  w.x = x0_;
  w.y = x0_;
  w.v.assign(n, 0.0);
  w.grad.assign(n, 0.0);
  w.sum_grad.assign(n, 0.0);
  w.sum_y.assign(n, 0.0);
  w.sum_v.assign(n, 0.0);
  w.model = factory_();
  // Stream lockstep with the dense engine: worker i's stream is the
  // (2 + i)-th fork of the run root (fork 1 is the init-model stream) —
  // see Engine::build_states.
  Rng wrng = root_.fork_nth(1000 + i, 2 + i);
  w.batcher = std::make_unique<data::Batcher>(
      data_->train, (*partition_)[i], run_.batch_size, wrng.fork(1));
  w.aux_batcher = std::make_unique<data::Batcher>(
      data_->train, (*partition_)[i], run_.batch_size, wrng.fork(2));
  if (obs::enabled()) {
    obs::Registry::global().counter("pop.materializations").add();
  }
}

void CohortStore::spill(const fl::WorkerState& w) {
  blob_.clear();
  put_vec(blob_, w.x);
  put_vec(blob_, w.y);
  put_vec(blob_, w.v);
  put_vec(blob_, w.grad);
  put_scalar(blob_, w.last_loss);
  put_vec(blob_, w.sum_grad);
  put_vec(blob_, w.sum_y);
  put_vec(blob_, w.sum_v);
  put_u64(blob_, w.extra.size());
  for (const auto& [name, vec] : w.extra) {  // std::map: sorted, stable
    put_u64(blob_, name.size());
    put_bytes(blob_, name.data(), name.size());
    put_vec(blob_, vec);
  }
  put_batcher(blob_, w.batcher->save_state());
  put_batcher(blob_, w.aux_batcher->save_state());
  slab_.put(w.id, blob_);
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("pop.spills").add();
    reg.counter("pop.spill_bytes").add(blob_.size());
  }
}

void CohortStore::restore(fl::WorkerState& w, fl::WorkerId id) {
  // Descriptor fields and the scratch model are rebuilt (the model holds no
  // cross-batch state); everything mutable comes back byte for byte.
  const std::size_t i = id;
  w.id = id;
  w.edge = pop_.edge_of(i);
  w.num_samples = pop_.num_samples(i);
  w.weight_in_edge = pop_.weight_in_edge(i);
  w.weight_global = pop_.weight_global(i);
  w.model = factory_();

  slab_.get(id, blob_);
  Reader r{blob_.data(), blob_.data() + blob_.size()};
  r.vec(w.x);
  r.vec(w.y);
  r.vec(w.v);
  r.vec(w.grad);
  w.last_loss = r.scalar();
  r.vec(w.sum_grad);
  r.vec(w.sum_y);
  r.vec(w.sum_v);
  const std::uint64_t extras = r.u64();
  w.extra.clear();
  for (std::uint64_t e = 0; e < extras; ++e) {
    std::string name(r.u64(), '\0');
    r.take(name.data(), name.size());
    r.vec(w.extra[name]);
  }
  w.batcher = std::make_unique<data::Batcher>(data_->train, r.batcher(),
                                              run_.batch_size);
  w.aux_batcher = std::make_unique<data::Batcher>(data_->train, r.batcher(),
                                                  run_.batch_size);
  HFL_CHECK(r.p == r.end, "worker spill blob has trailing bytes");
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("pop.restores").add();
    reg.counter("pop.restore_bytes").add(blob_.size());
  }
}

void CohortStore::publish_gauges() {
  if (!obs::enabled()) return;
  obs::Registry& reg = obs::Registry::global();
  reg.gauge("pop.population").set(static_cast<double>(pop_.num_workers()));
  reg.gauge("pop.cohort_size").set(static_cast<double>(cfg_.cohort_size));
  reg.gauge("pop.materialized_workers")
      .set(static_cast<double>(pool_.size()));
  reg.gauge("pop.materialized_peak")
      .set_max(static_cast<double>(peak_materialized_));
  reg.gauge("pop.slab.bytes").set(static_cast<double>(slab_.bytes()));
  reg.gauge("pop.slab.peak_bytes")
      .set_max(static_cast<double>(slab_.peak_bytes()));
}

}  // namespace hfl::pop
