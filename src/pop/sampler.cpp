#include "src/pop/sampler.h"

#include <cmath>

#include "src/common/errors.h"

namespace hfl::pop {

namespace {

Scalar checked_total(const std::vector<Scalar>& weights) {
  HFL_CHECK(!weights.empty(), "sampler needs at least one weight");
  Scalar total = 0;
  for (const Scalar w : weights) {
    HFL_CHECK(std::isfinite(w) && w >= 0.0,
              "sampler weights must be finite and non-negative");
    total += w;
  }
  HFL_CHECK(total > 0.0, "sampler weights must not all be zero");
  return total;
}

}  // namespace

AliasSampler::AliasSampler(const std::vector<Scalar>& weights) {
  const std::size_t n = weights.size();
  HFL_CHECK(n < 0xFFFFFFFFull, "alias table indices are 32-bit");
  const Scalar total = checked_total(weights);

  prob_.assign(n, 0.0);
  alias_.assign(n, 0);

  // Vose's stable construction: scale every weight to mean 1, then pair each
  // under-full column with an over-full donor.
  std::vector<Scalar> scaled(n);
  for (std::size_t i = 0; i < n; ++i) {
    scaled[i] = weights[i] * static_cast<Scalar>(n) / total;
  }
  std::vector<std::uint32_t> small, large;
  small.reserve(n);
  large.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(static_cast<std::uint32_t>(i));
  }
  while (!small.empty() && !large.empty()) {
    const std::uint32_t s = small.back();
    small.pop_back();
    const std::uint32_t l = large.back();
    large.pop_back();
    prob_[s] = scaled[s];
    alias_[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers sit at (numerically) exactly 1: always accept.
  for (const std::uint32_t i : large) prob_[i] = 1.0;
  for (const std::uint32_t i : small) prob_[i] = 1.0;
}

FenwickSampler::FenwickSampler(const std::vector<Scalar>& weights)
    : weight_(weights) {
  const std::size_t n = weights.size();
  HFL_CHECK(n < 0xFFFFFFFFull, "sampler indices are 32-bit");
  checked_total(weights);
  for (const Scalar w : weights) num_positive_ += w > 0.0 ? 1 : 0;

  tree_.assign(n + 1, 0.0);
  for (std::size_t i = 0; i < n; ++i) add(i, weight_[i]);

  mask_ = 1;
  while ((mask_ << 1) <= n) mask_ <<= 1;
}

void FenwickSampler::add(std::size_t i, Scalar delta) {
  for (std::size_t j = i + 1; j < tree_.size(); j += j & (~j + 1)) {
    tree_[j] += delta;
  }
}

Scalar FenwickSampler::total() const {
  Scalar t = 0;
  for (std::size_t j = tree_.size() - 1; j > 0; j &= j - 1) t += tree_[j];
  return t;
}

std::size_t FenwickSampler::find(Scalar target) const {
  const std::size_t n = weight_.size();
  std::size_t pos = 0;
  for (std::size_t step = mask_; step > 0; step >>= 1) {
    const std::size_t next = pos + step;
    if (next <= n && tree_[next] <= target) {
      target -= tree_[next];
      pos = next;
    }
  }
  // pos = count of indices whose cumulative mass is <= target, i.e. the
  // 0-based winner — except when floating-point roundoff pushes the target
  // past the live total; clamp back onto the last live index.
  std::size_t i = pos < n ? pos : n - 1;
  while (i > 0 && weight_[i] <= 0.0) --i;
  while (i < n - 1 && weight_[i] <= 0.0) ++i;
  return i;
}

std::vector<std::uint32_t> FenwickSampler::sample(std::size_t k, Rng& rng) {
  HFL_CHECK(k <= num_positive_,
            "cannot draw " + std::to_string(k) +
                " distinct workers from a population with " +
                std::to_string(num_positive_) + " positive weights");
  std::vector<std::uint32_t> out;
  out.reserve(k);
  for (std::size_t d = 0; d < k; ++d) {
    const Scalar live = total();
    const std::size_t i = find(rng.uniform() * live);
    out.push_back(static_cast<std::uint32_t>(i));
    add(i, -weight_[i]);
    weight_[i] = -weight_[i];  // negated = tombstone, restored below
  }
  for (const std::uint32_t i : out) {
    weight_[i] = -weight_[i];
    add(i, weight_[i]);
  }
  return out;
}

}  // namespace hfl::pop
