// Exact weighted cohort-sampling primitives for virtualized populations.
//
// Cohort selection over a million-worker population must be (a) exact —
// worker i's inclusion probability proportional to its data mass D_i, not an
// approximation that would bias the recovered global objective — and (b)
// deterministic in (seed, round) alone, so a virtualized run replays the
// identical cohort sequence at any thread count. Two primitives cover the
// two sampling semantics:
//
//   * `AliasSampler` — Vose's alias method. O(n) construction, O(1) per
//     draw; i.i.d. WITH-replacement draws from the exact weight
//     distribution. A with-replacement cohort feeds multiplicities into the
//     aggregation weights (a worker drawn m times carries mass m·D_i).
//
//   * `FenwickSampler` — a Fenwick (binary-indexed) tree over the weights.
//     O(k log n) per cohort; successive draws WITHOUT replacement (each
//     draw removes the winner's mass before the next), the standard
//     sequential weighted-WOR scheme. The removed mass is restored after
//     every cohort, so one sampler serves the whole run.
//
// Both consume draws from a caller-supplied `Rng` and touch no global state;
// the cohort store forks one child stream per round (Rng::fork_nth keyed on
// the round index), which is what makes cohorts independent of each other
// and of every other stream in the engine.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/common/types.h"

namespace hfl::pop {

// Vose alias table: O(1) exact draws from a fixed discrete distribution.
class AliasSampler {
 public:
  // `weights` must be non-empty, non-negative, with a positive finite sum.
  explicit AliasSampler(const std::vector<Scalar>& weights);

  std::size_t size() const { return prob_.size(); }

  // One exact draw: P(i) = weights[i] / Σ weights. Consumes one
  // uniform_index and one uniform from `rng` (fixed draw shape, so streams
  // stay aligned across configurations).
  std::size_t draw(Rng& rng) const {
    const std::size_t col = rng.uniform_index(prob_.size());
    return rng.uniform() < prob_[col] ? col
                                      : static_cast<std::size_t>(alias_[col]);
  }

 private:
  std::vector<Scalar> prob_;          // column acceptance thresholds
  std::vector<std::uint32_t> alias_;  // column fallback index
};

// Fenwick-tree sequential sampler: exact weighted draws WITHOUT
// replacement. Reusable — `sample` restores the removed mass before
// returning.
class FenwickSampler {
 public:
  // `weights` must be non-empty and non-negative with a positive sum.
  explicit FenwickSampler(const std::vector<Scalar>& weights);

  std::size_t size() const { return weight_.size(); }

  // Draw `k` distinct indices by successive weighted draws without
  // replacement (k ≤ the number of positive-weight entries). The result is
  // in DRAW order, not sorted; consumes exactly k uniforms from `rng`.
  std::vector<std::uint32_t> sample(std::size_t k, Rng& rng);

 private:
  void add(std::size_t i, Scalar delta);  // 0-based point update
  Scalar total() const;                   // current sum of live weights
  // Largest index whose prefix-sum (exclusive) is <= target; the classic
  // Fenwick descend, O(log n).
  std::size_t find(Scalar target) const;

  std::vector<Scalar> weight_;  // current per-index weights
  std::vector<Scalar> tree_;    // 1-based Fenwick partial sums
  std::size_t mask_ = 0;        // highest power of two <= size
  std::size_t num_positive_ = 0;
};

}  // namespace hfl::pop
