#include "src/pop/slab.h"

#include <cstdio>

#include "src/common/errors.h"

namespace hfl::pop {

Slab::Slab(SlabConfig cfg) : cfg_(std::move(cfg)) {
  if (cfg_.backend == SlabConfig::Backend::kFile) {
    HFL_CHECK(!cfg_.path.empty(), "file slab needs a path");
    open_file();
  }
}

void Slab::open_file() {
  if (file_.is_open()) file_.close();
  // Truncate: a slab never outlives the run that filled it.
  file_.open(cfg_.path, std::ios::binary | std::ios::in | std::ios::out |
                            std::ios::trunc);
  HFL_CHECK(file_.is_open(), "cannot open slab spill file " + cfg_.path);
  file_end_ = 0;
}

void Slab::clear() {
  index_.clear();
  blobs_.clear();
  if (cfg_.backend == SlabConfig::Backend::kFile) open_file();
  bytes_ = 0;
  peak_bytes_ = 0;
  bytes_written_ = 0;
  bytes_read_ = 0;
}

void Slab::put(std::uint32_t id, const std::vector<char>& blob) {
  bytes_written_ += blob.size();
  if (cfg_.backend == SlabConfig::Backend::kMemory) {
    auto& slot = blobs_[id];
    bytes_ -= slot.size();
    slot = blob;
    bytes_ += slot.size();
    index_[id] = {0, static_cast<std::uint64_t>(blob.size())};
  } else {
    // Append-only: a rewrite abandons the old extent (dead space is the
    // cost of never seeking backwards on the write path).
    file_.seekp(static_cast<std::streamoff>(file_end_));
    file_.write(blob.data(), static_cast<std::streamsize>(blob.size()));
    HFL_CHECK(file_.good(), "slab spill write failed: " + cfg_.path);
    index_[id] = {file_end_, static_cast<std::uint64_t>(blob.size())};
    file_end_ += blob.size();
    bytes_ = file_end_;
  }
  if (bytes_ > peak_bytes_) peak_bytes_ = bytes_;
}

void Slab::get(std::uint32_t id, std::vector<char>& out) {
  const auto it = index_.find(id);
  HFL_CHECK(it != index_.end(),
            "worker " + std::to_string(id) + " has no spilled state");
  out.resize(it->second.length);
  bytes_read_ += it->second.length;
  if (cfg_.backend == SlabConfig::Backend::kMemory) {
    const auto& blob = blobs_.at(id);
    out.assign(blob.begin(), blob.end());
  } else {
    file_.seekg(static_cast<std::streamoff>(it->second.offset));
    file_.read(out.data(), static_cast<std::streamsize>(out.size()));
    HFL_CHECK(file_.good(), "slab spill read failed: " + cfg_.path);
  }
}

}  // namespace hfl::pop
