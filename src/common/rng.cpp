#include "src/common/rng.h"

#include <cmath>

#include "src/common/errors.h"

namespace hfl {

namespace {

// SplitMix64: used for seeding and for deriving fork seeds.
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

Scalar Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<Scalar>(next_u64() >> 11) * 0x1.0p-53;
}

Scalar Rng::uniform(Scalar lo, Scalar hi) { return lo + (hi - lo) * uniform(); }

std::size_t Rng::uniform_index(std::size_t n) {
  HFL_CHECK(n > 0, "uniform_index requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t bound = n;
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t r;
  do {
    r = next_u64();
  } while (r >= limit);
  return static_cast<std::size_t>(r % bound);
}

Scalar Rng::normal() {
  // Box–Muller; uniform() can return 0 so shift into (0, 1].
  const Scalar u1 = 1.0 - uniform();
  const Scalar u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

Scalar Rng::normal(Scalar mean, Scalar stddev) {
  return mean + stddev * normal();
}

Rng Rng::fork(std::uint64_t tag) {
  std::uint64_t mix = s_[0] ^ rotl(s_[3], 13) ^ (tag * 0x9E3779B97F4A7C15ULL) ^
                      (++fork_counter_);
  return Rng(splitmix64(mix));
}

Rng Rng::fork_nth(std::uint64_t tag, std::uint64_t nth) const {
  // Must mirror fork() exactly: same mix, but with the caller-supplied
  // counter value and no mutation.
  std::uint64_t mix =
      s_[0] ^ rotl(s_[3], 13) ^ (tag * 0x9E3779B97F4A7C15ULL) ^ nth;
  return Rng(splitmix64(mix));
}

RngState Rng::save_state() const {
  RngState st;
  for (int i = 0; i < 4; ++i) st.s[i] = s_[i];
  st.fork_counter = fork_counter_;
  return st;
}

Rng Rng::from_state(const RngState& state) {
  Rng r(0);
  for (int i = 0; i < 4; ++i) r.s_[i] = state.s[i];
  r.fork_counter_ = state.fork_counter;
  return r;
}

}  // namespace hfl
