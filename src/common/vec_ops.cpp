#include "src/common/vec_ops.h"

#include <algorithm>
#include <cmath>

#include "src/common/errors.h"

namespace hfl::vec {

void axpy(Scalar a, std::span<const Scalar> x, std::span<Scalar> y) {
  HFL_CHECK(x.size() == y.size(), "axpy size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

void scale(std::span<Scalar> x, Scalar a) {
  for (auto& v : x) v *= a;
}

void linear_combination(Scalar a, std::span<const Scalar> x, Scalar b,
                        std::span<const Scalar> y, std::span<Scalar> out) {
  HFL_CHECK(x.size() == y.size() && x.size() == out.size(),
            "linear_combination size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = a * x[i] + b * y[i];
}

Scalar dot(std::span<const Scalar> x, std::span<const Scalar> y) {
  HFL_CHECK(x.size() == y.size(), "dot size mismatch");
  Scalar acc = 0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

Scalar norm(std::span<const Scalar> x) { return std::sqrt(dot(x, x)); }

Scalar distance(std::span<const Scalar> x, std::span<const Scalar> y) {
  HFL_CHECK(x.size() == y.size(), "distance size mismatch");
  Scalar acc = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const Scalar d = x[i] - y[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

Scalar cosine(std::span<const Scalar> x, std::span<const Scalar> y) {
  const Scalar nx = norm(x);
  const Scalar ny = norm(y);
  constexpr Scalar kEps = 1e-12;
  if (nx < kEps || ny < kEps) return 0.0;
  const Scalar c = dot(x, y) / (nx * ny);
  return std::clamp(c, Scalar{-1}, Scalar{1});
}

namespace {

// Fused single-pass weighted sum: each output tile stays cache-resident
// while every input vector streams through it, instead of one full memory
// pass over `out` per input (which is what an axpy-per-worker loop costs at
// fleet scale). Four inputs fold per pass, quartering the read-modify-write
// traffic on the output tile.
constexpr std::size_t kSumTile = 4096;

// The per-element accumulation below visits inputs in index order with a
// fixed 4-way grouping that depends only on `count`, so any [range_lo,
// range_hi) partition of the output — including the full range — yields
// bit-identical element values. weighted_sum_range relies on this to make
// the engine's parallel reductions independent of thread count.
template <class VecAt>
void weighted_sum_tiled(std::size_t count, std::span<const Scalar> weights,
                        Vec& out, std::size_t range_lo, std::size_t range_hi,
                        VecAt&& vec_at) {
  HFL_CHECK(count > 0, "weighted_sum needs at least one vector");
  HFL_CHECK(count == weights.size(), "weighted_sum weight count");
  const std::size_t n = vec_at(0).size();
  for (std::size_t v = 1; v < count; ++v) {
    HFL_CHECK(vec_at(v).size() == n, "weighted_sum vector size mismatch");
  }
  HFL_CHECK(out.size() == n, "weighted_sum output size mismatch");
  HFL_CHECK(range_lo <= range_hi && range_hi <= n,
            "weighted_sum range out of bounds");
  std::fill(out.begin() + static_cast<std::ptrdiff_t>(range_lo),
            out.begin() + static_cast<std::ptrdiff_t>(range_hi), 0.0);
  Scalar* o = out.data();
  for (std::size_t lo = range_lo; lo < range_hi; lo += kSumTile) {
    const std::size_t hi = std::min(range_hi, lo + kSumTile);
    std::size_t v = 0;
    for (; v + 4 <= count; v += 4) {
      const Scalar w0 = weights[v], w1 = weights[v + 1];
      const Scalar w2 = weights[v + 2], w3 = weights[v + 3];
      const Scalar* x0 = vec_at(v).data();
      const Scalar* x1 = vec_at(v + 1).data();
      const Scalar* x2 = vec_at(v + 2).data();
      const Scalar* x3 = vec_at(v + 3).data();
      for (std::size_t i = lo; i < hi; ++i) {
        o[i] += w0 * x0[i] + w1 * x1[i] + w2 * x2[i] + w3 * x3[i];
      }
    }
    for (; v < count; ++v) {
      const Scalar wv = weights[v];
      const Scalar* x = vec_at(v).data();
      for (std::size_t i = lo; i < hi; ++i) o[i] += wv * x[i];
    }
  }
}

}  // namespace

void weighted_sum(std::span<const Vec* const> vecs,
                  std::span<const Scalar> weights, Vec& out) {
  HFL_CHECK(!vecs.empty(), "weighted_sum needs at least one vector");
  out.resize(vecs[0]->size());
  weighted_sum_tiled(vecs.size(), weights, out, 0, out.size(),
                     [&](std::size_t v) -> const Vec& { return *vecs[v]; });
}

void weighted_sum(const std::vector<Vec>& vecs,
                  std::span<const Scalar> weights, Vec& out) {
  // Indexes the vectors directly — no per-call pointer-array rebuild.
  HFL_CHECK(!vecs.empty(), "weighted_sum needs at least one vector");
  out.resize(vecs[0].size());
  weighted_sum_tiled(vecs.size(), weights, out, 0, out.size(),
                     [&](std::size_t v) -> const Vec& { return vecs[v]; });
}

void weighted_sum_range(std::span<const Vec* const> vecs,
                        std::span<const Scalar> weights, Vec& out,
                        std::size_t lo, std::size_t hi) {
  weighted_sum_tiled(vecs.size(), weights, out, lo, hi,
                     [&](std::size_t v) -> const Vec& { return *vecs[v]; });
}

void fill(std::span<Scalar> x, Scalar value) {
  std::fill(x.begin(), x.end(), value);
}

Scalar max_abs_diff(std::span<const Scalar> x, std::span<const Scalar> y) {
  HFL_CHECK(x.size() == y.size(), "max_abs_diff size mismatch");
  Scalar m = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    m = std::max(m, std::abs(x[i] - y[i]));
  }
  return m;
}

}  // namespace hfl::vec
