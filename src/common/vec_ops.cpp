#include "src/common/vec_ops.h"

#include <algorithm>
#include <cmath>

#include "src/common/errors.h"

namespace hfl::vec {

void axpy(Scalar a, std::span<const Scalar> x, std::span<Scalar> y) {
  HFL_CHECK(x.size() == y.size(), "axpy size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

void scale(std::span<Scalar> x, Scalar a) {
  for (auto& v : x) v *= a;
}

void linear_combination(Scalar a, std::span<const Scalar> x, Scalar b,
                        std::span<const Scalar> y, std::span<Scalar> out) {
  HFL_CHECK(x.size() == y.size() && x.size() == out.size(),
            "linear_combination size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = a * x[i] + b * y[i];
}

Scalar dot(std::span<const Scalar> x, std::span<const Scalar> y) {
  HFL_CHECK(x.size() == y.size(), "dot size mismatch");
  Scalar acc = 0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

Scalar norm(std::span<const Scalar> x) { return std::sqrt(dot(x, x)); }

Scalar distance(std::span<const Scalar> x, std::span<const Scalar> y) {
  HFL_CHECK(x.size() == y.size(), "distance size mismatch");
  Scalar acc = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const Scalar d = x[i] - y[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

Scalar cosine(std::span<const Scalar> x, std::span<const Scalar> y) {
  const Scalar nx = norm(x);
  const Scalar ny = norm(y);
  constexpr Scalar kEps = 1e-12;
  if (nx < kEps || ny < kEps) return 0.0;
  const Scalar c = dot(x, y) / (nx * ny);
  return std::clamp(c, Scalar{-1}, Scalar{1});
}

void weighted_sum(std::span<const Vec* const> vecs,
                  std::span<const Scalar> weights, Vec& out) {
  HFL_CHECK(!vecs.empty(), "weighted_sum needs at least one vector");
  HFL_CHECK(vecs.size() == weights.size(), "weighted_sum weight count");
  const std::size_t n = vecs.front()->size();
  out.assign(n, 0.0);
  for (std::size_t v = 0; v < vecs.size(); ++v) {
    HFL_CHECK(vecs[v]->size() == n, "weighted_sum vector size mismatch");
    axpy(weights[v], *vecs[v], out);
  }
}

void weighted_sum(const std::vector<Vec>& vecs,
                  std::span<const Scalar> weights, Vec& out) {
  std::vector<const Vec*> ptrs;
  ptrs.reserve(vecs.size());
  for (const auto& v : vecs) ptrs.push_back(&v);
  weighted_sum(std::span<const Vec* const>(ptrs), weights, out);
}

void fill(std::span<Scalar> x, Scalar value) {
  std::fill(x.begin(), x.end(), value);
}

Scalar max_abs_diff(std::span<const Scalar> x, std::span<const Scalar> y) {
  HFL_CHECK(x.size() == y.size(), "max_abs_diff size mismatch");
  Scalar m = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    m = std::max(m, std::abs(x[i] - y[i]));
  }
  return m;
}

}  // namespace hfl::vec
