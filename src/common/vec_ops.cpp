#include "src/common/vec_ops.h"

#include <algorithm>
#include <cmath>

#include "src/common/errors.h"

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#define HFL_VEC_AVX2 1
#endif

namespace hfl::vec {

void axpy(Scalar a, std::span<const Scalar> x, std::span<Scalar> y) {
  HFL_CHECK(x.size() == y.size(), "axpy size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += a * x[i];
}

void scale(std::span<Scalar> x, Scalar a) {
  for (auto& v : x) v *= a;
}

void linear_combination(Scalar a, std::span<const Scalar> x, Scalar b,
                        std::span<const Scalar> y, std::span<Scalar> out) {
  HFL_CHECK(x.size() == y.size() && x.size() == out.size(),
            "linear_combination size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) out[i] = a * x[i] + b * y[i];
}

Scalar dot(std::span<const Scalar> x, std::span<const Scalar> y) {
  HFL_CHECK(x.size() == y.size(), "dot size mismatch");
  Scalar acc = 0;
  for (std::size_t i = 0; i < x.size(); ++i) acc += x[i] * y[i];
  return acc;
}

Scalar norm(std::span<const Scalar> x) { return std::sqrt(dot(x, x)); }

Scalar distance(std::span<const Scalar> x, std::span<const Scalar> y) {
  HFL_CHECK(x.size() == y.size(), "distance size mismatch");
  Scalar acc = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const Scalar d = x[i] - y[i];
    acc += d * d;
  }
  return std::sqrt(acc);
}

Scalar cosine(std::span<const Scalar> x, std::span<const Scalar> y) {
  const Scalar nx = norm(x);
  const Scalar ny = norm(y);
  constexpr Scalar kEps = 1e-12;
  if (nx < kEps || ny < kEps) return 0.0;
  const Scalar c = dot(x, y) / (nx * ny);
  return std::clamp(c, Scalar{-1}, Scalar{1});
}

namespace {

// Fused single-pass weighted sum: each output tile stays cache-resident
// while every input vector streams through it, instead of one full memory
// pass over `out` per input (which is what an axpy-per-worker loop costs at
// fleet scale). Four inputs fold per pass, quartering the read-modify-write
// traffic on the output tile.
constexpr std::size_t kSumTile = 4096;

// The per-element accumulation below visits inputs in index order with a
// fixed 4-way grouping that depends only on `count`, so any [range_lo,
// range_hi) partition of the output — including the full range — yields
// bit-identical element values. weighted_sum_range relies on this to make
// the engine's parallel reductions independent of thread count.
template <class VecAt>
void weighted_sum_tiled(std::size_t count, std::span<const Scalar> weights,
                        Vec& out, std::size_t range_lo, std::size_t range_hi,
                        VecAt&& vec_at) {
  HFL_CHECK(count > 0, "weighted_sum needs at least one vector");
  HFL_CHECK(count == weights.size(), "weighted_sum weight count");
  const std::size_t n = vec_at(0).size();
  for (std::size_t v = 1; v < count; ++v) {
    HFL_CHECK(vec_at(v).size() == n, "weighted_sum vector size mismatch");
  }
  HFL_CHECK(out.size() == n, "weighted_sum output size mismatch");
  HFL_CHECK(range_lo <= range_hi && range_hi <= n,
            "weighted_sum range out of bounds");
  std::fill(out.begin() + static_cast<std::ptrdiff_t>(range_lo),
            out.begin() + static_cast<std::ptrdiff_t>(range_hi), 0.0);
  Scalar* o = out.data();
  for (std::size_t lo = range_lo; lo < range_hi; lo += kSumTile) {
    const std::size_t hi = std::min(range_hi, lo + kSumTile);
    std::size_t v = 0;
    for (; v + 4 <= count; v += 4) {
      const Scalar w0 = weights[v], w1 = weights[v + 1];
      const Scalar w2 = weights[v + 2], w3 = weights[v + 3];
      const Scalar* x0 = vec_at(v).data();
      const Scalar* x1 = vec_at(v + 1).data();
      const Scalar* x2 = vec_at(v + 2).data();
      const Scalar* x3 = vec_at(v + 3).data();
      for (std::size_t i = lo; i < hi; ++i) {
        o[i] += w0 * x0[i] + w1 * x1[i] + w2 * x2[i] + w3 * x3[i];
      }
    }
    for (; v < count; ++v) {
      const Scalar wv = weights[v];
      const Scalar* x = vec_at(v).data();
      for (std::size_t i = lo; i < hi; ++i) o[i] += wv * x[i];
    }
  }
}

}  // namespace

void weighted_sum(std::span<const Vec* const> vecs,
                  std::span<const Scalar> weights, Vec& out) {
  HFL_CHECK(!vecs.empty(), "weighted_sum needs at least one vector");
  out.resize(vecs[0]->size());
  weighted_sum_tiled(vecs.size(), weights, out, 0, out.size(),
                     [&](std::size_t v) -> const Vec& { return *vecs[v]; });
}

void weighted_sum(const std::vector<Vec>& vecs,
                  std::span<const Scalar> weights, Vec& out) {
  // Indexes the vectors directly — no per-call pointer-array rebuild.
  HFL_CHECK(!vecs.empty(), "weighted_sum needs at least one vector");
  out.resize(vecs[0].size());
  weighted_sum_tiled(vecs.size(), weights, out, 0, out.size(),
                     [&](std::size_t v) -> const Vec& { return vecs[v]; });
}

void weighted_sum_range(std::span<const Vec* const> vecs,
                        std::span<const Scalar> weights, Vec& out,
                        std::size_t lo, std::size_t hi) {
  weighted_sum_tiled(vecs.size(), weights, out, lo, hi,
                     [&](std::size_t v) -> const Vec& { return *vecs[v]; });
}

void fill(std::span<Scalar> x, Scalar value) {
  std::fill(x.begin(), x.end(), value);
}

Scalar max_abs_diff(std::span<const Scalar> x, std::span<const Scalar> y) {
  HFL_CHECK(x.size() == y.size(), "max_abs_diff size mismatch");
  Scalar m = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    m = std::max(m, std::abs(x[i] - y[i]));
  }
  return m;
}

// ---------------------------------------------------------------------------
// Fused parameter-plane kernels. Every kernel pairs a 4-wide AVX2+FMA body
// with a scalar tail built from std::fma so the tail reproduces the vector
// lanes' rounding exactly; without AVX2 the std::fma loop is the whole
// kernel. All are elementwise (no reductions), hence partition-invariant.
// ---------------------------------------------------------------------------

void axpby(Scalar a, std::span<const Scalar> x, Scalar b,
           std::span<Scalar> y) {
  HFL_CHECK(x.size() == y.size(), "axpby size mismatch");
  std::size_t i = 0;
#ifdef HFL_VEC_AVX2
  const __m256d va = _mm256_set1_pd(a);
  const __m256d vb = _mm256_set1_pd(b);
  for (; i + 4 <= x.size(); i += 4) {
    const __m256d vx = _mm256_loadu_pd(x.data() + i);
    const __m256d vy = _mm256_loadu_pd(y.data() + i);
    _mm256_storeu_pd(y.data() + i,
                     _mm256_fmadd_pd(va, vx, _mm256_mul_pd(vb, vy)));
  }
#endif
  for (; i < x.size(); ++i) y[i] = std::fma(a, x[i], b * y[i]);
}

void scale_add_scale(std::span<Scalar> x, Scalar a,
                     std::span<const Scalar> y, Scalar b) {
  // FP addition is commutative bitwise, so b*y + a*x == a*x + b*y.
  axpby(b, y, a, x);
}

void momentum_step(std::span<Scalar> m, std::span<const Scalar> g,
                   Scalar gamma, std::span<Scalar> p, Scalar eta) {
  HFL_CHECK(m.size() == g.size() && m.size() == p.size(),
            "momentum_step size mismatch");
  std::size_t i = 0;
#ifdef HFL_VEC_AVX2
  const __m256d vgamma = _mm256_set1_pd(gamma);
  const __m256d vneta = _mm256_set1_pd(-eta);
  for (; i + 4 <= m.size(); i += 4) {
    const __m256d vm = _mm256_fmadd_pd(vgamma, _mm256_loadu_pd(m.data() + i),
                                       _mm256_loadu_pd(g.data() + i));
    _mm256_storeu_pd(m.data() + i, vm);
    _mm256_storeu_pd(p.data() + i,
                     _mm256_fmadd_pd(vneta, vm, _mm256_loadu_pd(p.data() + i)));
  }
#endif
  for (; i < m.size(); ++i) {
    const Scalar mi = std::fma(gamma, m[i], g[i]);
    m[i] = mi;
    p[i] = std::fma(-eta, mi, p[i]);
  }
}

void decay_toward(std::span<Scalar> y, std::span<const Scalar> x, Scalar d) {
  HFL_CHECK(x.size() == y.size(), "decay_toward size mismatch");
  std::size_t i = 0;
#ifdef HFL_VEC_AVX2
  const __m256d vd = _mm256_set1_pd(d);
  for (; i + 4 <= y.size(); i += 4) {
    const __m256d vx = _mm256_loadu_pd(x.data() + i);
    const __m256d vy = _mm256_loadu_pd(y.data() + i);
    _mm256_storeu_pd(y.data() + i,
                     _mm256_fmadd_pd(vd, _mm256_sub_pd(vy, vx), vx));
  }
#endif
  for (; i < y.size(); ++i) y[i] = std::fma(d, y[i] - x[i], x[i]);
}

void extrapolate_update(std::span<const Scalar> cur, std::span<Scalar> prev,
                        Scalar gamma, std::span<Scalar> out) {
  HFL_CHECK(cur.size() == prev.size() && cur.size() == out.size(),
            "extrapolate_update size mismatch");
  std::size_t i = 0;
#ifdef HFL_VEC_AVX2
  const __m256d vgamma = _mm256_set1_pd(gamma);
  for (; i + 4 <= cur.size(); i += 4) {
    const __m256d vc = _mm256_loadu_pd(cur.data() + i);
    const __m256d vp = _mm256_loadu_pd(prev.data() + i);
    _mm256_storeu_pd(out.data() + i,
                     _mm256_fmadd_pd(vgamma, _mm256_sub_pd(vc, vp), vc));
    _mm256_storeu_pd(prev.data() + i, vc);
  }
#endif
  for (; i < cur.size(); ++i) {
    const Scalar c = cur[i];
    out[i] = std::fma(gamma, c - prev[i], c);
    prev[i] = c;
  }
}

void nag_step(std::span<Scalar> x, std::span<Scalar> y, std::span<Scalar> v,
              std::span<const Scalar> grad, Scalar eta, Scalar gamma) {
  HFL_CHECK(x.size() == y.size() && x.size() == v.size() &&
                x.size() == grad.size(),
            "nag_step size mismatch");
  std::size_t i = 0;
#ifdef HFL_VEC_AVX2
  const __m256d vneta = _mm256_set1_pd(-eta);
  const __m256d vgamma = _mm256_set1_pd(gamma);
  for (; i + 4 <= x.size(); i += 4) {
    const __m256d vyn = _mm256_fmadd_pd(vneta, _mm256_loadu_pd(grad.data() + i),
                                        _mm256_loadu_pd(x.data() + i));
    const __m256d vvn = _mm256_sub_pd(vyn, _mm256_loadu_pd(y.data() + i));
    _mm256_storeu_pd(y.data() + i, vyn);
    _mm256_storeu_pd(v.data() + i, vvn);
    _mm256_storeu_pd(x.data() + i, _mm256_fmadd_pd(vgamma, vvn, vyn));
  }
#endif
  for (; i < x.size(); ++i) {
    const Scalar y_new = std::fma(-eta, grad[i], x[i]);
    const Scalar v_new = y_new - y[i];
    y[i] = y_new;
    v[i] = v_new;
    x[i] = std::fma(gamma, v_new, y_new);
  }
}

void nag_step_accumulate(std::span<Scalar> x, std::span<Scalar> y,
                         std::span<Scalar> v, std::span<const Scalar> grad,
                         Scalar eta, Scalar gamma, std::span<Scalar> sum_grad,
                         std::span<Scalar> sum_y, std::span<Scalar> sum_v) {
  HFL_CHECK(x.size() == y.size() && x.size() == v.size() &&
                x.size() == grad.size() && x.size() == sum_grad.size() &&
                x.size() == sum_y.size() && x.size() == sum_v.size(),
            "nag_step_accumulate size mismatch");
  std::size_t i = 0;
#ifdef HFL_VEC_AVX2
  const __m256d vneta = _mm256_set1_pd(-eta);
  const __m256d vgamma = _mm256_set1_pd(gamma);
  for (; i + 4 <= x.size(); i += 4) {
    const __m256d vg = _mm256_loadu_pd(grad.data() + i);
    const __m256d vy = _mm256_loadu_pd(y.data() + i);
    _mm256_storeu_pd(sum_grad.data() + i,
                     _mm256_add_pd(_mm256_loadu_pd(sum_grad.data() + i), vg));
    _mm256_storeu_pd(sum_y.data() + i,
                     _mm256_add_pd(_mm256_loadu_pd(sum_y.data() + i), vy));
    const __m256d vyn = _mm256_fmadd_pd(vneta, vg,
                                        _mm256_loadu_pd(x.data() + i));
    const __m256d vvn = _mm256_sub_pd(vyn, vy);
    _mm256_storeu_pd(y.data() + i, vyn);
    _mm256_storeu_pd(v.data() + i, vvn);
    _mm256_storeu_pd(x.data() + i, _mm256_fmadd_pd(vgamma, vvn, vyn));
    _mm256_storeu_pd(sum_v.data() + i,
                     _mm256_add_pd(_mm256_loadu_pd(sum_v.data() + i), vvn));
  }
#endif
  for (; i < x.size(); ++i) {
    sum_grad[i] += grad[i];
    sum_y[i] += y[i];  // pre-update y, matching the unfused pass order
    const Scalar y_new = std::fma(-eta, grad[i], x[i]);
    const Scalar v_new = y_new - y[i];
    y[i] = y_new;
    v[i] = v_new;
    x[i] = std::fma(gamma, v_new, y_new);
    sum_v[i] += v_new;
  }
}

void slowmo_step(std::span<Scalar> x, std::span<const Scalar> agg,
                 std::span<Scalar> m, Scalar beta, Scalar lr) {
  HFL_CHECK(x.size() == agg.size() && x.size() == m.size(),
            "slowmo_step size mismatch");
  std::size_t i = 0;
#ifdef HFL_VEC_AVX2
  const __m256d vbeta = _mm256_set1_pd(beta);
  const __m256d vnlr = _mm256_set1_pd(-lr);
  for (; i + 4 <= x.size(); i += 4) {
    const __m256d vx = _mm256_loadu_pd(x.data() + i);
    const __m256d vdelta = _mm256_sub_pd(vx, _mm256_loadu_pd(agg.data() + i));
    const __m256d vm =
        _mm256_fmadd_pd(vbeta, _mm256_loadu_pd(m.data() + i), vdelta);
    _mm256_storeu_pd(m.data() + i, vm);
    _mm256_storeu_pd(x.data() + i, _mm256_fmadd_pd(vnlr, vm, vx));
  }
#endif
  for (; i < x.size(); ++i) {
    const Scalar mi = std::fma(beta, m[i], x[i] - agg[i]);
    m[i] = mi;
    x[i] = std::fma(-lr, mi, x[i]);
  }
}

void descent_drift(std::span<Scalar> x, std::span<const Scalar> g,
                   std::span<const Scalar> u, Scalar eta, Scalar beta) {
  HFL_CHECK(x.size() == g.size() && x.size() == u.size(),
            "descent_drift size mismatch");
  std::size_t i = 0;
#ifdef HFL_VEC_AVX2
  const __m256d vbeta = _mm256_set1_pd(beta);
  const __m256d vneta = _mm256_set1_pd(-eta);
  for (; i + 4 <= x.size(); i += 4) {
    const __m256d vd = _mm256_fmadd_pd(vbeta, _mm256_loadu_pd(u.data() + i),
                                       _mm256_loadu_pd(g.data() + i));
    _mm256_storeu_pd(x.data() + i,
                     _mm256_fmadd_pd(vneta, vd, _mm256_loadu_pd(x.data() + i)));
  }
#endif
  for (; i < x.size(); ++i) {
    const Scalar d = std::fma(beta, u[i], g[i]);
    x[i] = std::fma(-eta, d, x[i]);
  }
}

void descent_blend(std::span<Scalar> x, std::span<const Scalar> g,
                   std::span<const Scalar> m, Scalar eta, Scalar beta) {
  HFL_CHECK(x.size() == g.size() && x.size() == m.size(),
            "descent_blend size mismatch");
  const Scalar keep = 1.0 - beta;
  std::size_t i = 0;
#ifdef HFL_VEC_AVX2
  const __m256d vkeep = _mm256_set1_pd(keep);
  const __m256d vbeta = _mm256_set1_pd(beta);
  const __m256d vneta = _mm256_set1_pd(-eta);
  for (; i + 4 <= x.size(); i += 4) {
    const __m256d vd = _mm256_fmadd_pd(
        vbeta, _mm256_loadu_pd(m.data() + i),
        _mm256_mul_pd(vkeep, _mm256_loadu_pd(g.data() + i)));
    _mm256_storeu_pd(x.data() + i,
                     _mm256_fmadd_pd(vneta, vd, _mm256_loadu_pd(x.data() + i)));
  }
#endif
  for (; i < x.size(); ++i) {
    const Scalar d = std::fma(beta, m[i], keep * g[i]);
    x[i] = std::fma(-eta, d, x[i]);
  }
}

void descent_svrg(std::span<Scalar> x, std::span<const Scalar> gb,
                  std::span<const Scalar> ga, std::span<const Scalar> ghat,
                  std::span<const Scalar> m, Scalar eta, Scalar beta) {
  HFL_CHECK(x.size() == gb.size() && x.size() == ga.size() &&
                x.size() == ghat.size() && x.size() == m.size(),
            "descent_svrg size mismatch");
  const Scalar keep = 1.0 - beta;
  std::size_t i = 0;
#ifdef HFL_VEC_AVX2
  const __m256d vkeep = _mm256_set1_pd(keep);
  const __m256d vbeta = _mm256_set1_pd(beta);
  const __m256d vneta = _mm256_set1_pd(-eta);
  for (; i + 4 <= x.size(); i += 4) {
    const __m256d vc = _mm256_add_pd(
        _mm256_sub_pd(_mm256_loadu_pd(gb.data() + i),
                      _mm256_loadu_pd(ga.data() + i)),
        _mm256_loadu_pd(ghat.data() + i));
    const __m256d vd = _mm256_fmadd_pd(vbeta, _mm256_loadu_pd(m.data() + i),
                                       _mm256_mul_pd(vkeep, vc));
    _mm256_storeu_pd(x.data() + i,
                     _mm256_fmadd_pd(vneta, vd, _mm256_loadu_pd(x.data() + i)));
  }
#endif
  for (; i < x.size(); ++i) {
    const Scalar c = gb[i] - ga[i] + ghat[i];
    const Scalar d = std::fma(beta, m[i], keep * c);
    x[i] = std::fma(-eta, d, x[i]);
  }
}

void adc_server_update(std::span<Scalar> x, std::span<const Scalar> agg,
                       std::span<Scalar> u, Scalar beta, Scalar inv_step) {
  HFL_CHECK(x.size() == agg.size() && x.size() == u.size(),
            "adc_server_update size mismatch");
  const Scalar keep = 1.0 - beta;
  std::size_t i = 0;
#ifdef HFL_VEC_AVX2
  const __m256d vbeta = _mm256_set1_pd(beta);
  const __m256d vkeep = _mm256_set1_pd(keep);
  const __m256d vinv = _mm256_set1_pd(inv_step);
  for (; i + 4 <= x.size(); i += 4) {
    const __m256d vagg = _mm256_loadu_pd(agg.data() + i);
    const __m256d vpseudo = _mm256_mul_pd(
        _mm256_sub_pd(_mm256_loadu_pd(x.data() + i), vagg), vinv);
    _mm256_storeu_pd(
        u.data() + i,
        _mm256_fmadd_pd(vbeta, _mm256_loadu_pd(u.data() + i),
                        _mm256_mul_pd(vkeep, vpseudo)));
    _mm256_storeu_pd(x.data() + i, vagg);
  }
#endif
  for (; i < x.size(); ++i) {
    const Scalar pseudo = (x[i] - agg[i]) * inv_step;
    u[i] = std::fma(beta, u[i], keep * pseudo);
    x[i] = agg[i];
  }
}

Scalar cosine_neg(std::span<const Scalar> x, std::span<const Scalar> y) {
  const Scalar nx = norm(x);
  const Scalar ny = norm(y);
  constexpr Scalar kEps = 1e-12;
  if (nx < kEps || ny < kEps) return 0.0;
  const Scalar c = -(dot(x, y) / (nx * ny));
  return std::clamp(c, Scalar{-1}, Scalar{1});
}

}  // namespace hfl::vec
