// Deterministic random number generation.
//
// Every stochastic component in the simulator (dataset synthesis, non-i.i.d.
// partitioning, mini-batch shuffling, weight initialization, delay sampling)
// takes an explicit `Rng`. The generator is xoshiro256** seeded via SplitMix64,
// which gives high-quality streams that are cheap to fork: `Rng::fork(tag)`
// derives an independent child stream, so each simulated worker can own its
// own generator and the simulation stays bit-reproducible when workers run in
// parallel on the thread pool.
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/types.h"

namespace hfl {

// Complete serialized generator state (xoshiro256** words + fork counter).
// Round-trips through Rng::save_state / Rng::from_state bit-exactly, so a
// spilled worker's stream resumes precisely where it left off.
struct RngState {
  std::uint64_t s[4] = {0, 0, 0, 0};
  std::uint64_t fork_counter = 0;
};

class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Raw 64 random bits.
  std::uint64_t next_u64();

  // Uniform in [0, 1).
  Scalar uniform();

  // Uniform in [lo, hi).
  Scalar uniform(Scalar lo, Scalar hi);

  // Uniform integer in [0, n). Requires n > 0.
  std::size_t uniform_index(std::size_t n);

  // Standard normal via Box–Muller (no cached spare: keeps state minimal).
  Scalar normal();

  // Normal with the given mean and standard deviation.
  Scalar normal(Scalar mean, Scalar stddev);

  // Derive an independent child stream. Children with distinct tags (or from
  // successive calls) are statistically independent of the parent and of each
  // other.
  Rng fork(std::uint64_t tag);

  // Stateless variant of fork(): the child that fork(tag) would return when
  // taken as this generator's `nth` fork (nth = the post-increment value of
  // the fork counter, i.e. 1 for the first fork). Lets a caller reproduce
  // one entry of a recorded fork sequence without replaying the forks before
  // it — the lazy-materialization hook of the population subsystem
  // (src/pop/cohort_store.h) derives worker streams this way.
  Rng fork_nth(std::uint64_t tag, std::uint64_t nth) const;

  // Bit-exact checkpointing (spill/restore of worker batch streams).
  RngState save_state() const;
  static Rng from_state(const RngState& state);

  // Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = uniform_index(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4];
  std::uint64_t fork_counter_ = 0;
};

}  // namespace hfl
