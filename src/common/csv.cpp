#include "src/common/csv.h"

#include <filesystem>
#include <iomanip>
#include <limits>
#include <system_error>

#include "src/common/errors.h"

namespace hfl {

CsvWriter::CsvWriter(const std::string& path) {
  const std::filesystem::path parent = std::filesystem::path(path).parent_path();
  if (!parent.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(parent, ec);
    HFL_CHECK(!ec, "cannot create directory '" + parent.string() +
                       "' for CSV file '" + path + "': " + ec.message());
  }
  out_.open(path);
  HFL_CHECK(out_.good(), "cannot open CSV file for writing: " + path);
}

void CsvWriter::write_header(const std::vector<std::string>& columns) {
  write_row(columns);
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (std::size_t i = 0; i < fields.size(); ++i) {
    if (i > 0) out_ << ',';
    out_ << escape(fields[i]);
  }
  out_ << '\n';
}

void CsvWriter::write_row_scalars(const std::vector<Scalar>& values) {
  std::vector<std::string> fields;
  fields.reserve(values.size());
  for (const Scalar v : values) fields.push_back(format_scalar(v));
  write_row(fields);
}

std::string CsvWriter::format_scalar(Scalar v) {
  // max_digits10 guarantees the shortest-read round trip: a value parsed
  // back from the CSV is bit-identical to what was written, so exported
  // curves and telemetry can be diffed exactly across runs.
  std::ostringstream os;
  os << std::setprecision(std::numeric_limits<Scalar>::max_digits10) << v;
  return os.str();
}

std::string CsvWriter::escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

}  // namespace hfl
