// Error handling helpers.
//
// The library throws `hfl::Error` (derived from std::runtime_error) for all
// precondition violations. `HFL_CHECK` is the single check macro: it is always
// active (these are API-misuse checks on code paths that are never hot enough
// to matter) and produces a message with file/line context.
#pragma once

#include <stdexcept>
#include <string>

namespace hfl {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_check_failure(const char* expr, const char* file,
                                      int line, const std::string& msg);
}  // namespace detail

}  // namespace hfl

#define HFL_CHECK(cond, msg)                                              \
  do {                                                                    \
    if (!(cond)) {                                                        \
      ::hfl::detail::throw_check_failure(#cond, __FILE__, __LINE__, msg); \
    }                                                                     \
  } while (false)
