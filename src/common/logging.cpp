#include "src/common/logging.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace hfl {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

bool log_enabled(LogLevel level) {
  return level >= g_level.load(std::memory_order_relaxed) &&
         level != LogLevel::kOff;
}

void log_message(LogLevel level, const std::string& msg) {
  if (!log_enabled(level)) return;
  // One lock per emitted line: concurrent pool-thread logs come out whole,
  // never interleaved mid-line.
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << "[" << level_name(level) << "] " << msg << '\n';
}

}  // namespace hfl
