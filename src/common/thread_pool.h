// Fixed-size thread pool with a parallel-for helper.
//
// The simulation engine runs the per-iteration local updates of all simulated
// workers concurrently (they are data-parallel by construction: each worker
// owns its model copy, RNG, and batcher). The pool is created once per engine
// and reused across iterations to avoid thread churn.
//
// `parallel_for` blocks until all indices are processed and rethrows the first
// exception raised by any task.
//
// Telemetry (src/obs, off by default): the pool records the task-queue depth
// at each submit (histogram "pool.queue_depth") and per-worker busy time
// (counter "pool.busy_ns" with label "worker=<i>") so a trace can show how
// evenly the simulated workers load the host threads.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace hfl {

class ThreadPool {
 public:
  // num_threads == 0 selects hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  // Run fn(i) for i in [0, n). Static block partitioning: deterministic work
  // assignment (though the user-supplied fn must still be data-parallel).
  // Safe to call from inside one of this pool's own tasks: a nested call
  // runs its iterations inline on the calling worker instead of deadlocking
  // on the shared queue.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void submit(std::function<void()> task);
  void worker_loop(std::size_t worker_index);

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace hfl
