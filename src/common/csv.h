// Minimal CSV writer for experiment output.
//
// Benches and examples record per-iteration accuracy curves and table rows.
// The writer quotes fields that contain separators and renders scalars with
// enough precision to round-trip.
#pragma once

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace hfl {

class CsvWriter {
 public:
  // Opens (truncates) `path`, creating missing parent directories. Throws
  // hfl::Error if a directory or the file itself cannot be created.
  explicit CsvWriter(const std::string& path);

  void write_header(const std::vector<std::string>& columns);

  // Append one row. Field count is not enforced against the header: some
  // experiment outputs are ragged (e.g. per-algorithm curves of different
  // lengths) and the downstream plotting tolerates that.
  void write_row(const std::vector<std::string>& fields);

  // Convenience: format scalars then write.
  void write_row_scalars(const std::vector<Scalar>& values);

  static std::string format_scalar(Scalar v);

 private:
  static std::string escape(const std::string& field);
  std::ofstream out_;
};

}  // namespace hfl
