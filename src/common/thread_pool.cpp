#include "src/common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>

#include "src/obs/registry.h"

namespace hfl {
namespace {

// Set while a pool worker executes tasks; lets parallel_for detect re-entrant
// use from inside one of its own tasks.
thread_local const ThreadPool* tl_worker_pool = nullptr;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  std::size_t depth;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    depth = tasks_.size();
  }
  cv_.notify_one();
  if (obs::enabled()) {
    static obs::Histogram& queue_depth = obs::Registry::global().histogram(
        "pool.queue_depth", "", {1, 2, 4, 8, 16, 32, 64, 128});
    queue_depth.observe(static_cast<double>(depth));
  }
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  tl_worker_pool = this;
  // Fetched once per worker; the registry keeps handles stable across
  // reset(), so the reference stays valid for the pool's lifetime.
  obs::Counter& busy_ns = obs::Registry::global().counter(
      "pool.busy_ns", "worker=" + std::to_string(worker_index));
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    if (obs::enabled()) {
      const auto t0 = std::chrono::steady_clock::now();
      task();
      busy_ns.add(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - t0)
              .count()));
    } else {
      task();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  // Re-entrant call from one of this pool's own workers: run inline. Queuing
  // and blocking here would deadlock once every worker waits on sub-tasks
  // that only the waiting workers could drain.
  if (tl_worker_pool == this) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  const std::size_t num_blocks = std::min(n, workers_.size());
  if (num_blocks <= 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  struct Shared {
    std::atomic<std::size_t> remaining;
    std::mutex done_mutex;
    std::condition_variable done_cv;
    std::exception_ptr error;
    std::mutex error_mutex;
  };
  Shared shared;
  shared.remaining.store(num_blocks);

  const std::size_t block = (n + num_blocks - 1) / num_blocks;
  for (std::size_t b = 0; b < num_blocks; ++b) {
    const std::size_t lo = b * block;
    const std::size_t hi = std::min(n, lo + block);
    submit([&shared, &fn, lo, hi] {
      try {
        for (std::size_t i = lo; i < hi; ++i) fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared.error_mutex);
        if (!shared.error) shared.error = std::current_exception();
      }
      if (shared.remaining.fetch_sub(1) == 1) {
        std::lock_guard<std::mutex> lock(shared.done_mutex);
        shared.done_cv.notify_all();
      }
    });
  }

  std::unique_lock<std::mutex> lock(shared.done_mutex);
  shared.done_cv.wait(lock, [&shared] { return shared.remaining.load() == 0; });
  if (shared.error) std::rethrow_exception(shared.error);
}

}  // namespace hfl
