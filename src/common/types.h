// Fundamental scalar and vector aliases shared across the library.
//
// The whole federated-learning stack (momentum updates, aggregations, bound
// computations) operates on flattened parameter vectors; `Vec` is that common
// currency. Double precision is used throughout: the simulated workloads are
// small enough that memory is not a concern, and the convergence-bound
// verification in src/theory benefits from the extra precision.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hfl {

using Scalar = double;
using Vec = std::vector<Scalar>;

// Shared "never reached" sentinels for search-style queries (first iteration
// / first modeled second at which a curve hits a target). Index-valued
// queries return kNeverIndex (mirrors std::string::npos — 0 is a legitimate
// answer, the initial model may already qualify); time-valued queries return
// kNeverTime (modeled clocks start at 0 and only move forward, so any
// negative value is unreachable). fl::RunResult::npos and
// net::TimeSimulator::kNeverReached are aliases of these two constants, so
// every caller compares against the same bits.
inline constexpr std::size_t kNeverIndex = static_cast<std::size_t>(-1);
inline constexpr Scalar kNeverTime = -1.0;

}  // namespace hfl
