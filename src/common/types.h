// Fundamental scalar and vector aliases shared across the library.
//
// The whole federated-learning stack (momentum updates, aggregations, bound
// computations) operates on flattened parameter vectors; `Vec` is that common
// currency. Double precision is used throughout: the simulated workloads are
// small enough that memory is not a concern, and the convergence-bound
// verification in src/theory benefits from the extra precision.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hfl {

using Scalar = double;
using Vec = std::vector<Scalar>;

}  // namespace hfl
