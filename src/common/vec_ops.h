// Flat-vector math.
//
// Federated-learning algorithms manipulate model parameters as flat vectors:
// aggregation is a weighted average, momentum updates are axpy operations, and
// the adaptive-momentum angle of HierAdMo (paper eq. (6)) is a cosine between
// two accumulated vectors. These helpers are the shared vocabulary for all of
// that. All binary operations require equal sizes (checked).
#pragma once

#include <span>

#include "src/common/types.h"

namespace hfl::vec {

// y += a * x
void axpy(Scalar a, std::span<const Scalar> x, std::span<Scalar> y);

// x *= a
void scale(std::span<Scalar> x, Scalar a);

// out = a*x + b*y (out may alias x or y)
void linear_combination(Scalar a, std::span<const Scalar> x, Scalar b,
                        std::span<const Scalar> y, std::span<Scalar> out);

Scalar dot(std::span<const Scalar> x, std::span<const Scalar> y);

// Euclidean norm.
Scalar norm(std::span<const Scalar> x);

// ||x - y||
Scalar distance(std::span<const Scalar> x, std::span<const Scalar> y);

// Cosine of the angle between x and y. Returns 0 when either vector has
// (near-)zero norm — the natural neutral value for HierAdMo's adaptation,
// where cosθ ≤ 0 maps to momentum weight 0.
Scalar cosine(std::span<const Scalar> x, std::span<const Scalar> y);

// out = Σ_i weights[i] * vecs[i]. Weights need not sum to one (callers that
// want a weighted mean pass normalized weights). All vectors must share the
// output's size, and vecs.size() == weights.size() >= 1. Fused single pass:
// the output is accumulated tile-by-tile across all inputs, so cost stays
// one stream per input plus one cache-resident output tile even at large
// fleet sizes. `out` must not alias any input.
void weighted_sum(std::span<const Vec* const> vecs,
                  std::span<const Scalar> weights, Vec& out);

// Overload over a vector of Vec values (no pointer-array indirection).
void weighted_sum(const std::vector<Vec>& vecs,
                  std::span<const Scalar> weights, Vec& out);

// Partial-range weighted sum: writes only out[lo, hi), which must already be
// sized to the input length. Each output element is accumulated across the
// inputs in fixed input-index order, so splitting [0, n) into any set of
// ranges — one per thread of a parallel reduction — produces bit-identical
// results to one full-range call. This is the engine's deterministic
// aggregation primitive: FP summation order depends only on the input count,
// never on the thread count or partition shape.
void weighted_sum_range(std::span<const Vec* const> vecs,
                        std::span<const Scalar> weights, Vec& out,
                        std::size_t lo, std::size_t hi);

// Fill with a constant.
void fill(std::span<Scalar> x, Scalar value);

// max_i |x_i - y_i|
Scalar max_abs_diff(std::span<const Scalar> x, std::span<const Scalar> y);

// ---------------------------------------------------------------------------
// Fused parameter-plane kernels.
//
// Each kernel below collapses a sequence of axpy/scale/copy passes that the
// momentum algebra used to run as separate loops into ONE pass over the
// vectors, with an AVX2+FMA body and a scalar tail that computes the exact
// same per-element expression (std::fma mirrors the vector fmadd, so the
// tail and the SIMD body agree bitwise).
//
// Contract: element i's result depends only on index-i inputs — no cross-
// element reductions — so the kernels are trivially invariant to any thread
// partition of the index range. Per-element values may differ from the
// previously composed loops by the usual FMA-contraction rounding (≤1 ulp
// per fused multiply-add); every caller was moved in the same change, so the
// within-binary parity oracles (serial-vs-parallel, batched-vs-per-worker,
// virtualized-vs-dense) compare paths running identical kernels.
// ---------------------------------------------------------------------------

// y = a*x + b*y (extended BLAS axpby).
void axpby(Scalar a, std::span<const Scalar> x, Scalar b, std::span<Scalar> y);

// x = a*x + b*y — axpby with the in-place operand first. Same per-element
// expression (FP addition is commutative bitwise), kept as a named entry
// point for callers whose natural reading is "scale, then add scaled".
void scale_add_scale(std::span<Scalar> x, Scalar a,
                     std::span<const Scalar> y, Scalar b);

// Classical momentum step, fused: m = gamma*m + g; p -= eta*m.
void momentum_step(std::span<Scalar> m, std::span<const Scalar> g,
                   Scalar gamma, std::span<Scalar> p, Scalar eta);

// Pull y toward x: y = x + d*(y - x). This is the absent-worker momentum
// decay algebra (fl::Participation kDecay) — d = 1 holds, d = 0 resets.
void decay_toward(std::span<Scalar> y, std::span<const Scalar> x, Scalar d);

// Momentum extrapolation with state update, fused:
//   out = cur + gamma*(cur - prev);  prev = cur.
// This is the aggregator-Nesterov pattern shared by HierAdMo's edge blend
// (x_plus from the fresh edge average vs. the previous round's) and FedMom's
// server step. `out` may alias neither input; `cur` and `prev` must differ.
void extrapolate_update(std::span<const Scalar> cur, std::span<Scalar> prev,
                        Scalar gamma, std::span<Scalar> out);

// Fused NAG local step (core/nag.cpp algebra), one pass:
//   y_new = x - eta*grad;  v = y_new - y;  y = y_new;  x = y_new + gamma*v.
void nag_step(std::span<Scalar> x, std::span<Scalar> y, std::span<Scalar> v,
              std::span<const Scalar> grad, Scalar eta, Scalar gamma);

// nag_step plus the HierAdMo accumulators, still one pass:
//   sum_grad += grad;  sum_y += y (pre-update);  ...step...;  sum_v += v (new).
void nag_step_accumulate(std::span<Scalar> x, std::span<Scalar> y,
                         std::span<Scalar> v, std::span<const Scalar> grad,
                         Scalar eta, Scalar gamma, std::span<Scalar> sum_grad,
                         std::span<Scalar> sum_y, std::span<Scalar> sum_v);

// SlowMo-style server fold, fused: m = beta*m + (x - agg); x -= lr*m.
void slowmo_step(std::span<Scalar> x, std::span<const Scalar> agg,
                 std::span<Scalar> m, Scalar beta, Scalar lr);

// Drift-corrected descent (FedADC local step): x -= eta*(g + beta*u).
void descent_drift(std::span<Scalar> x, std::span<const Scalar> g,
                   std::span<const Scalar> u, Scalar eta, Scalar beta);

// Mime's blended descent: x -= eta*((1-beta)*g + beta*m).
void descent_blend(std::span<Scalar> x, std::span<const Scalar> g,
                   std::span<const Scalar> m, Scalar eta, Scalar beta);

// Mime's SVRG-corrected descent: the blended step with the paired correction
// g_b - g_a + ghat in place of g, evaluated inline (no corrected-gradient
// temporary): x -= eta*((1-beta)*(gb - ga + ghat) + beta*m).
void descent_svrg(std::span<Scalar> x, std::span<const Scalar> gb,
                  std::span<const Scalar> ga, std::span<const Scalar> ghat,
                  std::span<const Scalar> m, Scalar eta, Scalar beta);

// FedADC server update, fused:
//   u = beta*u + (1-beta)*((x - agg)*inv_step);  x = agg.
void adc_server_update(std::span<Scalar> x, std::span<const Scalar> agg,
                       std::span<Scalar> u, Scalar beta, Scalar inv_step);

// cosine(-x, y) without materializing the negated vector. Bit-identical to
// negating x first: IEEE multiplication and addition are sign-symmetric, so
// dot(-x, y) == -dot(x, y) and norm(-x) == norm(x) exactly.
Scalar cosine_neg(std::span<const Scalar> x, std::span<const Scalar> y);

}  // namespace hfl::vec
