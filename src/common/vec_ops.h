// Flat-vector math.
//
// Federated-learning algorithms manipulate model parameters as flat vectors:
// aggregation is a weighted average, momentum updates are axpy operations, and
// the adaptive-momentum angle of HierAdMo (paper eq. (6)) is a cosine between
// two accumulated vectors. These helpers are the shared vocabulary for all of
// that. All binary operations require equal sizes (checked).
#pragma once

#include <span>

#include "src/common/types.h"

namespace hfl::vec {

// y += a * x
void axpy(Scalar a, std::span<const Scalar> x, std::span<Scalar> y);

// x *= a
void scale(std::span<Scalar> x, Scalar a);

// out = a*x + b*y (out may alias x or y)
void linear_combination(Scalar a, std::span<const Scalar> x, Scalar b,
                        std::span<const Scalar> y, std::span<Scalar> out);

Scalar dot(std::span<const Scalar> x, std::span<const Scalar> y);

// Euclidean norm.
Scalar norm(std::span<const Scalar> x);

// ||x - y||
Scalar distance(std::span<const Scalar> x, std::span<const Scalar> y);

// Cosine of the angle between x and y. Returns 0 when either vector has
// (near-)zero norm — the natural neutral value for HierAdMo's adaptation,
// where cosθ ≤ 0 maps to momentum weight 0.
Scalar cosine(std::span<const Scalar> x, std::span<const Scalar> y);

// out = Σ_i weights[i] * vecs[i]. Weights need not sum to one (callers that
// want a weighted mean pass normalized weights). All vectors must share the
// output's size, and vecs.size() == weights.size() >= 1. Fused single pass:
// the output is accumulated tile-by-tile across all inputs, so cost stays
// one stream per input plus one cache-resident output tile even at large
// fleet sizes. `out` must not alias any input.
void weighted_sum(std::span<const Vec* const> vecs,
                  std::span<const Scalar> weights, Vec& out);

// Overload over a vector of Vec values (no pointer-array indirection).
void weighted_sum(const std::vector<Vec>& vecs,
                  std::span<const Scalar> weights, Vec& out);

// Partial-range weighted sum: writes only out[lo, hi), which must already be
// sized to the input length. Each output element is accumulated across the
// inputs in fixed input-index order, so splitting [0, n) into any set of
// ranges — one per thread of a parallel reduction — produces bit-identical
// results to one full-range call. This is the engine's deterministic
// aggregation primitive: FP summation order depends only on the input count,
// never on the thread count or partition shape.
void weighted_sum_range(std::span<const Vec* const> vecs,
                        std::span<const Scalar> weights, Vec& out,
                        std::size_t lo, std::size_t hi);

// Fill with a constant.
void fill(std::span<Scalar> x, Scalar value);

// max_i |x_i - y_i|
Scalar max_abs_diff(std::span<const Scalar> x, std::span<const Scalar> y);

}  // namespace hfl::vec
