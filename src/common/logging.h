// Leveled logging to stderr.
//
// Simulation runs are long; progress lines (accuracy at each cloud round,
// bench sweep positions) go through here so they can be silenced globally in
// tests. Thread-safe: pool threads log concurrently with the main thread, so
// a mutex serializes the actual stderr writes (whole lines never interleave)
// while the level check is a lock-free relaxed atomic load — a suppressed
// message costs no lock and, via LogLine, no formatting either.
#pragma once

#include <sstream>
#include <string>

namespace hfl {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are dropped. Defaults to kInfo.
void set_log_level(LogLevel level);
LogLevel log_level();

// Lock-free: one relaxed atomic load.
bool log_enabled(LogLevel level);

void log_message(LogLevel level, const std::string& msg);

namespace detail {
class LogLine {
 public:
  explicit LogLine(LogLevel level)
      : level_(level), enabled_(log_enabled(level)) {}
  ~LogLine() {
    if (enabled_) log_message(level_, os_.str());
  }
  template <typename T>
  LogLine& operator<<(const T& v) {
    if (enabled_) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  bool enabled_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace hfl

#define HFL_LOG(level) ::hfl::detail::LogLine(::hfl::LogLevel::level)
#define HFL_INFO() HFL_LOG(kInfo)
#define HFL_DEBUG() HFL_LOG(kDebug)
#define HFL_WARN() HFL_LOG(kWarn)
