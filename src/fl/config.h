// Run configuration shared by all algorithms (Table I hyper-parameters).
#pragma once

#include <cstdint>

#include "src/common/types.h"

namespace hfl::fl {

// Execution policy of a run (DESIGN.md §12). `kSync` is the paper's barrier
// schedule and the only policy `fl::Engine` executes; the event-driven
// `evt::AsyncEngine` runs all three (its sync policy is bit-identical to
// `fl::Engine` and serves as the correctness anchor).
enum class ExecPolicy {
  kSync,       // barrier per tier: every worker makes every synchronization
  kSemiAsync,  // deadline-based cohort admission per aggregator; late updates
               // are folded in at later rounds with staleness-scaled weights
  kAsync,      // fully event-ordered: every update arrival triggers its
               // aggregator, with bounded staleness
};

const char* to_string(ExecPolicy policy);

struct RunConfig {
  // T — total local (worker) iterations. Must be a multiple of tau * pi.
  std::size_t total_iterations = 200;
  // τ — worker–edge aggregation period (three-tier) or the global
  // aggregation period (two-tier, where pi must be 1).
  std::size_t tau = 10;
  // π — edge–cloud aggregation period. Two-tier algorithms require pi == 1;
  // the paper matches the two-tier τ to the three-tier τ·π for fairness.
  std::size_t pi = 2;

  Scalar eta = 0.01;         // η — worker learning rate
  Scalar gamma = 0.5;        // γ — worker momentum factor
  Scalar gamma_edge = 0.5;   // γℓ — edge/server momentum factor (fixed value;
                             // HierAdMo adapts it online per edge)

  std::size_t batch_size = 16;

  // Evaluation cadence: the engine always evaluates at t = 0 and at every
  // cloud synchronization; eval_every adds intermediate points (0 disables).
  std::size_t eval_every = 0;
  // Cap on test samples per evaluation (0 = full test set).
  std::size_t eval_max_samples = 0;

  std::uint64_t seed = 1;
  std::size_t num_threads = 0;  // 0 = hardware concurrency

  // Fused cohort execution (src/nn/cohort.h): compute the cohort's local
  // gradients through one batched pass instead of per-worker model calls.
  // FP64 results are bit-identical either way; the engine silently falls
  // back per worker for architectures or algorithms the fused path cannot
  // serve. Env override: HFL_BATCHED=0/1 (read by the engine constructor).
  bool batched = true;
  // FP32-compute / FP64-accumulate GEMMs inside the fused path (≤1e-6
  // relative error — NOT bit-identical; see src/tensor/gemm_mixed.h).
  // Requires `batched`. Env override: HFL_MIXED_PRECISION=0/1.
  bool mixed_precision = false;

  // ---- Event-driven execution (src/evt/async_engine.h) ----
  //
  // `kSync` runs on either engine; the other policies need evt::AsyncEngine
  // and reject the batched cohort path (it is barrier-shaped: it draws the
  // whole cohort's batches at one instant, which has no meaning when workers
  // progress at their own pace). Set `batched = false` for them explicitly.
  ExecPolicy policy = ExecPolicy::kSync;
  // Semi-async only: how long (modeled seconds) each aggregator round waits
  // before aggregating whatever updates have arrived. Must be > 0 under
  // kSemiAsync and 0 otherwise.
  Scalar semi_async_deadline_s = 0.0;
  // Staleness bound (in aggregator versions): an update more than this many
  // versions behind the aggregator is dropped and its worker force-refreshed.
  // Signed so a negative bound is a loud config error, not a huge unsigned.
  std::int64_t max_staleness = 4;
  // Staleness weight s(τ) = staleness_decay^τ applied multiplicatively to a
  // stale update's data-size weight before renormalization. In (0, 1]; 1
  // disables down-weighting.
  Scalar staleness_decay = 0.5;
  // Default Algorithm::stale_sync policy: per staleness step, shrink the
  // worker's momentum state toward its model by this factor. 1 = hold
  // (keep momentum as-is), 0 = full reset. Mirrors AbsentPolicy::kDecay.
  Scalar stale_momentum_decay = 1.0;
  // Semi-async only: tune each aggregator's admission deadline against the
  // arrival spread it actually observes, instead of holding
  // semi_async_deadline_s fixed. Per fired round the aggregator folds the
  // spread (last − first arrival of the admitted cohort) into an EWMA and
  // arms the next deadline at deadline_margin × EWMA, clamped to
  // [0.25, 4] × semi_async_deadline_s (which also seeds the EWMA).
  bool adaptive_deadline = false;
  // Safety margin over the EWMA'd arrival spread; > 0. Larger admits more
  // of the tail per round (fewer, bigger cohorts), smaller turns rounds
  // around faster at the cost of more stale folds.
  Scalar deadline_margin = 1.5;
  // Mime/MimeLite under cohort sampling: estimate the server statistic ĝ
  // from the materialized cohort with weights renormalized over that cohort,
  // instead of probing every worker's gradient (which requires the full
  // population materialized — the default, bit-identical behavior). Ignored
  // by every other algorithm.
  bool mime_cohort_stats = false;

  // Throws hfl::Error with an actionable message on any inconsistency
  // (non-positive periods, T not a multiple of τ·π, bad hyper-parameters).
  // The engine calls this at construction; call it directly to fail fast
  // when assembling configs programmatically.
  void validate() const;
};

}  // namespace hfl::fl
