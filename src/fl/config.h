// Run configuration shared by all algorithms (Table I hyper-parameters).
#pragma once

#include <cstdint>

#include "src/common/types.h"

namespace hfl::fl {

struct RunConfig {
  // T — total local (worker) iterations. Must be a multiple of tau * pi.
  std::size_t total_iterations = 200;
  // τ — worker–edge aggregation period (three-tier) or the global
  // aggregation period (two-tier, where pi must be 1).
  std::size_t tau = 10;
  // π — edge–cloud aggregation period. Two-tier algorithms require pi == 1;
  // the paper matches the two-tier τ to the three-tier τ·π for fairness.
  std::size_t pi = 2;

  Scalar eta = 0.01;         // η — worker learning rate
  Scalar gamma = 0.5;        // γ — worker momentum factor
  Scalar gamma_edge = 0.5;   // γℓ — edge/server momentum factor (fixed value;
                             // HierAdMo adapts it online per edge)

  std::size_t batch_size = 16;

  // Evaluation cadence: the engine always evaluates at t = 0 and at every
  // cloud synchronization; eval_every adds intermediate points (0 disables).
  std::size_t eval_every = 0;
  // Cap on test samples per evaluation (0 = full test set).
  std::size_t eval_max_samples = 0;

  std::uint64_t seed = 1;
  std::size_t num_threads = 0;  // 0 = hardware concurrency

  // Fused cohort execution (src/nn/cohort.h): compute the cohort's local
  // gradients through one batched pass instead of per-worker model calls.
  // FP64 results are bit-identical either way; the engine silently falls
  // back per worker for architectures or algorithms the fused path cannot
  // serve. Env override: HFL_BATCHED=0/1 (read by the engine constructor).
  bool batched = true;
  // FP32-compute / FP64-accumulate GEMMs inside the fused path (≤1e-6
  // relative error — NOT bit-identical; see src/tensor/gemm_mixed.h).
  // Requires `batched`. Env override: HFL_MIXED_PRECISION=0/1.
  bool mixed_precision = false;

  // Throws hfl::Error with an actionable message on any inconsistency
  // (non-positive periods, T not a multiple of τ·π, bad hyper-parameters).
  // The engine calls this at construction; call it directly to fail fast
  // when assembling configs programmatically.
  void validate() const;
};

}  // namespace hfl::fl
