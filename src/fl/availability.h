// Partial participation: who survives each synchronization interval.
//
// The engine's default contract is that every worker survives every edge
// interval and every barrier completes. Real multi-tier deployments violate
// that constantly — workers drop out, edge nodes go dark, uplinks flake.
// This module is the fl-side half of the fault subsystem:
//
//   * `ParticipationSchedule` is plain data: one availability bit and one
//     slowdown factor per (edge interval, worker), plus one availability bit
//     per (edge interval, edge). It says nothing about *why* a worker is
//     absent — `sim::FaultPlan` (src/sim/fault_plan.h) generates schedules
//     from seeded fault models, so every algorithm replays the identical
//     fault trace, the same discipline as the engine's batch streams.
//
//   * `Participation` is the engine's runtime view of a schedule: per
//     interval it materializes the surviving roster and the renormalized
//     data-size weights (absent workers' mass is redistributed over the
//     survivors, per edge and globally; absent edges' mass over the
//     surviving edges).
//
// A null `Participation*` everywhere means full participation and reduces
// every helper to the exact pre-fault code path — the engine guarantees
// bit-identical results for fault-free runs.
#pragma once

#include <cstdint>
#include <vector>

#include "src/fl/config.h"
#include "src/fl/state.h"

namespace hfl::fl {

// What happens to a worker's momentum state (y, v) and interval accumulators
// while it misses a synchronization.
enum class AbsentPolicy {
  kHold,   // keep momentum and accumulators as-is (resume where it left off)
  kReset,  // collapse momentum onto the model (y = x, v = 0) and zero the
           // interval accumulators
  kDecay,  // shrink momentum and accumulators toward the reset point by a
           // configurable factor per missed synchronization
};

// Deterministic availability trace over the whole run, indexed by edge
// interval k = 1..num_intervals (interval k covers iterations
// ((k-1)τ, kτ]). Row-major [k-1][worker] / [k-1][edge].
struct ParticipationSchedule {
  std::size_t num_intervals = 0;
  std::size_t num_workers = 0;
  std::size_t num_edges = 0;

  std::vector<std::uint8_t> worker_up;  // 1 = worker online for interval k
  std::vector<Scalar> slowdown;         // per-(k, worker) compute stretch ≥ 1
  std::vector<std::uint8_t> edge_up;    // 1 = edge node online for interval k

  AbsentPolicy absent_policy = AbsentPolicy::kHold;
  Scalar absent_decay = 0.5;  // used by kDecay

  bool worker_available(std::size_t k, std::size_t worker) const {
    return worker_up[(k - 1) * num_workers + worker] != 0;
  }
  Scalar worker_slowdown(std::size_t k, std::size_t worker) const {
    return slowdown[(k - 1) * num_workers + worker];
  }
  bool edge_available(std::size_t k, std::size_t edge) const {
    return edge_up[(k - 1) * num_edges + edge] != 0;
  }

  // True when the schedule models no fault at all (everyone up, no
  // slowdown): the engine then takes the exact fault-free code path.
  bool is_noop() const;

  // Shape checks against the run this schedule is about to drive. Throws
  // hfl::Error with an actionable message on mismatch.
  void validate(const Topology& topo, const RunConfig& cfg) const;
};

// Lazily-evaluated availability: answers per-(interval, worker) queries
// without materializing the O(intervals × population) schedule arrays a
// `ParticipationSchedule` carries — the fault interface of the virtualized
// engine path, where only the sampled cohort is ever queried. Implementations
// must be pure functions of their construction inputs, so the answer for a
// given (k, id) never depends on which other slots were queried or in what
// order (`sim::SparseFaultPlan` replays per-entity forked RNG streams to get
// this). Queries arrive from the engine's serial sampling pass only — no
// thread-safety requirement.
class AvailabilityOracle {
 public:
  virtual ~AvailabilityOracle() = default;
  virtual bool worker_available(std::size_t k, std::size_t worker) const = 0;
  virtual bool edge_available(std::size_t k, std::size_t edge) const = 0;
  virtual AbsentPolicy absent_policy() const { return AbsentPolicy::kHold; }
  virtual Scalar absent_decay() const { return 0.5; }
};

// Adapter: expose a dense ParticipationSchedule through the oracle
// interface. Intervals past the schedule horizon report everything up. Used
// by parity tests to drive the virtualized sampled path and the dense path
// from the same fault trace.
class ScheduleOracle final : public AvailabilityOracle {
 public:
  explicit ScheduleOracle(const ParticipationSchedule& schedule)
      : schedule_(&schedule) {}

  bool worker_available(std::size_t k, std::size_t worker) const override {
    return k > schedule_->num_intervals ||
           schedule_->worker_available(k, worker);
  }
  bool edge_available(std::size_t k, std::size_t edge) const override {
    return k > schedule_->num_intervals || schedule_->edge_available(k, edge);
  }
  AbsentPolicy absent_policy() const override {
    return schedule_->absent_policy;
  }
  Scalar absent_decay() const override { return schedule_->absent_decay; }

 private:
  const ParticipationSchedule* schedule_;
};

// Runtime view of one interval of a schedule: surviving rosters and
// renormalized aggregation weights. Owned by the engine; algorithms access
// it through `Context::part` and the null-tolerant helpers below.
class Participation {
 public:
  // Primary constructor: `base_weights` supplies each worker's data-size
  // mass D_i to renormalize (the population subsystem passes its descriptor
  // weights; the convenience overloads below read `num_samples` from
  // materialized worker states). A null `schedule` selects manual-roster
  // mode. When `edge_faults` is false (two-tier runs, where workers talk
  // straight to the cloud), edge outages are ignored.
  Participation(const Topology& topo, const ParticipationSchedule* schedule,
                std::vector<Scalar> base_weights, bool edge_faults);

  // Schedule-backed view over a dense worker set.
  Participation(const Topology& topo, const ParticipationSchedule& schedule,
                const WorkerSet& workers, bool edge_faults);

  // Manual-roster mode (evt::AsyncEngine, virtualized cohort dispatch): no
  // schedule backs the view — the caller composes each roster via
  // set_roster() instead of interval replay, typically the per-round
  // admitted cohort of an asynchronous aggregation.
  // begin_interval()/slowdown() are unavailable in this mode; absent policy
  // defaults to kHold until set_absent_policy().
  Participation(const Topology& topo, const WorkerSet& workers,
                bool edge_faults);

  // Materialize interval k (1-based). Must be called before the first local
  // step of the interval; stays valid through the interval's syncs.
  // Schedule-backed mode only.
  void begin_interval(std::size_t k);

  // Manual-roster mode: materialize an explicit roster. `worker_up` /
  // `edge_up` flag who participates; `scale`, when non-null, multiplies
  // worker i's data-size mass by scale[i] before renormalization (the
  // staleness weight s(τ) of event-driven aggregation — weights stay
  // normalized per edge and globally, only the relative mass shifts).
  void set_roster(const std::vector<std::uint8_t>& worker_up,
                  const std::vector<std::uint8_t>& edge_up,
                  const std::vector<Scalar>* scale = nullptr);

  // Manual-roster mode, sparse form: exactly `cohort_ids` (ascending,
  // unique) may be up — cohort member i is up iff cohort_up[i]; everyone
  // outside the cohort is absent. `cohort_scale`, when non-null, is aligned
  // with cohort_ids (multiplicity of with-replacement draws). Costs
  // O(cohort + edges) per call after a one-time O(population) baseline
  // clear, versus set_roster's O(population) every interval, and is
  // bit-identical to passing the equivalent population-sized arrays to
  // set_roster: every floating-point mass sum visits the same members in
  // the same ascending-id / ascending-edge order (workers_of_edge lists
  // ascending ids, so a per-edge roster built from the ascending cohort is
  // the same subsequence the dense rebuild walks).
  void set_cohort_roster(const std::vector<WorkerId>& cohort_ids,
                         const std::vector<std::uint8_t>& cohort_up,
                         const std::vector<std::uint8_t>& edge_up,
                         const std::vector<Scalar>* cohort_scale = nullptr);

  // Manual-roster mode: a cloud-tier roster of edges only. Every worker is
  // absent (algorithm worker loops guarded by is_active skip them), yet an
  // up edge counts as active by itself — unlike set_roster, which
  // deactivates an edge with no surviving workers. Edge weights are
  // renormalized over the up edges by their static data mass, so a
  // singleton roster gives that edge weight exactly 1. The event-driven
  // engine folds an edge's upload into the cloud through this view without
  // touching the edge's (possibly in-flight) workers — the causal fix for
  // the retroactive subtree refresh.
  void set_edge_roster(const std::vector<std::uint8_t>& edge_up);

  // Manual-roster mode: absent-momentum policy reported to absent_sync.
  void set_absent_policy(AbsentPolicy policy, Scalar decay);

  std::size_t interval() const { return k_; }

  // Worker i survives this interval AND (three-tier) its edge is reachable.
  bool worker_active(std::size_t worker) const { return active_[worker] != 0; }
  // Edge is online and has at least one surviving worker.
  bool edge_active(std::size_t edge) const { return edge_active_[edge] != 0; }

  // Surviving workers of `edge`, ascending ids (empty if the edge is down).
  const std::vector<WorkerId>& active_workers_of_edge(std::size_t edge) const {
    return active_of_edge_[edge];
  }

  // Renormalized weights (zero for absent workers/edges).
  Scalar weight_in_edge(std::size_t worker) const {
    return weight_in_edge_[worker];
  }
  Scalar weight_global(std::size_t worker) const {
    return weight_global_[worker];
  }
  Scalar edge_weight_global(std::size_t edge) const {
    return edge_weight_[edge];
  }

  std::size_t num_active() const { return num_active_; }
  std::size_t num_workers() const { return active_.size(); }
  // 1.0 in manual-roster mode (the event clock models latency itself).
  Scalar slowdown(std::size_t worker) const {
    return schedule_ == nullptr ? 1.0 : schedule_->worker_slowdown(k_, worker);
  }

  AbsentPolicy absent_policy() const {
    return schedule_ == nullptr ? manual_policy_ : schedule_->absent_policy;
  }
  Scalar absent_decay() const {
    return schedule_ == nullptr ? manual_decay_ : schedule_->absent_decay;
  }
  const ParticipationSchedule& schedule() const { return *schedule_; }

 private:
  void rebuild_weights();

  const Topology* topo_;
  const ParticipationSchedule* schedule_;  // null = manual-roster mode
  bool edge_faults_;
  std::size_t k_ = 0;
  AbsentPolicy manual_policy_ = AbsentPolicy::kHold;
  Scalar manual_decay_ = 0.5;

  std::vector<Scalar> base_weight_;  // per-worker sample mass D_i
  std::vector<Scalar> mass_;         // effective mass this roster (D_i·scale)
  std::vector<std::uint8_t> active_;
  std::vector<std::uint8_t> edge_active_;
  std::vector<std::vector<WorkerId>> active_of_edge_;
  std::vector<Scalar> weight_in_edge_;
  std::vector<Scalar> weight_global_;
  std::vector<Scalar> edge_weight_;
  std::size_t num_active_ = 0;
  // Sparse-roster bookkeeping: while true, only prev_cohort_ids_ may carry
  // nonzero active bits / weights (the all-absent baseline holds everywhere
  // else). Dense entry points reset it so the two forms can interleave.
  bool sparse_mode_ = false;
  std::vector<WorkerId> prev_cohort_ids_;
};

// ---- Null-tolerant helpers (part == nullptr ⇒ full participation). ----
//
// Algorithms use these instead of the raw topology/state weights so that one
// code path serves both the fault-free contract (bit-identical to the
// pre-fault engine) and partial participation.

bool is_active(const Participation* part, std::size_t worker);
bool is_edge_active(const Participation* part, std::size_t edge);

// Surviving workers of `edge`; the full roster when part is null.
const std::vector<WorkerId>& active_workers(const Participation* part,
                                            const Topology& topo,
                                            std::size_t edge);

Scalar active_weight_in_edge(const Participation* part, const WorkerState& w);
Scalar active_weight_global(const Participation* part, const WorkerState& w);
Scalar active_edge_weight(const Participation* part, const EdgeState& e);

// Apply an absent-worker momentum policy to a worker that missed a sync.
void apply_absent_policy(WorkerState& w, AbsentPolicy policy, Scalar decay);

}  // namespace hfl::fl
