#include "src/fl/state.h"

namespace hfl::fl {

Scalar WorkerState::compute_gradient(const Vec& at) {
  HFL_CHECK(model && batcher, "worker state not initialized");
  batcher->next(batch_x_, batch_y_);
  last_loss = model->loss_and_gradient(at, batch_x_, batch_y_, grad);
  return last_loss;
}

Scalar WorkerState::compute_gradient_pair(const Vec& at, const Vec& anchor,
                                          Vec& grad_anchor) {
  HFL_CHECK(model && batcher, "worker state not initialized");
  batcher->next(batch_x_, batch_y_);
  model->loss_and_gradient(anchor, batch_x_, batch_y_, grad_anchor);
  last_loss = model->loss_and_gradient(at, batch_x_, batch_y_, grad);
  return last_loss;
}

Scalar WorkerState::probe_gradient(const Vec& at, Vec& out) {
  HFL_CHECK(model && aux_batcher, "worker state not initialized");
  aux_batcher->next(batch_x_, batch_y_);
  return model->loss_and_gradient(at, batch_x_, batch_y_, out);
}

void WorkerState::reset_interval_accumulators() {
  vec::fill(sum_grad, 0.0);
  vec::fill(sum_y, 0.0);
  vec::fill(sum_v, 0.0);
}

void aggregate_edge(const Topology& topo, std::size_t edge,
                    const std::vector<WorkerState>& workers,
                    WorkerVecAccessor acc, Vec& out) {
  const auto& ids = topo.workers_of_edge(edge);
  HFL_CHECK(!ids.empty(), "edge has no workers");
  out.assign(acc(workers[ids.front()]).size(), 0.0);
  for (const std::size_t id : ids) {
    const WorkerState& w = workers[id];
    vec::axpy(w.weight_in_edge, acc(w), out);
  }
}

void aggregate_global(const std::vector<WorkerState>& workers,
                      WorkerVecAccessor acc, Vec& out) {
  HFL_CHECK(!workers.empty(), "no workers to aggregate");
  out.assign(acc(workers.front()).size(), 0.0);
  for (const WorkerState& w : workers) {
    vec::axpy(w.weight_global, acc(w), out);
  }
}

const Vec& worker_x(const WorkerState& w) { return w.x; }
const Vec& worker_y(const WorkerState& w) { return w.y; }

}  // namespace hfl::fl
