#include "src/fl/state.h"

#include "src/fl/availability.h"

namespace hfl::fl {

Scalar WorkerState::compute_gradient(const Vec& at) {
  HFL_CHECK(model && batcher, "worker state not initialized");
  batcher->next(batch_x_, batch_y_);
  last_loss = model->loss_and_gradient(at, batch_x_, batch_y_, grad);
  return last_loss;
}

Scalar WorkerState::compute_gradient_pair(const Vec& at, const Vec& anchor,
                                          Vec& grad_anchor) {
  HFL_CHECK(model && batcher, "worker state not initialized");
  batcher->next(batch_x_, batch_y_);
  model->loss_and_gradient(anchor, batch_x_, batch_y_, grad_anchor);
  last_loss = model->loss_and_gradient(at, batch_x_, batch_y_, grad);
  return last_loss;
}

Scalar WorkerState::probe_gradient(const Vec& at, Vec& out) {
  HFL_CHECK(model && aux_batcher, "worker state not initialized");
  aux_batcher->next(batch_x_, batch_y_);
  return model->loss_and_gradient(at, batch_x_, batch_y_, out);
}

void WorkerState::reset_interval_accumulators() {
  vec::fill(sum_grad, 0.0);
  vec::fill(sum_y, 0.0);
  vec::fill(sum_v, 0.0);
}

namespace {

// Gather scratch for the fused aggregation below: pointer + weight arrays
// sized by the fleet, reused across sync rounds (thread-local because edges
// may aggregate concurrently under the engine's thread pool).
thread_local std::vector<const Vec*> tl_agg_vecs;
thread_local Vec tl_agg_weights;

}  // namespace

void aggregate_edge(const Topology& topo, std::size_t edge,
                    const std::vector<WorkerState>& workers,
                    WorkerVecAccessor acc, Vec& out) {
  const auto& ids = topo.workers_of_edge(edge);
  HFL_CHECK(!ids.empty(), "edge has no workers");
  tl_agg_vecs.clear();
  tl_agg_weights.clear();
  for (const std::size_t id : ids) {
    const WorkerState& w = workers[id];
    tl_agg_vecs.push_back(&acc(w));
    tl_agg_weights.push_back(w.weight_in_edge);
  }
  // Fused single pass over all member vectors (vs. one axpy sweep each).
  vec::weighted_sum(std::span<const Vec* const>(tl_agg_vecs), tl_agg_weights,
                    out);
}

void aggregate_global(const std::vector<WorkerState>& workers,
                      WorkerVecAccessor acc, Vec& out) {
  HFL_CHECK(!workers.empty(), "no workers to aggregate");
  tl_agg_vecs.clear();
  tl_agg_weights.clear();
  for (const WorkerState& w : workers) {
    tl_agg_vecs.push_back(&acc(w));
    tl_agg_weights.push_back(w.weight_global);
  }
  vec::weighted_sum(std::span<const Vec* const>(tl_agg_vecs), tl_agg_weights,
                    out);
}

void aggregate_edge(const Topology& topo, std::size_t edge,
                    const std::vector<WorkerState>& workers,
                    WorkerVecAccessor acc, Vec& out,
                    const Participation* part) {
  if (part == nullptr) {
    aggregate_edge(topo, edge, workers, acc, out);
    return;
  }
  const auto& ids = part->active_workers_of_edge(edge);
  HFL_CHECK(!ids.empty(), "edge has no participating workers this interval");
  tl_agg_vecs.clear();
  tl_agg_weights.clear();
  for (const std::size_t id : ids) {
    tl_agg_vecs.push_back(&acc(workers[id]));
    tl_agg_weights.push_back(part->weight_in_edge(id));
  }
  vec::weighted_sum(std::span<const Vec* const>(tl_agg_vecs), tl_agg_weights,
                    out);
}

void aggregate_global(const std::vector<WorkerState>& workers,
                      WorkerVecAccessor acc, Vec& out,
                      const Participation* part) {
  if (part == nullptr) {
    aggregate_global(workers, acc, out);
    return;
  }
  HFL_CHECK(part->num_active() > 0, "no participating workers this round");
  tl_agg_vecs.clear();
  tl_agg_weights.clear();
  for (const WorkerState& w : workers) {
    if (!part->worker_active(w.id)) continue;
    tl_agg_vecs.push_back(&acc(w));
    tl_agg_weights.push_back(part->weight_global(w.id));
  }
  vec::weighted_sum(std::span<const Vec* const>(tl_agg_vecs), tl_agg_weights,
                    out);
}

const Vec& worker_x(const WorkerState& w) { return w.x; }
const Vec& worker_y(const WorkerState& w) { return w.y; }

}  // namespace hfl::fl
