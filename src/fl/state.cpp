#include "src/fl/state.h"

#include <algorithm>

#include "src/common/thread_pool.h"
#include "src/fl/availability.h"

namespace hfl::fl {

Scalar WorkerState::compute_gradient(const Vec& at) {
  HFL_CHECK(model && batcher, "worker state not initialized");
  if (pending_grad_at_ != nullptr) {
    // The engine prefetched this iteration's gradient through the cohort
    // executor; `grad`/`last_loss` already hold the result and the batch was
    // already drawn. Consume it — but only for the promised parameter point.
    HFL_CHECK(pending_grad_at_ == at.data(),
              "prefetched gradient consumed at a different parameter point — "
              "the algorithm violates local_gradient_prefetchable()");
    pending_grad_at_ = nullptr;
    return last_loss;
  }
  batcher->next(batch_x_, batch_y_);
  last_loss = model->loss_and_gradient(at, batch_x_, batch_y_, grad);
  return last_loss;
}

void WorkerState::draw_batch(const Tensor*& x,
                             const std::vector<std::size_t>*& y) {
  HFL_CHECK(model && batcher, "worker state not initialized");
  HFL_CHECK(pending_grad_at_ == nullptr,
            "draw_batch with an unconsumed prefetched gradient");
  batcher->next(batch_x_, batch_y_);
  x = &batch_x_;
  y = &batch_y_;
}

void WorkerState::draw_batch_rows(const Scalar* const*& rows,
                                  const std::vector<std::size_t>*& y) {
  HFL_CHECK(model && batcher, "worker state not initialized");
  HFL_CHECK(pending_grad_at_ == nullptr,
            "draw_batch with an unconsumed prefetched gradient");
  batcher->next_rows(batch_rows_, batch_y_);
  rows = batch_rows_.data();
  y = &batch_y_;
}

void WorkerState::deposit_gradient(const Vec& at) {
  pending_grad_at_ = at.data();
}

Scalar WorkerState::compute_gradient_pair(const Vec& at, const Vec& anchor,
                                          Vec& grad_anchor) {
  HFL_CHECK(model && batcher, "worker state not initialized");
  HFL_CHECK(pending_grad_at_ == nullptr,
            "paired gradient evaluation with a pending prefetched gradient — "
            "the algorithm must report local_gradient_prefetchable() == "
            "false");
  batcher->next(batch_x_, batch_y_);
  model->loss_and_gradient(anchor, batch_x_, batch_y_, grad_anchor);
  last_loss = model->loss_and_gradient(at, batch_x_, batch_y_, grad);
  return last_loss;
}

Scalar WorkerState::probe_gradient(const Vec& at, Vec& out) {
  HFL_CHECK(model && aux_batcher, "worker state not initialized");
  aux_batcher->next(batch_x_, batch_y_);
  return model->loss_and_gradient(at, batch_x_, batch_y_, out);
}

void WorkerState::reset_interval_accumulators() {
  vec::fill(sum_grad, 0.0);
  vec::fill(sum_y, 0.0);
  vec::fill(sum_v, 0.0);
}

namespace {

// Gather scratch for the fused aggregation below: pointer + weight arrays
// sized by the fleet, reused across sync rounds. Thread-local because the
// engine runs edge_sync for distinct edges concurrently on its thread pool
// (src/fl/engine.cpp), so several aggregations may gather at once — each on
// its own thread's copy. The parallel element-range reduction below reads
// the gathering thread's arrays from pool workers, which is safe: the
// gathering thread blocks in parallel_for until the reduction finishes.
thread_local std::vector<const Vec*> tl_agg_vecs;
thread_local Vec tl_agg_weights;

// Dispatches the fused weighted sum either serially or as an element-range
// parallel reduction. Both paths produce bit-identical output for any thread
// count: each out[j] is accumulated over the inputs in fixed input-index
// order (see vec::weighted_sum_range), so the partition shape never shows up
// in the FP result. The cutoff below only picks serial vs parallel dispatch
// — never the numbers.
void weighted_sum_dispatch(std::span<const Vec* const> vecs,
                           std::span<const Scalar> weights, Vec& out,
                           ThreadPool* pool) {
  const std::size_t n = vecs.empty() ? 0 : vecs[0]->size();
  constexpr std::size_t kMinParallelElems = 1 << 14;
  if (pool == nullptr || pool->size() <= 1 || n < kMinParallelElems) {
    vec::weighted_sum(vecs, weights, out);
    return;
  }
  out.resize(n);
  const std::size_t chunks = pool->size();
  const std::size_t chunk = (n + chunks - 1) / chunks;
  pool->parallel_for(chunks, [&](std::size_t c) {
    const std::size_t lo = c * chunk;
    const std::size_t hi = std::min(n, lo + chunk);
    if (lo < hi) vec::weighted_sum_range(vecs, weights, out, lo, hi);
  });
}

}  // namespace

void aggregate_edge(const Topology& topo, std::size_t edge,
                    const WorkerSet& workers, WorkerVecAccessor acc,
                    Vec& out) {
  const auto& ids = topo.workers_of_edge(edge);
  HFL_CHECK(!ids.empty(), "edge has no workers");
  tl_agg_vecs.clear();
  tl_agg_weights.clear();
  for (const WorkerId id : ids) {
    const WorkerState& w = workers[id];
    tl_agg_vecs.push_back(&acc(w));
    tl_agg_weights.push_back(w.weight_in_edge);
  }
  // Fused single pass over all member vectors (vs. one axpy sweep each).
  vec::weighted_sum(std::span<const Vec* const>(tl_agg_vecs), tl_agg_weights,
                    out);
}

void aggregate_global(const WorkerSet& workers, WorkerVecAccessor acc,
                      Vec& out) {
  HFL_CHECK(workers.num_materialized() > 0, "no workers to aggregate");
  tl_agg_vecs.clear();
  tl_agg_weights.clear();
  for (const WorkerState& w : workers) {
    tl_agg_vecs.push_back(&acc(w));
    tl_agg_weights.push_back(w.weight_global);
  }
  vec::weighted_sum(std::span<const Vec* const>(tl_agg_vecs), tl_agg_weights,
                    out);
}

void aggregate_edge(const Topology& topo, std::size_t edge,
                    const WorkerSet& workers, WorkerVecAccessor acc, Vec& out,
                    const Participation* part) {
  if (part == nullptr) {
    aggregate_edge(topo, edge, workers, acc, out);
    return;
  }
  const auto& ids = part->active_workers_of_edge(edge);
  HFL_CHECK(!ids.empty(), "edge has no participating workers this interval");
  tl_agg_vecs.clear();
  tl_agg_weights.clear();
  for (const WorkerId id : ids) {
    tl_agg_vecs.push_back(&acc(workers[id]));
    tl_agg_weights.push_back(part->weight_in_edge(id));
  }
  vec::weighted_sum(std::span<const Vec* const>(tl_agg_vecs), tl_agg_weights,
                    out);
}

void aggregate_global(const WorkerSet& workers, WorkerVecAccessor acc,
                      Vec& out, const Participation* part) {
  aggregate_global(workers, acc, out, part, nullptr);
}

void aggregate_global(const WorkerSet& workers, WorkerVecAccessor acc,
                      Vec& out, const Participation* part, ThreadPool* pool) {
  HFL_CHECK(workers.num_materialized() > 0, "no workers to aggregate");
  if (part != nullptr) {
    HFL_CHECK(part->num_active() > 0, "no participating workers this round");
  }
  // Iterates the materialized states only (ascending id, the dense engine's
  // exact order): with a roster every active worker is materialized, so the
  // gather — and therefore the FP summation order — is identical across the
  // dense and virtualized layouts.
  tl_agg_vecs.clear();
  tl_agg_weights.clear();
  for (const WorkerState& w : workers) {
    if (part != nullptr && !part->worker_active(w.id)) continue;
    tl_agg_vecs.push_back(&acc(w));
    tl_agg_weights.push_back(part != nullptr ? part->weight_global(w.id)
                                             : w.weight_global);
  }
  weighted_sum_dispatch(std::span<const Vec* const>(tl_agg_vecs),
                        tl_agg_weights, out, pool);
}

void aggregate_edges(const std::vector<EdgeState>& edges, EdgeVecAccessor acc,
                     Vec& out, const Participation* part, ThreadPool* pool) {
  tl_agg_vecs.clear();
  tl_agg_weights.clear();
  for (const EdgeState& e : edges) {
    if (!is_edge_active(part, e.id)) continue;
    tl_agg_vecs.push_back(&acc(e));
    tl_agg_weights.push_back(active_edge_weight(part, e));
  }
  HFL_CHECK(!tl_agg_vecs.empty(), "no reachable edges to aggregate");
  weighted_sum_dispatch(std::span<const Vec* const>(tl_agg_vecs),
                        tl_agg_weights, out, pool);
}

const Vec& worker_x(const WorkerState& w) { return w.x; }
const Vec& worker_y(const WorkerState& w) { return w.y; }
const Vec& edge_x_plus(const EdgeState& e) { return e.x_plus; }
const Vec& edge_y_minus(const EdgeState& e) { return e.y_minus; }

}  // namespace hfl::fl
