// Three-tier topology: one cloud, L edge nodes, N workers.
//
// Worker {i, ℓ} in the paper's notation is globally indexed here; the
// topology maps between global worker ids and (edge, slot) pairs. Two-tier
// algorithms run on the same structure and simply ignore the edge tier (the
// engine skips edge synchronization for them).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace hfl::fl {

// Global worker identifier. Compact on purpose: the population subsystem
// (src/pop/) keeps million-worker descriptor and roster arrays, so worker
// ids are 32-bit throughout — `std::size_t` stays reserved for counts and
// indices into local arrays. 4B workers is plenty of headroom.
using WorkerId = std::uint32_t;

class Topology {
 public:
  // workers_per_edge[ℓ] = C_ℓ. Every edge must serve at least one worker.
  explicit Topology(std::vector<std::size_t> workers_per_edge);

  // L edges each serving the same number of workers.
  static Topology uniform(std::size_t num_edges,
                          std::size_t workers_per_edge);

  std::size_t num_edges() const { return workers_per_edge_.size(); }
  std::size_t num_workers() const { return num_workers_; }
  std::size_t workers_in_edge(std::size_t edge) const;

  std::size_t edge_of_worker(std::size_t worker) const;
  // Global ids of the workers served by `edge`, in ascending order.
  const std::vector<WorkerId>& workers_of_edge(std::size_t edge) const;

 private:
  std::vector<std::size_t> workers_per_edge_;
  std::vector<std::uint32_t> edge_of_worker_;
  std::vector<std::vector<WorkerId>> workers_of_edge_;
  std::size_t num_workers_ = 0;
};

}  // namespace hfl::fl
