// Mutable per-tier simulation state.
//
// WorkerState mirrors the paper's worker {i, ℓ}: model parameters x, momentum
// parameter y, velocity v = y_t − y_{t−1}, the interval accumulators that
// Algorithm 1 line 9 uploads (Σ∇F_i and Σy_i, plus Σv_i for the velocity
// interpretation of eq. (6) — see core/hieradmo.h), the worker's data stream,
// and a scratch model instance used to evaluate gradients. EdgeState carries
// the post-aggregation values y_{ℓ−}, y_{ℓ+}, x_{ℓ+} and the currently
// adapted γℓ. CloudState carries the cloud model and the cloud-aggregated
// worker momentum.
//
// Generic algorithm scratch ("extra" slots) lets two-tier baselines store
// their server momenta without widening this struct per algorithm.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/common/errors.h"
#include "src/common/vec_ops.h"
#include "src/data/batcher.h"
#include "src/fl/topology.h"
#include "src/nn/model.h"

namespace hfl {

class ThreadPool;  // src/common/thread_pool.h

}  // namespace hfl

namespace hfl::fl {

struct WorkerState {
  WorkerId id = 0;
  std::size_t edge = 0;
  Scalar weight_in_edge = 0;  // D_{i,ℓ} / D_ℓ
  Scalar weight_global = 0;   // D_{i,ℓ} / D
  std::size_t num_samples = 0;

  Vec x;       // worker model parameter x_{i,ℓ}
  Vec y;       // worker momentum parameter y_{i,ℓ}
  Vec v;       // velocity v_{i,ℓ} = y_t − y_{t−1}
  Vec grad;    // most recent mini-batch gradient ∇F_i(x^{t−1})
  Scalar last_loss = 0;

  // Interval accumulators (reset at every edge synchronization).
  Vec sum_grad;  // Σ_t ∇F_i(x^t)
  Vec sum_y;     // Σ_t y^t_i
  Vec sum_v;     // Σ_t v^t_i

  std::unique_ptr<nn::Model> model;
  std::unique_ptr<data::Batcher> batcher;
  std::unique_ptr<data::Batcher> aux_batcher;  // for gradient probes (Mime)

  // Named algorithm-specific vectors (server momentum copies, etc.).
  std::map<std::string, Vec> extra;

  // Draw the next mini-batch and compute the gradient of the local loss at
  // `at`; stores it in `grad` and returns the batch loss.
  //
  // Fused-path interplay: if the engine has prefetched this iteration's batch
  // and deposited its gradient (draw_batch + deposit_gradient below), the
  // deposit is consumed instead of re-running the model — but ONLY when `at`
  // is the exact vector the deposit was computed at (pointer identity with
  // the engine's Algorithm::local_gradient_point). A mismatch fails loudly:
  // it means an algorithm broke the prefetch contract.
  Scalar compute_gradient(const Vec& at);

  // Engine-side half of the fused cohort path (src/fl/engine.cpp). draw_batch
  // advances the main stream exactly like compute_gradient's draw and exposes
  // the batch; deposit_gradient marks `grad`/`last_loss` (already filled by
  // the cohort executor) as the precomputed result for the parameter vector
  // `at`, to be consumed by the next compute_gradient call.
  void draw_batch(const Tensor*& x, const std::vector<std::size_t>*& y);
  // Zero-copy draw for row-gather cohort execution (nn::CohortModel): same
  // stream advancement as draw_batch, but exposes per-sample row pointers
  // into the dataset instead of a gathered tensor. The two draw forms are
  // interchangeable draw-for-draw; the batch size is y->size().
  void draw_batch_rows(const Scalar* const*& rows,
                       const std::vector<std::size_t>*& y);
  void deposit_gradient(const Vec& at);

  // Draw ONE mini-batch and evaluate the gradient at two parameter points on
  // that same batch (paired SVRG-style evaluation: the sampling noise of the
  // two gradients cancels in their difference). `grad` receives ∇F_B(at);
  // `grad_anchor` receives ∇F_B(anchor). Returns the batch loss at `at`.
  Scalar compute_gradient_pair(const Vec& at, const Vec& anchor,
                               Vec& grad_anchor);

  // Gradient probe at arbitrary parameters using the auxiliary batch stream
  // (does not disturb the main stream). Result in `out`.
  Scalar probe_gradient(const Vec& at, Vec& out);

  void reset_interval_accumulators();

 private:
  Tensor batch_x_;
  std::vector<std::size_t> batch_y_;
  std::vector<const Scalar*> batch_rows_;  // draw_batch_rows scratch
  // Non-null while a prefetched gradient awaits its compute_gradient call;
  // points at the Vec the gradient was evaluated at.
  const Scalar* pending_grad_at_ = nullptr;
};

struct EdgeState {
  std::size_t id = 0;
  Scalar weight_global = 0;  // D_ℓ / D

  Vec x_plus;   // x_{ℓ+}: edge model after the edge momentum update
  Vec y_plus;   // y_{ℓ+}: edge momentum parameter
  Vec y_minus;  // y_{ℓ−}: edge-aggregated worker momentum

  Scalar gamma_edge = 0;       // current (possibly adapted) γℓ
  Scalar last_cos_theta = 0;   // diagnostics: cosθ_{k,ℓ} of the last adaptation

  std::map<std::string, Vec> extra;
};

struct CloudState {
  Vec x;  // cloud model x
  Vec y;  // cloud-aggregated worker momentum y
  std::map<std::string, Vec> extra;
};

// Index-based view over the materialized WorkerStates of a run. The classic
// dense engine materializes every worker, so pool slot i holds worker id i;
// the virtualized engine (src/pop/cohort_store.h) materializes only the
// sampled cohort and supplies a population-sized id → slot table. Algorithms
// address workers by GLOBAL id (operator[]) or iterate the materialized
// states in ascending-id order (begin/end); both patterns behave identically
// across the two layouts, which is what keeps the dense and virtualized
// paths bit-identical (tests/pop_parity_test.cpp). Addressing a worker that
// is not materialized fails loudly — it means engine-side roster logic and
// the cohort store disagree.
class WorkerSet {
 public:
  static constexpr std::uint32_t kNoSlot = 0xFFFFFFFFu;

  WorkerSet() = default;
  // Dense view: pool slot i holds worker id i. The pool must outlive the
  // view (the view tracks the vector object, not its buffer).
  explicit WorkerSet(std::vector<WorkerState>* pool) : pool_(pool) {}
  // Sparse view over an ascending-id cohort. `slot_of_id` has one entry per
  // population id (kNoSlot = not materialized) and must outlive the view.
  WorkerSet(std::vector<WorkerState>* pool, std::size_t population,
            const std::vector<std::uint32_t>* slot_of_id)
      : pool_(pool), population_(population), slot_of_id_(slot_of_id) {}

  // Population size (== materialized count for dense views).
  std::size_t size() const {
    return slot_of_id_ != nullptr ? population_ : pool_->size();
  }
  std::size_t num_materialized() const { return pool_->size(); }
  bool is_materialized(std::size_t id) const {
    return slot_of_id_ == nullptr ? id < pool_->size()
                                  : (*slot_of_id_)[id] != kNoSlot;
  }

  WorkerState& operator[](std::size_t id) {
    return (*pool_)[slot_of(id)];
  }
  const WorkerState& operator[](std::size_t id) const {
    return (*pool_)[slot_of(id)];
  }

  // Materialized states by pool slot (ascending worker id).
  WorkerState& slot(std::size_t s) { return (*pool_)[s]; }
  const WorkerState& slot(std::size_t s) const { return (*pool_)[s]; }

  // Iterate the materialized states in ascending-id order.
  std::vector<WorkerState>::iterator begin() { return pool_->begin(); }
  std::vector<WorkerState>::iterator end() { return pool_->end(); }
  std::vector<WorkerState>::const_iterator begin() const {
    return pool_->begin();
  }
  std::vector<WorkerState>::const_iterator end() const { return pool_->end(); }

 private:
  std::size_t slot_of(std::size_t id) const {
    if (slot_of_id_ == nullptr) return id;
    const std::uint32_t s = (*slot_of_id_)[id];
    HFL_CHECK(s != kNoSlot,
              "worker " + std::to_string(id) +
                  " is not materialized — roster and cohort store disagree");
    return s;
  }

  std::vector<WorkerState>* pool_ = nullptr;
  std::size_t population_ = 0;
  const std::vector<std::uint32_t>* slot_of_id_ = nullptr;  // null = dense
};

// Weighted aggregation helpers. The accessor receives a worker/edge and
// returns the vector to aggregate; weights are the paper's D-ratios.
using WorkerVecAccessor = const Vec& (*)(const WorkerState&);
using EdgeVecAccessor = const Vec& (*)(const EdgeState&);

class Participation;  // src/fl/availability.h

// out = Σ_{i ∈ edge ℓ} (D_{i,ℓ}/D_ℓ) · acc(worker_i). Requires every worker
// of the edge to be materialized (full-participation aggregation).
void aggregate_edge(const Topology& topo, std::size_t edge,
                    const WorkerSet& workers, WorkerVecAccessor acc, Vec& out);

// out = Σ_i (D_{i,ℓ}/D) · acc(worker_i) over all materialized workers
// (== all workers in the dense engine).
void aggregate_global(const WorkerSet& workers, WorkerVecAccessor acc,
                      Vec& out);

// Partial-participation overloads: only surviving workers contribute, with
// their data weights renormalized over the survivors. A null `part` takes
// the exact full-participation path above (bit-identical results). The
// participating set must be non-empty (the engine skips syncs for tiers
// with no survivors).
void aggregate_edge(const Topology& topo, std::size_t edge,
                    const WorkerSet& workers, WorkerVecAccessor acc, Vec& out,
                    const Participation* part);
void aggregate_global(const WorkerSet& workers, WorkerVecAccessor acc,
                      Vec& out, const Participation* part);

// Deterministic parallel reduction: the element range of `out` is split
// across the pool's threads and each element is accumulated over the inputs
// in fixed input-index order (vec::weighted_sum_range), so the result is
// bit-identical to the serial overloads for every thread count and partition
// shape. A null pool (or a small problem) takes the serial path — same bits
// either way. Algorithms reach the pool through `Context::pool`.
void aggregate_global(const WorkerSet& workers, WorkerVecAccessor acc,
                      Vec& out, const Participation* part, ThreadPool* pool);

// Cloud-tier edge aggregation: out = Σ_{reachable edges ℓ} w_ℓ · acc(edge_ℓ)
// with the weights renormalized over the survivors (full roster when `part`
// is null). Replaces the per-algorithm axpy loops so the cloud reduction
// shares the deterministic parallel path above.
void aggregate_edges(const std::vector<EdgeState>& edges, EdgeVecAccessor acc,
                     Vec& out, const Participation* part,
                     ThreadPool* pool = nullptr);

// Common accessors.
const Vec& worker_x(const WorkerState& w);
const Vec& worker_y(const WorkerState& w);
const Vec& edge_x_plus(const EdgeState& e);
const Vec& edge_y_minus(const EdgeState& e);

}  // namespace hfl::fl
