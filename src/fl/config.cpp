#include "src/fl/config.h"

#include <string>

#include "src/common/errors.h"

namespace hfl::fl {

const char* to_string(ExecPolicy policy) {
  switch (policy) {
    case ExecPolicy::kSync:
      return "sync";
    case ExecPolicy::kSemiAsync:
      return "semi_async";
    case ExecPolicy::kAsync:
      return "async";
  }
  return "unknown";
}

void RunConfig::validate() const {
  HFL_CHECK(total_iterations > 0, "total_iterations must be positive");
  HFL_CHECK(tau > 0, "tau (worker-edge period) must be positive");
  HFL_CHECK(pi > 0, "pi (edge-cloud period) must be positive");
  HFL_CHECK(total_iterations % (tau * pi) == 0,
            "total_iterations (" + std::to_string(total_iterations) +
                ") must be a multiple of tau * pi (" +
                std::to_string(tau * pi) + ")");
  HFL_CHECK(eta > 0, "learning rate eta must be positive");
  HFL_CHECK(gamma >= 0 && gamma < 1, "momentum gamma must be in [0, 1)");
  HFL_CHECK(gamma_edge >= 0 && gamma_edge < 1,
            "edge momentum gamma_edge must be in [0, 1)");
  HFL_CHECK(batch_size > 0, "batch_size must be positive");
  HFL_CHECK(!mixed_precision || batched,
            "mixed_precision requires the batched execution path "
            "(set batched = true or drop mixed_precision)");

  // Event-driven policy fields (DESIGN.md §12).
  HFL_CHECK(policy != ExecPolicy::kSemiAsync || semi_async_deadline_s > 0,
            "policy = semi_async requires semi_async_deadline_s > 0 "
            "(the modeled seconds each aggregator round waits before "
            "admitting the updates that have arrived)");
  HFL_CHECK(policy == ExecPolicy::kSemiAsync || semi_async_deadline_s == 0,
            "semi_async_deadline_s is only meaningful under policy = "
            "semi_async; got " + std::to_string(semi_async_deadline_s) +
            " under policy = " + to_string(policy) +
            " (set it to 0 or switch the policy)");
  HFL_CHECK(max_staleness >= 0,
            "max_staleness must be >= 0 (updates more than max_staleness "
            "aggregator versions behind are dropped); got " +
                std::to_string(max_staleness));
  HFL_CHECK(staleness_decay > 0 && staleness_decay <= 1,
            "staleness_decay must be in (0, 1] — the staleness weight is "
            "staleness_decay^tau, so 0 or negative values erase or flip "
            "updates; got " + std::to_string(staleness_decay));
  HFL_CHECK(stale_momentum_decay >= 0 && stale_momentum_decay <= 1,
            "stale_momentum_decay must be in [0, 1] (1 = hold momentum, "
            "0 = reset); got " + std::to_string(stale_momentum_decay));
  HFL_CHECK(!adaptive_deadline || policy == ExecPolicy::kSemiAsync,
            "adaptive_deadline tunes semi-async admission deadlines and "
            "requires policy = semi_async; got policy = " +
                std::string(to_string(policy)));
  HFL_CHECK(deadline_margin > 0,
            "deadline_margin must be > 0 (it scales the EWMA'd arrival "
            "spread into the next admission deadline); got " +
                std::to_string(deadline_margin));
  HFL_CHECK(policy == ExecPolicy::kSync || !batched,
            "the batched cohort path is barrier-shaped and unsupported "
            "under policy = " + std::string(to_string(policy)) +
            " (set batched = false; note batched defaults to true)");
  HFL_CHECK(policy == ExecPolicy::kSync || eval_every == 0,
            "eval_every is iteration-indexed and undefined under policy = " +
                std::string(to_string(policy)) +
                "; event-driven runs evaluate at t = 0 and at every cloud "
                "synchronization (set eval_every = 0)");
}

}  // namespace hfl::fl
