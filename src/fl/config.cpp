#include "src/fl/config.h"

#include <string>

#include "src/common/errors.h"

namespace hfl::fl {

void RunConfig::validate() const {
  HFL_CHECK(total_iterations > 0, "total_iterations must be positive");
  HFL_CHECK(tau > 0, "tau (worker-edge period) must be positive");
  HFL_CHECK(pi > 0, "pi (edge-cloud period) must be positive");
  HFL_CHECK(total_iterations % (tau * pi) == 0,
            "total_iterations (" + std::to_string(total_iterations) +
                ") must be a multiple of tau * pi (" +
                std::to_string(tau * pi) + ")");
  HFL_CHECK(eta > 0, "learning rate eta must be positive");
  HFL_CHECK(gamma >= 0 && gamma < 1, "momentum gamma must be in [0, 1)");
  HFL_CHECK(gamma_edge >= 0 && gamma_edge < 1,
            "edge momentum gamma_edge must be in [0, 1)");
  HFL_CHECK(batch_size > 0, "batch_size must be positive");
  HFL_CHECK(!mixed_precision || batched,
            "mixed_precision requires the batched execution path "
            "(set batched = true or drop mixed_precision)");
}

}  // namespace hfl::fl
