#include "src/fl/engine.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <numeric>

#include "src/common/logging.h"
#include "src/fl/comm_model.h"
#include "src/obs/comm.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace hfl::fl {

Engine::Engine(nn::ModelFactory factory, const data::TrainTest& data,
               data::Partition partition, Topology topo, RunConfig cfg)
    : factory_(std::move(factory)),
      data_(&data),
      partition_(std::move(partition)),
      topo_(std::move(topo)),
      cfg_(cfg) {
  // Runtime switches for the fused cohort path, applied before validation so
  // HFL_MIXED_PRECISION=1 HFL_BATCHED=0 fails with the config error instead
  // of silently ignoring one flag.
  const auto env_flag = [](const char* name, bool& flag) {
    if (const char* v = std::getenv(name)) {
      flag = !(v[0] == '0' && v[1] == '\0');
    }
  };
  env_flag("HFL_BATCHED", cfg_.batched);
  env_flag("HFL_MIXED_PRECISION", cfg_.mixed_precision);
  cfg_.validate();
  HFL_CHECK(cfg_.policy == ExecPolicy::kSync,
            std::string("fl::Engine only executes the sync policy; policy = ") +
                to_string(cfg_.policy) +
                " needs the event-driven evt::AsyncEngine");
  HFL_CHECK(partition_.size() == topo_.num_workers(),
            "partition size must equal worker count");
  for (const auto& p : partition_) {
    HFL_CHECK(!p.empty(), "every worker needs at least one sample");
  }
  pool_ = std::make_unique<ThreadPool>(cfg_.num_threads);
  eval_models_.reserve(pool_->size());
  for (std::size_t i = 0; i < pool_->size(); ++i) {
    eval_models_.push_back(factory_());
  }
  if (cfg_.batched) {
    // nullptr (unsupported architecture/loss) simply keeps the per-worker
    // path for the whole run.
    cohort_ = nn::CohortModel::create(factory_);
  }
}

void Engine::prefetch_cohort_gradients(Algorithm& alg, Context& ctx,
                                       WorkerSet& workers) {
  cohort_items_.clear();
  cohort_ids_.clear();
  // Zero-copy draws when the plan reads flat sample rows in place (MLPs /
  // logistic models at full precision): the batch is never gathered into a
  // tensor, the GEMMs read dataset rows directly. Bit-identical to the
  // gathered path (same draws, same products — see nn::CohortModel).
  const bool row_gather =
      cohort_->supports_row_gather() && !cfg_.mixed_precision;
  for (WorkerState& w : workers) {
    if (ctx.part && !ctx.part->worker_active(w.id)) continue;
    nn::CohortItem item;
    // Engine-side draw advances the worker's stream exactly like the
    // compute_gradient it replaces; streams are worker-owned, so serial
    // draws here see the same sequence the parallel local_steps would.
    if (row_gather) {
      w.draw_batch_rows(item.x_rows, item.y);
    } else {
      w.draw_batch(item.x, item.y);
    }
    item.params = alg.local_gradient_point(w).data();
    item.grad = w.grad.data();
    cohort_items_.push_back(item);
    cohort_ids_.push_back(w.id);
  }
  if (cohort_items_.empty()) return;

  cohort_->run(cohort_items_, pool_.get(), cfg_.mixed_precision);

  for (std::size_t i = 0; i < cohort_items_.size(); ++i) {
    WorkerState& w = workers[cohort_ids_[i]];
    w.last_loss = cohort_items_[i].loss;
    w.deposit_gradient(alg.local_gradient_point(w));
  }
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    reg.counter("engine.cohort.fused_grads").add(cohort_items_.size());
    reg.histogram("engine.cohort.size", "",
                  {1, 2, 4, 8, 16, 32, 64, 128})
        .observe(static_cast<double>(cohort_items_.size()));
  }
}

void Engine::build_states(Algorithm& alg, RunState& rs) {
  Rng root(cfg_.seed);
  Rng init_rng = root.fork(0x1217);

  // One shared initial point (Algorithm 1 lines 1–2).
  auto init_model = factory_();
  init_model->init_params(init_rng);
  const Vec x0 = init_model->get_params();

  // Data-size weights.
  std::size_t total_samples = 0;
  std::vector<std::size_t> edge_samples(topo_.num_edges(), 0);
  for (std::size_t w = 0; w < topo_.num_workers(); ++w) {
    total_samples += partition_[w].size();
    edge_samples[topo_.edge_of_worker(w)] += partition_[w].size();
  }

  if (provider_ != nullptr) {
    // Virtualized run: the provider owns worker-state lifetime; the engine
    // keeps only the id-addressed view (its internal pointers track the
    // provider's containers across cohort changes). Algorithm::init and
    // init_worker are deferred to begin_virtual_interval — they need the
    // first cohort materialized.
    provider_->begin_run(x0);
    rs.worker_pool.clear();
    rs.workers = provider_->workers();
  } else {
    build_dense_workers(rs, x0, edge_samples, total_samples);
  }

  std::vector<EdgeState>& edges = rs.edges;
  edges.clear();
  edges.resize(topo_.num_edges());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    EdgeState& es = edges[e];
    es.id = e;
    es.weight_global = static_cast<Scalar>(edge_samples[e]) /
                       static_cast<Scalar>(total_samples);
    es.x_plus = x0;
    es.y_plus = x0;
    es.y_minus = x0;
    es.gamma_edge = cfg_.gamma_edge;
  }

  rs.cloud.x = x0;
  rs.cloud.y = x0;
  rs.cloud.extra.clear();

  if (provider_ == nullptr) {
    Context ctx{&cfg_, &topo_, &rs.workers, &rs.edges, &rs.cloud, 0, nullptr,
                pool_.get()};
    alg.init(ctx);
    for (WorkerState& w : rs.worker_pool) alg.init_worker(ctx, w);
  }
}

void Engine::build_dense_workers(RunState& rs, const Vec& x0,
                                 const std::vector<std::size_t>& edge_samples,
                                 std::size_t total_samples) {
  const std::size_t n = x0.size();
  Rng root(cfg_.seed);
  root.fork(0x1217);  // skip the init-model stream: workers are forks 2+i

  std::vector<WorkerState>& workers = rs.worker_pool;
  workers.clear();
  workers.resize(topo_.num_workers());
  for (std::size_t i = 0; i < workers.size(); ++i) {
    WorkerState& w = workers[i];
    w.id = static_cast<WorkerId>(i);
    w.edge = topo_.edge_of_worker(i);
    w.num_samples = partition_[i].size();
    w.weight_in_edge = static_cast<Scalar>(w.num_samples) /
                       static_cast<Scalar>(edge_samples[w.edge]);
    w.weight_global = static_cast<Scalar>(w.num_samples) /
                      static_cast<Scalar>(total_samples);
    w.x = x0;
    w.y = x0;
    w.v.assign(n, 0.0);
    w.grad.assign(n, 0.0);
    w.sum_grad.assign(n, 0.0);
    w.sum_y.assign(n, 0.0);
    w.sum_v.assign(n, 0.0);
    w.model = factory_();
    // The lazy materializer (src/pop/cohort_store.cpp) reproduces this exact
    // stream derivation via fork_nth: worker i's fork is the (2+i)-th taken
    // from root (fork 1 is the init-model stream). Keep the two in lockstep.
    Rng wrng = root.fork(1000 + i);
    w.batcher = std::make_unique<data::Batcher>(
        data_->train, partition_[i], cfg_.batch_size, wrng.fork(1));
    w.aux_batcher = std::make_unique<data::Batcher>(
        data_->train, partition_[i], cfg_.batch_size, wrng.fork(2));
  }
  rs.workers = WorkerSet(&rs.worker_pool);
}

nn::EvalResult Engine::evaluate(const Vec& params) {
  const data::Dataset& test = data_->test;
  const std::size_t n = cfg_.eval_max_samples == 0
                            ? test.size()
                            : std::min(test.size(), cfg_.eval_max_samples);
  HFL_CHECK(n > 0, "empty test set");

  constexpr std::size_t kEvalBatch = 128;
  const std::size_t num_batches = (n + kEvalBatch - 1) / kEvalBatch;

  std::vector<Scalar> losses(num_batches, 0.0);
  std::vector<Scalar> correct(num_batches, 0.0);
  std::vector<std::size_t> counts(num_batches, 0);

  // One contiguous batch range per per-thread eval model, accumulated into
  // block-local buffers and written back once per block: threads never
  // interleave stores into the shared arrays mid-loop (the earlier
  // round-robin layout had every thread bouncing the same cache lines on
  // each batch — false sharing on the eval hot path). The final merge below
  // walks batches in index order, so the totals are bit-identical for every
  // thread count and block shape.
  const std::size_t num_blocks = std::min(num_batches, eval_models_.size());
  const std::size_t batches_per_block =
      (num_batches + num_blocks - 1) / num_blocks;
  pool_->parallel_for(num_blocks, [&](std::size_t blk) {
    const std::size_t blo = blk * batches_per_block;
    const std::size_t bhi = std::min(num_batches, blo + batches_per_block);
    if (blo >= bhi) return;
    nn::Model& model = *eval_models_[blk];
    model.set_params(params);
    Tensor x;
    std::vector<std::size_t> y;
    std::vector<std::size_t> idx;
    std::vector<Scalar> local_loss(bhi - blo), local_correct(bhi - blo);
    std::vector<std::size_t> local_count(bhi - blo);
    for (std::size_t b = blo; b < bhi; ++b) {
      const std::size_t lo = b * kEvalBatch;
      const std::size_t hi = std::min(n, lo + kEvalBatch);
      idx.resize(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) idx[i - lo] = i;
      test.gather(idx, x, y);
      const nn::EvalResult r = model.evaluate(x, y);
      local_loss[b - blo] = r.loss * static_cast<Scalar>(hi - lo);
      local_correct[b - blo] = r.accuracy * static_cast<Scalar>(hi - lo);
      local_count[b - blo] = hi - lo;
    }
    std::copy(local_loss.begin(), local_loss.end(), losses.begin() + blo);
    std::copy(local_correct.begin(), local_correct.end(),
              correct.begin() + blo);
    std::copy(local_count.begin(), local_count.end(), counts.begin() + blo);
  });

  nn::EvalResult total;
  std::size_t count = 0;
  for (std::size_t b = 0; b < num_batches; ++b) {
    total.loss += losses[b];
    total.accuracy += correct[b];
    count += counts[b];
  }
  total.loss /= static_cast<Scalar>(count);
  total.accuracy /= static_cast<Scalar>(count);
  return total;
}

void Engine::prepare_run(Algorithm& alg, const ParticipationSchedule* schedule,
                         const AvailabilityOracle* oracle, RunState& rs) {
  if (!alg.three_tier()) {
    HFL_CHECK(cfg_.pi == 1,
              "two-tier algorithms require pi == 1 (use tau as the global "
              "aggregation period)");
  }
  rs.start = std::chrono::steady_clock::now();

  build_states(alg, rs);

  // Logical synchronization payloads (obs/comm.h). Everything recorded from
  // these is derived from state the simulation already computed; telemetry
  // being on or off cannot change the run (no RNG draws, no reordering).
  const CommProfile comm_profile = comm_profile_for(alg.name());
  const std::uint64_t param_bytes =
      static_cast<std::uint64_t>(rs.cloud.x.size()) * sizeof(Scalar);
  const auto payload = [param_bytes](Scalar vectors) {
    return static_cast<std::uint64_t>(vectors *
                                      static_cast<Scalar>(param_bytes));
  };
  rs.worker_up_bytes = payload(comm_profile.worker_upload_vectors);
  rs.worker_down_bytes = payload(comm_profile.worker_download_vectors);
  rs.edge_up_bytes = payload(comm_profile.edge_upload_vectors);
  rs.edge_down_bytes = payload(comm_profile.edge_download_vectors);

  if (provider_ != nullptr) {
    HFL_CHECK(schedule == nullptr,
              "virtualized runs take availability from an oracle, not a "
              "dense schedule");
    if (provider_->sampling()) {
      const std::size_t global_period = cfg_.tau * cfg_.pi;
      HFL_CHECK(cfg_.eval_every == 0 || cfg_.eval_every % global_period == 0,
                "sampled virtualized runs evaluate only at cloud rounds "
                "(eval_every must be 0 or a multiple of tau*pi): the "
                "mid-interval virtual global model would need every worker "
                "materialized");
      HFL_CHECK(!alg.probes_population() || cfg_.mime_cohort_stats,
                alg.name() +
                    " probes every worker's gradient for its server "
                    "statistic, but cohort sampling materializes only the "
                    "sampled workers; set cfg.mime_cohort_stats = true to "
                    "estimate the statistic from the cohort instead");
    }
    if (oracle != nullptr) {
      // Unmaterialized workers receive the policy lazily: the provider
      // stamps each spill with the interval clock and replays the policy
      // once per missed interval at restore (bit-identical to a
      // materialized worker receiving absent_sync every interval).
      provider_->set_absent_replay(oracle->absent_policy(),
                                   oracle->absent_decay());
    }
    // Sampling and oracle faults both flow through a manual-roster
    // Participation over the whole population; neither active → part stays
    // null and the run is the exact full-participation path.
    if (provider_->sampling() || oracle != nullptr) {
      rs.part = std::make_unique<Participation>(topo_, nullptr,
                                                provider_->base_weights(),
                                                /*edge_faults=*/alg.three_tier());
      if (oracle != nullptr) {
        rs.part->set_absent_policy(oracle->absent_policy(),
                                   oracle->absent_decay());
      }
    }
  } else if (schedule != nullptr && !schedule->is_noop()) {
    // A null or no-op schedule takes the pre-fault code path, byte for byte:
    // `part` stays null and every helper reduces to the full roster.
    schedule->validate(topo_, cfg_);
    rs.part = std::make_unique<Participation>(topo_, *schedule, rs.workers,
                                              /*edge_faults=*/alg.three_tier());
  }

  rs.ctx = Context{&cfg_,     &topo_,        &rs.workers, &rs.edges,
                   &rs.cloud, 0,             rs.part.get(), pool_.get()};

  rs.result.algorithm = alg.name();
  if (rs.part) {
    rs.result.worker_miss_counts.assign(rs.workers.size(), 0);
    rs.participation_counts.assign(rs.workers.size(), 0);
    rs.num_part_intervals = 0;
  }

  if (provider_ != nullptr) {
    begin_virtual_interval(alg, rs, 1, oracle, /*first_interval=*/true);
  }
}

void Engine::begin_virtual_interval(Algorithm& alg, RunState& rs,
                                    std::size_t k,
                                    const AvailabilityOracle* oracle,
                                    bool first_interval) {
  const std::size_t population = provider_->population();
  provider_->begin_interval(k);
  std::vector<WorkerId> fresh;
  if (provider_->sampling()) {
    provider_->sample_cohort(k, rs.cohort_ids, rs.cohort_mult);
    fresh = provider_->set_cohort(rs.cohort_ids);
  } else if (first_interval) {
    // Full-cohort mode: materialize everyone once; later intervals reuse
    // the pool untouched (and rs.cohort_ids keeps describing it).
    rs.cohort_ids.resize(population);
    std::iota(rs.cohort_ids.begin(), rs.cohort_ids.end(), WorkerId{0});
    rs.cohort_mult.assign(population, 1.0);
    fresh = provider_->set_cohort(rs.cohort_ids);
  }

  if (rs.part != nullptr) {
    // Compose interval k's roster: cohort members are up unless the oracle
    // says otherwise; everyone outside the cohort is absent. Multiplicity
    // (> 1 only for with-replacement draws) scales aggregation mass so the
    // cohort estimator stays unbiased.
    bool scaled = false;
    rs.cohort_up.resize(rs.cohort_ids.size());
    for (std::size_t i = 0; i < rs.cohort_ids.size(); ++i) {
      const WorkerId id = rs.cohort_ids[i];
      rs.cohort_up[i] =
          (oracle == nullptr || oracle->worker_available(k, id)) ? 1 : 0;
      if (rs.cohort_mult[i] != 1.0) scaled = true;
    }
    rs.roster_edge_up.assign(topo_.num_edges(), 1);
    if (oracle != nullptr) {
      for (std::size_t e = 0; e < topo_.num_edges(); ++e) {
        rs.roster_edge_up[e] = oracle->edge_available(k, e) ? 1 : 0;
      }
    }
    if (provider_->sampling()) {
      // Sparse form: O(cohort + edges) per interval instead of rebuilding
      // population-sized arrays — at N = 1M workers the dense form dominated
      // every interval's cost. Bit-identical to set_roster on the expanded
      // arrays (asserted by tests/pop_parity_test.cpp).
      rs.part->set_cohort_roster(rs.cohort_ids, rs.cohort_up,
                                 rs.roster_edge_up,
                                 scaled ? &rs.cohort_mult : nullptr);
    } else {
      rs.roster_up.assign(population, 0);
      for (std::size_t i = 0; i < rs.cohort_ids.size(); ++i) {
        rs.roster_up[rs.cohort_ids[i]] = rs.cohort_up[i];
      }
      const std::vector<Scalar>* scale = nullptr;
      if (scaled) {
        rs.roster_scale.assign(population, 1.0);
        for (std::size_t i = 0; i < rs.cohort_ids.size(); ++i) {
          rs.roster_scale[rs.cohort_ids[i]] = rs.cohort_mult[i];
        }
        scale = &rs.roster_scale;
      }
      rs.part->set_roster(rs.roster_up, rs.roster_edge_up, scale);
    }
  }

  // Algorithm init runs against a participation-free context — exactly the
  // context dense build_states hands to init/init_worker (Mime's anchor
  // probe must see the full materialized cohort, not the interval roster).
  Context init_ctx = rs.ctx;
  init_ctx.part = nullptr;
  if (first_interval) alg.init(init_ctx);
  for (const WorkerId id : fresh) alg.init_worker(init_ctx, rs.workers[id]);
}

void Engine::record_point(RunState& rs, std::size_t t, const Vec& params,
                          Scalar sim_time) {
  const obs::Span span("evaluate", "eval");
  const nn::EvalResult r = evaluate(params);
  rs.result.curve.push_back({t, r.loss, r.accuracy, sim_time});
}

void Engine::run_local_steps(Algorithm& alg, RunState& rs) {
  const Participation* part = rs.ctx.part;
  const obs::Span span("local_steps", "worker");
  const bool fused = cohort_ != nullptr && alg.local_gradient_prefetchable();
  if (fused) {
    prefetch_cohort_gradients(alg, rs.ctx, rs.workers);
  } else if (obs::enabled()) {
    const std::size_t active = part ? part->num_active() : rs.workers.size();
    obs::Registry::global().counter("engine.cohort.fallback_grads").add(active);
  }
  // Dispatch over the materialized pool (== every worker in dense runs, the
  // sampled cohort in virtualized ones); slot order is ascending-id order,
  // so the dense dispatch is the exact pre-refactor schedule.
  pool_->parallel_for(rs.workers.num_materialized(), [&](std::size_t s) {
    WorkerState& w = rs.workers.slot(s);
    // A worker that will miss this interval's synchronization is offline:
    // it computes nothing and its batch stream does not advance.
    if (part && !part->worker_active(w.id)) return;
    alg.local_step(rs.ctx, w);
  });
}

void Engine::run_edge_syncs(Algorithm& alg, RunState& rs, std::size_t k) {
  const Participation* part = rs.ctx.part;
  const obs::Span span("edge_sync", "edge");
  if (obs::enabled()) {
    // Comm accounting depends only on the surviving roster, so it is
    // recorded serially in edge-index order BEFORE the (possibly
    // concurrent) edge_sync dispatch: the records stay deterministic
    // under any thread count, and compression savings reported from
    // inside the algorithm always land on an already-counted message.
    obs::CommAccountant& comm = obs::CommAccountant::global();
    obs::Registry& reg = obs::Registry::global();
    for (const EdgeState& e : rs.edges) {
      if (part && !part->edge_active(e.id)) continue;
      // Every surviving worker of this edge uploads its sync payload
      // and receives the redistribution.
      for (const std::size_t w : topo_.workers_of_edge(e.id)) {
        if (part && !part->worker_active(w)) continue;
        comm.record(obs::Link::kWorkerToEdge, e.id, rs.worker_up_bytes);
        comm.record(obs::Link::kEdgeToWorker, e.id, rs.worker_down_bytes);
      }
      reg.counter("engine.edge_syncs").add();
    }
  }
  // The edge barrier itself: re-entrant algorithms run their edges
  // concurrently; serial-only ones (edge_sync_reentrant() == false) walk
  // the edges in index order — the exact 1-thread schedule. Either way
  // an edge with no survivors (node outage or all workers absent) holds
  // its state; its workers are handled by absent_sync in finish_interval.
  const auto sync_edge = [&](std::size_t i) {
    EdgeState& e = rs.edges[i];
    if (part && !part->edge_active(e.id)) return;
    const EdgeSyncGuard guard(edge_sync_entries_, alg.edge_sync_reentrant());
    alg.edge_sync(rs.ctx, e, k);
  };
  if (alg.edge_sync_reentrant()) {
    pool_->parallel_for(rs.edges.size(), sync_edge);
  } else {
    for (std::size_t i = 0; i < rs.edges.size(); ++i) sync_edge(i);
  }
}

void Engine::run_cloud_sync(Algorithm& alg, RunState& rs, std::size_t p) {
  const Participation* part = rs.ctx.part;
  const bool any_survivor =
      !part || (alg.three_tier()
                    ? [&] {
                        for (const EdgeState& e : rs.edges) {
                          if (part->edge_active(e.id)) return true;
                        }
                        return false;
                      }()
                    : part->num_active() > 0);
  if (!any_survivor) return;
  const obs::Span span("cloud_sync", "cloud");
  if (obs::enabled()) {
    obs::CommAccountant& comm = obs::CommAccountant::global();
    if (alg.three_tier()) {
      for (const EdgeState& e : rs.edges) {
        if (part && !part->edge_active(e.id)) continue;
        comm.record(obs::Link::kEdgeToCloud, e.id, rs.edge_up_bytes);
        comm.record(obs::Link::kCloudToEdge, e.id, rs.edge_down_bytes);
      }
    } else {
      for (const WorkerState& w : rs.workers) {
        if (part && !part->worker_active(w.id)) continue;
        comm.record(obs::Link::kWorkerToCloud, w.id, rs.worker_up_bytes);
        comm.record(obs::Link::kCloudToWorker, w.id, rs.worker_down_bytes);
      }
    }
    obs::Registry::global().counter("engine.cloud_syncs").add();
  }
  alg.cloud_sync(rs.ctx, p);
}

void Engine::finish_interval(Algorithm& alg, RunState& rs, std::size_t k) {
  Participation* part = rs.part.get();
  if (obs::enabled()) {
    obs::Registry& reg = obs::Registry::global();
    const std::size_t active = part ? part->num_active() : rs.workers.size();
    reg.counter("engine.sync.intervals").add();
    reg.counter("engine.sync.active_workers").add(active);
    reg.counter("engine.sync.worker_slots").add(rs.workers.size());
    reg.counter("engine.sync.absent_workers").add(rs.workers.size() - active);
  }

  if (part) {
    // Absent-worker policy + participation bookkeeping, once per interval.
    std::size_t active_edges = 0;
    for (const EdgeState& e : rs.edges) {
      if (part->edge_active(e.id)) ++active_edges;
    }
    // absent_sync visits materialized absent workers (== every absent worker
    // in dense runs). Unmaterialized workers hold their spilled state, which
    // is exactly the kHold policy — prepare_run rejects other policies for
    // sampled runs.
    for (WorkerState& w : rs.workers) {
      if (part->worker_active(w.id)) continue;
      alg.absent_sync(rs.ctx, w, k);
    }
    // Miss counts cover the whole population, materialized or not. Count
    // participation (misses fall out at finalize as intervals − hits): the
    // participants are enumerable in O(cohort) for sampled runs, where the
    // old per-interval O(population) absence sweep dominated at N = 1M.
    ++rs.num_part_intervals;
    if (provider_ != nullptr && provider_->sampling()) {
      for (const WorkerId id : rs.cohort_ids) {
        if (part->worker_active(id)) ++rs.participation_counts[id];
      }
    } else {
      for (std::size_t w = 0; w < part->num_workers(); ++w) {
        if (part->worker_active(w)) ++rs.participation_counts[w];
      }
    }
    rs.result.participation.push_back(
        {k, part->num_active(), rs.workers.size(), active_edges,
         rs.edges.size(),
         static_cast<Scalar>(part->num_active()) /
             static_cast<Scalar>(rs.workers.size())});
  }
}

void Engine::finalize_run(Algorithm& alg, RunState& rs) {
  RunResult& result = rs.result;
  // Derive miss counts from the per-interval participation tallies
  // (finish_interval). Empty tallies mean another accounting path owns the
  // counts (evt's event-driven clock increments them per missed event).
  if (!rs.participation_counts.empty()) {
    for (std::size_t w = 0; w < result.worker_miss_counts.size(); ++w) {
      result.worker_miss_counts[w] =
          rs.num_part_intervals - rs.participation_counts[w];
    }
  }
  if (!result.participation.empty()) {
    Scalar sum = 0;
    for (const ParticipationPoint& p : result.participation) sum += p.rate;
    result.mean_participation_rate =
        sum / static_cast<Scalar>(result.participation.size());
  }

  if (obs::enabled()) {
    obs::Registry::global()
        .counter("engine.iterations", "algorithm=" + alg.name())
        .add(cfg_.total_iterations);
  }

  result.final_accuracy = result.curve.back().test_accuracy;
  result.final_loss = result.curve.back().test_loss;
  result.final_params = rs.cloud.x;
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    rs.start)
          .count();
}

void Engine::set_cohort_provider(CohortProvider* provider) {
  if (provider != nullptr) {
    HFL_CHECK(provider->population() == topo_.num_workers(),
              "cohort provider population must match the topology");
    provider->attach_pool(pool_.get());
  }
  provider_ = provider;
}

RunResult Engine::run(Algorithm& alg, const ParticipationSchedule* schedule) {
  if (provider_ != nullptr) {
    // Virtualized engines replay dense schedules through the oracle
    // adapter, so one fault trace drives both code paths bit-identically.
    if (schedule != nullptr && !schedule->is_noop()) {
      schedule->validate(topo_, cfg_);
      const ScheduleOracle oracle(*schedule);
      return run_impl(alg, nullptr, &oracle);
    }
    return run_impl(alg, nullptr, nullptr);
  }
  return run_impl(alg, schedule, nullptr);
}

RunResult Engine::run_with_oracle(Algorithm& alg,
                                  const AvailabilityOracle* oracle) {
  HFL_CHECK(provider_ != nullptr,
            "run_with_oracle requires an attached cohort provider "
            "(set_cohort_provider)");
  return run_impl(alg, nullptr, oracle);
}

RunResult Engine::run_impl(Algorithm& alg,
                           const ParticipationSchedule* schedule,
                           const AvailabilityOracle* oracle) {
  const obs::Span run_span("run:" + alg.name(), "engine");

  RunState rs;
  prepare_run(alg, schedule, oracle, rs);
  record_point(rs, 0, rs.cloud.x);

  const std::size_t global_period = cfg_.tau * cfg_.pi;
  for (std::size_t t = 1; t <= cfg_.total_iterations; ++t) {
    rs.ctx.t = t;
    if ((t - 1) % cfg_.tau == 0) {
      const std::size_t k = (t - 1) / cfg_.tau + 1;
      if (provider_ != nullptr) {
        if (k > 1) begin_virtual_interval(alg, rs, k, oracle, false);
      } else if (rs.part) {
        rs.part->begin_interval(k);
      }
    }
    run_local_steps(alg, rs);

    const bool sync_point = t % cfg_.tau == 0;
    const std::size_t k = t / cfg_.tau;

    if (alg.three_tier() && sync_point) run_edge_syncs(alg, rs, k);

    if (t % global_period == 0) {
      run_cloud_sync(alg, rs, t / global_period);
      record_point(rs, t, rs.cloud.x);
    } else if (cfg_.eval_every != 0 && t % cfg_.eval_every == 0) {
      // Between synchronizations, evaluate the data-weighted average of the
      // worker models (the paper's virtual global model).
      aggregate_global(rs.workers, worker_x, rs.avg_scratch, nullptr,
                       pool_.get());
      record_point(rs, t, rs.avg_scratch);
    }

    if (sync_point) finish_interval(alg, rs, k);
  }

  finalize_run(alg, rs);
  return rs.result;
}

}  // namespace hfl::fl
