// Per-algorithm synchronization payload model.
//
// Every algorithm ships some multiple of the model-sized parameter vector at
// each synchronization (momentum terms, interval accumulators, server state).
// This table is the single source of truth for those multiplicities; it is
// shared by net::TimeSimulator (to price transfers in modeled seconds) and by
// the engine's communication accounting (obs::CommAccountant, to count
// logical bytes). Multiplicities per message, in vectors of model size:
//
//   HierAdMo / HierAdMo-R — workers upload y, x, Σ∇F, Σy (Algorithm 1
//     line 9) and download y_{ℓ−}, x_{ℓ+}; edges exchange y_{ℓ−}, x_{ℓ+}
//     with the cloud both ways.
//   FedNAG / FastSlowMo — model + momentum both ways.
//   FedADC / Mime / MimeLite — model up; model + server state down.
//   Everything else — model only.
#pragma once

#include <string>

#include "src/common/types.h"

namespace hfl::fl {

struct CommProfile {
  Scalar worker_upload_vectors = 1.0;
  Scalar worker_download_vectors = 1.0;
  Scalar edge_upload_vectors = 1.0;    // three-tier only
  Scalar edge_download_vectors = 1.0;  // three-tier only
};

// Multiplicities for the algorithms in algs::registry; unknown names get the
// conservative default (1 vector each way).
CommProfile comm_profile_for(const std::string& algorithm);

}  // namespace hfl::fl
