// Run results: the accuracy/loss curve, participation trace and summary
// statistics.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace hfl::fl {

struct MetricPoint {
  std::size_t iteration = 0;
  Scalar test_loss = 0;
  Scalar test_accuracy = 0;
  // Modeled seconds at which the point was recorded. Only event-driven runs
  // (evt::AsyncEngine) fill this in; `fl::Engine` has no clock and leaves 0.
  Scalar sim_time = 0;
};

// One edge interval of a fault-driven run: how many workers made the
// synchronization at t = kτ.
struct ParticipationPoint {
  std::size_t interval = 0;        // k (1-based)
  std::size_t active_workers = 0;  // survivors that synced
  std::size_t total_workers = 0;
  std::size_t active_edges = 0;    // edges that aggregated this interval
  std::size_t total_edges = 0;
  Scalar rate = 1.0;               // active_workers / total_workers
};

struct RunResult {
  // Sentinel for "never reached" (alias of hfl::kNeverIndex, shared with
  // net::TimeSimulator::kNeverReached's index-valued siblings; iteration 0
  // is a legitimate answer — the initial model can already satisfy a target).
  static constexpr std::size_t npos = kNeverIndex;

  std::string algorithm;
  std::vector<MetricPoint> curve;  // includes t = 0 and every cloud sync
  Scalar final_accuracy = 0;
  Scalar final_loss = 0;
  Vec final_params;  // cloud model after the last iteration
  double wall_seconds = 0;  // host time spent simulating (not modeled time)

  // Fault-driven runs only (empty / 1.0 for fault-free runs): one entry per
  // edge interval, per-worker missed-sync counts, and the mean worker
  // participation rate over the whole run.
  std::vector<ParticipationPoint> participation;
  std::vector<std::size_t> worker_miss_counts;
  Scalar mean_participation_rate = 1.0;

  // Event-driven runs only (evt::AsyncEngine; all zero under fl::Engine).
  // Modeled seconds the run took end-to-end, and the staleness profile of
  // the updates the aggregators saw: `admitted_updates` counts every update
  // folded into an aggregation, `stale_updates` the admitted subset with
  // staleness > 0, `dropped_updates` those discarded for exceeding
  // RunConfig::max_staleness. Staleness is measured in aggregator versions.
  Scalar sim_seconds = 0;
  std::size_t admitted_updates = 0;
  std::size_t stale_updates = 0;
  std::size_t dropped_updates = 0;
  Scalar mean_staleness = 0;             // over admitted updates
  std::size_t max_staleness_seen = 0;    // over admitted updates
  // Modeled seconds of communication hidden behind computation: per worker
  // interval, the part of the upload's flight time during which the
  // worker's next local steps were already running, summed over workers.
  // Zero under the sync policy (the barrier serializes the two).
  Scalar overlap_seconds = 0;
  // Download-event profile: refreshes applied at an interval boundary vs.
  // messages superseded by a newer version before they could be applied.
  std::size_t downloads_applied = 0;
  std::size_t downloads_superseded = 0;

  // First recorded iteration at which test accuracy reached `target`, or
  // `npos` if the curve never gets there. Linear search over the curve.
  std::size_t iterations_to_accuracy(Scalar target) const;

  // Best accuracy seen anywhere on the curve.
  Scalar best_accuracy() const;
};

// Writes one curve per result to a CSV with columns
// (algorithm, iteration, test_loss, test_accuracy).
// Missing parent directories are created (see CsvWriter).
void write_curves_csv(const std::vector<RunResult>& results,
                      const std::string& path);

// Writes the per-interval participation traces to a CSV with columns
// (algorithm, interval, active_workers, total_workers, active_edges,
// total_edges, rate). Results without a participation trace are skipped.
void write_participation_csv(const std::vector<RunResult>& results,
                             const std::string& path);

}  // namespace hfl::fl
