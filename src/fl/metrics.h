// Run results: the accuracy/loss curve and summary statistics.
#pragma once

#include <string>
#include <vector>

#include "src/common/types.h"

namespace hfl::fl {

struct MetricPoint {
  std::size_t iteration = 0;
  Scalar test_loss = 0;
  Scalar test_accuracy = 0;
};

struct RunResult {
  std::string algorithm;
  std::vector<MetricPoint> curve;  // includes t = 0 and every cloud sync
  Scalar final_accuracy = 0;
  Scalar final_loss = 0;
  double wall_seconds = 0;  // host time spent simulating (not modeled time)

  // First iteration at which test accuracy reached `target`, or 0 if never.
  // Linear search over the recorded curve.
  std::size_t iterations_to_accuracy(Scalar target) const;

  // Best accuracy seen anywhere on the curve.
  Scalar best_accuracy() const;
};

// Writes one curve per result to a CSV with columns
// (algorithm, iteration, test_loss, test_accuracy).
void write_curves_csv(const std::vector<RunResult>& results,
                      const std::string& path);

}  // namespace hfl::fl
