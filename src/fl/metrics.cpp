#include "src/fl/metrics.h"

#include <algorithm>

#include "src/common/csv.h"

namespace hfl::fl {

std::size_t RunResult::iterations_to_accuracy(Scalar target) const {
  for (const MetricPoint& p : curve) {
    if (p.test_accuracy >= target) return p.iteration;
  }
  return kNeverIndex;
}

Scalar RunResult::best_accuracy() const {
  Scalar best = 0;
  for (const MetricPoint& p : curve) best = std::max(best, p.test_accuracy);
  return best;
}

void write_curves_csv(const std::vector<RunResult>& results,
                      const std::string& path) {
  CsvWriter csv(path);
  csv.write_header({"algorithm", "iteration", "test_loss", "test_accuracy"});
  for (const RunResult& r : results) {
    for (const MetricPoint& p : r.curve) {
      csv.write_row({r.algorithm, std::to_string(p.iteration),
                     CsvWriter::format_scalar(p.test_loss),
                     CsvWriter::format_scalar(p.test_accuracy)});
    }
  }
}

void write_participation_csv(const std::vector<RunResult>& results,
                             const std::string& path) {
  CsvWriter csv(path);
  csv.write_header({"algorithm", "interval", "active_workers", "total_workers",
                    "active_edges", "total_edges", "rate"});
  for (const RunResult& r : results) {
    for (const ParticipationPoint& p : r.participation) {
      csv.write_row({r.algorithm, std::to_string(p.interval),
                     std::to_string(p.active_workers),
                     std::to_string(p.total_workers),
                     std::to_string(p.active_edges),
                     std::to_string(p.total_edges),
                     CsvWriter::format_scalar(p.rate)});
    }
  }
}

}  // namespace hfl::fl
