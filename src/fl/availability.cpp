#include "src/fl/availability.h"

#include <string>

#include "src/common/errors.h"

namespace hfl::fl {

bool ParticipationSchedule::is_noop() const {
  for (const std::uint8_t up : worker_up) {
    if (!up) return false;
  }
  for (const std::uint8_t up : edge_up) {
    if (!up) return false;
  }
  for (const Scalar s : slowdown) {
    if (s != 1.0) return false;
  }
  return true;
}

void ParticipationSchedule::validate(const Topology& topo,
                                     const RunConfig& cfg) const {
  HFL_CHECK(num_workers == topo.num_workers(),
            "participation schedule built for " + std::to_string(num_workers) +
                " workers but the topology has " +
                std::to_string(topo.num_workers()));
  HFL_CHECK(num_edges == topo.num_edges(),
            "participation schedule built for " + std::to_string(num_edges) +
                " edges but the topology has " +
                std::to_string(topo.num_edges()));
  const std::size_t intervals = cfg.total_iterations / cfg.tau;
  HFL_CHECK(num_intervals >= intervals,
            "participation schedule covers " + std::to_string(num_intervals) +
                " edge intervals but the run needs " +
                std::to_string(intervals) + " (T/tau)");
  HFL_CHECK(worker_up.size() == num_intervals * num_workers &&
                slowdown.size() == num_intervals * num_workers &&
                edge_up.size() == num_intervals * num_edges,
            "participation schedule arrays do not match the declared shape");
  for (const Scalar s : slowdown) {
    HFL_CHECK(s >= 1.0, "slowdown factors must be >= 1");
  }
  HFL_CHECK(absent_decay >= 0.0 && absent_decay <= 1.0,
            "absent_decay must be in [0, 1]");
}

namespace {

// Shared by the WorkerSet convenience constructors: data-size masses D_i
// read off a fully-materialized worker set, in id order — bit-identical to
// the pre-refactor per-worker `num_samples` loop.
std::vector<Scalar> dense_base_weights(const Topology& topo,
                                       const WorkerSet& workers) {
  const std::size_t n = topo.num_workers();
  HFL_CHECK(workers.size() == n && workers.num_materialized() == n,
            "worker states do not match the topology");
  std::vector<Scalar> base(n);
  for (std::size_t i = 0; i < n; ++i) {
    base[i] = static_cast<Scalar>(workers[i].num_samples);
  }
  return base;
}

}  // namespace

Participation::Participation(const Topology& topo,
                             const ParticipationSchedule* schedule,
                             std::vector<Scalar> base_weights,
                             bool edge_faults)
    : topo_(&topo), schedule_(schedule), edge_faults_(edge_faults) {
  const std::size_t n = topo.num_workers();
  const std::size_t l = topo.num_edges();
  HFL_CHECK(base_weights.size() == n,
            "base weights do not match the topology");
  base_weight_ = std::move(base_weights);
  mass_ = base_weight_;
  active_.assign(n, 1);
  edge_active_.assign(l, 1);
  active_of_edge_.resize(l);
  weight_in_edge_.assign(n, 0.0);
  weight_global_.assign(n, 0.0);
  edge_weight_.assign(l, 0.0);
}

Participation::Participation(const Topology& topo,
                             const ParticipationSchedule& schedule,
                             const WorkerSet& workers, bool edge_faults)
    : Participation(topo, &schedule, dense_base_weights(topo, workers),
                    edge_faults) {}

Participation::Participation(const Topology& topo, const WorkerSet& workers,
                             bool edge_faults)
    : Participation(topo, nullptr, dense_base_weights(topo, workers),
                    edge_faults) {}

void Participation::begin_interval(std::size_t k) {
  HFL_CHECK(schedule_ != nullptr,
            "begin_interval is schedule-backed; a manual-roster Participation "
            "must use set_roster instead");
  HFL_CHECK(k >= 1 && k <= schedule_->num_intervals,
            "interval index out of the schedule's range");
  k_ = k;
  sparse_mode_ = false;
  const std::size_t n = active_.size();
  const std::size_t l = edge_active_.size();

  num_active_ = 0;
  for (std::size_t w = 0; w < n; ++w) {
    const bool edge_ok =
        !edge_faults_ || schedule_->edge_available(k, topo_->edge_of_worker(w));
    active_[w] = (schedule_->worker_available(k, w) && edge_ok) ? 1 : 0;
    num_active_ += active_[w];
  }
  for (std::size_t e = 0; e < l; ++e) {
    edge_active_[e] = (!edge_faults_ || schedule_->edge_available(k, e)) ? 1 : 0;
  }
  for (std::size_t w = 0; w < n; ++w) mass_[w] = base_weight_[w];

  rebuild_weights();
}

void Participation::set_roster(const std::vector<std::uint8_t>& worker_up,
                               const std::vector<std::uint8_t>& edge_up,
                               const std::vector<Scalar>* scale) {
  const std::size_t n = active_.size();
  const std::size_t l = edge_active_.size();
  HFL_CHECK(worker_up.size() == n && edge_up.size() == l,
            "set_roster arrays do not match the topology (" +
                std::to_string(worker_up.size()) + " workers / " +
                std::to_string(edge_up.size()) + " edges given, " +
                std::to_string(n) + " / " + std::to_string(l) + " expected)");
  HFL_CHECK(scale == nullptr || scale->size() == n,
            "set_roster scale vector does not match the worker count");
  sparse_mode_ = false;

  num_active_ = 0;
  for (std::size_t w = 0; w < n; ++w) {
    const bool edge_ok =
        !edge_faults_ || edge_up[topo_->edge_of_worker(w)] != 0;
    active_[w] = (worker_up[w] != 0 && edge_ok) ? 1 : 0;
    num_active_ += active_[w];
  }
  for (std::size_t e = 0; e < l; ++e) {
    edge_active_[e] = (!edge_faults_ || edge_up[e] != 0) ? 1 : 0;
  }
  for (std::size_t w = 0; w < n; ++w) {
    mass_[w] = base_weight_[w] * (scale == nullptr ? 1.0 : (*scale)[w]);
  }

  rebuild_weights();
}

void Participation::set_cohort_roster(const std::vector<WorkerId>& cohort_ids,
                                      const std::vector<std::uint8_t>& cohort_up,
                                      const std::vector<std::uint8_t>& edge_up,
                                      const std::vector<Scalar>* cohort_scale) {
  const std::size_t n = active_.size();
  const std::size_t l = edge_active_.size();
  HFL_CHECK(schedule_ == nullptr,
            "set_cohort_roster is manual-roster only; schedule-backed "
            "Participation replays intervals via begin_interval");
  HFL_CHECK(cohort_up.size() == cohort_ids.size(),
            "cohort_up must align with cohort_ids");
  HFL_CHECK(edge_up.size() == l,
            "set_cohort_roster edge array does not match the topology");
  HFL_CHECK(cohort_scale == nullptr ||
                cohort_scale->size() == cohort_ids.size(),
            "cohort scale vector does not match the cohort size");

  if (!sparse_mode_) {
    // One-time O(population): the constructor (and any interleaved dense
    // call) leaves everyone marked active with arbitrary weights. Drop to
    // the all-absent baseline the incremental path maintains between calls.
    std::fill(active_.begin(), active_.end(), std::uint8_t{0});
    std::fill(weight_in_edge_.begin(), weight_in_edge_.end(), 0.0);
    std::fill(weight_global_.begin(), weight_global_.end(), 0.0);
    sparse_mode_ = true;
  } else {
    // Clear only last interval's cohort marks — every other worker already
    // sits at the baseline.
    for (const WorkerId w : prev_cohort_ids_) {
      active_[w] = 0;
      weight_in_edge_[w] = 0.0;
      weight_global_[w] = 0.0;
    }
  }
  for (std::size_t e = 0; e < l; ++e) {
    active_of_edge_[e].clear();
    edge_active_[e] = 0;
    edge_weight_[e] = 0.0;
  }

  // Activity bits, effective masses, and per-edge rosters in one ascending
  // pass. Ascending cohort ids make each per-edge roster the ascending
  // subsequence the dense rebuild reads off workers_of_edge.
  num_active_ = 0;
  for (std::size_t i = 0; i < cohort_ids.size(); ++i) {
    const WorkerId w = cohort_ids[i];
    HFL_CHECK(w < n, "cohort id out of range");
    HFL_CHECK(i == 0 || cohort_ids[i - 1] < w,
              "cohort ids must be ascending and unique");
    const std::size_t e = topo_->edge_of_worker(w);
    const bool edge_ok = !edge_faults_ || edge_up[e] != 0;
    active_[w] = (cohort_up[i] != 0 && edge_ok) ? 1 : 0;
    num_active_ += active_[w];
    mass_[w] = base_weight_[w] *
               (cohort_scale == nullptr ? 1.0 : (*cohort_scale)[i]);
    if (active_[w]) active_of_edge_[e].push_back(w);
  }

  // The same three renormalization sums rebuild_weights computes, restricted
  // to the cohort and walked in identical order: edges ascending for the
  // edge/global masses, cohort (= active superset) ascending for the
  // worker-level mass.
  Scalar global_mass = 0;
  for (std::size_t e = 0; e < l; ++e) {
    const auto& roster = active_of_edge_[e];
    Scalar edge_mass = 0;
    for (const WorkerId w : roster) edge_mass += mass_[w];
    edge_active_[e] =
        (!edge_faults_ || edge_up[e] != 0) && !roster.empty() ? 1 : 0;
    for (const WorkerId w : roster) {
      weight_in_edge_[w] = mass_[w] / edge_mass;
    }
    if (edge_active_[e]) global_mass += edge_mass;
  }

  Scalar active_mass = 0;
  for (const WorkerId w : cohort_ids) {
    if (active_[w]) active_mass += mass_[w];
  }
  for (const WorkerId w : cohort_ids) {
    weight_global_[w] =
        active_[w] && active_mass > 0 ? mass_[w] / active_mass : 0.0;
  }
  for (std::size_t e = 0; e < l; ++e) {
    Scalar edge_mass = 0;
    for (const WorkerId w : active_of_edge_[e]) edge_mass += mass_[w];
    edge_weight_[e] = edge_active_[e] && global_mass > 0
                          ? edge_mass / global_mass
                          : 0.0;
  }

  prev_cohort_ids_ = cohort_ids;
}

void Participation::set_edge_roster(const std::vector<std::uint8_t>& edge_up) {
  const std::size_t n = active_.size();
  const std::size_t l = edge_active_.size();
  HFL_CHECK(schedule_ == nullptr,
            "set_edge_roster is manual-roster only; schedule-backed "
            "Participation replays intervals via begin_interval");
  HFL_CHECK(edge_up.size() == l,
            "set_edge_roster edge array does not match the topology");
  sparse_mode_ = false;

  num_active_ = 0;
  std::fill(active_.begin(), active_.end(), std::uint8_t{0});
  std::fill(weight_in_edge_.begin(), weight_in_edge_.end(), 0.0);
  std::fill(weight_global_.begin(), weight_global_.end(), 0.0);
  for (std::size_t w = 0; w < n; ++w) mass_[w] = base_weight_[w];

  // Edge activity comes straight from edge_up (no surviving-worker
  // requirement); edge weights renormalize the static per-edge masses over
  // the up edges, ascending — the same member order rebuild_weights uses.
  Scalar global_mass = 0;
  for (std::size_t e = 0; e < l; ++e) {
    active_of_edge_[e].clear();
    edge_active_[e] = edge_up[e] != 0 ? 1 : 0;
    Scalar edge_mass = 0;
    for (const WorkerId w : topo_->workers_of_edge(e)) {
      edge_mass += mass_[w];
    }
    edge_weight_[e] = edge_mass;  // provisional; normalized below
    if (edge_active_[e]) global_mass += edge_mass;
  }
  for (std::size_t e = 0; e < l; ++e) {
    edge_weight_[e] = edge_active_[e] && global_mass > 0
                          ? edge_weight_[e] / global_mass
                          : 0.0;
  }
}

void Participation::set_absent_policy(AbsentPolicy policy, Scalar decay) {
  HFL_CHECK(decay >= 0.0 && decay <= 1.0, "absent decay must be in [0, 1]");
  manual_policy_ = policy;
  manual_decay_ = decay;
}

// Shared tail of begin_interval / set_roster: given active_ bits, the
// edge-online preconditions already stored in edge_active_, and the
// effective masses in mass_, materialize rosters and renormalized weights.
// Summation order matches the pre-refactor begin_interval exactly (and
// mass_ == base_weight_ in schedule mode), so schedule-backed replay stays
// bit-identical.
void Participation::rebuild_weights() {
  const std::size_t n = active_.size();
  const std::size_t l = edge_active_.size();

  // Per-edge surviving rosters and in-edge weight renormalization.
  Scalar global_mass = 0;
  for (std::size_t e = 0; e < l; ++e) {
    auto& roster = active_of_edge_[e];
    roster.clear();
    Scalar edge_mass = 0;
    for (const WorkerId w : topo_->workers_of_edge(e)) {
      if (!active_[w]) continue;
      roster.push_back(w);
      edge_mass += mass_[w];
    }
    edge_active_[e] = edge_active_[e] != 0 && !roster.empty() ? 1 : 0;
    for (const WorkerId w : roster) {
      weight_in_edge_[w] = mass_[w] / edge_mass;
    }
    if (edge_active_[e]) global_mass += edge_mass;
  }

  // Global renormalizations (worker-level for two-tier aggregation and the
  // virtual global model; edge-level for three-tier cloud rounds).
  Scalar active_mass = 0;
  for (std::size_t w = 0; w < n; ++w) {
    if (active_[w]) active_mass += mass_[w];
  }
  for (std::size_t w = 0; w < n; ++w) {
    weight_global_[w] =
        active_[w] && active_mass > 0 ? mass_[w] / active_mass : 0.0;
  }
  for (std::size_t e = 0; e < l; ++e) {
    Scalar edge_mass = 0;
    for (const WorkerId w : active_of_edge_[e]) edge_mass += mass_[w];
    edge_weight_[e] = edge_active_[e] && global_mass > 0
                          ? edge_mass / global_mass
                          : 0.0;
  }
}

bool is_active(const Participation* part, std::size_t worker) {
  return part == nullptr || part->worker_active(worker);
}

bool is_edge_active(const Participation* part, std::size_t edge) {
  return part == nullptr || part->edge_active(edge);
}

const std::vector<WorkerId>& active_workers(const Participation* part,
                                            const Topology& topo,
                                            std::size_t edge) {
  if (part == nullptr) return topo.workers_of_edge(edge);
  return part->active_workers_of_edge(edge);
}

Scalar active_weight_in_edge(const Participation* part, const WorkerState& w) {
  return part == nullptr ? w.weight_in_edge : part->weight_in_edge(w.id);
}

Scalar active_weight_global(const Participation* part, const WorkerState& w) {
  return part == nullptr ? w.weight_global : part->weight_global(w.id);
}

Scalar active_edge_weight(const Participation* part, const EdgeState& e) {
  return part == nullptr ? e.weight_global : part->edge_weight_global(e.id);
}

void apply_absent_policy(WorkerState& w, AbsentPolicy policy, Scalar decay) {
  switch (policy) {
    case AbsentPolicy::kHold:
      break;
    case AbsentPolicy::kReset:
      w.y = w.x;
      vec::fill(w.v, 0.0);
      w.reset_interval_accumulators();
      break;
    case AbsentPolicy::kDecay:
      vec::decay_toward(w.y, w.x, decay);
      vec::scale(w.v, decay);
      vec::scale(w.sum_grad, decay);
      vec::scale(w.sum_y, decay);
      vec::scale(w.sum_v, decay);
      break;
  }
}

}  // namespace hfl::fl
