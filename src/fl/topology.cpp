#include "src/fl/topology.h"

#include "src/common/errors.h"

namespace hfl::fl {

Topology::Topology(std::vector<std::size_t> workers_per_edge)
    : workers_per_edge_(std::move(workers_per_edge)) {
  HFL_CHECK(!workers_per_edge_.empty(), "topology needs at least one edge");
  workers_of_edge_.resize(workers_per_edge_.size());
  for (std::size_t e = 0; e < workers_per_edge_.size(); ++e) {
    HFL_CHECK(workers_per_edge_[e] > 0,
              "every edge must serve at least one worker");
    for (std::size_t i = 0; i < workers_per_edge_[e]; ++i) {
      // Strictly below the WorkerSet::kNoSlot sentinel (0xFFFFFFFF).
      HFL_CHECK(num_workers_ < 0xFFFFFFFFull, "worker ids are 32-bit");
      workers_of_edge_[e].push_back(static_cast<WorkerId>(num_workers_));
      edge_of_worker_.push_back(static_cast<std::uint32_t>(e));
      ++num_workers_;
    }
  }
}

Topology Topology::uniform(std::size_t num_edges,
                           std::size_t workers_per_edge) {
  HFL_CHECK(num_edges > 0 && workers_per_edge > 0,
            "uniform topology dims must be positive");
  return Topology(
      std::vector<std::size_t>(num_edges, workers_per_edge));
}

std::size_t Topology::workers_in_edge(std::size_t edge) const {
  HFL_CHECK(edge < workers_per_edge_.size(), "edge index out of range");
  return workers_per_edge_[edge];
}

std::size_t Topology::edge_of_worker(std::size_t worker) const {
  HFL_CHECK(worker < edge_of_worker_.size(), "worker index out of range");
  return edge_of_worker_[worker];
}

const std::vector<WorkerId>& Topology::workers_of_edge(
    std::size_t edge) const {
  HFL_CHECK(edge < workers_of_edge_.size(), "edge index out of range");
  return workers_of_edge_[edge];
}

}  // namespace hfl::fl
