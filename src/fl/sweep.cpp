#include "src/fl/sweep.h"

#include <algorithm>

#include "src/common/errors.h"
#include "src/common/thread_pool.h"

namespace hfl::fl {

std::vector<SweepResult> run_sweep(const nn::ModelFactory& factory,
                                   const data::TrainTest& data,
                                   const data::Partition& partition,
                                   const Topology& topo,
                                   const std::vector<SweepJob>& jobs,
                                   const SweepOptions& opts) {
  std::vector<SweepResult> results(jobs.size());
  if (jobs.empty()) return results;
  for (const SweepJob& job : jobs) {
    HFL_CHECK(static_cast<bool>(job.make_algorithm),
              "sweep job needs an algorithm factory");
  }

  // Cap the outer pool at the job count: idle sweep threads would only sit
  // on the queue. parallel_for's static partitioning assigns jobs to slots
  // deterministically, and every job writes only its own result row.
  const std::size_t want =
      opts.concurrency == 0
          ? std::max<std::size_t>(1, std::thread::hardware_concurrency())
          : opts.concurrency;
  ThreadPool outer(std::min(want, jobs.size()));
  outer.parallel_for(jobs.size(), [&](std::size_t i) {
    const SweepJob& job = jobs[i];
    RunConfig cfg = job.cfg;
    cfg.num_threads = std::max<std::size_t>(1, opts.threads_per_run);
    std::unique_ptr<Algorithm> alg = job.make_algorithm();
    Engine engine(factory, data, partition, topo, cfg);
    results[i].label = job.label.empty() ? alg->name() : job.label;
    results[i].result = engine.run(*alg, job.schedule);
  });
  return results;
}

}  // namespace hfl::fl
