#include "src/fl/comm_model.h"

namespace hfl::fl {

CommProfile comm_profile_for(const std::string& algorithm) {
  CommProfile p;
  if (algorithm == "HierAdMo" || algorithm == "HierAdMo-R") {
    p.worker_upload_vectors = 4.0;
    p.worker_download_vectors = 2.0;
    p.edge_upload_vectors = 2.0;
    p.edge_download_vectors = 2.0;
  } else if (algorithm == "FedNAG" || algorithm == "FastSlowMo") {
    p.worker_upload_vectors = 2.0;
    p.worker_download_vectors = 2.0;
  } else if (algorithm == "FedADC" || algorithm == "Mime" ||
             algorithm == "MimeLite") {
    p.worker_upload_vectors = 1.0;
    p.worker_download_vectors = 2.0;
  }
  return p;
}

}  // namespace hfl::fl
