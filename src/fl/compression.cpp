#include "src/fl/compression.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/errors.h"
#include "src/common/vec_ops.h"

namespace hfl::fl {

namespace {
std::size_t keep_count(Scalar fraction, std::size_t n) {
  const auto k = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<Scalar>(n)));
  return std::clamp<std::size_t>(k, 1, n);
}
}  // namespace

TopKCompressor::TopKCompressor(Scalar keep_fraction) : keep_(keep_fraction) {
  HFL_CHECK(keep_ > 0 && keep_ <= 1, "keep fraction must be in (0, 1]");
}

std::string TopKCompressor::name() const {
  return "topk(" + std::to_string(keep_) + ")";
}

std::size_t TopKCompressor::compress(Vec& v) {
  if (v.empty()) return 0;
  const std::size_t k = keep_count(keep_, v.size());
  if (k == v.size()) return k;
  // Selection scratch is thread_local (not a member): one shared compressor
  // instance serves all edges of the engine's parallel sync tier.
  thread_local std::vector<std::size_t> order;
  order.resize(v.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  // Partition so order[0..k) holds the k largest magnitudes, breaking
  // magnitude ties by ascending index: nth_element leaves tied elements in
  // an unspecified order, so without the tie-break the kept set — and every
  // downstream compressed-upload curve — could differ across standard
  // library implementations.
  std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(k),
                   order.end(), [&v](std::size_t a, std::size_t b) {
                     const Scalar ma = std::abs(v[a]);
                     const Scalar mb = std::abs(v[b]);
                     return ma != mb ? ma > mb : a < b;
                   });
  for (std::size_t i = k; i < order.size(); ++i) v[order[i]] = 0;
  return k;
}

RandomKCompressor::RandomKCompressor(Scalar keep_fraction, std::uint64_t seed)
    : keep_(keep_fraction), rng_(seed) {
  HFL_CHECK(keep_ > 0 && keep_ <= 1, "keep fraction must be in (0, 1]");
}

std::string RandomKCompressor::name() const {
  return "randomk(" + std::to_string(keep_) + ")";
}

std::size_t RandomKCompressor::compress(Vec& v) {
  if (v.empty()) return 0;
  const std::size_t k = keep_count(keep_, v.size());
  if (k == v.size()) return k;
  order_.resize(v.size());
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  rng_.shuffle(order_);
  const Scalar scale =
      static_cast<Scalar>(v.size()) / static_cast<Scalar>(k);
  for (std::size_t i = 0; i < k; ++i) v[order_[i]] *= scale;
  for (std::size_t i = k; i < order_.size(); ++i) v[order_[i]] = 0;
  return k;
}

StochasticQuantizer::StochasticQuantizer(std::size_t levels,
                                         std::uint64_t seed)
    : levels_(levels), rng_(seed) {
  HFL_CHECK(levels_ >= 1, "need at least one quantization level");
}

std::string StochasticQuantizer::name() const {
  return "qsgd(" + std::to_string(levels_) + ")";
}

std::size_t StochasticQuantizer::compress(Vec& v) {
  const Scalar norm = vec::norm(v);
  if (norm == 0) return v.empty() ? 0 : 1;  // norm scalar only
  const Scalar s = static_cast<Scalar>(levels_);
  for (auto& x : v) {
    const Scalar r = std::abs(x) / norm * s;  // in [0, s]
    const Scalar lo = std::floor(r);
    const Scalar level = lo + (rng_.uniform() < (r - lo) ? 1.0 : 0.0);
    x = (x < 0 ? -1.0 : 1.0) * norm * level / s;
  }
  return v.size();  // every coordinate ships (as a small integer + sign)
}

}  // namespace hfl::fl
