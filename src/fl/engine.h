// Simulation engine: drives an Algorithm over the three-tier topology.
//
// The engine owns the simulation clock. Per iteration it runs every worker's
// local_step on the thread pool (workers are data-parallel: each owns its
// model instance, RNG and batch stream, so the run is bit-reproducible for a
// given seed regardless of scheduling), then fires edge synchronizations at
// t = kτ (three-tier algorithms only) and cloud synchronizations at t = pτπ.
//
// `run` rebuilds all state from the seed, so calling it repeatedly — with the
// same or different algorithms — always starts from the identical initial
// model and identical batch streams. That is exactly the experimental setup
// of the paper's Table II (all algorithms from one initialization).
#pragma once

#include <memory>

#include "src/common/thread_pool.h"
#include "src/data/partitioner.h"
#include "src/fl/algorithm.h"
#include "src/fl/metrics.h"

namespace hfl::fl {

class Engine {
 public:
  // `data` and the partition must outlive the engine. partition[i] holds the
  // training-sample indices of worker i; its size must equal
  // topo.num_workers().
  Engine(nn::ModelFactory factory, const data::TrainTest& data,
         data::Partition partition, Topology topo, RunConfig cfg);

  RunResult run(Algorithm& alg);

  const Topology& topology() const { return topo_; }
  const RunConfig& config() const { return cfg_; }

  // Evaluate arbitrary parameters on the test set (parallel over batches).
  nn::EvalResult evaluate(const Vec& params);

 private:
  void build_states(Algorithm& alg, std::vector<WorkerState>& workers,
                    std::vector<EdgeState>& edges, CloudState& cloud);

  nn::ModelFactory factory_;
  const data::TrainTest* data_;
  data::Partition partition_;
  Topology topo_;
  RunConfig cfg_;
  std::unique_ptr<ThreadPool> pool_;
  std::vector<std::unique_ptr<nn::Model>> eval_models_;  // one per thread
};

}  // namespace hfl::fl
