// Algorithm interface.
//
// The engine drives the simulation clock (t = 1..T) and calls:
//   * local_step  — once per worker per iteration (run in parallel; the hook
//                   must only touch its worker's state),
//   * edge_sync   — at t = kτ, once per edge, only for three-tier algorithms,
//   * cloud_sync  — at t = pτπ.
// `Context` bundles the read-only run configuration and the mutable tier
// states.
#pragma once

#include <string>

#include "src/fl/config.h"
#include "src/fl/state.h"

namespace hfl::fl {

struct Context {
  const RunConfig* cfg = nullptr;
  const Topology* topo = nullptr;
  std::vector<WorkerState>* workers = nullptr;
  std::vector<EdgeState>* edges = nullptr;
  CloudState* cloud = nullptr;
  std::size_t t = 0;  // current iteration (1-based while stepping)
};

class Algorithm {
 public:
  virtual ~Algorithm() = default;

  virtual std::string name() const = 0;
  // Three-tier algorithms get edge_sync callbacks; two-tier ones require
  // cfg.pi == 1 (enforced by the engine) so that their global period is τ.
  virtual bool three_tier() const = 0;

  // Called once before the first iteration (all states are already sized and
  // x/y initialized to the common starting point).
  virtual void init(Context& ctx) { (void)ctx; }

  // One local iteration on worker w. Must not touch other workers.
  virtual void local_step(Context& ctx, WorkerState& w) = 0;

  // Edge synchronization at t = kτ (k passed for algorithms that care).
  virtual void edge_sync(Context& ctx, EdgeState& e, std::size_t k) {
    (void)ctx;
    (void)e;
    (void)k;
  }

  // Cloud synchronization at t = pτπ.
  virtual void cloud_sync(Context& ctx, std::size_t p) = 0;
};

}  // namespace hfl::fl
