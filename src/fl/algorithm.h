// Algorithm interface.
//
// The engine drives the simulation clock (t = 1..T) and calls:
//   * local_step  — once per worker per iteration (run in parallel; the hook
//                   must only touch its worker's state),
//   * edge_sync   — at t = kτ, once per edge, only for three-tier algorithms,
//   * cloud_sync  — at t = pτπ,
//   * absent_sync — once per non-participating worker per synchronization,
//                   only when a fault schedule drives the run.
// `Context` bundles the read-only run configuration and the mutable tier
// states. `Context::part` is null for fault-free runs; under a fault
// schedule it exposes the surviving roster and renormalized weights
// (src/fl/availability.h) — the engine never calls edge_sync/cloud_sync for
// a tier with no survivors.
#pragma once

#include <string>

#include "src/fl/availability.h"
#include "src/fl/config.h"
#include "src/fl/state.h"

namespace hfl::fl {

struct Context {
  const RunConfig* cfg = nullptr;
  const Topology* topo = nullptr;
  std::vector<WorkerState>* workers = nullptr;
  std::vector<EdgeState>* edges = nullptr;
  CloudState* cloud = nullptr;
  std::size_t t = 0;  // current iteration (1-based while stepping)
  const Participation* part = nullptr;  // null = full participation
};

class Algorithm {
 public:
  virtual ~Algorithm() = default;

  virtual std::string name() const = 0;
  // Three-tier algorithms get edge_sync callbacks; two-tier ones require
  // cfg.pi == 1 (enforced by the engine) so that their global period is τ.
  virtual bool three_tier() const = 0;

  // Called once before the first iteration (all states are already sized and
  // x/y initialized to the common starting point).
  virtual void init(Context& ctx) { (void)ctx; }

  // One local iteration on worker w. Must not touch other workers.
  virtual void local_step(Context& ctx, WorkerState& w) = 0;

  // Edge synchronization at t = kτ (k passed for algorithms that care).
  virtual void edge_sync(Context& ctx, EdgeState& e, std::size_t k) {
    (void)ctx;
    (void)e;
    (void)k;
  }

  // Cloud synchronization at t = pτπ.
  virtual void cloud_sync(Context& ctx, std::size_t p) = 0;

  // Called after the synchronization at t = kτ for every worker that did not
  // participate (its own outage or its edge's). The default applies the
  // schedule's absent-momentum policy; override for algorithm-specific
  // bookkeeping (e.g. extra server-state copies).
  virtual void absent_sync(Context& ctx, WorkerState& w, std::size_t k) {
    (void)k;
    if (ctx.part != nullptr) {
      apply_absent_policy(w, ctx.part->absent_policy(),
                          ctx.part->absent_decay());
    }
  }
};

}  // namespace hfl::fl
