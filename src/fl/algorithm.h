// Algorithm interface.
//
// The engine drives the simulation clock (t = 1..T) and calls:
//   * local_step  — once per worker per iteration (run in parallel; the hook
//                   must only touch its worker's state),
//   * edge_sync   — at t = kτ, once per edge, only for three-tier algorithms.
//                   Distinct edges are dispatched CONCURRENTLY on the
//                   engine's thread pool, so implementations must be
//                   re-entrant across edges: per-call scratch lives on the
//                   stack or in thread_local storage, never in members (see
//                   edge_sync_reentrant below for the escape hatch),
//   * cloud_sync  — at t = pτπ (single call; never concurrent with itself),
//   * absent_sync — once per non-participating worker per synchronization,
//                   only when a fault schedule drives the run.
// `Context` bundles the read-only run configuration and the mutable tier
// states. `Context::part` is null for fault-free runs; under a fault
// schedule it exposes the surviving roster and renormalized weights
// (src/fl/availability.h) — the engine never calls edge_sync/cloud_sync for
// a tier with no survivors. `Context::pool` is the engine's thread pool, for
// the deterministic parallel reductions of src/fl/state.h (null in
// hand-built test contexts — all helpers degrade to the serial path).
#pragma once

#include <atomic>
#include <string>

#include "src/common/errors.h"
#include "src/fl/availability.h"
#include "src/fl/config.h"
#include "src/fl/state.h"

// Debug builds always carry the edge_sync re-entrancy guard; release builds
// compile it out unless a build preset (e.g. HFL_SANITIZE) forces it on.
#if !defined(NDEBUG) && !defined(HFL_SYNC_GUARD)
#define HFL_SYNC_GUARD 1
#endif

namespace hfl::fl {

struct Context {
  const RunConfig* cfg = nullptr;
  const Topology* topo = nullptr;
  WorkerSet* workers = nullptr;
  std::vector<EdgeState>* edges = nullptr;
  CloudState* cloud = nullptr;
  std::size_t t = 0;  // current iteration (1-based while stepping)
  const Participation* part = nullptr;  // null = full participation
  ThreadPool* pool = nullptr;  // engine pool for deterministic reductions
};

class Algorithm {
 public:
  virtual ~Algorithm() = default;

  virtual std::string name() const = 0;
  // Three-tier algorithms get edge_sync callbacks; two-tier ones require
  // cfg.pi == 1 (enforced by the engine) so that their global period is τ.
  virtual bool three_tier() const = 0;

  // Called once before the first iteration (all states are already sized and
  // x/y initialized to the common starting point). Population-level setup
  // only — per-worker setup belongs in init_worker, because the virtualized
  // engine (src/pop/) materializes workers lazily: under cohort sampling
  // `ctx.workers` holds just the first interval's cohort here.
  virtual void init(Context& ctx) { (void)ctx; }

  // Per-worker setup hook. The dense engine calls it once per worker in
  // ascending id order right after init(); the virtualized engine calls it
  // when a worker is materialized for the first time (its state is exactly
  // the dense post-init state: x = y = x0, zero accumulators, fresh
  // streams). Must derive everything from the worker's own state/streams and
  // population-level values — never from which other workers exist — so both
  // call schedules produce bit-identical worker state.
  virtual void init_worker(Context& ctx, WorkerState& w) {
    (void)ctx;
    (void)w;
  }

  // One local iteration on worker w. Must not touch other workers.
  virtual void local_step(Context& ctx, WorkerState& w) = 0;

  // Gradient-prefetch contract for the fused cohort path (src/nn/cohort.h).
  // When this returns true, the FIRST gradient evaluation inside local_step
  // must be `w.compute_gradient(local_gradient_point(w))` — the engine then
  // draws each active worker's batch up front, computes all those gradients
  // in one batched pass, and deposits them so that compute_gradient call
  // returns the precomputed (bit-identical in FP64) result instead of
  // running the model. Opt-in: the default is false (per-worker path), so an
  // algorithm that never calls compute_gradient, calls it at another point,
  // or evaluates a paired SVRG gradient first is never mis-prefetched; every
  // registry algorithm that satisfies the contract overrides this to true.
  // Contract violations behind a true override fail loudly (src/fl/state.cpp
  // pointer checks), never silently.
  virtual bool local_gradient_prefetchable() const { return false; }

  // The point the prefetched gradient is evaluated at. Default: the worker's
  // current iterate.
  virtual const Vec& local_gradient_point(const WorkerState& w) const {
    return w.x;
  }

  // Edge synchronization at t = kτ (k passed for algorithms that care).
  // Called concurrently for distinct edges when edge_sync_reentrant() is
  // true; must then confine mutation to its edge's state, its edge's
  // workers, and thread-safe sinks (obs). Anything order-dependent (RNG
  // draws, shared accumulators) must be derived per (k, edge) so the result
  // is independent of edge execution order.
  virtual void edge_sync(Context& ctx, EdgeState& e, std::size_t k) {
    (void)ctx;
    (void)e;
    (void)k;
  }

  // Re-entrancy contract for edge_sync. Implementations that keep per-call
  // scratch or order-dependent state in members must override this to return
  // false; the engine then walks their edges serially (in edge-index order,
  // matching the 1-thread schedule bit for bit). The debug-mode guard below
  // fails loudly if a serial-only edge_sync is ever entered concurrently.
  virtual bool edge_sync_reentrant() const { return true; }

  // True when a sync hook reads state off every active worker of the
  // population (Mime's server-statistic probe): such algorithms need the
  // full population materialized, so the virtualized engine rejects them
  // under cohort sampling unless RunConfig::mime_cohort_stats opts into the
  // cohort-estimated statistic.
  virtual bool probes_population() const { return false; }

  // Cloud synchronization at t = pτπ.
  virtual void cloud_sync(Context& ctx, std::size_t p) = 0;

  // Called after the synchronization at t = kτ for every worker that did not
  // participate (its own outage or its edge's). The default applies the
  // schedule's absent-momentum policy; override for algorithm-specific
  // bookkeeping (e.g. extra server-state copies).
  virtual void absent_sync(Context& ctx, WorkerState& w, std::size_t k) {
    (void)k;
    if (ctx.part != nullptr) {
      apply_absent_policy(w, ctx.part->absent_policy(),
                          ctx.part->absent_decay());
    }
  }

  // Event-driven runs only (evt::AsyncEngine): called when worker w's update
  // is admitted with staleness `tau` > 0 aggregator versions, before the
  // aggregation folds it in. The default shrinks the worker's momentum state
  // by cfg->stale_momentum_decay per staleness step (1 = hold, the no-op
  // default; 0 = reset) — stale momentum was accumulated against an old
  // anchor, and the decay knob lets a run damp it without touching the
  // algorithm. Override for algorithm-specific staleness corrections.
  virtual void stale_sync(Context& ctx, WorkerState& w, std::size_t tau) {
    const Scalar decay = ctx.cfg->stale_momentum_decay;
    if (decay >= 1.0 || tau == 0) return;
    Scalar factor = 1.0;
    for (std::size_t i = 0; i < tau; ++i) factor *= decay;
    apply_absent_policy(w, AbsentPolicy::kDecay, factor);
  }
};

// Debug-mode re-entrancy guard for edge_sync (active when the build defines
// HFL_SYNC_GUARD — plain debug builds and every sanitizer preset; compiled
// out of release builds). The engine wraps each edge_sync call in one of
// these around a per-run entry counter: an algorithm whose
// edge_sync_reentrant() is false must never be observed inside edge_sync by
// two threads at once, so a member-scratch regression that also forgets to
// flip the flag trips either this check (when mis-dispatched) or TSan (the
// sanitized suite runs the parallel tier with the guard enabled) instead of
// silently corrupting curves.
class EdgeSyncGuard {
 public:
#if defined(HFL_SYNC_GUARD)
  EdgeSyncGuard(std::atomic<int>& entries, bool reentrant)
      : entries_(&entries) {
    const int prev = entries_->fetch_add(1, std::memory_order_acq_rel);
    if (!reentrant && prev != 0) {
      // Roll back before throwing: a throwing constructor never runs the
      // destructor, and the counter must stay balanced for later guards.
      entries_->fetch_sub(1, std::memory_order_acq_rel);
      HFL_CHECK(false,
                "non-re-entrant edge_sync entered concurrently — the engine "
                "must serialize algorithms with edge_sync_reentrant() == "
                "false");
    }
  }
  ~EdgeSyncGuard() { entries_->fetch_sub(1, std::memory_order_acq_rel); }

 private:
  std::atomic<int>* entries_;
#else
  EdgeSyncGuard(std::atomic<int>&, bool) {}
#endif

 public:
  EdgeSyncGuard(const EdgeSyncGuard&) = delete;
  EdgeSyncGuard& operator=(const EdgeSyncGuard&) = delete;
};

}  // namespace hfl::fl
