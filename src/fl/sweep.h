// Concurrent experiment sweeps.
//
// A sweep runs many independent (algorithm × config × fault-schedule) jobs
// against one shared dataset/partition/topology. Jobs are embarrassingly
// parallel — each constructs its own Engine (own thread pool, own eval
// models, state rebuilt from the job's seed) — so the sweep dispatches them
// on an outer thread pool and collects results indexed by job. Because every
// engine rebuilds from its seed and the engine's own sync tier is
// deterministic for any thread count, a sweep's results are bit-identical to
// running the same jobs one at a time in a loop (asserted by
// tests/parallel_sync_test.cpp).
//
// The two knobs compose: `concurrency` bounds how many jobs run at once and
// `threads_per_run` sizes each job's engine pool. The default (all cores
// across jobs, one thread per engine) is right for sweeps with at least as
// many jobs as cores; flip the balance for a sweep of a few large runs.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/fl/engine.h"

namespace hfl::fl {

struct SweepJob {
  // Called once, inside the job, to build the algorithm instance (algorithms
  // are stateful, so concurrent jobs must not share one).
  std::function<std::unique_ptr<Algorithm>()> make_algorithm;
  RunConfig cfg;
  // Optional fault schedule; must outlive the sweep. Null = full participation.
  const ParticipationSchedule* schedule = nullptr;
  // Optional tag carried into the result row (algorithm name when empty).
  std::string label;
};

struct SweepResult {
  std::string label;
  RunResult result;
};

struct SweepOptions {
  std::size_t concurrency = 0;      // concurrent jobs; 0 = hardware threads
  std::size_t threads_per_run = 1;  // engine pool threads per job
};

// Runs every job and returns results in job order. The engine copies the
// partition and topology; `factory`, `data` and any schedules must stay alive
// for the duration of the call. Job cfg.num_threads is overridden by
// opts.threads_per_run.
std::vector<SweepResult> run_sweep(const nn::ModelFactory& factory,
                                   const data::TrainTest& data,
                                   const data::Partition& partition,
                                   const Topology& topo,
                                   const std::vector<SweepJob>& jobs,
                                   const SweepOptions& opts = {});

}  // namespace hfl::fl
