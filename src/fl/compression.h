// Lossy upload compression (communication-efficiency extension).
//
// The paper's motivation is the communication cost of synchronization; a
// standard follow-on is to compress the worker→edge uploads. This module
// provides the three classic compressors:
//   * TopK — keep the k largest-magnitude coordinates (biased, low error),
//   * RandomK — keep a uniform random subset, rescaled by n/k (unbiased),
//   * StochasticQuantizer — QSGD-style: per-vector norm, sign, and a
//     stochastically rounded level out of `levels` (unbiased).
// `compress` mutates the vector in place and returns the number of payload
// scalars a real transport would ship (coordinate values; index/bitmap
// overhead is accounted by the caller if desired).
//
// HierAdMo integrates this via HierAdMoOptions::upload_compressor: worker
// state is compressed at every edge synchronization just before aggregation
// (the redistribution overwrites it immediately afterwards, exactly like a
// real lossy uplink). bench_ablation_compression sweeps the keep fraction.
#pragma once

#include <memory>
#include <string>

#include "src/common/rng.h"
#include "src/common/types.h"

namespace hfl::fl {

class Compressor {
 public:
  virtual ~Compressor() = default;
  virtual std::string name() const = 0;
  // In-place lossy compression; returns the transmitted scalar count.
  virtual std::size_t compress(Vec& v) = 0;
  // True when compress() may be called concurrently from several threads
  // with identical results regardless of call order (no member scratch, no
  // shared RNG stream). The engine's parallel edge tier serializes the
  // edge_sync of any algorithm holding a non-re-entrant compressor.
  virtual bool reentrant() const { return false; }
};

using CompressorPtr = std::shared_ptr<Compressor>;

class TopKCompressor final : public Compressor {
 public:
  // keep_fraction in (0, 1]; at least one coordinate is always kept.
  explicit TopKCompressor(Scalar keep_fraction);
  std::string name() const override;
  std::size_t compress(Vec& v) override;
  // Stateless (selection scratch is thread_local) and fully deterministic:
  // ties in magnitude are broken by ascending index, so the kept set never
  // depends on the standard library's nth_element partition order.
  bool reentrant() const override { return true; }
  Scalar keep_fraction() const { return keep_; }

 private:
  Scalar keep_;
};

class RandomKCompressor final : public Compressor {
 public:
  RandomKCompressor(Scalar keep_fraction, std::uint64_t seed);
  std::string name() const override;
  std::size_t compress(Vec& v) override;

 private:
  Scalar keep_;
  Rng rng_;
  std::vector<std::size_t> order_;  // scratch
};

class StochasticQuantizer final : public Compressor {
 public:
  // levels >= 1: number of positive quantization levels (QSGD's s).
  StochasticQuantizer(std::size_t levels, std::uint64_t seed);
  std::string name() const override;
  std::size_t compress(Vec& v) override;

 private:
  std::size_t levels_;
  Rng rng_;
};

}  // namespace hfl::fl
