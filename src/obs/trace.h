// Scoped-span tracer with per-thread buffers.
//
// `Span` is an RAII scope marker: construction stamps a steady-clock start,
// destruction appends a completed event to the calling thread's buffer. Each
// thread owns its buffer (guarded by a per-thread mutex that is uncontended
// on the hot path), so recording from the thread pool never serializes
// threads against each other. Buffers outlive their threads: they are held
// by shared_ptr in the global tracer, so events recorded by a thread that
// has since exited still appear in exports.
//
// Spans measure *host* time. The simulation clock (net::TimeSimulator) is a
// modeled quantity and is recorded through the metrics registry instead;
// nothing here feeds back into simulation state, so traced and untraced runs
// produce bit-identical results.
//
// Exports:
//   * write_chrome_json — complete-event ("ph":"X") trace loadable in
//     chrome://tracing / Perfetto; `cat` carries the tier (worker / edge /
//     cloud / ...).
//   * flame_summary — flame-style text table aggregated by (cat, name):
//     call count, total and mean milliseconds, and a proportional bar.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/registry.h"

namespace hfl::obs {

struct TraceEvent {
  std::string name;
  std::string cat;           // tier or subsystem tag
  std::uint64_t start_ns = 0;  // relative to the tracer epoch
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;     // dense per-thread id assigned on first use
};

class Tracer {
 public:
  static Tracer& global();

  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  // All recorded events (any thread). Safe to call while other threads
  // record; events completed before the call are included.
  std::vector<TraceEvent> snapshot() const;

  // Chrome trace-event JSON ({"traceEvents":[...]}); timestamps in µs.
  // Throws std::runtime_error if the file cannot be created.
  void write_chrome_json(const std::string& path) const;

  // Aggregated by (cat, name), sorted by total time descending.
  std::string flame_summary() const;

  // Drop all recorded events (buffers of live threads are kept registered).
  void reset();

 private:
  friend class Span;
  struct ThreadBuf {
    std::mutex mutex;
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
  };

  ThreadBuf& local_buf();
  std::uint64_t now_rel_ns();

  mutable std::mutex mutex_;  // guards bufs_ registration + epoch init
  std::vector<std::shared_ptr<ThreadBuf>> bufs_;
  std::uint32_t next_tid_ = 0;
  std::atomic<std::uint64_t> epoch_ns_{0};  // 0 = not yet established
};

// RAII span; records into Tracer::global() when telemetry is enabled at
// construction time (a disabled span is two relaxed loads and no clock
// reads). Move-only so helpers can return spans.
class Span {
 public:
  Span(std::string name, std::string cat);
  ~Span();

  Span(Span&& other) noexcept;
  Span& operator=(Span&&) = delete;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  std::string name_;
  std::string cat_;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace hfl::obs
