#include "src/obs/registry.h"

#include <algorithm>
#include <bit>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace hfl::obs {

namespace detail {
std::atomic<bool> g_enabled{false};
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

namespace {

std::string format_double(double v) {
  std::ostringstream os;
  os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string csv_escape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out += c;
  }
  out += '"';
  return out;
}

std::ofstream open_or_throw(const std::string& path) {
  std::ofstream out(path);
  if (!out.good()) {
    throw std::runtime_error("obs: cannot open file for writing: " + path);
  }
  return out;
}

}  // namespace

void Gauge::set(double v) {
  if (enabled()) {
    bits_.store(std::bit_cast<std::uint64_t>(v), std::memory_order_relaxed);
  }
}

void Gauge::set_max(double v) {
  if (!enabled()) return;
  std::uint64_t cur = bits_.load(std::memory_order_relaxed);
  while (std::bit_cast<double>(cur) < v &&
         !bits_.compare_exchange_weak(cur, std::bit_cast<std::uint64_t>(v),
                                      std::memory_order_relaxed)) {
  }
}

double Gauge::value() const {
  return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
}

void Gauge::reset() { bits_.store(0, std::memory_order_relaxed); }

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  if (bounds_.empty()) {
    throw std::runtime_error("obs: histogram needs at least one bucket bound");
  }
  if (!std::is_sorted(bounds_.begin(), bounds_.end())) {
    throw std::runtime_error("obs: histogram bounds must be sorted");
  }
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

void Histogram::observe(double v) {
  if (!enabled()) return;
  const std::size_t b = static_cast<std::size_t>(
      std::lower_bound(bounds_.begin(), bounds_.end(), v) - bounds_.begin());
  counts_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  std::uint64_t old = sum_bits_.load(std::memory_order_relaxed);
  while (!sum_bits_.compare_exchange_weak(
      old, std::bit_cast<std::uint64_t>(std::bit_cast<double>(old) + v),
      std::memory_order_relaxed)) {
  }
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].load(std::memory_order_relaxed);
  }
  return out;
}

double Histogram::sum() const {
  return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
}

void Histogram::reset() {
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    counts_[i].store(0, std::memory_order_relaxed);
  }
  count_.store(0, std::memory_order_relaxed);
  sum_bits_.store(0, std::memory_order_relaxed);
}

Registry& Registry::global() {
  static Registry r;
  return r;
}

Counter& Registry::counter(const std::string& name, const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[{name, labels}];
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& labels) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[{name, labels}];
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name,
                               const std::string& labels,
                               const std::vector<double>& bounds) {
  std::lock_guard<std::mutex> lock(mutex_);
  Entry& e = entries_[{name, labels}];
  if (!e.histogram) {
    e.histogram = std::make_unique<Histogram>(bounds);
  } else if (e.histogram->bounds() != bounds) {
    throw std::runtime_error("obs: histogram '" + name + "' / '" + labels +
                             "' re-registered with different bounds");
  }
  return *e.histogram;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [key, e] : entries_) {
    if (e.counter) e.counter->reset();
    if (e.gauge) e.gauge->reset();
    if (e.histogram) e.histogram->reset();
  }
}

void Registry::write_csv(const std::string& path) const {
  std::ofstream out = open_or_throw(path);
  out << "kind,name,labels,field,value\n";
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, e] : entries_) {
    const std::string prefix =
        csv_escape(key.first) + "," + csv_escape(key.second) + ",";
    if (e.counter) {
      out << "counter," << prefix << "count," << e.counter->value() << '\n';
    }
    if (e.gauge) {
      out << "gauge," << prefix << "value," << format_double(e.gauge->value())
          << '\n';
    }
    if (e.histogram) {
      const auto counts = e.histogram->counts();
      const auto& bounds = e.histogram->bounds();
      for (std::size_t i = 0; i < counts.size(); ++i) {
        const std::string le =
            i < bounds.size() ? "le_" + format_double(bounds[i]) : "le_inf";
        out << "histogram," << prefix << csv_escape(le) << "," << counts[i]
            << '\n';
      }
      out << "histogram," << prefix << "sum,"
          << format_double(e.histogram->sum()) << '\n';
      out << "histogram," << prefix << "count," << e.histogram->count()
          << '\n';
    }
  }
}

void Registry::write_jsonl(const std::string& path) const {
  std::ofstream out = open_or_throw(path);
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, e] : entries_) {
    const std::string id = "\"name\":\"" + json_escape(key.first) +
                           "\",\"labels\":\"" + json_escape(key.second) + "\"";
    if (e.counter) {
      out << "{\"kind\":\"counter\"," << id << ",\"value\":"
          << e.counter->value() << "}\n";
    }
    if (e.gauge) {
      out << "{\"kind\":\"gauge\"," << id << ",\"value\":"
          << format_double(e.gauge->value()) << "}\n";
    }
    if (e.histogram) {
      out << "{\"kind\":\"histogram\"," << id << ",\"bounds\":[";
      const auto& bounds = e.histogram->bounds();
      for (std::size_t i = 0; i < bounds.size(); ++i) {
        if (i > 0) out << ',';
        out << format_double(bounds[i]);
      }
      out << "],\"counts\":[";
      const auto counts = e.histogram->counts();
      for (std::size_t i = 0; i < counts.size(); ++i) {
        if (i > 0) out << ',';
        out << counts[i];
      }
      out << "],\"sum\":" << format_double(e.histogram->sum())
          << ",\"count\":" << e.histogram->count() << "}\n";
    }
  }
}

}  // namespace hfl::obs
