// Communication accounting: logical bytes crossing each tier boundary.
//
// The engine records one entry per synchronization message: worker↔edge
// traffic at every edge synchronization (t = kτ), edge↔cloud traffic at
// every cloud synchronization (t = pτπ), and worker↔cloud traffic for
// two-tier algorithms. Bytes are *logical* payload sizes — parameter-vector
// multiplicity × model dimension × sizeof(Scalar), the same convention as
// net::TimeSimulator — not host-memory traffic.
//
// Lossy compression (fl/compression) is accounted as savings: the
// compression site reports how many payload bytes the compressor removed,
// and `wire_bytes() = logical_bytes − saved_bytes`. Recording savings
// separately keeps the engine (which knows the schedule) and the algorithm
// (which knows the compressor) independent — neither double-counts.
//
// `entity` identifies the aggregating endpoint for per-tier breakdowns: the
// edge id for worker↔edge and edge↔cloud links, the worker id for the
// two-tier worker↔cloud links.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/registry.h"  // obs::enabled(), shared by every call site

namespace hfl::obs {

enum class Link {
  kWorkerToEdge = 0,
  kEdgeToWorker,
  kEdgeToCloud,
  kCloudToEdge,
  kWorkerToCloud,
  kCloudToWorker,
};

const char* link_name(Link link);

struct LinkTotals {
  std::uint64_t messages = 0;
  std::uint64_t logical_bytes = 0;
  std::uint64_t saved_bytes = 0;  // removed by lossy compression
  std::uint64_t wire_bytes() const { return logical_bytes - saved_bytes; }
};

class CommAccountant {
 public:
  static CommAccountant& global();

  CommAccountant() = default;
  CommAccountant(const CommAccountant&) = delete;
  CommAccountant& operator=(const CommAccountant&) = delete;

  // One message of `logical_bytes` over `link`, attributed to `entity`.
  // No-ops (after one relaxed atomic load) while telemetry is disabled.
  void record(Link link, std::size_t entity, std::uint64_t logical_bytes);

  // Lossy compression removed `saved_bytes` from messages already recorded
  // (or about to be recorded) on `link`/`entity`.
  void record_savings(Link link, std::size_t entity,
                      std::uint64_t saved_bytes);

  // Aggregate over all entities of a link direction.
  LinkTotals totals(Link link) const;
  // Per-entity breakdown, ascending entity id. Empty if nothing recorded.
  std::vector<std::pair<std::size_t, LinkTotals>> by_entity(Link link) const;

  // Human-readable per-link table (one row per link direction with traffic).
  std::string table() const;

  // CSV with columns link,entity,messages,logical_bytes,wire_bytes
  // (entity rows plus one "all" summary row per link). Throws
  // std::runtime_error if the file cannot be created.
  void write_csv(const std::string& path) const;

  void reset();

 private:
  using Key = std::pair<int, std::size_t>;  // (link, entity)
  mutable std::mutex mutex_;
  std::map<Key, LinkTotals> totals_;
};

}  // namespace hfl::obs
