// Thread-safe metrics registry: counters, gauges and fixed-bucket histograms,
// addressable by name + labels (e.g. "pool.busy_ns" / "worker=3").
//
// Design goals, in order:
//   1. Zero perturbation of simulation results. Recording never touches the
//      simulation RNG streams or scheduling; every metric is derived from
//      values the simulation already computed (or from host wall-clock, which
//      the simulation never reads). Runs are bit-identical with telemetry on
//      or off.
//   2. A compiled-in-but-disabled fast path. Instrumentation stays in release
//      builds; when disabled (the default) every record call reduces to one
//      relaxed atomic load and a predictable branch — low single-digit
//      nanoseconds (bench/bench_obs.cpp keeps an eye on it).
//   3. Pointer stability. Handles returned by `counter()` / `gauge()` /
//      `histogram()` stay valid for the registry's lifetime; `reset()` zeroes
//      values but never invalidates handles, so hot call sites may cache
//      references in function-local statics.
//
// This library sits below hfl_common (ThreadPool itself is instrumented), so
// it depends on nothing but the standard library and does its own file I/O
// and number formatting for the CSV/JSONL exporters.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hfl::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

// Global telemetry switch, off by default. The single relaxed load below is
// the entire disabled-path cost of every instrumentation site.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}
void set_enabled(bool on);

// Monotonically increasing event/volume count.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    if (enabled()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Last-written double (bit-packed into an atomic word).
class Gauge {
 public:
  void set(double v);
  // Monotone high-water mark: raises the gauge to v if v exceeds the current
  // value (CAS loop, safe under concurrent set_max). A plain `set` can still
  // lower it afterwards — use one style per gauge.
  void set_max(double v);
  double value() const;
  void reset();

 private:
  std::atomic<std::uint64_t> bits_{0};
};

// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; one
// implicit overflow bucket counts the rest. Bounds are set at creation and
// immutable afterwards, so concurrent `observe` needs no bucket locking.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  // Per-bucket counts; size() == bounds().size() + 1 (overflow last).
  std::vector<std::uint64_t> counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  void reset();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_bits_{0};  // double, CAS-accumulated
};

class Registry {
 public:
  // The process-wide registry used by all built-in instrumentation.
  static Registry& global();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Find-or-create. The returned reference is stable for the registry's
  // lifetime. Creating the same (name, labels) with mismatched histogram
  // bounds throws hfl-style std::runtime_error.
  Counter& counter(const std::string& name, const std::string& labels = "");
  Gauge& gauge(const std::string& name, const std::string& labels = "");
  Histogram& histogram(const std::string& name, const std::string& labels,
                       const std::vector<double>& bounds);

  // Zero every metric's value; handles stay valid.
  void reset();

  // Long-format CSV: kind,name,labels,field,value — counters emit one
  // "count" row, gauges one "value" row, histograms one row per bucket
  // ("le_<bound>" / "le_inf") plus "sum" and "count". Doubles are written
  // with round-trip (max_digits10) precision. Throws std::runtime_error if
  // the file cannot be created.
  void write_csv(const std::string& path) const;

  // One JSON object per metric per line.
  void write_jsonl(const std::string& path) const;

 private:
  struct Entry {
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };
  using Key = std::pair<std::string, std::string>;  // (name, labels)

  mutable std::mutex mutex_;
  std::map<Key, Entry> entries_;
};

}  // namespace hfl::obs
