#include "src/obs/trace.h"

#include <algorithm>
#include <chrono>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

namespace hfl::obs {

namespace {

std::uint64_t host_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

Tracer& Tracer::global() {
  static Tracer t;
  return t;
}

Tracer::ThreadBuf& Tracer::local_buf() {
  // One registration per (thread, tracer); the shared_ptr in bufs_ keeps the
  // buffer alive after the thread exits.
  thread_local std::shared_ptr<ThreadBuf> buf;
  thread_local Tracer* owner = nullptr;
  if (!buf || owner != this) {
    buf = std::make_shared<ThreadBuf>();
    owner = this;
    std::lock_guard<std::mutex> lock(mutex_);
    buf->tid = next_tid_++;
    bufs_.push_back(buf);
  }
  return *buf;
}

std::uint64_t Tracer::now_rel_ns() {
  const std::uint64_t now = host_now_ns();
  std::uint64_t epoch = epoch_ns_.load(std::memory_order_relaxed);
  if (epoch == 0) {
    // First event establishes the epoch; ties resolved by CAS.
    epoch_ns_.compare_exchange_strong(epoch, now, std::memory_order_relaxed);
    epoch = epoch_ns_.load(std::memory_order_relaxed);
  }
  return now >= epoch ? now - epoch : 0;
}

std::vector<TraceEvent> Tracer::snapshot() const {
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bufs = bufs_;
  }
  std::vector<TraceEvent> out;
  for (const auto& b : bufs) {
    std::lock_guard<std::mutex> lock(b->mutex);
    out.insert(out.end(), b->events.begin(), b->events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.start_ns < b.start_ns;
            });
  return out;
}

void Tracer::write_chrome_json(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) {
    throw std::runtime_error("obs: cannot open trace file for writing: " +
                             path);
  }
  const std::vector<TraceEvent> events = snapshot();
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) out << ',';
    first = false;
    // Chrome expects microsecond timestamps; keep ns resolution as a
    // fractional part.
    out << "\n{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\""
        << json_escape(e.cat) << "\",\"ph\":\"X\",\"ts\":" << e.start_ns / 1000
        << '.' << e.start_ns % 1000 << ",\"dur\":" << e.dur_ns / 1000 << '.'
        << e.dur_ns % 1000 << ",\"pid\":1,\"tid\":" << e.tid << "}";
  }
  out << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::string Tracer::flame_summary() const {
  struct Agg {
    std::uint64_t count = 0;
    std::uint64_t total_ns = 0;
  };
  std::map<std::pair<std::string, std::string>, Agg> by_name;
  for (const TraceEvent& e : snapshot()) {
    Agg& a = by_name[{e.cat, e.name}];
    ++a.count;
    a.total_ns += e.dur_ns;
  }
  std::vector<std::pair<std::pair<std::string, std::string>, Agg>> rows(
      by_name.begin(), by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });

  std::uint64_t max_ns = 1;
  for (const auto& [key, a] : rows) max_ns = std::max(max_ns, a.total_ns);

  std::ostringstream os;
  char line[160];
  std::snprintf(line, sizeof(line), "%-12s %-24s %8s %12s %10s  %s\n", "cat",
                "span", "calls", "total_ms", "mean_ms", "share");
  os << line;
  for (const auto& [key, a] : rows) {
    const double total_ms = static_cast<double>(a.total_ns) / 1e6;
    const double mean_ms =
        a.count == 0 ? 0.0 : total_ms / static_cast<double>(a.count);
    const int bar =
        static_cast<int>(30.0 * static_cast<double>(a.total_ns) /
                         static_cast<double>(max_ns));
    std::snprintf(line, sizeof(line), "%-12s %-24s %8llu %12.3f %10.4f  ",
                  key.first.c_str(), key.second.c_str(),
                  static_cast<unsigned long long>(a.count), total_ms, mean_ms);
    os << line << std::string(static_cast<std::size_t>(bar), '#') << '\n';
  }
  return os.str();
}

void Tracer::reset() {
  std::vector<std::shared_ptr<ThreadBuf>> bufs;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bufs = bufs_;
    epoch_ns_.store(0, std::memory_order_relaxed);
  }
  for (const auto& b : bufs) {
    std::lock_guard<std::mutex> lock(b->mutex);
    b->events.clear();
  }
}

Span::Span(std::string name, std::string cat)
    : name_(std::move(name)), cat_(std::move(cat)) {
  if (enabled()) {
    active_ = true;
    start_ns_ = Tracer::global().now_rel_ns();
  }
}

Span::Span(Span&& other) noexcept
    : name_(std::move(other.name_)),
      cat_(std::move(other.cat_)),
      start_ns_(other.start_ns_),
      active_(other.active_) {
  other.active_ = false;
}

Span::~Span() {
  if (!active_) return;
  Tracer& tracer = Tracer::global();
  const std::uint64_t end = tracer.now_rel_ns();
  Tracer::ThreadBuf& buf = tracer.local_buf();
  std::lock_guard<std::mutex> lock(buf.mutex);
  buf.events.push_back({std::move(name_), std::move(cat_), start_ns_,
                        end >= start_ns_ ? end - start_ns_ : 0, buf.tid});
}

}  // namespace hfl::obs
