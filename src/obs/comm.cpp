#include "src/obs/comm.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/obs/registry.h"

namespace hfl::obs {

const char* link_name(Link link) {
  switch (link) {
    case Link::kWorkerToEdge: return "worker_to_edge";
    case Link::kEdgeToWorker: return "edge_to_worker";
    case Link::kEdgeToCloud: return "edge_to_cloud";
    case Link::kCloudToEdge: return "cloud_to_edge";
    case Link::kWorkerToCloud: return "worker_to_cloud";
    case Link::kCloudToWorker: return "cloud_to_worker";
  }
  return "?";
}

CommAccountant& CommAccountant::global() {
  static CommAccountant a;
  return a;
}

void CommAccountant::record(Link link, std::size_t entity,
                            std::uint64_t logical_bytes) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  LinkTotals& t = totals_[{static_cast<int>(link), entity}];
  ++t.messages;
  t.logical_bytes += logical_bytes;
}

void CommAccountant::record_savings(Link link, std::size_t entity,
                                    std::uint64_t saved_bytes) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  totals_[{static_cast<int>(link), entity}].saved_bytes += saved_bytes;
}

LinkTotals CommAccountant::totals(Link link) const {
  LinkTotals out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, t] : totals_) {
    if (key.first != static_cast<int>(link)) continue;
    out.messages += t.messages;
    out.logical_bytes += t.logical_bytes;
    out.saved_bytes += t.saved_bytes;
  }
  return out;
}

std::vector<std::pair<std::size_t, LinkTotals>> CommAccountant::by_entity(
    Link link) const {
  std::vector<std::pair<std::size_t, LinkTotals>> out;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [key, t] : totals_) {
    if (key.first == static_cast<int>(link)) out.emplace_back(key.second, t);
  }
  return out;
}

std::string CommAccountant::table() const {
  constexpr Link kAll[] = {Link::kWorkerToEdge,  Link::kEdgeToWorker,
                           Link::kEdgeToCloud,   Link::kCloudToEdge,
                           Link::kWorkerToCloud, Link::kCloudToWorker};
  std::ostringstream os;
  char line[160];
  std::snprintf(line, sizeof(line), "%-16s %10s %14s %14s %8s\n", "link",
                "messages", "logical_MB", "wire_MB", "saved%");
  os << line;
  for (const Link link : kAll) {
    const LinkTotals t = totals(link);
    if (t.messages == 0) continue;
    const double logical_mb = static_cast<double>(t.logical_bytes) / 1e6;
    const double wire_mb = static_cast<double>(t.wire_bytes()) / 1e6;
    const double saved_pct =
        t.logical_bytes == 0
            ? 0.0
            : 100.0 * static_cast<double>(t.saved_bytes) /
                  static_cast<double>(t.logical_bytes);
    std::snprintf(line, sizeof(line), "%-16s %10llu %14.3f %14.3f %7.1f%%\n",
                  link_name(link), static_cast<unsigned long long>(t.messages),
                  logical_mb, wire_mb, saved_pct);
    os << line;
  }
  return os.str();
}

void CommAccountant::write_csv(const std::string& path) const {
  std::ofstream out(path);
  if (!out.good()) {
    throw std::runtime_error("obs: cannot open comm CSV for writing: " + path);
  }
  out << "link,entity,messages,logical_bytes,wire_bytes\n";
  constexpr Link kAll[] = {Link::kWorkerToEdge,  Link::kEdgeToWorker,
                           Link::kEdgeToCloud,   Link::kCloudToEdge,
                           Link::kWorkerToCloud, Link::kCloudToWorker};
  for (const Link link : kAll) {
    for (const auto& [entity, t] : by_entity(link)) {
      out << link_name(link) << ',' << entity << ',' << t.messages << ','
          << t.logical_bytes << ',' << t.wire_bytes() << '\n';
    }
    const LinkTotals t = totals(link);
    if (t.messages != 0) {
      out << link_name(link) << ",all," << t.messages << ','
          << t.logical_bytes << ',' << t.wire_bytes() << '\n';
    }
  }
}

void CommAccountant::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  totals_.clear();
}

}  // namespace hfl::obs
