#include "src/data/dataset.h"

#include <numeric>

namespace hfl::data {

Dataset::Dataset(std::vector<std::size_t> sample_shape,
                 std::size_t num_classes)
    : sample_shape_(std::move(sample_shape)),
      num_classes_(num_classes),
      sample_size_(std::accumulate(sample_shape_.begin(), sample_shape_.end(),
                                   std::size_t{1}, std::multiplies<>())) {
  HFL_CHECK(!sample_shape_.empty(), "dataset sample shape must be non-empty");
  HFL_CHECK(num_classes_ > 0, "dataset needs at least one class");
}

void Dataset::add_sample(std::span<const Scalar> features, std::size_t label) {
  HFL_CHECK(features.size() == sample_size_, "sample feature size mismatch");
  HFL_CHECK(label < num_classes_, "sample label out of range");
  features_.insert(features_.end(), features.begin(), features.end());
  labels_.push_back(label);
}

void Dataset::reserve(std::size_t n) {
  features_.reserve(n * sample_size_);
  labels_.reserve(n);
}

std::size_t Dataset::label(std::size_t i) const {
  HFL_CHECK(i < labels_.size(), "sample index out of range");
  return labels_[i];
}

std::span<const Scalar> Dataset::features(std::size_t i) const {
  HFL_CHECK(i < labels_.size(), "sample index out of range");
  return {features_.data() + i * sample_size_, sample_size_};
}

void Dataset::gather(std::span<const std::size_t> indices, Tensor& x,
                     std::vector<std::size_t>& y) const {
  std::vector<std::size_t> shape;
  shape.reserve(sample_shape_.size() + 1);
  shape.push_back(indices.size());
  shape.insert(shape.end(), sample_shape_.begin(), sample_shape_.end());
  if (x.shape() != shape) x = Tensor(std::move(shape));
  y.resize(indices.size());
  Scalar* out = x.raw();
  for (std::size_t b = 0; b < indices.size(); ++b) {
    const auto f = features(indices[b]);
    std::copy(f.begin(), f.end(), out + b * sample_size_);
    y[b] = labels_[indices[b]];
  }
}

std::vector<std::size_t> Dataset::indices_of_class(std::size_t label) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < labels_.size(); ++i) {
    if (labels_[i] == label) out.push_back(i);
  }
  return out;
}

std::vector<std::size_t> Dataset::class_histogram() const {
  std::vector<std::size_t> hist(num_classes_, 0);
  for (const std::size_t y : labels_) ++hist[y];
  return hist;
}

}  // namespace hfl::data
