// Synthetic stand-ins for the paper's datasets.
//
// The evaluation of the paper uses MNIST, CIFAR-10, Tiny-ImageNet and
// UCI-HAR. None of those files are available offline, so this module builds
// the closest synthetic equivalents (DESIGN.md §3): each class is defined by
// a smooth low-frequency template (a coarse random grid bilinearly upsampled
// to the target resolution), and a sample is
//
//     amplitude-jittered template + i.i.d. Gaussian pixel noise,
//
// which gives the convolutional models genuine spatial structure to learn
// while the `noise`/`separation` knobs control task difficulty (and therefore
// the gradient-diversity level δ that drives the paper's non-i.i.d.
// phenomena).
//
// Every generator is deterministic given the Rng.
#pragma once

#include "src/common/rng.h"
#include "src/data/dataset.h"

namespace hfl::data {

struct SyntheticSpec {
  std::vector<std::size_t> sample_shape;  // {C, H, W}
  std::size_t num_classes = 10;
  std::size_t train_size = 2000;
  std::size_t test_size = 500;
  Scalar separation = 1.0;   // template magnitude (class separability)
  Scalar noise = 0.6;        // per-pixel noise stddev
  Scalar amplitude_jitter = 0.15;  // stddev of the per-sample template scale
  std::size_t coarse = 7;    // template coarse-grid resolution
};

// Generic template-classification generator.
TrainTest make_synthetic(Rng& rng, const SyntheticSpec& spec);

// Dataset presets mirroring the paper's four datasets. `scale` multiplies the
// default train/test sizes (1.0 = the repo defaults, which are sized for
// minutes-scale CPU simulation).
TrainTest make_synthetic_mnist(Rng& rng, Scalar scale = 1.0);    // {1,28,28}, 10 classes
TrainTest make_synthetic_cifar10(Rng& rng, Scalar scale = 1.0);  // {3,32,32}, 10 classes
TrainTest make_synthetic_imagenet(Rng& rng, Scalar scale = 1.0); // {3,32,32}, 20 classes
TrainTest make_synthetic_har(Rng& rng, Scalar scale = 1.0);      // {1,24,24}, 6 classes
                                                                 // (561 HAR features padded to 576 = 24×24)

}  // namespace hfl::data
