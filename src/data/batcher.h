// Mini-batch iterator over a worker's local sample indices.
//
// Cycles forever: when an epoch is exhausted the index order is reshuffled
// with the batcher's own RNG (so per-worker streams are independent and the
// whole simulation is deterministic). Batch size is capped at the local
// sample count.
#pragma once

#include "src/common/rng.h"
#include "src/data/dataset.h"

namespace hfl::data {

// Complete serialized Batcher position: the current (shuffled) index order,
// the cursor into it, and the shuffle RNG. Restoring via the checkpoint
// constructor below resumes the batch sequence bit-exactly — the population
// subsystem spills/restores worker streams through this.
struct BatcherState {
  std::vector<std::size_t> indices;
  std::size_t cursor = 0;
  RngState rng;
};

class Batcher {
 public:
  Batcher(const Dataset& dataset, std::vector<std::size_t> indices,
          std::size_t batch_size, Rng rng);

  // Restore from a checkpoint: no initial shuffle, the stream continues from
  // exactly where save_state() captured it.
  Batcher(const Dataset& dataset, const BatcherState& state,
          std::size_t batch_size);

  // Fills `x` (B, *sample_shape) and `y` with the next mini-batch.
  void next(Tensor& x, std::vector<std::size_t>& y);

  // Zero-copy variant: fills `rows` with one pointer per sample into the
  // dataset's contiguous storage instead of gathering into `x`. Advances the
  // cursor/shuffle stream exactly like next() — the two forms are
  // interchangeable draw-for-draw. Pointers stay valid for the dataset's
  // lifetime.
  void next_rows(std::vector<const Scalar*>& rows, std::vector<std::size_t>& y);

  BatcherState save_state() const { return {indices_, cursor_, rng_.save_state()}; }

  std::size_t num_samples() const { return indices_.size(); }
  std::size_t batch_size() const { return batch_size_; }

 private:
  const Dataset* dataset_;
  std::vector<std::size_t> indices_;
  std::size_t batch_size_;
  std::size_t cursor_ = 0;
  Rng rng_;
  std::vector<std::size_t> batch_scratch_;
};

}  // namespace hfl::data
