// Data partitioning across simulated workers.
//
// The paper distributes shuffled data among workers with no restriction on
// the split, and studies "x-class non-i.i.d." scenarios where every worker
// holds samples from only x of the K classes (Fig. 2(e)–(g): x = 3, 6, 9 on a
// 10-class task — smaller x means a higher non-i.i.d. level, i.e. larger
// gradient diversity δ in Assumption 3).
//
// All partitioners return one index list per worker; the lists are disjoint
// and cover (almost) all of the dataset (remainders from uneven division are
// distributed round-robin).
#pragma once

#include "src/common/rng.h"
#include "src/data/dataset.h"

namespace hfl::data {

using Partition = std::vector<std::vector<std::size_t>>;

// Shuffle and deal samples evenly: the i.i.d. baseline.
Partition partition_iid(const Dataset& dataset, std::size_t num_workers,
                        Rng& rng);

// x-class non-i.i.d.: each worker is assigned exactly
// min(classes_per_worker, K) distinct classes (cyclically over a shuffled
// class order so every class has at least one owner when
// num_workers * x >= K), then each class's samples are split evenly among
// its owners.
Partition partition_by_class(const Dataset& dataset, std::size_t num_workers,
                             std::size_t classes_per_worker, Rng& rng);

// Shard partitioning (the FedAvg paper's scheme): sort by label, cut into
// num_workers * shards_per_worker contiguous shards, deal shards randomly.
Partition partition_shards(const Dataset& dataset, std::size_t num_workers,
                           std::size_t shards_per_worker, Rng& rng);

// Quantity-skewed i.i.d. split: worker i receives a share proportional to
// weights[i]. Used to exercise the D_{i,ℓ}/D_ℓ weighting in the aggregation
// rules.
Partition partition_weighted(const Dataset& dataset,
                             const std::vector<Scalar>& weights, Rng& rng);

}  // namespace hfl::data
