#include "src/data/synthetic.h"

#include <cmath>

namespace hfl::data {

namespace {

// Bilinearly upsample a (coarse × coarse) grid to (h × w).
void upsample(const Vec& grid, std::size_t coarse, std::size_t h,
              std::size_t w, Scalar* out) {
  for (std::size_t y = 0; y < h; ++y) {
    const Scalar fy = h == 1 ? 0.0
                             : static_cast<Scalar>(y) * (coarse - 1) /
                                   static_cast<Scalar>(h - 1);
    const std::size_t y0 = static_cast<std::size_t>(fy);
    const std::size_t y1 = std::min(y0 + 1, coarse - 1);
    const Scalar ty = fy - static_cast<Scalar>(y0);
    for (std::size_t x = 0; x < w; ++x) {
      const Scalar fx = w == 1 ? 0.0
                               : static_cast<Scalar>(x) * (coarse - 1) /
                                     static_cast<Scalar>(w - 1);
      const std::size_t x0 = static_cast<std::size_t>(fx);
      const std::size_t x1 = std::min(x0 + 1, coarse - 1);
      const Scalar tx = fx - static_cast<Scalar>(x0);
      const Scalar v00 = grid[y0 * coarse + x0];
      const Scalar v01 = grid[y0 * coarse + x1];
      const Scalar v10 = grid[y1 * coarse + x0];
      const Scalar v11 = grid[y1 * coarse + x1];
      out[y * w + x] = (1 - ty) * ((1 - tx) * v00 + tx * v01) +
                       ty * ((1 - tx) * v10 + tx * v11);
    }
  }
}

// One smooth template per (class, channel).
std::vector<Vec> make_templates(Rng& rng, const SyntheticSpec& spec) {
  HFL_CHECK(spec.sample_shape.size() == 3,
            "synthetic generator expects {C, H, W} sample shape");
  HFL_CHECK(spec.coarse >= 2, "coarse grid must be at least 2x2");
  const std::size_t c = spec.sample_shape[0];
  const std::size_t h = spec.sample_shape[1];
  const std::size_t w = spec.sample_shape[2];

  std::vector<Vec> templates(spec.num_classes, Vec(c * h * w));
  Vec grid(spec.coarse * spec.coarse);
  for (std::size_t cls = 0; cls < spec.num_classes; ++cls) {
    for (std::size_t ch = 0; ch < c; ++ch) {
      for (auto& g : grid) g = rng.normal(0.0, spec.separation);
      upsample(grid, spec.coarse, h, w, templates[cls].data() + ch * h * w);
    }
  }
  return templates;
}

void fill_split(Rng& rng, const SyntheticSpec& spec,
                const std::vector<Vec>& templates, std::size_t n,
                Dataset& out) {
  out.reserve(n);
  Vec sample(templates.front().size());
  for (std::size_t i = 0; i < n; ++i) {
    // Balanced labels with a random tail so every class count is n/K ± 1.
    const std::size_t label =
        i < (n / spec.num_classes) * spec.num_classes
            ? i % spec.num_classes
            : rng.uniform_index(spec.num_classes);
    const Scalar amp = rng.normal(1.0, spec.amplitude_jitter);
    const Vec& tpl = templates[label];
    for (std::size_t j = 0; j < sample.size(); ++j) {
      sample[j] = amp * tpl[j] + rng.normal(0.0, spec.noise);
    }
    out.add_sample(sample, label);
  }
}

SyntheticSpec preset(std::vector<std::size_t> shape, std::size_t classes,
                     std::size_t train, std::size_t test, Scalar separation,
                     Scalar noise, Scalar scale) {
  SyntheticSpec spec;
  spec.sample_shape = std::move(shape);
  spec.num_classes = classes;
  spec.train_size = static_cast<std::size_t>(
      std::max(1.0, std::round(static_cast<Scalar>(train) * scale)));
  spec.test_size = static_cast<std::size_t>(
      std::max(1.0, std::round(static_cast<Scalar>(test) * scale)));
  spec.separation = separation;
  spec.noise = noise;
  return spec;
}

}  // namespace

TrainTest make_synthetic(Rng& rng, const SyntheticSpec& spec) {
  HFL_CHECK(spec.num_classes >= 2, "need at least two classes");
  HFL_CHECK(spec.train_size > 0 && spec.test_size > 0,
            "split sizes must be positive");
  const auto templates = make_templates(rng, spec);
  TrainTest tt{Dataset(spec.sample_shape, spec.num_classes),
               Dataset(spec.sample_shape, spec.num_classes)};
  fill_split(rng, spec, templates, spec.train_size, tt.train);
  fill_split(rng, spec, templates, spec.test_size, tt.test);
  return tt;
}

// The separation/noise pairs below are calibrated (see EXPERIMENTS.md) so
// that the simulated horizons land in the paper's accuracy regimes: the
// MNIST analogue is learnable to ~95%+ by a CNN, the CIFAR-10 analogue is
// markedly harder, the Tiny-ImageNet analogue has more classes and the
// lowest SNR, and the HAR analogue sits in between.

TrainTest make_synthetic_mnist(Rng& rng, Scalar scale) {
  return make_synthetic(rng,
                        preset({1, 28, 28}, 10, 2000, 500, 0.35, 1.4, scale));
}

TrainTest make_synthetic_cifar10(Rng& rng, Scalar scale) {
  return make_synthetic(rng,
                        preset({3, 32, 32}, 10, 2400, 600, 0.27, 1.8, scale));
}

TrainTest make_synthetic_imagenet(Rng& rng, Scalar scale) {
  return make_synthetic(rng,
                        preset({3, 32, 32}, 20, 2800, 700, 0.28, 1.8, scale));
}

TrainTest make_synthetic_har(Rng& rng, Scalar scale) {
  // UCI-HAR: 6 activity classes, 561 features padded to 576 = 24×24.
  return make_synthetic(rng,
                        preset({1, 24, 24}, 6, 1500, 400, 0.33, 1.4, scale));
}

}  // namespace hfl::data
