#include "src/data/batcher.h"

#include <algorithm>

namespace hfl::data {

Batcher::Batcher(const Dataset& dataset, std::vector<std::size_t> indices,
                 std::size_t batch_size, Rng rng)
    : dataset_(&dataset),
      indices_(std::move(indices)),
      batch_size_(std::min(batch_size, indices_.size())),
      rng_(std::move(rng)) {
  HFL_CHECK(!indices_.empty(), "batcher needs at least one sample");
  HFL_CHECK(batch_size > 0, "batch size must be positive");
  for (const std::size_t i : indices_) {
    HFL_CHECK(i < dataset.size(), "batcher index out of dataset range");
  }
  rng_.shuffle(indices_);
}

Batcher::Batcher(const Dataset& dataset, const BatcherState& state,
                 std::size_t batch_size)
    : dataset_(&dataset),
      indices_(state.indices),
      batch_size_(std::min(batch_size, indices_.size())),
      cursor_(state.cursor),
      rng_(Rng::from_state(state.rng)) {
  HFL_CHECK(!indices_.empty(), "batcher needs at least one sample");
  HFL_CHECK(batch_size > 0, "batch size must be positive");
  HFL_CHECK(cursor_ <= indices_.size(), "batcher checkpoint cursor out of range");
  for (const std::size_t i : indices_) {
    HFL_CHECK(i < dataset.size(), "batcher index out of dataset range");
  }
}

void Batcher::next(Tensor& x, std::vector<std::size_t>& y) {
  batch_scratch_.clear();
  for (std::size_t b = 0; b < batch_size_; ++b) {
    if (cursor_ == indices_.size()) {
      rng_.shuffle(indices_);
      cursor_ = 0;
    }
    batch_scratch_.push_back(indices_[cursor_++]);
  }
  dataset_->gather(batch_scratch_, x, y);
}

void Batcher::next_rows(std::vector<const Scalar*>& rows,
                        std::vector<std::size_t>& y) {
  rows.clear();
  y.clear();
  for (std::size_t b = 0; b < batch_size_; ++b) {
    if (cursor_ == indices_.size()) {
      rng_.shuffle(indices_);
      cursor_ = 0;
    }
    const std::size_t idx = indices_[cursor_++];
    rows.push_back(dataset_->features(idx).data());
    y.push_back(dataset_->label(idx));
  }
}

}  // namespace hfl::data
