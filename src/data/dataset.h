// In-memory labelled dataset.
//
// Samples are stored contiguously (row-major, `sample_size()` scalars each).
// `gather` materializes a mini-batch tensor shaped (B, *sample_shape) from a
// list of sample indices — the only operation the training loop needs.
#pragma once

#include <span>
#include <vector>

#include "src/tensor/tensor.h"

namespace hfl::data {

class Dataset {
 public:
  Dataset() = default;
  Dataset(std::vector<std::size_t> sample_shape, std::size_t num_classes);

  const std::vector<std::size_t>& sample_shape() const {
    return sample_shape_;
  }
  std::size_t num_classes() const { return num_classes_; }
  std::size_t sample_size() const { return sample_size_; }
  std::size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }

  // Appends one sample. `features` must have sample_size() entries and
  // `label` must be < num_classes().
  void add_sample(std::span<const Scalar> features, std::size_t label);

  // Reserve capacity for n samples.
  void reserve(std::size_t n);

  std::size_t label(std::size_t i) const;
  std::span<const Scalar> features(std::size_t i) const;

  // Builds the batch tensor (B, *sample_shape) and the label list for the
  // given sample indices.
  void gather(std::span<const std::size_t> indices, Tensor& x,
              std::vector<std::size_t>& y) const;

  // Indices of all samples with the given label.
  std::vector<std::size_t> indices_of_class(std::size_t label) const;

  // Per-class sample counts.
  std::vector<std::size_t> class_histogram() const;

 private:
  std::vector<std::size_t> sample_shape_;
  std::size_t num_classes_ = 0;
  std::size_t sample_size_ = 0;
  Vec features_;
  std::vector<std::size_t> labels_;
};

// Train/test pair produced by the synthetic generators.
struct TrainTest {
  Dataset train;
  Dataset test;
};

}  // namespace hfl::data
