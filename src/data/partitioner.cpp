#include "src/data/partitioner.h"

#include <algorithm>
#include <numeric>

namespace hfl::data {

namespace {
std::vector<std::size_t> shuffled_indices(std::size_t n, Rng& rng) {
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  rng.shuffle(idx);
  return idx;
}
}  // namespace

Partition partition_iid(const Dataset& dataset, std::size_t num_workers,
                        Rng& rng) {
  HFL_CHECK(num_workers > 0, "need at least one worker");
  HFL_CHECK(dataset.size() >= num_workers,
            "fewer samples than workers");
  const auto idx = shuffled_indices(dataset.size(), rng);
  Partition parts(num_workers);
  for (std::size_t i = 0; i < idx.size(); ++i) {
    parts[i % num_workers].push_back(idx[i]);
  }
  return parts;
}

Partition partition_by_class(const Dataset& dataset, std::size_t num_workers,
                             std::size_t classes_per_worker, Rng& rng) {
  HFL_CHECK(num_workers > 0, "need at least one worker");
  HFL_CHECK(classes_per_worker > 0, "classes_per_worker must be positive");
  const std::size_t k = dataset.num_classes();
  const std::size_t x = std::min(classes_per_worker, k);

  // Cyclic assignment over a shuffled class order: worker w owns classes
  // order[(w*x + j) % k], j = 0..x-1. Consecutive x entries of a cyclic
  // sequence over k >= x distinct values are distinct.
  std::vector<std::size_t> order(k);
  std::iota(order.begin(), order.end(), std::size_t{0});
  rng.shuffle(order);

  std::vector<std::vector<std::size_t>> owners(k);  // class -> worker list
  for (std::size_t w = 0; w < num_workers; ++w) {
    for (std::size_t j = 0; j < x; ++j) {
      owners[order[(w * x + j) % k]].push_back(w);
    }
  }

  Partition parts(num_workers);
  for (std::size_t cls = 0; cls < k; ++cls) {
    auto samples = dataset.indices_of_class(cls);
    if (owners[cls].empty() || samples.empty()) continue;
    rng.shuffle(samples);
    for (std::size_t i = 0; i < samples.size(); ++i) {
      parts[owners[cls][i % owners[cls].size()]].push_back(samples[i]);
    }
  }

  for (const auto& p : parts) {
    HFL_CHECK(!p.empty(),
              "x-class partition produced an empty worker; increase dataset "
              "size or classes_per_worker");
  }
  return parts;
}

Partition partition_shards(const Dataset& dataset, std::size_t num_workers,
                           std::size_t shards_per_worker, Rng& rng) {
  HFL_CHECK(num_workers > 0 && shards_per_worker > 0,
            "workers and shards must be positive");
  const std::size_t num_shards = num_workers * shards_per_worker;
  HFL_CHECK(dataset.size() >= num_shards, "fewer samples than shards");

  // Sort indices by label (stable on index for determinism).
  std::vector<std::size_t> idx(dataset.size());
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  std::stable_sort(idx.begin(), idx.end(),
                   [&dataset](std::size_t a, std::size_t b) {
                     return dataset.label(a) < dataset.label(b);
                   });

  std::vector<std::size_t> shard_order(num_shards);
  std::iota(shard_order.begin(), shard_order.end(), std::size_t{0});
  rng.shuffle(shard_order);

  const std::size_t shard_len = dataset.size() / num_shards;
  Partition parts(num_workers);
  for (std::size_t s = 0; s < num_shards; ++s) {
    const std::size_t shard = shard_order[s];
    const std::size_t lo = shard * shard_len;
    const std::size_t hi =
        (shard == num_shards - 1) ? dataset.size() : lo + shard_len;
    auto& part = parts[s / shards_per_worker];
    part.insert(part.end(), idx.begin() + lo, idx.begin() + hi);
  }
  return parts;
}

Partition partition_weighted(const Dataset& dataset,
                             const std::vector<Scalar>& weights, Rng& rng) {
  HFL_CHECK(!weights.empty(), "need at least one weight");
  Scalar total = 0;
  for (const Scalar w : weights) {
    HFL_CHECK(w > 0, "weights must be positive");
    total += w;
  }
  const auto idx = shuffled_indices(dataset.size(), rng);
  Partition parts(weights.size());
  std::size_t pos = 0;
  for (std::size_t w = 0; w < weights.size(); ++w) {
    const std::size_t want =
        w + 1 == weights.size()
            ? dataset.size() - pos
            : static_cast<std::size_t>(static_cast<Scalar>(dataset.size()) *
                                       weights[w] / total);
    const std::size_t take = std::min(want, dataset.size() - pos);
    parts[w].insert(parts[w].end(), idx.begin() + pos,
                    idx.begin() + pos + take);
    pos += take;
  }
  for (auto& p : parts) {
    HFL_CHECK(!p.empty(), "weighted partition produced an empty worker");
  }
  return parts;
}

}  // namespace hfl::data
