#include "src/core/nag.h"

namespace hfl::core {

Scalar nag_local_step(fl::WorkerState& w, Scalar eta, Scalar gamma,
                      bool accumulate) {
  const Scalar loss = w.compute_gradient(w.x);  // grad = ∇F_i(x_{t−1})

  // y_t = x_{t−1} − η g;  v_t = y_t − y_{t−1};  x_t = y_t + γ v_t.
  // One fused pass; with `accumulate` the HierAdMo sums over
  // t = (k−1)τ … kτ−1 ride along in the same pass, reading the gradient
  // position and the pre-update momentum parameter (Algorithm 1, line 9).
  if (accumulate) {
    vec::nag_step_accumulate(w.x, w.y, w.v, w.grad, eta, gamma, w.sum_grad,
                             w.sum_y, w.sum_v);
  } else {
    vec::nag_step(w.x, w.y, w.v, w.grad, eta, gamma);
  }
  return loss;
}

Scalar sgd_local_step(fl::WorkerState& w, Scalar eta) {
  const Scalar loss = w.compute_gradient(w.x);
  vec::axpy(-eta, w.grad, w.x);
  return loss;
}

}  // namespace hfl::core
