#include "src/core/nag.h"

namespace hfl::core {

Scalar nag_local_step(fl::WorkerState& w, Scalar eta, Scalar gamma,
                      bool accumulate) {
  const Scalar loss = w.compute_gradient(w.x);  // grad = ∇F_i(x_{t−1})

  if (accumulate) {
    // Sums over t = (k−1)τ … kτ−1 use the gradient position and the
    // pre-update momentum parameter (Algorithm 1, line 9).
    vec::axpy(1.0, w.grad, w.sum_grad);
    vec::axpy(1.0, w.y, w.sum_y);
  }

  // y_t = x_{t−1} − η g;  v_t = y_t − y_{t−1};  x_t = y_t + γ v_t.
  for (std::size_t i = 0; i < w.x.size(); ++i) {
    const Scalar y_new = w.x[i] - eta * w.grad[i];
    w.v[i] = y_new - w.y[i];
    w.y[i] = y_new;
    w.x[i] = y_new + gamma * w.v[i];
  }

  if (accumulate) {
    vec::axpy(1.0, w.v, w.sum_v);
  }
  return loss;
}

Scalar sgd_local_step(fl::WorkerState& w, Scalar eta) {
  const Scalar loss = w.compute_gradient(w.x);
  vec::axpy(-eta, w.grad, w.x);
  return loss;
}

}  // namespace hfl::core
