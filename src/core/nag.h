// The NAG worker update shared by HierAdMo, FedNAG and FastSlowMo.
//
// Algorithm 1, lines 5–6 (Nesterov Accelerated Gradient in its y/x form):
//     y_t = x_{t−1} − η ∇F_i(x_{t−1})          (worker momentum update)
//     x_t = y_t + γ (y_t − y_{t−1})            (worker model update)
// The helper also maintains v_t = y_t − y_{t−1} and, when requested, the
// interval accumulators Σ∇F_i(x_t), Σ y_t, Σ v_t uploaded at edge
// synchronization (Algorithm 1, line 9).
#pragma once

#include "src/fl/state.h"

namespace hfl::core {

// Performs one NAG step on worker `w` using its next mini-batch.
// `accumulate` enables the interval accumulators (needed by HierAdMo's
// adaptive γℓ; the two-tier algorithms skip them).
// Returns the mini-batch loss.
Scalar nag_local_step(fl::WorkerState& w, Scalar eta, Scalar gamma,
                      bool accumulate);

// Plain SGD step: x ← x − η ∇F_i(x). Used by the no-worker-momentum
// baselines (FedAvg, HierFAVG, CFL, FedMom, SlowMo).
Scalar sgd_local_step(fl::WorkerState& w, Scalar eta);

}  // namespace hfl::core
