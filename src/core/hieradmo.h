// HierAdMo — the paper's contribution (Algorithm 1).
//
// Three-tier FL with momentum at two levels:
//   * worker level — every worker runs NAG locally (lines 5–6);
//   * edge level   — every τ iterations each edge aggregates its workers'
//     models into y_{ℓ+} and applies an edge momentum step
//     x_{ℓ+} = y_{ℓ+} + γℓ (y_{ℓ+} − y_{ℓ+}^{prev}) (lines 12–13), after
//     aggregating and re-distributing the worker momenta (lines 11, 14–15);
//   * cloud level  — every τπ iterations the cloud averages the edges'
//     y_{ℓ−} and x_{ℓ+} and re-distributes both all the way down
//     (lines 18–23).
//
// The adaptive edge momentum factor (eqs. (6)–(7)) is recomputed at every
// edge synchronization from the cosine between each worker's accumulated
// descent direction −Σ∇F_i and its accumulated momentum signal, weighted by
// data share and clamped to [0, 0.99].
//
// On the momentum signal: eq. (6) accumulates the momentum *parameter* y_t
// and correlates it with the accumulated descent direction −Σ∇F_i. Two
// alternative readings are implemented as ablations: `kVelocity` replaces
// Σy_t with the momentum *component* Σv_t (Appendix A's equivalent update),
// and `kCrossWorker` follows footnote 1 ("a small part of worker momenta
// point to the opposite direction ... to the edge aggregated worker
// momentum") by correlating each worker's accumulated descent direction with
// the edge aggregate. `Signal::kMomentumValue` (the literal eq. (6)) is the
// default — in our experiments it is also decisively the right choice: the
// velocity variant reports cosθ ≈ 1 unconditionally (within one interval the
// displacement IS the integrated gradient), drives γℓ to its 0.99 cap, and
// reproduces exactly the double-acceleration instability the paper's
// adaptation is designed to prevent; the cross-worker variant is informative
// but runs hot early in training (all workers initially agree), which
// destabilizes large-τ runs. The literal form yields small-but-informative
// angles that throttle the edge momentum whenever the two levels disagree
// (see EXPERIMENTS.md, E8 ablation).
//
// HierAdMo-R (the reduced version of Theorem 5) is this class with
// `adaptive = false`: γℓ stays fixed at cfg.gamma_edge.
#pragma once

#include <memory>

#include "src/fl/algorithm.h"
#include "src/fl/compression.h"

namespace hfl::core {

struct HierAdMoOptions {
  // false => HierAdMo-R (fixed γℓ = cfg.gamma_edge, no adaptation).
  bool adaptive = true;

  enum class Signal {
    kMomentumValue,  // cos(−Σ∇F_i, Σ y_i) — eq. (6) literal; default
    kVelocity,       // cos(−Σ∇F_i, Σ v_i) — ablation (see header comment)
    kCrossWorker,    // cos(Σ∇F_i, Σ_j w_j Σ∇F_j) — footnote-1 reading:
                     // each worker's descent direction vs the edge aggregate
  };
  Signal signal = Signal::kMomentumValue;

  // Upper clamp of eq. (7); the paper uses 0.99 to avoid divergence.
  Scalar clamp_max = 0.99;

  // Optional lossy compression of the worker→edge uploads (model, momentum
  // and the line-9 accumulators) applied at every edge synchronization.
  // nullptr = lossless uploads. See fl/compression.h.
  fl::CompressorPtr upload_compressor;
};

class HierAdMo final : public fl::Algorithm {
 public:
  explicit HierAdMo(HierAdMoOptions options = {});

  std::string name() const override;
  bool three_tier() const override { return true; }

  // edge_sync keeps all scratch in thread_local storage, so it is re-entrant
  // across edges — unless a stateful (RNG-carrying) compressor is attached,
  // whose draw order must match the serial edge walk.
  bool edge_sync_reentrant() const override {
    return options_.upload_compressor == nullptr ||
           options_.upload_compressor->reentrant();
  }

  void init(fl::Context& ctx) override;
  // Local steps evaluate ∇F_B(x) at the worker iterate first — the engine's
  // fused cohort prefetch serves them bit-identically.
  bool local_gradient_prefetchable() const override { return true; }
  void local_step(fl::Context& ctx, fl::WorkerState& w) override;
  void edge_sync(fl::Context& ctx, fl::EdgeState& e, std::size_t k) override;
  void cloud_sync(fl::Context& ctx, std::size_t p) override;

  const HierAdMoOptions& options() const { return options_; }

  // Computes cosθ_{k,ℓ} (eq. (6)) for edge e from the current worker
  // accumulators. Exposed for tests and diagnostics.
  Scalar compute_cos_theta(const fl::Context& ctx,
                           const fl::EdgeState& e) const;

  // Applies the clamp of eq. (7).
  Scalar clamp_gamma(Scalar cos_theta) const;

 private:
  HierAdMoOptions options_;
};

// Convenience factories used by benches and examples.
std::unique_ptr<fl::Algorithm> make_hieradmo();
std::unique_ptr<fl::Algorithm> make_hieradmo_r();

}  // namespace hfl::core
