#include "src/core/hieradmo.h"

#include "src/core/nag.h"
#include "src/obs/comm.h"

namespace hfl::core {

HierAdMo::HierAdMo(HierAdMoOptions options) : options_(options) {
  HFL_CHECK(options_.clamp_max > 0 && options_.clamp_max < 1,
            "gamma clamp must be in (0, 1)");
}

std::string HierAdMo::name() const {
  return options_.adaptive ? "HierAdMo" : "HierAdMo-R";
}

void HierAdMo::init(fl::Context& ctx) {
  // Edge states already hold x_{ℓ+} = y_{ℓ+} = x0 (Algorithm 1, lines 1–2).
  for (fl::EdgeState& e : *ctx.edges) {
    e.gamma_edge = options_.adaptive ? 0.0 : ctx.cfg->gamma_edge;
  }
}

void HierAdMo::local_step(fl::Context& ctx, fl::WorkerState& w) {
  nag_local_step(w, ctx.cfg->eta, ctx.cfg->gamma, /*accumulate=*/true);
}

Scalar HierAdMo::compute_cos_theta(const fl::Context& ctx,
                                   const fl::EdgeState& e) const {
  // Under partial participation the γℓ signal comes from the workers that
  // actually uploaded, with their weights renormalized over the survivors.
  const auto& ids = fl::active_workers(ctx.part, *ctx.topo, e.id);
  Scalar cos_theta = 0;

  if (options_.signal == HierAdMoOptions::Signal::kCrossWorker) {
    // Footnote-1 reading of eq. (6): the disagreement that matters is each
    // worker's accumulated descent direction vs the edge-aggregated one — a
    // straggler pointing at an obtuse angle to the aggregate pulls γℓ down.
    // The gradient accumulators are used (rather than Σv) because the
    // momentum parameters share a large common component injected by the
    // re-distribution steps, which would saturate the cosine at 1.
    Vec aggregated;
    bool first = true;
    for (const std::size_t id : ids) {
      const fl::WorkerState& w = (*ctx.workers)[id];
      if (first) {
        aggregated.assign(w.sum_grad.size(), 0.0);
        first = false;
      }
      vec::axpy(fl::active_weight_in_edge(ctx.part, w), w.sum_grad,
                aggregated);
    }
    for (const std::size_t id : ids) {
      const fl::WorkerState& w = (*ctx.workers)[id];
      cos_theta += fl::active_weight_in_edge(ctx.part, w) *
                   vec::cosine(w.sum_grad, aggregated);
    }
    return cos_theta;
  }

  for (const std::size_t id : ids) {
    const fl::WorkerState& w = (*ctx.workers)[id];
    const Vec& momentum_signal =
        options_.signal == HierAdMoOptions::Signal::kVelocity ? w.sum_v
                                                              : w.sum_y;
    // cosine(−Σg, signal) without materializing the negated accumulator —
    // bit-identical (IEEE sign symmetry), and drops an n-vector copy+scale
    // per active worker per edge round.
    cos_theta += fl::active_weight_in_edge(ctx.part, w) *
                 vec::cosine_neg(w.sum_grad, momentum_signal);
  }
  return cos_theta;
}

Scalar HierAdMo::clamp_gamma(Scalar cos_theta) const {
  // Eq. (7): 0 for cosθ ≤ 0; cosθ in (0, clamp); clamp above.
  if (cos_theta <= 0) return 0;
  if (cos_theta >= options_.clamp_max) return options_.clamp_max;
  return cos_theta;
}

void HierAdMo::edge_sync(fl::Context& ctx, fl::EdgeState& e, std::size_t) {
  auto& workers = *ctx.workers;

  // Optional lossy uplink (extension): what the edge sees of each worker's
  // upload is the compressed state. Worker state is overwritten by the
  // redistribution below, so compressing in place models the channel.
  if (options_.upload_compressor) {
    for (const std::size_t id : fl::active_workers(ctx.part, *ctx.topo, e.id)) {
      fl::WorkerState& w = workers[id];
      std::size_t sent = 0;
      sent += options_.upload_compressor->compress(w.x);
      sent += options_.upload_compressor->compress(w.y);
      sent += options_.upload_compressor->compress(w.sum_grad);
      sent += options_.upload_compressor->compress(w.sum_y);
      if (obs::enabled()) {
        // The engine has already counted this worker's 4-vector logical
        // upload; report what the lossy uplink removed so the accountant's
        // wire bytes reflect the compressed payload.
        const std::size_t raw = 4 * w.x.size();
        obs::CommAccountant::global().record_savings(
            obs::Link::kWorkerToEdge, e.id,
            static_cast<std::uint64_t>(raw - sent) * sizeof(Scalar));
      }
    }
  }

  // Line 10: adapt γℓ from the interval accumulators.
  if (options_.adaptive) {
    e.last_cos_theta = compute_cos_theta(ctx, e);
    e.gamma_edge = clamp_gamma(e.last_cos_theta);
  } else {
    e.gamma_edge = ctx.cfg->gamma_edge;
  }

  // Aggregation scratch is thread_local, never a member: the engine invokes
  // edge_sync for distinct edges concurrently, and member scratch would race
  // (the pre-parallel-tier latent bug this layout fixes).
  thread_local Vec y_plus_scratch;

  // Line 11: worker momentum edge aggregation y_{ℓ−} = Σ w_i y_i. The sum
  // lands directly in the edge state (the workers' y vectors are distinct
  // storage, so no aliasing) — no scratch round-trip.
  fl::aggregate_edge(*ctx.topo, e.id, workers, fl::worker_y, e.y_minus,
                     ctx.part);

  // Line 12: y_{ℓ+} = x_{ℓ+}^{(k−1)τ} − Σ w_i (x_{ℓ+}^{(k−1)τ} − x_i^{kτ}),
  // which simplifies to the data-weighted worker model average Σ w_i x_i.
  // Scratch is needed here: line 13 blends against the PREVIOUS y_{ℓ+}.
  fl::aggregate_edge(*ctx.topo, e.id, workers, fl::worker_x, y_plus_scratch,
                     ctx.part);

  // Line 13: x_{ℓ+} = y_{ℓ+} + γℓ (y_{ℓ+} − y_{ℓ+}^{(k−1)τ}), fused with the
  // y_{ℓ+} state rollover in one pass.
  e.x_plus.resize(y_plus_scratch.size());
  vec::extrapolate_update(y_plus_scratch, e.y_plus, e.gamma_edge, e.x_plus);

  // Lines 14–15: re-distribute y_{ℓ−} and x_{ℓ+} to the edge's workers (only
  // the survivors receive; absent workers keep local state per the absent
  // policy), and reset the interval accumulators for the next edge interval.
  for (const std::size_t id : fl::active_workers(ctx.part, *ctx.topo, e.id)) {
    fl::WorkerState& w = workers[id];
    w.y = e.y_minus;
    w.x = e.x_plus;
    w.reset_interval_accumulators();
  }
}

void HierAdMo::cloud_sync(fl::Context& ctx, std::size_t) {
  auto& edges = *ctx.edges;
  fl::CloudState& cloud = *ctx.cloud;

  // Lines 18–19: cloud aggregation of worker momenta and edge models (over
  // the reachable edges, with weights renormalized over the survivors) via
  // the deterministic parallel reduction — same bits for any thread count.
  fl::aggregate_edges(edges, fl::edge_y_minus, cloud.y, ctx.part, ctx.pool);
  fl::aggregate_edges(edges, fl::edge_x_plus, cloud.x, ctx.part, ctx.pool);

  // Lines 20–23: re-distribute to edges, then from edges to workers.
  for (fl::EdgeState& e : edges) {
    if (!fl::is_edge_active(ctx.part, e.id)) continue;
    e.y_minus = cloud.y;
    e.x_plus = cloud.x;
  }
  for (fl::WorkerState& w : *ctx.workers) {
    if (!fl::is_active(ctx.part, w.id)) continue;
    w.y = cloud.y;
    w.x = cloud.x;
  }
}

std::unique_ptr<fl::Algorithm> make_hieradmo() {
  return std::make_unique<HierAdMo>();
}

std::unique_ptr<fl::Algorithm> make_hieradmo_r() {
  HierAdMoOptions opt;
  opt.adaptive = false;
  return std::make_unique<HierAdMo>(opt);
}

}  // namespace hfl::core
