#!/usr/bin/env bash
# Run the test suite under sanitizer-instrumented builds. Any sanitizer
# report is fatal (-fno-sanitize-recover=all), so a green run means the
# suite is clean.
#
# Two passes, each in its own build tree:
#   1. ASan+UBSan — full ctest suite plus one telemetry-enabled example.
#   2. TSan       — the concurrency surface: thread pool, engine (parallel
#      local steps, parallel edge barrier, parallel reductions, sweep), the
#      obs subsystem that records from pool threads, the batched cohort
#      path (tile-parallel execution + batched/mixed GEMM drivers with
#      thread_local scratch), the event-driven engine (serial event loop
#      over the pool-parallel eval/reduction paths at 4 threads), and the
#      virtualized-population path (cohort sampling + parallel
#      spill/restore with absent-policy replay under the 4-thread engine,
#      pop_test / pop_parity_test / param_plane_test).
#      TSan and ASan cannot share a process, hence the
#      separate tree; the TSan pass runs the thread-touching tests rather
#      than the full suite to keep its ~10x slowdown in budget.
#
# Usage: scripts/run_sanitized_tests.sh [asan-build-dir] [tsan-build-dir]
#        (defaults: build-asan build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
ASAN_DIR="${1:-build-asan}"
TSAN_DIR="${2:-build-tsan}"

# --- pass 1: ASan + UBSan -------------------------------------------------
cmake -B "$ASAN_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHFL_SANITIZE=address \
  -DHFL_WERROR=ON
cmake --build "$ASAN_DIR" -j "$(nproc)"

# halt_on_error: make ASan findings fail the test rather than just print.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
ctest --test-dir "$ASAN_DIR" --output-on-failure

# Telemetry-enabled end-to-end pass: the obs subsystem records from pool
# threads, algorithm hooks and kernels concurrently, so run one full
# instrumented example under the sanitizers too (it enables obs itself and
# writes its artifacts into the build tree).
(cd "$ASAN_DIR" && ./examples/telemetry_report)

# --- pass 2: TSan ---------------------------------------------------------
cmake -B "$TSAN_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHFL_SANITIZE=thread \
  -DHFL_WERROR=ON
cmake --build "$TSAN_DIR" -j "$(nproc)"

export TSAN_OPTIONS="halt_on_error=1:second_deadlock_stack=1"
ctest --test-dir "$TSAN_DIR" --output-on-failure -R \
  '^(thread_pool_test|obs_test|parallel_sync_test|engine_schedule_test|engine_weights_test|integration_test|property_sweep_test|gemm_batched_test|batched_parity_test|pop_test|pop_parity_test|param_plane_test|async_engine_test|evt_versioning_test)$'

# Same telemetry-enabled example under TSan: obs recording + engine pools.
(cd "$TSAN_DIR" && ./examples/telemetry_report)

echo "sanitized test passes complete: $ASAN_DIR (ASan+UBSan), $TSAN_DIR (TSan)"
