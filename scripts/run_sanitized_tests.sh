#!/usr/bin/env bash
# Configure a dedicated ASan+UBSan build tree and run the full test suite
# under it. Any sanitizer report is fatal (-fno-sanitize-recover=all), so a
# green run means the suite is clean.
#
# Usage: scripts/run_sanitized_tests.sh [build-dir]   (default: build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHFL_SANITIZE=ON \
  -DHFL_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"

# halt_on_error: make ASan findings fail the test rather than just print.
export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
ctest --test-dir "$BUILD_DIR" --output-on-failure

# Telemetry-enabled end-to-end pass: the obs subsystem records from pool
# threads, algorithm hooks and kernels concurrently, so run one full
# instrumented example under the sanitizers too (it enables obs itself and
# writes its artifacts into the build tree).
(cd "$BUILD_DIR" && ./examples/telemetry_report)
