#!/usr/bin/env bash
# One-command CI gate: the checks a change must pass before merging.
#
#   1. Release build + full ctest suite (tier-1), which includes the
#      bench_smoke-labelled bench binaries at 0.1 scale — each asserts its
#      internal bitwise contract (fused kernel ≡ fma reference, sparse
#      roster ≡ dense rebuild, batched ≡ per-worker) before timing.
#   2. ASan+UBSan pass: full suite + telemetry-enabled example in an
#      instrumented tree (reports are fatal).
#
# The TSan pass is NOT run here — its ~10x slowdown puts it over a CI
# budget on this host; run scripts/run_sanitized_tests.sh for the full
# two-sanitizer sweep before cutting a release.
#
# Usage: scripts/ci_checks.sh [release-build-dir] [asan-build-dir]
#        (defaults: build build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
ASAN_DIR="${2:-build-asan}"

# --- gate 1: Release build + full suite (includes -L bench_smoke) ---------
cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release -DHFL_WERROR=ON
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

# The event-engine contracts gate merges by name (they are part of the full
# suite above; the explicit invocation keeps a red bisect pointed at them):
# sync bit-identity to fl::Engine, causal download versioning (no retroactive
# refresh), and charge-exactly-once comm accounting.
ctest --test-dir "$BUILD_DIR" --output-on-failure \
  -R '^(async_engine_test|evt_versioning_test)$'

# --- gate 2: ASan + UBSan -------------------------------------------------
cmake -B "$ASAN_DIR" -S . \
  -DCMAKE_BUILD_TYPE=RelWithDebInfo \
  -DHFL_SANITIZE=address \
  -DHFL_WERROR=ON
cmake --build "$ASAN_DIR" -j "$(nproc)"

export ASAN_OPTIONS="halt_on_error=1:detect_leaks=1"
export UBSAN_OPTIONS="halt_on_error=1:print_stacktrace=1"
ctest --test-dir "$ASAN_DIR" --output-on-failure

# Telemetry-enabled end-to-end pass: obs records from pool threads,
# algorithm hooks and kernels concurrently.
(cd "$ASAN_DIR" && ./examples/telemetry_report)

echo "ci checks complete: $BUILD_DIR (Release + full ctest), $ASAN_DIR (ASan+UBSan)"
