// E11 — substrate microbenchmarks (google-benchmark).
//
// Covers the hot paths of the simulation: GEMM (square and the skinny
// conv-lowered shapes), Conv2d forward/backward, flat-vector aggregation
// primitives, and full model gradient steps. These are the knobs that
// determine how large a simulated deployment the engine can sustain.
//
// Emit a machine-readable trajectory file with bench/run_micro.sh, which
// writes BENCH_micro.json at the repository root.
#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/common/vec_ops.h"
#include "src/nn/conv2d.h"
#include "src/nn/models.h"
#include "src/tensor/tensor_ops.h"

namespace hfl {
namespace {

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  Tensor c;
  for (auto _ : state) {
    ops::matmul(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

// The conv-lowered GEMM shapes of the model zoo: C = W(m×k) · col(k×n) with
// m = out_ch, k = in_ch·kh·kw, n = B·OH·OW. These are short-and-wide — the
// shape class a naive ikj loop handles worst.
void BM_GemmConvShape(benchmark::State& state) {
  const auto m = static_cast<std::size_t>(state.range(0));
  const auto k = static_cast<std::size_t>(state.range(1));
  const auto n = static_cast<std::size_t>(state.range(2));
  Rng rng(7);
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor c;
  for (auto _ : state) {
    ops::matmul(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * m * k * n);
}
BENCHMARK(BM_GemmConvShape)
    ->Args({8, 25, 12544})    // CNN conv1: 1->8 5x5, B=16 on 28x28
    ->Args({16, 200, 3136})   // CNN conv2: 8->16 5x5, B=16 on 14x14
    ->Args({16, 72, 8192})    // MiniVGG 8->16 3x3, B=8 on 32x32
    ->Args({32, 144, 512})    // MiniVGG 16->32 3x3, B=8 on 8x8
    ->Args({16, 8, 1568});    // MiniResNet 1x1 shortcut, B=8 on 14x14

// Transposed variants as used by dense backprop (dW = g^T x, dX = g W).
void BM_GemmTransposeA(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  Tensor c;
  for (auto _ : state) {
    ops::matmul_transpose_a(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * n * n);
}
BENCHMARK(BM_GemmTransposeA)->Arg(128);

void BM_GemmTransposeB(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  Tensor c;
  for (auto _ : state) {
    ops::matmul_transpose_b(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * n * n);
}
BENCHMARK(BM_GemmTransposeB)->Arg(128);

// Conv2d layer forward/backward on the CNN's second conv (the FLOP-dominant
// layer of the Table II MNIST fleet) and MiniVGG's widest early conv.
// Args: {in_ch, out_ch, kernel, pad, batch, spatial}.
void BM_Conv2dForward(benchmark::State& state) {
  const auto in_ch = static_cast<std::size_t>(state.range(0));
  const auto out_ch = static_cast<std::size_t>(state.range(1));
  const auto k = static_cast<std::size_t>(state.range(2));
  const auto pad = static_cast<std::size_t>(state.range(3));
  const auto batch = static_cast<std::size_t>(state.range(4));
  const auto hw = static_cast<std::size_t>(state.range(5));
  Rng rng(10);
  nn::Conv2d conv(in_ch, out_ch, k, pad);
  conv.init_params(rng);
  Tensor x = Tensor::randn({batch, in_ch, hw, hw}, rng);
  for (auto _ : state) {
    Tensor out = conv.forward(x, true);
    benchmark::DoNotOptimize(out.raw());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_Conv2dForward)
    ->Args({8, 16, 5, 2, 16, 14})   // CNN conv2
    ->Args({8, 16, 3, 1, 8, 16});   // MiniVGG block-2 entry

void BM_Conv2dBackward(benchmark::State& state) {
  const auto in_ch = static_cast<std::size_t>(state.range(0));
  const auto out_ch = static_cast<std::size_t>(state.range(1));
  const auto k = static_cast<std::size_t>(state.range(2));
  const auto pad = static_cast<std::size_t>(state.range(3));
  const auto batch = static_cast<std::size_t>(state.range(4));
  const auto hw = static_cast<std::size_t>(state.range(5));
  Rng rng(11);
  nn::Conv2d conv(in_ch, out_ch, k, pad);
  conv.init_params(rng);
  Tensor x = Tensor::randn({batch, in_ch, hw, hw}, rng);
  Tensor out = conv.forward(x, true);
  Tensor g = Tensor::randn(out.shape(), rng);
  for (auto _ : state) {
    Tensor gin = conv.backward(g);
    benchmark::DoNotOptimize(gin.raw());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_Conv2dBackward)
    ->Args({8, 16, 5, 2, 16, 14})   // CNN conv2
    ->Args({8, 16, 3, 1, 8, 16});   // MiniVGG block-2 entry

void BM_VecAxpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  Vec x(n), y(n);
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();
  for (auto _ : state) {
    vec::axpy(0.5, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_VecAxpy)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_VecCosine(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  Vec x(n), y(n);
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec::cosine(x, y));
  }
}
BENCHMARK(BM_VecCosine)->Arg(1 << 12)->Arg(1 << 16);

// Fleet-scale aggregation: Fig. 2(d) runs N=100, and the north star is
// larger fleets still. The model size matches CNN-on-MNIST.
void BM_WeightedAggregation(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 11274;  // CNN-on-MNIST parameter count scale
  Rng rng(4);
  std::vector<Vec> models(workers, Vec(n));
  for (auto& m : models) {
    for (auto& v : m) v = rng.normal();
  }
  Vec weights(workers, 1.0 / static_cast<Scalar>(workers));
  Vec out;
  for (auto _ : state) {
    vec::weighted_sum(models, weights, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * workers *
                          n);
}
BENCHMARK(BM_WeightedAggregation)->Arg(4)->Arg(16)->Arg(100)->Arg(400)->Arg(1000);

void BM_CnnGradientStep(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  auto factory = nn::cnn({1, 28, 28}, 10);
  auto model = factory();
  model->init_params(rng);
  const Vec params = model->get_params();
  Tensor x = Tensor::randn({batch, 1, 28, 28}, rng);
  std::vector<std::size_t> labels(batch);
  for (auto& l : labels) l = rng.uniform_index(10);
  Vec grad;
  for (auto _ : state) {
    model->loss_and_gradient(params, x, labels, grad);
    benchmark::DoNotOptimize(grad.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_CnnGradientStep)->Arg(8)->Arg(16)->Arg(32);

void BM_MiniVggGradientStep(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  auto factory = nn::mini_vgg({3, 32, 32}, 10);
  auto model = factory();
  model->init_params(rng);
  const Vec params = model->get_params();
  Tensor x = Tensor::randn({batch, 3, 32, 32}, rng);
  std::vector<std::size_t> labels(batch);
  for (auto& l : labels) l = rng.uniform_index(10);
  Vec grad;
  for (auto _ : state) {
    model->loss_and_gradient(params, x, labels, grad);
    benchmark::DoNotOptimize(grad.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_MiniVggGradientStep)->Arg(4)->Arg(8);

}  // namespace
}  // namespace hfl
