// E11 — substrate microbenchmarks (google-benchmark).
//
// Covers the hot paths of the simulation: GEMM, direct convolution
// forward/backward, flat-vector aggregation primitives, and a full CNN
// gradient step. These are the knobs that determine how large a simulated
// deployment the engine can sustain.
#include <benchmark/benchmark.h>

#include "src/common/rng.h"
#include "src/common/vec_ops.h"
#include "src/nn/models.h"
#include "src/tensor/tensor_ops.h"

namespace hfl {
namespace {

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  Tensor c;
  for (auto _ : state) {
    ops::matmul(a, b, c);
    benchmark::DoNotOptimize(c.raw());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128);

void BM_VecAxpy(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  Vec x(n), y(n);
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();
  for (auto _ : state) {
    vec::axpy(0.5, x, y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * n);
}
BENCHMARK(BM_VecAxpy)->Arg(1 << 12)->Arg(1 << 16)->Arg(1 << 20);

void BM_VecCosine(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  Vec x(n), y(n);
  for (auto& v : x) v = rng.normal();
  for (auto& v : y) v = rng.normal();
  for (auto _ : state) {
    benchmark::DoNotOptimize(vec::cosine(x, y));
  }
}
BENCHMARK(BM_VecCosine)->Arg(1 << 12)->Arg(1 << 16);

void BM_WeightedAggregation(benchmark::State& state) {
  const auto workers = static_cast<std::size_t>(state.range(0));
  const std::size_t n = 11274;  // CNN-on-MNIST parameter count scale
  Rng rng(4);
  std::vector<Vec> models(workers, Vec(n));
  for (auto& m : models) {
    for (auto& v : m) v = rng.normal();
  }
  Vec weights(workers, 1.0 / static_cast<Scalar>(workers));
  Vec out;
  for (auto _ : state) {
    vec::weighted_sum(models, weights, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_WeightedAggregation)->Arg(4)->Arg(16)->Arg(100);

void BM_CnnGradientStep(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(5);
  auto factory = nn::cnn({1, 28, 28}, 10);
  auto model = factory();
  model->init_params(rng);
  const Vec params = model->get_params();
  Tensor x = Tensor::randn({batch, 1, 28, 28}, rng);
  std::vector<std::size_t> labels(batch);
  for (auto& l : labels) l = rng.uniform_index(10);
  Vec grad;
  for (auto _ : state) {
    model->loss_and_gradient(params, x, labels, grad);
    benchmark::DoNotOptimize(grad.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_CnnGradientStep)->Arg(8)->Arg(16)->Arg(32);

void BM_MiniVggGradientStep(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  Rng rng(6);
  auto factory = nn::mini_vgg({3, 32, 32}, 10);
  auto model = factory();
  model->init_params(rng);
  const Vec params = model->get_params();
  Tensor x = Tensor::randn({batch, 3, 32, 32}, rng);
  std::vector<std::size_t> labels(batch);
  for (auto& l : labels) l = rng.uniform_index(10);
  Vec grad;
  for (auto _ : state) {
    model->loss_and_gradient(params, x, labels, grad);
    benchmark::DoNotOptimize(grad.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) * batch);
}
BENCHMARK(BM_MiniVggGradientStep)->Arg(4)->Arg(8);

}  // namespace
}  // namespace hfl
