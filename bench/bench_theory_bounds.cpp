// E9/E10 — numerical study of the convergence bounds (Theorems 1–5).
//
//  * h(x, δ): non-negative, zero at x = 0, increasing in x (eq. (39));
//  * s(τ): linear in τ and γℓ (Theorem 2);
//  * j(τ, π): increasing in both τ and π (the mechanism behind Fig. 2(a)–(c));
//  * Theorem 4: the feasibility frontier of Condition (2.1) over (τ, π);
//  * Theorem 5: E[γℓ] = 1/4 < E[γ̃ℓ] = 1/2, verified analytically and by
//    Monte-Carlo, with the induced gap in the expected s(τ).
// Constants ρ, β, δ are estimated on the actual CNN/MNIST workload via
// theory::estimate_assumptions.
#include <cstdio>

#include "bench_util.h"
#include "src/common/csv.h"
#include "src/theory/bounds.h"
#include "src/theory/estimators.h"
#include "src/theory/theorem5.h"

namespace hfl::bench {
namespace {

void run() {
  using namespace hfl::theory;

  // Estimate the assumption constants on the real workload.
  Rng rng(3);
  const data::TrainTest dataset = data::make_synthetic_mnist(rng, 0.5);
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  const data::Partition partition = data::partition_by_class(
      dataset.train, topo.num_workers(), 5, rng);
  EstimatorOptions opts;
  const AssumptionEstimates est = estimate_assumptions(
      nn::cnn({1, 28, 28}, 10), dataset.train, partition, topo, opts);

  print_heading("Estimated assumption constants (CNN on synthetic MNIST)");
  std::printf("rho (Lipschitz)    = %.4f\n", est.rho);
  std::printf("beta (smoothness)  = %.4f\n", est.beta);
  std::printf("delta (global)     = %.4f\n", est.delta_global);
  for (std::size_t e = 0; e < est.delta_edges.size(); ++e) {
    std::printf("delta (edge %zu)    = %.4f (weight %.2f)\n", e,
                est.delta_edges[e], est.edge_weights[e]);
  }

  BoundParams p;
  p.eta = 0.01;
  p.beta = est.beta;
  p.rho = est.rho;
  p.gamma = 0.5;
  p.gamma_edge = 0.5;
  p.mu = 1.0;

  const MomentumConstants c = momentum_constants(p);
  print_heading("Appendix A constants");
  std::printf("A=%.6f B=%.6f I=%.6f J=%.6f U=%.6f V=%.6f (I+J=%.6f)\n", c.A,
              c.B, c.I, c.J, c.U, c.V, c.I + c.J);

  print_heading("Theorem 1 — h(x, delta) growth");
  print_row({"x", "h(x, delta_l)", "h(x, delta)"}, {6, 16, 16});
  for (const std::size_t x : {0, 1, 2, 5, 10, 20, 40}) {
    print_row({std::to_string(x),
               CsvWriter::format_scalar(h_gap(p, x, est.delta_edges[0])),
               CsvWriter::format_scalar(h_gap(p, x, est.delta_global))},
              {6, 16, 16});
  }

  print_heading("Theorem 2 — s(tau) growth");
  print_row({"tau", "s(tau)"}, {6, 16});
  for (const std::size_t tau : {1, 5, 10, 20, 40}) {
    print_row({std::to_string(tau), CsvWriter::format_scalar(s_gap(p, tau))},
              {6, 16});
  }

  // (i) j on the estimated constants — shows the monotone growth in τ and π
  // behind Fig. 2(a)–(c). The empirical mini-batch constants are far too
  // pessimistic for Condition (2.1) to hold (ρ and δ are maxima over noisy
  // probes), so feasibility is studied separately in (ii) with normalized
  // constants.
  print_heading("Theorem 3 — j(tau, pi) on estimated constants");
  print_row({"tau", "pi", "j(tau,pi)"}, {6, 6, 16});
  for (const std::size_t tau : {5, 10, 20}) {
    for (const std::size_t pi : {1, 2, 4}) {
      print_row({std::to_string(tau), std::to_string(pi),
                 CsvWriter::format_scalar(
                     j_gap(p, tau, pi, est.delta_edges, est.edge_weights,
                           est.delta_global))},
                {6, 6, 16});
    }
  }

  // (ii) Condition (2.1) feasibility frontier with normalized constants
  // (ρ = β = 1, small δ): small τ·π is feasible, large τ·π is not — the
  // theory-side counterpart of "don't aggregate too rarely".
  print_heading("Theorem 4 — feasibility frontier (normalized constants)");
  BoundParams np;
  np.eta = 0.005;
  np.beta = 1.0;
  np.rho = 1.0;
  np.gamma = 0.5;
  np.gamma_edge = 0.05;
  np.mu = 0.2;
  print_row({"tau", "pi", "j(tau,pi)", "denominator", "feasible", "bound"},
            {6, 6, 14, 14, 10, 14});
  for (const std::size_t tau : {1, 2, 5, 10, 20}) {
    for (const std::size_t pi : {1, 2, 4}) {
      Theorem4Inputs in;
      in.params = np;
      in.tau = tau;
      in.pi = pi;
      in.total_iterations = 1200 * tau * pi;  // multiple of τπ, ~O(10^3+)
      in.omega = 1.0;
      in.sigma = 1.0;
      in.epsilon = 0.8;
      in.delta_edges = {1.0, 1.0};
      in.edge_weights = {0.5, 0.5};
      in.delta_global = 1.0;
      const Theorem4Result r = theorem4_bound(in);
      print_row({std::to_string(tau), std::to_string(pi),
                 CsvWriter::format_scalar(r.j_value),
                 CsvWriter::format_scalar(r.denominator),
                 r.feasible ? "yes" : "no",
                 r.feasible ? CsvWriter::format_scalar(r.bound) : "-"},
                {6, 6, 14, 14, 10, 14});
    }
  }

  print_heading("Theorem 5 — adaptive vs fixed gamma_edge moments");
  const Moments ana = adaptive_gamma_moments();
  const Moments fix = fixed_gamma_moments();
  Rng mc_rng(42);
  const Moments mc = simulate_adaptive_gamma(mc_rng, 2000000);
  std::printf("adaptive analytic: E=%.4f D=%.4f\n", ana.mean, ana.variance);
  std::printf("adaptive MC      : E=%.4f D=%.4f (2e6 samples, 0.99 clamp)\n",
              mc.mean, mc.variance);
  std::printf("fixed    analytic: E=%.4f D=%.4f\n", fix.mean, fix.variance);
  const Theorem5Comparison cmp = compare_expected_s(p, 20);
  std::printf("E[s(20)] adaptive=%.6f fixed=%.6f -> adaptive tighter: %s\n",
              cmp.s_adaptive, cmp.s_fixed,
              cmp.adaptive_tighter ? "yes" : "no");
}

}  // namespace
}  // namespace hfl::bench

int main() {
  hfl::bench::run();
  return 0;
}
