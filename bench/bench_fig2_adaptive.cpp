// E8 — Fig. 2(i)–(k): adaptive γℓ vs exhaustive enumeration of fixed γℓ.
//
// Paper setup: CNN on CIFAR-10, τ=20, π=2, 4 workers / 2 edges, worker
// momentum γ ∈ {0.3, 0.6, 0.9}. For each γ the fixed-γℓ variant
// (HierAdMo-R) is enumerated over γℓ ∈ {0.1 … 0.9} and compared with the
// single adaptive run; the claim is that adaptation lands at or near the
// best fixed setting without the sweep. An extra ablation row runs the
// velocity-signal interpretation of eq. (6) (see core/hieradmo.h).
#include <cstdio>

#include "bench_util.h"
#include "src/common/csv.h"
#include "src/core/hieradmo.h"

namespace hfl::bench {
namespace {

void run() {
  Rng rng(99);
  const data::TrainTest dataset = data::make_synthetic_cifar10(rng, 1.0);
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  const data::Partition partition = data::partition_by_class(
      dataset.train, topo.num_workers(), 5, rng);
  const nn::ModelFactory factory = nn::cnn({3, 32, 32}, 10);

  CsvWriter csv("results/fig2_adaptive_results.csv");
  csv.write_header({"gamma", "variant", "gamma_edge", "accuracy"});

  for (const Scalar gamma : {0.3, 0.6, 0.9}) {
    fl::RunConfig cfg;
    cfg.tau = 20;
    cfg.pi = 2;
    cfg.total_iterations = scaled_iters(160, 40);
    cfg.eta = 0.01;
    cfg.gamma = gamma;
    cfg.batch_size = 8;
    cfg.eval_max_samples = 250;
    cfg.seed = 23;

    print_heading("Fig. 2 adaptive-gamma study — CNN on CIFAR10, gamma = " +
                  CsvWriter::format_scalar(gamma));
    print_row({"variant", "gamma_edge", "accuracy"}, {22, 12, 12});

    Scalar best_fixed = 0, best_fixed_gamma = 0;
    for (const Scalar ge : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      cfg.gamma_edge = ge;
      fl::Engine engine(factory, dataset, partition, topo, cfg);
      const fl::RunResult r = run_algorithm(engine, "HierAdMo-R");
      if (r.final_accuracy > best_fixed) {
        best_fixed = r.final_accuracy;
        best_fixed_gamma = ge;
      }
      print_row({"fixed (HierAdMo-R)", CsvWriter::format_scalar(ge),
                 pct(r.final_accuracy)},
                {22, 12, 12});
      csv.write_row({CsvWriter::format_scalar(gamma), "fixed",
                     CsvWriter::format_scalar(ge),
                     CsvWriter::format_scalar(r.final_accuracy)});
    }

    cfg.gamma_edge = 0.5;  // ignored by the adaptive variant
    fl::Engine engine(factory, dataset, partition, topo, cfg);
    const fl::RunResult adaptive = run_algorithm(engine, "HierAdMo");
    print_row({"adaptive (HierAdMo)", "-", pct(adaptive.final_accuracy)},
              {22, 12, 12});
    csv.write_row({CsvWriter::format_scalar(gamma), "adaptive", "-",
                   CsvWriter::format_scalar(adaptive.final_accuracy)});

    // Ablation: the velocity interpretation of the eq. (6) signal.
    core::HierAdMoOptions opt;
    opt.signal = core::HierAdMoOptions::Signal::kVelocity;
    core::HierAdMo velocity_variant(opt);
    const fl::RunResult vel = engine.run(velocity_variant);
    print_row({"adaptive (velocity)", "-", pct(vel.final_accuracy)},
              {22, 12, 12});
    csv.write_row({CsvWriter::format_scalar(gamma), "adaptive-velocity", "-",
                   CsvWriter::format_scalar(vel.final_accuracy)});

    std::printf("best fixed gamma_edge = %.1f (%.2f%%); adaptive %.2f%%\n",
                best_fixed_gamma, 100 * best_fixed,
                100 * adaptive.final_accuracy);
  }
  std::printf("\n(results written to results/fig2_adaptive_results.csv)\n");
}

}  // namespace
}  // namespace hfl::bench

int main() {
  hfl::bench::run();
  return 0;
}
