// Virtualized-population bench: memory ceiling and throughput of the lazy
// cohort store (src/pop/, DESIGN.md §13) at populations far beyond what the
// dense engine can hold.
//
// Two sections, each asserting the contract it relies on:
//   * parity — a 64-worker HierAdMo run, dense engine vs the virtualized
//              full-cohort path, must be bit-identical (same curve, same
//              final parameters) before any large-scale number means
//              anything; both directions are timed so the virtualization
//              overhead at dense-feasible scale is on record.
//   * scale  — weighted-sampled cohorts over populations up to 1,000,000
//              workers on 1,000 edges (the ISSUE acceptance point; scaled by
//              HFL_BENCH_SCALE). Each row checks the memory ceiling
//              pop.materialized_peak <= cohort_size — O(cohort), not O(N) —
//              cross-checks the obs gauge against the store, and records
//              slab traffic, wall time, and process peak RSS.
//
// The analytic column `dense_state_mb` is what the dense engine would
// allocate for worker states alone (4 model-sized vectors per worker); at
// 1M workers it is the number that makes dense runs infeasible and the
// cohort store's O(cohort) footprint the point of the subsystem.
//
// Writes BENCH_pop.json in the working directory so the numbers ship with
// the repo.
#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "src/algs/registry.h"
#include "src/common/errors.h"
#include "src/obs/registry.h"
#include "src/pop/cohort_store.h"

namespace {

using namespace hfl;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool same_curve(const fl::RunResult& a, const fl::RunResult& b) {
  if (a.final_params != b.final_params) return false;
  if (a.curve.size() != b.curve.size()) return false;
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    if (a.curve[i].test_loss != b.curve[i].test_loss ||
        a.curve[i].test_accuracy != b.curve[i].test_accuracy) {
      return false;
    }
  }
  return true;
}

// Peak resident set of the process so far, in MiB (Linux ru_maxrss is KiB).
double peak_rss_mb() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;
}

// Tiny per-sample payload ({1,2,2} grids, 2 classes) so the dataset — which
// any engine needs in full — stays small even at 1M samples, and the memory
// story is dominated by worker state, which is what the cohort store bounds.
data::TrainTest make_scale_dataset(std::size_t train_size, Rng& rng) {
  data::SyntheticSpec spec;
  spec.sample_shape = {1, 2, 2};
  spec.num_classes = 2;
  spec.train_size = train_size;
  spec.test_size = 2000;
  spec.coarse = 2;
  return data::make_synthetic(rng, spec);
}

struct ScaleRow {
  std::size_t population = 0;
  std::size_t edges = 0;
  std::size_t cohort = 0;
  bool with_replacement = false;
};

}  // namespace

int main() {
  using namespace hfl;
  obs::set_enabled(true);

  std::FILE* json = std::fopen("BENCH_pop.json", "w");
  HFL_CHECK(json != nullptr, "cannot open BENCH_pop.json");
  std::fprintf(json, "{\n  \"bench_scale\": %.2f,\n",
               static_cast<double>(bench::bench_scale()));

  // -- parity: dense engine vs virtualized full cohort ----------------------
  bench::print_heading("parity: dense vs virtualized full cohort (HierAdMo)");
  {
    Rng rng(7);
    const data::TrainTest dataset = data::make_synthetic_mnist(rng);
    const fl::Topology topo = fl::Topology::uniform(8, 8);  // 64 workers
    const data::Partition partition =
        data::partition_iid(dataset.train, topo.num_workers(), rng);
    const nn::ModelFactory factory = nn::logistic_regression({1, 28, 28}, 10);

    fl::RunConfig cfg;
    cfg.total_iterations = bench::scaled_iters(40, 4);
    cfg.tau = 2;
    cfg.pi = 2;
    cfg.batch_size = 8;
    cfg.eval_max_samples = 200;
    cfg.seed = 3;

    fl::Engine dense(factory, dataset, partition, topo, cfg);
    auto alg_dense = algs::make_algorithm("HierAdMo");
    auto t0 = std::chrono::steady_clock::now();
    const fl::RunResult r_dense = dense.run(*alg_dense);
    const double dense_s = seconds_since(t0);

    fl::Engine virt(factory, dataset, partition, topo, cfg);
    pop::VirtConfig vcfg;  // cohort_size = 0: full population, lazy backing
    pop::CohortStore store(factory, dataset, partition, topo, cfg, vcfg);
    virt.set_cohort_provider(&store);
    auto alg_virt = algs::make_algorithm("HierAdMo");
    t0 = std::chrono::steady_clock::now();
    const fl::RunResult r_virt = virt.run(*alg_virt);
    const double virt_s = seconds_since(t0);

    HFL_CHECK(same_curve(r_dense, r_virt),
              "virtualized full-cohort run diverged from the dense engine");
    std::printf("64 workers, T=%zu: dense %.3fs  virtualized %.3fs  "
                "overhead %.2fx  (bit-identical: yes)\n",
                cfg.total_iterations, dense_s, virt_s, virt_s / dense_s);
    std::fprintf(json,
                 "  \"parity\": {\"workers\": 64, \"T\": %zu, "
                 "\"dense_s\": %.4f, \"virtualized_s\": %.4f, "
                 "\"overhead\": %.3f, \"bit_identical\": true},\n",
                 cfg.total_iterations, dense_s, virt_s, virt_s / dense_s);
  }

  // -- scale: sampled cohorts over growing populations ----------------------
  bench::print_heading("scale: weighted-sampled cohorts, O(cohort) memory");
  const auto scaled = [](std::size_t base) {
    return std::max<std::size_t>(
        64, static_cast<std::size_t>(static_cast<double>(base) *
                                     static_cast<double>(bench::bench_scale())));
  };
  const std::size_t full_pop = scaled(1000000);
  const std::size_t full_edges = scaled(1000);
  const std::vector<ScaleRow> rows = {
      {scaled(10000), scaled(100), 256, false},
      {scaled(100000), scaled(1000), 256, false},
      {full_pop, full_edges, 256, false},
      {full_pop, full_edges, 1024, false},
      {full_pop, full_edges, 1024, true},
  };

  std::fprintf(json, "  \"scale\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const ScaleRow& row = rows[i];
    obs::Registry::global().reset();

    Rng rng(11);
    const std::size_t per_edge =
        std::max<std::size_t>(1, row.population / row.edges);
    const fl::Topology topo = fl::Topology::uniform(row.edges, per_edge);
    const std::size_t n = topo.num_workers();  // may round row.population down
    const data::TrainTest dataset = make_scale_dataset(n, rng);
    const data::Partition partition =
        data::partition_iid(dataset.train, n, rng);
    const nn::ModelFactory factory = nn::logistic_regression({1, 2, 2}, 2);

    fl::RunConfig cfg;
    cfg.total_iterations = 8;  // 4 edge intervals, 2 cloud rounds
    cfg.tau = 2;
    cfg.pi = 2;
    cfg.batch_size = 1;  // one sample per worker at full scale
    cfg.eval_max_samples = 500;
    cfg.seed = 5;

    pop::VirtConfig vcfg;
    vcfg.cohort_size = row.cohort;
    vcfg.with_replacement = row.with_replacement;
    pop::CohortStore store(factory, dataset, partition, topo, cfg, vcfg);
    fl::Engine engine(factory, dataset, partition, topo, cfg);
    engine.set_cohort_provider(&store);
    auto alg = algs::make_algorithm("HierAdMo");

    auto t0 = std::chrono::steady_clock::now();
    const fl::RunResult r = engine.run(*alg);
    const double run_s = seconds_since(t0);

    // The acceptance invariant: worker state stays O(cohort) no matter the
    // population. (Edge/cloud states are separate and O(edges) by design.)
    HFL_CHECK(store.peak_materialized() <= row.cohort,
              "materialized worker states exceeded the cohort size");
    const double gauge_peak =
        obs::Registry::global().gauge("pop.materialized_peak").value();
    HFL_CHECK(gauge_peak == static_cast<double>(store.peak_materialized()),
              "pop.materialized_peak gauge disagrees with the store");

    const std::uint64_t spills =
        obs::Registry::global().counter("pop.spills").value();
    const std::uint64_t restores =
        obs::Registry::global().counter("pop.restores").value();
    const std::size_t model_dim = factory()->num_params();
    const double dense_state_mb =
        static_cast<double>(n) *
        static_cast<double>(4 * model_dim * sizeof(Scalar)) / (1024.0 * 1024.0);
    const double rss_mb = peak_rss_mb();

    std::printf("N=%-8zu edges=%-5zu cohort=%-5zu %s  %.2fs  "
                "materialized peak %zu  slab %zu blobs / %.1f KiB peak  "
                "spills %llu restores %llu  rss %.0f MiB  loss %.4f\n",
                n, row.edges, row.cohort,
                row.with_replacement ? "WR " : "WOR", run_s,
                store.peak_materialized(), store.slab().num_entries(),
                static_cast<double>(store.slab().peak_bytes()) / 1024.0,
                static_cast<unsigned long long>(spills),
                static_cast<unsigned long long>(restores), rss_mb,
                r.final_loss);
    std::fprintf(
        json,
        "    {\"population\": %zu, \"edges\": %zu, \"cohort\": %zu, "
        "\"with_replacement\": %s, \"seconds\": %.4f, "
        "\"materialized_peak\": %zu, \"slab_entries\": %zu, "
        "\"slab_peak_bytes\": %llu, \"spills\": %llu, \"restores\": %llu, "
        "\"dense_state_mb\": %.1f, \"peak_rss_mb\": %.1f, "
        "\"final_loss\": %.6f, \"mean_participation\": %.6f}%s\n",
        n, row.edges, row.cohort,
        row.with_replacement ? "true" : "false", run_s,
        store.peak_materialized(), store.slab().num_entries(),
        static_cast<unsigned long long>(store.slab().peak_bytes()),
        static_cast<unsigned long long>(spills),
        static_cast<unsigned long long>(restores), dense_state_mb, rss_mb,
        static_cast<double>(r.final_loss),
        static_cast<double>(r.mean_participation_rate),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(json, "  ]\n}\n");
  std::fclose(json);
  std::printf("\n(measurements written to BENCH_pop.json)\n");
  return 0;
}
