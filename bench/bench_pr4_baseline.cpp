// Pre-batched baseline measurement for BENCH_batched.json: runs the SAME
// workloads as bench_batched (HierAdMo, 32-worker uniform(8,4) cohort, same
// seeds and iteration counts) and prints per-round times in the
// HFL_PR4_BASELINE env format bench_batched consumes.
//
// This file is NOT built by the main tree. It uses only APIs that predate
// the batched path, so the recipe (EXPERIMENTS.md E16) is: check out the
// pre-batched commit in a worktree, copy this file into its bench/, append
// `hfl_add_experiment(bench_pr4_baseline)` to its bench/CMakeLists.txt,
// build, and run it back-to-back with bench_batched — same machine phase —
// exporting its last output line.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "src/common/rng.h"

namespace {

using namespace hfl;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct Workload {
  std::string model;
  nn::ModelFactory factory;
  std::size_t iters;
};

}  // namespace

int main() {
  using namespace hfl;

  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());
  Rng rng(7);
  const data::TrainTest dataset = data::make_synthetic_mnist(rng);
  const fl::Topology topo = fl::Topology::uniform(8, 4);
  const data::Partition partition =
      data::partition_by_class(dataset.train, topo.num_workers(), 5, rng);

  const std::vector<Workload> workloads = {
      {"logistic", nn::logistic_regression({1, 28, 28}, 10),
       bench::scaled_iters(64, 8)},
      {"mlp", nn::mlp({1, 28, 28}, 256, 10), bench::scaled_iters(16, 8)},
      {"cnn", nn::cnn({1, 28, 28}, 10), bench::scaled_iters(8, 8)},
  };

  std::string env = "HFL_PR4_BASELINE=\"";
  for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
    const Workload& wl = workloads[wi];
    fl::RunConfig cfg;
    cfg.total_iterations = wl.iters;
    cfg.tau = 4;  // paper-realistic sync cadence: compute dominates the round
    cfg.pi = 2;
    cfg.batch_size = 16;
    cfg.eval_max_samples = 200;
    cfg.seed = 3;
    cfg.num_threads = cores;

    const int reps = 3;
    std::vector<double> ts;
    for (int rep = 0; rep < reps; ++rep) {
      fl::Engine engine(wl.factory, dataset, partition, topo, cfg);
      auto alg = algs::make_algorithm("HierAdMo");
      const auto t0 = std::chrono::steady_clock::now();
      engine.run(*alg);
      ts.push_back(seconds_since(t0));
    }
    const double round_ms =
        median(ts) * 1000.0 / static_cast<double>(wl.iters);
    std::printf("%-9s %.3f ms/round (T=%zu)\n", wl.model.c_str(), round_ms,
                wl.iters);
    env += wl.model + "=" + std::to_string(round_ms);
    if (wi + 1 < workloads.size()) env += ",";
  }
  env += "\"";
  std::printf("\n%s\n", env.c_str());
  return 0;
}
