#include "bench_util.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace hfl::bench {

Scalar bench_scale() {
  const char* env = std::getenv("HFL_BENCH_SCALE");
  if (env == nullptr) return 1.0;
  const Scalar s = std::atof(env);
  return std::clamp(s, Scalar{0.1}, Scalar{100.0});
}

std::size_t scaled_iters(std::size_t base, std::size_t multiple) {
  const auto scaled = static_cast<std::size_t>(
      static_cast<Scalar>(base) * bench_scale());
  const std::size_t m = std::max<std::size_t>(1, multiple);
  return std::max(m, (scaled + m - 1) / m * m);
}

void print_heading(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const int w = i < widths.size() ? widths[i] : 12;
    std::printf("%-*s", w, cells[i].c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

std::string pct(Scalar accuracy) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", accuracy * 100.0);
  return buf;
}

fl::RunResult run_algorithm(fl::Engine& engine, const std::string& name) {
  auto alg = algs::make_algorithm(name);
  return engine.run(*alg);
}

}  // namespace hfl::bench
