// Batched cohort execution bench: per-worker vs fused vs fused+mixed.
//
// Measures the end-to-end effect of RunConfig::batched (one strided-batch
// forward/backward per cohort instead of per-worker model calls) and
// RunConfig::mixed_precision (FP32-compute/FP64-accumulate GEMMs) on
// ≥8-worker cohorts, plus the kernel-level strided-batch and mixed drivers
// in isolation. Every FP64 comparison asserts bit-identity before a speedup
// is reported — a faster wrong answer is a bug, not a result.
//
// Writes BENCH_batched.json into the working directory. Host thread count is
// recorded; the cohort path also wins on a single core (fewer staging
// copies, amortized panel packing, wider FP32 lanes), so the numbers are
// meaningful there too.
//
// Timing discipline: the three modes are run INTERLEAVED for several reps and
// the median per-mode time is reported, so slow machine drift (shared hosts)
// cancels instead of biasing whichever mode ran last.
//
// PR-4 baseline: set HFL_PR4_BASELINE="logistic=<ms>,mlp=<ms>,cnn=<ms>" to
// per-round times measured on the pre-batched tree (see EXPERIMENTS.md for
// the worktree recipe); the JSON then also records speedup_vs_pr4. Without
// the env var those fields are omitted and the in-build per-worker path is
// the only baseline — for dense models it is the same code as PR 4, for conv
// models it is strictly FASTER than PR 4 (the layer now calls the batched
// spans), so speedup_batched understates the gain over PR 4.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "src/algs/registry.h"
#include "src/common/errors.h"
#include "src/common/rng.h"
#include "src/tensor/gemm.h"
#include "src/tensor/gemm_batched.h"
#include "src/tensor/gemm_mixed.h"

namespace {

using namespace hfl;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool same_curve(const fl::RunResult& a, const fl::RunResult& b) {
  if (a.final_params != b.final_params) return false;
  if (a.curve.size() != b.curve.size()) return false;
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    if (a.curve[i].test_loss != b.curve[i].test_loss ||
        a.curve[i].test_accuracy != b.curve[i].test_accuracy) {
      return false;
    }
  }
  return true;
}

Scalar max_abs_diff(const Vec& a, const Vec& b) {
  HFL_CHECK(a.size() == b.size(), "size mismatch");
  Scalar m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

struct Workload {
  std::string model;
  nn::ModelFactory factory;
  std::size_t iters;
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// Per-round ms for `model` from HFL_PR4_BASELINE ("logistic=3.2,cnn=41.7"),
// or 0 when unset / not listed.
double pr4_baseline_ms(const std::string& model) {
  const char* env = std::getenv("HFL_PR4_BASELINE");
  if (env == nullptr) return 0.0;
  const std::string s(env);
  const std::string key = model + "=";
  std::size_t pos = s.find(key);
  while (pos != std::string::npos && pos > 0 &&
         s[pos - 1] != ',' && s[pos - 1] != ' ') {
    pos = s.find(key, pos + 1);  // "mlp=" must not match inside "xmlp="
  }
  if (pos == std::string::npos) return 0.0;
  return std::atof(s.c_str() + pos + key.size());
}

}  // namespace

int main() {
  using namespace hfl;

  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  Rng rng(7);
  const data::TrainTest dataset = data::make_synthetic_mnist(rng);
  const fl::Topology topo = fl::Topology::uniform(8, 4);  // 32-worker cohort
  const data::Partition partition =
      data::partition_by_class(dataset.train, topo.num_workers(), 5, rng);

  std::FILE* json = std::fopen("BENCH_batched.json", "w");
  HFL_CHECK(json != nullptr, "cannot open BENCH_batched.json");
  std::fprintf(json, "{\n  \"host_threads\": %zu,\n", cores);
  std::fprintf(json, "  \"cohort_workers\": %zu,\n", topo.num_workers());
  std::fprintf(json, "  \"workloads\": [\n");

  const std::vector<Workload> workloads = {
      {"logistic", nn::logistic_regression({1, 28, 28}, 10),
       bench::scaled_iters(64, 8)},
      {"mlp", nn::mlp({1, 28, 28}, 256, 10), bench::scaled_iters(16, 8)},
      {"cnn", nn::cnn({1, 28, 28}, 10), bench::scaled_iters(8, 8)},
  };

  for (std::size_t wi = 0; wi < workloads.size(); ++wi) {
    const Workload& wl = workloads[wi];
    bench::print_heading("cohort path: " + wl.model + " / HierAdMo, " +
                         std::to_string(topo.num_workers()) + " workers");

    fl::RunConfig cfg;
    cfg.total_iterations = wl.iters;
    cfg.tau = 4;  // paper-realistic sync cadence: compute dominates the round
    cfg.pi = 2;
    cfg.batch_size = 16;
    cfg.eval_max_samples = 200;
    cfg.seed = 3;
    cfg.num_threads = cores;

    const auto run_mode = [&](bool batched, bool mixed, double& secs) {
      fl::RunConfig mode_cfg = cfg;
      mode_cfg.batched = batched;
      mode_cfg.mixed_precision = mixed;
      fl::Engine engine(wl.factory, dataset, partition, topo, mode_cfg);
      auto alg = algs::make_algorithm("HierAdMo");
      const auto t0 = std::chrono::steady_clock::now();
      fl::RunResult r = engine.run(*alg);
      secs = seconds_since(t0);
      return r;
    };

    // Interleaved reps: the runs are deterministic, so curves from any rep
    // are usable for the identity checks; only the times vary. Smoke runs
    // (HFL_BENCH_SCALE < 1) take one rep — they check correctness, not time.
    const int run_reps = bench::bench_scale() < 1.0 ? 1 : 3;
    std::vector<double> tw, tb, tm;
    fl::RunResult r_ref, r_bat, r_mix;
    for (int rep = 0; rep < run_reps; ++rep) {
      double s = 0;
      r_ref = run_mode(false, false, s);
      tw.push_back(s);
      r_bat = run_mode(true, false, s);
      tb.push_back(s);
      r_mix = run_mode(true, true, s);
      tm.push_back(s);
    }
    const double per_worker_s = median(tw);
    const double batched_s = median(tb);
    const double mixed_s = median(tm);

    HFL_CHECK(same_curve(r_ref, r_bat),
              "batched FP64 run diverged from per-worker for " + wl.model);
    const Scalar mixed_drift = max_abs_diff(r_ref.final_params,
                                            r_mix.final_params);

    const double per_round = 1000.0 / static_cast<double>(wl.iters);
    const double pr4_ms = pr4_baseline_ms(wl.model);
    std::printf(
        "%-9s per-worker %.3fs  batched %.3fs (%.2fx)  mixed %.3fs (%.2fx)\n"
        "          round: %.2f / %.2f / %.2f ms   fp64 bit-identical: yes, "
        "mixed max drift %.2e\n",
        wl.model.c_str(), per_worker_s, batched_s, per_worker_s / batched_s,
        mixed_s, per_worker_s / mixed_s, per_worker_s * per_round,
        batched_s * per_round, mixed_s * per_round,
        static_cast<double>(mixed_drift));
    if (pr4_ms > 0) {
      std::printf("          vs PR-4 baseline %.2f ms/round: batched %.2fx, "
                  "mixed %.2fx\n",
                  pr4_ms, pr4_ms / (batched_s * per_round),
                  pr4_ms / (mixed_s * per_round));
    }
    std::fprintf(
        json,
        "    {\"model\": \"%s\", \"algorithm\": \"HierAdMo\", \"T\": %zu,\n"
        "     \"per_worker_s\": %.4f, \"batched_s\": %.4f, \"mixed_s\": "
        "%.4f,\n"
        "     \"round_ms\": {\"per_worker\": %.3f, \"batched\": %.3f, "
        "\"mixed\": %.3f},\n"
        "     \"speedup_batched\": %.3f, \"speedup_mixed\": %.3f,\n",
        wl.model.c_str(), wl.iters, per_worker_s, batched_s, mixed_s,
        per_worker_s * per_round, batched_s * per_round, mixed_s * per_round,
        per_worker_s / batched_s, per_worker_s / mixed_s);
    if (pr4_ms > 0) {
      std::fprintf(json,
                   "     \"pr4_round_ms\": %.3f, \"speedup_vs_pr4\": {"
                   "\"batched\": %.3f, \"mixed\": %.3f},\n",
                   pr4_ms, pr4_ms / (batched_s * per_round),
                   pr4_ms / (mixed_s * per_round));
    }
    std::fprintf(
        json,
        "     \"fp64_bit_identical\": true, \"mixed_max_drift\": %.3e}%s\n",
        static_cast<double>(mixed_drift),
        wi + 1 < workloads.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");

  // -- kernel level: strided-batch and mixed drivers in isolation -----------
  bench::print_heading("kernels: batched / mixed GEMM vs per-item FP64");
  // Conv-like shape: shared (out_ch × kk) weights times per-sample col
  // blocks, batch of 16 samples.
  const std::size_t m = 32, k = 288, n = 576, items = 16;
  Rng krng(13);
  Vec a(m * k), b(items * k * n), c_ref(items * m * n), c_bat(items * m * n);
  for (auto& v : a) v = krng.uniform(-1.0, 1.0);
  for (auto& v : b) v = krng.uniform(-1.0, 1.0);
  // Interleaved median-of-reps, like the workload section above.
  const int reps = 10;
  Vec c_mix(items * m * n);
  std::vector<double> kl, kb, km;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    for (std::size_t i = 0; i < items; ++i) {
      ops::gemm(false, false, m, n, k, a.data(), k, b.data() + i * k * n, n,
                0.0, c_ref.data() + i * m * n, n);
    }
    kl.push_back(seconds_since(t0));
    t0 = std::chrono::steady_clock::now();
    ops::gemm_batched(false, false, m, n, k, items, a.data(), k, 0, b.data(),
                      n, k * n, 0.0, c_bat.data(), n, m * n);
    kb.push_back(seconds_since(t0));
    t0 = std::chrono::steady_clock::now();
    ops::gemm_batched_mixed(false, false, m, n, k, items, a.data(), k, 0,
                            b.data(), n, k * n, 0.0, c_mix.data(), n, m * n);
    km.push_back(seconds_since(t0));
  }
  const double loop_s = median(kl);
  const double batched_kernel_s = median(kb);
  const double mixed_kernel_s = median(km);
  HFL_CHECK(c_ref == c_bat, "gemm_batched diverged from the per-item loop");
  Scalar scale = 1.0, err = 0.0;
  for (const Scalar v : c_ref) scale = std::max(scale, std::abs(v));
  for (std::size_t i = 0; i < c_ref.size(); ++i) {
    err = std::max(err, std::abs(c_ref[i] - c_mix[i]));
  }
  const double rel_err = static_cast<double>(err / scale);
  HFL_CHECK(rel_err <= 1e-6, "gemm_mixed outside its accuracy contract");

  std::printf(
      "gemm %zux%zux%zu x%zu: per-item %.4fs  batched %.4fs (%.2fx)  "
      "mixed %.4fs (%.2fx)  rel_err %.2e\n",
      m, n, k, items, loop_s, batched_kernel_s, loop_s / batched_kernel_s,
      mixed_kernel_s, loop_s / mixed_kernel_s, rel_err);
  std::fprintf(
      json,
      "  \"kernels\": {\"m\": %zu, \"n\": %zu, \"k\": %zu, \"items\": %zu,\n"
      "    \"per_item_s\": %.5f, \"batched_s\": %.5f, \"mixed_s\": %.5f,\n"
      "    \"speedup_batched\": %.3f, \"speedup_mixed\": %.3f, "
      "\"mixed_rel_err\": %.3e,\n"
      "    \"fp64_bit_identical\": true}\n",
      m, n, k, items, loop_s, batched_kernel_s, mixed_kernel_s,
      loop_s / batched_kernel_s, loop_s / mixed_kernel_s, rel_err);
  std::fprintf(json, "}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_batched.json\n");
  return 0;
}
