// Parameter-plane hot-path bench: fused kernels, O(cohort) roster
// accounting, and parallel cohort turnover.
//
// Three sections, each asserting correctness before reporting a time:
//
//   1. kernels — the fused vec kernels (src/common/vec_ops.h) against the
//      composed axpy/scale passes they replaced, across model sizes. The
//      fused result is first checked bit-for-bit against the documented
//      per-element std::fma expression; the composed baseline is the
//      pre-refactor cost model.
//
//   2. roster — Participation::set_cohort_roster (O(cohort + edges)) against
//      the dense set_roster (O(population)) on a large population with a
//      small cohort: the per-interval accounting cost of virtualized runs
//      must not scale with N. Views are checked identical on the cohort
//      before timing is reported.
//
//   3. turnover — CohortStore spill/restore of a full cohort (the
//      set_cohort merge) at 1 host thread vs all host threads; serialization
//      fans out per worker on the attached pool (src/pop/cohort_store.h).
//
// Writes BENCH_param.json into the working directory. Timing discipline:
// modes are interleaved for several reps and medians reported, so machine
// drift cancels instead of biasing whichever mode ran last. Smoke runs
// (HFL_BENCH_SCALE < 1) shrink sizes and take one rep — they check
// correctness, not time.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"
#include "src/common/errors.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/common/vec_ops.h"
#include "src/fl/availability.h"
#include "src/pop/cohort_store.h"

namespace {

using namespace hfl;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

Vec rand_vec(std::size_t n, Rng& rng) {
  Vec v(n);
  for (Scalar& e : v) e = 2.0 * rng.uniform() - 1.0;
  return v;
}

// ---------------------------------------------------------------------------
// Section 1: fused kernels vs composed passes.
// ---------------------------------------------------------------------------

struct KernelResult {
  std::string name;
  std::size_t d = 0;
  double fused_ns = 0;
  double composed_ns = 0;
};

// One kernel benchmark: `fused(state)` and `composed(state)` must leave the
// state equivalent; `check` validates the fused output once, bitwise,
// against the std::fma reference.
template <typename Reset, typename Fused, typename Composed>
KernelResult bench_kernel(const std::string& name, std::size_t d, int reps,
                          Reset reset, Fused fused, Composed composed) {
  // Inner iterations sized so one rep is comfortably above timer noise.
  const int inner = std::max(1, static_cast<int>((1 << 22) / d));
  std::vector<double> tf, tc;
  for (int rep = 0; rep < reps; ++rep) {
    reset();
    auto t0 = std::chrono::steady_clock::now();
    for (int it = 0; it < inner; ++it) fused();
    tf.push_back(seconds_since(t0));
    reset();
    t0 = std::chrono::steady_clock::now();
    for (int it = 0; it < inner; ++it) composed();
    tc.push_back(seconds_since(t0));
  }
  KernelResult r;
  r.name = name;
  r.d = d;
  r.fused_ns = median(tf) * 1e9 / inner;
  r.composed_ns = median(tc) * 1e9 / inner;
  return r;
}

std::vector<KernelResult> run_kernel_section(std::size_t d, int reps) {
  Rng rng(11);
  const Vec x0 = rand_vec(d, rng), g0 = rand_vec(d, rng);
  Vec a(d), b(d), c(d), scratch(d);
  std::vector<KernelResult> out;

  // axpby: y = 0.3*x + 0.7*y  vs  scale(y, 0.7); axpy(0.3, x, y).
  {
    Vec ref = g0;
    vec::axpby(0.3, x0, 0.7, ref);
    for (std::size_t i = 0; i < d; ++i) {
      HFL_CHECK(ref[i] == std::fma(0.3, x0[i], 0.7 * g0[i]),
                "axpby drifted from its fma reference");
    }
    out.push_back(bench_kernel(
        "axpby", d, reps, [&] { a = g0; },
        [&] { vec::axpby(0.3, x0, 0.7, a); },
        [&] {
          vec::scale(a, 0.7);
          vec::axpy(0.3, x0, a);
        }));
  }

  // momentum_step: m = 0.9*m + g; p -= 0.05*m  vs  the three separate
  // passes (scale, axpy, axpy).
  out.push_back(bench_kernel(
      "momentum_step", d, reps,
      [&] {
        a = g0;  // m
        b = x0;  // p
      },
      [&] { vec::momentum_step(a, g0, 0.9, b, 0.05); },
      [&] {
        vec::scale(a, 0.9);
        vec::axpy(1.0, g0, a);
        vec::axpy(-0.05, a, b);
      }));

  // decay_toward: y = x + 0.5*(y - x)  vs  materializing (y - x) first.
  out.push_back(bench_kernel(
      "decay_toward", d, reps, [&] { a = g0; },
      [&] { vec::decay_toward(a, x0, 0.5); },
      [&] {
        scratch = a;
        vec::axpy(-1.0, x0, scratch);
        a = x0;
        vec::axpy(0.5, scratch, a);
      }));

  // nag_step_accumulate: the HierAdMo local step + 3 accumulators in one
  // pass vs the composed sequence (5 vector passes + 3 accumulator axpys).
  {
    Vec y(d), v(d), sg(d), sy(d), sv(d);
    out.push_back(bench_kernel(
        "nag_step_accumulate", d, reps,
        [&] {
          a = x0;
          y = g0;
          vec::fill(v, 0.0);
          vec::fill(sg, 0.0);
          vec::fill(sy, 0.0);
          vec::fill(sv, 0.0);
        },
        [&] { vec::nag_step_accumulate(a, y, v, g0, 0.05, 0.9, sg, sy, sv); },
        [&] {
          vec::axpy(1.0, g0, sg);
          vec::axpy(1.0, y, sy);
          scratch = a;                 // y_new = x - eta*grad
          vec::axpy(-0.05, g0, scratch);
          v = scratch;                 // v = y_new - y
          vec::axpy(-1.0, y, v);
          y = scratch;                 // y = y_new
          a = scratch;                 // x = y_new + gamma*v
          vec::axpy(0.9, v, a);
          vec::axpy(1.0, v, sv);
        }));
  }
  (void)c;
  return out;
}

// ---------------------------------------------------------------------------
// Section 2: sparse vs dense roster accounting.
// ---------------------------------------------------------------------------

struct RosterResult {
  std::size_t population = 0;
  std::size_t cohort = 0;
  double sparse_us = 0;
  double dense_us = 0;
};

RosterResult run_roster_section(std::size_t num_edges,
                                std::size_t workers_per_edge,
                                std::size_t cohort_size, int reps) {
  const fl::Topology topo = fl::Topology::uniform(num_edges, workers_per_edge);
  const std::size_t N = topo.num_workers();
  std::vector<Scalar> weights(N, 1.0);
  fl::Participation sparse(topo, nullptr, weights, /*edge_faults=*/true);
  fl::Participation dense(topo, nullptr, weights, /*edge_faults=*/true);

  // Deterministic rotating cohort; everyone up, all edges up.
  const std::vector<std::uint8_t> edge_up(topo.num_edges(), 1);
  std::vector<std::uint8_t> worker_up(N, 0);
  std::vector<fl::WorkerId> cohort(cohort_size);
  std::vector<std::uint8_t> cohort_up(cohort_size, 1);

  const auto fill_cohort = [&](std::size_t round) {
    const std::size_t stride = N / cohort_size;
    for (std::size_t i = 0; i < cohort_size; ++i) {
      cohort[i] = (i * stride + round) % N;
    }
    std::sort(cohort.begin(), cohort.end());
  };

  // Correctness: the two views must agree on the cohort.
  fill_cohort(0);
  sparse.set_cohort_roster(cohort, cohort_up, edge_up);
  std::fill(worker_up.begin(), worker_up.end(), 0);
  for (const fl::WorkerId w : cohort) worker_up[w] = 1;
  dense.set_roster(worker_up, edge_up);
  HFL_CHECK(sparse.num_active() == dense.num_active(),
            "sparse roster active count diverged");
  for (const fl::WorkerId w : cohort) {
    HFL_CHECK(sparse.weight_in_edge(w) == dense.weight_in_edge(w) &&
                  sparse.weight_global(w) == dense.weight_global(w),
              "sparse roster weights diverged from dense set_roster");
  }

  const int inner = 8;
  std::vector<double> ts, td;
  for (int rep = 0; rep < reps; ++rep) {
    auto t0 = std::chrono::steady_clock::now();
    for (int it = 0; it < inner; ++it) {
      fill_cohort(static_cast<std::size_t>(rep * inner + it + 1));
      sparse.set_cohort_roster(cohort, cohort_up, edge_up);
    }
    ts.push_back(seconds_since(t0));
    t0 = std::chrono::steady_clock::now();
    for (int it = 0; it < inner; ++it) {
      fill_cohort(static_cast<std::size_t>(rep * inner + it + 1));
      std::fill(worker_up.begin(), worker_up.end(), 0);
      for (const fl::WorkerId w : cohort) worker_up[w] = 1;
      dense.set_roster(worker_up, edge_up);
    }
    td.push_back(seconds_since(t0));
  }

  RosterResult r;
  r.population = N;
  r.cohort = cohort_size;
  r.sparse_us = median(ts) * 1e6 / inner;
  r.dense_us = median(td) * 1e6 / inner;
  return r;
}

// ---------------------------------------------------------------------------
// Section 3: cohort turnover (spill + restore) by host thread count.
// ---------------------------------------------------------------------------

struct TurnoverResult {
  std::size_t threads = 0;
  double turnover_ms = 0;  // one full-cohort swap (spill all + restore all)
};

TurnoverResult run_turnover_section(pop::CohortStore& store, const Vec& x0,
                                    std::size_t cohort_size,
                                    std::size_t threads, int reps) {
  ThreadPool pool(threads);
  store.attach_pool(&pool);
  store.begin_run(x0);

  // Two disjoint half-population cohorts; every swap spills one and
  // restores (or first materializes) the other.
  std::vector<fl::WorkerId> even(cohort_size), odd(cohort_size);
  for (std::size_t i = 0; i < cohort_size; ++i) {
    even[i] = 2 * i;
    odd[i] = 2 * i + 1;
  }
  store.begin_interval(1);
  store.set_cohort(even);
  store.begin_interval(2);
  store.set_cohort(odd);  // warm: both halves exist, slab populated

  std::vector<double> t;
  std::size_t clock = 2;
  const int inner = 4;
  for (int rep = 0; rep < reps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    for (int it = 0; it < inner; ++it) {
      store.begin_interval(++clock);
      store.set_cohort(clock % 2 == 1 ? even : odd);
    }
    t.push_back(seconds_since(t0));
  }
  store.attach_pool(nullptr);

  TurnoverResult r;
  r.threads = pool.size();
  r.turnover_ms = median(t) * 1e3 / inner;
  return r;
}

}  // namespace

int main() {
  using namespace hfl;

  const bool smoke = bench::bench_scale() < 1.0;
  const int reps = smoke ? 1 : 5;
  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  std::FILE* json = std::fopen("BENCH_param.json", "w");
  HFL_CHECK(json != nullptr, "cannot open BENCH_param.json");
  std::fprintf(json, "{\n  \"host_threads\": %zu,\n", cores);

  // --- kernels -------------------------------------------------------------
  bench::print_heading("fused parameter-plane kernels (ns/call, median)");
  const std::vector<std::size_t> sizes =
      smoke ? std::vector<std::size_t>{1 << 12}
            : std::vector<std::size_t>{1 << 12, 1 << 16, 1 << 20};
  std::fprintf(json, "  \"kernels\": [\n");
  bool first = true;
  for (const std::size_t d : sizes) {
    for (const KernelResult& r : run_kernel_section(d, reps)) {
      std::printf("%-20s d=%-8zu fused %10.0f ns  composed %10.0f ns  "
                  "(%.2fx)\n",
                  r.name.c_str(), r.d, r.fused_ns, r.composed_ns,
                  r.composed_ns / r.fused_ns);
      std::fprintf(json,
                   "%s    {\"kernel\": \"%s\", \"d\": %zu, \"fused_ns\": "
                   "%.1f, \"composed_ns\": %.1f, \"speedup\": %.3f}",
                   first ? "" : ",\n", r.name.c_str(), r.d, r.fused_ns,
                   r.composed_ns, r.composed_ns / r.fused_ns);
      first = false;
    }
  }
  std::fprintf(json, "\n  ],\n");

  // --- roster accounting ---------------------------------------------------
  bench::print_heading("per-interval roster accounting (us/call, median)");
  std::fprintf(json, "  \"roster\": [\n");
  // Cohort fixed at 256 while the population grows 64x: sparse cost must
  // stay flat, dense cost scales with N. Full scale tops out at N = 1M.
  const std::vector<std::pair<std::size_t, std::size_t>> pops =
      smoke ? std::vector<std::pair<std::size_t, std::size_t>>{{64, 256}}
            : std::vector<std::pair<std::size_t, std::size_t>>{
                  {64, 256}, {64, 4096}, {64, 16384}};
  first = true;
  for (const auto& [edges, per_edge] : pops) {
    const RosterResult r = run_roster_section(edges, per_edge, 256, reps);
    std::printf("N=%-9zu cohort=256  sparse %9.1f us  dense %9.1f us  "
                "(%.1fx)\n",
                r.population, r.sparse_us, r.dense_us,
                r.dense_us / r.sparse_us);
    std::fprintf(json,
                 "%s    {\"population\": %zu, \"cohort\": %zu, "
                 "\"sparse_us\": %.2f, \"dense_us\": %.2f, \"speedup\": "
                 "%.2f}",
                 first ? "" : ",\n", r.population, r.cohort, r.sparse_us,
                 r.dense_us, r.dense_us / r.sparse_us);
    first = false;
  }
  std::fprintf(json, "\n  ],\n");

  // --- cohort turnover -----------------------------------------------------
  bench::print_heading("cohort turnover: spill+restore (ms/swap, median)");
  Rng rng(7);
  data::SyntheticSpec spec;
  spec.sample_shape = {1, 8, 8};
  spec.num_classes = 4;
  spec.train_size = smoke ? 512 : 2048;
  spec.test_size = 64;
  const data::TrainTest dataset = data::make_synthetic(rng, spec);
  const fl::Topology topo =
      fl::Topology::uniform(8, smoke ? 32 : 128);  // 256 / 1024 workers
  const data::Partition partition =
      data::partition_iid(dataset.train, topo.num_workers(), rng);
  const nn::ModelFactory factory = nn::mlp({1, 8, 8}, 128, 4);

  fl::RunConfig cfg;
  cfg.total_iterations = 8;
  cfg.tau = 2;
  cfg.pi = 2;
  cfg.batch_size = 1;
  cfg.seed = 3;

  auto probe = factory();
  Rng init_rng = Rng(cfg.seed).fork(0x1217);
  probe->init_params(init_rng);
  const Vec x0 = probe->get_params();

  std::fprintf(json, "  \"turnover\": [\n");
  const std::size_t cohort_size = topo.num_workers() / 2;
  first = true;
  std::vector<std::size_t> thread_counts{1};
  if (cores > 1) thread_counts.push_back(cores);
  for (const std::size_t threads : thread_counts) {
    pop::VirtConfig virt;
    virt.cohort_size = cohort_size;
    pop::CohortStore store(factory, dataset, partition, topo, cfg, virt);
    const TurnoverResult r =
        run_turnover_section(store, x0, cohort_size, threads, reps);
    std::printf("threads=%-3zu cohort=%zu (%zu params/worker)  %8.2f "
                "ms/swap\n",
                r.threads, cohort_size, probe->num_params(), r.turnover_ms);
    std::fprintf(json,
                 "%s    {\"threads\": %zu, \"cohort\": %zu, \"params\": "
                 "%zu, \"turnover_ms\": %.3f}",
                 first ? "" : ",\n", r.threads, cohort_size,
                 probe->num_params(), r.turnover_ms);
    first = false;
  }
  std::fprintf(json, "\n  ]\n}\n");
  std::fclose(json);
  std::printf("\nwrote BENCH_param.json\n");
  return 0;
}
