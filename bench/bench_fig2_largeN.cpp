// E5 — Fig. 2(d): accuracy comparison at cross-silo scale, N = 100 workers.
//
// Paper setup: CNN on MNIST, 100 workers, 10 edge nodes × 10 workers,
// showcasing that the Table II ordering persists at the "typically up to one
// hundred participants" cross-silo scale [40]. The algorithm subset follows
// the paper's figure legend (one representative per category).
#include <cstdio>

#include "bench_util.h"
#include "src/common/csv.h"

namespace hfl::bench {
namespace {

void run() {
  Rng rng(31);
  // Larger pool so each of the 100 workers holds a meaningful shard.
  const data::TrainTest dataset = data::make_synthetic_mnist(rng, 2.0);
  const fl::Topology topo = fl::Topology::uniform(10, 10);  // N = 100
  const data::Partition partition = data::partition_by_class(
      dataset.train, topo.num_workers(), 5, rng);
  const nn::ModelFactory factory = nn::cnn({1, 28, 28}, 10);

  fl::RunConfig cfg3;
  cfg3.tau = 10;
  cfg3.pi = 2;
  cfg3.total_iterations = scaled_iters(80, 20);
  cfg3.eta = 0.01;
  cfg3.gamma = 0.5;
  cfg3.gamma_edge = 0.5;
  cfg3.batch_size = 4;
  cfg3.eval_max_samples = 250;
  cfg3.seed = 13;

  fl::RunConfig cfg2 = cfg3;
  cfg2.tau = 20;
  cfg2.pi = 1;

  fl::Engine engine3(factory, dataset, partition, topo, cfg3);
  fl::Engine engine2(factory, dataset, partition, topo, cfg2);

  CsvWriter csv("results/fig2_largeN_results.csv");
  csv.write_header({"algorithm", "iteration", "accuracy"});

  print_heading("Fig. 2(d) — CNN on MNIST, N = 100 workers, 10 edges");
  print_row({"algorithm", "final-acc", "best-acc"}, {14, 12, 12});
  for (const std::string name :
       {"HierAdMo", "HierAdMo-R", "HierFAVG", "FedNAG", "FedAvg"}) {
    auto alg = algs::make_algorithm(name);
    fl::Engine& engine = alg->three_tier() ? engine3 : engine2;
    const fl::RunResult result = engine.run(*alg);
    for (const auto& p : result.curve) {
      csv.write_row({name, std::to_string(p.iteration),
                     CsvWriter::format_scalar(p.test_accuracy)});
    }
    print_row({name, pct(result.final_accuracy), pct(result.best_accuracy())},
              {14, 12, 12});
  }
  std::printf("\n(curves written to results/fig2_largeN_results.csv)\n");
}

}  // namespace
}  // namespace hfl::bench

int main() {
  hfl::bench::run();
  return 0;
}
