// Ablation (extension, DESIGN.md §7): accuracy vs upload compression.
//
// Sweeps HierAdMo's worker→edge uplink over lossless, top-k sparsification
// (k = 50%, 25%, 10%), random-k (25%) and 8-level stochastic quantization on
// the CNN/MNIST workload, reporting final accuracy and the per-sync upload
// volume relative to lossless. The communication-efficiency motivation of
// the paper suggests hierarchical FL tolerates aggressive uplink compression
// because the edge aggregation averages the sparsification error across
// workers.
#include <cstdio>

#include "bench_util.h"
#include "src/common/csv.h"
#include "src/core/hieradmo.h"
#include "src/fl/compression.h"

namespace hfl::bench {
namespace {

void run() {
  Rng rng(404);
  const data::TrainTest dataset = data::make_synthetic_mnist(rng, 1.0);
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  const data::Partition partition = data::partition_by_class(
      dataset.train, topo.num_workers(), 5, rng);
  const nn::ModelFactory factory = nn::cnn({1, 28, 28}, 10);

  fl::RunConfig cfg;
  cfg.tau = 20;
  cfg.pi = 2;
  cfg.total_iterations = scaled_iters(160, 40);
  cfg.eta = 0.01;
  cfg.gamma = 0.5;
  cfg.batch_size = 8;
  cfg.eval_max_samples = 250;
  cfg.seed = 41;
  fl::Engine engine(factory, dataset, partition, topo, cfg);

  struct Variant {
    std::string label;
    fl::CompressorPtr compressor;
    Scalar upload_ratio;  // payload scalars relative to lossless
  };
  const std::vector<Variant> variants = {
      {"lossless", nullptr, 1.0},
      {"top-50%", std::make_shared<fl::TopKCompressor>(0.5), 0.5},
      {"top-25%", std::make_shared<fl::TopKCompressor>(0.25), 0.25},
      {"top-10%", std::make_shared<fl::TopKCompressor>(0.1), 0.1},
      {"random-25%", std::make_shared<fl::RandomKCompressor>(0.25, 99), 0.25},
      {"qsgd-8", std::make_shared<fl::StochasticQuantizer>(8, 98),
       // 8 levels + sign fit in 4 bits vs 64-bit scalars.
       4.0 / 64.0},
  };

  CsvWriter csv("ablation_compression_results.csv");
  csv.write_header({"variant", "upload_ratio", "accuracy"});

  print_heading("Ablation — HierAdMo upload compression (CNN on MNIST, T=" +
                std::to_string(cfg.total_iterations) + ")");
  print_row({"uplink", "upload-ratio", "final-acc"}, {14, 14, 12});
  for (const Variant& v : variants) {
    core::HierAdMoOptions opt;
    opt.upload_compressor = v.compressor;
    core::HierAdMo alg(opt);
    const fl::RunResult r = engine.run(alg);
    print_row({v.label, CsvWriter::format_scalar(v.upload_ratio),
               pct(r.final_accuracy)},
              {14, 14, 12});
    csv.write_row({v.label, CsvWriter::format_scalar(v.upload_ratio),
                   CsvWriter::format_scalar(r.final_accuracy)});
  }
  std::printf("\n(results written to ablation_compression_results.csv)\n");
}

}  // namespace
}  // namespace hfl::bench

int main() {
  hfl::bench::run();
  return 0;
}
