// Micro-benchmarks guarding the telemetry-off fast path.
//
// The observability subsystem is compiled into release builds and gated by a
// single relaxed atomic load; these benchmarks report what that gate costs so
// a regression (accidental lock, map lookup on the hot path) is visible in
// bench output. The disabled counter increment should stay within a few
// nanoseconds — this is a reported guard, not a hard CI failure.
#include <benchmark/benchmark.h>

#include "src/obs/comm.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"

namespace {

using hfl::obs::Registry;

void BM_CounterAddDisabled(benchmark::State& state) {
  hfl::obs::set_enabled(false);
  hfl::obs::Counter& c = Registry::global().counter("bench.disabled");
  for (auto _ : state) {
    c.add(1);
    benchmark::ClobberMemory();
  }
  if (c.value() != 0) state.SkipWithError("disabled counter advanced");
}
BENCHMARK(BM_CounterAddDisabled);

void BM_CounterAddEnabled(benchmark::State& state) {
  hfl::obs::set_enabled(true);
  hfl::obs::Counter& c = Registry::global().counter("bench.enabled");
  for (auto _ : state) {
    c.add(1);
    benchmark::ClobberMemory();
  }
  hfl::obs::set_enabled(false);
}
BENCHMARK(BM_CounterAddEnabled);

void BM_HistogramObserveDisabled(benchmark::State& state) {
  hfl::obs::set_enabled(false);
  hfl::obs::Histogram& h = Registry::global().histogram(
      "bench.hist", "", {1, 2, 4, 8, 16, 32, 64, 128});
  double v = 0;
  for (auto _ : state) {
    h.observe(v);
    v += 0.5;
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_HistogramObserveDisabled);

void BM_SpanDisabled(benchmark::State& state) {
  hfl::obs::set_enabled(false);
  for (auto _ : state) {
    const hfl::obs::Span span("bench_span", "bench");
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  hfl::obs::set_enabled(true);
  hfl::obs::Tracer::global().reset();
  for (auto _ : state) {
    const hfl::obs::Span span("bench_span", "bench");
    benchmark::ClobberMemory();
  }
  hfl::obs::set_enabled(false);
  hfl::obs::Tracer::global().reset();
}
BENCHMARK(BM_SpanEnabled);

void BM_CommRecordDisabled(benchmark::State& state) {
  hfl::obs::set_enabled(false);
  auto& comm = hfl::obs::CommAccountant::global();
  for (auto _ : state) {
    comm.record(hfl::obs::Link::kWorkerToEdge, 0, 4096);
    benchmark::ClobberMemory();
  }
}
BENCHMARK(BM_CommRecordDisabled);

}  // namespace
