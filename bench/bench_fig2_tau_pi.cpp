// E2–E4 — Fig. 2(a)–(c): effects of τ, π, and their product on HierAdMo.
//
// Paper setup: CNN on MNIST, 16 workers across 4 edge nodes, γ = 0.5,
// T = 1000 (scaled here). Three sweeps:
//   (a) π = 2 fixed, τ ∈ {5, 10, 20}        — larger τ lowers accuracy
//   (b) τ = 10 fixed, π ∈ {1, 2, 4}         — larger π lowers accuracy
//   (c) τ·π = 40 fixed, (τ, π) ∈ {(5,8), (10,4), (20,2)}
//       — smaller τ (more frequent edge aggregation) wins
// which is Theorem 4's monotonicity of the bound in τ and π.
#include <cstdio>

#include "bench_util.h"
#include "src/common/csv.h"

namespace hfl::bench {
namespace {

struct Sweep {
  std::string label;
  std::vector<std::pair<std::size_t, std::size_t>> tau_pi;
};

void run() {
  Rng rng(2024);
  const data::TrainTest dataset = data::make_synthetic_mnist(rng, 1.0);
  const fl::Topology topo = fl::Topology::uniform(4, 4);  // 16 workers
  const data::Partition partition = data::partition_by_class(
      dataset.train, topo.num_workers(), 5, rng);
  const nn::ModelFactory factory = nn::cnn({1, 28, 28}, 10);

  const std::vector<Sweep> sweeps = {
      {"Fig2(a) pi=2, tau sweep", {{5, 2}, {10, 2}, {20, 2}}},
      {"Fig2(b) tau=10, pi sweep", {{10, 1}, {10, 2}, {10, 4}}},
      {"Fig2(c) tau*pi=40 fixed", {{5, 8}, {10, 4}, {20, 2}}},
  };

  CsvWriter csv("results/fig2_tau_pi_results.csv");
  csv.write_header({"sweep", "tau", "pi", "iteration", "accuracy"});

  for (const Sweep& sweep : sweeps) {
    print_heading(sweep.label);
    print_row({"tau", "pi", "final-acc", "best-acc"}, {8, 8, 12, 12});
    for (const auto& [tau, pi] : sweep.tau_pi) {
      fl::RunConfig cfg;
      cfg.tau = tau;
      cfg.pi = pi;
      cfg.total_iterations = scaled_iters(240, tau * pi);
      cfg.eta = 0.01;
      cfg.gamma = 0.5;
      cfg.gamma_edge = 0.5;
      cfg.batch_size = 8;
      cfg.eval_every = 40;
      cfg.eval_max_samples = 250;
      cfg.seed = 11;

      fl::Engine engine(factory, dataset, partition, topo, cfg);
      const fl::RunResult result = run_algorithm(engine, "HierAdMo");
      for (const auto& p : result.curve) {
        csv.write_row({sweep.label, std::to_string(tau), std::to_string(pi),
                       std::to_string(p.iteration),
                       CsvWriter::format_scalar(p.test_accuracy)});
      }
      print_row({std::to_string(tau), std::to_string(pi),
                 pct(result.final_accuracy), pct(result.best_accuracy())},
                {8, 8, 12, 12});
    }
  }
  std::printf("\n(curves written to results/fig2_tau_pi_results.csv)\n");
}

}  // namespace
}  // namespace hfl::bench

int main() {
  hfl::bench::run();
  return 0;
}
