#!/usr/bin/env bash
# Runs the micro-benchmark suite and writes BENCH_micro.json at the repo root.
#
# Usage: bench/run_micro.sh [build_dir]
#
# Each benchmark family runs in a fresh process and the per-family JSON files
# are merged at the end. Running the whole suite in one process lets earlier
# families perturb later ones (allocator churn defeats huge-page backing of
# the large thread-local scratch buffers, which costs the conv kernels ~25%),
# so single-process numbers are not representative of steady-state use.
#
# The min-time bump (0.2s per benchmark, passed as a plain number — this
# google-benchmark version rejects a unit suffix) trades runtime for less
# jitter on shared machines; results still wobble a few percent, so compare
# medians across runs before reading anything into small deltas.
set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
bench_bin="${build_dir}/bench/bench_micro"

if [[ ! -x "${bench_bin}" ]]; then
  echo "bench_micro not found at ${bench_bin}; build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

families=(
  BM_Matmul
  BM_GemmConvShape
  BM_GemmTransposeA
  BM_GemmTransposeB
  BM_Conv2dForward
  BM_Conv2dBackward
  BM_VecAxpy
  BM_VecCosine
  BM_WeightedAggregation
  BM_CnnGradientStep
  BM_MiniVggGradientStep
)

tmp_dir="$(mktemp -d)"
trap 'rm -rf "${tmp_dir}"' EXIT

for family in "${families[@]}"; do
  "${bench_bin}" \
    --benchmark_filter="^${family}/?" \
    --benchmark_min_time=0.2 \
    --benchmark_format=json \
    --benchmark_out="${tmp_dir}/${family}.json" \
    --benchmark_out_format=json
done

python3 - "${repo_root}/BENCH_micro.json" "${tmp_dir}" "${families[@]}" <<'PY'
import json, sys

out_path, tmp_dir, families = sys.argv[1], sys.argv[2], sys.argv[3:]
merged = None
for family in families:
    with open(f"{tmp_dir}/{family}.json") as f:
        part = json.load(f)
    if merged is None:
        merged = part
    else:
        merged["benchmarks"].extend(part["benchmarks"])
with open(out_path, "w") as f:
    json.dump(merged, f, indent=2)
    f.write("\n")
print(f"wrote {out_path} ({len(merged['benchmarks'])} benchmarks)")
PY
