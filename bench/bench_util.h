// Shared helpers for the experiment harnesses.
//
// Each bench binary reproduces one table or figure of the paper. The
// workloads are scaled for CPU simulation (DESIGN.md §3); the environment
// variable HFL_BENCH_SCALE (default 1.0) multiplies dataset sizes and
// iteration counts for users who want longer runs closer to the paper's
// horizons.
#pragma once

#include <string>
#include <vector>

#include "src/algs/registry.h"
#include "src/core/hieradmo.h"
#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/fl/engine.h"
#include "src/nn/models.h"

namespace hfl::bench {

// HFL_BENCH_SCALE env var (default 1.0, clamped to [0.1, 100]).
Scalar bench_scale();

// Scales an iteration count by bench_scale() and rounds it UP to a multiple
// of `multiple` so T = Kτ = Pτπ stays valid.
std::size_t scaled_iters(std::size_t base, std::size_t multiple);

// Pretty-printers.
void print_heading(const std::string& title);
void print_row(const std::vector<std::string>& cells,
               const std::vector<int>& widths);

// Formats an accuracy as "12.34".
std::string pct(Scalar accuracy);

// Runs one algorithm on a prepared engine and returns the result.
fl::RunResult run_algorithm(fl::Engine& engine, const std::string& name);

}  // namespace hfl::bench
