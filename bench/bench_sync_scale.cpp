// Sync-tier scaling bench: wall-clock of the parallel edge barrier, the
// deterministic cloud reduction, and fl::run_sweep, on an edge-sync-heavy
// configuration (8 edges × 4 workers, τ = 2).
//
// Three sections, each also asserting the determinism contract it relies on
// (parallel results must be bit-identical to serial before a speedup means
// anything):
//   * engine    — full runs at num_threads = 1 vs all cores, for HierFAVG
//                 (cheapest edge_sync, barrier-dominated) and HierAdMo
//                 (cosine adaptation makes each edge_sync heavier),
//   * reduction — aggregate_global over the 32 workers at a large model
//                 dimension, serial vs element-partitioned parallel path,
//   * sweep     — the Table II algorithm roster as a serial loop vs
//                 fl::run_sweep.
//
// Writes BENCH_sync.json next to the working directory so the numbers ship
// with the repo. Host thread count is recorded: on a single-core container
// the honest speedup is ~1× and the bench is then mostly a determinism
// check.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "src/algs/registry.h"
#include "src/common/errors.h"
#include "src/common/thread_pool.h"
#include "src/fl/sweep.h"
#include "src/sim/fault_plan.h"

namespace {

using namespace hfl;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool same_curve(const fl::RunResult& a, const fl::RunResult& b) {
  if (a.final_params != b.final_params) return false;
  if (a.curve.size() != b.curve.size()) return false;
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    if (a.curve[i].test_loss != b.curve[i].test_loss ||
        a.curve[i].test_accuracy != b.curve[i].test_accuracy) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main() {
  using namespace hfl;

  const std::size_t cores =
      std::max<std::size_t>(1, std::thread::hardware_concurrency());

  Rng rng(7);
  const data::TrainTest dataset = data::make_synthetic_mnist(rng);
  const fl::Topology topo = fl::Topology::uniform(8, 4);  // 8 edges, 32 workers
  const data::Partition partition =
      data::partition_by_class(dataset.train, topo.num_workers(), 5, rng);
  const nn::ModelFactory factory = nn::logistic_regression({1, 28, 28}, 10);

  // Edge-sync heavy: τ = 2 fires the edge barrier every other iteration.
  fl::RunConfig cfg;
  cfg.total_iterations = bench::scaled_iters(120, 4);
  cfg.tau = 2;
  cfg.pi = 2;
  cfg.eta = 0.01;
  cfg.gamma = 0.5;
  cfg.gamma_edge = 0.5;
  cfg.batch_size = 16;
  cfg.eval_max_samples = 200;
  cfg.seed = 3;

  std::FILE* json = std::fopen("BENCH_sync.json", "w");
  HFL_CHECK(json != nullptr, "cannot open BENCH_sync.json");
  std::fprintf(json, "{\n  \"host_threads\": %zu,\n", cores);
  std::fprintf(json, "  \"topology\": \"8 edges x 4 workers\",\n");
  std::fprintf(json, "  \"config\": {\"T\": %zu, \"tau\": %zu, \"pi\": %zu},\n",
               cfg.total_iterations, cfg.tau, cfg.pi);

  // -- engine: serial vs parallel sync tier ---------------------------------
  bench::print_heading("edge barrier: num_threads=1 vs all cores");
  std::fprintf(json, "  \"engine\": [\n");
  const std::vector<std::string> engine_algs = {"HierFAVG", "HierAdMo"};
  for (std::size_t a = 0; a < engine_algs.size(); ++a) {
    const std::string& name = engine_algs[a];
    fl::RunConfig serial_cfg = cfg;
    serial_cfg.num_threads = 1;
    fl::RunConfig parallel_cfg = cfg;
    parallel_cfg.num_threads = cores;

    fl::Engine serial_engine(factory, dataset, partition, topo, serial_cfg);
    fl::Engine parallel_engine(factory, dataset, partition, topo, parallel_cfg);
    auto alg1 = algs::make_algorithm(name);
    auto algN = algs::make_algorithm(name);

    auto t0 = std::chrono::steady_clock::now();
    const fl::RunResult r1 = serial_engine.run(*alg1);
    const double serial_s = seconds_since(t0);
    t0 = std::chrono::steady_clock::now();
    const fl::RunResult rN = parallel_engine.run(*algN);
    const double parallel_s = seconds_since(t0);

    HFL_CHECK(same_curve(r1, rN),
              "parallel run diverged from serial for " + name);
    std::printf("%-10s serial %.3fs  parallel %.3fs  speedup %.2fx  "
                "(bit-identical: yes)\n",
                name.c_str(), serial_s, parallel_s, serial_s / parallel_s);
    std::fprintf(json,
                 "    {\"algorithm\": \"%s\", \"serial_s\": %.4f, "
                 "\"parallel_s\": %.4f, \"speedup\": %.3f, "
                 "\"bit_identical\": true}%s\n",
                 name.c_str(), serial_s, parallel_s, serial_s / parallel_s,
                 a + 1 < engine_algs.size() ? "," : "");
  }
  std::fprintf(json, "  ],\n");

  // -- reduction: serial vs element-partitioned weighted sum ----------------
  bench::print_heading("cloud reduction: aggregate_global serial vs pool");
  const std::size_t dim = 1 << 18;  // large enough to clear the parallel gate
  std::vector<fl::WorkerState> workers(topo.num_workers());
  Rng wrng(11);
  for (std::size_t i = 0; i < workers.size(); ++i) {
    workers[i].id = i;
    workers[i].weight_global = 1.0 / static_cast<Scalar>(workers.size());
    workers[i].x.resize(dim);
    for (auto& v : workers[i].x) v = wrng.normal();
  }
  const int reps = 20;
  const fl::WorkerSet worker_set(&workers);
  Vec out_serial, out_parallel;
  auto t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    fl::aggregate_global(worker_set, fl::worker_x, out_serial, nullptr,
                         nullptr);
  }
  const double red_serial_s = seconds_since(t0) / reps;
  ThreadPool pool(cores);
  t0 = std::chrono::steady_clock::now();
  for (int r = 0; r < reps; ++r) {
    fl::aggregate_global(worker_set, fl::worker_x, out_parallel, nullptr,
                         &pool);
  }
  const double red_parallel_s = seconds_since(t0) / reps;
  HFL_CHECK(out_serial == out_parallel,
            "parallel reduction diverged from serial");
  std::printf("dim %zu x %zu workers: serial %.4fs  parallel %.4fs  "
              "speedup %.2fx  (bit-identical: yes)\n",
              dim, workers.size(), red_serial_s, red_parallel_s,
              red_serial_s / red_parallel_s);
  std::fprintf(json,
               "  \"reduction\": {\"dim\": %zu, \"workers\": %zu, "
               "\"serial_s\": %.5f, \"parallel_s\": %.5f, \"speedup\": %.3f, "
               "\"bit_identical\": true},\n",
               dim, workers.size(), red_serial_s, red_parallel_s,
               red_serial_s / red_parallel_s);

  // -- sweep: serial loop vs run_sweep --------------------------------------
  bench::print_heading("sweep: serial loop vs fl::run_sweep");
  fl::RunConfig sweep_cfg = cfg;
  sweep_cfg.total_iterations = bench::scaled_iters(40, 4);
  sweep_cfg.num_threads = 1;
  fl::RunConfig sweep_cfg2 = sweep_cfg;
  sweep_cfg2.tau = sweep_cfg.tau * sweep_cfg.pi;  // matched period
  sweep_cfg2.pi = 1;

  std::vector<fl::SweepJob> jobs;
  for (const std::string& name : algs::table2_algorithms()) {
    fl::SweepJob job;
    job.make_algorithm = [name] { return algs::make_algorithm(name); };
    job.cfg = algs::make_algorithm(name)->three_tier() ? sweep_cfg : sweep_cfg2;
    job.label = name;
    jobs.push_back(std::move(job));
  }

  t0 = std::chrono::steady_clock::now();
  std::vector<fl::RunResult> loop_results;
  for (const fl::SweepJob& job : jobs) {
    auto alg = job.make_algorithm();
    fl::Engine engine(factory, dataset, partition, topo, job.cfg);
    loop_results.push_back(engine.run(*alg));
  }
  const double loop_s = seconds_since(t0);

  t0 = std::chrono::steady_clock::now();
  const std::vector<fl::SweepResult> sweep_results =
      fl::run_sweep(factory, dataset, partition, topo, jobs);
  const double sweep_s = seconds_since(t0);

  HFL_CHECK(sweep_results.size() == loop_results.size(), "sweep size mismatch");
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    HFL_CHECK(same_curve(loop_results[i], sweep_results[i].result),
              "run_sweep diverged from the serial loop for " + jobs[i].label);
  }
  std::printf("%zu jobs: serial loop %.3fs  run_sweep %.3fs  speedup %.2fx  "
              "(bit-identical: yes)\n",
              jobs.size(), loop_s, sweep_s, loop_s / sweep_s);
  std::fprintf(json,
               "  \"sweep\": {\"jobs\": %zu, \"serial_s\": %.4f, "
               "\"parallel_s\": %.4f, \"speedup\": %.3f, "
               "\"bit_identical\": true}\n}\n",
               jobs.size(), loop_s, sweep_s, loop_s / sweep_s);
  std::fclose(json);
  std::printf("\n(measurements written to BENCH_sync.json)\n");
  return 0;
}
