// E6 — Fig. 2(e)–(g): accuracy under 3-/6-/9-class non-i.i.d. data.
//
// Paper setup: CNN on MNIST; each worker holds x of the 10 classes
// (x ∈ {3, 6, 9}; smaller x = stronger heterogeneity = larger δ in
// Assumption 3). All algorithms degrade as x shrinks, with HierAdMo expected
// to stay on top at every level.
#include <cstdio>

#include "bench_util.h"
#include "src/common/csv.h"

namespace hfl::bench {
namespace {

void run() {
  Rng data_rng(55);
  const data::TrainTest dataset = data::make_synthetic_mnist(data_rng, 1.0);
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  const nn::ModelFactory factory = nn::cnn({1, 28, 28}, 10);

  CsvWriter csv("results/fig2_noniid_results.csv");
  csv.write_header({"classes_per_worker", "algorithm", "iteration",
                    "accuracy"});

  const std::vector<std::string> algorithms = {
      "HierAdMo", "HierAdMo-R", "HierFAVG", "FedNAG", "FedAvg"};

  for (const std::size_t x : {std::size_t{3}, std::size_t{6}, std::size_t{9}}) {
    Rng rng(100 + x);
    const data::Partition partition = data::partition_by_class(
        dataset.train, topo.num_workers(), x, rng);

    fl::RunConfig cfg3;
    cfg3.tau = 20;
    cfg3.pi = 2;
    cfg3.total_iterations = scaled_iters(240, 40);
    cfg3.eta = 0.01;
    cfg3.gamma = 0.5;
    cfg3.gamma_edge = 0.5;
    cfg3.batch_size = 8;
    cfg3.eval_max_samples = 250;
    cfg3.seed = 17;
    fl::RunConfig cfg2 = cfg3;
    cfg2.tau = 40;
    cfg2.pi = 1;

    fl::Engine engine3(factory, dataset, partition, topo, cfg3);
    fl::Engine engine2(factory, dataset, partition, topo, cfg2);

    print_heading("Fig. 2 — " + std::to_string(x) +
                  "-class non-i.i.d. (CNN on MNIST)");
    print_row({"algorithm", "final-acc", "best-acc"}, {14, 12, 12});
    for (const std::string& name : algorithms) {
      auto alg = algs::make_algorithm(name);
      fl::Engine& engine = alg->three_tier() ? engine3 : engine2;
      const fl::RunResult result = engine.run(*alg);
      for (const auto& p : result.curve) {
        csv.write_row({std::to_string(x), name, std::to_string(p.iteration),
                       CsvWriter::format_scalar(p.test_accuracy)});
      }
      print_row(
          {name, pct(result.final_accuracy), pct(result.best_accuracy())},
          {14, 12, 12});
    }
  }
  std::printf("\n(curves written to results/fig2_noniid_results.csv)\n");
}

}  // namespace
}  // namespace hfl::bench

int main() {
  hfl::bench::run();
  return 0;
}
