// E7 — Fig. 2(h) and (l): trace-driven total training time to reach a target
// accuracy.
//
// Paper setup: CNN on MNIST, 4 workers (laptop + three phones) / 2 edge
// nodes (MacBook) / GPU-server cloud; setting 1 uses τ=10, π=2 (three-tier)
// vs τ=20 (two-tier), setting 2 uses τ=20, π=2 vs τ=40. Training is
// simulated iteration-exactly, then each run's accuracy curve is replayed
// against the net::TimeSimulator delay model. The paper's target accuracy is
// 0.95; ours is set to 0.90 of the best achievable at the scaled horizon so
// every algorithm category registers a time (the paper's 1.30×–4.36×
// speed-up claim is about the ratios).
#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "src/common/csv.h"
#include "src/net/time_simulator.h"

namespace hfl::bench {
namespace {

struct Setting {
  std::string label;
  std::size_t tau3, pi3, tau2;
};

void run() {
  Rng rng(77);
  const data::TrainTest dataset = data::make_synthetic_mnist(rng, 1.0);
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  const data::Partition partition = data::partition_by_class(
      dataset.train, topo.num_workers(), 5, rng);
  const nn::ModelFactory factory = nn::cnn({1, 28, 28}, 10);
  const std::size_t model_params = factory()->num_params();

  const std::vector<Setting> settings = {
      {"setting 1 (tau=10, pi=2 | tau=20)", 10, 2, 20},
      {"setting 2 (tau=20, pi=2 | tau=40)", 20, 2, 40},
  };

  CsvWriter csv("results/fig2_time_results.csv");
  csv.write_header({"setting", "algorithm", "target_accuracy",
                    "iterations_to_target", "seconds_to_target",
                    "final_accuracy"});

  for (const Setting& s : settings) {
    fl::RunConfig cfg3;
    cfg3.tau = s.tau3;
    cfg3.pi = s.pi3;
    cfg3.total_iterations = scaled_iters(320, s.tau3 * s.pi3);
    cfg3.eta = 0.01;
    cfg3.gamma = 0.5;
    cfg3.gamma_edge = 0.5;
    cfg3.batch_size = 8;
    cfg3.eval_every = 20;
    cfg3.eval_max_samples = 250;
    cfg3.seed = 19;
    fl::RunConfig cfg2 = cfg3;
    cfg2.tau = s.tau2;
    cfg2.pi = 1;
    cfg2.total_iterations = scaled_iters(320, s.tau2);

    fl::Engine engine3(factory, dataset, partition, topo, cfg3);
    fl::Engine engine2(factory, dataset, partition, topo, cfg2);

    // First pass: run everything, then set the target just under the median
    // best accuracy (the paper's fixed 0.95 is unreachable at the scaled
    // horizon; a median-relative target keeps the comparison meaningful and
    // lets slow methods register as "never", like the paper's 4× stragglers).
    std::vector<std::pair<std::string, fl::RunResult>> results;
    std::vector<Scalar> bests;
    for (const std::string& name : algs::table2_algorithms()) {
      auto alg = algs::make_algorithm(name);
      fl::Engine& engine = alg->three_tier() ? engine3 : engine2;
      results.emplace_back(name, engine.run(*alg));
      bests.push_back(results.back().second.best_accuracy());
    }
    std::nth_element(bests.begin(), bests.begin() + bests.size() / 2,
                     bests.end());
    const Scalar target =
        std::min(Scalar{0.95}, 0.95 * bests[bests.size() / 2]);

    print_heading("Fig. 2 time-to-accuracy — " + s.label +
                  ", target " + pct(target) + "%");
    print_row({"algorithm", "iters-to-target", "time-to-target", "final-acc"},
              {14, 16, 16, 12});
    for (const auto& [name, result] : results) {
      auto alg = algs::make_algorithm(name);
      const fl::RunConfig& cfg = alg->three_tier() ? cfg3 : cfg2;
      net::TimeSimConfig sim = net::make_time_sim_config(
          name, alg->three_tier(), model_params, topo.num_workers());
      net::TimeSimulator timer(topo, cfg, sim);
      const std::size_t iters = result.iterations_to_accuracy(target);
      const bool reached = iters != hfl::kNeverIndex;
      const Scalar seconds = timer.time_to_accuracy(result, target);
      print_row({name,
                 reached ? std::to_string(iters) : "never",
                 reached ? CsvWriter::format_scalar(seconds) + "s" : "-",
                 pct(result.final_accuracy)},
                {14, 16, 16, 12});
      csv.write_row({s.label, name, CsvWriter::format_scalar(target),
                     reached ? std::to_string(iters) : "never",
                     CsvWriter::format_scalar(seconds),
                     CsvWriter::format_scalar(result.final_accuracy)});
    }
  }
  std::printf("\n(results written to results/fig2_time_results.csv)\n");
}

}  // namespace
}  // namespace hfl::bench

int main() {
  hfl::bench::run();
  return 0;
}
