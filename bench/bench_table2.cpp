// E1 — Table II: convergence performance of 11 FL algorithms across the
// paper's seven model/dataset combinations.
//
// Paper setup: 4 workers, 2 edge nodes (2 workers each); γ = γℓ = 0.5;
// convex models use τ=10, π=2 (three-tier) / τ=20 (two-tier), non-convex
// models τ=20, π=2 / τ=40 — the two-tier aggregation period always matches
// the three-tier τ·π. Datasets are the synthetic analogues of DESIGN.md §3;
// horizons and batch size are scaled for single-core simulation (multiply
// with HFL_BENCH_SCALE for longer runs). The deliverable is the ORDERING of
// the rows, not the absolute numbers.
#include <cstdio>

#include "bench_util.h"
#include "src/common/csv.h"

namespace hfl::bench {
namespace {

struct Column {
  std::string title;
  nn::ModelKind model;
  data::TrainTest (*make_data)(Rng&, Scalar);
  std::vector<std::size_t> sample_shape;
  std::size_t classes;
  bool convex;
  std::size_t base_iters;
  Scalar eta;  // the paper uses 0.01 throughout; MSE on raw features needs a
               // smaller step for the momentum methods to stay stable
  std::size_t batch;  // scaled for single-core simulation (paper: 64)
};

void run_table2() {
  const std::vector<Column> columns = {
      {"Linear/MNIST", nn::ModelKind::kLinearRegression,
       data::make_synthetic_mnist, {1, 28, 28}, 10, true, 400, 0.002, 16},
      {"Logistic/MNIST", nn::ModelKind::kLogisticRegression,
       data::make_synthetic_mnist, {1, 28, 28}, 10, true, 400, 0.01, 16},
      {"CNN/MNIST", nn::ModelKind::kCnn, data::make_synthetic_mnist,
       {1, 28, 28}, 10, false, 240, 0.01, 8},
      {"CNN/CIFAR10", nn::ModelKind::kCnn, data::make_synthetic_cifar10,
       {3, 32, 32}, 10, false, 240, 0.01, 8},
      {"VGG/CIFAR10", nn::ModelKind::kMiniVgg, data::make_synthetic_cifar10,
       {3, 32, 32}, 10, false, 240, 0.01, 8},
      {"ResNet/ImageNet", nn::ModelKind::kMiniResNet,
       data::make_synthetic_imagenet, {3, 32, 32}, 20, false, 240, 0.01, 8},
      {"CNN/UCI-HAR", nn::ModelKind::kCnn, data::make_synthetic_har,
       {1, 24, 24}, 6, false, 200, 0.01, 8},
  };
  const std::vector<std::string> algorithms = algs::table2_algorithms();

  print_heading("Table II — accuracy (%) after T local iterations");
  std::vector<std::vector<std::string>> cells(
      algorithms.size() + 1,
      std::vector<std::string>(columns.size() + 1));
  cells[0][0] = "algorithm";
  for (std::size_t a = 0; a < algorithms.size(); ++a) {
    cells[a + 1][0] = algorithms[a];
  }

  CsvWriter csv("table2_results.csv");
  csv.write_header({"column", "algorithm", "accuracy", "iterations"});

  for (std::size_t c = 0; c < columns.size(); ++c) {
    const Column& col = columns[c];
    cells[0][c + 1] = col.title;

    Rng rng(1000 + c);
    const data::TrainTest dataset = col.make_data(rng, 1.0);
    const fl::Topology topo = fl::Topology::uniform(2, 2);
    const data::Partition partition = data::partition_by_class(
        dataset.train, topo.num_workers(), col.classes / 2, rng);

    // Paper periods: convex τ=10/π=2 (two-tier τ=20); else τ=20/π=2 (τ=40).
    const std::size_t tau3 = col.convex ? 10 : 20;
    const std::size_t pi3 = 2;

    fl::RunConfig cfg3;
    cfg3.tau = tau3;
    cfg3.pi = pi3;
    cfg3.total_iterations = scaled_iters(col.base_iters, tau3 * pi3);
    cfg3.eta = col.eta;
    cfg3.gamma = 0.5;
    cfg3.gamma_edge = 0.5;
    cfg3.batch_size = col.batch;
    cfg3.eval_max_samples = 250;
    cfg3.seed = 7;

    fl::RunConfig cfg2 = cfg3;  // matched two-tier: τ2 = τ3·π3, π = 1
    cfg2.tau = tau3 * pi3;
    cfg2.pi = 1;

    const nn::ModelFactory factory =
        nn::make_model_factory(col.model, col.sample_shape, col.classes);
    fl::Engine engine3(factory, dataset, partition, topo, cfg3);
    fl::Engine engine2(factory, dataset, partition, topo, cfg2);

    std::printf("[%s] T=%zu\n", col.title.c_str(), cfg3.total_iterations);
    for (std::size_t a = 0; a < algorithms.size(); ++a) {
      auto alg = algs::make_algorithm(algorithms[a]);
      fl::Engine& engine = alg->three_tier() ? engine3 : engine2;
      const fl::RunResult result = engine.run(*alg);
      cells[a + 1][c + 1] = pct(result.final_accuracy);
      csv.write_row({col.title, algorithms[a],
                     CsvWriter::format_scalar(result.final_accuracy),
                     std::to_string(cfg3.total_iterations)});
      std::printf("  %-12s %s%%  (%.1fs)\n", algorithms[a].c_str(),
                  pct(result.final_accuracy).c_str(), result.wall_seconds);
      std::fflush(stdout);
    }
  }

  print_heading("Table II summary");
  std::vector<int> widths(columns.size() + 1, 17);
  widths[0] = 13;
  for (const auto& row : cells) print_row(row, widths);
  std::printf("\n(results also written to table2_results.csv)\n");
}

}  // namespace
}  // namespace hfl::bench

int main() {
  hfl::bench::run_table2();
  return 0;
}
