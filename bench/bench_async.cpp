// Execution-policy bench: simulated time of sync vs semi_async vs async
// under a straggler-heavy fault plan (the deployment regime the event-driven
// engine exists for).
//
// One workload (HierAdMo, 4 edges × 4 workers, synthetic MNIST), one seeded
// straggler plan (half the fleet ~5× slow), four evt::AsyncEngine runs that
// differ only in RunConfig::policy (+ adaptive_deadline for semi_adapt). The
// sync barrier pays the slowest straggler of the whole fleet every interval;
// the event-driven policies pay each worker only its own delays (plus the
// admission deadline for semi) and additionally hide upload latency behind
// the next interval's compute (the reported overlap column).
// Before timing anything, the sync replay is asserted bit-identical to
// fl::Engine on the same schedule — a speedup over a broken baseline would
// be meaningless.
//
// Writes BENCH_async.json so the numbers ship with the repo. All times are
// modeled seconds (the simulation clock), not host wall-clock; the host is
// only timed to report simulation throughput.
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>

#include "bench_util.h"
#include "src/common/errors.h"
#include "src/evt/async_engine.h"
#include "src/sim/fault_plan.h"

namespace {

using namespace hfl;

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

bool same_curve(const fl::RunResult& a, const fl::RunResult& b) {
  if (a.final_params != b.final_params) return false;
  if (a.curve.size() != b.curve.size()) return false;
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    if (a.curve[i].test_loss != b.curve[i].test_loss ||
        a.curve[i].test_accuracy != b.curve[i].test_accuracy) {
      return false;
    }
  }
  return true;
}

struct PolicyRun {
  const char* label = "";
  fl::RunResult result;
  double host_s = 0;
};

}  // namespace

int main() {
  using namespace hfl;

  Rng rng(7);
  const data::TrainTest dataset = data::make_synthetic_mnist(rng);
  const fl::Topology topo = fl::Topology::uniform(4, 4);
  const data::Partition partition =
      data::partition_iid(dataset.train, topo.num_workers(), rng);
  const nn::ModelFactory factory = nn::logistic_regression({1, 28, 28}, 10);
  const std::size_t model_params = factory()->num_params();

  fl::RunConfig cfg;
  cfg.total_iterations = bench::scaled_iters(40, 4);
  cfg.tau = 2;
  cfg.pi = 2;
  cfg.eta = 0.01;
  cfg.gamma = 0.5;
  cfg.gamma_edge = 0.5;
  cfg.batch_size = 16;
  cfg.eval_max_samples = 200;
  cfg.seed = 3;
  cfg.batched = false;  // required by the event-driven policies

  // Straggler-heavy, fully attended: half the fleet runs ~5× slow with
  // per-interval jitter. No dropouts — the point is barrier stall, not
  // missing data.
  sim::FaultConfig fc;
  fc.seed = 11;
  fc.straggler.fraction = 0.5;
  fc.straggler.slowdown = 5.0;
  fc.straggler.jitter = 0.3;
  const sim::FaultPlan plan(topo, cfg, fc);

  const net::TimeSimConfig sim = net::make_time_sim_config(
      "HierAdMo", /*three_tier=*/true, model_params, topo.num_workers());

  // -- correctness anchor: the sync replay must equal fl::Engine ------------
  {
    fl::Engine ref(factory, dataset, partition, topo, cfg);
    auto ref_alg = algs::make_algorithm("HierAdMo");
    const fl::RunResult r_ref = ref.run(*ref_alg, &plan.schedule());
    evt::AsyncEngine evt_engine(factory, dataset, partition, topo, cfg, sim);
    auto evt_alg = algs::make_algorithm("HierAdMo");
    const fl::RunResult r_evt = evt_engine.run(*evt_alg, &plan);
    HFL_CHECK(same_curve(r_ref, r_evt),
              "AsyncEngine sync policy diverged from fl::Engine");
  }

  // -- the four policies ----------------------------------------------------
  PolicyRun runs[4];
  runs[0].label = "sync";
  runs[1].label = "semi_async";
  runs[2].label = "semi_adapt";
  runs[3].label = "async";
  for (PolicyRun& pr : runs) {
    fl::RunConfig pcfg = cfg;
    const std::string label(pr.label);
    if (label == "semi_async" || label == "semi_adapt") {
      pcfg.policy = fl::ExecPolicy::kSemiAsync;
      // Roughly two normal-speed intervals: fast workers are admitted
      // together, stragglers land in later rounds instead of stalling them.
      pcfg.semi_async_deadline_s = 0.5;
      // The adaptive variant retunes each aggregator's deadline against the
      // arrival spread it actually observes.
      pcfg.adaptive_deadline = label == "semi_adapt";
    } else if (label == "async") {
      pcfg.policy = fl::ExecPolicy::kAsync;
    }
    evt::AsyncEngine engine(factory, dataset, partition, topo, pcfg, sim);
    auto alg = algs::make_algorithm("HierAdMo");
    const auto t0 = std::chrono::steady_clock::now();
    pr.result = engine.run(*alg, &plan);
    pr.host_s = seconds_since(t0);
  }

  bench::print_heading("execution policies under a straggler-heavy plan");
  std::printf("%-12s%-12s%-12s%-10s%-10s%-10s%-10s%-10s\n", "policy",
              "sim-time", "final-acc", "admitted", "stale", "dropped",
              "overlap-s", "host-s");
  for (const PolicyRun& pr : runs) {
    std::printf("%-12s%-12.1f%-12.3f%-10zu%-10zu%-10zu%-10.1f%-10.2f\n",
                pr.label, pr.result.sim_seconds, pr.result.final_accuracy,
                pr.result.admitted_updates, pr.result.stale_updates,
                pr.result.dropped_updates, pr.result.overlap_seconds,
                pr.host_s);
  }

  const double semi_speedup =
      runs[0].result.sim_seconds / runs[1].result.sim_seconds;
  const double adapt_speedup =
      runs[0].result.sim_seconds / runs[2].result.sim_seconds;
  const double async_speedup =
      runs[0].result.sim_seconds / runs[3].result.sim_seconds;
  std::printf("\nsimulated-time speedup over sync: semi_async %.2fx, "
              "semi_adapt %.2fx, async %.2fx\n",
              semi_speedup, adapt_speedup, async_speedup);

  // The claim this bench exists to check: dodging the straggler barrier
  // makes the modeled run finish earlier.
  HFL_CHECK(runs[1].result.sim_seconds < runs[0].result.sim_seconds,
            "semi_async did not beat the sync barrier in simulated time");

  std::FILE* json = std::fopen("BENCH_async.json", "w");
  HFL_CHECK(json != nullptr, "cannot open BENCH_async.json");
  std::fprintf(json, "{\n  \"topology\": \"4 edges x 4 workers\",\n");
  std::fprintf(json,
               "  \"config\": {\"T\": %zu, \"tau\": %zu, \"pi\": %zu, "
               "\"deadline_s\": 0.5, \"max_staleness\": %lld},\n",
               cfg.total_iterations, cfg.tau, cfg.pi,
               static_cast<long long>(cfg.max_staleness));
  std::fprintf(json,
               "  \"faults\": {\"straggler_fraction\": 0.5, "
               "\"slowdown\": 5.0, \"jitter\": 0.3},\n");
  std::fprintf(json, "  \"policies\": [\n");
  for (std::size_t i = 0; i < 4; ++i) {
    const fl::RunResult& r = runs[i].result;
    std::fprintf(json,
                 "    {\"policy\": \"%s\", \"sim_seconds\": %.3f, "
                 "\"final_accuracy\": %.4f, \"admitted\": %zu, "
                 "\"stale\": %zu, \"dropped\": %zu, "
                 "\"mean_staleness\": %.3f, \"max_staleness\": %zu, "
                 "\"overlap_seconds\": %.3f, \"downloads_applied\": %zu, "
                 "\"downloads_superseded\": %zu, "
                 "\"host_seconds\": %.3f}%s\n",
                 runs[i].label, r.sim_seconds, r.final_accuracy,
                 r.admitted_updates, r.stale_updates, r.dropped_updates,
                 r.mean_staleness, r.max_staleness_seen, r.overlap_seconds,
                 r.downloads_applied, r.downloads_superseded, runs[i].host_s,
                 i + 1 < 4 ? "," : "");
  }
  std::fprintf(json, "  ],\n");
  std::fprintf(json,
               "  \"speedup_vs_sync\": {\"semi_async\": %.3f, "
               "\"semi_adaptive\": %.3f, \"async\": %.3f},\n",
               semi_speedup, adapt_speedup, async_speedup);
  std::fprintf(json, "  \"sync_bit_identical_to_engine\": true\n}\n");
  std::fclose(json);
  std::printf("wrote BENCH_async.json\n");
  return 0;
}
