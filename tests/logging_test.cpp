// Thread-safety tests for common/logging: concurrent LogLine flushes from
// pool threads must come out as whole lines (the mutex serializes writes),
// and the level check must filter without locking.
#include "src/common/logging.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/thread_pool.h"

namespace hfl {
namespace {

// Redirects std::cerr into a buffer for the test's lifetime.
class CerrCapture {
 public:
  CerrCapture() : old_(std::cerr.rdbuf(buffer_.rdbuf())) {}
  ~CerrCapture() { std::cerr.rdbuf(old_); }
  std::string str() const { return buffer_.str(); }

 private:
  std::ostringstream buffer_;
  std::streambuf* old_;
};

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { old_level_ = log_level(); }
  void TearDown() override { set_log_level(old_level_); }
  LogLevel old_level_ = LogLevel::kInfo;
};

TEST_F(LoggingTest, ConcurrentLogLinesNeverInterleave) {
  set_log_level(LogLevel::kInfo);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kLines = 200;

  CerrCapture capture;
  {
    ThreadPool pool(kThreads);
    pool.parallel_for(kThreads, [&](std::size_t thread) {
      for (std::size_t line = 0; line < kLines; ++line) {
        HFL_INFO() << "thread " << thread << " line " << line << " payload "
                   << thread * 1000 + line;
      }
    });
  }

  // Every emitted line must be complete and well-formed; fragments from two
  // threads sharing a line would break the per-thread line counts.
  std::map<std::size_t, std::size_t> per_thread;
  std::istringstream lines(capture.str());
  std::string line;
  std::size_t total = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    std::size_t thread = 0, num = 0, payload = 0;
    ASSERT_EQ(std::sscanf(line.c_str(), "[INFO] thread %zu line %zu payload %zu",
                          &thread, &num, &payload),
              3)
        << "malformed (interleaved?) line: '" << line << "'";
    EXPECT_EQ(payload, thread * 1000 + num) << line;
    ++per_thread[thread];
    ++total;
  }
  EXPECT_EQ(total, kThreads * kLines);
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(per_thread[t], kLines) << "thread " << t;
  }
}

// Streaming this into a LogLine records whether formatting actually ran.
struct FormatProbe {
  bool* flag;
};
std::ostream& operator<<(std::ostream& os, const FormatProbe& p) {
  *p.flag = true;
  return os << "probe";
}

TEST_F(LoggingTest, SuppressedLevelsProduceNoOutputAndNoFormatting) {
  set_log_level(LogLevel::kWarn);
  CerrCapture capture;

  EXPECT_FALSE(log_enabled(LogLevel::kInfo));
  EXPECT_TRUE(log_enabled(LogLevel::kWarn));

  bool formatted = false;
  HFL_INFO() << "dropped " << FormatProbe{&formatted};
  EXPECT_FALSE(formatted);  // suppressed line skips formatting entirely
  HFL_WARN() << "kept " << FormatProbe{&formatted};
  EXPECT_TRUE(formatted);

  const std::string out = capture.str();
  EXPECT_EQ(out.find("dropped"), std::string::npos);
  EXPECT_NE(out.find("[WARN] kept probe"), std::string::npos);
}

TEST_F(LoggingTest, ConcurrentLevelChangesAreSafe) {
  set_log_level(LogLevel::kInfo);
  CerrCapture capture;
  {
    ThreadPool pool(4);
    pool.parallel_for(4, [&](std::size_t i) {
      for (std::size_t j = 0; j < 500; ++j) {
        if (i == 0) {
          set_log_level(j % 2 == 0 ? LogLevel::kWarn : LogLevel::kInfo);
        } else {
          HFL_INFO() << "tick " << i << ":" << j;
        }
      }
    });
  }
  // No assertion on content (the filter races with the writers by design);
  // the test passes if nothing crashes or deadlocks and all output is
  // line-atomic.
  std::istringstream lines(capture.str());
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_EQ(line.rfind("[INFO] tick ", 0), 0u) << line;
  }
}

}  // namespace
}  // namespace hfl
