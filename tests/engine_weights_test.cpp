// Verifies the engine's data-weight bookkeeping: D_{i,ℓ}/D_ℓ and D_{i,ℓ}/D
// must reflect the partition sizes, edge weights must sum to one, and the
// initial state must satisfy Algorithm 1's lines 1–2 (common x0, y0 = x0,
// v0 = 0, edge/cloud state seeded with x0).
#include <gtest/gtest.h>

#include "src/common/errors.h"

#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/fl/engine.h"
#include "src/nn/models.h"

namespace hfl::fl {
namespace {

// Captures the state the engine hands to init().
class InitSpy final : public Algorithm {
 public:
  WorkerSet* workers = nullptr;
  std::vector<EdgeState>* edges = nullptr;
  CloudState* cloud = nullptr;
  bool init_called = false;

  std::string name() const override { return "init-spy"; }
  bool three_tier() const override { return true; }
  void init(Context& ctx) override {
    workers = ctx.workers;
    edges = ctx.edges;
    cloud = ctx.cloud;
    init_called = true;
    // Inspect everything *now* (the vectors live only during run()).
    verify();
  }
  void local_step(Context&, WorkerState&) override {}
  void cloud_sync(Context&, std::size_t) override {}

  std::function<void()> on_init;
  void verify() {
    if (on_init) on_init();
  }
};

TEST(EngineWeightsTest, WeightsMatchPartitionSizes) {
  Rng rng(1);
  data::SyntheticSpec spec;
  spec.sample_shape = {1, 2, 2};
  spec.num_classes = 2;
  spec.train_size = 100;
  spec.test_size = 20;
  const data::TrainTest dataset = data::make_synthetic(rng, spec);
  const Topology topo({2, 1});  // edge 0: workers {0,1}; edge 1: worker {2}

  // Hand-built partition with known sizes 20 / 30 / 50.
  data::Partition partition(3);
  for (std::size_t i = 0; i < 20; ++i) partition[0].push_back(i);
  for (std::size_t i = 20; i < 50; ++i) partition[1].push_back(i);
  for (std::size_t i = 50; i < 100; ++i) partition[2].push_back(i);

  RunConfig cfg;
  cfg.total_iterations = 2;
  cfg.tau = 1;
  cfg.pi = 2;
  cfg.batch_size = 4;
  cfg.seed = 9;
  Engine engine(nn::logistic_regression({1, 2, 2}, 2), dataset, partition,
                topo, cfg);

  InitSpy spy;
  spy.on_init = [&spy] {
    const auto& w = *spy.workers;
    ASSERT_EQ(w.size(), 3u);
    // Global weights: 0.2 / 0.3 / 0.5.
    EXPECT_NEAR(w[0].weight_global, 0.2, 1e-12);
    EXPECT_NEAR(w[1].weight_global, 0.3, 1e-12);
    EXPECT_NEAR(w[2].weight_global, 0.5, 1e-12);
    // In-edge weights: edge 0 has 20+30=50 samples -> 0.4 / 0.6; edge 1: 1.
    EXPECT_NEAR(w[0].weight_in_edge, 0.4, 1e-12);
    EXPECT_NEAR(w[1].weight_in_edge, 0.6, 1e-12);
    EXPECT_NEAR(w[2].weight_in_edge, 1.0, 1e-12);
    EXPECT_EQ(w[0].num_samples, 20u);
    EXPECT_EQ(w[2].num_samples, 50u);
    // Edge weights: 0.5 / 0.5, summing to one.
    const auto& e = *spy.edges;
    EXPECT_NEAR(e[0].weight_global, 0.5, 1e-12);
    EXPECT_NEAR(e[1].weight_global, 0.5, 1e-12);
  };
  engine.run(spy);
  EXPECT_TRUE(spy.init_called);
}

TEST(EngineWeightsTest, InitialStateSatisfiesAlgorithmOneLines1And2) {
  Rng rng(2);
  data::SyntheticSpec spec;
  spec.sample_shape = {1, 2, 2};
  spec.num_classes = 2;
  spec.train_size = 40;
  spec.test_size = 10;
  const data::TrainTest dataset = data::make_synthetic(rng, spec);
  const Topology topo = Topology::uniform(2, 2);
  Rng prng(3);
  const data::Partition partition = data::partition_iid(dataset.train, 4,
                                                        prng);
  RunConfig cfg;
  cfg.total_iterations = 2;
  cfg.tau = 1;
  cfg.pi = 2;
  cfg.batch_size = 4;
  cfg.seed = 11;
  Engine engine(nn::logistic_regression({1, 2, 2}, 2), dataset, partition,
                topo, cfg);

  InitSpy spy;
  spy.on_init = [&spy] {
    const auto& workers = *spy.workers;
    const Vec& x0 = workers.slot(0).x;
    for (const auto& w : workers) {
      EXPECT_EQ(w.x, x0);   // common initial model (line 1)
      EXPECT_EQ(w.y, x0);   // y0 = x0 (line 1)
      for (const Scalar v : w.v) EXPECT_DOUBLE_EQ(v, 0.0);
      for (const Scalar v : w.sum_grad) EXPECT_DOUBLE_EQ(v, 0.0);
    }
    for (const auto& e : *spy.edges) {
      EXPECT_EQ(e.x_plus, x0);  // x0_{ℓ+} = x0 (line 2)
      EXPECT_EQ(e.y_plus, x0);  // y0_{ℓ+} = x0_{ℓ+} (line 2)
      EXPECT_EQ(e.y_minus, x0);
    }
    EXPECT_EQ(spy.cloud->x, x0);
    EXPECT_EQ(spy.cloud->y, x0);
  };
  engine.run(spy);
  EXPECT_TRUE(spy.init_called);
}

TEST(EngineWeightsTest, SameSeedSameInitialPointAcrossEngines) {
  Rng rng(4);
  data::SyntheticSpec spec;
  spec.sample_shape = {1, 2, 2};
  spec.num_classes = 2;
  spec.train_size = 40;
  spec.test_size = 10;
  const data::TrainTest dataset = data::make_synthetic(rng, spec);
  const Topology topo = Topology::uniform(1, 2);
  Rng prng(5);
  const data::Partition partition = data::partition_iid(dataset.train, 2,
                                                        prng);
  RunConfig cfg;
  cfg.total_iterations = 1;
  cfg.tau = 1;
  cfg.pi = 1;
  cfg.batch_size = 4;
  cfg.seed = 42;

  Vec x0_a, x0_b;
  {
    Engine engine(nn::mlp({1, 2, 2}, 4, 2), dataset, partition, topo, cfg);
    InitSpy spy;
    spy.on_init = [&spy, &x0_a] { x0_a = spy.workers->slot(0).x; };
    engine.run(spy);
  }
  {
    Engine engine(nn::mlp({1, 2, 2}, 4, 2), dataset, partition, topo, cfg);
    InitSpy spy;
    spy.on_init = [&spy, &x0_b] { x0_b = spy.workers->slot(0).x; };
    engine.run(spy);
  }
  EXPECT_EQ(x0_a, x0_b);
}

}  // namespace
}  // namespace hfl::fl
