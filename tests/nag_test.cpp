// Tests for the shared worker-update primitives (core/nag): the NAG update
// algebra of Algorithm 1 lines 5–6, the interval accumulators of line 9, and
// the SGD fallback.
#include "src/core/nag.h"

#include <gtest/gtest.h>

#include "src/data/synthetic.h"
#include "src/nn/models.h"

namespace hfl::core {
namespace {

// A worker whose batcher replays one fixed sample, so gradients are a pure
// function of the parameters and the update can be checked by hand.
struct FixedWorker {
  data::TrainTest data;
  fl::WorkerState w;
  std::unique_ptr<nn::Model> reference;

  FixedWorker() {
    Rng rng(3);
    data::SyntheticSpec spec;
    spec.sample_shape = {1, 2, 2};
    spec.num_classes = 2;
    spec.train_size = 1;
    spec.test_size = 1;
    data = data::make_synthetic(rng, spec);

    auto factory = nn::logistic_regression({1, 2, 2}, 2);
    w.model = factory();
    Rng init(5);
    w.model->init_params(init);
    const Vec x0 = w.model->get_params();
    const std::size_t n = x0.size();
    w.x = x0;
    w.y = x0;
    w.v.assign(n, 0.0);
    w.grad.assign(n, 0.0);
    w.sum_grad.assign(n, 0.0);
    w.sum_y.assign(n, 0.0);
    w.sum_v.assign(n, 0.0);
    w.batcher = std::make_unique<data::Batcher>(
        data.train, std::vector<std::size_t>{0}, 1, Rng(7));
    w.aux_batcher = std::make_unique<data::Batcher>(
        data.train, std::vector<std::size_t>{0}, 1, Rng(8));

    reference = factory();
  }

  // Gradient of the (single-sample) local loss at arbitrary params.
  Vec gradient_at(const Vec& params) {
    Tensor x;
    std::vector<std::size_t> y;
    data.train.gather(std::vector<std::size_t>{0}, x, y);
    Vec g;
    reference->loss_and_gradient(params, x, y, g);
    return g;
  }
};

TEST(NagStepTest, MatchesHandComputedUpdate) {
  FixedWorker f;
  const Scalar eta = 0.1, gamma = 0.5;
  const Vec x_prev = f.w.x;
  const Vec y_prev = f.w.y;
  const Vec g = f.gradient_at(x_prev);

  nag_local_step(f.w, eta, gamma, /*accumulate=*/false);

  for (std::size_t i = 0; i < x_prev.size(); ++i) {
    const Scalar y_new = x_prev[i] - eta * g[i];
    const Scalar v_new = y_new - y_prev[i];
    EXPECT_NEAR(f.w.y[i], y_new, 1e-12);
    EXPECT_NEAR(f.w.v[i], v_new, 1e-12);
    EXPECT_NEAR(f.w.x[i], y_new + gamma * v_new, 1e-12);
    EXPECT_NEAR(f.w.grad[i], g[i], 1e-12);
  }
}

TEST(NagStepTest, AccumulatorsFollowLine9) {
  FixedWorker f;
  const Scalar eta = 0.05, gamma = 0.5;
  Vec expected_sum_grad(f.w.x.size(), 0.0);
  Vec expected_sum_y(f.w.x.size(), 0.0);
  Vec expected_sum_v(f.w.x.size(), 0.0);

  for (int step = 0; step < 3; ++step) {
    const Vec g = f.gradient_at(f.w.x);   // gradient at pre-update x
    const Vec y_pre = f.w.y;              // pre-update momentum parameter
    nag_local_step(f.w, eta, gamma, /*accumulate=*/true);
    for (std::size_t i = 0; i < g.size(); ++i) {
      expected_sum_grad[i] += g[i];
      expected_sum_y[i] += y_pre[i];
      expected_sum_v[i] += f.w.v[i];  // post-update velocity
    }
  }
  for (std::size_t i = 0; i < f.w.x.size(); ++i) {
    EXPECT_NEAR(f.w.sum_grad[i], expected_sum_grad[i], 1e-12);
    EXPECT_NEAR(f.w.sum_y[i], expected_sum_y[i], 1e-12);
    EXPECT_NEAR(f.w.sum_v[i], expected_sum_v[i], 1e-12);
  }
}

TEST(NagStepTest, NoAccumulationWhenDisabled) {
  FixedWorker f;
  nag_local_step(f.w, 0.1, 0.5, /*accumulate=*/false);
  for (const Scalar v : f.w.sum_grad) EXPECT_DOUBLE_EQ(v, 0.0);
  for (const Scalar v : f.w.sum_y) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(NagStepTest, GammaZeroIsSgd) {
  FixedWorker f1, f2;
  for (int step = 0; step < 4; ++step) {
    nag_local_step(f1.w, 0.1, 0.0, false);
    sgd_local_step(f2.w, 0.1);
  }
  for (std::size_t i = 0; i < f1.w.x.size(); ++i) {
    EXPECT_NEAR(f1.w.x[i], f2.w.x[i], 1e-12);
  }
}

TEST(SgdStepTest, MatchesHandComputedUpdate) {
  FixedWorker f;
  const Vec x_prev = f.w.x;
  const Vec g = f.gradient_at(x_prev);
  sgd_local_step(f.w, 0.2);
  for (std::size_t i = 0; i < x_prev.size(); ++i) {
    EXPECT_NEAR(f.w.x[i], x_prev[i] - 0.2 * g[i], 1e-12);
  }
}

TEST(NagStepTest, ReturnsBatchLoss) {
  FixedWorker f;
  const Scalar loss = nag_local_step(f.w, 0.1, 0.5, false);
  EXPECT_GT(loss, 0.0);
  EXPECT_EQ(loss, f.w.last_loss);
}

TEST(NagStepTest, MomentumAcceleratesOnConsistentGradients) {
  // Property: with a fixed gradient field (single repeated sample), τ NAG
  // steps travel further than τ SGD steps of the same η.
  FixedWorker nag, sgd;
  const Vec x0 = nag.w.x;
  for (int step = 0; step < 10; ++step) {
    nag_local_step(nag.w, 0.05, 0.7, false);
    sgd_local_step(sgd.w, 0.05);
  }
  Scalar nag_dist = 0, sgd_dist = 0;
  for (std::size_t i = 0; i < x0.size(); ++i) {
    nag_dist += (nag.w.x[i] - x0[i]) * (nag.w.x[i] - x0[i]);
    sgd_dist += (sgd.w.x[i] - x0[i]) * (sgd.w.x[i] - x0[i]);
  }
  EXPECT_GT(nag_dist, sgd_dist);
}

TEST(WorkerStateTest, ResetClearsAccumulators) {
  FixedWorker f;
  nag_local_step(f.w, 0.1, 0.5, true);
  f.w.reset_interval_accumulators();
  for (const Scalar v : f.w.sum_grad) EXPECT_DOUBLE_EQ(v, 0.0);
  for (const Scalar v : f.w.sum_y) EXPECT_DOUBLE_EQ(v, 0.0);
  for (const Scalar v : f.w.sum_v) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(WorkerStateTest, ProbeGradientDoesNotDisturbMainStream) {
  FixedWorker a, b;
  Vec probe;
  a.w.probe_gradient(a.w.x, probe);  // uses aux stream only
  nag_local_step(a.w, 0.1, 0.5, false);
  nag_local_step(b.w, 0.1, 0.5, false);
  for (std::size_t i = 0; i < a.w.x.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.w.x[i], b.w.x[i]);
  }
}

}  // namespace
}  // namespace hfl::core
