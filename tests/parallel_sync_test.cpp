// Serial vs parallel bit-identity for the engine's sync tier.
//
// The engine dispatches edge_sync concurrently and routes cloud/eval
// reductions through the element-partitioned parallel path; the contract
// (engine.h) is that nothing observable may depend on the thread count. For
// every registry algorithm (plus MimeLite) on a 3-edge / 9-worker topology,
// with and without a fault schedule, a num_threads == 4 run must reproduce
// the num_threads == 1 run exactly: accuracy/loss curve, final parameters,
// participation trace, and obs counters (sync counts, per-link comm bytes).
//
// Also covered: the non-re-entrant escape hatch (an algorithm holding a
// stateful compressor is serialized but still matches its own serial run),
// the EdgeSyncGuard debug assert, and fl::run_sweep reproducing a serial
// loop job-for-job.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/algs/registry.h"
#include "src/common/errors.h"
#include "src/core/hieradmo.h"
#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/fl/compression.h"
#include "src/fl/sweep.h"
#include "src/nn/models.h"
#include "src/obs/comm.h"
#include "src/obs/registry.h"
#include "src/sim/fault_plan.h"

namespace hfl::fl {
namespace {

struct Fixture {
  data::TrainTest dataset;
  Topology topo{Topology::uniform(3, 3)};  // 3 edges × 3 workers
  data::Partition partition;
  nn::ModelFactory factory;
  RunConfig cfg3;  // three-tier
  RunConfig cfg2;  // two-tier (π = 1, matched period)

  Fixture() {
    Rng rng(3);
    data::SyntheticSpec spec;
    spec.sample_shape = {1, 3, 3};
    spec.num_classes = 3;
    spec.train_size = 90;
    spec.test_size = 30;
    dataset = data::make_synthetic(rng, spec);
    partition = data::partition_iid(dataset.train, topo.num_workers(), rng);
    factory = nn::logistic_regression({1, 3, 3}, 3);

    cfg3.total_iterations = 8;
    cfg3.tau = 2;
    cfg3.pi = 2;
    cfg3.batch_size = 4;
    cfg3.seed = 5;
    cfg2 = cfg3;
    cfg2.tau = 4;
    cfg2.pi = 1;
  }

  RunConfig config_for(const Algorithm& alg) const {
    return alg.three_tier() ? cfg3 : cfg2;
  }
};

// Observable side effects of one run, captured from the global telemetry.
struct ObsSnapshot {
  std::uint64_t edge_syncs = 0;
  std::uint64_t cloud_syncs = 0;
  obs::LinkTotals worker_edge;
  obs::LinkTotals edge_cloud;
  obs::LinkTotals worker_cloud;
};

bool operator==(const obs::LinkTotals& a, const obs::LinkTotals& b) {
  return a.messages == b.messages && a.logical_bytes == b.logical_bytes &&
         a.saved_bytes == b.saved_bytes;
}

RunResult run_once(const Fixture& f, Algorithm& alg, std::size_t threads,
                   const ParticipationSchedule* schedule, ObsSnapshot* snap) {
  obs::set_enabled(true);
  obs::Registry::global().reset();
  obs::CommAccountant::global().reset();
  RunConfig cfg = f.config_for(alg);
  cfg.num_threads = threads;
  Engine engine(f.factory, f.dataset, f.partition, f.topo, cfg);
  RunResult r = engine.run(alg, schedule);
  if (snap != nullptr) {
    auto& reg = obs::Registry::global();
    auto& comm = obs::CommAccountant::global();
    snap->edge_syncs = reg.counter("engine.edge_syncs").value();
    snap->cloud_syncs = reg.counter("engine.cloud_syncs").value();
    snap->worker_edge = comm.totals(obs::Link::kWorkerToEdge);
    snap->edge_cloud = comm.totals(obs::Link::kEdgeToCloud);
    snap->worker_cloud = comm.totals(obs::Link::kWorkerToCloud);
  }
  obs::set_enabled(false);
  return r;
}

void expect_identical(const RunResult& serial, const RunResult& parallel) {
  ASSERT_EQ(serial.curve.size(), parallel.curve.size());
  for (std::size_t i = 0; i < serial.curve.size(); ++i) {
    EXPECT_EQ(serial.curve[i].iteration, parallel.curve[i].iteration);
    // EXPECT_EQ, not NEAR: the contract is bit-identity, not tolerance.
    EXPECT_EQ(serial.curve[i].test_loss, parallel.curve[i].test_loss);
    EXPECT_EQ(serial.curve[i].test_accuracy, parallel.curve[i].test_accuracy);
  }
  EXPECT_EQ(serial.final_params, parallel.final_params);
  EXPECT_EQ(serial.final_accuracy, parallel.final_accuracy);
  EXPECT_EQ(serial.final_loss, parallel.final_loss);
  EXPECT_EQ(serial.mean_participation_rate, parallel.mean_participation_rate);
  ASSERT_EQ(serial.participation.size(), parallel.participation.size());
  for (std::size_t i = 0; i < serial.participation.size(); ++i) {
    EXPECT_EQ(serial.participation[i].active_workers,
              parallel.participation[i].active_workers);
    EXPECT_EQ(serial.participation[i].active_edges,
              parallel.participation[i].active_edges);
  }
}

void expect_identical(const ObsSnapshot& a, const ObsSnapshot& b) {
  EXPECT_EQ(a.edge_syncs, b.edge_syncs);
  EXPECT_EQ(a.cloud_syncs, b.cloud_syncs);
  EXPECT_TRUE(a.worker_edge == b.worker_edge);
  EXPECT_TRUE(a.edge_cloud == b.edge_cloud);
  EXPECT_TRUE(a.worker_cloud == b.worker_cloud);
}

std::vector<std::string> all_algorithms() {
  std::vector<std::string> names = algs::table2_algorithms();
  names.push_back("MimeLite");
  return names;
}

class ParallelSyncTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ParallelSyncTest, FullParticipationBitIdentical) {
  Fixture f;
  auto serial_alg = algs::make_algorithm(GetParam());
  auto parallel_alg = algs::make_algorithm(GetParam());
  ObsSnapshot serial_obs, parallel_obs;
  const RunResult serial = run_once(f, *serial_alg, 1, nullptr, &serial_obs);
  const RunResult parallel =
      run_once(f, *parallel_alg, 4, nullptr, &parallel_obs);
  expect_identical(serial, parallel);
  expect_identical(serial_obs, parallel_obs);
}

TEST_P(ParallelSyncTest, FaultScheduleBitIdentical) {
  Fixture f;
  auto serial_alg = algs::make_algorithm(GetParam());
  auto parallel_alg = algs::make_algorithm(GetParam());
  sim::FaultConfig fc;
  fc.seed = 42;
  fc.dropout.prob = 0.3;
  const sim::FaultPlan plan(f.topo, f.config_for(*serial_alg), fc);
  ObsSnapshot serial_obs, parallel_obs;
  const RunResult serial =
      run_once(f, *serial_alg, 1, &plan.schedule(), &serial_obs);
  const RunResult parallel =
      run_once(f, *parallel_alg, 4, &plan.schedule(), &parallel_obs);
  expect_identical(serial, parallel);
  expect_identical(serial_obs, parallel_obs);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, ParallelSyncTest, ::testing::ValuesIn(all_algorithms()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// A stateful (seeded-RNG) compressor makes HierAdMo's edge_sync serial-only;
// the engine must serialize it and still match the num_threads == 1 run.
TEST(ParallelSyncTest, NonReentrantCompressorSerializedAndIdentical) {
  Fixture f;
  const auto make = [] {
    core::HierAdMoOptions opt;
    opt.upload_compressor = std::make_shared<RandomKCompressor>(0.5, 17);
    return std::make_unique<core::HierAdMo>(opt);
  };
  auto serial_alg = make();
  auto parallel_alg = make();
  ASSERT_FALSE(serial_alg->edge_sync_reentrant());
  const RunResult serial = run_once(f, *serial_alg, 1, nullptr, nullptr);
  const RunResult parallel = run_once(f, *parallel_alg, 4, nullptr, nullptr);
  expect_identical(serial, parallel);
}

#if defined(HFL_SYNC_GUARD)
TEST(EdgeSyncGuardTest, ConcurrentEntryOfSerialOnlySyncFails) {
  std::atomic<int> entries{0};
  const EdgeSyncGuard first(entries, /*reentrant=*/false);
  EXPECT_THROW(EdgeSyncGuard(entries, /*reentrant=*/false), Error);
  // Re-entrant algorithms may overlap freely.
  const EdgeSyncGuard second(entries, /*reentrant=*/true);
  EXPECT_EQ(entries.load(), 2);
}
#endif

TEST(RunSweepTest, MatchesSerialLoopJobForJob) {
  Fixture f;
  sim::FaultConfig fc;
  fc.seed = 42;
  fc.dropout.prob = 0.3;
  const sim::FaultPlan plan(f.topo, f.cfg3, fc);

  std::vector<SweepJob> jobs;
  for (const std::string name : {"HierAdMo", "HierFAVG", "FedNAG"}) {
    SweepJob job;
    job.make_algorithm = [name] { return algs::make_algorithm(name); };
    job.cfg = f.config_for(*algs::make_algorithm(name));
    jobs.push_back(std::move(job));
  }
  jobs[1].schedule = &plan.schedule();  // one faulty job in the middle

  std::vector<RunResult> loop;
  for (const SweepJob& job : jobs) {
    auto alg = job.make_algorithm();
    RunConfig cfg = job.cfg;
    cfg.num_threads = 1;
    Engine engine(f.factory, f.dataset, f.partition, f.topo, cfg);
    loop.push_back(engine.run(*alg, job.schedule));
  }

  SweepOptions opts;
  opts.concurrency = 3;
  const std::vector<SweepResult> sweep =
      run_sweep(f.factory, f.dataset, f.partition, f.topo, jobs, opts);

  ASSERT_EQ(sweep.size(), loop.size());
  EXPECT_EQ(sweep[0].label, "HierAdMo");  // label defaults to the name
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    expect_identical(loop[i], sweep[i].result);
  }
}

TEST(RunSweepTest, RepeatedSweepsIdentical) {
  Fixture f;
  std::vector<SweepJob> jobs(2);
  jobs[0].make_algorithm = [] { return algs::make_algorithm("HierAdMo"); };
  jobs[0].cfg = f.cfg3;
  jobs[1].make_algorithm = [] { return algs::make_algorithm("CFL"); };
  jobs[1].cfg = f.cfg3;
  const auto a = run_sweep(f.factory, f.dataset, f.partition, f.topo, jobs);
  const auto b = run_sweep(f.factory, f.dataset, f.partition, f.topo, jobs);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_identical(a[i].result, b[i].result);
  }
}

}  // namespace
}  // namespace hfl::fl
