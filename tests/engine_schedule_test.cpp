// Parameterized scheduling tests for the simulation engine: for every (τ, π)
// combination the engine must fire edge syncs at t = kτ, cloud syncs at
// t = pτπ, record the right curve points, and stay deterministic.
#include <gtest/gtest.h>

#include "src/common/errors.h"

#include <mutex>
#include <tuple>

#include "src/algs/registry.h"

#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/fl/engine.h"
#include "src/nn/models.h"

namespace hfl::fl {
namespace {

// Records every hook invocation.
class ScheduleSpy final : public Algorithm {
 public:
  std::vector<std::size_t> edge_sync_iters;   // t at each edge_sync call
  std::vector<std::size_t> edge_sync_ks;      // k passed
  std::vector<std::size_t> cloud_sync_iters;  // t at each cloud_sync call
  std::vector<std::size_t> cloud_sync_ps;     // p passed
  std::size_t local_steps = 0;
  std::mutex mutex;

  std::string name() const override { return "spy"; }
  bool three_tier() const override { return true; }
  void local_step(Context& ctx, WorkerState& w) override {
    (void)ctx;
    (void)w;
    std::lock_guard<std::mutex> lock(mutex);
    ++local_steps;
  }
  void edge_sync(Context& ctx, EdgeState& e, std::size_t k) override {
    (void)e;
    edge_sync_iters.push_back(ctx.t);
    edge_sync_ks.push_back(k);
  }
  void cloud_sync(Context& ctx, std::size_t p) override {
    cloud_sync_iters.push_back(ctx.t);
    cloud_sync_ps.push_back(p);
  }
};

struct ScheduleFixture {
  data::TrainTest dataset;
  Topology topo{Topology::uniform(2, 2)};
  data::Partition partition;
  nn::ModelFactory factory;

  ScheduleFixture() {
    Rng rng(3);
    data::SyntheticSpec spec;
    spec.sample_shape = {1, 2, 2};
    spec.num_classes = 2;
    spec.train_size = 40;
    spec.test_size = 20;
    dataset = data::make_synthetic(rng, spec);
    partition = data::partition_iid(dataset.train, 4, rng);
    factory = nn::logistic_regression({1, 2, 2}, 2);
  }
};

using TauPi = std::tuple<std::size_t, std::size_t>;

class ScheduleTest : public ::testing::TestWithParam<TauPi> {};

TEST_P(ScheduleTest, HooksFireAtExactlyTheRightIterations) {
  const auto [tau, pi] = GetParam();
  ScheduleFixture f;
  RunConfig cfg;
  cfg.tau = tau;
  cfg.pi = pi;
  cfg.total_iterations = tau * pi * 3;  // exactly 3 cloud intervals
  cfg.batch_size = 4;
  cfg.seed = 5;
  Engine engine(f.factory, f.dataset, f.partition, f.topo, cfg);

  ScheduleSpy spy;
  const RunResult r = engine.run(spy);

  // Local steps: T iterations × 4 workers.
  EXPECT_EQ(spy.local_steps, cfg.total_iterations * 4);

  // Edge syncs: K = T/τ rounds × 2 edges, at t = kτ with matching k.
  const std::size_t K = cfg.total_iterations / tau;
  ASSERT_EQ(spy.edge_sync_iters.size(), K * 2);
  for (std::size_t i = 0; i < spy.edge_sync_iters.size(); ++i) {
    const std::size_t k = i / 2 + 1;
    EXPECT_EQ(spy.edge_sync_iters[i], k * tau);
    EXPECT_EQ(spy.edge_sync_ks[i], k);
  }

  // Cloud syncs: P = 3, at t = pτπ.
  ASSERT_EQ(spy.cloud_sync_iters.size(), 3u);
  for (std::size_t p = 1; p <= 3; ++p) {
    EXPECT_EQ(spy.cloud_sync_iters[p - 1], p * tau * pi);
    EXPECT_EQ(spy.cloud_sync_ps[p - 1], p);
  }

  // Curve: t = 0 plus one point per cloud sync.
  ASSERT_EQ(r.curve.size(), 4u);
  EXPECT_EQ(r.curve[0].iteration, 0u);
  EXPECT_EQ(r.curve[3].iteration, cfg.total_iterations);
}

INSTANTIATE_TEST_SUITE_P(
    TauPiGrid, ScheduleTest,
    ::testing::Values(TauPi{1, 1}, TauPi{1, 4}, TauPi{3, 1}, TauPi{4, 2},
                      TauPi{5, 3}, TauPi{10, 2}),
    [](const ::testing::TestParamInfo<TauPi>& info) {
      return "tau" + std::to_string(std::get<0>(info.param)) + "_pi" +
             std::to_string(std::get<1>(info.param));
    });

// Two-tier scheduling: edge hooks never fire.
class TwoTierSpy final : public Algorithm {
 public:
  std::size_t edge_calls = 0;
  std::vector<std::size_t> cloud_iters;
  std::string name() const override { return "spy2"; }
  bool three_tier() const override { return false; }
  void local_step(Context&, WorkerState&) override {}
  void edge_sync(Context&, EdgeState&, std::size_t) override { ++edge_calls; }
  void cloud_sync(Context& ctx, std::size_t) override {
    cloud_iters.push_back(ctx.t);
  }
};

TEST(TwoTierScheduleTest, NoEdgeHooksAndTauPeriod) {
  ScheduleFixture f;
  RunConfig cfg;
  cfg.tau = 7;
  cfg.pi = 1;
  cfg.total_iterations = 21;
  cfg.batch_size = 4;
  cfg.seed = 6;
  Engine engine(f.factory, f.dataset, f.partition, f.topo, cfg);
  TwoTierSpy spy;
  engine.run(spy);
  EXPECT_EQ(spy.edge_calls, 0u);
  EXPECT_EQ(spy.cloud_iters, (std::vector<std::size_t>{7, 14, 21}));
}

// Determinism across the (τ, π) grid with a real algorithm.
class DeterminismSweepTest : public ::testing::TestWithParam<TauPi> {};

TEST_P(DeterminismSweepTest, TwoRunsIdentical) {
  const auto [tau, pi] = GetParam();
  ScheduleFixture f;
  RunConfig cfg;
  cfg.tau = tau;
  cfg.pi = pi;
  cfg.total_iterations = tau * pi * 2;
  cfg.batch_size = 4;
  cfg.seed = 8;
  Engine engine(f.factory, f.dataset, f.partition, f.topo, cfg);
  auto a1 = algs::make_algorithm("HierAdMo");
  auto a2 = algs::make_algorithm("HierAdMo");
  const RunResult r1 = engine.run(*a1);
  const RunResult r2 = engine.run(*a2);
  ASSERT_EQ(r1.curve.size(), r2.curve.size());
  for (std::size_t i = 0; i < r1.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.curve[i].test_loss, r2.curve[i].test_loss);
  }
}

INSTANTIATE_TEST_SUITE_P(
    TauPiGrid, DeterminismSweepTest,
    ::testing::Values(TauPi{2, 2}, TauPi{5, 2}, TauPi{4, 4}),
    [](const ::testing::TestParamInfo<TauPi>& info) {
      return "tau" + std::to_string(std::get<0>(info.param)) + "_pi" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace hfl::fl
