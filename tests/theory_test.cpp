// Tests for the convergence-bound machinery (Theorems 1–5) and the empirical
// assumption estimators.
#include <gtest/gtest.h>

#include "src/common/errors.h"

#include <cmath>

#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/nn/models.h"
#include "src/theory/bounds.h"
#include "src/theory/estimators.h"
#include "src/theory/theorem5.h"

namespace hfl::theory {
namespace {

BoundParams default_params() {
  BoundParams p;
  p.eta = 0.01;
  p.beta = 2.0;
  p.rho = 5.0;
  p.gamma = 0.5;
  p.gamma_edge = 0.5;
  p.mu = 1.0;
  return p;
}

TEST(MomentumConstantsTest, RootIdentities) {
  const BoundParams p = default_params();
  const MomentumConstants c = momentum_constants(p);
  // A and B are the roots of γ z² − (1+ηβ)(1+γ) z + (1+ηβ) = 0:
  //   A + B = (1+ηβ)(1+γ)/γ,   A·B = (1+ηβ)/γ.
  const Scalar eb = 1 + p.eta * p.beta;
  EXPECT_NEAR(c.A + c.B, eb * (1 + p.gamma) / p.gamma, 1e-10);
  EXPECT_NEAR(c.A * c.B, eb / p.gamma, 1e-10);
  EXPECT_GT(c.A, c.B);
  EXPECT_GT(c.B, 0.0);
  // U + V = 1 — this is what makes h(0, δ) = 0 exact.
  EXPECT_NEAR(c.U + c.V, 1.0, 1e-12);
}

TEST(MomentumConstantsTest, InvalidParamsThrow) {
  BoundParams p = default_params();
  p.gamma = 0.0;
  EXPECT_THROW(momentum_constants(p), Error);
  p = default_params();
  p.gamma = 1.0;
  EXPECT_THROW(momentum_constants(p), Error);
  p = default_params();
  p.eta = 0.0;
  EXPECT_THROW(momentum_constants(p), Error);
}

TEST(HGapTest, ZeroAtZeroAndOne) {
  const BoundParams p = default_params();
  EXPECT_DOUBLE_EQ(h_gap(p, 0, 3.0), 0.0);
  // h(1, δ) = 0: after one step from a common point the averaged worker
  // update equals the virtual edge update exactly (the gradient divergence
  // needs position drift to compound).
  EXPECT_NEAR(h_gap(p, 1, 3.0), 0.0, 1e-10);
}

TEST(HGapTest, NonNegativeAndIncreasing) {
  const BoundParams p = default_params();
  Scalar prev = 0;
  for (std::size_t x = 1; x <= 60; ++x) {
    const Scalar h = h_gap(p, x, 1.0);
    EXPECT_GE(h, -1e-12) << "x=" << x;
    EXPECT_GE(h, prev - 1e-12) << "x=" << x;  // eq. (39): non-decreasing
    prev = h;
  }
}

TEST(HGapTest, LinearInDelta) {
  const BoundParams p = default_params();
  const Scalar h1 = h_gap(p, 10, 1.0);
  const Scalar h3 = h_gap(p, 10, 3.0);
  EXPECT_NEAR(h3, 3 * h1, 1e-9);
  EXPECT_DOUBLE_EQ(h_gap(p, 10, 0.0), 0.0);
}

TEST(SGapTest, MatchesEquation20) {
  const BoundParams p = default_params();
  // s(τ) = γℓ τ η ρ (γμ + γ + 1) = 0.5·τ·0.01·5·2 = 0.05τ.
  EXPECT_NEAR(s_gap(p, 1), 0.05, 1e-12);
  EXPECT_NEAR(s_gap(p, 20), 1.0, 1e-12);
}

TEST(SGapTest, LinearInTauAndGammaEdge) {
  BoundParams p = default_params();
  const Scalar base = s_gap(p, 10);
  EXPECT_NEAR(s_gap(p, 20), 2 * base, 1e-12);
  p.gamma_edge = 0.25;
  EXPECT_NEAR(s_gap(p, 10), base / 2, 1e-12);
}

TEST(JGapTest, IncreasingInTauAndPi) {
  const BoundParams p = default_params();
  const std::vector<Scalar> deltas{1.0, 2.0};
  const std::vector<Scalar> weights{0.5, 0.5};
  const Scalar j_small = j_gap(p, 5, 2, deltas, weights, 1.5);
  const Scalar j_tau = j_gap(p, 10, 2, deltas, weights, 1.5);
  const Scalar j_pi = j_gap(p, 5, 4, deltas, weights, 1.5);
  EXPECT_GT(j_tau, j_small);
  EXPECT_GT(j_pi, j_small);
}

TEST(JGapTest, MatchesEquation23ByHand) {
  const BoundParams p = default_params();
  const std::vector<Scalar> deltas{1.0};
  const std::vector<Scalar> weights{1.0};
  const std::size_t tau = 4, pi = 3;
  const Scalar expected =
      h_gap(p, tau * pi, 2.0) +
      static_cast<Scalar>(pi + 1) * (h_gap(p, tau, 1.0) + s_gap(p, tau));
  EXPECT_NEAR(j_gap(p, tau, pi, deltas, weights, 2.0), expected, 1e-12);
}

TEST(AlphaTest, PositiveForSmallEta) {
  BoundParams p = default_params();
  p.mu = 0.2;
  EXPECT_GT(alpha(p), 0.0);
}

TEST(AlphaTest, ShrinksWithLargerMu) {
  BoundParams p = default_params();
  p.mu = 0.1;
  const Scalar a_small = alpha(p);
  p.mu = 2.0;
  EXPECT_LT(alpha(p), a_small);
}

Theorem4Inputs feasible_inputs() {
  Theorem4Inputs in;
  in.params = default_params();
  in.params.beta = 1.0;
  in.params.rho = 1.0;
  in.params.mu = 0.2;
  in.tau = 2;
  in.pi = 1;
  in.total_iterations = 100;
  in.omega = 1.0;
  in.sigma = 1.0;
  in.epsilon = 1.0;
  in.delta_edges = {0.01};
  in.edge_weights = {1.0};
  in.delta_global = 0.01;
  in.params.gamma_edge = 0.05;
  return in;
}

TEST(Theorem4Test, FeasibleRegimeGivesPositiveBound) {
  const Theorem4Result r = theorem4_bound(feasible_inputs());
  ASSERT_TRUE(r.feasible) << "denominator " << r.denominator;
  EXPECT_GT(r.bound, 0.0);
}

TEST(Theorem4Test, BoundDecreasesWithT) {
  Theorem4Inputs in = feasible_inputs();
  const Theorem4Result r100 = theorem4_bound(in);
  in.total_iterations = 1000;
  const Theorem4Result r1000 = theorem4_bound(in);
  ASSERT_TRUE(r100.feasible && r1000.feasible);
  // O(1/T): ten times the iterations, a tenth of the bound.
  EXPECT_NEAR(r1000.bound, r100.bound / 10, r100.bound * 1e-9);
}

TEST(Theorem4Test, LargeDiversityBreaksFeasibility) {
  Theorem4Inputs in = feasible_inputs();
  in.delta_edges = {100.0};
  in.delta_global = 100.0;
  const Theorem4Result r = theorem4_bound(in);
  EXPECT_FALSE(r.feasible);
  EXPECT_DOUBLE_EQ(r.bound, 0.0);
}

TEST(Theorem4Test, ValidatesInputs) {
  Theorem4Inputs in = feasible_inputs();
  in.total_iterations = 101;  // not a multiple of τπ = 2
  EXPECT_THROW(theorem4_bound(in), Error);
}

// ------------------------- Theorem 5 -------------------------

TEST(Theorem5Test, ClampMatchesEquation7) {
  EXPECT_DOUBLE_EQ(clamp_gamma_edge(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(clamp_gamma_edge(0.4), 0.4);
  EXPECT_DOUBLE_EQ(clamp_gamma_edge(0.995), 0.99);
}

TEST(Theorem5Test, AnalyticMoments) {
  const Moments a = adaptive_gamma_moments();
  EXPECT_DOUBLE_EQ(a.mean, 0.25);
  EXPECT_NEAR(a.variance, 5.0 / 48.0, 1e-12);
  const Moments f = fixed_gamma_moments();
  EXPECT_DOUBLE_EQ(f.mean, 0.5);
  EXPECT_NEAR(f.variance, 1.0 / 12.0, 1e-12);
}

TEST(Theorem5Test, MonteCarloMatchesAnalytic) {
  Rng rng(123);
  const Moments mc = simulate_adaptive_gamma(rng, 400000);
  EXPECT_NEAR(mc.mean, 0.25, 0.005);
  EXPECT_NEAR(mc.variance, 5.0 / 48.0, 0.005);
}

TEST(Theorem5Test, AdaptiveExpectedSIsTighter) {
  const Theorem5Comparison c = compare_expected_s(default_params(), 20);
  EXPECT_TRUE(c.adaptive_tighter);
  EXPECT_NEAR(c.s_adaptive / c.s_fixed, 0.5, 1e-9);  // E ratio 1/4 vs 1/2
}

// ------------------------- estimators -------------------------

TEST(EstimatorsTest, NonIidPartitionHasLargerDelta) {
  Rng rng(9);
  data::SyntheticSpec spec;
  spec.sample_shape = {1, 4, 4};
  spec.num_classes = 6;
  spec.train_size = 360;
  spec.test_size = 30;
  spec.separation = 1.0;
  spec.noise = 0.5;
  const data::TrainTest tt = data::make_synthetic(rng, spec);
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  const nn::ModelFactory factory = nn::logistic_regression({1, 4, 4}, 6);

  EstimatorOptions opts;
  opts.probe_points = 3;
  opts.batch_size = 90;

  const data::Partition iid = data::partition_iid(tt.train, 4, rng);
  const data::Partition skewed =
      data::partition_by_class(tt.train, 4, 2, rng);

  const AssumptionEstimates e_iid =
      estimate_assumptions(factory, tt.train, iid, topo, opts);
  const AssumptionEstimates e_skew =
      estimate_assumptions(factory, tt.train, skewed, topo, opts);

  EXPECT_GT(e_skew.delta_global, e_iid.delta_global);
  EXPECT_GT(e_iid.rho, 0.0);
  EXPECT_GT(e_iid.beta, 0.0);
  ASSERT_EQ(e_iid.delta_edges.size(), 2u);
  EXPECT_NEAR(e_iid.edge_weights[0] + e_iid.edge_weights[1], 1.0, 1e-12);
}

TEST(EstimatorsTest, DeterministicGivenSeed) {
  Rng rng(10);
  data::SyntheticSpec spec;
  spec.sample_shape = {1, 2, 2};
  spec.num_classes = 3;
  spec.train_size = 120;
  spec.test_size = 30;
  const data::TrainTest tt = data::make_synthetic(rng, spec);
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  const nn::ModelFactory factory = nn::logistic_regression({1, 2, 2}, 3);
  const data::Partition part = data::partition_iid(tt.train, 4, rng);

  const AssumptionEstimates a =
      estimate_assumptions(factory, tt.train, part, topo);
  const AssumptionEstimates b =
      estimate_assumptions(factory, tt.train, part, topo);
  EXPECT_DOUBLE_EQ(a.rho, b.rho);
  EXPECT_DOUBLE_EQ(a.beta, b.beta);
  EXPECT_DOUBLE_EQ(a.delta_global, b.delta_global);
}

}  // namespace
}  // namespace hfl::theory
