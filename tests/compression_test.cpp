// Tests for the upload-compression extension (fl/compression) and its
// integration into HierAdMo.
#include "src/fl/compression.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/errors.h"
#include "src/core/hieradmo.h"
#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/fl/engine.h"
#include "src/nn/models.h"

namespace hfl::fl {
namespace {

TEST(TopKTest, KeepsLargestMagnitudes) {
  TopKCompressor c(0.5);
  Vec v{1, -5, 2, -0.5, 4, 0.1};
  const std::size_t sent = c.compress(v);
  EXPECT_EQ(sent, 3u);
  EXPECT_EQ(v, (Vec{0, -5, 2, 0, 4, 0}));
}

TEST(TopKTest, FullKeepIsIdentity) {
  TopKCompressor c(1.0);
  Vec v{3, -1, 2};
  const Vec original = v;
  EXPECT_EQ(c.compress(v), 3u);
  EXPECT_EQ(v, original);
}

TEST(TopKTest, AlwaysKeepsAtLeastOne) {
  TopKCompressor c(0.01);
  Vec v{1, 2, 3};
  EXPECT_EQ(c.compress(v), 1u);
  EXPECT_EQ(v, (Vec{0, 0, 3}));
}

TEST(TopKTest, EmptyVector) {
  TopKCompressor c(0.5);
  Vec v;
  EXPECT_EQ(c.compress(v), 0u);
}

TEST(TopKTest, TiesBreakByAscendingIndex) {
  // Regression: with every magnitude tied, nth_element alone leaves the kept
  // set at the mercy of the library's partition order. The contract is that
  // ties keep the lowest indices, deterministically.
  TopKCompressor c(0.5);
  Vec v{1, -1, 1, -1, 1, -1, 1, -1};
  EXPECT_EQ(c.compress(v), 4u);
  EXPECT_EQ(v, (Vec{1, -1, 1, -1, 0, 0, 0, 0}));
}

TEST(TopKTest, TieHeavyMixedMagnitudes) {
  // Two magnitude classes with ties inside each: the larger class survives
  // whole, and the tied smaller class keeps its lowest indices.
  TopKCompressor c(0.5);
  Vec v{0.5, 2, -0.5, 0.5, -2, 0.5, 0.5, -0.5};
  EXPECT_EQ(c.compress(v), 4u);
  EXPECT_EQ(v, (Vec{0.5, 2, -0.5, 0, -2, 0, 0, 0}));
}

TEST(TopKTest, TieHeavyCompressIsStableAcrossRepeats) {
  TopKCompressor c(0.25);
  Rng rng(9);
  Vec base(64);
  for (auto& x : base) x = (rng.uniform() < 0.5 ? -1.0 : 1.0);  // all tied
  Vec first = base;
  c.compress(first);
  for (int rep = 0; rep < 5; ++rep) {
    Vec again = base;
    c.compress(again);
    EXPECT_EQ(again, first);
  }
}

TEST(TopKTest, InvalidFractionThrows) {
  EXPECT_THROW(TopKCompressor(0.0), Error);
  EXPECT_THROW(TopKCompressor(1.5), Error);
}

TEST(TopKTest, ErrorIsBestPossibleForSparsification) {
  // Property: among all k-sparse approximations, top-k minimizes the L2
  // error — in particular it beats random-k on the same vector.
  Rng rng(1);
  Vec v(256);
  for (auto& x : v) x = rng.normal();
  Vec topk = v, randk = v;
  TopKCompressor tc(0.25);
  RandomKCompressor rc(0.25, 7);
  tc.compress(topk);
  rc.compress(randk);
  Scalar err_top = 0, err_rand = 0;
  for (std::size_t i = 0; i < v.size(); ++i) {
    err_top += (v[i] - topk[i]) * (v[i] - topk[i]);
    err_rand += (v[i] - randk[i]) * (v[i] - randk[i]);
  }
  EXPECT_LT(err_top, err_rand);
}

TEST(RandomKTest, KeepsExactlyKScaled) {
  RandomKCompressor c(0.5, 3);
  Vec v(10, 1.0);
  EXPECT_EQ(c.compress(v), 5u);
  std::size_t nonzero = 0;
  for (const Scalar x : v) {
    if (x != 0) {
      EXPECT_DOUBLE_EQ(x, 2.0);  // scaled by n/k = 2
      ++nonzero;
    }
  }
  EXPECT_EQ(nonzero, 5u);
}

TEST(RandomKTest, UnbiasedInExpectation) {
  Vec base{1, -2, 3, -4, 5, -6, 7, -8};
  Vec mean(base.size(), 0.0);
  const int trials = 4000;
  RandomKCompressor c(0.25, 11);
  for (int t = 0; t < trials; ++t) {
    Vec v = base;
    c.compress(v);
    for (std::size_t i = 0; i < v.size(); ++i) mean[i] += v[i] / trials;
  }
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(mean[i], base[i], 0.4) << "coordinate " << i;
  }
}

TEST(QuantizerTest, PreservesSignsAndBoundsError) {
  StochasticQuantizer q(8, 5);
  Rng rng(2);
  Vec v(64);
  for (auto& x : v) x = rng.normal();
  const Vec original = v;
  q.compress(v);
  const Scalar norm = vec::norm(original);
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] != 0) {
      EXPECT_EQ(std::signbit(v[i]), std::signbit(original[i]));
    }
    // Each coordinate moves by at most one quantization step.
    EXPECT_LE(std::abs(v[i] - original[i]), norm / 8 + 1e-12);
  }
}

TEST(QuantizerTest, UnbiasedInExpectation) {
  Vec base{0.3, -0.7, 0.1, 0.9};
  Vec mean(base.size(), 0.0);
  const int trials = 6000;
  StochasticQuantizer q(4, 13);
  for (int t = 0; t < trials; ++t) {
    Vec v = base;
    q.compress(v);
    for (std::size_t i = 0; i < v.size(); ++i) mean[i] += v[i] / trials;
  }
  for (std::size_t i = 0; i < base.size(); ++i) {
    EXPECT_NEAR(mean[i], base[i], 0.03) << "coordinate " << i;
  }
}

TEST(QuantizerTest, ZeroVectorStaysZero) {
  StochasticQuantizer q(4, 1);
  Vec v(8, 0.0);
  q.compress(v);
  for (const Scalar x : v) EXPECT_DOUBLE_EQ(x, 0.0);
}

// ------------------------- HierAdMo integration -------------------------

struct CompressedRunFixture {
  data::TrainTest dataset;
  Topology topo{Topology::uniform(2, 2)};
  data::Partition partition;
  nn::ModelFactory factory;

  CompressedRunFixture() {
    Rng rng(21);
    data::SyntheticSpec spec;
    spec.sample_shape = {1, 2, 2};
    spec.num_classes = 3;
    spec.train_size = 150;
    spec.test_size = 60;
    spec.separation = 1.2;
    spec.noise = 0.5;
    dataset = data::make_synthetic(rng, spec);
    partition = data::partition_iid(dataset.train, 4, rng);
    factory = nn::logistic_regression({1, 2, 2}, 3);
  }

  RunConfig config() const {
    RunConfig cfg;
    cfg.total_iterations = 80;
    cfg.tau = 5;
    cfg.pi = 2;
    cfg.eta = 0.05;
    cfg.batch_size = 8;
    cfg.seed = 22;
    return cfg;
  }
};

TEST(HierAdMoCompressionTest, FullKeepMatchesUncompressed) {
  CompressedRunFixture f;
  Engine engine(f.factory, f.dataset, f.partition, f.topo, f.config());

  core::HierAdMo plain;
  core::HierAdMoOptions opt;
  opt.upload_compressor = std::make_shared<TopKCompressor>(1.0);
  core::HierAdMo compressed(opt);

  const RunResult r1 = engine.run(plain);
  const RunResult r2 = engine.run(compressed);
  ASSERT_EQ(r1.curve.size(), r2.curve.size());
  for (std::size_t i = 0; i < r1.curve.size(); ++i) {
    EXPECT_DOUBLE_EQ(r1.curve[i].test_loss, r2.curve[i].test_loss);
  }
}

TEST(HierAdMoCompressionTest, AggressiveTopKStillLearns) {
  CompressedRunFixture f;
  Engine engine(f.factory, f.dataset, f.partition, f.topo, f.config());
  core::HierAdMoOptions opt;
  opt.upload_compressor = std::make_shared<TopKCompressor>(0.25);
  core::HierAdMo alg(opt);
  const RunResult r = engine.run(alg);
  // Keeping 25% of a 63-parameter model is aggressive; "learns" here means
  // clearly above the 3-class chance level, not full accuracy.
  EXPECT_GT(r.final_accuracy, 0.5);
}

TEST(HierAdMoCompressionTest, QuantizedUploadsStillLearn) {
  CompressedRunFixture f;
  Engine engine(f.factory, f.dataset, f.partition, f.topo, f.config());
  core::HierAdMoOptions opt;
  opt.upload_compressor = std::make_shared<StochasticQuantizer>(16, 31);
  core::HierAdMo alg(opt);
  const RunResult r = engine.run(alg);
  EXPECT_GT(r.final_accuracy, 0.7);
}

}  // namespace
}  // namespace hfl::fl
