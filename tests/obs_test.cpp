// Observability subsystem tests: registry correctness under concurrency,
// Chrome-trace export validity, communication accounting against
// hand-computed byte counts, and the telemetry-off fast path (enabled and
// disabled runs must be bit-identical).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "src/common/thread_pool.h"
#include "src/core/hieradmo.h"
#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/fl/comm_model.h"
#include "src/fl/engine.h"
#include "src/nn/models.h"
#include "src/obs/comm.h"
#include "src/obs/registry.h"
#include "src/obs/trace.h"
#include "src/sim/fault_plan.h"

namespace hfl {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---- Minimal JSON syntax validator (enough to certify trace exports) ----

class JsonValidator {
 public:
  static bool valid(const std::string& s) {
    JsonValidator v(s);
    v.skip_ws();
    if (!v.value()) return false;
    v.skip_ws();
    return v.pos_ == s.size();
  }

 private:
  explicit JsonValidator(const std::string& s) : s_(s) {}

  const std::string& s_;
  std::size_t pos_ = 0;

  bool eof() const { return pos_ >= s_.size(); }
  char peek() const { return s_[pos_]; }
  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' ||
                      peek() == '\r')) {
      ++pos_;
    }
  }
  bool literal(const char* lit) {
    const std::size_t len = std::string(lit).size();
    if (s_.compare(pos_, len, lit) != 0) return false;
    pos_ += len;
    return true;
  }
  bool string() {
    if (eof() || peek() != '"') return false;
    ++pos_;
    while (!eof() && peek() != '"') {
      if (peek() == '\\') {
        ++pos_;
        if (eof()) return false;
      }
      ++pos_;
    }
    if (eof()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    const std::size_t start = pos_;
    if (!eof() && peek() == '-') ++pos_;
    while (!eof() && (std::isdigit(static_cast<unsigned char>(peek())) ||
                      peek() == '.' || peek() == 'e' || peek() == 'E' ||
                      peek() == '+' || peek() == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool value() {
    skip_ws();
    if (eof()) return false;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') return ++pos_, true;
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (eof() || peek() != ':') return false;
      ++pos_;
      if (!value()) return false;
      skip_ws();
      if (eof()) return false;
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') return ++pos_, true;
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (!eof() && peek() == ']') return ++pos_, true;
    for (;;) {
      if (!value()) return false;
      skip_ws();
      if (eof()) return false;
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') return ++pos_, true;
      return false;
    }
  }
};

// Telemetry tests toggle process-global state; this fixture gives each test a
// clean enabled registry and guarantees the switch ends up off again.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::Registry::global().reset();
    obs::Tracer::global().reset();
    obs::CommAccountant::global().reset();
    obs::set_enabled(true);
  }
  void TearDown() override { obs::set_enabled(false); }
};

TEST_F(ObsTest, CountersAreExactUnderConcurrentIncrements) {
  obs::Counter& c = obs::Registry::global().counter("test.concurrent");
  ThreadPool pool(4);
  constexpr std::size_t kN = 200000;
  pool.parallel_for(kN, [&c](std::size_t i) { c.add(i % 3 + 1); });
  std::uint64_t expected = 0;
  for (std::size_t i = 0; i < kN; ++i) expected += i % 3 + 1;
  EXPECT_EQ(c.value(), expected);
}

TEST_F(ObsTest, HistogramBucketsAndSumAreExactUnderConcurrency) {
  obs::Histogram& h =
      obs::Registry::global().histogram("test.hist", "", {1.0, 2.0, 5.0});
  ThreadPool pool(4);
  // Values 0..9, 1000 each: <=1 → {0,1}, <=2 → {2}, <=5 → {3,4,5}, rest over.
  pool.parallel_for(10000, [&h](std::size_t i) {
    h.observe(static_cast<double>(i % 10));
  });
  const auto counts = h.counts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2000u);
  EXPECT_EQ(counts[1], 1000u);
  EXPECT_EQ(counts[2], 3000u);
  EXPECT_EQ(counts[3], 4000u);
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_DOUBLE_EQ(h.sum(), 1000.0 * (0 + 1 + 2 + 3 + 4 + 5 + 6 + 7 + 8 + 9));
}

TEST_F(ObsTest, DisabledRecordingChangesNothing) {
  obs::Counter& c = obs::Registry::global().counter("test.disabled");
  obs::set_enabled(false);
  c.add(7);
  EXPECT_EQ(c.value(), 0u);
  obs::set_enabled(true);
  c.add(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST_F(ObsTest, RegistryHandlesSurviveReset) {
  obs::Counter& c = obs::Registry::global().counter("test.reset");
  c.add(3);
  obs::Registry::global().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(2);  // the same handle keeps working
  EXPECT_EQ(c.value(), 2u);
}

TEST_F(ObsTest, RegistryExportsCsvAndValidJsonl) {
  obs::Registry& reg = obs::Registry::global();
  reg.counter("export.count", "tier=edge").add(5);
  reg.gauge("export.gauge").set(0.25);
  reg.histogram("export.hist", "", {1.0, 10.0}).observe(3.0);

  const std::string csv_path = ::testing::TempDir() + "obs_metrics.csv";
  const std::string jsonl_path = ::testing::TempDir() + "obs_metrics.jsonl";
  reg.write_csv(csv_path);
  reg.write_jsonl(jsonl_path);

  const std::string csv = read_file(csv_path);
  EXPECT_NE(csv.find("counter,export.count,tier=edge,count,5"),
            std::string::npos);
  EXPECT_NE(csv.find("gauge,export.gauge,,value,0.25"), std::string::npos);
  EXPECT_NE(csv.find("histogram,export.hist,,le_10,1"), std::string::npos);

  std::istringstream jsonl(read_file(jsonl_path));
  std::string line;
  std::size_t lines = 0;
  while (std::getline(jsonl, line)) {
    if (line.empty()) continue;
    EXPECT_TRUE(JsonValidator::valid(line)) << line;
    ++lines;
  }
  EXPECT_GE(lines, 3u);
  std::remove(csv_path.c_str());
  std::remove(jsonl_path.c_str());
}

// ---- Engine integration ----

struct EngineFixture {
  data::TrainTest dataset;
  fl::Topology topo{fl::Topology::uniform(2, 2)};
  data::Partition partition;
  nn::ModelFactory factory;
  fl::RunConfig cfg;

  EngineFixture() {
    Rng rng(3);
    data::SyntheticSpec spec;
    spec.sample_shape = {1, 2, 2};
    spec.num_classes = 2;
    spec.train_size = 40;
    spec.test_size = 20;
    dataset = data::make_synthetic(rng, spec);
    partition = data::partition_iid(dataset.train, 4, rng);
    factory = nn::logistic_regression({1, 2, 2}, 2);

    cfg.total_iterations = 8;
    cfg.tau = 2;
    cfg.pi = 2;
    cfg.batch_size = 4;
    cfg.num_threads = 2;
    cfg.seed = 11;
  }

  std::size_t model_dim() const {
    auto model = factory();
    Rng rng(1);
    model->init_params(rng);
    return model->get_params().size();
  }
};

TEST_F(ObsTest, ChromeTraceFromEngineRunIsValidJsonWithOneSpanPerTier) {
  EngineFixture f;
  fl::Engine engine(f.factory, f.dataset, f.partition, f.topo, f.cfg);
  core::HierAdMo alg;
  engine.run(alg);

  const std::string path = ::testing::TempDir() + "obs_trace.json";
  obs::Tracer::global().write_chrome_json(path);
  const std::string json = read_file(path);
  EXPECT_TRUE(JsonValidator::valid(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"worker\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"edge\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"cloud\""), std::string::npos);
  std::remove(path.c_str());

  const std::string flame = obs::Tracer::global().flame_summary();
  EXPECT_NE(flame.find("local_steps"), std::string::npos);
  EXPECT_NE(flame.find("cloud_sync"), std::string::npos);
}

TEST_F(ObsTest, CommBytesMatchHandComputation) {
  EngineFixture f;
  fl::Engine engine(f.factory, f.dataset, f.partition, f.topo, f.cfg);
  core::HierAdMo alg;
  engine.run(alg);

  const std::uint64_t n = f.model_dim();
  const fl::CommProfile profile = fl::comm_profile_for("HierAdMo");
  const std::size_t intervals = f.cfg.total_iterations / f.cfg.tau;   // 4
  const std::size_t cloud_syncs =
      f.cfg.total_iterations / (f.cfg.tau * f.cfg.pi);                // 2
  obs::CommAccountant& comm = obs::CommAccountant::global();

  // One uncompressed cloud sync ships num_edges × edge_upload_vectors
  // model-sized vectors of sizeof(Scalar) bytes each.
  const obs::LinkTotals up = comm.totals(obs::Link::kEdgeToCloud);
  EXPECT_EQ(up.messages, cloud_syncs * f.topo.num_edges());
  EXPECT_EQ(up.logical_bytes,
            cloud_syncs * f.topo.num_edges() *
                static_cast<std::uint64_t>(profile.edge_upload_vectors) * n *
                sizeof(Scalar));
  EXPECT_EQ(up.wire_bytes(), up.logical_bytes);  // lossless

  const obs::LinkTotals wup = comm.totals(obs::Link::kWorkerToEdge);
  EXPECT_EQ(wup.messages, intervals * f.topo.num_workers());
  EXPECT_EQ(wup.logical_bytes,
            intervals * f.topo.num_workers() *
                static_cast<std::uint64_t>(profile.worker_upload_vectors) *
                n * sizeof(Scalar));

  // No two-tier traffic in a three-tier run.
  EXPECT_EQ(comm.totals(obs::Link::kWorkerToCloud).messages, 0u);
}

TEST_F(ObsTest, CompressionSavingsShrinkWireBytesByHandComputedAmount) {
  EngineFixture f;
  fl::Engine engine(f.factory, f.dataset, f.partition, f.topo, f.cfg);
  core::HierAdMoOptions opt;
  opt.upload_compressor = std::make_shared<fl::TopKCompressor>(0.25);
  core::HierAdMo alg(opt);
  engine.run(alg);

  const std::uint64_t n = f.model_dim();
  // TopK keeps ceil(0.25 n) coordinates of each of the 4 uploaded vectors.
  const std::uint64_t kept = (n + 3) / 4;
  const std::size_t uploads =
      (f.cfg.total_iterations / f.cfg.tau) * f.topo.num_workers();
  const obs::LinkTotals wup =
      obs::CommAccountant::global().totals(obs::Link::kWorkerToEdge);
  EXPECT_EQ(wup.logical_bytes, uploads * 4 * n * sizeof(Scalar));
  EXPECT_EQ(wup.saved_bytes, uploads * 4 * (n - kept) * sizeof(Scalar));
  EXPECT_EQ(wup.wire_bytes(), uploads * 4 * kept * sizeof(Scalar));
  EXPECT_LT(wup.wire_bytes(), wup.logical_bytes);
}

TEST_F(ObsTest, EnabledAndDisabledRunsAreBitIdentical) {
  EngineFixture f;
  // A fault schedule exercises the participation trace as well.
  sim::FaultConfig fc;
  fc.seed = 5;
  fc.dropout.prob = 0.3;
  const sim::FaultPlan plan(f.topo, f.cfg, fc);

  fl::Engine engine(f.factory, f.dataset, f.partition, f.topo, f.cfg);

  obs::set_enabled(true);
  core::HierAdMo alg_on;
  const fl::RunResult on = engine.run(alg_on, &plan.schedule());

  obs::set_enabled(false);
  core::HierAdMo alg_off;
  const fl::RunResult off = engine.run(alg_off, &plan.schedule());

  ASSERT_EQ(on.curve.size(), off.curve.size());
  for (std::size_t i = 0; i < on.curve.size(); ++i) {
    EXPECT_EQ(on.curve[i].iteration, off.curve[i].iteration);
    EXPECT_EQ(on.curve[i].test_loss, off.curve[i].test_loss);          // bitwise
    EXPECT_EQ(on.curve[i].test_accuracy, off.curve[i].test_accuracy);  // bitwise
  }
  ASSERT_EQ(on.participation.size(), off.participation.size());
  for (std::size_t i = 0; i < on.participation.size(); ++i) {
    EXPECT_EQ(on.participation[i].interval, off.participation[i].interval);
    EXPECT_EQ(on.participation[i].active_workers,
              off.participation[i].active_workers);
    EXPECT_EQ(on.participation[i].active_edges,
              off.participation[i].active_edges);
    EXPECT_EQ(on.participation[i].rate, off.participation[i].rate);
  }
  EXPECT_EQ(on.worker_miss_counts, off.worker_miss_counts);
  EXPECT_EQ(on.mean_participation_rate, off.mean_participation_rate);
}

TEST_F(ObsTest, CommAccountantWritesCsvAndRendersTable) {
  obs::CommAccountant& comm = obs::CommAccountant::global();
  comm.record(obs::Link::kWorkerToEdge, 0, 100);
  comm.record(obs::Link::kWorkerToEdge, 1, 50);
  comm.record_savings(obs::Link::kWorkerToEdge, 0, 40);

  const obs::LinkTotals t = comm.totals(obs::Link::kWorkerToEdge);
  EXPECT_EQ(t.messages, 2u);
  EXPECT_EQ(t.logical_bytes, 150u);
  EXPECT_EQ(t.wire_bytes(), 110u);

  const auto entities = comm.by_entity(obs::Link::kWorkerToEdge);
  ASSERT_EQ(entities.size(), 2u);
  EXPECT_EQ(entities[0].first, 0u);
  EXPECT_EQ(entities[0].second.wire_bytes(), 60u);

  const std::string path = ::testing::TempDir() + "obs_comm.csv";
  comm.write_csv(path);
  const std::string csv = read_file(path);
  EXPECT_NE(csv.find("worker_to_edge,0,1,100,60"), std::string::npos);
  EXPECT_NE(csv.find("worker_to_edge,all,2,150,110"), std::string::npos);
  EXPECT_NE(comm.table().find("worker_to_edge"), std::string::npos);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace hfl
