// Parameter-plane hot-path coverage: the fused vec kernels, the O(cohort)
// sparse roster, the incremental miss accounting, and the spill-time
// absent-policy replay of sampled populations.
//
//   * Fused kernels (src/common/vec_ops.h): every kernel's scalar tail is
//     built from std::fma so it reproduces the SIMD lanes' rounding exactly.
//     Two observable contracts follow, both asserted here bit-for-bit:
//     references written directly as the documented per-element std::fma
//     expressions must match, and splitting the index range into subspans
//     (which shifts elements between SIMD body and scalar tail) must not
//     change a single bit.
//
//   * Participation::set_cohort_roster must equal the dense set_roster on
//     the equivalent population-sized arrays bitwise — every renormalized
//     weight visits the same members in the same order — including when the
//     sparse and dense entry points interleave on one object.
//
//   * The engine's miss accounting is derived at finalize from per-interval
//     participation tallies; a dense per-interval Participation sweep over
//     the same fault-zoo schedule is the oracle it must match exactly.
//
//   * Sampled virtualized runs with kReset/kDecay absent policies replay the
//     policy per missed interval at restore (src/pop/cohort_store.h); a
//     dense run on the induced schedule applying the policy every interval
//     is the bit-identity oracle, at 1 and 4 threads.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "src/algs/registry.h"
#include "src/common/vec_ops.h"
#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/fl/availability.h"
#include "src/fl/engine.h"
#include "src/nn/models.h"
#include "src/pop/cohort_store.h"
#include "src/sim/fault_plan.h"

namespace hfl::fl {
namespace {

// ---------------------------------------------------------------------------
// Fused kernels.
// ---------------------------------------------------------------------------

// Deterministic pseudo-random fill (values in roughly [-1, 1]).
Vec test_vec(std::size_t n, std::uint64_t salt) {
  Rng rng(0xBEEF ^ salt);
  Vec v(n);
  for (Scalar& e : v) e = 2.0 * rng.uniform() - 1.0;
  return v;
}

// Odd length so the AVX2 body leaves a scalar tail; odd split so subrange
// calls shift elements between body and tail.
constexpr std::size_t kN = 103;
constexpr std::size_t kSplit = 29;

TEST(FusedKernelTest, AxpbyMatchesFmaReference) {
  Vec x = test_vec(kN, 1), y = test_vec(kN, 2), ref = y;
  vec::axpby(0.3, x, 0.7, y);
  for (std::size_t i = 0; i < kN; ++i) ref[i] = std::fma(0.3, x[i], 0.7 * ref[i]);
  EXPECT_EQ(y, ref);
}

TEST(FusedKernelTest, MomentumStepMatchesFmaReference) {
  Vec m = test_vec(kN, 3), g = test_vec(kN, 4), p = test_vec(kN, 5);
  Vec mr = m, pr = p;
  vec::momentum_step(m, g, 0.9, p, 0.05);
  for (std::size_t i = 0; i < kN; ++i) {
    mr[i] = std::fma(0.9, mr[i], g[i]);
    pr[i] = std::fma(-0.05, mr[i], pr[i]);
  }
  EXPECT_EQ(m, mr);
  EXPECT_EQ(p, pr);
}

TEST(FusedKernelTest, DecayTowardMatchesFmaReference) {
  Vec y = test_vec(kN, 6), x = test_vec(kN, 7), ref = y;
  vec::decay_toward(y, x, 0.5);
  for (std::size_t i = 0; i < kN; ++i) ref[i] = std::fma(0.5, ref[i] - x[i], x[i]);
  EXPECT_EQ(y, ref);
}

TEST(FusedKernelTest, NagStepMatchesFmaReference) {
  Vec x = test_vec(kN, 8), y = test_vec(kN, 9), v = test_vec(kN, 10);
  const Vec g = test_vec(kN, 11);
  Vec xr = x, yr = y, vr = v;
  vec::nag_step(x, y, v, g, 0.05, 0.9);
  for (std::size_t i = 0; i < kN; ++i) {
    const Scalar y_new = std::fma(-0.05, g[i], xr[i]);
    vr[i] = y_new - yr[i];
    yr[i] = y_new;
    xr[i] = std::fma(0.9, vr[i], y_new);
  }
  EXPECT_EQ(x, xr);
  EXPECT_EQ(y, yr);
  EXPECT_EQ(v, vr);
}

TEST(FusedKernelTest, SlowmoStepMatchesFmaReference) {
  Vec x = test_vec(kN, 12), m = test_vec(kN, 13);
  const Vec agg = test_vec(kN, 14);
  Vec xr = x, mr = m;
  vec::slowmo_step(x, agg, m, 0.8, 0.7);
  for (std::size_t i = 0; i < kN; ++i) {
    mr[i] = std::fma(0.8, mr[i], xr[i] - agg[i]);
    xr[i] = std::fma(-0.7, mr[i], xr[i]);
  }
  EXPECT_EQ(x, xr);
  EXPECT_EQ(m, mr);
}

TEST(FusedKernelTest, CosineNegMatchesNegatedCopy) {
  const Vec x = test_vec(kN, 15), y = test_vec(kN, 16);
  Vec neg = x;
  vec::scale(neg, -1.0);
  EXPECT_EQ(vec::cosine_neg(x, y), vec::cosine(neg, y));
}

TEST(FusedKernelTest, SubrangeCallsAreBitIdentical) {
  // One representative per kernel shape: the split shifts every element's
  // body/tail assignment, so agreement means the SIMD body and std::fma tail
  // compute identical bits.
  const Vec x0 = test_vec(kN, 20), g0 = test_vec(kN, 21), u0 = test_vec(kN, 22);
  {
    Vec a = x0, b = x0;
    vec::axpby(0.3, g0, 0.7, a);
    vec::axpby(0.3, std::span(g0).subspan(0, kSplit), 0.7,
               std::span(b).subspan(0, kSplit));
    vec::axpby(0.3, std::span(g0).subspan(kSplit), 0.7,
               std::span(b).subspan(kSplit));
    EXPECT_EQ(a, b);
  }
  {
    Vec a = x0, b = x0;
    vec::scale_add_scale(a, 0.4, g0, 0.6);
    vec::scale_add_scale(std::span(b).subspan(0, kSplit), 0.4,
                         std::span(g0).subspan(0, kSplit), 0.6);
    vec::scale_add_scale(std::span(b).subspan(kSplit), 0.4,
                         std::span(g0).subspan(kSplit), 0.6);
    EXPECT_EQ(a, b);
  }
  {
    Vec ya = x0, yb = x0;
    vec::decay_toward(ya, g0, 0.25);
    vec::decay_toward(std::span(yb).subspan(0, kSplit),
                      std::span(g0).subspan(0, kSplit), 0.25);
    vec::decay_toward(std::span(yb).subspan(kSplit),
                      std::span(g0).subspan(kSplit), 0.25);
    EXPECT_EQ(ya, yb);
  }
  {
    Vec xa = x0, xb = x0;
    vec::descent_drift(xa, g0, u0, 0.05, 0.9);
    vec::descent_drift(std::span(xb).subspan(0, kSplit),
                       std::span(g0).subspan(0, kSplit),
                       std::span(u0).subspan(0, kSplit), 0.05, 0.9);
    vec::descent_drift(std::span(xb).subspan(kSplit),
                       std::span(g0).subspan(kSplit),
                       std::span(u0).subspan(kSplit), 0.05, 0.9);
    EXPECT_EQ(xa, xb);
  }
  {
    Vec xa = x0, xb = x0, pa = u0, pb = u0;
    Vec ma = g0, mb = g0;
    vec::momentum_step(ma, x0, 0.9, pa, 0.05);
    vec::momentum_step(std::span(mb).subspan(0, kSplit),
                       std::span(x0).subspan(0, kSplit), 0.9,
                       std::span(pb).subspan(0, kSplit), 0.05);
    vec::momentum_step(std::span(mb).subspan(kSplit),
                       std::span(x0).subspan(kSplit), 0.9,
                       std::span(pb).subspan(kSplit), 0.05);
    EXPECT_EQ(ma, mb);
    EXPECT_EQ(pa, pb);
  }
}

// ---------------------------------------------------------------------------
// Shared engine fixture (mirrors tests/pop_parity_test.cpp at smaller scale).
// ---------------------------------------------------------------------------

struct Fixture {
  data::TrainTest dataset;
  Topology topo{Topology::uniform(4, 16)};  // 64 workers
  data::Partition partition;
  nn::ModelFactory factory;
  RunConfig cfg;

  Fixture() {
    Rng rng(3);
    data::SyntheticSpec spec;
    spec.sample_shape = {1, 3, 3};
    spec.num_classes = 3;
    spec.train_size = 256;
    spec.test_size = 32;
    dataset = data::make_synthetic(rng, spec);
    partition = data::partition_iid(dataset.train, topo.num_workers(), rng);
    factory = nn::logistic_regression({1, 3, 3}, 3);

    cfg.total_iterations = 12;
    cfg.tau = 2;
    cfg.pi = 2;
    cfg.batch_size = 2;
    cfg.seed = 5;
  }
};

sim::FaultConfig fault_zoo() {
  sim::FaultConfig fc;
  fc.seed = 42;
  fc.dropout.prob = 0.25;
  fc.churn.p_fail = 0.15;
  fc.churn.p_recover = 0.6;
  fc.edge_outage.prob = 0.1;
  return fc;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].test_loss, b.curve[i].test_loss);
    EXPECT_EQ(a.curve[i].test_accuracy, b.curve[i].test_accuracy);
  }
  EXPECT_EQ(a.final_params, b.final_params);
  EXPECT_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.worker_miss_counts, b.worker_miss_counts);
  EXPECT_EQ(a.mean_participation_rate, b.mean_participation_rate);
}

// ---------------------------------------------------------------------------
// Sparse roster vs dense set_roster.
// ---------------------------------------------------------------------------

void expect_same_view(const Participation& a, const Participation& b,
                      const Topology& topo) {
  ASSERT_EQ(a.num_workers(), b.num_workers());
  EXPECT_EQ(a.num_active(), b.num_active());
  for (std::size_t w = 0; w < a.num_workers(); ++w) {
    EXPECT_EQ(a.worker_active(w), b.worker_active(w)) << "worker " << w;
    // Weights are only defined for active workers: the dense rebuild leaves
    // stale in-edge weights on workers that went inactive (never read),
    // while the sparse path restores its all-absent baseline.
    if (!a.worker_active(w)) continue;
    EXPECT_EQ(a.weight_in_edge(w), b.weight_in_edge(w)) << "worker " << w;
    EXPECT_EQ(a.weight_global(w), b.weight_global(w)) << "worker " << w;
  }
  for (std::size_t e = 0; e < topo.num_edges(); ++e) {
    EXPECT_EQ(a.edge_active(e), b.edge_active(e)) << "edge " << e;
    EXPECT_EQ(a.edge_weight_global(e), b.edge_weight_global(e)) << "edge " << e;
    EXPECT_EQ(a.active_workers_of_edge(e), b.active_workers_of_edge(e))
        << "edge " << e;
  }
}

TEST(SparseRosterTest, MatchesDenseSetRosterBitwise) {
  const Topology topo = Topology::uniform(4, 16);
  const std::size_t N = topo.num_workers();
  std::vector<Scalar> weights(N);
  Rng rng(77);
  for (Scalar& w : weights) w = 1.0 + 10.0 * rng.uniform();

  Participation sparse(topo, nullptr, weights, /*edge_faults=*/true);
  Participation dense(topo, nullptr, weights, /*edge_faults=*/true);

  std::vector<WorkerId> cohort;
  std::vector<std::uint8_t> cohort_up, worker_up(N), edge_up(topo.num_edges());
  std::vector<Scalar> cohort_scale, dense_scale(N);
  for (std::size_t round = 0; round < 12; ++round) {
    // Random ascending cohort (~1/4 of the population), random up bits,
    // random with-replacement-style multiplicities, random edge outages.
    cohort.clear();
    cohort_up.clear();
    cohort_scale.clear();
    std::fill(worker_up.begin(), worker_up.end(), 0);
    std::fill(dense_scale.begin(), dense_scale.end(), 1.0);
    for (std::size_t w = 0; w < N; ++w) {
      if (rng.uniform() > 0.25) continue;
      const bool up = rng.uniform() < 0.8;
      const Scalar mult = 1.0 + static_cast<Scalar>(rng.next_u64() % 3);
      cohort.push_back(w);
      cohort_up.push_back(up ? 1 : 0);
      cohort_scale.push_back(mult);
      worker_up[w] = up ? 1 : 0;
      dense_scale[w] = mult;
    }
    if (cohort.empty()) {
      cohort.push_back(0);
      cohort_up.push_back(1);
      cohort_scale.push_back(1.0);
      worker_up[0] = 1;
    }
    for (std::size_t e = 0; e < edge_up.size(); ++e) {
      edge_up[e] = rng.uniform() < 0.85 ? 1 : 0;
    }

    SCOPED_TRACE("round " + std::to_string(round));
    sparse.set_cohort_roster(cohort, cohort_up, edge_up, &cohort_scale);
    dense.set_roster(worker_up, edge_up, &dense_scale);
    expect_same_view(sparse, dense, topo);

    // Interleave forms on the SAME object mid-sequence: the sparse state
    // must rebuild its baseline after a dense call.
    if (round == 5) {
      sparse.set_roster(worker_up, edge_up, &dense_scale);
      expect_same_view(sparse, dense, topo);
    }
  }
}

// ---------------------------------------------------------------------------
// Incremental miss accounting vs a dense per-interval sweep.
// ---------------------------------------------------------------------------

TEST(MissAccountingTest, MatchesDensePerIntervalSweep) {
  Fixture f;
  const sim::FaultPlan plan(f.topo, f.cfg, fault_zoo());
  const ParticipationSchedule& schedule = plan.schedule();

  auto alg = algs::make_algorithm("HierAdMo");
  RunConfig cfg = f.cfg;
  cfg.num_threads = 2;
  Engine engine(f.factory, f.dataset, f.partition, f.topo, cfg);
  const RunResult r = engine.run(*alg, &schedule);

  // Oracle: replay the schedule through a fresh Participation and count
  // absences with the per-interval sweep the engine no longer runs.
  std::vector<Scalar> ones(f.topo.num_workers(), 1.0);
  Participation sweep(f.topo, &schedule, ones, /*edge_faults=*/true);
  std::vector<std::size_t> expected(f.topo.num_workers(), 0);
  const std::size_t intervals = f.cfg.total_iterations / f.cfg.tau;
  for (std::size_t k = 1; k <= intervals; ++k) {
    sweep.begin_interval(k);
    for (std::size_t w = 0; w < expected.size(); ++w) {
      if (!sweep.worker_active(w)) ++expected[w];
    }
  }
  EXPECT_EQ(r.worker_miss_counts, expected);
}

// ---------------------------------------------------------------------------
// Sampled-population absent-policy replay and turnover thread invariance.
// ---------------------------------------------------------------------------

RunResult run_sampled(const Fixture& f, const std::string& alg_name,
                      std::size_t threads, std::size_t cohort_size,
                      const AvailabilityOracle* oracle) {
  auto alg = algs::make_algorithm(alg_name);
  RunConfig cfg = f.cfg;
  cfg.num_threads = threads;
  Engine engine(f.factory, f.dataset, f.partition, f.topo, cfg);
  pop::VirtConfig virt;
  virt.cohort_size = cohort_size;
  pop::CohortStore store(f.factory, f.dataset, f.partition, f.topo, cfg, virt);
  engine.set_cohort_provider(&store);
  return engine.run_with_oracle(*alg, oracle);
}

// The dense schedule a sampled run induces: a worker is up iff it is in
// interval k's cohort AND the oracle keeps it up.
ParticipationSchedule induced_schedule(const Fixture& f,
                                       std::size_t cohort_size,
                                       const AvailabilityOracle* oracle,
                                       AbsentPolicy policy, Scalar decay) {
  pop::VirtConfig virt;
  virt.cohort_size = cohort_size;
  pop::CohortStore replica(f.factory, f.dataset, f.partition, f.topo, f.cfg,
                           virt);
  ParticipationSchedule s;
  s.num_intervals = f.cfg.total_iterations / f.cfg.tau;
  s.num_workers = f.topo.num_workers();
  s.num_edges = f.topo.num_edges();
  s.worker_up.assign(s.num_intervals * s.num_workers, 0);
  s.slowdown.assign(s.num_intervals * s.num_workers, 1.0);
  s.edge_up.assign(s.num_intervals * s.num_edges, 1);
  s.absent_policy = policy;
  s.absent_decay = decay;

  std::vector<WorkerId> ids;
  std::vector<Scalar> mult;
  for (std::size_t k = 1; k <= s.num_intervals; ++k) {
    replica.sample_cohort(k, ids, mult);
    for (const WorkerId id : ids) {
      const bool up = oracle == nullptr || oracle->worker_available(k, id);
      s.worker_up[(k - 1) * s.num_workers + id] = up ? 1 : 0;
    }
    if (oracle != nullptr) {
      for (std::size_t e = 0; e < s.num_edges; ++e) {
        s.edge_up[(k - 1) * s.num_edges + e] =
            oracle->edge_available(k, e) ? 1 : 0;
      }
    }
  }
  return s;
}

class AbsentReplayTest : public ::testing::TestWithParam<AbsentPolicy> {};

TEST_P(AbsentReplayTest, SampledRunMatchesDenseInducedSchedule) {
  Fixture f;
  constexpr std::size_t kCohort = 16;  // of 64: turnover every interval

  // Fault zoo on top of the cohort sampling, with the policy under test.
  const sim::FaultPlan plan(f.topo, f.cfg, fault_zoo());
  ParticipationSchedule faults = plan.schedule();
  faults.absent_policy = GetParam();
  faults.absent_decay = 0.5;
  const ScheduleOracle oracle(faults);

  const RunResult sampled = run_sampled(f, "HierAdMo", 4, kCohort, &oracle);

  const ParticipationSchedule induced =
      induced_schedule(f, kCohort, &oracle, GetParam(), 0.5);
  auto dense_alg = algs::make_algorithm("HierAdMo");
  RunConfig cfg = f.cfg;
  cfg.num_threads = 4;
  Engine dense(f.factory, f.dataset, f.partition, f.topo, cfg);
  const RunResult reference = dense.run(*dense_alg, &induced);

  expect_identical(reference, sampled);
}

TEST_P(AbsentReplayTest, TurnoverIsThreadCountInvariant) {
  Fixture f;
  const sim::FaultPlan plan(f.topo, f.cfg, fault_zoo());
  ParticipationSchedule faults = plan.schedule();
  faults.absent_policy = GetParam();
  faults.absent_decay = 0.5;
  const ScheduleOracle oracle(faults);

  // Spill serialization and restore replay run on the engine pool; 1 vs 4
  // threads must not move a bit.
  const RunResult serial = run_sampled(f, "HierAdMo", 1, 16, &oracle);
  const RunResult parallel = run_sampled(f, "HierAdMo", 4, 16, &oracle);
  expect_identical(serial, parallel);
}

INSTANTIATE_TEST_SUITE_P(Policies, AbsentReplayTest,
                         ::testing::Values(AbsentPolicy::kHold,
                                           AbsentPolicy::kReset,
                                           AbsentPolicy::kDecay),
                         [](const ::testing::TestParamInfo<AbsentPolicy>& i) {
                           switch (i.param) {
                             case AbsentPolicy::kHold: return "Hold";
                             case AbsentPolicy::kReset: return "Reset";
                             case AbsentPolicy::kDecay: return "Decay";
                           }
                           return "Unknown";
                         });

}  // namespace
}  // namespace hfl::fl
