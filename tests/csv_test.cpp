// Tests for common/csv and common/logging.
#include "src/common/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/common/errors.h"
#include "src/common/logging.h"

namespace hfl {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "csv_test_out.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter w(path_);
    w.write_header({"a", "b"});
    w.write_row({"1", "2"});
  }
  EXPECT_EQ(read_file(path_), "a,b\n1,2\n");
}

TEST_F(CsvTest, EscapesCommasAndQuotes) {
  {
    CsvWriter w(path_);
    w.write_row({"x,y", "he said \"hi\"", "plain"});
  }
  EXPECT_EQ(read_file(path_), "\"x,y\",\"he said \"\"hi\"\"\",plain\n");
}

TEST_F(CsvTest, ScalarRowRoundTrips) {
  {
    CsvWriter w(path_);
    w.write_row_scalars({1.5, -0.25, 1e-9});
  }
  const std::string content = read_file(path_);
  EXPECT_NE(content.find("1.5"), std::string::npos);
  EXPECT_NE(content.find("-0.25"), std::string::npos);
  EXPECT_NE(content.find("1e-09"), std::string::npos);
}

TEST_F(CsvTest, FormatScalarPrecision) {
  EXPECT_EQ(CsvWriter::format_scalar(0.5), "0.5");
  const std::string pi = CsvWriter::format_scalar(3.14159265358979);
  EXPECT_NE(pi.find("3.14159265"), std::string::npos);
}

TEST_F(CsvTest, ScalarsRoundTripBitExactly) {
  // max_digits10 precision: a value read back from the file must be the
  // identical double, so exported curves/telemetry diff bit-exactly.
  const std::vector<Scalar> values = {0.1,
                                      1.0 / 3.0,
                                      3.141592653589793,
                                      -2.2250738585072014e-308,
                                      6.02214076e23,
                                      0.1 + 0.2};
  for (const Scalar v : values) {
    EXPECT_EQ(std::stod(CsvWriter::format_scalar(v)), v)
        << CsvWriter::format_scalar(v);
  }
  {
    CsvWriter w(path_);
    w.write_row_scalars(values);
  }
  std::istringstream row(read_file(path_));
  std::string field;
  std::size_t i = 0;
  while (std::getline(row, field, ',')) {
    ASSERT_LT(i, values.size());
    EXPECT_EQ(std::stod(field), values[i]) << field;
    ++i;
  }
  EXPECT_EQ(i, values.size());
}

TEST(CsvWriterTest, CreatesMissingParentDirectories) {
  const std::string dir = ::testing::TempDir() + "csv_nested_a/b";
  const std::string path = dir + "/out.csv";
  {
    CsvWriter w(path);
    w.write_row({"x"});
  }
  EXPECT_EQ(read_file(path), "x\n");
  std::remove(path.c_str());
}

TEST(CsvWriterTest, BadPathThrows) {
  // Parent "directory" is actually a regular file: create_directories fails
  // and the writer must surface that as an hfl::Error.
  const std::string blocker = ::testing::TempDir() + "csv_blocker_file";
  { std::ofstream(blocker) << "not a directory"; }
  EXPECT_THROW(CsvWriter(blocker + "/sub/file.csv"), Error);
  std::remove(blocker.c_str());
}

TEST(LoggingTest, LevelFiltering) {
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
  // These must not crash; visual output is not asserted.
  log_message(LogLevel::kDebug, "dropped");
  log_message(LogLevel::kWarn, "kept");
  HFL_INFO() << "streamed " << 42;
  set_log_level(old_level);
}

}  // namespace
}  // namespace hfl
