// Tests for common/thread_pool.
#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace hfl {
namespace {

TEST(ThreadPoolTest, RunsAllIndicesExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ZeroIterationsIsNoop) {
  ThreadPool pool(2);
  bool touched = false;
  pool.parallel_for(0, [&](std::size_t) { touched = true; });
  EXPECT_FALSE(touched);
}

TEST(ThreadPoolTest, SingleIterationRunsInline) {
  ThreadPool pool(2);
  int count = 0;
  pool.parallel_for(1, [&](std::size_t i) {
    EXPECT_EQ(i, 0u);
    ++count;
  });
  EXPECT_EQ(count, 1);
}

TEST(ThreadPoolTest, MoreWorkThanThreads) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  pool.parallel_for(10000, [&](std::size_t i) {
    sum.fetch_add(static_cast<long>(i));
  });
  EXPECT_EQ(sum.load(), 10000L * 9999 / 2);
}

TEST(ThreadPoolTest, ReusableAcrossCalls) {
  ThreadPool pool(4);
  for (int round = 0; round < 50; ++round) {
    std::atomic<int> count{0};
    pool.parallel_for(64, [&](std::size_t) { count.fetch_add(1); });
    EXPECT_EQ(count.load(), 64);
  }
}

TEST(ThreadPoolTest, PropagatesExceptions) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(100,
                                 [](std::size_t i) {
                                   if (i == 37) {
                                     throw std::runtime_error("boom");
                                   }
                                 }),
               std::runtime_error);
  // Pool must still be usable afterwards.
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, NestedParallelForRunsInline) {
  // A parallel_for issued from inside one of the pool's own tasks must not
  // enqueue onto the shared queue (the workers could all be blocked waiting
  // on each other's nested calls — deadlock). It runs inline on the calling
  // worker instead; this test deadlocks on regression, so keep iteration
  // counts larger than the thread count to force the contended case.
  ThreadPool pool(2);
  std::vector<std::atomic<int>> hits(8 * 16);
  pool.parallel_for(8, [&](std::size_t outer) {
    pool.parallel_for(16, [&](std::size_t inner) {
      hits[outer * 16 + inner].fetch_add(1);
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, NestedParallelForPropagatesExceptions) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(4,
                                 [&](std::size_t) {
                                   pool.parallel_for(4, [](std::size_t i) {
                                     if (i == 2) {
                                       throw std::runtime_error("inner");
                                     }
                                   });
                                 }),
               std::runtime_error);
  std::atomic<int> count{0};
  pool.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 8);
}

TEST(ThreadPoolTest, NestedCallIntoDifferentPoolStillParallel) {
  // Inline execution only applies to re-entry into the *same* pool; a task
  // may freely fan out onto a different pool.
  ThreadPool outer(2);
  ThreadPool inner(2);
  std::atomic<int> count{0};
  outer.parallel_for(4, [&](std::size_t) {
    inner.parallel_for(8, [&](std::size_t) { count.fetch_add(1); });
  });
  EXPECT_EQ(count.load(), 32);
}

TEST(ThreadPoolTest, DefaultSizeUsesHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, StaticPartitioningIsDisjoint) {
  // With block partitioning each index is visited by exactly one thread, so
  // per-index writes need no synchronization.
  ThreadPool pool(8);
  std::vector<int> data(5000, 0);
  pool.parallel_for(5000, [&](std::size_t i) { data[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(data[i], static_cast<int>(i));
  }
}

}  // namespace
}  // namespace hfl
