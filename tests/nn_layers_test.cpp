// Tests for the individual NN layers: shapes, known values, backward-pass
// correctness against numerical differentiation (per-layer, via a one-layer
// model), and stateless-layer behaviours.
#include <gtest/gtest.h>

#include <cmath>

#include "src/nn/activations.h"
#include "src/nn/conv2d.h"
#include "src/nn/dense.h"
#include "src/nn/dropout.h"
#include "src/nn/flatten.h"
#include "src/nn/gradcheck.h"
#include "src/nn/loss.h"
#include "src/nn/pool2d.h"
#include "src/nn/residual.h"
#include "src/nn/sequential.h"

namespace hfl::nn {
namespace {

TEST(DenseTest, ForwardKnownValues) {
  Dense d(2, 2);
  // W = [[1, 2], [3, 4]], b = [10, 20].
  d.params()[0]->data() = {1, 2, 3, 4};
  d.params()[1]->data() = {10, 20};
  Tensor x({1, 2}, Vec{5, 6});
  Tensor y = d.forward(x, true);
  // y = x W^T + b = [5+12+10, 15+24+20].
  EXPECT_DOUBLE_EQ(y[0], 27.0);
  EXPECT_DOUBLE_EQ(y[1], 59.0);
}

TEST(DenseTest, BackwardShapes) {
  Dense d(3, 4);
  Rng rng(1);
  d.init_params(rng);
  Tensor x = Tensor::randn({5, 3}, rng);
  Tensor y = d.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{5, 4}));
  Tensor gin = d.backward(Tensor::randn({5, 4}, rng));
  EXPECT_EQ(gin.shape(), x.shape());
}

TEST(DenseTest, RejectsWrongInputWidth) {
  Dense d(3, 4);
  Tensor x({2, 5});
  EXPECT_THROW(d.forward(x, true), Error);
}

TEST(DenseTest, GradAccumulatesAcrossCalls) {
  Dense d(2, 2);
  Rng rng(2);
  d.init_params(rng);
  Tensor x = Tensor::randn({1, 2}, rng);
  Tensor g = Tensor::randn({1, 2}, rng);
  d.forward(x, true);
  d.backward(g);
  const Vec once = d.grads()[0]->data();
  d.forward(x, true);
  d.backward(g);
  for (std::size_t i = 0; i < once.size(); ++i) {
    EXPECT_NEAR(d.grads()[0]->data()[i], 2 * once[i], 1e-12);
  }
  d.zero_grads();
  for (const Scalar v : d.grads()[0]->data()) EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(ReLUTest, ForwardAndBackwardMask) {
  ReLU r;
  Tensor x({1, 4}, Vec{-1, 0, 2, -3});
  Tensor y = r.forward(x, true);
  EXPECT_EQ(y.data(), (Vec{0, 0, 2, 0}));
  Tensor g({1, 4}, Vec{1, 1, 1, 1});
  Tensor gin = r.backward(g);
  EXPECT_EQ(gin.data(), (Vec{0, 0, 1, 0}));
}

TEST(TanhTest, ForwardMatchesStdTanh) {
  Tanh t;
  Tensor x({1, 3}, Vec{-1, 0, 1});
  Tensor y = t.forward(x, true);
  EXPECT_NEAR(y[0], std::tanh(-1.0), 1e-12);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_NEAR(y[2], std::tanh(1.0), 1e-12);
}

TEST(SigmoidTest, ForwardRange) {
  Sigmoid s;
  Tensor x({1, 3}, Vec{-100, 0, 100});
  Tensor y = s.forward(x, true);
  EXPECT_NEAR(y[0], 0.0, 1e-12);
  EXPECT_DOUBLE_EQ(y[1], 0.5);
  EXPECT_NEAR(y[2], 1.0, 1e-12);
}

TEST(MaxPoolTest, ForwardPicksMaxAndRoutesGradient) {
  MaxPool2d p(2);
  Tensor x({1, 1, 2, 2}, Vec{1, 5, 3, 2});
  Tensor y = p.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{1, 1, 1, 1}));
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  Tensor g({1, 1, 1, 1}, Vec{7});
  Tensor gin = p.backward(g);
  EXPECT_EQ(gin.data(), (Vec{0, 7, 0, 0}));
}

TEST(MaxPoolTest, RejectsIndivisibleInput) {
  MaxPool2d p(2);
  Tensor x({1, 1, 3, 4});
  EXPECT_THROW(p.forward(x, true), Error);
}

TEST(AvgPoolTest, ForwardAveragesAndSpreadsGradient) {
  AvgPool2d p(2);
  Tensor x({1, 1, 2, 2}, Vec{1, 2, 3, 6});
  Tensor y = p.forward(x, true);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  Tensor g({1, 1, 1, 1}, Vec{8});
  Tensor gin = p.backward(g);
  EXPECT_EQ(gin.data(), (Vec{2, 2, 2, 2}));
}

TEST(FlattenTest, RoundTripsShape) {
  Flatten f;
  Rng rng(3);
  Tensor x = Tensor::randn({2, 3, 4, 5}, rng);
  Tensor y = f.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 60}));
  Tensor gin = f.backward(y);
  EXPECT_EQ(gin.shape(), x.shape());
}

TEST(DropoutTest, EvalModeIsIdentity) {
  Dropout d(0.5);
  Rng rng(4);
  d.init_params(rng);
  Tensor x = Tensor::randn({2, 10}, rng);
  Tensor y = d.forward(x, /*train=*/false);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_DOUBLE_EQ(y[i], x[i]);
}

TEST(DropoutTest, TrainModeZeroesAndRescales) {
  Dropout d(0.5);
  Rng rng(5);
  d.init_params(rng);
  Tensor x = Tensor::full({1, 1000}, 1.0);
  Tensor y = d.forward(x, /*train=*/true);
  std::size_t zeros = 0;
  for (std::size_t i = 0; i < y.size(); ++i) {
    if (y[i] == 0.0) ++zeros;
    else EXPECT_DOUBLE_EQ(y[i], 2.0);  // 1/(1-0.5)
  }
  EXPECT_NEAR(static_cast<double>(zeros), 500.0, 80.0);
}

TEST(DropoutTest, BackwardUsesSameMask) {
  Dropout d(0.3);
  Rng rng(6);
  d.init_params(rng);
  Tensor x = Tensor::full({1, 100}, 1.0);
  Tensor y = d.forward(x, true);
  Tensor g = Tensor::full({1, 100}, 1.0);
  Tensor gin = d.backward(g);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_DOUBLE_EQ(gin[i], y[i]);  // mask * 1 == forward of all-ones
  }
}

TEST(DropoutTest, InvalidRateThrows) {
  EXPECT_THROW(Dropout(1.0), Error);
  EXPECT_THROW(Dropout(-0.1), Error);
}

TEST(ResidualTest, IdentityShortcutAddsInput) {
  // Inner branch = Dense(2,2) with zero weights -> output equals input.
  auto inner = std::make_unique<Dense>(2, 2);
  inner->params()[0]->fill(0.0);
  inner->params()[1]->fill(0.0);
  Residual res(std::move(inner));
  Tensor x({1, 2}, Vec{3, 4});
  Tensor y = res.forward(x, true);
  EXPECT_EQ(y.data(), (Vec{3, 4}));
}

TEST(ResidualTest, BackwardSumsBranchAndSkip) {
  // Inner = identity-weight dense => grad_in = grad(branch) + grad(skip)
  //       = W^T g + g = 2g.
  auto inner = std::make_unique<Dense>(2, 2);
  inner->params()[0]->data() = {1, 0, 0, 1};
  inner->params()[1]->fill(0.0);
  Residual res(std::move(inner));
  Tensor x({1, 2}, Vec{1, 1});
  res.forward(x, true);
  Tensor g({1, 2}, Vec{5, 7});
  Tensor gin = res.backward(g);
  EXPECT_EQ(gin.data(), (Vec{10, 14}));
}

TEST(ResidualTest, MismatchedShapesThrow) {
  auto inner = std::make_unique<Dense>(2, 3);  // changes width, no shortcut
  Rng rng(7);
  inner->init_params(rng);
  Residual res(std::move(inner));
  Tensor x({1, 2}, Vec{1, 1});
  EXPECT_THROW(res.forward(x, true), Error);
}

TEST(SequentialTest, ParamsAggregateAcrossLayers) {
  Sequential seq;
  seq.emplace<Dense>(4, 3);
  seq.emplace<ReLU>();
  seq.emplace<Dense>(3, 2);
  EXPECT_EQ(seq.num_layers(), 3u);
  EXPECT_EQ(seq.params().size(), 4u);  // two weights + two biases
  EXPECT_EQ(seq.num_params(), 4u * 3 + 3 + 3 * 2 + 2);
}

TEST(Conv2dTest, OutputShapeSamePadding) {
  Conv2d c(1, 2, 3, 1);
  Rng rng(8);
  c.init_params(rng);
  Tensor x = Tensor::randn({2, 1, 8, 8}, rng);
  Tensor y = c.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{2, 2, 8, 8}));
}

TEST(Conv2dTest, OutputShapeValidPadding) {
  Conv2d c(1, 1, 3, 0);
  Rng rng(9);
  c.init_params(rng);
  Tensor x = Tensor::randn({1, 1, 8, 8}, rng);
  Tensor y = c.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<std::size_t>{1, 1, 6, 6}));
}

TEST(Conv2dTest, KnownConvolution) {
  // 1x1 input channel, 1 output channel, 3x3 kernel of all ones, pad 1,
  // constant input => interior outputs = 9, corners = 4, edges = 6.
  Conv2d c(1, 1, 3, 1);
  c.params()[0]->fill(1.0);
  c.params()[1]->fill(0.0);
  Tensor x = Tensor::full({1, 1, 3, 3}, 1.0);
  Tensor y = c.forward(x, true);
  EXPECT_DOUBLE_EQ(y.at({0, 0, 1, 1}), 9.0);
  EXPECT_DOUBLE_EQ(y.at({0, 0, 0, 0}), 4.0);
  EXPECT_DOUBLE_EQ(y.at({0, 0, 0, 1}), 6.0);
}

TEST(Conv2dTest, BiasIsAddedPerChannel) {
  Conv2d c(1, 2, 1, 0);
  c.params()[0]->fill(0.0);
  c.params()[1]->data() = {2.5, -1.5};
  Tensor x = Tensor::full({1, 1, 2, 2}, 1.0);
  Tensor y = c.forward(x, true);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_DOUBLE_EQ(y[i], 2.5);
  for (std::size_t i = 4; i < 8; ++i) EXPECT_DOUBLE_EQ(y[i], -1.5);
}

// Gradient checks: build a one-layer (plus loss) model and compare analytic
// and numeric gradients.
GradCheckResult gradcheck_model(std::unique_ptr<Sequential> net,
                                std::vector<std::size_t> sample_shape,
                                std::size_t classes, std::size_t batch,
                                std::uint64_t seed) {
  Model model(std::move(net), std::make_unique<SoftmaxCrossEntropy>(),
              sample_shape);
  Rng rng(seed);
  model.init_params(rng);
  std::vector<std::size_t> bshape{batch};
  bshape.insert(bshape.end(), sample_shape.begin(), sample_shape.end());
  Tensor x = Tensor::randn(bshape, rng);
  std::vector<std::size_t> labels(batch);
  for (auto& l : labels) l = rng.uniform_index(classes);
  return check_gradients(model, model.get_params(), x, labels, 1e-5, 150);
}

TEST(GradCheckTest, DenseLayer) {
  auto net = std::make_unique<Sequential>();
  net->emplace<Flatten>();
  net->emplace<Dense>(12, 5);
  const auto r = gradcheck_model(std::move(net), {12}, 5, 4, 11);
  EXPECT_LT(r.max_rel_error, 1e-5) << "abs " << r.max_abs_error;
}

TEST(GradCheckTest, DenseReluStack) {
  auto net = std::make_unique<Sequential>();
  net->emplace<Flatten>();
  net->emplace<Dense>(10, 8);
  net->emplace<ReLU>();
  net->emplace<Dense>(8, 4);
  const auto r = gradcheck_model(std::move(net), {10}, 4, 3, 12);
  EXPECT_LT(r.max_rel_error, 1e-4);
}

TEST(GradCheckTest, TanhAndSigmoid) {
  auto net = std::make_unique<Sequential>();
  net->emplace<Flatten>();
  net->emplace<Dense>(6, 6);
  net->emplace<Tanh>();
  net->emplace<Dense>(6, 6);
  net->emplace<Sigmoid>();
  net->emplace<Dense>(6, 3);
  const auto r = gradcheck_model(std::move(net), {6}, 3, 3, 13);
  EXPECT_LT(r.max_rel_error, 1e-4);
}

TEST(GradCheckTest, Conv2dLayer) {
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2d>(2, 3, 3, 1);
  net->emplace<Flatten>();
  net->emplace<Dense>(3 * 6 * 6, 4);
  const auto r = gradcheck_model(std::move(net), {2, 6, 6}, 4, 2, 14);
  EXPECT_LT(r.max_rel_error, 1e-4);
}

TEST(GradCheckTest, Conv2dNoPadding) {
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2d>(1, 2, 3, 0);
  net->emplace<Flatten>();
  net->emplace<Dense>(2 * 4 * 4, 3);
  const auto r = gradcheck_model(std::move(net), {1, 6, 6}, 3, 2, 15);
  EXPECT_LT(r.max_rel_error, 1e-4);
}

TEST(GradCheckTest, MaxPoolStack) {
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2d>(1, 2, 3, 1);
  net->emplace<ReLU>();
  net->emplace<MaxPool2d>(2);
  net->emplace<Flatten>();
  net->emplace<Dense>(2 * 4 * 4, 3);
  const auto r = gradcheck_model(std::move(net), {1, 8, 8}, 3, 2, 16);
  EXPECT_LT(r.max_rel_error, 1e-4);
}

TEST(GradCheckTest, AvgPoolStack) {
  auto net = std::make_unique<Sequential>();
  net->emplace<Conv2d>(1, 2, 3, 1);
  net->emplace<AvgPool2d>(4);
  net->emplace<Flatten>();
  net->emplace<Dense>(2 * 2 * 2, 3);
  const auto r = gradcheck_model(std::move(net), {1, 8, 8}, 3, 2, 17);
  EXPECT_LT(r.max_rel_error, 1e-4);
}

TEST(GradCheckTest, ResidualIdentity) {
  auto inner = std::make_unique<Sequential>();
  inner->emplace<Conv2d>(2, 2, 3, 1);
  inner->emplace<ReLU>();
  inner->emplace<Conv2d>(2, 2, 3, 1);
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Residual>(std::move(inner)));
  net->emplace<Flatten>();
  net->emplace<Dense>(2 * 5 * 5, 3);
  const auto r = gradcheck_model(std::move(net), {2, 5, 5}, 3, 2, 18);
  EXPECT_LT(r.max_rel_error, 1e-4);
}

TEST(GradCheckTest, ResidualProjection) {
  auto inner = std::make_unique<Sequential>();
  inner->emplace<Conv2d>(1, 3, 3, 1);
  auto shortcut = std::make_unique<Conv2d>(1, 3, 1, 0);
  auto net = std::make_unique<Sequential>();
  net->add(std::make_unique<Residual>(std::move(inner), std::move(shortcut)));
  net->emplace<Flatten>();
  net->emplace<Dense>(3 * 5 * 5, 3);
  const auto r = gradcheck_model(std::move(net), {1, 5, 5}, 3, 2, 19);
  EXPECT_LT(r.max_rel_error, 1e-4);
}

}  // namespace
}  // namespace hfl::nn
