// Tests for common/vec_ops: the flat-vector math every FL algorithm uses.
#include "src/common/vec_ops.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/errors.h"
#include "src/common/rng.h"

namespace hfl {
namespace {

TEST(VecOpsTest, AxpyAccumulates) {
  Vec x{1, 2, 3}, y{10, 20, 30};
  vec::axpy(2.0, x, y);
  EXPECT_EQ(y, (Vec{12, 24, 36}));
}

TEST(VecOpsTest, AxpySizeMismatchThrows) {
  Vec x{1, 2}, y{1};
  EXPECT_THROW(vec::axpy(1.0, x, y), Error);
}

TEST(VecOpsTest, ScaleMultiplies) {
  Vec x{1, -2, 4};
  vec::scale(x, -0.5);
  EXPECT_EQ(x, (Vec{-0.5, 1, -2}));
}

TEST(VecOpsTest, LinearCombination) {
  Vec x{1, 2}, y{3, 4}, out(2);
  vec::linear_combination(2.0, x, -1.0, y, out);
  EXPECT_EQ(out, (Vec{-1, 0}));
}

TEST(VecOpsTest, LinearCombinationAliasesSafely) {
  Vec x{1, 2}, y{3, 4};
  vec::linear_combination(1.0, x, 1.0, y, x);
  EXPECT_EQ(x, (Vec{4, 6}));
}

TEST(VecOpsTest, DotProduct) {
  Vec x{1, 2, 3}, y{4, 5, 6};
  EXPECT_DOUBLE_EQ(vec::dot(x, y), 32.0);
}

TEST(VecOpsTest, NormOfUnitVectors) {
  Vec x{3, 4};
  EXPECT_DOUBLE_EQ(vec::norm(x), 5.0);
  Vec zero{0, 0, 0};
  EXPECT_DOUBLE_EQ(vec::norm(zero), 0.0);
}

TEST(VecOpsTest, Distance) {
  Vec x{1, 1}, y{4, 5};
  EXPECT_DOUBLE_EQ(vec::distance(x, y), 5.0);
}

TEST(VecOpsTest, CosineParallel) {
  Vec x{1, 2, 3}, y{2, 4, 6};
  EXPECT_NEAR(vec::cosine(x, y), 1.0, 1e-12);
}

TEST(VecOpsTest, CosineAntiParallel) {
  Vec x{1, 0}, y{-3, 0};
  EXPECT_NEAR(vec::cosine(x, y), -1.0, 1e-12);
}

TEST(VecOpsTest, CosineOrthogonal) {
  Vec x{1, 0}, y{0, 7};
  EXPECT_NEAR(vec::cosine(x, y), 0.0, 1e-12);
}

TEST(VecOpsTest, CosineZeroVectorIsZero) {
  Vec x{0, 0}, y{1, 2};
  EXPECT_DOUBLE_EQ(vec::cosine(x, y), 0.0);
  EXPECT_DOUBLE_EQ(vec::cosine(y, x), 0.0);
}

TEST(VecOpsTest, CosineClampedToValidRange) {
  Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    Vec x(5), y(5);
    for (auto& v : x) v = rng.normal();
    for (auto& v : y) v = rng.normal();
    const Scalar c = vec::cosine(x, y);
    EXPECT_GE(c, -1.0);
    EXPECT_LE(c, 1.0);
  }
}

TEST(VecOpsTest, WeightedSumBasic) {
  std::vector<Vec> vs{{1, 0}, {0, 1}};
  Vec weights{0.25, 0.75};
  Vec out;
  vec::weighted_sum(vs, weights, out);
  EXPECT_EQ(out, (Vec{0.25, 0.75}));
}

TEST(VecOpsTest, WeightedMeanPreservesConstantVectors) {
  // Property: a weighted mean (weights summing to one) of identical vectors
  // returns that vector — the redistribution invariant of FL aggregation.
  std::vector<Vec> vs(4, Vec{3.0, -1.5, 2.25});
  Vec weights{0.1, 0.2, 0.3, 0.4};
  Vec out;
  vec::weighted_sum(vs, weights, out);
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i], vs[0][i], 1e-12);
  }
}

TEST(VecOpsTest, WeightedSumMismatchThrows) {
  std::vector<Vec> vs{{1, 0}, {0, 1}};
  Vec weights{1.0};
  Vec out;
  EXPECT_THROW(vec::weighted_sum(vs, weights, out), Error);
}

TEST(VecOpsTest, FillSetsAllEntries) {
  Vec x(5, 1.0);
  vec::fill(x, -2.5);
  for (const Scalar v : x) EXPECT_DOUBLE_EQ(v, -2.5);
}

TEST(VecOpsTest, MaxAbsDiff) {
  Vec x{1, 2, 3}, y{1, 5, 2.5};
  EXPECT_DOUBLE_EQ(vec::max_abs_diff(x, y), 3.0);
}

}  // namespace
}  // namespace hfl
