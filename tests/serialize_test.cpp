// Tests for model checkpointing (nn/serialize).
#include "src/nn/serialize.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "src/nn/models.h"

namespace hfl::nn {
namespace {

class SerializeTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "hfl_ckpt_test.bin";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(SerializeTest, ParamsRoundTrip) {
  Vec params{1.5, -2.25, 0.0, 1e-12, 3.14159265358979};
  save_params(params, path_);
  EXPECT_EQ(load_params(path_), params);
}

TEST_F(SerializeTest, EmptyVectorRoundTrips) {
  save_params({}, path_);
  EXPECT_TRUE(load_params(path_).empty());
}

TEST_F(SerializeTest, ModelRoundTrip) {
  auto factory = mlp({1, 4, 4}, 8, 3);
  auto model = factory();
  Rng rng(1);
  model->init_params(rng);
  save_model(*model, path_);

  auto fresh = factory();
  Rng rng2(99);
  fresh->init_params(rng2);  // different params
  load_model(*fresh, path_);
  EXPECT_EQ(fresh->get_params(), model->get_params());
}

TEST_F(SerializeTest, RejectsWrongArchitecture) {
  auto model = mlp({1, 4, 4}, 8, 3)();
  Rng rng(1);
  model->init_params(rng);
  save_model(*model, path_);
  auto other = logistic_regression({1, 4, 4}, 3)();
  EXPECT_THROW(load_model(*other, path_), Error);
}

TEST_F(SerializeTest, RejectsBadMagic) {
  {
    std::ofstream out(path_, std::ios::binary);
    out << "NOTACKPTxxxxxxxxxxxxxxxx";
  }
  EXPECT_THROW(load_params(path_), Error);
}

TEST_F(SerializeTest, RejectsTruncatedPayload) {
  Vec params(16, 1.0);
  save_params(params, path_);
  // Truncate the file mid-payload.
  std::ofstream out(path_, std::ios::binary | std::ios::in);
  out.seekp(8 + 8 + 5 * sizeof(Scalar));
  out.close();
  std::ifstream in(path_, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  content.resize(8 + 8 + 5 * sizeof(Scalar));
  std::ofstream rewrite(path_, std::ios::binary | std::ios::trunc);
  rewrite << content;
  rewrite.close();
  EXPECT_THROW(load_params(path_), Error);
}

TEST_F(SerializeTest, MissingFileThrows) {
  EXPECT_THROW(load_params("/nonexistent/ckpt.bin"), Error);
}

}  // namespace
}  // namespace hfl::nn
