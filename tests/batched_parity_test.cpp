// Fused cohort path vs per-worker path: end-to-end bit-identity.
//
// RunConfig::batched routes every active worker's gradient through one
// batched forward/backward (src/nn/cohort.h) instead of per-worker model
// calls. The contract is that nothing observable changes in FP64: for every
// registry algorithm (plus both Mime variants), with and without a fault
// schedule, at 1 and 4 threads, the batched run must reproduce the
// per-worker run exactly — accuracy/loss curve and final parameters,
// EXPECT_EQ not NEAR. Also covered: dense+conv architectures, the
// whole-model fallback for unsupported architectures (mini_resnet's Residual
// blocks), and a loose-tolerance sanity run of the opt-in mixed-precision
// mode.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "src/algs/registry.h"
#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/fl/engine.h"
#include "src/nn/cohort.h"
#include "src/nn/models.h"
#include "src/obs/registry.h"
#include "src/sim/fault_plan.h"

namespace hfl::fl {
namespace {

struct Fixture {
  data::TrainTest dataset;
  Topology topo{Topology::uniform(3, 3)};  // 3 edges × 3 workers
  data::Partition partition;
  nn::ModelFactory factory;
  RunConfig cfg3;  // three-tier
  RunConfig cfg2;  // two-tier (π = 1, matched period)

  explicit Fixture(const char* model = "logistic") {
    Rng rng(3);
    data::SyntheticSpec spec;
    // H, W divisible by 4 so the pooling conv architectures apply too.
    spec.sample_shape = {1, 8, 8};
    spec.num_classes = 3;
    spec.train_size = 90;
    spec.test_size = 30;
    dataset = data::make_synthetic(rng, spec);
    partition = data::partition_iid(dataset.train, topo.num_workers(), rng);
    if (std::string(model) == "cnn") {
      factory = nn::cnn({1, 8, 8}, 3);
    } else if (std::string(model) == "mini_resnet") {
      factory = nn::mini_resnet({1, 8, 8}, 3);
    } else {
      factory = nn::logistic_regression({1, 8, 8}, 3);
    }

    cfg3.total_iterations = 8;
    cfg3.tau = 2;
    cfg3.pi = 2;
    cfg3.batch_size = 4;
    cfg3.seed = 5;
    cfg2 = cfg3;
    cfg2.tau = 4;
    cfg2.pi = 1;
  }

  RunConfig config_for(const Algorithm& alg) const {
    return alg.three_tier() ? cfg3 : cfg2;
  }
};

RunResult run_once(const Fixture& f, Algorithm& alg, bool batched,
                   std::size_t threads, const ParticipationSchedule* schedule,
                   bool mixed = false) {
  RunConfig cfg = f.config_for(alg);
  cfg.batched = batched;
  cfg.mixed_precision = mixed;
  cfg.num_threads = threads;
  Engine engine(f.factory, f.dataset, f.partition, f.topo, cfg);
  return engine.run(alg, schedule);
}

void expect_identical(const RunResult& ref, const RunResult& got) {
  ASSERT_EQ(ref.curve.size(), got.curve.size());
  for (std::size_t i = 0; i < ref.curve.size(); ++i) {
    EXPECT_EQ(ref.curve[i].iteration, got.curve[i].iteration);
    // EXPECT_EQ, not NEAR: the contract is bit-identity, not tolerance.
    EXPECT_EQ(ref.curve[i].test_loss, got.curve[i].test_loss);
    EXPECT_EQ(ref.curve[i].test_accuracy, got.curve[i].test_accuracy);
  }
  EXPECT_EQ(ref.final_params, got.final_params);
  EXPECT_EQ(ref.final_loss, got.final_loss);
  EXPECT_EQ(ref.final_accuracy, got.final_accuracy);
}

std::vector<std::string> all_algorithms() {
  std::vector<std::string> names = algs::table2_algorithms();
  names.push_back("MimeLite");
  return names;
}

class BatchedParityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(BatchedParityTest, FusedRunBitIdenticalToPerWorker) {
  Fixture f;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    auto ref_alg = algs::make_algorithm(GetParam());
    auto fused_alg = algs::make_algorithm(GetParam());
    const RunResult ref =
        run_once(f, *ref_alg, /*batched=*/false, threads, nullptr);
    const RunResult fused =
        run_once(f, *fused_alg, /*batched=*/true, threads, nullptr);
    expect_identical(ref, fused);
  }
}

TEST_P(BatchedParityTest, FusedRunBitIdenticalUnderFaultSchedule) {
  Fixture f;
  sim::FaultConfig fc;
  fc.seed = 42;
  fc.dropout.prob = 0.3;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    auto ref_alg = algs::make_algorithm(GetParam());
    auto fused_alg = algs::make_algorithm(GetParam());
    const sim::FaultPlan plan(f.topo, f.config_for(*ref_alg), fc);
    const RunResult ref =
        run_once(f, *ref_alg, /*batched=*/false, threads, &plan.schedule());
    const RunResult fused =
        run_once(f, *fused_alg, /*batched=*/true, threads, &plan.schedule());
    expect_identical(ref, fused);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Registry, BatchedParityTest, ::testing::ValuesIn(all_algorithms()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// Conv + pool + dense architecture through the batched conv spans.
TEST(BatchedParityConvTest, CnnBitIdentical) {
  Fixture f("cnn");
  for (const char* name : {"HierAdMo", "FedAvg"}) {
    auto ref_alg = algs::make_algorithm(name);
    auto fused_alg = algs::make_algorithm(name);
    const RunResult ref = run_once(f, *ref_alg, /*batched=*/false, 4, nullptr);
    const RunResult fused =
        run_once(f, *fused_alg, /*batched=*/true, 4, nullptr);
    expect_identical(ref, fused);
  }
}

// mini_resnet's Residual blocks are outside the cohort plan: create() must
// decline, the engine must fall back per worker (observable via the obs
// fused/fallback counters), and the run must match batched=false exactly.
TEST(BatchedParityFallbackTest, ResidualArchitectureFallsBack) {
  Fixture f("mini_resnet");
  EXPECT_EQ(nn::CohortModel::create(f.factory), nullptr);

  obs::set_enabled(true);
  obs::Registry::global().reset();
  auto ref_alg = algs::make_algorithm("HierAdMo");
  auto fused_alg = algs::make_algorithm("HierAdMo");
  const RunResult ref = run_once(f, *ref_alg, /*batched=*/false, 1, nullptr);
  const RunResult fused = run_once(f, *fused_alg, /*batched=*/true, 1, nullptr);
  auto& reg = obs::Registry::global();
  EXPECT_EQ(reg.counter("engine.cohort.fused_grads").value(), 0u);
  EXPECT_GT(reg.counter("engine.cohort.fallback_grads").value(), 0u);
  obs::set_enabled(false);
  expect_identical(ref, fused);
}

// Mime's paired SVRG evaluation opts out of prefetch; a batched=true run must
// silently use the per-worker path and still match bitwise.
TEST(BatchedParityFallbackTest, MimeSvrgFallsBack) {
  Fixture f;
  auto ref_alg = algs::make_algorithm("Mime");
  auto fused_alg = algs::make_algorithm("Mime");
  ASSERT_FALSE(fused_alg->local_gradient_prefetchable());
  const RunResult ref = run_once(f, *ref_alg, /*batched=*/false, 4, nullptr);
  const RunResult fused = run_once(f, *fused_alg, /*batched=*/true, 4, nullptr);
  expect_identical(ref, fused);
}

// Mixed precision is NOT bit-identical — sanity-check that an end-to-end run
// stays close to the FP64 trajectory on a short convex problem and returns
// finite metrics.
TEST(BatchedMixedPrecisionTest, CloseToFp64Trajectory) {
  Fixture f;
  auto ref_alg = algs::make_algorithm("HierAdMo");
  auto mix_alg = algs::make_algorithm("HierAdMo");
  const RunResult ref = run_once(f, *ref_alg, /*batched=*/true, 4, nullptr);
  const RunResult mix = run_once(f, *mix_alg, /*batched=*/true, 4, nullptr,
                                 /*mixed=*/true);
  ASSERT_EQ(ref.final_params.size(), mix.final_params.size());
  Scalar max_diff = 0;
  for (std::size_t i = 0; i < ref.final_params.size(); ++i) {
    ASSERT_TRUE(std::isfinite(mix.final_params[i]));
    max_diff = std::max(max_diff,
                        std::abs(ref.final_params[i] - mix.final_params[i]));
  }
  // 8 iterations of ~1e-6-relative kernel error on O(1) parameters: loose
  // bound, orders of magnitude above the observed drift but far below any
  // algorithmic difference.
  EXPECT_LE(max_diff, 1e-3);
  EXPECT_TRUE(std::isfinite(mix.final_loss));
}

// Config validation: mixed precision without the batched path is a user
// error, not a silent no-op.
TEST(BatchedConfigTest, MixedWithoutBatchedRejected) {
  RunConfig cfg;
  cfg.batched = false;
  cfg.mixed_precision = true;
  EXPECT_THROW(cfg.validate(), Error);
}

}  // namespace
}  // namespace hfl::fl
