// Cross-module integration tests: full pipelines over heterogeneous
// topologies, boundary-value schedules (τ = 1, π = 1), quantity-skewed data,
// curve export, and checkpointed resume.
#include <gtest/gtest.h>

#include "src/common/errors.h"

#include <cstdio>
#include <fstream>

#include "src/algs/registry.h"
#include "src/core/hieradmo.h"
#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/fl/engine.h"
#include "src/nn/models.h"
#include "src/nn/serialize.h"

namespace hfl {
namespace {

data::TrainTest easy_dataset(std::uint64_t seed, std::size_t train = 180) {
  Rng rng(seed);
  data::SyntheticSpec spec;
  spec.sample_shape = {1, 2, 2};
  spec.num_classes = 3;
  spec.train_size = train;
  spec.test_size = 60;
  spec.separation = 1.2;
  spec.noise = 0.5;
  return data::make_synthetic(rng, spec);
}

TEST(IntegrationTest, HeterogeneousTopologyTrains) {
  const data::TrainTest dataset = easy_dataset(1);
  // 3 edges serving 1, 2 and 3 workers.
  const fl::Topology topo({1, 2, 3});
  Rng rng(2);
  const data::Partition partition =
      data::partition_iid(dataset.train, topo.num_workers(), rng);

  fl::RunConfig cfg;
  cfg.total_iterations = 60;
  cfg.tau = 5;
  cfg.pi = 2;
  cfg.eta = 0.05;
  cfg.batch_size = 8;
  cfg.seed = 3;
  fl::Engine engine(nn::logistic_regression({1, 2, 2}, 3), dataset,
                    partition, topo, cfg);
  auto alg = algs::make_algorithm("HierAdMo");
  const fl::RunResult r = engine.run(*alg);
  EXPECT_GT(r.final_accuracy, 0.7);
}

TEST(IntegrationTest, QuantitySkewedWeightsAreRespected) {
  // One worker holds 10x the data of the others; the run must still be
  // stable and learn (exercises the D_{i,ℓ}/D_ℓ weighting everywhere).
  const data::TrainTest dataset = easy_dataset(4, 260);
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  Rng rng(5);
  const data::Partition partition = data::partition_weighted(
      dataset.train, {10.0, 1.0, 1.0, 1.0}, rng);

  fl::RunConfig cfg;
  cfg.total_iterations = 60;
  cfg.tau = 5;
  cfg.pi = 2;
  cfg.eta = 0.05;
  cfg.batch_size = 8;
  cfg.seed = 6;
  fl::Engine engine(nn::logistic_regression({1, 2, 2}, 3), dataset,
                    partition, topo, cfg);
  auto alg = algs::make_algorithm("HierAdMo");
  const fl::RunResult r = engine.run(*alg);
  EXPECT_GT(r.final_accuracy, 0.7);
}

TEST(IntegrationTest, TauOneAndPiOneBoundary) {
  // Synchronize at every single iteration: edge and cloud updates fire each
  // step; the algorithm must remain well-defined.
  const data::TrainTest dataset = easy_dataset(7);
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  Rng rng(8);
  const data::Partition partition =
      data::partition_iid(dataset.train, 4, rng);

  fl::RunConfig cfg;
  cfg.total_iterations = 30;
  cfg.tau = 1;
  cfg.pi = 1;
  cfg.eta = 0.05;
  cfg.batch_size = 8;
  cfg.seed = 9;
  fl::Engine engine(nn::logistic_regression({1, 2, 2}, 3), dataset,
                    partition, topo, cfg);
  for (const char* name : {"HierAdMo", "HierAdMo-R", "HierFAVG"}) {
    auto alg = algs::make_algorithm(name);
    const fl::RunResult r = engine.run(*alg);
    EXPECT_GT(r.final_accuracy, 0.5) << name;
    EXPECT_EQ(r.curve.size(), 31u);  // t=0 plus a point per iteration
  }
}

TEST(IntegrationTest, SingleEdgeDegeneratesToTwoTierShape) {
  // L = 1: the edge tier is a pass-through aggregator; three-tier algorithms
  // must still run and converge.
  const data::TrainTest dataset = easy_dataset(10);
  const fl::Topology topo = fl::Topology::uniform(1, 4);
  Rng rng(11);
  const data::Partition partition =
      data::partition_iid(dataset.train, 4, rng);

  fl::RunConfig cfg;
  cfg.total_iterations = 60;
  cfg.tau = 5;
  cfg.pi = 2;
  cfg.eta = 0.05;
  cfg.batch_size = 8;
  cfg.seed = 12;
  fl::Engine engine(nn::logistic_regression({1, 2, 2}, 3), dataset,
                    partition, topo, cfg);
  auto alg = algs::make_algorithm("HierAdMo");
  const fl::RunResult r = engine.run(*alg);
  EXPECT_GT(r.final_accuracy, 0.7);
}

TEST(IntegrationTest, CurveCsvExport) {
  const std::string path = ::testing::TempDir() + "curves_test.csv";
  fl::RunResult a;
  a.algorithm = "A";
  a.curve = {{0, 1.0, 0.2}, {10, 0.5, 0.8}};
  fl::RunResult b;
  b.algorithm = "B";
  b.curve = {{0, 1.1, 0.1}};
  fl::write_curves_csv({a, b}, path);

  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "algorithm,iteration,test_loss,test_accuracy");
  std::getline(in, line);
  EXPECT_EQ(line.substr(0, 4), "A,0,");
  int rows = 2;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, 4);  // header + 3 data rows counted above/below
  std::remove(path.c_str());
}

TEST(IntegrationTest, CheckpointResumeContinuesTraining) {
  // Train, checkpoint the cloud model, load it into a fresh model and verify
  // the restored accuracy matches the recorded final accuracy.
  const data::TrainTest dataset = easy_dataset(13);
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  Rng rng(14);
  const data::Partition partition =
      data::partition_iid(dataset.train, 4, rng);
  const nn::ModelFactory factory = nn::logistic_regression({1, 2, 2}, 3);

  fl::RunConfig cfg;
  cfg.total_iterations = 40;
  cfg.tau = 5;
  cfg.pi = 2;
  cfg.eta = 0.05;
  cfg.batch_size = 8;
  cfg.seed = 15;
  fl::Engine engine(factory, dataset, partition, topo, cfg);
  auto alg = algs::make_algorithm("HierAdMo");
  const fl::RunResult r = engine.run(*alg);

  // The engine does not expose internal state; round-trip the evaluation
  // instead: evaluate() on arbitrary params is the public restore surface.
  auto model = factory();
  Rng init(16);
  model->init_params(init);
  const std::string path = ::testing::TempDir() + "resume_test.bin";
  nn::save_model(*model, path);
  auto restored = factory();
  Rng init2(17);
  restored->init_params(init2);
  nn::load_model(*restored, path);
  EXPECT_EQ(restored->get_params(), model->get_params());
  const nn::EvalResult e1 = engine.evaluate(model->get_params());
  const nn::EvalResult e2 = engine.evaluate(restored->get_params());
  EXPECT_DOUBLE_EQ(e1.accuracy, e2.accuracy);
  EXPECT_GT(r.final_accuracy, 0.0);
  std::remove(path.c_str());
}

TEST(IntegrationTest, ManyThreadsFewWorkers) {
  const data::TrainTest dataset = easy_dataset(18);
  const fl::Topology topo = fl::Topology::uniform(1, 2);
  Rng rng(19);
  const data::Partition partition =
      data::partition_iid(dataset.train, 2, rng);

  fl::RunConfig cfg;
  cfg.total_iterations = 20;
  cfg.tau = 5;
  cfg.pi = 2;
  cfg.batch_size = 8;
  cfg.seed = 20;
  cfg.num_threads = 16;  // more threads than workers
  fl::Engine engine(nn::logistic_regression({1, 2, 2}, 3), dataset,
                    partition, topo, cfg);
  auto alg = algs::make_algorithm("HierAdMo");
  EXPECT_NO_THROW(engine.run(*alg));
}

TEST(IntegrationTest, EvalMaxSamplesCapsEvaluation) {
  const data::TrainTest dataset = easy_dataset(21);
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  Rng rng(22);
  const data::Partition partition =
      data::partition_iid(dataset.train, 4, rng);

  fl::RunConfig cfg;
  cfg.total_iterations = 10;
  cfg.tau = 5;
  cfg.pi = 2;
  cfg.batch_size = 8;
  cfg.seed = 23;
  cfg.eval_max_samples = 10;
  fl::Engine capped(nn::logistic_regression({1, 2, 2}, 3), dataset,
                    partition, topo, cfg);
  cfg.eval_max_samples = 0;
  fl::Engine full(nn::logistic_regression({1, 2, 2}, 3), dataset, partition,
                  topo, cfg);

  auto model = nn::logistic_regression({1, 2, 2}, 3)();
  Rng init(24);
  model->init_params(init);
  const Vec params = model->get_params();
  // Capped evaluation uses a strict prefix; with 10 vs 60 samples the two
  // results will generically differ, proving the cap is honoured.
  const nn::EvalResult rc = capped.evaluate(params);
  const nn::EvalResult rf = full.evaluate(params);
  EXPECT_NE(rc.loss, rf.loss);
}

}  // namespace
}  // namespace hfl
