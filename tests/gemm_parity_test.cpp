// Parity tests for the blocked GEMM kernel and the GEMM-backed Conv2d
// against straightforward reference implementations.
//
// The blocked kernel has many shape-dependent code paths (register-tile
// remainders, narrow final A strips, ragged-right direct-B tiles, packed vs
// direct B, cache-block boundaries), so shapes are chosen to land on every
// one of them: dimensions of 1, non-multiples of the 6/8 register tile, and
// sizes that cross the MC/KC/NC panel boundaries. Reference and kernel run
// the same double-precision FMA chain in different orders, so agreement is
// required to 1e-10 in max-abs terms.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "src/common/rng.h"
#include "src/nn/conv2d.h"
#include "src/tensor/gemm.h"
#include "src/tensor/tensor.h"
#include "src/tensor/tensor_ops.h"

namespace hfl {
namespace {

Scalar max_abs_diff(const Vec& a, const Vec& b) {
  EXPECT_EQ(a.size(), b.size());
  Scalar m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

Vec random_vec(std::size_t n, Rng& rng) {
  Vec v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

// Triple-loop reference: C = beta·C + op(A)·op(B).
void reference_gemm(bool trans_a, bool trans_b, std::size_t m, std::size_t n,
                    std::size_t k, const Vec& a, std::size_t lda, const Vec& b,
                    std::size_t ldb, Scalar beta, Vec& c, std::size_t ldc) {
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      Scalar acc = 0;
      for (std::size_t p = 0; p < k; ++p) {
        const Scalar av = trans_a ? a[p * lda + i] : a[i * lda + p];
        const Scalar bv = trans_b ? b[j * ldb + p] : b[p * ldb + j];
        acc += av * bv;
      }
      c[i * ldc + j] = beta * c[i * ldc + j] + acc;
    }
  }
}

struct GemmShape {
  std::size_t m, n, k;
};

// Covers: unit dims, sub-register-tile sizes, tile remainders in every
// combination (m % 6 ∈ {0..5}, n % 8 ∈ {0, 4, ragged}), narrow final A
// strips (m % 6 ≤ 4), the direct-B small-m fast path (m ≤ 32) and the
// packed-B path beyond it, and shapes crossing the KC=256 / NC=1024 / MC=66
// cache-block boundaries.
const GemmShape kShapes[] = {
    {1, 1, 1},    {1, 17, 5},   {13, 1, 7},   {5, 9, 1},    {6, 8, 16},
    {7, 9, 33},   {16, 196, 200},  // conv-forward shape: narrow strip + tail
    {23, 31, 19}, {32, 100, 64},   // largest direct-B m
    {33, 100, 64},                 // smallest packed-B m
    {66, 64, 256},
    {67, 40, 257},                 // crosses MC and KC boundaries
    {12, 1030, 20},                // crosses the NC boundary
    {70, 130, 300},
};

TEST(GemmParityTest, MatchesReferenceAcrossShapes) {
  Rng rng(2024);
  for (const auto& s : kShapes) {
    for (const bool trans_a : {false, true}) {
      for (const bool trans_b : {false, true}) {
        const std::size_t lda = trans_a ? s.m : s.k;
        const std::size_t ldb = trans_b ? s.k : s.n;
        const Vec a = random_vec(s.m * s.k, rng);
        const Vec b = random_vec(s.k * s.n, rng);
        Vec c_ref = random_vec(s.m * s.n, rng);
        Vec c_got = c_ref;
        reference_gemm(trans_a, trans_b, s.m, s.n, s.k, a, lda, b, ldb, 0.0,
                       c_ref, s.n);
        ops::gemm(trans_a, trans_b, s.m, s.n, s.k, a.data(), lda, b.data(),
                  ldb, 0.0, c_got.data(), s.n);
        EXPECT_LE(max_abs_diff(c_ref, c_got), 1e-10)
            << "m=" << s.m << " n=" << s.n << " k=" << s.k
            << " trans_a=" << trans_a << " trans_b=" << trans_b;
      }
    }
  }
}

TEST(GemmParityTest, BetaAccumulatesAndScales) {
  Rng rng(7);
  const GemmShape s{16, 52, 40};
  const Vec a = random_vec(s.m * s.k, rng);
  const Vec b = random_vec(s.k * s.n, rng);
  for (const Scalar beta : {0.0, 1.0, -0.5}) {
    Vec c_ref = random_vec(s.m * s.n, rng);
    Vec c_got = c_ref;
    reference_gemm(false, false, s.m, s.n, s.k, a, s.k, b, s.n, beta, c_ref,
                   s.n);
    ops::gemm(false, false, s.m, s.n, s.k, a.data(), s.k, b.data(), s.n, beta,
              c_got.data(), s.n);
    EXPECT_LE(max_abs_diff(c_ref, c_got), 1e-10) << "beta=" << beta;
  }
}

TEST(GemmParityTest, ZeroTimesNonFiniteFollowsIEEE) {
  // The kernel must not skip zero operands: 0 · inf and 0 · nan are NaN.
  Vec a = {0.0, 1.0};
  Vec b = {std::numeric_limits<Scalar>::infinity(), 2.0};
  Vec c = {0.0};
  ops::gemm(false, false, 1, 1, 2, a.data(), 2, b.data(), 1, 0.0, c.data(), 1);
  EXPECT_TRUE(std::isnan(c[0]));
}

TEST(GemmParityTest, TensorMatmulWrappersAgree) {
  Rng rng(99);
  const std::size_t m = 21, n = 43, k = 30;
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor at({k, m});
  Tensor bt({n, k});
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t p = 0; p < k; ++p) at[p * m + i] = a[i * k + p];
  }
  for (std::size_t p = 0; p < k; ++p) {
    for (std::size_t j = 0; j < n; ++j) bt[j * k + p] = b[p * n + j];
  }
  Tensor c0({m, n}), c1({m, n}), c2({m, n});
  ops::matmul(a, b, c0);
  ops::matmul_transpose_a(at, b, c1);
  ops::matmul_transpose_b(a, bt, c2);
  EXPECT_LE(max_abs_diff(c0.data(), c1.data()), 1e-10);
  EXPECT_LE(max_abs_diff(c0.data(), c2.data()), 1e-10);
}

// ---------------------------------------------------------------------------
// Conv2d vs a direct (quadruple-loop) convolution.

struct ConvCase {
  std::size_t batch, in_ch, out_ch, k, pad, h, w;
};

const ConvCase kConvCases[] = {
    {2, 1, 1, 1, 0, 5, 7},   // 1×1 kernel, no padding, H≠W
    {3, 2, 5, 3, 1, 8, 6},   // same-size 3×3
    {2, 3, 4, 5, 2, 9, 11},  // 5×5 with pad 2
    {1, 4, 3, 3, 0, 7, 7},   // valid (unpadded) conv
    {4, 2, 6, 3, 2, 6, 5},   // padding larger than usual (output grows)
    {2, 2, 3, 5, 2, 1, 7},   // H=1 with a 5×5 kernel: rows fully padded out
};

// Direct convolution and its gradients, elementwise from the definition.
void reference_conv(const ConvCase& cc, const Tensor& x, const Tensor& w,
                    const Tensor& bias, Tensor& y) {
  const std::size_t oh = cc.h + 2 * cc.pad - cc.k + 1;
  const std::size_t ow = cc.w + 2 * cc.pad - cc.k + 1;
  for (std::size_t b = 0; b < cc.batch; ++b) {
    for (std::size_t oc = 0; oc < cc.out_ch; ++oc) {
      for (std::size_t i = 0; i < oh; ++i) {
        for (std::size_t j = 0; j < ow; ++j) {
          Scalar acc = bias[oc];
          for (std::size_t ic = 0; ic < cc.in_ch; ++ic) {
            for (std::size_t kh = 0; kh < cc.k; ++kh) {
              for (std::size_t kw = 0; kw < cc.k; ++kw) {
                const std::ptrdiff_t ih =
                    static_cast<std::ptrdiff_t>(i + kh) -
                    static_cast<std::ptrdiff_t>(cc.pad);
                const std::ptrdiff_t iw =
                    static_cast<std::ptrdiff_t>(j + kw) -
                    static_cast<std::ptrdiff_t>(cc.pad);
                if (ih < 0 || iw < 0 ||
                    ih >= static_cast<std::ptrdiff_t>(cc.h) ||
                    iw >= static_cast<std::ptrdiff_t>(cc.w)) {
                  continue;
                }
                acc += w[((oc * cc.in_ch + ic) * cc.k + kh) * cc.k + kw] *
                       x[((b * cc.in_ch + ic) * cc.h +
                          static_cast<std::size_t>(ih)) *
                             cc.w +
                         static_cast<std::size_t>(iw)];
              }
            }
          }
          y[((b * cc.out_ch + oc) * oh + i) * ow + j] = acc;
        }
      }
    }
  }
}

TEST(Conv2dParityTest, ForwardMatchesDirectConvolution) {
  Rng rng(11);
  for (const auto& cc : kConvCases) {
    nn::Conv2d conv(cc.in_ch, cc.out_ch, cc.k, cc.pad);
    Rng init = rng.fork(1);
    conv.init_params(init);
    // Give the bias nonzero values so its path is exercised too.
    for (auto& v : conv.params()[1]->data()) v = rng.uniform(-0.5, 0.5);
    Tensor x = Tensor::randn({cc.batch, cc.in_ch, cc.h, cc.w}, rng);

    const std::size_t oh = cc.h + 2 * cc.pad - cc.k + 1;
    const std::size_t ow = cc.w + 2 * cc.pad - cc.k + 1;
    Tensor y_ref({cc.batch, cc.out_ch, oh, ow});
    reference_conv(cc, x, *conv.params()[0], *conv.params()[1], y_ref);
    const Tensor y = conv.forward(x, /*train=*/true);
    ASSERT_EQ(y.shape(), y_ref.shape());
    EXPECT_LE(max_abs_diff(y.data(), y_ref.data()), 1e-10)
        << "in_ch=" << cc.in_ch << " out_ch=" << cc.out_ch << " k=" << cc.k
        << " pad=" << cc.pad;
  }
}

TEST(Conv2dParityTest, BackwardMatchesDirectGradients) {
  Rng rng(23);
  for (const auto& cc : kConvCases) {
    nn::Conv2d conv(cc.in_ch, cc.out_ch, cc.k, cc.pad);
    Rng init = rng.fork(2);
    conv.init_params(init);
    Tensor x = Tensor::randn({cc.batch, cc.in_ch, cc.h, cc.w}, rng);
    const Tensor y = conv.forward(x, /*train=*/true);
    Tensor g(y.shape());
    for (auto& v : g.data()) v = rng.uniform(-1.0, 1.0);

    const Tensor grad_in = conv.backward(g);

    const std::size_t oh = cc.h + 2 * cc.pad - cc.k + 1;
    const std::size_t ow = cc.w + 2 * cc.pad - cc.k + 1;
    const Tensor& w = *conv.params()[0];

    // grad_bias[oc] = Σ_{b,i,j} g(b, oc, i, j)
    Tensor gb_ref({cc.out_ch});
    for (std::size_t b = 0; b < cc.batch; ++b) {
      for (std::size_t oc = 0; oc < cc.out_ch; ++oc) {
        for (std::size_t c = 0; c < oh * ow; ++c) {
          gb_ref[oc] += g[(b * cc.out_ch + oc) * oh * ow + c];
        }
      }
    }

    // grad_weight and grad_in from the definition.
    Tensor gw_ref({cc.out_ch, cc.in_ch, cc.k, cc.k});
    Tensor gx_ref(x.shape());
    for (std::size_t b = 0; b < cc.batch; ++b) {
      for (std::size_t oc = 0; oc < cc.out_ch; ++oc) {
        for (std::size_t i = 0; i < oh; ++i) {
          for (std::size_t j = 0; j < ow; ++j) {
            const Scalar gv = g[((b * cc.out_ch + oc) * oh + i) * ow + j];
            for (std::size_t ic = 0; ic < cc.in_ch; ++ic) {
              for (std::size_t kh = 0; kh < cc.k; ++kh) {
                for (std::size_t kw = 0; kw < cc.k; ++kw) {
                  const std::ptrdiff_t ih =
                      static_cast<std::ptrdiff_t>(i + kh) -
                      static_cast<std::ptrdiff_t>(cc.pad);
                  const std::ptrdiff_t iw =
                      static_cast<std::ptrdiff_t>(j + kw) -
                      static_cast<std::ptrdiff_t>(cc.pad);
                  if (ih < 0 || iw < 0 ||
                      ih >= static_cast<std::ptrdiff_t>(cc.h) ||
                      iw >= static_cast<std::ptrdiff_t>(cc.w)) {
                    continue;
                  }
                  const std::size_t xi =
                      ((b * cc.in_ch + ic) * cc.h +
                       static_cast<std::size_t>(ih)) *
                          cc.w +
                      static_cast<std::size_t>(iw);
                  gw_ref[((oc * cc.in_ch + ic) * cc.k + kh) * cc.k + kw] +=
                      gv * x[xi];
                  gx_ref[xi] +=
                      gv * w[((oc * cc.in_ch + ic) * cc.k + kh) * cc.k + kw];
                }
              }
            }
          }
        }
      }
    }

    EXPECT_LE(max_abs_diff(conv.grads()[1]->data(), gb_ref.data()), 1e-10);
    EXPECT_LE(max_abs_diff(conv.grads()[0]->data(), gw_ref.data()), 1e-10);
    EXPECT_LE(max_abs_diff(grad_in.data(), gx_ref.data()), 1e-10);
  }
}

}  // namespace
}  // namespace hfl
