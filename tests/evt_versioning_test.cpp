// Causal model propagation in the event-driven engine (src/evt/):
//
//   1. No retroactive refresh: a cloud round folding an edge's update must
//      never write through to in-flight workers. A probe algorithm poisons
//      the cloud model inside cloud_sync; if any worker ever observes the
//      poison mid-interval, the engine leaked the cloud state retroactively
//      (the exact bug this suite pins down).
//   2. Monotone download versions: the model a worker trains on only ever
//      moves forward. The probe stamps each edge aggregation's index into
//      the model; per worker, the observed stamp sequence is non-decreasing.
//   3. Communication/computation overlap: uploads travel while the next
//      interval computes, and the modeled overlap is reported.
//   4. Byte accounting: every upload arrival is charged exactly once —
//      including updates discarded for staleness — and every download
//      charges the algorithm's download payload.
//   5. The adaptive-deadline knobs validate and stay seed-deterministic.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "src/algs/registry.h"
#include "src/common/errors.h"
#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/evt/async_engine.h"
#include "src/fl/state.h"
#include "src/nn/models.h"
#include "src/obs/comm.h"
#include "src/obs/registry.h"
#include "src/sim/fault_plan.h"

namespace hfl::evt {
namespace {

struct Fixture {
  data::TrainTest dataset;
  fl::Topology topo{fl::Topology::uniform(3, 3)};  // 3 edges × 3 workers
  data::Partition partition;
  nn::ModelFactory factory;
  fl::RunConfig cfg;  // three-tier event config
  std::size_t params = 0;

  Fixture() {
    Rng rng(3);
    data::SyntheticSpec spec;
    spec.sample_shape = {1, 3, 3};
    spec.num_classes = 3;
    spec.train_size = 90;
    spec.test_size = 30;
    dataset = data::make_synthetic(rng, spec);
    partition = data::partition_iid(dataset.train, topo.num_workers(), rng);
    factory = nn::logistic_regression({1, 3, 3}, 3);
    params = factory()->num_params();

    cfg.total_iterations = 16;
    cfg.tau = 2;
    cfg.pi = 2;
    cfg.batch_size = 4;
    cfg.seed = 5;
    cfg.batched = false;
    cfg.policy = fl::ExecPolicy::kAsync;
  }

  net::TimeSimConfig sim() const {
    net::TimeSimConfig s;
    s.three_tier = true;
    s.seed = 9;
    return s;
  }

  // Stragglers only (no dropout): every interval uploads, but workers drift
  // far apart so uploads race aggregations — maximal in-flight pressure.
  sim::FaultPlan straggler_plan() const {
    sim::FaultConfig fc;
    fc.seed = 11;
    fc.straggler.fraction = 0.5;
    fc.straggler.slowdown = 5.0;
    return sim::FaultPlan(topo, cfg, fc);
  }
};

// One local-step observation of a worker's model.
struct ProbeLog {
  std::size_t w;
  Scalar x0;  // the poison channel (cloud_sync writes it)
  Scalar x1;  // the version channel (edge_sync stamps the aggregation index)
};

// Three-tier probe: local steps observe and never move the model, edge
// aggregations stamp their index into x[1], cloud rounds poison the CLOUD
// model only. Any poison observed at a worker therefore arrived through an
// engine write-through, not through the algorithm's own push-downs.
class ProbeAlgorithm final : public fl::Algorithm {
 public:
  static constexpr Scalar kPoison = 999.0;

  explicit ProbeAlgorithm(std::vector<ProbeLog>* log) : log_(log) {}

  std::string name() const override { return "Probe"; }
  bool three_tier() const override { return true; }

  void local_step(fl::Context&, fl::WorkerState& w) override {
    log_->push_back({w.id, w.x[0], w.x[1]});
  }

  void edge_sync(fl::Context& ctx, fl::EdgeState& e, std::size_t k) override {
    fl::aggregate_edge(*ctx.topo, e.id, *ctx.workers, fl::worker_x, e.x_plus,
                       ctx.part);
    e.x_plus[1] = static_cast<Scalar>(k);
    for (const std::size_t id :
         fl::active_workers(ctx.part, *ctx.topo, e.id)) {
      (*ctx.workers)[id].x = e.x_plus;
    }
  }

  void cloud_sync(fl::Context& ctx, std::size_t) override {
    ctx.cloud->x[0] = kPoison;
  }

 private:
  std::vector<ProbeLog>* log_;
};

fl::RunResult run_probe(const Fixture& f, fl::ExecPolicy policy,
                        std::size_t threads, const sim::FaultPlan* plan,
                        std::vector<ProbeLog>& log) {
  log.clear();
  ProbeAlgorithm alg(&log);
  fl::RunConfig cfg = f.cfg;
  cfg.policy = policy;
  cfg.num_threads = threads;
  // Admit everything: a too-stale discard legitimately re-anchors its sender
  // on the current cloud model (a versioned forced refresh), which would
  // carry the poison by design. With discards off, the only way cloud state
  // can reach a worker is an engine write-through — the bug under test.
  cfg.max_staleness = 1000;
  if (policy == fl::ExecPolicy::kSemiAsync) cfg.semi_async_deadline_s = 2.0;
  AsyncEngine engine(f.factory, f.dataset, f.partition, f.topo, cfg, f.sim());
  return engine.run(alg, plan);
}

// ---------------------------------------------------------------------------
// 1. Regression: no retroactive subtree refresh from cloud rounds
// ---------------------------------------------------------------------------

TEST(EvtVersioningTest, CloudSyncNeverLeaksIntoInFlightWorkers) {
  Fixture f;
  std::vector<ProbeLog> log;
  const sim::FaultPlan plan = f.straggler_plan();
  for (const fl::ExecPolicy policy :
       {fl::ExecPolicy::kAsync, fl::ExecPolicy::kSemiAsync}) {
    const fl::RunResult r = run_probe(f, policy, 1, &plan, log);
    ASSERT_FALSE(log.empty());
    EXPECT_GT(r.admitted_updates, 0u);
    // The cloud model is poisoned every cloud round; workers only ever see
    // edge-anchored downloads, so the poison (or any damped mix of it — the
    // fold keeps x0 far above anything the probe's zero-init produces) must
    // never reach a local step.
    for (const ProbeLog& p : log) {
      ASSERT_LT(p.x0, 100.0) << "worker " << p.w
                             << " observed the cloud poison mid-interval: "
                                "retroactive refresh is back";
    }
  }
}

// ---------------------------------------------------------------------------
// 2. Monotone download versions per worker
// ---------------------------------------------------------------------------

TEST(EvtVersioningTest, DownloadVersionsAreMonotonePerWorker) {
  Fixture f;
  std::vector<ProbeLog> log;
  const sim::FaultPlan plan = f.straggler_plan();
  for (const fl::ExecPolicy policy :
       {fl::ExecPolicy::kAsync, fl::ExecPolicy::kSemiAsync}) {
    run_probe(f, policy, 1, &plan, log);
    // x[1] carries a damped mix of edge-aggregation indices, strictly
    // increasing per aggregation — so per worker the observed sequence must
    // never step backwards (an old in-flight download overwriting a newer
    // one would).
    std::map<std::size_t, Scalar> last;
    std::size_t refreshed = 0;
    for (const ProbeLog& p : log) {
      const auto it = last.find(p.w);
      if (it != last.end()) {
        ASSERT_GE(p.x1, it->second)
            << "worker " << p.w << " regressed to an older model";
        if (p.x1 > it->second) ++refreshed;
      }
      last[p.w] = p.x1;
    }
    EXPECT_GT(refreshed, 0u);  // downloads actually landed and applied
  }
}

// ---------------------------------------------------------------------------
// 3. Communication/computation overlap
// ---------------------------------------------------------------------------

TEST(EvtVersioningTest, UploadsOverlapNextIntervalCompute) {
  Fixture f;
  auto alg = algs::make_algorithm("HierAdMo");
  fl::RunConfig cfg = f.cfg;
  AsyncEngine engine(f.factory, f.dataset, f.partition, f.topo, cfg, f.sim());
  const fl::RunResult r = engine.run(*alg);
  EXPECT_GT(r.overlap_seconds, 0.0);
  EXPECT_LT(r.overlap_seconds, r.sim_seconds);  // hidden time, not extra time
  EXPECT_GT(r.downloads_applied, 0u);
}

// ---------------------------------------------------------------------------
// 4. Byte accounting: charge-exactly-once on both legs
// ---------------------------------------------------------------------------

TEST(EvtCommAccountingTest, EveryArrivalChargedOnceIncludingDiscarded) {
  Fixture f;
  const std::uint64_t up_bytes = 4 * f.params * sizeof(Scalar);    // HierAdMo
  const std::uint64_t down_bytes = 2 * f.params * sizeof(Scalar);  // profile
  const std::size_t arrivals =
      f.topo.num_workers() * (f.cfg.total_iterations / f.cfg.tau);

  for (const std::int64_t max_staleness : {std::int64_t{4}, std::int64_t{0}}) {
    obs::set_enabled(true);
    obs::Registry::global().reset();
    obs::CommAccountant::global().reset();
    auto alg = algs::make_algorithm("HierAdMo");
    fl::RunConfig cfg = f.cfg;
    cfg.max_staleness = max_staleness;
    AsyncEngine engine(f.factory, f.dataset, f.partition, f.topo, cfg,
                       f.sim());
    const fl::RunResult r = engine.run(*alg);
    const obs::LinkTotals we =
        obs::CommAccountant::global().totals(obs::Link::kWorkerToEdge);
    const obs::LinkTotals ew =
        obs::CommAccountant::global().totals(obs::Link::kEdgeToWorker);
    const obs::LinkTotals ec =
        obs::CommAccountant::global().totals(obs::Link::kEdgeToCloud);
    const obs::LinkTotals ce =
        obs::CommAccountant::global().totals(obs::Link::kCloudToEdge);
    obs::set_enabled(false);

    // Fault-free: every finished interval's upload arrives and is charged
    // exactly once — whatever its admission fate. With max_staleness = 0 the
    // racing cohort members get dropped, yet the uplink bill is identical.
    EXPECT_EQ(we.messages, arrivals);
    EXPECT_EQ(we.logical_bytes, arrivals * up_bytes);
    if (max_staleness == 0) {
      EXPECT_GT(r.dropped_updates, 0u);
    }

    // Downstream, each message carries the algorithm's download payload.
    EXPECT_GT(ew.messages, 0u);
    EXPECT_EQ(ew.logical_bytes, ew.messages * down_bytes);

    // Edge↔cloud legs likewise charge per message at the profile's rates
    // (HierAdMo: 2 vectors each way).
    EXPECT_GT(ec.messages, 0u);
    EXPECT_EQ(ec.logical_bytes, ec.messages * down_bytes);
    EXPECT_EQ(ce.logical_bytes, ce.messages * down_bytes);
  }
}

// ---------------------------------------------------------------------------
// 5. Adaptive deadlines: validation + determinism
// ---------------------------------------------------------------------------

TEST(AdaptiveDeadlineTest, ValidatesKnobs) {
  fl::RunConfig cfg;
  cfg.policy = fl::ExecPolicy::kSemiAsync;
  cfg.semi_async_deadline_s = 1.0;
  cfg.batched = false;
  cfg.adaptive_deadline = true;
  EXPECT_NO_THROW(cfg.validate());

  cfg.deadline_margin = 0.0;  // must be positive
  EXPECT_THROW(cfg.validate(), Error);
  cfg.deadline_margin = 1.5;

  cfg.policy = fl::ExecPolicy::kAsync;  // deadlines are semi_async-only
  cfg.semi_async_deadline_s = 0.0;
  EXPECT_THROW(cfg.validate(), Error);
}

TEST(AdaptiveDeadlineTest, SeedDeterministicAcrossThreadCounts) {
  Fixture f;
  const sim::FaultPlan plan = f.straggler_plan();
  fl::RunResult runs[2];
  for (int i = 0; i < 2; ++i) {
    auto alg = algs::make_algorithm("HierAdMo");
    fl::RunConfig cfg = f.cfg;
    cfg.policy = fl::ExecPolicy::kSemiAsync;
    cfg.semi_async_deadline_s = 0.5;
    cfg.adaptive_deadline = true;
    cfg.num_threads = i == 0 ? 1 : 4;
    AsyncEngine engine(f.factory, f.dataset, f.partition, f.topo, cfg,
                       f.sim());
    runs[i] = engine.run(*alg, &plan);
  }
  EXPECT_GT(runs[0].admitted_updates, 0u);
  EXPECT_EQ(runs[0].final_params, runs[1].final_params);
  EXPECT_EQ(runs[0].sim_seconds, runs[1].sim_seconds);
  EXPECT_EQ(runs[0].admitted_updates, runs[1].admitted_updates);
  EXPECT_EQ(runs[0].dropped_updates, runs[1].dropped_updates);
  EXPECT_EQ(runs[0].overlap_seconds, runs[1].overlap_seconds);
  EXPECT_EQ(runs[0].downloads_applied, runs[1].downloads_applied);
  EXPECT_EQ(runs[0].downloads_superseded, runs[1].downloads_superseded);
}

}  // namespace
}  // namespace hfl::evt
