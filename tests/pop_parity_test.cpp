// Dense vs virtualized engine parity on a 64-worker population.
//
// The virtualization contract (src/fl/engine.h, src/pop/cohort_store.h) is
// that moving worker-state lifetime into a CohortProvider changes NOTHING
// observable:
//
//   * Full-cohort mode (cohort_size = 0) must reproduce the dense engine
//     bit for bit — curve, final parameters, participation trace, miss
//     counts, obs sync counters and per-link comm bytes — for every
//     registry algorithm (plus MimeLite), with and without a fault
//     schedule, at 1 and 4 threads.
//
//   * Sampled mode must equal a DENSE run driven by the induced
//     participation schedule (absent = outside the cohort, or failed by the
//     fault oracle; kHold absent policy): per-worker RNG streams are derived
//     statelessly and spill/restore is byte-exact, so materializing only the
//     cohort is invisible to the math. Mime/MimeLite are excluded here by
//     design: their init probes every worker's aux stream, and a sampled
//     store materializes only the first cohort (documented in DESIGN.md).
//
//   * Sampled runs are seed-deterministic: 1-thread and 4-thread runs (and
//     repeated runs, exercising a fresh spill/restore history each time)
//     are bit-identical — this is the HierAdMo momentum spill/restore
//     bit-identity test, since revisited workers cross the slab with live
//     momentum and accumulator state.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "src/algs/registry.h"
#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/nn/models.h"
#include "src/obs/comm.h"
#include "src/obs/registry.h"
#include "src/pop/cohort_store.h"
#include "src/sim/fault_plan.h"
#include "src/sim/sparse_fault_plan.h"

namespace hfl::fl {
namespace {

struct Fixture {
  data::TrainTest dataset;
  Topology topo{Topology::uniform(4, 16)};  // 4 edges × 16 workers = 64
  data::Partition partition;
  nn::ModelFactory factory;
  RunConfig cfg3;  // three-tier
  RunConfig cfg2;  // two-tier (π = 1, matched period)

  Fixture() {
    Rng rng(3);
    data::SyntheticSpec spec;
    spec.sample_shape = {1, 3, 3};
    spec.num_classes = 3;
    spec.train_size = 256;
    spec.test_size = 32;
    dataset = data::make_synthetic(rng, spec);
    partition = data::partition_iid(dataset.train, topo.num_workers(), rng);
    factory = nn::logistic_regression({1, 3, 3}, 3);

    cfg3.total_iterations = 8;
    cfg3.tau = 2;
    cfg3.pi = 2;
    cfg3.batch_size = 2;
    cfg3.seed = 5;
    cfg2 = cfg3;
    cfg2.tau = 4;
    cfg2.pi = 1;
  }

  RunConfig config_for(const Algorithm& alg) const {
    return alg.three_tier() ? cfg3 : cfg2;
  }
};

struct ObsSnapshot {
  std::uint64_t edge_syncs = 0;
  std::uint64_t cloud_syncs = 0;
  obs::LinkTotals worker_edge;
  obs::LinkTotals edge_cloud;
  obs::LinkTotals worker_cloud;
};

bool operator==(const obs::LinkTotals& a, const obs::LinkTotals& b) {
  return a.messages == b.messages && a.logical_bytes == b.logical_bytes &&
         a.saved_bytes == b.saved_bytes;
}

// One run; `store` non-null attaches the virtualized population, `oracle`
// non-null supplies fault availability (virtualized path only).
RunResult run_once(const Fixture& f, Algorithm& alg, std::size_t threads,
                   const ParticipationSchedule* schedule,
                   pop::VirtConfig* virt, const AvailabilityOracle* oracle,
                   ObsSnapshot* snap) {
  obs::set_enabled(true);
  obs::Registry::global().reset();
  obs::CommAccountant::global().reset();
  RunConfig cfg = f.config_for(alg);
  cfg.num_threads = threads;
  Engine engine(f.factory, f.dataset, f.partition, f.topo, cfg);
  std::unique_ptr<pop::CohortStore> store;
  if (virt != nullptr) {
    store = std::make_unique<pop::CohortStore>(f.factory, f.dataset,
                                               f.partition, f.topo, cfg,
                                               *virt);
    engine.set_cohort_provider(store.get());
  }
  RunResult r = oracle != nullptr ? engine.run_with_oracle(alg, oracle)
                                  : engine.run(alg, schedule);
  if (snap != nullptr) {
    auto& reg = obs::Registry::global();
    auto& comm = obs::CommAccountant::global();
    snap->edge_syncs = reg.counter("engine.edge_syncs").value();
    snap->cloud_syncs = reg.counter("engine.cloud_syncs").value();
    snap->worker_edge = comm.totals(obs::Link::kWorkerToEdge);
    snap->edge_cloud = comm.totals(obs::Link::kEdgeToCloud);
    snap->worker_cloud = comm.totals(obs::Link::kWorkerToCloud);
  }
  obs::set_enabled(false);
  return r;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  ASSERT_EQ(a.curve.size(), b.curve.size());
  for (std::size_t i = 0; i < a.curve.size(); ++i) {
    EXPECT_EQ(a.curve[i].iteration, b.curve[i].iteration);
    EXPECT_EQ(a.curve[i].test_loss, b.curve[i].test_loss);
    EXPECT_EQ(a.curve[i].test_accuracy, b.curve[i].test_accuracy);
  }
  EXPECT_EQ(a.final_params, b.final_params);
  EXPECT_EQ(a.final_accuracy, b.final_accuracy);
  EXPECT_EQ(a.final_loss, b.final_loss);
  EXPECT_EQ(a.mean_participation_rate, b.mean_participation_rate);
  EXPECT_EQ(a.worker_miss_counts, b.worker_miss_counts);
  ASSERT_EQ(a.participation.size(), b.participation.size());
  for (std::size_t i = 0; i < a.participation.size(); ++i) {
    EXPECT_EQ(a.participation[i].active_workers,
              b.participation[i].active_workers);
    EXPECT_EQ(a.participation[i].total_workers,
              b.participation[i].total_workers);
    EXPECT_EQ(a.participation[i].active_edges,
              b.participation[i].active_edges);
    EXPECT_EQ(a.participation[i].rate, b.participation[i].rate);
  }
}

void expect_identical(const ObsSnapshot& a, const ObsSnapshot& b) {
  EXPECT_EQ(a.edge_syncs, b.edge_syncs);
  EXPECT_EQ(a.cloud_syncs, b.cloud_syncs);
  EXPECT_TRUE(a.worker_edge == b.worker_edge);
  EXPECT_TRUE(a.edge_cloud == b.edge_cloud);
  EXPECT_TRUE(a.worker_cloud == b.worker_cloud);
}

std::vector<std::string> all_algorithms() {
  std::vector<std::string> names = algs::table2_algorithms();
  names.push_back("MimeLite");
  return names;
}

std::vector<std::string> sampled_algorithms() {
  std::vector<std::string> names;
  for (const std::string& n : all_algorithms()) {
    // Mime's ĝ probe walks every active worker, which a sampled store cannot
    // serve exactly: the cohort-estimated mode (cfg.mime_cohort_stats) is a
    // different estimator, so it is checked by MimeCohortStatsTest's drift
    // bound below instead of the bit-parity harness here.
    if (n != "Mime" && n != "MimeLite") names.push_back(n);
  }
  return names;
}

sim::FaultConfig fault_config() {
  sim::FaultConfig fc;
  fc.seed = 42;
  fc.dropout.prob = 0.2;
  fc.churn.p_fail = 0.1;
  fc.churn.p_recover = 0.7;
  fc.edge_outage.prob = 0.1;
  return fc;
}

class FullCohortParityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(FullCohortParityTest, MatchesDenseEngine) {
  Fixture f;
  pop::VirtConfig virt;  // cohort_size = 0: full population, lazy plumbing
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    auto dense_alg = algs::make_algorithm(GetParam());
    auto virt_alg = algs::make_algorithm(GetParam());
    ObsSnapshot dense_obs, virt_obs;
    const RunResult dense =
        run_once(f, *dense_alg, threads, nullptr, nullptr, nullptr,
                 &dense_obs);
    const RunResult virtualized =
        run_once(f, *virt_alg, threads, nullptr, &virt, nullptr, &virt_obs);
    expect_identical(dense, virtualized);
    expect_identical(dense_obs, virt_obs);
  }
}

TEST_P(FullCohortParityTest, MatchesDenseEngineUnderFaults) {
  Fixture f;
  pop::VirtConfig virt;
  auto dense_alg = algs::make_algorithm(GetParam());
  auto virt_alg = algs::make_algorithm(GetParam());
  const sim::FaultPlan plan(f.topo, f.config_for(*dense_alg), fault_config());
  ObsSnapshot dense_obs, virt_obs;
  const RunResult dense = run_once(f, *dense_alg, 4, &plan.schedule(),
                                   nullptr, nullptr, &dense_obs);
  // The virtualized engine replays the same dense schedule through its
  // oracle adapter (Engine::run wraps it in a ScheduleOracle).
  const RunResult virtualized = run_once(f, *virt_alg, 4, &plan.schedule(),
                                         &virt, nullptr, &virt_obs);
  expect_identical(dense, virtualized);
  expect_identical(dense_obs, virt_obs);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, FullCohortParityTest, ::testing::ValuesIn(all_algorithms()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// The participation schedule a sampled virtualized run induces on the dense
// engine: absent = outside interval k's cohort, or failed by `oracle`.
ParticipationSchedule induced_schedule(const Fixture& f, const RunConfig& cfg,
                                       std::size_t cohort_size,
                                       const AvailabilityOracle* oracle) {
  pop::VirtConfig virt;
  virt.cohort_size = cohort_size;
  pop::CohortStore replica(f.factory, f.dataset, f.partition, f.topo, cfg,
                           virt);

  ParticipationSchedule s;
  s.num_intervals = cfg.total_iterations / cfg.tau;
  s.num_workers = f.topo.num_workers();
  s.num_edges = f.topo.num_edges();
  s.worker_up.assign(s.num_intervals * s.num_workers, 0);
  s.slowdown.assign(s.num_intervals * s.num_workers, 1.0);
  s.edge_up.assign(s.num_intervals * s.num_edges, 1);

  std::vector<WorkerId> ids;
  std::vector<Scalar> mult;
  for (std::size_t k = 1; k <= s.num_intervals; ++k) {
    replica.sample_cohort(k, ids, mult);
    for (const WorkerId id : ids) {
      const bool up =
          oracle == nullptr || oracle->worker_available(k, id);
      s.worker_up[(k - 1) * s.num_workers + id] = up ? 1 : 0;
    }
    if (oracle != nullptr) {
      for (std::size_t e = 0; e < s.num_edges; ++e) {
        s.edge_up[(k - 1) * s.num_edges + e] =
            oracle->edge_available(k, e) ? 1 : 0;
      }
    }
  }
  return s;
}

class SampledParityTest : public ::testing::TestWithParam<std::string> {};

TEST_P(SampledParityTest, MatchesDenseRunOnInducedSchedule) {
  Fixture f;
  auto virt_alg = algs::make_algorithm(GetParam());
  auto dense_alg = algs::make_algorithm(GetParam());
  const RunConfig cfg = f.config_for(*virt_alg);

  pop::VirtConfig virt;
  virt.cohort_size = 16;  // 16 of 64: spills and restores every interval
  const RunResult sampled =
      run_once(f, *virt_alg, 4, nullptr, &virt, nullptr, nullptr);

  const ParticipationSchedule induced =
      induced_schedule(f, cfg, virt.cohort_size, nullptr);
  const RunResult dense =
      run_once(f, *dense_alg, 4, &induced, nullptr, nullptr, nullptr);
  expect_identical(dense, sampled);
}

TEST_P(SampledParityTest, MatchesDenseRunOnInducedScheduleUnderFaults) {
  Fixture f;
  auto virt_alg = algs::make_algorithm(GetParam());
  auto dense_alg = algs::make_algorithm(GetParam());
  const RunConfig cfg = f.config_for(*virt_alg);
  const sim::SparseFaultPlan sparse(f.topo.num_workers(), f.topo.num_edges(),
                                    fault_config());

  pop::VirtConfig virt;
  virt.cohort_size = 16;
  const RunResult sampled =
      run_once(f, *virt_alg, 4, nullptr, &virt, &sparse, nullptr);

  const ParticipationSchedule induced =
      induced_schedule(f, cfg, virt.cohort_size, &sparse);
  const RunResult dense =
      run_once(f, *dense_alg, 4, &induced, nullptr, nullptr, nullptr);
  expect_identical(dense, sampled);
}

INSTANTIATE_TEST_SUITE_P(
    Registry, SampledParityTest, ::testing::ValuesIn(sampled_algorithms()),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(SampledDeterminismTest, ThreadCountInvariantAndRepeatable) {
  Fixture f;
  pop::VirtConfig virt;
  virt.cohort_size = 16;
  // HierAdMo carries live momentum/accumulator state across spill-restore
  // cycles; any byte lost in the slab diverges the curve.
  auto a1 = algs::make_algorithm("HierAdMo");
  auto a4 = algs::make_algorithm("HierAdMo");
  auto again = algs::make_algorithm("HierAdMo");
  const RunResult serial =
      run_once(f, *a1, 1, nullptr, &virt, nullptr, nullptr);
  const RunResult parallel =
      run_once(f, *a4, 4, nullptr, &virt, nullptr, nullptr);
  const RunResult repeat =
      run_once(f, *again, 4, nullptr, &virt, nullptr, nullptr);
  expect_identical(serial, parallel);
  expect_identical(serial, repeat);
}

TEST(SampledDeterminismTest, FileSlabMatchesMemorySlab) {
  Fixture f;
  pop::VirtConfig mem;
  mem.cohort_size = 16;
  pop::VirtConfig file = mem;
  file.slab.backend = pop::SlabConfig::Backend::kFile;
  file.slab.path = ::testing::TempDir() + "hfl_parity_slab.bin";
  auto a = algs::make_algorithm("HierAdMo");
  auto b = algs::make_algorithm("HierAdMo");
  const RunResult in_memory =
      run_once(f, *a, 4, nullptr, &mem, nullptr, nullptr);
  const RunResult on_disk =
      run_once(f, *b, 4, nullptr, &file, nullptr, nullptr);
  expect_identical(in_memory, on_disk);
  std::remove(file.slab.path.c_str());
}

TEST(SampledDeterminismTest, WithReplacementRepeatable) {
  Fixture f;
  pop::VirtConfig virt;
  virt.cohort_size = 16;
  virt.with_replacement = true;
  auto a = algs::make_algorithm("HierAdMo");
  auto b = algs::make_algorithm("HierAdMo");
  const RunResult first = run_once(f, *a, 1, nullptr, &virt, nullptr, nullptr);
  const RunResult second =
      run_once(f, *b, 4, nullptr, &virt, nullptr, nullptr);
  expect_identical(first, second);
}

TEST(SampledDeterminismTest, MaterializationStaysCohortBounded) {
  Fixture f;
  pop::VirtConfig virt;
  virt.cohort_size = 8;
  RunConfig cfg = f.cfg3;
  cfg.num_threads = 1;
  Engine engine(f.factory, f.dataset, f.partition, f.topo, cfg);
  pop::CohortStore store(f.factory, f.dataset, f.partition, f.topo, cfg,
                         virt);
  engine.set_cohort_provider(&store);
  auto alg = algs::make_algorithm("HierAdMo");
  engine.run(*alg);
  EXPECT_LE(store.num_materialized(), virt.cohort_size);
  EXPECT_LE(store.peak_materialized(), virt.cohort_size);
  EXPECT_GT(store.slab().num_entries(), 0u);  // rotation actually spilled
}

TEST(SampledModeGuardsTest, RejectsMisalignedEvalAndMissingProvider) {
  Fixture f;
  auto alg = algs::make_algorithm("HierAdMo");
  RunConfig cfg = f.cfg3;
  Engine bare(f.factory, f.dataset, f.partition, f.topo, cfg);
  EXPECT_THROW(bare.run_with_oracle(*alg, nullptr), Error);

  cfg.eval_every = 3;  // not a multiple of tau*pi = 4
  Engine engine(f.factory, f.dataset, f.partition, f.topo, cfg);
  pop::VirtConfig virt;
  virt.cohort_size = 8;
  pop::CohortStore store(f.factory, f.dataset, f.partition, f.topo, cfg,
                         virt);
  engine.set_cohort_provider(&store);
  EXPECT_THROW(engine.run(*alg), Error);
}

// Mime under cohort sampling: the population-wide ĝ probe is replaced by a
// cohort-renormalized estimate behind cfg.mime_cohort_stats. Not an exact
// reproduction (different probe set, different batch-RNG consumption), so
// the contract is (a) the engine refuses the silent bias when the flag is
// off, and (b) with the flag on, the estimated run tracks the full-population
// run to a loose drift bound instead of diverging.
class MimeCohortStatsTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MimeCohortStatsTest, RejectsSampledRunWithoutFlag) {
  Fixture f;
  auto alg = algs::make_algorithm(GetParam());
  const RunConfig cfg = f.config_for(*alg);
  Engine engine(f.factory, f.dataset, f.partition, f.topo, cfg);
  pop::VirtConfig virt;
  virt.cohort_size = 16;
  pop::CohortStore store(f.factory, f.dataset, f.partition, f.topo, cfg,
                         virt);
  engine.set_cohort_provider(&store);
  EXPECT_THROW(engine.run(*alg), Error);
}

TEST_P(MimeCohortStatsTest, CohortEstimateTracksFullPopulation) {
  Fixture f;
  auto full_alg = algs::make_algorithm(GetParam());
  const RunResult full =
      run_once(f, *full_alg, 1, nullptr, nullptr, nullptr, nullptr);

  auto sampled_alg = algs::make_algorithm(GetParam());
  RunConfig cfg = f.config_for(*sampled_alg);
  cfg.mime_cohort_stats = true;
  Engine engine(f.factory, f.dataset, f.partition, f.topo, cfg);
  pop::VirtConfig virt;
  virt.cohort_size = 16;  // 16 of 64 workers per interval
  pop::CohortStore store(f.factory, f.dataset, f.partition, f.topo, cfg,
                         virt);
  engine.set_cohort_provider(&store);
  const RunResult sampled = engine.run(*sampled_alg);

  // A quarter-population estimate of ĝ must stay in the full run's
  // neighborhood — catching both a biased (un-renormalized) estimate and a
  // broken probe path, while leaving room for honest sampling noise.
  EXPECT_NEAR(sampled.final_loss, full.final_loss, 0.25);
  EXPECT_GT(sampled.final_accuracy, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Registry, MimeCohortStatsTest,
                         ::testing::Values("Mime", "MimeLite"));

}  // namespace
}  // namespace hfl::fl
