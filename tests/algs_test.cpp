// Tests for the baseline algorithms: server-update algebra on hand-built
// contexts, registry coverage, and end-to-end learning sanity for each.
#include <gtest/gtest.h>

#include "src/common/errors.h"

#include "src/algs/cfl.h"
#include "src/algs/fedadc.h"
#include "src/algs/fedmom.h"
#include "src/algs/registry.h"
#include "src/algs/slowmo.h"
#include "src/data/partitioner.h"
#include "src/data/synthetic.h"
#include "src/fl/engine.h"
#include "src/nn/models.h"

namespace hfl::algs {
namespace {

// Minimal two-worker, one-edge context for exercising cloud_sync algebra
// without any models.
struct FakeSetup {
  fl::Topology topo{std::vector<std::size_t>{2}};
  fl::RunConfig cfg;
  std::vector<fl::WorkerState> workers;
  fl::WorkerSet worker_set{&workers};
  std::vector<fl::EdgeState> edges;
  fl::CloudState cloud;

  FakeSetup() {
    workers.resize(2);
    for (std::size_t i = 0; i < 2; ++i) {
      workers[i].id = i;
      workers[i].weight_in_edge = 0.5;
      workers[i].weight_global = 0.5;
      workers[i].x = {0, 0};
    }
    edges.resize(1);
    cloud.x = {0, 0};
    cloud.y = {0, 0};
  }

  fl::Context context() {
    return fl::Context{&cfg, &topo, &worker_set, &edges, &cloud, 0};
  }
};

TEST(FedAvgTest, CloudSyncIsWeightedMean) {
  FakeSetup s;
  s.workers[0].x = {2, 0};
  s.workers[1].x = {0, 4};
  s.workers[0].weight_global = 0.75;
  s.workers[1].weight_global = 0.25;
  auto alg = make_algorithm("FedAvg");
  fl::Context ctx = s.context();
  alg->cloud_sync(ctx, 1);
  EXPECT_EQ(s.cloud.x, (Vec{1.5, 1.0}));
  EXPECT_EQ(s.workers[0].x, s.cloud.x);
  EXPECT_EQ(s.workers[1].x, s.cloud.x);
}

TEST(FedMomTest, ServerNesterovStep) {
  FakeSetup s;
  s.cfg.gamma_edge = 0.5;
  s.cloud.x = {10, 10};
  auto alg = make_algorithm("FedMom");
  fl::Context ctx = s.context();
  alg->init(ctx);  // y_0 = x_0 = (10, 10)
  s.workers[0].x = {4, 4};
  s.workers[1].x = {8, 8};  // x̄ = (6, 6)
  alg->cloud_sync(ctx, 1);
  // y_1 = 6; x = y_1 + 0.5 (y_1 − y_0) = 6 + 0.5(6 − 10) = 4.
  EXPECT_EQ(s.cloud.x, (Vec{4, 4}));
  EXPECT_EQ(s.workers[0].x, (Vec{4, 4}));
}

TEST(SlowMoTest, SlowMomentumAccumulates) {
  FakeSetup s;
  s.cfg.gamma_edge = 0.5;
  s.cloud.x = {10, 10};
  auto alg = make_algorithm("SlowMo");
  fl::Context ctx = s.context();
  alg->init(ctx);
  s.workers[0].x = {6, 6};
  s.workers[1].x = {6, 6};  // x̄ = 6, Δ = 4
  alg->cloud_sync(ctx, 1);
  // m = 0.5·0 + 4 = 4; x = 10 − 4 = 6.
  EXPECT_EQ(s.cloud.x, (Vec{6, 6}));
  s.workers[0].x = {6, 6};
  s.workers[1].x = {6, 6};  // Δ = 0 now, but momentum keeps moving x
  alg->cloud_sync(ctx, 2);
  // m = 0.5·4 + 0 = 2; x = 6 − 2 = 4.
  EXPECT_EQ(s.cloud.x, (Vec{4, 4}));
}

TEST(FedAdcTest, DriftVectorTracksPseudoGradient) {
  FakeSetup s;
  s.cfg.gamma_edge = 0.5;
  s.cfg.eta = 0.1;
  s.cfg.tau = 10;
  s.cloud.x = {2, 2};
  auto alg = make_algorithm("FedADC");
  fl::Context ctx = s.context();
  alg->init(ctx);
  s.workers[0].x = {1, 1};
  s.workers[1].x = {1, 1};  // x̄ = 1; pseudo-grad = (2−1)/(10·0.1) = 1
  alg->cloud_sync(ctx, 1);
  EXPECT_EQ(s.cloud.extra.at("drift_u"), (Vec{0.5, 0.5}));  // 0.5·0 + 0.5·1
  EXPECT_EQ(s.cloud.x, (Vec{1, 1}));
}

TEST(RegistryTest, AllTable2NamesResolve) {
  const auto names = table2_algorithms();
  EXPECT_EQ(names.size(), 11u);
  for (const auto& name : names) {
    auto alg = make_algorithm(name);
    ASSERT_NE(alg, nullptr);
    EXPECT_EQ(alg->name(), name);
  }
}

TEST(RegistryTest, ThreeTierFlagsMatchPaperCategories) {
  for (const char* name : {"HierAdMo", "HierAdMo-R", "HierFAVG", "CFL"}) {
    EXPECT_TRUE(make_algorithm(name)->three_tier()) << name;
  }
  for (const char* name : {"FastSlowMo", "FedADC", "FedMom", "SlowMo",
                           "FedNAG", "Mime", "FedAvg"}) {
    EXPECT_FALSE(make_algorithm(name)->three_tier()) << name;
  }
}

TEST(RegistryTest, UnknownNameThrows) {
  EXPECT_THROW(make_algorithm("NoSuchAlgorithm"), Error);
}

TEST(CflTest, RejectsBadParticipation) {
  EXPECT_THROW(Cfl(0.0), Error);
  EXPECT_THROW(Cfl(1.5), Error);
}

// End-to-end: every algorithm must actually learn on an easy task.
class LearningTest : public ::testing::TestWithParam<std::string> {};

TEST_P(LearningTest, ImprovesAccuracyOnEasyTask) {
  Rng rng(77);
  data::SyntheticSpec spec;
  spec.sample_shape = {1, 2, 2};
  spec.num_classes = 3;
  spec.train_size = 150;
  spec.test_size = 90;
  spec.separation = 1.2;
  spec.noise = 0.5;
  const data::TrainTest dataset = data::make_synthetic(rng, spec);
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  const data::Partition partition =
      data::partition_iid(dataset.train, 4, rng);
  const nn::ModelFactory factory = nn::logistic_regression({1, 2, 2}, 3);

  auto alg = make_algorithm(GetParam());
  fl::RunConfig cfg;
  cfg.total_iterations = 120;
  cfg.tau = alg->three_tier() ? 5 : 10;
  cfg.pi = alg->three_tier() ? 2 : 1;
  cfg.eta = 0.05;
  cfg.gamma = 0.5;
  cfg.gamma_edge = 0.5;
  cfg.batch_size = 8;
  cfg.seed = 3;
  fl::Engine engine(factory, dataset, partition, topo, cfg);
  const fl::RunResult r = engine.run(*alg);
  EXPECT_GT(r.final_accuracy, 0.75)
      << GetParam() << " failed to learn (initial "
      << r.curve.front().test_accuracy << ")";
  EXPECT_GT(r.final_accuracy, r.curve.front().test_accuracy);
}

INSTANTIATE_TEST_SUITE_P(
    AllAlgorithms, LearningTest,
    ::testing::Values("HierAdMo", "HierAdMo-R", "HierFAVG", "CFL",
                      "FastSlowMo", "FedADC", "FedMom", "SlowMo", "FedNAG",
                      "Mime", "MimeLite", "FedAvg"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(DeterminismTest, SameSeedSameResultAcrossAlgorithms) {
  Rng rng(5);
  data::SyntheticSpec spec;
  spec.sample_shape = {1, 2, 2};
  spec.num_classes = 2;
  spec.train_size = 80;
  spec.test_size = 40;
  const data::TrainTest dataset = data::make_synthetic(rng, spec);
  const fl::Topology topo = fl::Topology::uniform(2, 2);
  const data::Partition partition =
      data::partition_iid(dataset.train, 4, rng);
  const nn::ModelFactory factory = nn::logistic_regression({1, 2, 2}, 2);

  for (const char* name : {"CFL", "Mime", "FedADC"}) {
    fl::RunConfig cfg;
    cfg.total_iterations = 20;
    auto alg1 = make_algorithm(name);
    auto alg2 = make_algorithm(name);
    cfg.tau = alg1->three_tier() ? 5 : 10;
    cfg.pi = alg1->three_tier() ? 2 : 1;
    cfg.batch_size = 8;
    cfg.seed = 9;
    fl::Engine engine(factory, dataset, partition, topo, cfg);
    const fl::RunResult r1 = engine.run(*alg1);
    const fl::RunResult r2 = engine.run(*alg2);
    ASSERT_EQ(r1.curve.size(), r2.curve.size());
    for (std::size_t i = 0; i < r1.curve.size(); ++i) {
      EXPECT_DOUBLE_EQ(r1.curve[i].test_loss, r2.curve[i].test_loss) << name;
    }
  }
}

}  // namespace
}  // namespace hfl::algs
