// Hand-built-context algebra tests for the remaining baselines (FastSlowMo,
// HierFAVG, CFL, FedNAG cloud updates) complementing algs_test.cpp.
#include <gtest/gtest.h>

#include "src/common/errors.h"

#include "src/algs/cfl.h"
#include "src/algs/registry.h"
#include "src/fl/algorithm.h"

namespace hfl::algs {
namespace {

// Two edges with one worker each (weights 0.5/0.5).
struct TwoEdgeSetup {
  fl::Topology topo{std::vector<std::size_t>{1, 1}};
  fl::RunConfig cfg;
  std::vector<fl::WorkerState> workers;
  fl::WorkerSet worker_set{&workers};
  std::vector<fl::EdgeState> edges;
  fl::CloudState cloud;

  TwoEdgeSetup() {
    workers.resize(2);
    for (std::size_t i = 0; i < 2; ++i) {
      workers[i].id = i;
      workers[i].edge = i;
      workers[i].weight_in_edge = 1.0;
      workers[i].weight_global = 0.5;
      workers[i].x = {0, 0};
      workers[i].y = {0, 0};
    }
    edges.resize(2);
    edges[0].id = 0;
    edges[1].id = 1;
    edges[0].weight_global = 0.5;
    edges[1].weight_global = 0.5;
    cloud.x = {0, 0};
    cloud.y = {0, 0};
  }

  fl::Context context() {
    return fl::Context{&cfg, &topo, &worker_set, &edges, &cloud, 0};
  }
};

TEST(FastSlowMoTest, ServerSlowMomentumAndMomentumRedistribution) {
  TwoEdgeSetup s;
  s.cfg.gamma_edge = 0.5;
  s.cloud.x = {10, 10};
  auto alg = make_algorithm("FastSlowMo");
  fl::Context ctx = s.context();
  alg->init(ctx);

  s.workers[0].x = {6, 6};
  s.workers[1].x = {6, 6};  // x̄ = 6, Δ = 4
  s.workers[0].y = {2, 0};
  s.workers[1].y = {0, 2};  // ȳ = (1, 1)
  alg->cloud_sync(ctx, 1);
  // m = 0.5·0 + 4 = 4; x = 10 − 4 = 6; y ← ȳ.
  EXPECT_EQ(s.cloud.x, (Vec{6, 6}));
  EXPECT_EQ(s.cloud.y, (Vec{1, 1}));
  for (const auto& w : s.workers) {
    EXPECT_EQ(w.x, (Vec{6, 6}));
    EXPECT_EQ(w.y, (Vec{1, 1}));
  }
}

TEST(HierFavgTest, EdgeSyncAveragesWithinEdgeOnly) {
  // One edge with two workers; the other edge must be untouched.
  fl::Topology topo({2, 1});
  fl::RunConfig cfg;
  std::vector<fl::WorkerState> workers(3);
  for (std::size_t i = 0; i < 3; ++i) {
    workers[i].id = i;
    workers[i].edge = topo.edge_of_worker(i);
  }
  workers[0].weight_in_edge = 0.5;
  workers[1].weight_in_edge = 0.5;
  workers[2].weight_in_edge = 1.0;
  workers[0].x = {2, 0};
  workers[1].x = {0, 2};
  workers[2].x = {9, 9};
  std::vector<fl::EdgeState> edges(2);
  edges[0].id = 0;
  edges[1].id = 1;
  edges[0].x_plus = {0, 0};
  edges[1].x_plus = {7, 7};
  fl::CloudState cloud;
  fl::WorkerSet worker_set{&workers};
  fl::Context ctx{&cfg, &topo, &worker_set, &edges, &cloud, 0};

  auto alg = make_algorithm("HierFAVG");
  alg->edge_sync(ctx, edges[0], 1);
  EXPECT_EQ(edges[0].x_plus, (Vec{1, 1}));
  EXPECT_EQ(workers[0].x, (Vec{1, 1}));
  EXPECT_EQ(workers[1].x, (Vec{1, 1}));
  EXPECT_EQ(workers[2].x, (Vec{9, 9}));   // other edge untouched
  EXPECT_EQ(edges[1].x_plus, (Vec{7, 7}));
}

TEST(HierFavgTest, CloudSyncAveragesEdgeModels) {
  TwoEdgeSetup s;
  s.edges[0].x_plus = {4, 0};
  s.edges[1].x_plus = {0, 8};
  auto alg = make_algorithm("HierFAVG");
  fl::Context ctx = s.context();
  alg->cloud_sync(ctx, 1);
  EXPECT_EQ(s.cloud.x, (Vec{2, 4}));
  for (const auto& e : s.edges) EXPECT_EQ(e.x_plus, (Vec{2, 4}));
  for (const auto& w : s.workers) EXPECT_EQ(w.x, (Vec{2, 4}));
}

TEST(FedNagTest, CloudSyncAggregatesModelAndMomentum) {
  TwoEdgeSetup s;
  s.workers[0].x = {2, 0};
  s.workers[1].x = {0, 2};
  s.workers[0].y = {4, 0};
  s.workers[1].y = {0, 4};
  auto alg = make_algorithm("FedNAG");
  fl::Context ctx = s.context();
  alg->cloud_sync(ctx, 1);
  EXPECT_EQ(s.cloud.x, (Vec{1, 1}));
  EXPECT_EQ(s.cloud.y, (Vec{2, 2}));
  for (const auto& w : s.workers) {
    EXPECT_EQ(w.x, (Vec{1, 1}));
    EXPECT_EQ(w.y, (Vec{2, 2}));
  }
}

TEST(CflTest, FullParticipationMatchesHierFavgAlgebra) {
  // With participation = 1 every worker is aggregated and redistributed, so
  // a single edge_sync must equal plain weighted averaging.
  fl::Topology topo({2});
  fl::RunConfig cfg;
  cfg.seed = 5;
  std::vector<fl::WorkerState> workers(2);
  workers[0].id = 0;
  workers[1].id = 1;
  workers[0].weight_in_edge = 0.25;
  workers[1].weight_in_edge = 0.75;
  workers[0].x = {4, 0};
  workers[1].x = {0, 4};
  std::vector<fl::EdgeState> edges(1);
  edges[0].id = 0;
  edges[0].x_plus = {0, 0};
  fl::CloudState cloud;
  fl::WorkerSet worker_set{&workers};
  fl::Context ctx{&cfg, &topo, &worker_set, &edges, &cloud, 0};

  Cfl alg(1.0);
  alg.init(ctx);
  alg.edge_sync(ctx, edges[0], 1);
  EXPECT_EQ(edges[0].x_plus, (Vec{1, 3}));
  EXPECT_EQ(workers[0].x, (Vec{1, 3}));
  EXPECT_EQ(workers[1].x, (Vec{1, 3}));
}

TEST(CflTest, PartialParticipationLeavesStragglersAlone) {
  // With a vanishing participation rate, exactly one worker (the forced
  // minimum) is aggregated per round; run many rounds and verify the
  // aggregate always equals that single participant's model (weights
  // renormalized) and that non-participants keep their state.
  fl::Topology topo({2});
  fl::RunConfig cfg;
  cfg.seed = 6;
  std::vector<fl::WorkerState> workers(2);
  workers[0].id = 0;
  workers[1].id = 1;
  workers[0].weight_in_edge = 0.5;
  workers[1].weight_in_edge = 0.5;
  workers[0].x = {1, 1};
  workers[1].x = {9, 9};
  std::vector<fl::EdgeState> edges(1);
  edges[0].id = 0;
  edges[0].x_plus = {0, 0};
  fl::CloudState cloud;
  fl::WorkerSet worker_set{&workers};
  fl::Context ctx{&cfg, &topo, &worker_set, &edges, &cloud, 0};

  Cfl alg(1e-9);
  alg.init(ctx);
  alg.edge_sync(ctx, edges[0], 1);
  // The edge model equals one of the two worker models, and the other
  // worker was not overwritten.
  const bool picked_first = edges[0].x_plus == Vec{1, 1};
  const bool picked_second = edges[0].x_plus == Vec{9, 9};
  EXPECT_TRUE(picked_first || picked_second);
  if (picked_first) {
    EXPECT_EQ(workers[1].x, (Vec{9, 9}));
  } else {
    EXPECT_EQ(workers[0].x, (Vec{1, 1}));
  }
}

TEST(MimeNamesTest, CorrectionFlagControlsName) {
  EXPECT_EQ(make_algorithm("Mime")->name(), "Mime");
  EXPECT_EQ(make_algorithm("MimeLite")->name(), "MimeLite");
}

}  // namespace
}  // namespace hfl::algs
