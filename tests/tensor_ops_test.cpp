// Tests for tensor/tensor_ops: the GEMM variants and reductions against
// hand-computed and property-based references.
#include "src/tensor/tensor_ops.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace hfl {
namespace {

Tensor random_tensor(std::vector<std::size_t> shape, Rng& rng) {
  return Tensor::randn(std::move(shape), rng);
}

TEST(TensorOpsTest, MatmulKnownValues) {
  Tensor a({2, 3}, Vec{1, 2, 3, 4, 5, 6});
  Tensor b({3, 2}, Vec{7, 8, 9, 10, 11, 12});
  Tensor c;
  ops::matmul(a, b, c);
  EXPECT_EQ(c.shape(), (std::vector<std::size_t>{2, 2}));
  EXPECT_DOUBLE_EQ(c.at({0, 0}), 58.0);
  EXPECT_DOUBLE_EQ(c.at({0, 1}), 64.0);
  EXPECT_DOUBLE_EQ(c.at({1, 0}), 139.0);
  EXPECT_DOUBLE_EQ(c.at({1, 1}), 154.0);
}

TEST(TensorOpsTest, MatmulIdentity) {
  Rng rng(1);
  Tensor a = random_tensor({4, 4}, rng);
  Tensor id({4, 4});
  for (std::size_t i = 0; i < 4; ++i) id.at({i, i}) = 1.0;
  Tensor c;
  ops::matmul(a, id, c);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_NEAR(c[i], a[i], 1e-12);
}

TEST(TensorOpsTest, MatmulDimensionMismatchThrows) {
  Tensor a({2, 3}), b({2, 2}), c;
  EXPECT_THROW(ops::matmul(a, b, c), Error);
}

TEST(TensorOpsTest, TransposeVariantsAgreeWithExplicitTranspose) {
  Rng rng(2);
  Tensor a = random_tensor({3, 5}, rng);
  Tensor b = random_tensor({4, 5}, rng);  // b^T is 5x4
  // Explicit transpose of b.
  Tensor bt({5, 4});
  for (std::size_t i = 0; i < 4; ++i) {
    for (std::size_t j = 0; j < 5; ++j) bt.at({j, i}) = b.at({i, j});
  }
  Tensor c1, c2;
  ops::matmul_transpose_b(a, b, c1);
  ops::matmul(a, bt, c2);
  ASSERT_EQ(c1.shape(), c2.shape());
  for (std::size_t i = 0; i < c1.size(); ++i) EXPECT_NEAR(c1[i], c2[i], 1e-10);
}

TEST(TensorOpsTest, MatmulTransposeAAgreesWithExplicitTranspose) {
  Rng rng(3);
  Tensor a = random_tensor({6, 3}, rng);  // a^T is 3x6
  Tensor b = random_tensor({6, 2}, rng);
  Tensor at({3, 6});
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = 0; j < 3; ++j) at.at({j, i}) = a.at({i, j});
  }
  Tensor c1, c2;
  ops::matmul_transpose_a(a, b, c1);
  ops::matmul(at, b, c2);
  ASSERT_EQ(c1.shape(), c2.shape());
  for (std::size_t i = 0; i < c1.size(); ++i) EXPECT_NEAR(c1[i], c2[i], 1e-10);
}

TEST(TensorOpsTest, AddRowBias) {
  Tensor x({2, 3}, Vec{0, 0, 0, 1, 1, 1});
  Tensor bias({3}, Vec{1, 2, 3});
  ops::add_row_bias(x, bias);
  EXPECT_EQ(x.data(), (Vec{1, 2, 3, 2, 3, 4}));
}

TEST(TensorOpsTest, SumRows) {
  Tensor x({3, 2}, Vec{1, 2, 3, 4, 5, 6});
  Tensor out;
  ops::sum_rows(x, out);
  EXPECT_EQ(out.data(), (Vec{9, 12}));
}

TEST(TensorOpsTest, ArgmaxRows) {
  Tensor x({2, 3}, Vec{0.1, 0.9, 0.5, 2.0, -1.0, 1.5});
  std::vector<std::size_t> idx;
  ops::argmax_rows(x, idx);
  EXPECT_EQ(idx, (std::vector<std::size_t>{1, 0}));
}

TEST(TensorOpsTest, ArgmaxTieBreaksToFirst) {
  Tensor x({1, 3}, Vec{1.0, 1.0, 1.0});
  std::vector<std::size_t> idx;
  ops::argmax_rows(x, idx);
  EXPECT_EQ(idx[0], 0u);
}

TEST(TensorOpsTest, ElementwiseAddSubMul) {
  Tensor a({2}, Vec{1, 2}), b({2}, Vec{3, 5}), out;
  ops::add(a, b, out);
  EXPECT_EQ(out.data(), (Vec{4, 7}));
  ops::sub(a, b, out);
  EXPECT_EQ(out.data(), (Vec{-2, -3}));
  ops::mul(a, b, out);
  EXPECT_EQ(out.data(), (Vec{3, 10}));
}

TEST(TensorOpsTest, ElementwiseShapeMismatchThrows) {
  Tensor a({2}), b({3}), out;
  EXPECT_THROW(ops::add(a, b, out), Error);
}

TEST(TensorOpsTest, MatmulAssociativityProperty) {
  Rng rng(4);
  Tensor a = random_tensor({3, 4}, rng);
  Tensor b = random_tensor({4, 5}, rng);
  Tensor c = random_tensor({5, 2}, rng);
  Tensor ab, abc1, bc, abc2;
  ops::matmul(a, b, ab);
  ops::matmul(ab, c, abc1);
  ops::matmul(b, c, bc);
  ops::matmul(a, bc, abc2);
  for (std::size_t i = 0; i < abc1.size(); ++i) {
    EXPECT_NEAR(abc1[i], abc2[i], 1e-10);
  }
}

}  // namespace
}  // namespace hfl
