// Tests for common/rng: determinism, ranges, fork independence, shuffle
// permutation properties, and rough distribution sanity.
#include "src/common/rng.h"

#include <gtest/gtest.h>

#include "src/common/errors.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

namespace hfl {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const Scalar u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const Scalar u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(9);
  Scalar sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIndexCoversRange) {
  Rng rng(10);
  std::set<std::size_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_index(7));
  EXPECT_EQ(seen.size(), 7u);
  EXPECT_EQ(*seen.rbegin(), 6u);
}

TEST(RngTest, UniformIndexRejectsZero) {
  Rng rng(11);
  EXPECT_THROW(rng.uniform_index(0), Error);
}

TEST(RngTest, NormalMomentsApproximatelyStandard) {
  Rng rng(12);
  const int n = 100000;
  Scalar sum = 0, sum_sq = 0;
  for (int i = 0; i < n; ++i) {
    const Scalar x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(RngTest, NormalScalesMeanAndStddev) {
  Rng rng(13);
  const int n = 50000;
  Scalar sum = 0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(99);
  Rng child = parent.fork(1);
  // Child differs from parent continuation.
  Rng parent_copy(99);
  (void)parent_copy.fork(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (child.next_u64() == parent.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ForksWithDifferentTagsDiffer) {
  Rng a(5), b(5);
  Rng fa = a.fork(1);
  Rng fb = b.fork(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (fa.next_u64() == fb.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ForkIsDeterministic) {
  Rng a(5), b(5);
  Rng fa = a.fork(3);
  Rng fb = b.fork(3);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(fa.next_u64(), fb.next_u64());
}

TEST(RngTest, SuccessiveForksDiffer) {
  Rng rng(6);
  Rng f1 = rng.fork(0);
  Rng f2 = rng.fork(0);  // same tag, later call — must still differ
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (f1.next_u64() == f2.next_u64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(20);
  std::vector<int> v(100);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
}

TEST(RngTest, ShuffleSingleElementNoop) {
  Rng rng(21);
  std::vector<int> v{5};
  rng.shuffle(v);
  EXPECT_EQ(v, std::vector<int>{5});
}

TEST(RngTest, ShuffleUniformityFirstPosition) {
  // Each element should land in position 0 roughly uniformly.
  Rng rng(22);
  std::vector<int> counts(4, 0);
  for (int trial = 0; trial < 8000; ++trial) {
    std::vector<int> v{0, 1, 2, 3};
    rng.shuffle(v);
    ++counts[v[0]];
  }
  for (const int c : counts) EXPECT_NEAR(c, 2000, 250);
}

}  // namespace
}  // namespace hfl
